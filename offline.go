package calibsched

import (
	"calibsched/internal/offline"
)

// OfflineResult is an exact offline solve: the optimal flow and a schedule
// achieving it.
type OfflineResult = offline.DPResult

// Unschedulable marks BudgetSweep entries whose budget cannot fit all jobs.
const Unschedulable = offline.Unschedulable

// OptimalFlow computes the exact minimum total weighted flow on one
// machine using at most k calibrations, via the paper's Section 4 dynamic
// program (Theorem 4.7, O(K n^3)). The instance must have distinct release
// times (use Instance.Canonicalize).
func OptimalFlow(in *Instance, k int) (*OfflineResult, error) {
	return offline.OptimalFlow(in, k)
}

// BudgetSweep returns the optimal flow for every budget 0..maxK in one DP
// run — the flow-versus-calibrations Pareto frontier.
func BudgetSweep(in *Instance, maxK int) ([]int64, error) {
	return offline.BudgetSweep(in, maxK)
}

// OptimalTotalCost computes the exact offline optimum of the online
// objective G*(#calibrations) + flow, the benchmark every online algorithm
// is measured against.
func OptimalTotalCost(in *Instance, g int64) (total int64, bestK int, sched *Schedule, err error) {
	return offline.OptimalTotalCost(in, g)
}

// TotalCostSearch is OptimalTotalCost via ternary search over the budget —
// the paper's "binary search between 1 and n calibrations" remark — exact
// because the flow-versus-budget frontier is convex (property-tested), and
// probing only O(log n) budgets of the lazily memoized DP.
func TotalCostSearch(in *Instance, g int64) (total int64, bestK, probes int, sched *Schedule, err error) {
	return offline.TotalCostSearch(in, g)
}

// BruteForce computes the budget-k optimum by exhaustive search over the
// Lemma 4.2 candidate calibration times; exponential, for cross-validation
// on small instances.
func BruteForce(in *Instance, k int) (*OfflineResult, error) {
	return offline.BruteForce(in, k)
}
