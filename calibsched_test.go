package calibsched_test

import (
	"bytes"
	"strings"
	"testing"

	"calibsched"
)

// TestPublicAPIEndToEnd walks the whole facade the way the README does.
func TestPublicAPIEndToEnd(t *testing.T) {
	const G = 20
	in := calibsched.MustInstance(1, 10, []int64{0, 3, 25}, []int64{1, 1, 1})

	res, err := calibsched.Alg1(in, G)
	if err != nil {
		t.Fatal(err)
	}
	if err := calibsched.Validate(in, res.Schedule); err != nil {
		t.Fatal(err)
	}
	algCost := calibsched.TotalCost(in, res.Schedule, G)

	optCost, bestK, optSched, err := calibsched.OptimalTotalCost(in, G)
	if err != nil {
		t.Fatal(err)
	}
	if err := calibsched.Validate(in, optSched); err != nil {
		t.Fatal(err)
	}
	if optCost > algCost {
		t.Fatalf("OPT %d exceeds online cost %d", optCost, algCost)
	}
	if float64(algCost) > 3*float64(optCost) {
		t.Fatalf("Algorithm 1 ratio %f exceeds 3", float64(algCost)/float64(optCost))
	}
	if bestK < 1 {
		t.Fatalf("bestK = %d", bestK)
	}

	flows, err := calibsched.BudgetSweep(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if flows[0] != calibsched.Unschedulable {
		t.Error("K=0 should be unschedulable for a nonempty instance")
	}
	if flows[2] > flows[1] && flows[1] != calibsched.Unschedulable {
		t.Error("flow increased with budget")
	}
}

func TestPublicWeightedAndMultiMachine(t *testing.T) {
	spec := calibsched.WorkloadSpec{
		N: 40, P: 1, T: 8, Seed: 5,
		Arrival: calibsched.ArrivalPoisson, Lambda: 0.4,
		Weights: calibsched.WeightZipf, WMax: 20, ZipfS: 1.4,
	}
	in, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := calibsched.Alg2(in, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := calibsched.Validate(in, res.Schedule); err != nil {
		t.Fatal(err)
	}
	// Lemma 3.4 transform on the weighted schedule.
	ordered, err := calibsched.ReleaseOrder(in, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if calibsched.Flow(in, ordered) > calibsched.Flow(in, res.Schedule) {
		t.Error("ReleaseOrder increased flow")
	}

	multi := calibsched.WorkloadSpec{
		N: 40, P: 3, T: 8, Seed: 6,
		Arrival: calibsched.ArrivalBursty, Burst: 4, Gap: 20,
		Weights: calibsched.WeightUnit,
	}
	min, err := multi.Build()
	if err != nil {
		t.Fatal(err)
	}
	mres, err := calibsched.Alg3(min, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := calibsched.Validate(min, mres.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestPublicIOAndRendering(t *testing.T) {
	in := calibsched.MustInstance(2, 4, []int64{0, 1, 5}, []int64{1, 2, 1})
	var buf bytes.Buffer
	if err := calibsched.WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := calibsched.ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 3 || back.P != 2 {
		t.Fatalf("round trip: %+v", back)
	}

	s, err := calibsched.AssignTimes(in, []int64{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	tl := calibsched.Timeline(in, s)
	if !strings.Contains(tl, "#") {
		t.Errorf("timeline has no busy slots: %q", tl)
	}
	var csvBuf, jsonBuf bytes.Buffer
	if err := calibsched.WriteScheduleCSV(&csvBuf, in, s); err != nil {
		t.Fatal(err)
	}
	if err := calibsched.WriteScheduleJSON(&jsonBuf, in, s); err != nil {
		t.Fatal(err)
	}
	if csvBuf.Len() == 0 || jsonBuf.Len() == 0 {
		t.Error("empty exports")
	}
}

func TestPublicAdversary(t *testing.T) {
	alg := func(in *calibsched.Instance, g int64) (*calibsched.Schedule, error) {
		res, err := calibsched.Alg1(in, g)
		if err != nil {
			return nil, err
		}
		return res.Schedule, nil
	}
	out, err := calibsched.PlayAdversary(alg, 128, 128)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ratio() < 1.9 || out.Ratio() > 3 {
		t.Fatalf("adversary ratio %.3f outside (1.9, 3]", out.Ratio())
	}
}

func TestPublicBaselinesAndOptions(t *testing.T) {
	in := calibsched.MustInstance(1, 6, []int64{0, 2, 30}, []int64{1, 1, 1})
	const G = 18
	for name, run := range map[string]func() (*calibsched.Schedule, error){
		"immediate": func() (*calibsched.Schedule, error) { return calibsched.Immediate(in, G) },
		"always":    func() (*calibsched.Schedule, error) { return calibsched.AlwaysCalibrated(in, G) },
		"periodic":  func() (*calibsched.Schedule, error) { return calibsched.Periodic(in, G, 6) },
		"flow":      func() (*calibsched.Schedule, error) { return calibsched.FlowThreshold(in, G) },
	} {
		s, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := calibsched.Validate(in, s); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	// Option variants compile and run through the facade.
	if _, err := calibsched.Alg1(in, G, calibsched.WithNaiveStepping(), calibsched.WithoutImmediateCalibrations()); err != nil {
		t.Fatal(err)
	}
	if _, err := calibsched.Alg1(in, G, calibsched.WithFlowTriggerOnly()); err != nil {
		t.Fatal(err)
	}
}

func TestPublicExtensionAndSearch(t *testing.T) {
	spec := calibsched.WorkloadSpec{
		N: 25, P: 2, T: 6, Seed: 12,
		Arrival: calibsched.ArrivalPoisson, Lambda: 0.6,
		Weights: calibsched.WeightUniform, WMax: 8,
	}
	in, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := calibsched.Alg2Multi(in, 48)
	if err != nil {
		t.Fatal(err)
	}
	if err := calibsched.Validate(in, res.Schedule); err != nil {
		t.Fatal(err)
	}
	u := calibsched.Utilize(in, res.Schedule)
	if u.BusySlots != int64(in.N()) {
		t.Errorf("busy slots %d != n %d", u.BusySlots, in.N())
	}
	var buf bytes.Buffer
	err = calibsched.WriteComparison(&buf, in, 48, []calibsched.ScheduleComparison{
		{Name: "alg2multi", Schedule: res.Schedule},
	})
	if err != nil || buf.Len() == 0 {
		t.Fatalf("comparison: %v", err)
	}

	single := calibsched.WorkloadSpec{
		N: 30, P: 1, T: 6, Seed: 13,
		Arrival: calibsched.ArrivalPoisson, Lambda: 0.3,
		Weights: calibsched.WeightUniform, WMax: 5,
	}
	sin, err := single.Build()
	if err != nil {
		t.Fatal(err)
	}
	want, _, _, err := calibsched.OptimalTotalCost(sin, 40)
	if err != nil {
		t.Fatal(err)
	}
	got, _, probes, _, err := calibsched.TotalCostSearch(sin, 40)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("search %d != sweep %d", got, want)
	}
	if probes >= sin.N() {
		t.Errorf("probes %d not sublinear for n=%d", probes, sin.N())
	}
}

func TestPublicStepper(t *testing.T) {
	st := calibsched.NewAlg1Stepper(8, 24)
	job := calibsched.Job{ID: 0, Release: 0, Weight: 1}
	var ran bool
	for t0 := int64(0); t0 < 200 && !ran; t0++ {
		var arr []calibsched.Job
		if t0 == 0 {
			arr = []calibsched.Job{job}
		}
		ev := st.Step(arr)
		ran = ev.Ran == 0
	}
	if !ran {
		t.Fatal("stepper never ran the job")
	}
	in := calibsched.MustInstance(1, 8, []int64{0}, []int64{1})
	if err := calibsched.Validate(in, st.Schedule(1)); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAnalysisToolkit(t *testing.T) {
	spec := calibsched.WorkloadSpec{
		N: 20, P: 1, T: 6, Seed: 21,
		Arrival: calibsched.ArrivalPoisson, Lambda: 0.5,
		Weights: calibsched.WeightUniform, WMax: 6,
	}
	in, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	const G = 30
	res, err := calibsched.Alg2(in, G)
	if err != nil {
		t.Fatal(err)
	}
	ivs := calibsched.Intervals(in, res.Schedule, 0)
	if len(ivs) == 0 {
		t.Fatal("no intervals")
	}
	var jobs int
	for _, iv := range ivs {
		jobs += len(iv.Jobs)
	}
	if jobs != in.N() {
		t.Fatalf("intervals hold %d jobs, want %d", jobs, in.N())
	}
	seqs := calibsched.Sequences(in, res.Schedule, 0)
	if len(seqs) == 0 {
		t.Fatal("no sequences")
	}
	optR, err := calibsched.OptRFast(in, G)
	if err != nil {
		t.Fatal(err)
	}
	if err := calibsched.Validate(in, optR); err != nil {
		t.Fatal(err)
	}
	if err := calibsched.CheckLemma36(in, res.Schedule, optR); err != nil {
		t.Fatalf("Lemma 3.6: %v", err)
	}
	// OPT_r is itself a schedule, so it cannot beat the unrestricted OPT.
	opt, _, _, err := calibsched.OptimalTotalCost(in, G)
	if err != nil {
		t.Fatal(err)
	}
	if calibsched.TotalCost(in, optR, G) < opt {
		t.Fatal("OPT_r beat OPT")
	}
}

func TestAlgorithmRegistry(t *testing.T) {
	algs := calibsched.Algorithms()
	if len(algs) < 8 {
		t.Fatalf("registry holds %d algorithms", len(algs))
	}
	seen := map[string]bool{}
	for _, a := range algs {
		if a.Name == "" || a.Description == "" || a.Run == nil || a.Applicable == nil {
			t.Errorf("algorithm %q incomplete", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate algorithm %q", a.Name)
		}
		seen[a.Name] = true
	}
	// Every applicable algorithm must produce a valid schedule, with cost
	// at least OPT's and within its proven ratio where one exists.
	in := calibsched.MustInstance(1, 5, []int64{0, 2, 9, 20}, []int64{1, 1, 1, 1})
	const G = 12
	opt, _, _, err := calibsched.OptimalTotalCost(in, G)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range algs {
		if !a.Applicable(in) {
			t.Errorf("%s not applicable to a single-machine unweighted instance", a.Name)
			continue
		}
		s, err := a.Run(in, G)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if err := calibsched.Validate(in, s); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		cost := calibsched.TotalCost(in, s, G)
		if cost < opt {
			t.Errorf("%s cost %d below OPT %d", a.Name, cost, opt)
		}
		if !a.WithinProvenRatio(cost, opt) {
			t.Errorf("%s cost %d exceeds %sx OPT %d", a.Name, cost, a.ProvenRatio(), opt)
		}
	}
	// Applicability filters: a weighted multi-machine instance admits only
	// the unrestricted entries.
	wm := calibsched.MustInstance(2, 5, []int64{0, 1}, []int64{2, 3})
	for _, a := range algs {
		ok := a.Applicable(wm)
		switch a.Name {
		case "alg2multi", "immediate", "always", "periodic":
			if !ok {
				t.Errorf("%s should accept weighted multi-machine", a.Name)
			}
		case "alg1", "alg2", "alg3", "flow-threshold", "opt":
			if ok {
				t.Errorf("%s should reject weighted multi-machine", a.Name)
			}
		}
	}
}
