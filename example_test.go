package calibsched_test

import (
	"fmt"

	"calibsched"
)

// The canonical flow: run the 3-competitive online algorithm and compare
// against the exact offline optimum.
func ExampleAlg1() {
	// One machine, calibrations last T=10 steps and cost G=20 each.
	in := calibsched.MustInstance(1, 10, []int64{0, 3, 25}, []int64{1, 1, 1})
	res, err := calibsched.Alg1(in, 20)
	if err != nil {
		panic(err)
	}
	fmt.Println("calibrations:", res.Schedule.NumCalibrations())
	fmt.Println("total cost:", calibsched.TotalCost(in, res.Schedule, 20))
	// Output:
	// calibrations: 2
	// total cost: 47
}

// Weighted jobs on one machine: the heaviest waiting job always runs
// first, and heavy arrivals force early calibrations.
func ExampleAlg2() {
	in := calibsched.MustInstance(1, 4, []int64{0, 1, 2}, []int64{1, 2, 4})
	res, err := calibsched.Alg2(in, 21)
	if err != nil {
		panic(err)
	}
	for _, j := range in.Jobs {
		fmt.Printf("job w=%d starts at %d\n", j.Weight, res.Schedule.Start(j.ID))
	}
	// Output:
	// job w=1 starts at 4
	// job w=2 starts at 3
	// job w=4 starts at 2
}

// The exact offline optimum under a calibration budget (Section 4 DP).
func ExampleOptimalFlow() {
	in := calibsched.MustInstance(1, 4, []int64{0, 10}, []int64{1, 1})
	one, err := calibsched.OptimalFlow(in, 1)
	if err != nil {
		panic(err)
	}
	two, err := calibsched.OptimalFlow(in, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("flow with K=1:", one.Flow)
	fmt.Println("flow with K=2:", two.Flow)
	// Output:
	// flow with K=1: 9
	// flow with K=2: 2
}

// Observation 2.1: once calibration times are fixed, the optimal
// assignment is a simple list schedule.
func ExampleAssignTimes() {
	in := calibsched.MustInstance(1, 3, []int64{0, 1}, []int64{1, 5})
	s, err := calibsched.AssignTimes(in, []int64{1})
	if err != nil {
		panic(err)
	}
	fmt.Println("heavy job starts:", s.Start(1))
	fmt.Println("light job starts:", s.Start(0))
	// Output:
	// heavy job starts: 1
	// light job starts: 2
}

// The flow-versus-budget Pareto frontier from one DP run.
func ExampleBudgetSweep() {
	in := calibsched.MustInstance(1, 4, []int64{0, 10, 20}, []int64{1, 1, 1})
	flows, err := calibsched.BudgetSweep(in, 3)
	if err != nil {
		panic(err)
	}
	for k, f := range flows {
		if f == calibsched.Unschedulable {
			fmt.Printf("K=%d infeasible\n", k)
			continue
		}
		fmt.Printf("K=%d flow=%d\n", k, f)
	}
	// Output:
	// K=0 infeasible
	// K=1 flow=28
	// K=2 flow=10
	// K=3 flow=3
}

// Multiple machines: Algorithm 3 decides calibrations online and the
// Observation 2.1 replay does the final placement.
func ExampleAlg3() {
	in := calibsched.MustInstance(2, 4, []int64{0, 0, 1, 1}, []int64{1, 1, 1, 1})
	res, err := calibsched.Alg3(in, 6)
	if err != nil {
		panic(err)
	}
	fmt.Println("calibrations:", res.Schedule.NumCalibrations())
	fmt.Println("flow:", calibsched.Flow(in, res.Schedule))
	// Output:
	// calibrations: 2
	// flow: 6
}

// Lemma 3.4: any schedule becomes release-ordered without delaying a job,
// paying at most twice the calibrations.
func ExampleReleaseOrder() {
	in := calibsched.MustInstance(1, 6, []int64{0, 1}, []int64{1, 9})
	s := calibsched.NewSchedule(2)
	s.Calibrate(0, 1)
	s.Assign(1, 0, 1) // heavy job first...
	s.Assign(0, 0, 5) // ...light job much later: out of release order
	ordered, err := calibsched.ReleaseOrder(in, s)
	if err != nil {
		panic(err)
	}
	fmt.Println("job 0 start:", ordered.Start(0))
	fmt.Println("job 1 start:", ordered.Start(1))
	fmt.Println("calibrations:", ordered.NumCalibrations())
	// Output:
	// job 0 start: 0
	// job 1 start: 1
	// calibrations: 2
}

// The Lemma 3.1 adversary forces any deterministic online algorithm
// toward ratio 2.
func ExamplePlayAdversary() {
	alg := func(in *calibsched.Instance, g int64) (*calibsched.Schedule, error) {
		res, err := calibsched.Alg1(in, g)
		if err != nil {
			return nil, err
		}
		return res.Schedule, nil
	}
	out, err := calibsched.PlayAdversary(alg, 1024, 1024)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ratio %.4f\n", out.Ratio())
	// Output:
	// ratio 1.9961
}

// Timelines render schedules for quick inspection.
func ExampleTimeline() {
	in := calibsched.MustInstance(1, 4, []int64{0, 1, 2}, []int64{1, 1, 1})
	s, err := calibsched.AssignTimes(in, []int64{0})
	if err != nil {
		panic(err)
	}
	fmt.Print(calibsched.Timeline(in, s))
	// Output:
	// 0
	// m0    ###-
}
