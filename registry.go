package calibsched

import (
	"calibsched/internal/baseline"
	"calibsched/internal/core"
	"calibsched/internal/online"
)

// NamedAlgorithm is one entry of the algorithm registry: a scheduling
// policy together with its applicability (some algorithms are restricted
// to one machine or to unit weights) and whether the paper proves a
// competitive ratio for it.
type NamedAlgorithm struct {
	// Name is a stable identifier (also used by cmd/calibsim).
	Name string
	// Description summarizes the policy in one line.
	Description string
	// Online reports whether the policy observes jobs only at release.
	Online bool
	// Ratio is the proven competitive ratio, or 0 when none is proved
	// (baselines and extensions).
	Ratio float64
	// Run executes the policy.
	Run func(in *Instance, g int64) (*Schedule, error)
	// Applicable reports whether the policy accepts the instance.
	Applicable func(in *Instance) bool
}

// Algorithms returns the registry of every scheduling policy in this
// package, in a stable order: the paper's algorithms, the extension, the
// baselines, and the exact offline optimum. Callers typically filter by
// Applicable and compare costs (see cmd/calibsim -compare).
func Algorithms() []NamedAlgorithm {
	fromResult := func(fn func(in *core.Instance, g int64, opts ...online.Option) (*online.Result, error)) func(*Instance, int64) (*Schedule, error) {
		return func(in *Instance, g int64) (*Schedule, error) {
			res, err := fn(in, g)
			if err != nil {
				return nil, err
			}
			return res.Schedule, nil
		}
	}
	always := func(*Instance) bool { return true }
	singleMachine := func(in *Instance) bool { return in.P == 1 }
	unweighted := func(in *Instance) bool { return in.Unweighted() }
	singleUnweighted := func(in *Instance) bool { return in.P == 1 && in.Unweighted() }

	return []NamedAlgorithm{
		{
			Name:        "alg1",
			Description: "Algorithm 1: online, one machine, unweighted (Theorem 3.3)",
			Online:      true, Ratio: 3,
			Run: fromResult(online.Alg1), Applicable: singleUnweighted,
		},
		{
			Name:        "alg2",
			Description: "Algorithm 2: online, one machine, weighted (Theorem 3.8)",
			Online:      true, Ratio: 12,
			Run: fromResult(online.Alg2), Applicable: singleMachine,
		},
		{
			Name:        "alg3",
			Description: "Algorithm 3: online, multiple machines, unweighted (Theorem 3.10)",
			Online:      true, Ratio: 12,
			Run: fromResult(online.Alg3), Applicable: unweighted,
		},
		{
			Name:        "alg2multi",
			Description: "extension (not from the paper): weighted jobs on multiple machines",
			Online:      true,
			Run:         fromResult(online.Alg2Multi), Applicable: always,
		},
		{
			Name:        "immediate",
			Description: "baseline: calibrate on demand, every job as early as possible",
			Online:      true,
			Run:         baseline.Immediate, Applicable: always,
		},
		{
			Name:        "always",
			Description: "baseline: keep the machine calibrated back-to-back",
			Online:      true,
			Run:         baseline.AlwaysCalibrated, Applicable: always,
		},
		{
			Name:        "periodic",
			Description: "baseline: calibrate every T steps",
			Online:      true,
			Run: func(in *Instance, g int64) (*Schedule, error) {
				return baseline.Periodic(in, g, in.T)
			},
			Applicable: always,
		},
		{
			Name:        "flow-threshold",
			Description: "baseline: pure ski-rental (calibrate once waiting flow reaches G)",
			Online:      true,
			Run:         baseline.FlowThreshold, Applicable: singleMachine,
		},
		{
			Name:        "opt",
			Description: "exact offline optimum (Section 4 dynamic program)",
			Online:      false, Ratio: 1,
			Run: func(in *Instance, g int64) (*Schedule, error) {
				_, _, s, err := OptimalTotalCost(in, g)
				return s, err
			},
			Applicable: singleMachine,
		},
	}
}
