package calibsched

import (
	"fmt"

	"calibsched/internal/arena"
	"calibsched/internal/baseline"
	"calibsched/internal/core"
	"calibsched/internal/online"
)

// NamedAlgorithm is one entry of the algorithm registry: a scheduling
// policy together with its applicability (some algorithms are restricted
// to one machine or to unit weights) and whether the paper proves a
// competitive ratio for it.
type NamedAlgorithm struct {
	// Name is a stable identifier (also used by cmd/calibsim).
	Name string
	// Description summarizes the policy in one line.
	Description string
	// Online reports whether the policy observes jobs only at release.
	Online bool
	// RatioNum/RatioDen is the proven competitive ratio as an exact
	// rational, or 0/0 when none is proved (baselines and extensions).
	// Keeping the bound exact lets callers check "cost within ratio of
	// OPT" by cross-multiplication in checked int64 arithmetic instead
	// of comparing floats, matching the exactarith contract and
	// internal/lowerbound's RatioAtLeast.
	RatioNum, RatioDen int64
	// Run executes the policy.
	Run func(in *Instance, g int64) (*Schedule, error)
	// Applicable reports whether the policy accepts the instance.
	Applicable func(in *Instance) bool
}

// HasProvenRatio reports whether the paper proves a competitive ratio
// for this policy.
func (a NamedAlgorithm) HasProvenRatio() bool { return a.RatioDen != 0 }

// WithinProvenRatio reports cost <= (RatioNum/RatioDen) * opt exactly,
// by cross-multiplying in overflow-checked int64 arithmetic. It returns
// true vacuously when no ratio is proved.
func (a NamedAlgorithm) WithinProvenRatio(cost, opt int64) bool {
	if !a.HasProvenRatio() {
		return true
	}
	return core.MustMul(cost, a.RatioDen) <= core.MustMul(a.RatioNum, opt)
}

// ProvenRatio renders the proven ratio for reporting ("3", "12", or ""
// when none is proved). Non-integer rationals render as "num/den".
func (a NamedAlgorithm) ProvenRatio() string {
	if !a.HasProvenRatio() {
		return ""
	}
	if a.RatioNum%a.RatioDen == 0 {
		return fmt.Sprintf("%d", a.RatioNum/a.RatioDen)
	}
	return fmt.Sprintf("%d/%d", a.RatioNum, a.RatioDen)
}

// Algorithms returns the registry of every scheduling policy in this
// package, in a stable order: the paper's algorithms, the extension, the
// baselines, and the exact offline optimum. Callers typically filter by
// Applicable and compare costs (see cmd/calibsim -compare).
func Algorithms() []NamedAlgorithm {
	fromResult := func(fn func(in *core.Instance, g int64, opts ...online.Option) (*online.Result, error)) func(*Instance, int64) (*Schedule, error) {
		return func(in *Instance, g int64) (*Schedule, error) {
			res, err := fn(in, g)
			if err != nil {
				return nil, err
			}
			return res.Schedule, nil
		}
	}
	always := func(*Instance) bool { return true }
	singleMachine := func(in *Instance) bool { return in.P == 1 }
	unweighted := func(in *Instance) bool { return in.Unweighted() }
	singleUnweighted := func(in *Instance) bool { return in.P == 1 && in.Unweighted() }

	return []NamedAlgorithm{
		{
			Name:        "alg1",
			Description: "Algorithm 1: online, one machine, unweighted (Theorem 3.3)",
			Online:      true, RatioNum: 3, RatioDen: 1,
			Run: fromResult(online.Alg1), Applicable: singleUnweighted,
		},
		{
			Name:        "alg2",
			Description: "Algorithm 2: online, one machine, weighted (Theorem 3.8)",
			Online:      true, RatioNum: 12, RatioDen: 1,
			Run: fromResult(online.Alg2), Applicable: singleMachine,
		},
		{
			Name:        "alg3",
			Description: "Algorithm 3: online, multiple machines, unweighted (Theorem 3.10)",
			Online:      true, RatioNum: 12, RatioDen: 1,
			Run: fromResult(online.Alg3), Applicable: unweighted,
		},
		{
			Name:        "alg2multi",
			Description: "extension (not from the paper): weighted jobs on multiple machines",
			Online:      true,
			Run:         fromResult(online.Alg2Multi), Applicable: always,
		},
		{
			Name:        "immediate",
			Description: "baseline: calibrate on demand, every job as early as possible",
			Online:      true,
			Run:         baseline.Immediate, Applicable: always,
		},
		{
			Name:        "always",
			Description: "baseline: keep the machine calibrated back-to-back",
			Online:      true,
			Run:         baseline.AlwaysCalibrated, Applicable: always,
		},
		{
			Name:        "periodic",
			Description: "baseline: calibrate every T steps",
			Online:      true,
			Run: func(in *Instance, g int64) (*Schedule, error) {
				return baseline.Periodic(in, g, in.T)
			},
			Applicable: always,
		},
		{
			Name:        "flow-threshold",
			Description: "baseline: pure ski-rental (calibrate once waiting flow reaches G)",
			Online:      true,
			Run:         baseline.FlowThreshold, Applicable: singleMachine,
		},
		{
			Name:        "opt",
			Description: "exact offline optimum (Section 4 dynamic program)",
			Online:      false, RatioNum: 1, RatioDen: 1,
			Run: func(in *Instance, g int64) (*Schedule, error) {
				_, _, s, err := OptimalTotalCost(in, g)
				return s, err
			},
			Applicable: singleMachine,
		},
	}
}

// ArenaEngines adapts the algorithm registry for the competitive-ratio
// arena (internal/arena). The "opt" entry is skipped: the arena runs
// the exact DP itself through a solve pool and enters it under the
// reserved "opt" name.
func ArenaEngines() []arena.Engine {
	var out []arena.Engine
	for _, a := range Algorithms() {
		if a.Name == "opt" {
			continue
		}
		out = append(out, arena.Engine{
			Name:     a.Name,
			RatioNum: a.RatioNum, RatioDen: a.RatioDen,
			Run: a.Run, Applicable: a.Applicable,
		})
	}
	return out
}
