#!/bin/sh
# clustersmoke.sh — the multi-node gate for calibcluster, runnable
# locally (`make clustersmoke`) and in CI. It boots two calibserved
# backends plus calibgate, creates sessions through the gateway, live-
# migrates one, grows the ring with a third backend (join) and shrinks
# it back (leave) asserting every session stays reachable through both
# rebalances, then SIGKILLs one backend and requires the gateway to keep
# serving the surviving shard while answering 503 + Retry-After for the
# dead one. The gateway-aggregated /metrics exposition is validated and
# written to METRICS_OUT (default $WORKDIR/metrics.txt) as the CI
# artifact. Plain sh + curl + sed + grep; no other dependencies.
set -eu

WORKDIR=$(mktemp -d)
METRICS_OUT=${METRICS_OUT:-"$WORKDIR/metrics.txt"}
PIDS=""
cleanup() {
    for p in $PIDS; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

echo "clustersmoke: building calibserved and calibgate"
go build -o "$WORKDIR/calibserved" ./cmd/calibserved
go build -o "$WORKDIR/calibgate" ./cmd/calibgate

# boot LOGFILE CMD [ARGS...]: starts a daemon and sets ADDR/PID from its
# JSON "listening" log record.
boot() {
    LOG="$1"
    shift
    : > "$LOG"
    "$@" 2> "$LOG" &
    PID=$!
    PIDS="$PIDS $PID"
    ADDR=""
    i=0
    while [ $i -lt 100 ]; do
        ADDR=$(sed -n 's/.*"msg":"listening","addr":"\([^"]*\)".*/\1/p' "$LOG" | head -n 1)
        [ -n "$ADDR" ] && break
        kill -0 "$PID" 2>/dev/null || { echo "clustersmoke: daemon died during boot"; cat "$LOG"; exit 1; }
        sleep 0.1
        i=$((i + 1))
    done
    [ -n "$ADDR" ] || { echo "clustersmoke: daemon never reported its address"; cat "$LOG"; exit 1; }
}

boot "$WORKDIR/a.log" "$WORKDIR/calibserved" -addr 127.0.0.1:0 -data-dir "$WORKDIR/data-a" -fsync none
A="http://$ADDR"; A_PID=$PID
boot "$WORKDIR/b.log" "$WORKDIR/calibserved" -addr 127.0.0.1:0 -data-dir "$WORKDIR/data-b" -fsync none
B="http://$ADDR"; B_PID=$PID
boot "$WORKDIR/gw.log" "$WORKDIR/calibgate" -addr 127.0.0.1:0 \
    -backends "$A,$B" -health-interval 200ms -retry-backoff 20ms
GW="http://$ADDR"
echo "clustersmoke: backends $A $B behind gateway $GW"

# status URL [CURL-ARGS...]: HTTP status code only, never fails the script.
status() {
    URL="$1"
    shift
    curl -s -o /dev/null -w '%{http_code}' "$@" "$URL" || echo 000
}

# Create sessions through the gateway and drive each a little.
SESSIONS=""
N=12
i=0
while [ $i -lt $N ]; do
    ID=$(curl -fsS -X POST "$GW/v1/sessions" -d '{"t":6,"g":12,"alg":"alg2"}' \
        | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
    [ -n "$ID" ] || { echo "clustersmoke: create returned no id"; exit 1; }
    curl -fsS -X POST "$GW/v1/sessions/$ID/arrivals" \
        -d '{"jobs":[{"release":1,"weight":4},{"release":3,"weight":1}]}' > /dev/null
    curl -fsS -X POST "$GW/v1/sessions/$ID/step" -d '{"steps":4}' > /dev/null
    SESSIONS="$SESSIONS $ID"
    i=$((i + 1))
done
echo "clustersmoke: created $N sessions through the gateway"

# reachable LABEL: every session must answer 200 through the gateway.
# The acceptance bar is >= 99% correct routing; the smoke demands 100%.
reachable() {
    OK=0
    for ID in $SESSIONS; do
        [ "$(status "$GW/v1/sessions/$ID")" = 200 ] && OK=$((OK + 1))
    done
    echo "clustersmoke: $1: $OK/$N sessions reachable"
    [ "$OK" -eq "$N" ] || { echo "clustersmoke: routing broken after $1"; exit 1; }
}
reachable "initial placement"

# Live-migrate the first session and keep driving it.
FIRST=${SESSIONS# }
FIRST=${FIRST%% *}
MIG=$(curl -fsS -X POST "$GW/v1/cluster/migrate" -d "{\"session\":\"$FIRST\"}")
echo "clustersmoke: migrated: $MIG"
echo "$MIG" | grep -q '"from"' || { echo "clustersmoke: migrate response malformed"; exit 1; }
curl -fsS -X POST "$GW/v1/sessions/$FIRST/step" -d '{"steps":4}' > /dev/null

# Cross-node tracing: drive one step with an injected W3C traceparent
# and require the gateway's stitched trace to carry the same trace ID
# with at least three distinct attributed phases (proxy at the gateway
# plus http/queue-wait/engine-step from the owning backend). Spans land
# asynchronously after the response, so poll briefly.
TRACE_ID=4bf92f3577b34da6a3ce929d0e0e4736
curl -fsS -X POST "$GW/v1/sessions/$FIRST/step" \
    -H "traceparent: 00-$TRACE_ID-00f067aa0ba902b7-01" -d '{"steps":2}' > /dev/null
PHASES=0
i=0
while [ $i -lt 50 ]; do
    TRACE=$(curl -s "$GW/v1/traces/$TRACE_ID" || true)
    PHASES=$(echo "$TRACE" | grep -o '"phase":"[^"]*"' | sort -u | wc -l)
    [ "$PHASES" -ge 3 ] && break
    sleep 0.1
    i=$((i + 1))
done
[ "$PHASES" -ge 3 ] || { echo "clustersmoke: stitched trace has $PHASES phases, want >= 3: $TRACE"; exit 1; }
echo "$TRACE" | grep -q "\"trace_id\":\"$TRACE_ID\"" || { echo "clustersmoke: stitched trace lost the injected trace ID"; exit 1; }
echo "$TRACE" | grep -q '"phase":"proxy"' || { echo "clustersmoke: stitched trace has no gateway proxy span"; exit 1; }
echo "clustersmoke: stitched trace $TRACE_ID spans $PHASES phases through the gateway"

# Grow the ring: boot a third backend and join it; only ring-moved
# sessions migrate, and every session must remain reachable.
boot "$WORKDIR/c.log" "$WORKDIR/calibserved" -addr 127.0.0.1:0 -data-dir "$WORKDIR/data-c" -fsync none
C="http://$ADDR"
JOIN=$(curl -fsS -X POST "$GW/v1/cluster/join" -d "{\"node\":\"$C\"}")
echo "clustersmoke: join: $JOIN"
echo "$JOIN" | grep -q '"failed"' && { echo "clustersmoke: join rebalance had failures"; exit 1; }
reachable "join rebalance"

# Shrink it back: drain the third node out gracefully.
LEAVE=$(curl -fsS -X POST "$GW/v1/cluster/leave" -d "{\"node\":\"$C\"}")
echo "clustersmoke: leave: $LEAVE"
echo "$LEAVE" | grep -q '"failed"' && { echo "clustersmoke: leave rebalance had failures"; exit 1; }
reachable "leave rebalance"

# Find one session living on each surviving backend (list each node
# directly; the gateway owns the routing, the node owns the truth).
SESS_A=$(curl -fsS "$A/v1/sessions" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p' | head -n 1)
SESS_B=$(curl -fsS "$B/v1/sessions" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p' | head -n 1)
[ -n "$SESS_A" ] || { echo "clustersmoke: backend A holds no sessions"; exit 1; }
[ -n "$SESS_B" ] || { echo "clustersmoke: backend B holds no sessions"; exit 1; }

echo "clustersmoke: SIGKILL backend B ($B_PID)"
kill -9 "$B_PID"
wait "$B_PID" 2>/dev/null || true

# The dead node's sessions must turn into 503 + Retry-After (fail-open)
# once the gateway notices — first contact may be a 502 while the dial
# failure is being discovered.
DEAD=""
i=0
while [ $i -lt 50 ]; do
    CODE=$(status "$GW/v1/sessions/$SESS_B")
    if [ "$CODE" = 503 ]; then DEAD=yes; break; fi
    [ "$CODE" = 502 ] || [ "$CODE" = 200 ] || { echo "clustersmoke: unexpected status $CODE for dead-node session"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$DEAD" ] || { echo "clustersmoke: gateway never flipped to 503 for the dead node"; exit 1; }
curl -s -D - -o /dev/null "$GW/v1/sessions/$SESS_B" | grep -qi '^retry-after:' \
    || { echo "clustersmoke: dead-node 503 carries no Retry-After"; exit 1; }

# The surviving shard keeps serving through the gateway.
[ "$(status "$GW/v1/sessions/$SESS_A")" = 200 ] || { echo "clustersmoke: surviving shard unreachable"; exit 1; }
curl -fsS -X POST "$GW/v1/sessions/$SESS_A/step" -d '{"steps":2}' > /dev/null
echo "clustersmoke: surviving shard still serving; dead shard fails open with 503"

# Aggregated metrics: scrape, save as the artifact, and validate the
# exposition — every line a comment or a well-formed sample (optionally
# carrying an OpenMetrics exemplar suffix on histogram buckets),
# counters present from both planes, and the dead node reported down.
curl -fsS "$GW/metrics" > "$METRICS_OUT"
grep -q '^# TYPE calibserved_sessions_created counter$' "$METRICS_OUT"
grep -q '^calibgate_sessions_migrated ' "$METRICS_OUT"
grep -q '^calibgate_rebalances ' "$METRICS_OUT"
grep -q '^calibgate_build_info{' "$METRICS_OUT"
grep -q 'calibserved_build_info{' "$METRICS_OUT"
grep -q "calibgate_node_up{node=\"$B\"} 0" "$METRICS_OUT"
grep -q "calibgate_node_up{node=\"$A\"} 1" "$METRICS_OUT"
BAD=$(grep -Ev '^$|^#|^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?( # \{[a-zA-Z_]+="[^"]*"\} -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)?$' "$METRICS_OUT" || true)
[ -z "$BAD" ] || { echo "clustersmoke: malformed exposition lines:"; echo "$BAD"; exit 1; }
echo "clustersmoke: aggregated metrics valid ($(wc -l < "$METRICS_OUT") lines) at $METRICS_OUT"

echo "clustersmoke: PASS"
