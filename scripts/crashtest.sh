#!/bin/sh
# crashtest.sh — the kill -9 gate for calibstore, runnable locally
# (`make crashtest`) and in CI. It boots calibserved with a data dir,
# drives real traffic over HTTP, captures the schedule, SIGKILLs the
# daemon mid-flight, restarts it on the same directory, and requires the
# recovered schedule to be byte-identical — then keeps stepping to prove
# the recovered session is live, and drains cleanly. Plain sh + curl +
# sed + diff; no other dependencies.
set -eu

WORKDIR=$(mktemp -d)
BIN="$WORKDIR/calibserved"
DATA="$WORKDIR/data"
PID=""
cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

echo "crashtest: building calibserved"
go build -o "$BIN" ./cmd/calibserved

# boot LOGFILE DATADIR FSYNC: starts the daemon and sets ADDR/PID from
# its JSON log.
boot() {
    : > "$1"
    "$BIN" -addr 127.0.0.1:0 -data-dir "$2" -fsync "$3" -snapshot-every 5 2> "$1" &
    PID=$!
    ADDR=""
    i=0
    while [ $i -lt 100 ]; do
        ADDR=$(sed -n 's/.*"msg":"listening","addr":"\([^"]*\)".*/\1/p' "$1")
        [ -n "$ADDR" ] && break
        kill -0 "$PID" 2>/dev/null || { echo "crashtest: daemon died during boot"; cat "$1"; exit 1; }
        sleep 0.1
        i=$((i + 1))
    done
    [ -n "$ADDR" ] || { echo "crashtest: daemon never reported its address"; cat "$1"; exit 1; }
    BASE="http://$ADDR"
}

boot "$WORKDIR/boot1.log" "$DATA" none
echo "crashtest: daemon up at $BASE (pid $PID)"

curl -fsS -X POST "$BASE/v1/sessions" -d '{"t":6,"g":12,"alg":"alg2"}' > /dev/null
SESS="$BASE/v1/sessions/s-000001"
curl -fsS -X POST "$SESS/arrivals" \
    -d '{"jobs":[{"release":0,"weight":5},{"release":2,"weight":1},{"release":9,"weight":3}]}' > /dev/null
curl -fsS -X POST "$SESS/step" -d '{"steps":4}' > /dev/null
curl -fsS -X POST "$SESS/arrivals" -d '{"jobs":[{"release":12,"weight":7}]}' > /dev/null
curl -fsS -X POST "$SESS/step" -d '{"steps":3}' > /dev/null
curl -fsS "$SESS/schedule" > "$WORKDIR/before.json"

echo "crashtest: SIGKILL $PID mid-flight"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

boot "$WORKDIR/boot2.log" "$DATA" none
echo "crashtest: recovered daemon at $BASE (pid $PID)"
SESS="$BASE/v1/sessions/s-000001"
curl -fsS "$SESS/schedule" > "$WORKDIR/after.json"

if ! diff -u "$WORKDIR/before.json" "$WORKDIR/after.json"; then
    echo "crashtest: FAIL — schedule diverged across kill -9 + recovery"
    exit 1
fi
echo "crashtest: schedules byte-identical across recovery"

# The recovered session must keep serving, not just replay.
curl -fsS -X POST "$SESS/step" -d '{"steps":60}' | grep -q '"done":true' || {
    echo "crashtest: FAIL — recovered session did not finish its jobs"
    exit 1
}

kill -TERM "$PID"
wait "$PID" || { echo "crashtest: FAIL — daemon exited non-zero on drain"; cat "$WORKDIR/boot2.log"; exit 1; }
PID=""
grep -q 'drained cleanly' "$WORKDIR/boot2.log" || {
    echo "crashtest: FAIL — no clean drain after recovery"; cat "$WORKDIR/boot2.log"; exit 1;
}
echo "crashtest: phase 1 (fsync none) PASS"

# ---------------------------------------------------------------------
# Phase 2: group commit (-fsync always, the default -group-commit on).
# Three sessions take synchronous, acknowledged traffic; a background
# step is fired on session 3 and the daemon is SIGKILLed immediately, so
# the kill lands while the group committer may be mid-write or mid-fsync
# on the shared journal. Required: every acknowledged command survives
# (sessions 1 and 2 byte-identical), and a second kill -9 with no new
# commands recovers byte-identically (the journal merge is idempotent).
# ---------------------------------------------------------------------
echo "crashtest: phase 2 — group commit with mid-group-commit kill"
DATA2="$WORKDIR/data2"

boot "$WORKDIR/boot3.log" "$DATA2" always
echo "crashtest: group-commit daemon up at $BASE (pid $PID)"
grep -q '"group_commit":true' "$WORKDIR/boot3.log" || {
    echo "crashtest: FAIL — group commit not active under -fsync always"; cat "$WORKDIR/boot3.log"; exit 1;
}

i=1
while [ $i -le 3 ]; do
    curl -fsS -X POST "$BASE/v1/sessions" -d '{"t":6,"g":12,"alg":"alg2"}' > /dev/null
    S="$BASE/v1/sessions/s-00000$i"
    curl -fsS -X POST "$S/arrivals" \
        -d "{\"jobs\":[{\"release\":0,\"weight\":$i},{\"release\":3,\"weight\":2}]}" > /dev/null
    curl -fsS -X POST "$S/step" -d '{"steps":5}' > /dev/null
    curl -fsS "$S/schedule" > "$WORKDIR/g_before_$i.json"
    i=$((i + 1))
done
[ -f "$DATA2/commit.log" ] || {
    echo "crashtest: FAIL — no group-commit journal on disk"; exit 1;
}

# In-flight command on session 3 only; its ack may or may not land
# before the kill, so only sessions 1 and 2 have a pinned schedule.
curl -fsS -X POST "$BASE/v1/sessions/s-000003/step" -d '{"steps":4}' > /dev/null 2>&1 &
CURL_PID=$!
sleep 0.05
echo "crashtest: SIGKILL $PID mid-group-commit"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
wait "$CURL_PID" 2>/dev/null || true
PID=""

boot "$WORKDIR/boot4.log" "$DATA2" always
echo "crashtest: recovered group-commit daemon at $BASE (pid $PID)"
i=1
while [ $i -le 2 ]; do
    curl -fsS "$BASE/v1/sessions/s-00000$i/schedule" > "$WORKDIR/g_after_$i.json"
    if ! diff -u "$WORKDIR/g_before_$i.json" "$WORKDIR/g_after_$i.json"; then
        echo "crashtest: FAIL — acknowledged schedule of session $i lost across mid-commit kill"
        exit 1
    fi
    i=$((i + 1))
done
curl -fsS "$BASE/v1/sessions/s-000003/schedule" > "$WORKDIR/g_rec1_3.json"
echo "crashtest: acknowledged schedules intact across mid-commit kill"

# Double crash with no new commands: recovery must be deterministic.
echo "crashtest: SIGKILL $PID again (no new commands)"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

boot "$WORKDIR/boot5.log" "$DATA2" always
curl -fsS "$BASE/v1/sessions/s-000003/schedule" > "$WORKDIR/g_rec2_3.json"
if ! diff -u "$WORKDIR/g_rec1_3.json" "$WORKDIR/g_rec2_3.json"; then
    echo "crashtest: FAIL — recovery not idempotent across a double kill -9"
    exit 1
fi
echo "crashtest: double-crash recovery byte-identical"

# The recovered fleet must keep serving under group commit.
curl -fsS -X POST "$BASE/v1/sessions/s-000001/step" -d '{"steps":60}' | grep -q '"done":true' || {
    echo "crashtest: FAIL — recovered group-commit session did not finish its jobs"
    exit 1
}

kill -TERM "$PID"
wait "$PID" || { echo "crashtest: FAIL — group-commit daemon exited non-zero on drain"; cat "$WORKDIR/boot5.log"; exit 1; }
PID=""
grep -q 'drained cleanly' "$WORKDIR/boot5.log" || {
    echo "crashtest: FAIL — no clean drain after group-commit recovery"; cat "$WORKDIR/boot5.log"; exit 1;
}
echo "crashtest: PASS"
