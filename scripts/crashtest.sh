#!/bin/sh
# crashtest.sh — the kill -9 gate for calibstore, runnable locally
# (`make crashtest`) and in CI. It boots calibserved with a data dir,
# drives real traffic over HTTP, captures the schedule, SIGKILLs the
# daemon mid-flight, restarts it on the same directory, and requires the
# recovered schedule to be byte-identical — then keeps stepping to prove
# the recovered session is live, and drains cleanly. Plain sh + curl +
# sed + diff; no other dependencies.
set -eu

WORKDIR=$(mktemp -d)
BIN="$WORKDIR/calibserved"
DATA="$WORKDIR/data"
PID=""
cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

echo "crashtest: building calibserved"
go build -o "$BIN" ./cmd/calibserved

# boot LOGFILE: starts the daemon and sets ADDR/PID from its JSON log.
boot() {
    : > "$1"
    "$BIN" -addr 127.0.0.1:0 -data-dir "$DATA" -fsync none -snapshot-every 5 2> "$1" &
    PID=$!
    ADDR=""
    i=0
    while [ $i -lt 100 ]; do
        ADDR=$(sed -n 's/.*"msg":"listening","addr":"\([^"]*\)".*/\1/p' "$1")
        [ -n "$ADDR" ] && break
        kill -0 "$PID" 2>/dev/null || { echo "crashtest: daemon died during boot"; cat "$1"; exit 1; }
        sleep 0.1
        i=$((i + 1))
    done
    [ -n "$ADDR" ] || { echo "crashtest: daemon never reported its address"; cat "$1"; exit 1; }
    BASE="http://$ADDR"
}

boot "$WORKDIR/boot1.log"
echo "crashtest: daemon up at $BASE (pid $PID)"

curl -fsS -X POST "$BASE/v1/sessions" -d '{"t":6,"g":12,"alg":"alg2"}' > /dev/null
SESS="$BASE/v1/sessions/s-000001"
curl -fsS -X POST "$SESS/arrivals" \
    -d '{"jobs":[{"release":0,"weight":5},{"release":2,"weight":1},{"release":9,"weight":3}]}' > /dev/null
curl -fsS -X POST "$SESS/step" -d '{"steps":4}' > /dev/null
curl -fsS -X POST "$SESS/arrivals" -d '{"jobs":[{"release":12,"weight":7}]}' > /dev/null
curl -fsS -X POST "$SESS/step" -d '{"steps":3}' > /dev/null
curl -fsS "$SESS/schedule" > "$WORKDIR/before.json"

echo "crashtest: SIGKILL $PID mid-flight"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

boot "$WORKDIR/boot2.log"
echo "crashtest: recovered daemon at $BASE (pid $PID)"
SESS="$BASE/v1/sessions/s-000001"
curl -fsS "$SESS/schedule" > "$WORKDIR/after.json"

if ! diff -u "$WORKDIR/before.json" "$WORKDIR/after.json"; then
    echo "crashtest: FAIL — schedule diverged across kill -9 + recovery"
    exit 1
fi
echo "crashtest: schedules byte-identical across recovery"

# The recovered session must keep serving, not just replay.
curl -fsS -X POST "$SESS/step" -d '{"steps":60}' | grep -q '"done":true' || {
    echo "crashtest: FAIL — recovered session did not finish its jobs"
    exit 1
}

kill -TERM "$PID"
wait "$PID" || { echo "crashtest: FAIL — daemon exited non-zero on drain"; cat "$WORKDIR/boot2.log"; exit 1; }
PID=""
grep -q 'drained cleanly' "$WORKDIR/boot2.log" || {
    echo "crashtest: FAIL — no clean drain after recovery"; cat "$WORKDIR/boot2.log"; exit 1;
}
echo "crashtest: PASS"
