module calibsched

go 1.22
