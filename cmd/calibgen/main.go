// Command calibgen generates calibration-scheduling workload files in the
// plain-text instance format understood by calibsim and
// calibsched.ReadInstance.
//
// Example:
//
//	calibgen -n 100 -p 1 -T 16 -arrival poisson -lambda 0.3 -weights zipf -seed 7 > inst.txt
//	calibgen -n 60 -T 8 -family weight-spike -seed 3 > spike.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"calibsched/internal/workload"
)

func main() {
	os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr))
}

// cliMain parses and validates flags, then emits one instance to stdout.
// Exit codes: 0 ok, 1 runtime failure, 2 usage error.
func cliMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("calibgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n       = fs.Int("n", 50, "number of jobs")
		p       = fs.Int("p", 1, "number of machines")
		t       = fs.Int64("T", 10, "calibration length T")
		seed    = fs.Uint64("seed", 1, "PRNG seed")
		arrival = fs.String("arrival", "poisson", "arrival process: poisson|bursty|uniform|periodic|batch")
		lambda  = fs.Float64("lambda", 0.3, "poisson: arrivals per step")
		burst   = fs.Int("burst", 5, "bursty: jobs per burst")
		gap     = fs.Int64("gap", 50, "bursty: steps between bursts")
		jitter  = fs.Int64("jitter", 0, "bursty: per-job jitter")
		horizon = fs.Int64("horizon", 1000, "uniform: release range")
		period  = fs.Int64("period", 10, "periodic: steps between releases")
		batches = fs.Int("batches", 4, "batch: number of batches")
		spacing = fs.Int64("spacing", 100, "batch: steps between batches")
		weights = fs.String("weights", "unit", "weight law: unit|uniform|zipf|bimodal")
		wmax    = fs.Int64("wmax", 10, "uniform/zipf: maximum weight")
		zipfS   = fs.Float64("zipf-s", 1.5, "zipf: exponent")
		light   = fs.Int64("light", 1, "bimodal: light weight")
		heavy   = fs.Int64("heavy", 100, "bimodal: heavy weight")
		pheavy  = fs.Float64("pheavy", 0.05, "bimodal: probability of heavy")
		family  = fs.String("family", "", "named workload family preset (overrides -arrival/-weights): "+strings.Join(workload.FamilyNames(), "|"))
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "calibgen: unexpected argument %q; calibgen takes flags only and writes to stdout\n", fs.Arg(0))
		return 2
	}
	if *n < 0 || *p < 1 || *t < 1 {
		fmt.Fprintf(stderr, "calibgen: -n must be >= 0 and -p, -T >= 1 (got -n %d -p %d -T %d)\n", *n, *p, *t)
		return 2
	}
	if *family != "" {
		// A family is a complete preset: combining it with the shape
		// flags would silently ignore one of them.
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		for _, conflict := range []string{"arrival", "weights", "lambda", "burst", "gap", "jitter", "horizon", "period", "batches", "spacing", "wmax", "zipf-s", "light", "heavy", "pheavy"} {
			if set[conflict] {
				fmt.Fprintf(stderr, "calibgen: -family is a complete preset and conflicts with -%s; drop -%s\n", conflict, conflict)
				return 2
			}
		}
		fam, ok := workload.FamilyByName(*family)
		if !ok {
			fmt.Fprintf(stderr, "calibgen: unknown -family %q; use %s\n", *family, strings.Join(workload.FamilyNames(), "|"))
			return 2
		}
		if err := emitFamily(stdout, fam, *n, *p, *t, *seed); err != nil {
			fmt.Fprintln(stderr, "calibgen:", err)
			return 1
		}
		return 0
	}
	if err := checkKinds(*arrival, *weights); err != nil {
		fmt.Fprintln(stderr, "calibgen:", err)
		return 2
	}

	spec := workload.Spec{
		N: *n, P: *p, T: *t, Seed: *seed,
		Arrival: workload.ArrivalKind(*arrival), Lambda: *lambda,
		Burst: *burst, Gap: *gap, Jitter: *jitter,
		Horizon: *horizon, Period: *period, Batches: *batches, Spacing: *spacing,
		Weights: workload.WeightKind(*weights), WMax: *wmax, ZipfS: *zipfS,
		Light: *light, Heavy: *heavy, PHeavy: *pheavy,
	}
	if err := emit(stdout, spec); err != nil {
		fmt.Fprintln(stderr, "calibgen:", err)
		return 1
	}
	return 0
}

// checkKinds validates the enum-valued flags up front so a typo is a
// usage error naming the valid choices, not a late Build failure.
func checkKinds(arrival, weights string) error {
	switch workload.ArrivalKind(arrival) {
	case workload.ArrivalPoisson, workload.ArrivalBursty, workload.ArrivalUniform,
		workload.ArrivalPeriodic, workload.ArrivalBatch:
	default:
		return fmt.Errorf("unknown -arrival %q; use poisson|bursty|uniform|periodic|batch", arrival)
	}
	switch workload.WeightKind(weights) {
	case workload.WeightUnit, workload.WeightUniform, workload.WeightZipf, workload.WeightBimodal:
	default:
		return fmt.Errorf("unknown -weights %q; use unit|uniform|zipf|bimodal", weights)
	}
	return nil
}

// emitFamily builds a named family's instance and writes it with a
// provenance header.
func emitFamily(w io.Writer, fam workload.Family, n, p int, t int64, seed uint64) error {
	in, err := fam.Build(n, p, t, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# calibgen n=%d p=%d T=%d family=%s seed=%d\n", n, p, t, fam.Name, seed)
	return workload.WriteInstance(w, in)
}

// emit builds the spec's instance and writes it with a provenance header.
func emit(w io.Writer, spec workload.Spec) error {
	in, err := spec.Build()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# calibgen n=%d p=%d T=%d arrival=%s weights=%s seed=%d\n",
		spec.N, spec.P, spec.T, spec.Arrival, spec.Weights, spec.Seed)
	return workload.WriteInstance(w, in)
}
