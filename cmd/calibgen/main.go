// Command calibgen generates calibration-scheduling workload files in the
// plain-text instance format understood by calibsim and
// calibsched.ReadInstance.
//
// Example:
//
//	calibgen -n 100 -p 1 -T 16 -arrival poisson -lambda 0.3 -weights zipf -seed 7 > inst.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"calibsched/internal/workload"
)

func main() {
	var (
		n       = flag.Int("n", 50, "number of jobs")
		p       = flag.Int("p", 1, "number of machines")
		t       = flag.Int64("T", 10, "calibration length T")
		seed    = flag.Uint64("seed", 1, "PRNG seed")
		arrival = flag.String("arrival", "poisson", "arrival process: poisson|bursty|uniform|periodic|batch")
		lambda  = flag.Float64("lambda", 0.3, "poisson: arrivals per step")
		burst   = flag.Int("burst", 5, "bursty: jobs per burst")
		gap     = flag.Int64("gap", 50, "bursty: steps between bursts")
		jitter  = flag.Int64("jitter", 0, "bursty: per-job jitter")
		horizon = flag.Int64("horizon", 1000, "uniform: release range")
		period  = flag.Int64("period", 10, "periodic: steps between releases")
		batches = flag.Int("batches", 4, "batch: number of batches")
		spacing = flag.Int64("spacing", 100, "batch: steps between batches")
		weights = flag.String("weights", "unit", "weight law: unit|uniform|zipf|bimodal")
		wmax    = flag.Int64("wmax", 10, "uniform/zipf: maximum weight")
		zipfS   = flag.Float64("zipf-s", 1.5, "zipf: exponent")
		light   = flag.Int64("light", 1, "bimodal: light weight")
		heavy   = flag.Int64("heavy", 100, "bimodal: heavy weight")
		pheavy  = flag.Float64("pheavy", 0.05, "bimodal: probability of heavy")
	)
	flag.Parse()

	spec := workload.Spec{
		N: *n, P: *p, T: *t, Seed: *seed,
		Arrival: workload.ArrivalKind(*arrival), Lambda: *lambda,
		Burst: *burst, Gap: *gap, Jitter: *jitter,
		Horizon: *horizon, Period: *period, Batches: *batches, Spacing: *spacing,
		Weights: workload.WeightKind(*weights), WMax: *wmax, ZipfS: *zipfS,
		Light: *light, Heavy: *heavy, PHeavy: *pheavy,
	}
	if err := emit(os.Stdout, spec); err != nil {
		fmt.Fprintln(os.Stderr, "calibgen:", err)
		os.Exit(1)
	}
}

// emit builds the spec's instance and writes it with a provenance header.
func emit(w io.Writer, spec workload.Spec) error {
	in, err := spec.Build()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# calibgen n=%d p=%d T=%d arrival=%s weights=%s seed=%d\n",
		spec.N, spec.P, spec.T, spec.Arrival, spec.Weights, spec.Seed)
	return workload.WriteInstance(w, in)
}
