package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"calibsched/internal/workload"
)

func TestEmitRoundTrips(t *testing.T) {
	spec := workload.Spec{
		N: 20, P: 2, T: 6, Seed: 9,
		Arrival: workload.ArrivalPoisson, Lambda: 0.4,
		Weights: workload.WeightUniform, WMax: 5,
	}
	var buf bytes.Buffer
	if err := emit(&buf, spec); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# calibgen") {
		t.Errorf("missing provenance header: %q", out[:40])
	}
	in, err := workload.ReadInstance(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 20 || in.P != 2 || in.T != 6 {
		t.Fatalf("round trip shape: n=%d P=%d T=%d", in.N(), in.P, in.T)
	}
	// Determinism: identical spec, identical bytes.
	var buf2 bytes.Buffer
	if err := emit(&buf2, spec); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("same spec produced different output")
	}
}

func TestEmitRejectsBadSpec(t *testing.T) {
	var buf bytes.Buffer
	if err := emit(&buf, workload.Spec{N: 1, P: 1, T: 1, Arrival: "nope"}); err == nil {
		t.Error("bad arrival kind accepted")
	}
}

// TestCLIErrorPaths: every bad invocation must exit 2 with a one-line
// message naming the valid choices or the offending flag.
func TestCLIErrorPaths(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		msg  string
	}{
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"positional arg", []string{"out.txt"}, "unexpected argument"},
		{"unknown arrival", []string{"-arrival", "gaussian"}, "poisson|bursty|uniform|periodic|batch"},
		{"unknown weights", []string{"-weights", "pareto"}, "unit|uniform|zipf|bimodal"},
		{"negative n", []string{"-n", "-3"}, "-n must be >= 0"},
		{"zero machines", []string{"-p", "0"}, "-p, -T >= 1"},
		{"zero T", []string{"-T", "0"}, "-p, -T >= 1"},
	} {
		var stdout, stderr bytes.Buffer
		if code := cliMain(tc.args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr %q)", tc.name, code, stderr.String())
			continue
		}
		if !strings.Contains(stderr.String(), tc.msg) {
			t.Errorf("%s: stderr %q does not mention %q", tc.name, stderr.String(), tc.msg)
		}
		if stdout.Len() != 0 {
			t.Errorf("%s: wrote to stdout on a usage error: %q", tc.name, stdout.String())
		}
	}
}

// TestFamilyGolden pins the three adversarial families byte-for-byte:
// the same seed must regenerate exactly the committed instance file, so
// any drift in the generators (or the PRNG) is a visible diff here.
func TestFamilyGolden(t *testing.T) {
	for _, fam := range []string{"release-burst", "weight-spike", "calibration-starvation"} {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			args := []string{"-n", "24", "-T", "6", "-family", fam, "-seed", "7"}
			var out1, out2, stderr bytes.Buffer
			if code := cliMain(args, &out1, &stderr); code != 0 {
				t.Fatalf("exit %d, stderr %q", code, stderr.String())
			}
			if code := cliMain(args, &out2, &stderr); code != 0 {
				t.Fatalf("second run exit %d, stderr %q", code, stderr.String())
			}
			if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
				t.Fatal("same seed produced different bytes across runs")
			}
			golden, err := os.ReadFile("testdata/" + fam + ".golden")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out1.Bytes(), golden) {
				t.Errorf("output differs from committed golden testdata/%s.golden:\n%s", fam, out1.String())
			}
		})
	}
}

// TestFamilyCLIErrors covers the -family flag's own error paths.
func TestFamilyCLIErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		msg  string
	}{
		{"unknown family", []string{"-family", "gaussian-storm"}, "unknown -family"},
		{"family vs arrival", []string{"-family", "weight-spike", "-arrival", "poisson"}, "conflicts with -arrival"},
		{"family vs weights", []string{"-family", "weight-spike", "-weights", "zipf"}, "conflicts with -weights"},
	} {
		var stdout, stderr bytes.Buffer
		if code := cliMain(tc.args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr %q)", tc.name, code, stderr.String())
			continue
		}
		if !strings.Contains(stderr.String(), tc.msg) {
			t.Errorf("%s: stderr %q does not mention %q", tc.name, stderr.String(), tc.msg)
		}
	}
}

func TestCLISuccess(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := cliMain([]string{"-n", "12", "-T", "5", "-weights", "zipf", "-seed", "4"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr.String())
	}
	in, err := workload.ReadInstance(strings.NewReader(stdout.String()))
	if err != nil {
		t.Fatalf("output is not a readable instance: %v", err)
	}
	if in.N() != 12 || in.T != 5 {
		t.Errorf("instance shape n=%d T=%d, want 12/5", in.N(), in.T)
	}
}
