package main

import (
	"bytes"
	"strings"
	"testing"

	"calibsched/internal/workload"
)

func TestEmitRoundTrips(t *testing.T) {
	spec := workload.Spec{
		N: 20, P: 2, T: 6, Seed: 9,
		Arrival: workload.ArrivalPoisson, Lambda: 0.4,
		Weights: workload.WeightUniform, WMax: 5,
	}
	var buf bytes.Buffer
	if err := emit(&buf, spec); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# calibgen") {
		t.Errorf("missing provenance header: %q", out[:40])
	}
	in, err := workload.ReadInstance(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 20 || in.P != 2 || in.T != 6 {
		t.Fatalf("round trip shape: n=%d P=%d T=%d", in.N(), in.P, in.T)
	}
	// Determinism: identical spec, identical bytes.
	var buf2 bytes.Buffer
	if err := emit(&buf2, spec); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("same spec produced different output")
	}
}

func TestEmitRejectsBadSpec(t *testing.T) {
	var buf bytes.Buffer
	if err := emit(&buf, workload.Spec{N: 1, P: 1, T: 1, Arrival: "nope"}); err == nil {
		t.Error("bad arrival kind accepted")
	}
}
