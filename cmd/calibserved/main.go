// Command calibserved is the calibration-scheduling daemon: it hosts
// many independent online scheduling sessions (Algorithm 1 or 2 of the
// paper as incremental engines) behind a JSON/HTTP API with bounded
// arrival queues, idle-session eviction, decision-event tracing, and a
// Prometheus/expvar metrics plane.
//
// Quickstart:
//
//	calibserved -addr :8373 &
//	curl -s localhost:8373/healthz
//	curl -s -X POST localhost:8373/v1/sessions -d '{"t":10,"g":32,"alg":"alg2"}'
//	curl -s localhost:8373/v1/sessions/s-000001/trace
//	curl -s localhost:8373/metrics | grep calibserved
//
// All logging is structured JSON on stderr (one record per line). With
// -debug-addr set, net/http/pprof and /debug/vars are served on that
// separate listener so the profiling surface never shares the API port.
//
// cmd/calibload is the matching load generator; DESIGN.md §7 documents
// the API schema and the backpressure contract, §8 the observability
// plane.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"calibsched/internal/online"
	"calibsched/internal/server"
	"calibsched/internal/server/metrics"
	"calibsched/internal/store"
)

// version identifies the build in calibserved_build_info; release
// tooling overrides it with -ldflags "-X main.version=...".
var version = "dev"

func main() {
	os.Exit(cliMain(os.Args[1:], os.Stderr, signalContext()))
}

// signalContext cancels on SIGINT/SIGTERM.
func signalContext() context.Context {
	ctx, _ := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	return ctx
}

// cliMain parses flags and runs the daemon until ctx is cancelled.
// Split from main so tests can drive a full boot/serve/drain cycle.
func cliMain(args []string, stderr io.Writer, ctx context.Context) int {
	fs := flag.NewFlagSet("calibserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr            = fs.String("addr", ":8373", "listen address (host:port; :0 picks a free port)")
		debugAddr       = fs.String("debug-addr", "", "separate listen address for pprof and /debug/vars (empty disables)")
		maxSessions     = fs.Int("max-sessions", 1024, "maximum live sessions (creation beyond it gets 429)")
		maxBuffer       = fs.Int("buffer", 4096, "per-session arrival buffer bound (fuller gets 429 + Retry-After)")
		maxStepBatch    = fs.Int64("max-step-batch", 100_000, "maximum steps one request may simulate")
		traceRing       = fs.Int("trace-ring", 1024, "per-session decision-event ring capacity for /v1/sessions/{id}/trace")
		idleTTL         = fs.Duration("idle-ttl", 10*time.Minute, "evict sessions idle this long (0 disables)")
		shutdownTimeout = fs.Duration("shutdown-timeout", 10*time.Second, "grace period for draining on shutdown")
		logLevel        = fs.String("log-level", "info", "minimum log level: debug, info, warn, or error")
		dataDir         = fs.String("data-dir", "", "directory for durable session state: per-session WAL + snapshots, replayed on boot (empty disables persistence)")
		fsyncMode       = fs.String("fsync", "batch", "WAL durability with -data-dir: always (fsync every record), batch (fsync every 64 records), or none (OS-buffered)")
		groupCommit     = fs.Bool("group-commit", true, "with -fsync always, share one journal fsync across all commands in flight instead of one fsync per record (same durability, amortized cost)")
		snapshotEvery   = fs.Int("snapshot-every", 256, "WAL records between snapshots with -data-dir (each snapshot truncates the log)")
		readTimeout     = fs.Duration("read-timeout", 30*time.Second, "maximum duration for reading an entire request, body included (0 disables)")
		writeTimeout    = fs.Duration("write-timeout", 60*time.Second, "maximum duration for writing a response (0 disables)")
		idleTimeout     = fs.Duration("idle-timeout", 2*time.Minute, "keep-alive connection idle timeout (0 means use read-timeout)")
		solveWorkers    = fs.Int("solve-workers", 0, "concurrent exact-DP solves in the /v1/solve pool (0 = GOMAXPROCS)")
		solveQueue      = fs.Int("solve-queue", 64, "queued /v1/solve requests before 429 backpressure")
		solveCache      = fs.Int("solve-cache", 128, "solve result-cache capacity in entries (negative disables caching)")
		spanStore       = fs.Int("span-store", 512, "request-trace store capacity in traces for GET /v1/traces (negative disables span recording)")
		slowThreshold   = fs.Duration("trace-slow-threshold", 250*time.Millisecond, "retain traces whose root span is at least this slow ahead of FIFO eviction (0 keeps pure FIFO)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "calibserved: unexpected argument %q (flags only)\n", fs.Arg(0))
		return 2
	}
	if *maxSessions < 1 || *maxBuffer < 1 || *maxStepBatch < 1 || *traceRing < 1 {
		fmt.Fprintln(stderr, "calibserved: -max-sessions, -buffer, -max-step-batch, and -trace-ring must all be >= 1")
		return 2
	}
	if *snapshotEvery < 1 {
		fmt.Fprintln(stderr, "calibserved: -snapshot-every must be >= 1")
		return 2
	}
	if *readTimeout < 0 || *writeTimeout < 0 || *idleTimeout < 0 {
		fmt.Fprintln(stderr, "calibserved: -read-timeout, -write-timeout, and -idle-timeout must all be >= 0")
		return 2
	}
	if *solveWorkers < 0 || *solveQueue < 1 {
		fmt.Fprintln(stderr, "calibserved: -solve-workers must be >= 0 and -solve-queue >= 1")
		return 2
	}
	fsyncPolicy, err := store.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		fmt.Fprintf(stderr, "calibserved: bad -fsync %q (want always, batch, or none)\n", *fsyncMode)
		return 2
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(stderr, "calibserved: bad -log-level %q (want debug, info, warn, or error)\n", *logLevel)
		return 2
	}
	logger := slog.New(slog.NewJSONHandler(stderr, &slog.HandlerOptions{Level: level}))
	var st *store.Store
	if *dataDir != "" {
		// Open probes writability, so a missing or read-only data dir
		// fails the boot here rather than surfacing on the first append.
		st, err = store.Open(*dataDir, store.Options{Fsync: fsyncPolicy, GroupCommit: *groupCommit})
		if err != nil {
			fmt.Fprintln(stderr, "calibserved:", err)
			return 1
		}
		// Sessions settle during serve's shutdown drain; stopping the
		// group committer after that never strands an in-flight append.
		defer st.Close()
		logger.Info("persistence enabled", "data_dir", *dataDir, "fsync", fsyncPolicy.String(),
			"group_commit", st.Committer() != nil, "snapshot_every", *snapshotEvery)
	}
	timeouts := httpTimeouts{
		Read:  *readTimeout,
		Write: *writeTimeout,
		Idle:  *idleTimeout,
	}
	fsyncLabel := "none"
	if *dataDir != "" {
		fsyncLabel = fsyncPolicy.String()
	}
	metrics.SetBuildInfo(metrics.BuildInfo{
		Version: version,
		Fsync:   fsyncLabel,
		Engines: strings.Join(online.EngineNames(), ","),
	})
	if err := serve(ctx, *addr, *debugAddr, server.Config{
		MaxSessions:        *maxSessions,
		MaxBuffer:          *maxBuffer,
		MaxStepBatch:       *maxStepBatch,
		TraceRing:          *traceRing,
		IdleTTL:            *idleTTL,
		Logger:             logger,
		Store:              st,
		SnapshotEvery:      *snapshotEvery,
		SolveWorkers:       *solveWorkers,
		SolveQueueDepth:    *solveQueue,
		SolveCacheSize:     *solveCache,
		SpanStoreSize:      *spanStore,
		SlowTraceThreshold: *slowThreshold,
	}, timeouts, *shutdownTimeout, logger, nil); err != nil {
		fmt.Fprintln(stderr, "calibserved:", err)
		return 1
	}
	return 0
}

// debugMux is the operational debug plane: pprof profiles plus the raw
// expvar registry. It is mounted on its own listener (-debug-addr) so
// the profiling surface is never exposed on the API address.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// httpTimeouts bundles the connection deadlines applied to every
// http.Server the daemon builds (API and debug alike). Only
// ReadHeaderTimeout used to be set, which left slow-body clients free to
// pin connections and session workers forever; full read/write/idle
// deadlines close that hole.
type httpTimeouts struct {
	Read  time.Duration
	Write time.Duration
	Idle  time.Duration
}

// readHeaderTimeout bounds just the request-header read; it is not
// flag-tunable because the full read deadline subsumes it for every
// legitimate client.
const readHeaderTimeout = 10 * time.Second

// newHTTPServer builds an http.Server with the full set of connection
// deadlines. Split out so tests can assert the configuration and so the
// API and debug listeners can never drift apart.
func newHTTPServer(h http.Handler, t httpTimeouts) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: readHeaderTimeout,
		ReadTimeout:       t.Read,
		WriteTimeout:      t.Write,
		IdleTimeout:       t.Idle,
	}
}

// bootHandler answers for the daemon between listen and the end of
// boot-time WAL replay: /healthz reports the process alive, /readyz
// reports "booting" with a 503 (so the cluster gateway's health prober
// does not route sessions here yet — see internal/cluster), and every
// other path gets a 503 + Retry-After.
func bootHandler() http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, status int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(v)
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, server.ReadyResponse{Status: "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusServiceUnavailable, server.ReadyResponse{Status: "booting"})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable,
			server.ErrorResponse{Error: "booting: replaying durable session state; retry shortly"})
	})
	return mux
}

// serve listens on addr (and debugAddr, when set) and serves until ctx
// is cancelled, then drains HTTP connections and session workers within
// the grace period. When ready is non-nil it receives the bound API
// address once listening (tests use it to learn the :0 port).
//
// The listener opens before server.New runs, fronted by bootHandler, so
// a node recovering a large WAL is observable (and observably
// not-ready) for the whole replay instead of connection-refusing.
func serve(ctx context.Context, addr, debugAddr string, cfg server.Config, timeouts httpTimeouts, grace time.Duration, logger *slog.Logger, ready chan<- string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	logger.Info("listening", "addr", ln.Addr().String())

	var debugSrv *http.Server
	if debugAddr != "" {
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("debug listen: %w", err)
		}
		logger.Info("debug listening", "addr", dln.Addr().String())
		debugSrv = newHTTPServer(debugMux(), timeouts)
		go func() {
			if err := debugSrv.Serve(dln); !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug server failed", "err", err)
			}
		}()
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}

	var handler atomic.Pointer[http.Handler] // bootHandler, then the Server
	boot := bootHandler()
	handler.Store(&boot)
	httpSrv := newHTTPServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*handler.Load()).ServeHTTP(w, r)
	}), timeouts)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	srv, err := server.New(cfg) // boot-time WAL replay happens in here
	if err != nil {
		httpSrv.Close()
		if debugSrv != nil {
			debugSrv.Close()
		}
		<-serveErr
		return fmt.Errorf("boot: %w", err)
	}
	var live http.Handler = srv
	handler.Store(&live)
	logger.Info("serving")

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	logger.Info("shutting down", "grace", grace.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if debugSrv != nil {
		if err := debugSrv.Shutdown(drainCtx); err != nil {
			logger.Warn("debug drain incomplete", "err", err)
		}
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		// Connections outlived the grace period; session state is still
		// drained below before we give up the process.
		logger.Warn("http drain incomplete", "err", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("session drain incomplete: %w", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("drained cleanly")
	return nil
}
