// Command calibserved is the calibration-scheduling daemon: it hosts
// many independent online scheduling sessions (Algorithm 1 or 2 of the
// paper as incremental engines) behind a JSON/HTTP API with bounded
// arrival queues, idle-session eviction, and expvar metrics.
//
// Quickstart:
//
//	calibserved -addr :8373 &
//	curl -s localhost:8373/healthz
//	curl -s -X POST localhost:8373/v1/sessions -d '{"t":10,"g":32,"alg":"alg2"}'
//	curl -s localhost:8373/debug/vars | grep calibserved
//
// cmd/calibload is the matching load generator; DESIGN.md §7 documents
// the API schema and the backpressure contract.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"calibsched/internal/server"
)

func main() {
	os.Exit(cliMain(os.Args[1:], os.Stderr, signalContext()))
}

// signalContext cancels on SIGINT/SIGTERM.
func signalContext() context.Context {
	ctx, _ := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	return ctx
}

// cliMain parses flags and runs the daemon until ctx is cancelled.
// Split from main so tests can drive a full boot/serve/drain cycle.
func cliMain(args []string, stderr io.Writer, ctx context.Context) int {
	fs := flag.NewFlagSet("calibserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr            = fs.String("addr", ":8373", "listen address (host:port; :0 picks a free port)")
		maxSessions     = fs.Int("max-sessions", 1024, "maximum live sessions (creation beyond it gets 429)")
		maxBuffer       = fs.Int("buffer", 4096, "per-session arrival buffer bound (fuller gets 429 + Retry-After)")
		maxStepBatch    = fs.Int64("max-step-batch", 100_000, "maximum steps one request may simulate")
		idleTTL         = fs.Duration("idle-ttl", 10*time.Minute, "evict sessions idle this long (0 disables)")
		shutdownTimeout = fs.Duration("shutdown-timeout", 10*time.Second, "grace period for draining on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "calibserved: unexpected argument %q (flags only)\n", fs.Arg(0))
		return 2
	}
	if *maxSessions < 1 || *maxBuffer < 1 || *maxStepBatch < 1 {
		fmt.Fprintln(stderr, "calibserved: -max-sessions, -buffer, and -max-step-batch must all be >= 1")
		return 2
	}
	logger := log.New(stderr, "calibserved: ", log.LstdFlags)
	if err := serve(ctx, *addr, server.Config{
		MaxSessions:  *maxSessions,
		MaxBuffer:    *maxBuffer,
		MaxStepBatch: *maxStepBatch,
		IdleTTL:      *idleTTL,
	}, *shutdownTimeout, logger, nil); err != nil {
		fmt.Fprintln(stderr, "calibserved:", err)
		return 1
	}
	return 0
}

// serve listens on addr and serves until ctx is cancelled, then drains
// HTTP connections and session workers within the grace period. When
// ready is non-nil it receives the bound address once listening (tests
// use it to learn the :0 port).
func serve(ctx context.Context, addr string, cfg server.Config, grace time.Duration, logger *log.Logger, ready chan<- string) error {
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	logger.Printf("listening on %s", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	logger.Printf("shutting down (draining up to %v)", grace)
	drainCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		// Connections outlived the grace period; session state is still
		// drained below before we give up the process.
		logger.Printf("http drain incomplete: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("session drain incomplete: %w", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("drained cleanly")
	return nil
}
