package main

import (
	"bytes"
	"context"
	"encoding/json"
	"log"
	"net/http"
	"strings"
	"testing"
	"time"

	"calibsched/internal/server"
)

// TestServeBootAndDrain drives a full daemon lifecycle on a random port:
// boot, answer /healthz and /debug/vars, run a session, cancel, drain.
func TestServeBootAndDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	var logBuf bytes.Buffer
	logger := log.New(&logBuf, "", 0)
	go func() {
		done <- serve(ctx, "127.0.0.1:0", server.Config{}, 5*time.Second, logger, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("serve exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || health.Status != "ok" {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, health)
	}

	resp, err = http.Post(base+"/v1/sessions", "application/json",
		strings.NewReader(`{"t":5,"g":8,"alg":"alg1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 201 {
		t.Fatalf("create session: %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := vars["calibserved.sessions.created"]; !ok {
		t.Error("/debug/vars missing calibserved counters")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never drained")
	}
	if !strings.Contains(logBuf.String(), "drained cleanly") {
		t.Errorf("no clean-drain log line:\n%s", logBuf.String())
	}
}

func TestCLIFlagErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, tc := range []struct {
		name string
		args []string
		msg  string
	}{
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"positional arg", []string{"extra"}, "unexpected argument"},
		{"bad bounds", []string{"-max-sessions", "0"}, "must all be >= 1"},
	} {
		var stderr bytes.Buffer
		if code := cliMain(tc.args, &stderr, ctx); code != 2 {
			t.Errorf("%s: exit %d, want 2", tc.name, code)
		}
		if !strings.Contains(stderr.String(), tc.msg) {
			t.Errorf("%s: stderr %q does not mention %q", tc.name, stderr.String(), tc.msg)
		}
	}
}

func TestCLIListenError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stderr bytes.Buffer
	if code := cliMain([]string{"-addr", "256.256.256.256:1"}, &stderr, ctx); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "listen") {
		t.Errorf("stderr %q does not mention listen", stderr.String())
	}
}
