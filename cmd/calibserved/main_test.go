package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"calibsched/internal/server"
)

// logBuffer is a goroutine-safe sink for the daemon's JSON log stream.
type logBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *logBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *logBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// logAddr extracts the "addr" attr of the first log record with the
// given msg, or "".
func logAddr(logs, msg string) string {
	for _, line := range strings.Split(logs, "\n") {
		var rec struct {
			Msg  string `json:"msg"`
			Addr string `json:"addr"`
		}
		if json.Unmarshal([]byte(line), &rec) == nil && rec.Msg == msg {
			return rec.Addr
		}
	}
	return ""
}

// TestServeBootAndDrain drives a full daemon lifecycle on a random port:
// boot (API + debug listeners), answer /healthz, /metrics and pprof, run
// a session, cancel, drain.
func TestServeBootAndDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	logBuf := &logBuffer{}
	logger := slog.New(slog.NewJSONHandler(logBuf, nil))
	go func() {
		done <- serve(ctx, "127.0.0.1:0", "127.0.0.1:0", server.Config{Logger: logger}, httpTimeouts{}, 5*time.Second, logger, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("serve exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || health.Status != "ok" {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, health)
	}

	resp, err = http.Post(base+"/v1/sessions", "application/json",
		strings.NewReader(`{"t":5,"g":8,"alg":"alg1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 201 {
		t.Fatalf("create session: %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metricsBody bytes.Buffer
	if _, err := metricsBody.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(metricsBody.String(), "calibserved_sessions_created") {
		t.Fatalf("/metrics: %d\n%s", resp.StatusCode, metricsBody.String())
	}

	// The debug plane lives on its own listener, reported only in the log.
	debugAddr := logAddr(logBuf.String(), "debug listening")
	if debugAddr == "" {
		t.Fatalf("no debug-listening log record:\n%s", logBuf.String())
	}
	for _, path := range []string{"/debug/pprof/cmdline", "/debug/vars"} {
		resp, err := http.Get("http://" + debugAddr + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s on debug listener: %d", path, resp.StatusCode)
		}
	}
	// And it must not leak onto the API listener.
	resp, err = http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Error("pprof reachable on the API address; must be debug-only")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never drained")
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "drained cleanly") {
		t.Errorf("no clean-drain log line:\n%s", logs)
	}
	if logAddr(logs, "listening") != addr {
		t.Errorf("listening record does not carry the bound addr %q:\n%s", addr, logs)
	}
	// Every log line must be one well-formed JSON record.
	for _, line := range strings.Split(strings.TrimSpace(logs), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Errorf("non-JSON log line %q: %v", line, err)
		}
	}
}

// TestBootHandler pins the pre-ready surface: while WAL replay runs the
// process is alive (/healthz ok) but not ready (/readyz "booting"), and
// API calls are refused with a retryable 503 instead of a confusing 404.
func TestBootHandler(t *testing.T) {
	h := bootHandler()
	get := func(method, path string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, "http://x"+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Result()
	}
	resp := get("GET", "/healthz")
	if resp.StatusCode != 200 {
		t.Errorf("boot /healthz: %d, want 200", resp.StatusCode)
	}
	resp = get("GET", "/readyz")
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 503 || !strings.Contains(string(body), "booting") {
		t.Errorf("boot /readyz: %d %s, want 503 booting", resp.StatusCode, body)
	}
	resp = get("POST", "/v1/sessions")
	if resp.StatusCode != 503 || resp.Header.Get("Retry-After") == "" {
		t.Errorf("boot API call: %d (Retry-After %q), want 503 + Retry-After", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

func TestCLIFlagErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, tc := range []struct {
		name string
		args []string
		msg  string
	}{
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"positional arg", []string{"extra"}, "unexpected argument"},
		{"bad bounds", []string{"-max-sessions", "0"}, "must all be >= 1"},
		{"bad trace ring", []string{"-trace-ring", "0"}, "must all be >= 1"},
		{"bad log level", []string{"-log-level", "loud"}, "bad -log-level"},
		{"bad fsync", []string{"-fsync", "sometimes"}, "bad -fsync"},
		{"bad snapshot cadence", []string{"-snapshot-every", "0"}, "-snapshot-every must be >= 1"},
		{"negative read timeout", []string{"-read-timeout", "-1s"}, "must all be >= 0"},
		{"negative write timeout", []string{"-write-timeout", "-5s"}, "must all be >= 0"},
		{"negative idle timeout", []string{"-idle-timeout", "-1ms"}, "must all be >= 0"},
		{"negative solve workers", []string{"-solve-workers", "-1"}, "-solve-workers must be >= 0"},
		{"zero solve queue", []string{"-solve-queue", "0"}, "-solve-queue >= 1"},
	} {
		var stderr bytes.Buffer
		if code := cliMain(tc.args, &stderr, ctx); code != 2 {
			t.Errorf("%s: exit %d, want 2", tc.name, code)
		}
		if !strings.Contains(stderr.String(), tc.msg) {
			t.Errorf("%s: stderr %q does not mention %q", tc.name, stderr.String(), tc.msg)
		}
	}
}

// TestCLIDataDirError: an unusable -data-dir must fail the boot, before
// any listener opens, not surface on the first append.
func TestCLIDataDirError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// A path routed through a regular file cannot become a directory on
	// any platform, regardless of privileges.
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	code := cliMain([]string{"-addr", "127.0.0.1:0", "-data-dir", filepath.Join(blocker, "sub")}, &stderr, ctx)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "store:") {
		t.Errorf("stderr %q does not carry the store error", stderr.String())
	}
}

// waitForAddr polls the log buffer until the daemon reports its bound
// API address.
func waitForAddr(t *testing.T, buf *logBuffer, done chan int) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if addr := logAddr(buf.String(), "listening"); addr != "" {
			return addr
		}
		select {
		case code := <-done:
			t.Fatalf("daemon exited %d before listening:\n%s", code, buf.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHTTPServerTimeouts pins the bugfix contract: every http.Server the
// daemon builds carries the full set of connection deadlines, not just
// ReadHeaderTimeout.
func TestHTTPServerTimeouts(t *testing.T) {
	cfg := httpTimeouts{Read: 7 * time.Second, Write: 11 * time.Second, Idle: 13 * time.Second}
	srv := newHTTPServer(http.NewServeMux(), cfg)
	if srv.ReadTimeout != cfg.Read {
		t.Errorf("ReadTimeout = %v, want %v", srv.ReadTimeout, cfg.Read)
	}
	if srv.WriteTimeout != cfg.Write {
		t.Errorf("WriteTimeout = %v, want %v", srv.WriteTimeout, cfg.Write)
	}
	if srv.IdleTimeout != cfg.Idle {
		t.Errorf("IdleTimeout = %v, want %v", srv.IdleTimeout, cfg.Idle)
	}
	if srv.ReadHeaderTimeout != readHeaderTimeout {
		t.Errorf("ReadHeaderTimeout = %v, want %v", srv.ReadHeaderTimeout, readHeaderTimeout)
	}
}

// TestCLISlowBodyClientDisconnected boots the daemon through cliMain
// with a short -read-timeout and proves a slow-body client is cut off:
// the connection closes instead of pinning a worker forever (the
// pre-fix behavior, where only ReadHeaderTimeout was configured).
func TestCLISlowBodyClientDisconnected(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buf := &logBuffer{}
	done := make(chan int, 1)
	go func() {
		done <- cliMain([]string{"-addr", "127.0.0.1:0", "-read-timeout", "300ms"}, buf, ctx)
	}()
	addr := waitForAddr(t, buf, done)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Headers complete promptly (so ReadHeaderTimeout is satisfied), but
	// the promised body never arrives.
	if _, err := conn.Write([]byte("POST /v1/sessions HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: 100\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	// With ReadTimeout armed the server must close the connection; the
	// read returns (EOF or reset) well within the deadline.
	if _, err := io.ReadAll(conn); err != nil && !errors.Is(err, os.ErrDeadlineExceeded) {
		// A reset is as good as EOF here: the connection died.
		t.Logf("read ended with: %v", err)
	} else if err != nil {
		t.Fatal("server never closed the slow-body connection within 10s")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never exited")
	}
}

// TestCLIRestartRecovers drives the full persistence lifecycle through
// cliMain: boot with -data-dir, run a session, drain, boot a second
// daemon on the same directory, and read back the identical schedule.
// The fsync-always case exercises the default group-commit journal end
// to end (boot, commit path, drain, journal merge on the second boot).
func TestCLIRestartRecovers(t *testing.T) {
	for _, tc := range []struct {
		name      string
		fsyncArgs []string
		wantLog   string
	}{
		{"fsync-none", []string{"-fsync", "none"}, `"group_commit":false`},
		{"fsync-always-group", []string{"-fsync", "always"}, `"group_commit":true`},
	} {
		t.Run(tc.name, func(t *testing.T) { testCLIRestartRecovers(t, tc.fsyncArgs, tc.wantLog) })
	}
}

func testCLIRestartRecovers(t *testing.T, fsyncArgs []string, wantLog string) {
	dir := t.TempDir()
	args := append([]string{"-addr", "127.0.0.1:0", "-data-dir", dir, "-snapshot-every", "2"}, fsyncArgs...)
	run := func(ctx context.Context) (*logBuffer, chan int) {
		buf := &logBuffer{}
		done := make(chan int, 1)
		go func() { done <- cliMain(args, buf, ctx) }()
		return buf, done
	}
	getBody := func(url string, want int) string {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body bytes.Buffer
		if _, err := body.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != want {
			t.Fatalf("GET %s: %d, want %d\n%s", url, resp.StatusCode, want, body.String())
		}
		return body.String()
	}

	ctx1, cancel1 := context.WithCancel(context.Background())
	buf1, done1 := run(ctx1)
	base := "http://" + waitForAddr(t, buf1, done1)
	if !strings.Contains(buf1.String(), "persistence enabled") {
		t.Errorf("no persistence-enabled log record:\n%s", buf1.String())
	}
	if !strings.Contains(buf1.String(), wantLog) {
		t.Errorf("boot log missing %s:\n%s", wantLog, buf1.String())
	}
	resp, err := http.Post(base+"/v1/sessions", "application/json",
		strings.NewReader(`{"t":6,"g":12,"alg":"alg2"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 201 {
		t.Fatalf("create session: %d", resp.StatusCode)
	}
	url := base + "/v1/sessions/s-000001"
	resp, err = http.Post(url+"/arrivals", "application/json",
		strings.NewReader(`{"jobs":[{"release":0,"weight":5},{"release":3,"weight":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("arrivals: %d", resp.StatusCode)
	}
	resp, err = http.Post(url+"/step", "application/json", strings.NewReader(`{"steps":9}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("step: %d", resp.StatusCode)
	}
	want := getBody(url+"/schedule", 200)

	cancel1()
	select {
	case code := <-done1:
		if code != 0 {
			t.Fatalf("first daemon exited %d:\n%s", code, buf1.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("first daemon never drained")
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	buf2, done2 := run(ctx2)
	base2 := "http://" + waitForAddr(t, buf2, done2)
	got := getBody(base2+"/v1/sessions/s-000001/schedule", 200)
	if got != want {
		t.Fatalf("schedule changed across restart\nbefore: %s\nafter:  %s", want, got)
	}
	cancel2()
	select {
	case code := <-done2:
		if code != 0 {
			t.Fatalf("second daemon exited %d:\n%s", code, buf2.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second daemon never drained")
	}
}

func TestCLIListenError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stderr bytes.Buffer
	if code := cliMain([]string{"-addr", "256.256.256.256:1"}, &stderr, ctx); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "listen") {
		t.Errorf("stderr %q does not mention listen", stderr.String())
	}
}
