package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeInstanceFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "inst.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const sampleInstance = "1 5\n3\n0 1\n3 1\n20 1\n"

func TestRunAllAlgorithms(t *testing.T) {
	path := writeInstanceFile(t, sampleInstance)
	for _, alg := range []string{"alg1", "alg2", "opt", "immediate", "always", "periodic", "flow-threshold"} {
		if err := run(path, alg, 16, 0, false, false, false, false); err != nil {
			t.Errorf("alg %s: %v", alg, err)
		}
	}
	multi := writeInstanceFile(t, "2 5\n3\n0 1\n3 1\n20 1\n")
	if err := run(multi, "alg3", 16, 0, true, false, false, false); err != nil {
		t.Errorf("alg3: %v", err)
	}
}

func TestRunOutputsAndOptions(t *testing.T) {
	path := writeInstanceFile(t, sampleInstance)
	if err := run(path, "alg1", 16, 0, true, false, false, true); err != nil {
		t.Errorf("timeline+naive: %v", err)
	}
	if err := run(path, "alg1", 16, 0, false, true, false, false); err != nil {
		t.Errorf("csv: %v", err)
	}
	if err := run(path, "alg1", 16, 0, false, false, true, false); err != nil {
		t.Errorf("json: %v", err)
	}
	if err := run(path, "periodic", 16, 7, false, false, false, false); err != nil {
		t.Errorf("periodic with explicit period: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeInstanceFile(t, sampleInstance)
	if err := run(path, "nope", 16, 0, false, false, false, false); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "missing.txt"), "alg1", 16, 0, false, false, false, false); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeInstanceFile(t, "not an instance")
	if err := run(bad, "alg1", 16, 0, false, false, false, false); err == nil {
		t.Error("malformed instance accepted")
	}
	weighted := writeInstanceFile(t, "1 5\n1\n0 9\n")
	if err := run(weighted, "alg1", 16, 0, false, false, false, false); err == nil {
		t.Error("alg1 on weighted instance accepted")
	}
	multiFlow := writeInstanceFile(t, "2 5\n1\n0 1\n")
	if err := run(multiFlow, "flow-threshold", 16, 0, false, false, false, false); err == nil {
		t.Error("flow-threshold on P=2 accepted")
	}
}

func TestRunCompare(t *testing.T) {
	path := writeInstanceFile(t, sampleInstance)
	if err := runCompare(path, 16, 0); err != nil {
		t.Fatalf("compare unweighted P=1: %v", err)
	}
	weighted := writeInstanceFile(t, "1 5\n3\n0 2\n3 7\n20 1\n")
	if err := runCompare(weighted, 16, 4); err != nil {
		t.Fatalf("compare weighted P=1: %v", err)
	}
	multi := writeInstanceFile(t, "2 5\n4\n0 1\n3 1\n5 1\n20 1\n")
	if err := runCompare(multi, 16, 0); err != nil {
		t.Fatalf("compare unweighted P=2: %v", err)
	}
	if err := runCompare(writeInstanceFile(t, "junk"), 16, 0); err == nil {
		t.Error("compare accepted malformed instance")
	}
}
