package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeInstanceFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "inst.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const sampleInstance = "1 5\n3\n0 1\n3 1\n20 1\n"

// opts builds runOpts for the default report on path with algorithm alg.
func opts(path, alg string) runOpts {
	return runOpts{path: path, alg: alg, g: 16}
}

func TestRunAllAlgorithms(t *testing.T) {
	path := writeInstanceFile(t, sampleInstance)
	for _, alg := range []string{"alg1", "alg2", "opt", "immediate", "always", "periodic", "flow-threshold"} {
		if err := run(opts(path, alg), io.Discard); err != nil {
			t.Errorf("alg %s: %v", alg, err)
		}
	}
	multi := writeInstanceFile(t, "2 5\n3\n0 1\n3 1\n20 1\n")
	o := opts(multi, "alg3")
	o.timeline = true
	if err := run(o, io.Discard); err != nil {
		t.Errorf("alg3: %v", err)
	}
}

func TestRunOutputsAndOptions(t *testing.T) {
	path := writeInstanceFile(t, sampleInstance)
	o := opts(path, "alg1")
	o.timeline, o.naive = true, true
	if err := run(o, io.Discard); err != nil {
		t.Errorf("timeline+naive: %v", err)
	}
	o = opts(path, "alg1")
	o.csv = true
	if err := run(o, io.Discard); err != nil {
		t.Errorf("csv: %v", err)
	}
	o = opts(path, "alg1")
	o.json = true
	if err := run(o, io.Discard); err != nil {
		t.Errorf("json: %v", err)
	}
	o = opts(path, "periodic")
	o.period = 7
	if err := run(o, io.Discard); err != nil {
		t.Errorf("periodic with explicit period: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeInstanceFile(t, sampleInstance)
	if err := run(opts(path, "nope"), io.Discard); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run(opts(filepath.Join(t.TempDir(), "missing.txt"), "alg1"), io.Discard); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeInstanceFile(t, "not an instance")
	if err := run(opts(bad, "alg1"), io.Discard); err == nil {
		t.Error("malformed instance accepted")
	}
	weighted := writeInstanceFile(t, "1 5\n1\n0 9\n")
	if err := run(opts(weighted, "alg1"), io.Discard); err == nil {
		t.Error("alg1 on weighted instance accepted")
	}
	multiFlow := writeInstanceFile(t, "2 5\n1\n0 1\n")
	if err := run(opts(multiFlow, "flow-threshold"), io.Discard); err == nil {
		t.Error("flow-threshold on P=2 accepted")
	}
}

func TestRunCompare(t *testing.T) {
	path := writeInstanceFile(t, sampleInstance)
	if err := runCompare(path, 16, 0, io.Discard); err != nil {
		t.Fatalf("compare unweighted P=1: %v", err)
	}
	weighted := writeInstanceFile(t, "1 5\n3\n0 2\n3 7\n20 1\n")
	if err := runCompare(weighted, 16, 4, io.Discard); err != nil {
		t.Fatalf("compare weighted P=1: %v", err)
	}
	multi := writeInstanceFile(t, "2 5\n4\n0 1\n3 1\n5 1\n20 1\n")
	if err := runCompare(multi, 16, 0, io.Discard); err != nil {
		t.Fatalf("compare unweighted P=2: %v", err)
	}
	if err := runCompare(writeInstanceFile(t, "junk"), 16, 0, io.Discard); err == nil {
		t.Error("compare accepted malformed instance")
	}
}

// TestCLIErrorPaths is the audited error-path table: every bad
// invocation must exit non-zero with a one-line actionable message on
// stderr.
func TestCLIErrorPaths(t *testing.T) {
	good := writeInstanceFile(t, sampleInstance)
	missing := filepath.Join(t.TempDir(), "missing.txt")
	for _, tc := range []struct {
		name string
		args []string
		code int
		msg  string
	}{
		{"unknown alg", []string{"-instance", good, "-alg", "dp"}, 1, "unknown algorithm"},
		{"unknown flag", []string{"-bogus"}, 2, "flag provided but not defined"},
		{"positional arg", []string{good}, 2, "unexpected argument"},
		{"unreadable instance", []string{"-instance", missing, "-alg", "alg1"}, 1, "reading -instance"},
		{"malformed instance", []string{"-instance", writeInstanceFile(t, "garbage")}, 1, "bad header"},
		{"csv+json", []string{"-instance", good, "-csv", "-json"}, 2, "conflict"},
		{"timeline+csv", []string{"-instance", good, "-timeline", "-csv"}, 2, "conflicts with"},
		{"compare+alg", []string{"-instance", good, "-compare", "-alg", "alg2"}, 2, "ignores -alg"},
		{"compare+json", []string{"-instance", good, "-compare", "-json"}, 2, "ignores -json"},
		{"compare+naive", []string{"-instance", good, "-compare", "-naive"}, 2, "ignores -naive"},
		{"compare+explain", []string{"-instance", good, "-compare", "-explain"}, 2, "ignores -explain"},
		{"explain+json", []string{"-instance", good, "-explain", "-json"}, 2, "conflicts with"},
		{"explain baseline", []string{"-instance", good, "-alg", "periodic", "-explain"}, 1, "decision-traced"},
		{"alg1 weighted", []string{"-instance", writeInstanceFile(t, "1 5\n1\n0 9\n"), "-alg", "alg1"}, 1, "unweighted"},
	} {
		var stdout, stderr bytes.Buffer
		code := cliMain(tc.args, &stdout, &stderr)
		if code != tc.code {
			t.Errorf("%s: exit %d, want %d (stderr %q)", tc.name, code, tc.code, stderr.String())
			continue
		}
		if !strings.Contains(stderr.String(), tc.msg) {
			t.Errorf("%s: stderr %q does not mention %q", tc.name, stderr.String(), tc.msg)
		}
		if n := strings.Count(strings.TrimRight(stderr.String(), "\n"), "\n"); tc.code == 1 && n != 0 {
			t.Errorf("%s: error message spans %d lines, want one line:\n%s", tc.name, n+1, stderr.String())
		}
	}
}

func TestCLISuccess(t *testing.T) {
	good := writeInstanceFile(t, sampleInstance)
	var stdout, stderr bytes.Buffer
	if code := cliMain([]string{"-instance", good, "-alg", "alg1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "total cost") {
		t.Errorf("report missing total cost:\n%s", stdout.String())
	}
	stdout.Reset()
	if code := cliMain([]string{"-instance", good, "-compare"}, &stdout, &stderr); code != 0 {
		t.Fatalf("compare exit %d, stderr %q", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "instance:") {
		t.Errorf("compare table missing header:\n%s", stdout.String())
	}
}

// TestExplainOutput checks the -explain replay: one justification block
// per calibration, each naming the fired rule, the queue evidence, and
// the lemma citation, for both the online engines and the offline DP.
func TestExplainOutput(t *testing.T) {
	path := writeInstanceFile(t, "1 4\n4\n0 3\n1 3\n2 1\n9 5\n")
	for _, alg := range []string{"alg2", "opt"} {
		var out bytes.Buffer
		o := opts(path, alg)
		o.g = 8
		o.explain = true
		if err := run(o, &out); err != nil {
			t.Fatalf("%s -explain: %v", alg, err)
		}
		s := out.String()
		if n := strings.Count(s, "calibration #"); n != 2 {
			t.Errorf("%s: %d explanation blocks, want 2:\n%s", alg, n, s)
		}
		for _, want := range []string{"rule=", "queue:", "why:"} {
			if !strings.Contains(s, want) {
				t.Errorf("%s: explanation missing %q:\n%s", alg, want, s)
			}
		}
	}

	// The weighted alg2 explanation restates the trigger inequality.
	var out bytes.Buffer
	o := opts(path, "alg2")
	o.g = 8
	o.explain = true
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), ">= G = 8") {
		t.Errorf("alg2 explanation does not restate the trigger inequality:\n%s", out.String())
	}

	// Unit weights through alg1, including the immediate rule's citation.
	unit := writeInstanceFile(t, sampleInstance)
	out.Reset()
	o = opts(unit, "alg1")
	o.explain = true
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "alg1.") {
		t.Errorf("alg1 explanation has no alg1 rules:\n%s", out.String())
	}
}
