// Command calibsim runs a scheduling algorithm on an instance and reports
// the schedule and its costs.
//
// Examples:
//
//	calibgen -n 30 | calibsim -alg alg1 -G 32 -timeline
//	calibsim -instance inst.txt -alg opt -G 32 -json
//	calibsim -instance inst.txt -alg alg2 -G 64 -csv > sched.csv
//
// Algorithms: alg1, alg2, alg3 (the paper's online algorithms), opt (exact
// offline optimum of the G-cost objective), immediate, always, periodic,
// flow-threshold (baselines).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"calibsched"
	"calibsched/internal/baseline"
	"calibsched/internal/core"
	"calibsched/internal/offline"
	"calibsched/internal/online"
	"calibsched/internal/trace"
	"calibsched/internal/workload"
)

func main() {
	var (
		path     = flag.String("instance", "-", "instance file (- for stdin)")
		alg      = flag.String("alg", "alg1", "algorithm: alg1|alg2|alg3|opt|immediate|always|periodic|flow-threshold")
		g        = flag.Int64("G", 32, "calibration cost G")
		period   = flag.Int64("period", 0, "periodic baseline stride (default T)")
		timeline = flag.Bool("timeline", false, "print ASCII timeline")
		asCSV    = flag.Bool("csv", false, "emit schedule as CSV")
		asJSON   = flag.Bool("json", false, "emit schedule as JSON")
		naive    = flag.Bool("naive", false, "force naive per-step simulation")
		compare  = flag.Bool("compare", false, "run every applicable algorithm and print a comparison table")
	)
	flag.Parse()

	var err error
	if *compare {
		err = runCompare(*path, *g, *period)
	} else {
		err = run(*path, *alg, *g, *period, *timeline, *asCSV, *asJSON, *naive)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibsim:", err)
		os.Exit(1)
	}
}

// runCompare runs every applicable algorithm from the registry and prints
// a side-by-side cost/utilization table.
func runCompare(path string, g, period int64) error {
	in, err := readInstance(path)
	if err != nil {
		return err
	}
	var rows []trace.Comparison
	add := func(name string, s *core.Schedule) error {
		if verr := core.Validate(in, s); verr != nil {
			return fmt.Errorf("%s produced an invalid schedule: %w", name, verr)
		}
		rows = append(rows, trace.Comparison{Name: name, Schedule: s})
		return nil
	}
	for _, a := range calibsched.Algorithms() {
		if !a.Applicable(in) {
			continue
		}
		s, err := a.Run(in, g)
		if err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
		if err := add(a.Name, s); err != nil {
			return err
		}
	}
	if period > 0 && period != in.T {
		s, err := baseline.Periodic(in, g, period)
		if err != nil {
			return fmt.Errorf("periodic(%d): %w", period, err)
		}
		if err := add(fmt.Sprintf("periodic(%d)", period), s); err != nil {
			return err
		}
	}
	fmt.Printf("instance: %d jobs, %d machine(s), T=%d, G=%d\n\n", in.N(), in.P, in.T, g)
	return trace.WriteComparison(os.Stdout, in, g, rows)
}

// readInstance loads and canonicalizes the instance at path ("-" = stdin).
func readInstance(path string) (*core.Instance, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	in, err := workload.ReadInstance(r)
	if err != nil {
		return nil, err
	}
	return in.Canonicalize(), nil
}

func run(path, alg string, g, period int64, timeline, asCSV, asJSON, naive bool) error {
	in, err := readInstance(path)
	if err != nil {
		return err
	}

	var opts []online.Option
	if naive {
		opts = append(opts, online.WithNaiveStepping())
	}
	var sched *core.Schedule
	switch alg {
	case "alg1":
		res, err := online.Alg1(in, g, opts...)
		if err != nil {
			return err
		}
		sched = res.Schedule
	case "alg2":
		res, err := online.Alg2(in, g, opts...)
		if err != nil {
			return err
		}
		sched = res.Schedule
	case "alg3":
		res, err := online.Alg3(in, g, opts...)
		if err != nil {
			return err
		}
		sched = res.Schedule
	case "opt":
		_, _, s, err := offline.OptimalTotalCost(in, g)
		if err != nil {
			return err
		}
		sched = s
	case "immediate":
		sched, err = baseline.Immediate(in, g)
	case "always":
		sched, err = baseline.AlwaysCalibrated(in, g)
	case "periodic":
		if period <= 0 {
			period = in.T
		}
		sched, err = baseline.Periodic(in, g, period)
	case "flow-threshold":
		sched, err = baseline.FlowThreshold(in, g)
	default:
		return fmt.Errorf("unknown algorithm %q", alg)
	}
	if err != nil {
		return err
	}
	if err := core.Validate(in, sched); err != nil {
		return fmt.Errorf("produced schedule failed validation: %w", err)
	}

	switch {
	case asCSV:
		return trace.WriteCSV(os.Stdout, in, sched)
	case asJSON:
		return trace.WriteJSON(os.Stdout, in, sched)
	}
	fmt.Printf("algorithm      %s\n", alg)
	fmt.Printf("jobs           %d   machines %d   T %d   G %d\n", in.N(), in.P, in.T, g)
	fmt.Printf("calibrations   %d\n", sched.NumCalibrations())
	fmt.Printf("weighted flow  %d\n", core.Flow(in, sched))
	fmt.Printf("total cost     %d\n", core.TotalCost(in, sched, g))
	if timeline {
		fmt.Println()
		fmt.Print(trace.Timeline(in, sched))
	}
	return nil
}
