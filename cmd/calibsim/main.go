// Command calibsim runs a scheduling algorithm on an instance and reports
// the schedule and its costs.
//
// Examples:
//
//	calibgen -n 30 | calibsim -alg alg1 -G 32 -timeline
//	calibsim -instance inst.txt -alg opt -G 32 -json
//	calibsim -instance inst.txt -alg alg2 -G 64 -csv > sched.csv
//
// Algorithms: alg1, alg2, alg3 (the paper's online algorithms), opt (exact
// offline optimum of the G-cost objective), immediate, always, periodic,
// flow-threshold (baselines).
//
// With -explain, each calibration the algorithm opens is replayed as a
// human-readable justification: the rule that fired, the queue evidence
// behind it, and the paper lemma the rule descends from. Works for the
// decision-traced algorithms (alg1, alg2, alg3, opt).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"calibsched"
	"calibsched/internal/baseline"
	"calibsched/internal/core"
	"calibsched/internal/offline"
	"calibsched/internal/online"
	"calibsched/internal/trace"
	"calibsched/internal/workload"
)

func main() {
	os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr))
}

// runOpts is one parsed calibsim invocation.
type runOpts struct {
	path     string
	alg      string
	g        int64
	period   int64
	timeline bool
	csv      bool
	json     bool
	naive    bool
	explain  bool
}

// cliMain parses and validates flags, then dispatches. Exit codes: 0 ok,
// 1 runtime failure, 2 usage error.
func cliMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("calibsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		o       runOpts
		compare bool
	)
	fs.StringVar(&o.path, "instance", "-", "instance file (- for stdin)")
	fs.StringVar(&o.alg, "alg", "alg1", "algorithm: alg1|alg2|alg3|opt|immediate|always|periodic|flow-threshold")
	fs.Int64Var(&o.g, "G", 32, "calibration cost G")
	fs.Int64Var(&o.period, "period", 0, "periodic baseline stride (default T)")
	fs.BoolVar(&o.timeline, "timeline", false, "print ASCII timeline")
	fs.BoolVar(&o.csv, "csv", false, "emit schedule as CSV")
	fs.BoolVar(&o.json, "json", false, "emit schedule as JSON")
	fs.BoolVar(&o.naive, "naive", false, "force naive per-step simulation")
	fs.BoolVar(&o.explain, "explain", false, "explain every calibration decision (alg1|alg2|alg3|opt)")
	fs.BoolVar(&compare, "compare", false, "run every applicable algorithm and print a comparison table")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "calibsim: unexpected argument %q; the instance is read from -instance (or stdin)\n", fs.Arg(0))
		return 2
	}
	if err := checkConflicts(fs, compare); err != nil {
		fmt.Fprintln(stderr, "calibsim:", err)
		return 2
	}
	var err error
	if compare {
		err = runCompare(o.path, o.g, o.period, stdout)
	} else {
		err = run(o, stdout)
	}
	if err != nil {
		fmt.Fprintln(stderr, "calibsim:", err)
		return 1
	}
	return 0
}

// checkConflicts rejects flag combinations that would silently ignore
// one of the flags: machine-readable outputs are mutually exclusive, the
// timeline is human-oriented, and -compare chooses its own algorithms
// and format.
func checkConflicts(fs *flag.FlagSet, compare bool) error {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["csv"] && set["json"] {
		return fmt.Errorf("-csv and -json conflict; choose one output format")
	}
	if set["timeline"] && (set["csv"] || set["json"]) {
		return fmt.Errorf("-timeline conflicts with -csv/-json; the timeline is part of the human-readable report")
	}
	if set["explain"] && (set["csv"] || set["json"]) {
		return fmt.Errorf("-explain conflicts with -csv/-json; the explanation is part of the human-readable report")
	}
	if compare {
		for _, name := range []string{"alg", "csv", "json", "timeline", "naive", "explain"} {
			if set[name] {
				return fmt.Errorf("-compare runs every applicable algorithm with its own table format and ignores -%s; drop -%s", name, name)
			}
		}
	}
	return nil
}

// runCompare runs every applicable algorithm from the registry and prints
// a side-by-side cost/utilization table.
func runCompare(path string, g, period int64, stdout io.Writer) error {
	in, err := readInstance(path)
	if err != nil {
		return err
	}
	var rows []trace.Comparison
	add := func(name string, s *core.Schedule) error {
		if verr := core.Validate(in, s); verr != nil {
			return fmt.Errorf("%s produced an invalid schedule: %w", name, verr)
		}
		rows = append(rows, trace.Comparison{Name: name, Schedule: s})
		return nil
	}
	for _, a := range calibsched.Algorithms() {
		if !a.Applicable(in) {
			continue
		}
		s, err := a.Run(in, g)
		if err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
		if err := add(a.Name, s); err != nil {
			return err
		}
	}
	if period > 0 && period != in.T {
		s, err := baseline.Periodic(in, g, period)
		if err != nil {
			return fmt.Errorf("periodic(%d): %w", period, err)
		}
		if err := add(fmt.Sprintf("periodic(%d)", period), s); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "instance: %d jobs, %d machine(s), T=%d, G=%d\n\n", in.N(), in.P, in.T, g)
	return trace.WriteComparison(stdout, in, g, rows)
}

// readInstance loads and canonicalizes the instance at path ("-" = stdin).
func readInstance(path string) (*core.Instance, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("reading -instance: %w", err)
		}
		defer f.Close()
		r = f
	}
	in, err := workload.ReadInstance(r)
	if err != nil {
		return nil, err
	}
	return in.Canonicalize(), nil
}

func run(o runOpts, stdout io.Writer) error {
	in, err := readInstance(o.path)
	if err != nil {
		return err
	}

	var opts []online.Option
	if o.naive {
		opts = append(opts, online.WithNaiveStepping())
	}
	var rec *trace.Recorder
	if o.explain {
		switch o.alg {
		case "alg1", "alg2", "alg3", "opt":
			rec = &trace.Recorder{}
			opts = append(opts, online.WithSink(rec))
		default:
			return fmt.Errorf("-explain needs a decision-traced algorithm (alg1|alg2|alg3|opt); the %s baseline does not make trigger decisions", o.alg)
		}
	}
	period := o.period
	var sched *core.Schedule
	switch o.alg {
	case "alg1":
		res, err := online.Alg1(in, o.g, opts...)
		if err != nil {
			return err
		}
		sched = res.Schedule
	case "alg2":
		res, err := online.Alg2(in, o.g, opts...)
		if err != nil {
			return err
		}
		sched = res.Schedule
	case "alg3":
		res, err := online.Alg3(in, o.g, opts...)
		if err != nil {
			return err
		}
		sched = res.Schedule
	case "opt":
		_, _, s, err := offline.OptimalTotalCostTraced(in, o.g, sinkOrNil(rec))
		if err != nil {
			return err
		}
		sched = s
	case "immediate":
		sched, err = baseline.Immediate(in, o.g)
	case "always":
		sched, err = baseline.AlwaysCalibrated(in, o.g)
	case "periodic":
		if period <= 0 {
			period = in.T
		}
		sched, err = baseline.Periodic(in, o.g, period)
	case "flow-threshold":
		sched, err = baseline.FlowThreshold(in, o.g)
	default:
		return fmt.Errorf("unknown algorithm %q; use alg1|alg2|alg3|opt|immediate|always|periodic|flow-threshold", o.alg)
	}
	if err != nil {
		return err
	}
	if err := core.Validate(in, sched); err != nil {
		return fmt.Errorf("produced schedule failed validation: %w", err)
	}

	switch {
	case o.csv:
		return trace.WriteCSV(stdout, in, sched)
	case o.json:
		return trace.WriteJSON(stdout, in, sched)
	}
	fmt.Fprintf(stdout, "algorithm      %s\n", o.alg)
	fmt.Fprintf(stdout, "jobs           %d   machines %d   T %d   G %d\n", in.N(), in.P, in.T, o.g)
	fmt.Fprintf(stdout, "calibrations   %d\n", sched.NumCalibrations())
	fmt.Fprintf(stdout, "weighted flow  %d\n", core.Flow(in, sched))
	fmt.Fprintf(stdout, "total cost     %d\n", core.TotalCost(in, sched, o.g))
	if o.timeline {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, trace.Timeline(in, sched))
	}
	if rec != nil {
		fmt.Fprintln(stdout)
		if err := trace.WriteExplanation(stdout, in.T, o.g, rec.Events()); err != nil {
			return err
		}
	}
	return nil
}

// sinkOrNil converts a possibly-nil *Recorder to the Sink interface
// without boxing a typed nil (a non-nil interface holding a nil pointer
// would defeat the engines' nil-sink fast path).
func sinkOrNil(rec *trace.Recorder) trace.Sink {
	if rec == nil {
		return nil
	}
	return rec
}
