package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"calibsched/internal/lint"
)

// TestFindModuleRootFromSubdir verifies root discovery walks upward past
// package directories.
func TestFindModuleRootFromSubdir(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	want := filepath.Dir(filepath.Dir(wd)) // cmd/caliblint -> module root
	if root != want {
		t.Errorf("findModuleRoot() = %q, want %q", root, want)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("discovered root has no go.mod: %v", err)
	}
}

// TestLoaderOnSyntheticModule drives the same path main takes — NewLoader
// reading go.mod, Load, Run — against a throwaway module with one
// violation of each analyzer that applies outside the exact packages.
func TestLoaderOnSyntheticModule(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		p := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/tiny\n\ngo 1.22\n")
	write("pick/pick.go", `package pick

import "math/rand/v2"

func Pick(n int) int {
	return rand.IntN(n)
}
`)
	loader, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loader.ModulePath != "example.com/tiny" {
		t.Fatalf("module path %q", loader.ModulePath)
	}
	targets, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(loader, targets, lint.Analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if diags[0].Analyzer != "seededrand" {
		t.Errorf("diagnostic from %s, want seededrand: %s", diags[0].Analyzer, diags[0])
	}
}

// writeSyntheticModule lays down a throwaway module with exactly one
// seededrand violation and returns its root.
func writeSyntheticModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, src string) {
		p := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/tiny\n\ngo 1.22\n")
	write("pick/pick.go", `package pick

import "math/rand/v2"

func Pick(n int) int {
	return rand.IntN(n)
}
`)
	return dir
}

// TestRunJSONOutput drives the full CLI path with -json and checks the
// output is a parseable array with the expected flat fields.
func TestRunJSONOutput(t *testing.T) {
	t.Chdir(writeSyntheticModule(t))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code %d, want 1 (one violation); stderr: %s", code, stderr.String())
	}
	var got []jsonDiagnostic
	if err := json.Unmarshal(stdout.Bytes(), &got); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(got) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(got), got)
	}
	d := got[0]
	if d.Analyzer != "seededrand" || d.File != filepath.Join("pick", "pick.go") || d.Line != 6 || d.Col == 0 || d.Message == "" {
		t.Errorf("unexpected diagnostic: %+v", d)
	}
}

// TestRunJSONCleanIsEmptyArray pins the contract that a clean run still
// emits a JSON array (so consumers never special-case it) and exits 0.
func TestRunJSONCleanIsEmptyArray(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module example.com/empty\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ok.go"), []byte("package empty\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Chdir(dir)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, want 0; stderr: %s", code, stderr.String())
	}
	if strings.TrimSpace(stdout.String()) != "[]" {
		t.Errorf("clean -json output = %q, want []", stdout.String())
	}
}

// TestRunGitHubOutput checks the ::error annotation format, including
// the file/line fields GitHub needs to anchor the annotation.
func TestRunGitHubOutput(t *testing.T) {
	t.Chdir(writeSyntheticModule(t))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-github", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code %d, want 1; stderr: %s", code, stderr.String())
	}
	out := strings.TrimSpace(stdout.String())
	lines := strings.Split(out, "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d annotation lines, want 1:\n%s", len(lines), out)
	}
	wantPrefix := "::error file=" + filepath.Join("pick", "pick.go") + ",line=6,col="
	if !strings.HasPrefix(lines[0], wantPrefix) {
		t.Errorf("annotation %q does not start with %q", lines[0], wantPrefix)
	}
	if !strings.Contains(lines[0], "title=caliblint(seededrand)::") {
		t.Errorf("annotation %q missing analyzer title", lines[0])
	}
}

// TestRunFlagConflict rejects -json with -github rather than silently
// picking one.
func TestRunFlagConflict(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-github"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "mutually exclusive") {
		t.Errorf("stderr %q does not explain the conflict", stderr.String())
	}
}

// TestGitHubEscape pins the workflow-command data escaping: %, CR, and
// LF must be %-encoded or GitHub truncates the message.
func TestGitHubEscape(t *testing.T) {
	got := githubEscape("50% done\r\nnext line")
	want := "50%25 done%0D%0Anext line"
	if got != want {
		t.Errorf("githubEscape = %q, want %q", got, want)
	}
}
