package main

import (
	"os"
	"path/filepath"
	"testing"

	"calibsched/internal/lint"
)

// TestFindModuleRootFromSubdir verifies root discovery walks upward past
// package directories.
func TestFindModuleRootFromSubdir(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	want := filepath.Dir(filepath.Dir(wd)) // cmd/caliblint -> module root
	if root != want {
		t.Errorf("findModuleRoot() = %q, want %q", root, want)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("discovered root has no go.mod: %v", err)
	}
}

// TestLoaderOnSyntheticModule drives the same path main takes — NewLoader
// reading go.mod, Load, Run — against a throwaway module with one
// violation of each analyzer that applies outside the exact packages.
func TestLoaderOnSyntheticModule(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		p := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/tiny\n\ngo 1.22\n")
	write("pick/pick.go", `package pick

import "math/rand/v2"

func Pick(n int) int {
	return rand.IntN(n)
}
`)
	loader, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loader.ModulePath != "example.com/tiny" {
		t.Fatalf("module path %q", loader.ModulePath)
	}
	targets, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(loader, targets, lint.Analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if diags[0].Analyzer != "seededrand" {
		t.Errorf("diagnostic from %s, want seededrand: %s", diags[0].Analyzer, diags[0])
	}
}
