// Command caliblint runs the repository's invariant analyzer suite
// (internal/lint) over module packages and fails if any invariant is
// violated:
//
//	go run ./cmd/caliblint ./...
//
// Diagnostics print as file:line:col: analyzer: message. Exit status is
// 0 when clean, 1 when violations were found, and 2 when the packages
// could not be loaded (e.g. they do not type-check).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"calibsched/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: caliblint [-list] [patterns...]\n\npatterns are module-relative directories or recursive ./... forms; default ./...\n\nanalyzers:\n")
		for _, a := range lint.Analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-18s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "caliblint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "caliblint:", err)
		os.Exit(2)
	}
	targets, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "caliblint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(loader, targets, lint.Analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "caliblint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "caliblint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks upward from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
