// Command caliblint runs the repository's invariant analyzer suite
// (internal/lint) over module packages and fails if any invariant is
// violated:
//
//	go run ./cmd/caliblint ./...
//
// Diagnostics print as file:line:col: analyzer: message by default;
// -json emits one machine-readable array on stdout, and -github emits
// GitHub Actions workflow annotations (::error file=...) so CI failures
// surface inline on the pull-request diff. Exit status is 0 when clean,
// 1 when violations were found, and 2 when the packages could not be
// loaded (e.g. they do not type-check).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"calibsched/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected: it parses args, loads the
// module surrounding the working directory, and writes diagnostics to
// stdout in the selected format. It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("caliblint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the analyzer suite and exit")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	asGitHub := fs.Bool("github", false, "emit diagnostics as GitHub Actions ::error annotations")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: caliblint [-list] [-json|-github] [patterns...]\n\npatterns are module-relative directories or recursive ./... forms; default ./...\n\nanalyzers:\n")
		for _, a := range lint.Analyzers {
			fmt.Fprintf(stderr, "  %-18s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *asJSON && *asGitHub {
		fmt.Fprintln(stderr, "caliblint: -json and -github are mutually exclusive")
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "caliblint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "caliblint:", err)
		return 2
	}
	targets, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "caliblint:", err)
		return 2
	}
	diags, err := lint.Run(loader, targets, lint.Analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "caliblint:", err)
		return 2
	}
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = rel
		}
	}
	switch {
	case *asJSON:
		writeJSON(stdout, diags)
	case *asGitHub:
		writeGitHub(stdout, diags)
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "caliblint: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}

// jsonDiagnostic is the -json wire shape of one diagnostic. The field
// set is deliberately flat so CI scripts can jq over it without knowing
// token.Position internals.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON emits the diagnostics as one JSON array (always an array,
// [] when clean, so consumers never special-case the empty run).
func writeJSON(w io.Writer, diags []lint.Diagnostic) {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encoding a flat slice of strings and ints cannot fail; a broken
	// stdout pipe surfaces to the caller through the writer, not here.
	_ = enc.Encode(out)
}

// writeGitHub emits one workflow annotation per diagnostic in the
// ::error command format, which GitHub Actions renders inline on the
// offending line of the pull-request diff.
func writeGitHub(w io.Writer, diags []lint.Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=caliblint(%s)::%s\n",
			d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, githubEscape(d.Message))
	}
}

// githubEscape encodes the characters the workflow-command parser treats
// as message terminators (the data portion uses URL-style %-escapes).
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// findModuleRoot walks upward from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
