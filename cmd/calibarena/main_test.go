package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"calibsched/internal/arena"
)

// testSweep is a fast two-family sweep written to a temp file.
func testSweep(t *testing.T) string {
	t.Helper()
	spec := `{
  "schema": "calibarena/v1", "name": "cli-test", "p": 1, "T": 6,
  "families": ["poisson-unit", "calibration-starvation"],
  "sizes": [6], "seeds": [1], "gs": [8],
  "modes": ["p1"], "lp_max_jobs": 6, "lp_max_g": 8
}`
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLIWritesBothArtifacts(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "lb.json")
	mdPath := filepath.Join(dir, "lb.md")
	var stdout, stderr bytes.Buffer
	code := cliMain([]string{"-sweep", testSweep(t), "-json", jsonPath, "-md", mdPath}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr.String())
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep arena.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != arena.LeaderboardSchema || len(rep.Rows) == 0 || len(rep.Violations) != 0 {
		t.Errorf("report schema=%q rows=%d violations=%v", rep.Schema, len(rep.Rows), rep.Violations)
	}
	md, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "Competitive-ratio leaderboard") {
		t.Errorf("markdown missing title:\n%s", md)
	}
}

func TestCLIDefaultsToMarkdownOnStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := cliMain([]string{"-sweep", testSweep(t)}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "| Engine | Family |") {
		t.Errorf("stdout is not the markdown leaderboard:\n%s", stdout.String())
	}
}

func TestCLIDeterministicBytes(t *testing.T) {
	sweep := testSweep(t)
	render := func() string {
		var stdout, stderr bytes.Buffer
		if code := cliMain([]string{"-sweep", sweep, "-json", "-"}, &stdout, &stderr); code != 0 {
			t.Fatalf("exit %d, stderr %q", code, stderr.String())
		}
		return stdout.String()
	}
	if a, b := render(), render(); a != b {
		t.Errorf("two runs differ:\n%s\nvs\n%s", a, b)
	}
}

func TestCLIErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"positional arg", []string{"x"}},
		{"missing sweep file", []string{"-sweep", "/nonexistent/sweep.json"}},
		{"negative workers", []string{"-workers", "-1"}},
	} {
		var stdout, stderr bytes.Buffer
		if code := cliMain(tc.args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr %q)", tc.name, code, stderr.String())
		}
	}
}
