// Command calibarena runs the competitive-ratio arena: every registered
// engine plus the exact DP over a sweep of workload families, sizes,
// seeds, and calibration costs, producing the byte-deterministic
// leaderboard committed as LEADERBOARD.json and LEADERBOARD.md.
//
// Example:
//
//	calibarena -json LEADERBOARD.json -md LEADERBOARD.md
//	calibarena -sweep mysweep.json -md -
//
// Exit codes: 0 ok, 1 runtime failure or invariant violation (with
// -check), 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"calibsched"
	"calibsched/internal/arena"
	"calibsched/internal/solve"
)

func main() {
	os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr))
}

func cliMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("calibarena", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		sweepFlag = fs.String("sweep", "pinned", `sweep spec: "pinned" or a JSON file path`)
		jsonOut   = fs.String("json", "", `write leaderboard JSON to this file ("-" for stdout)`)
		mdOut     = fs.String("md", "", `write leaderboard markdown to this file ("-" for stdout)`)
		check     = fs.Bool("check", true, "exit 1 if any invariant violation is observed")
		workers   = fs.Int("workers", 0, "DP solve parallelism (default GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "calibarena: unexpected argument %q; calibarena takes flags only\n", fs.Arg(0))
		return 2
	}
	if *workers < 0 {
		fmt.Fprintln(stderr, "calibarena: -workers must be >= 0")
		return 2
	}

	sweep, err := loadSweep(*sweepFlag)
	if err != nil {
		fmt.Fprintln(stderr, "calibarena:", err)
		return 2
	}
	w := *workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	pool := solve.New(solve.Options{Workers: w, QueueDepth: 4096})
	defer pool.Close()
	rep, err := arena.Run(sweep, calibsched.ArenaEngines(), arena.Options{Pool: pool})
	if err != nil {
		fmt.Fprintln(stderr, "calibarena:", err)
		return 1
	}

	// No explicit output target: the markdown goes to stdout.
	if *jsonOut == "" && *mdOut == "" {
		*mdOut = "-"
	}
	if err := emit(*jsonOut, stdout, rep.WriteJSON); err != nil {
		fmt.Fprintln(stderr, "calibarena:", err)
		return 1
	}
	if err := emit(*mdOut, stdout, rep.WriteMarkdown); err != nil {
		fmt.Fprintln(stderr, "calibarena:", err)
		return 1
	}
	if *check && len(rep.Violations) > 0 {
		fmt.Fprintf(stderr, "calibarena: %d invariant violation(s):\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Fprintln(stderr, "  -", v)
		}
		return 1
	}
	return 0
}

func loadSweep(spec string) (*arena.Sweep, error) {
	if spec == "pinned" {
		return arena.PinnedSweep(), nil
	}
	f, err := os.Open(spec)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return arena.ReadSweep(f)
}

// emit writes through fn to the named file, stdout ("-"), or nowhere ("").
func emit(target string, stdout io.Writer, fn func(io.Writer) error) error {
	switch target {
	case "":
		return nil
	case "-":
		return fn(stdout)
	}
	f, err := os.Create(target)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
