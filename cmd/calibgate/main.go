// Command calibgate is the cluster front door for calibserved: a
// stateless HTTP gateway that consistent-hashes session IDs across N
// backend nodes, proxies the full /v1/sessions and /v1/solve API,
// health-checks its members, aggregates their /metrics, and
// orchestrates live session migration and ring rebalance through the
// /v1/cluster admin endpoints.
//
// Quickstart (two backends plus the gateway):
//
//	calibserved -addr :8374 -data-dir /var/lib/calib/a &
//	calibserved -addr :8375 -data-dir /var/lib/calib/b &
//	calibgate -addr :8373 -backends http://127.0.0.1:8374,http://127.0.0.1:8375 &
//	curl -s -X POST localhost:8373/v1/sessions -d '{"t":10,"g":32,"alg":"alg2"}'
//	curl -s -X POST localhost:8373/v1/cluster/migrate -d '{"session":"g-..."}'
//	curl -s localhost:8373/metrics | grep -e calibgate -e calibserved
//
// The gateway holds no session state: routing is a pure function of
// the ring, so any number of calibgate processes can front the same
// backend set. DESIGN.md §13 documents the ring, the handoff protocol,
// and the failure matrix.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"calibsched/internal/cluster"
)

// version identifies the build in calibgate_build_info; release tooling
// overrides it with -ldflags "-X main.version=...".
var version = "dev"

func main() {
	os.Exit(cliMain(os.Args[1:], os.Stderr, signalContext()))
}

// signalContext cancels on SIGINT/SIGTERM.
func signalContext() context.Context {
	ctx, _ := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	return ctx
}

// cliMain parses flags and runs the gateway until ctx is cancelled.
// Split from main so tests can drive a full boot/serve/drain cycle.
func cliMain(args []string, stderr io.Writer, ctx context.Context) int {
	fs := flag.NewFlagSet("calibgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr            = fs.String("addr", ":8373", "listen address (host:port; :0 picks a free port)")
		backends        = fs.String("backends", "", "comma-separated calibserved base URLs (required; more can join at runtime)")
		vnodes          = fs.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per backend on the hash ring")
		healthInterval  = fs.Duration("health-interval", 2*time.Second, "/readyz probe cadence per backend (0 disables probing and trusts every member)")
		probeTimeout    = fs.Duration("probe-timeout", 2*time.Second, "timeout for one readiness probe")
		retries         = fs.Int("retries", 2, "transport-failure retries per proxied request")
		retryBackoff    = fs.Duration("retry-backoff", 50*time.Millisecond, "base delay between proxy retries (grows linearly)")
		requestTimeout  = fs.Duration("request-timeout", 2*time.Minute, "end-to-end timeout for one backend request (covers large step batches)")
		shutdownTimeout = fs.Duration("shutdown-timeout", 10*time.Second, "grace period for draining connections on shutdown")
		logLevel        = fs.String("log-level", "info", "minimum log level: debug, info, warn, or error")
		spanStore       = fs.Int("span-store", 512, "proxy-span trace store capacity in traces for GET /v1/traces (negative disables recording; traceparent headers still forward)")
		slowThreshold   = fs.Duration("trace-slow-threshold", 250*time.Millisecond, "retain traces whose proxy span is at least this slow ahead of FIFO eviction (0 keeps pure FIFO)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "calibgate: unexpected argument %q (flags only)\n", fs.Arg(0))
		return 2
	}
	var nodes []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			nodes = append(nodes, b)
		}
	}
	if len(nodes) == 0 {
		fmt.Fprintln(stderr, "calibgate: -backends is required (comma-separated base URLs)")
		return 2
	}
	if *vnodes < 1 || *retries < 0 {
		fmt.Fprintln(stderr, "calibgate: -vnodes must be >= 1 and -retries >= 0")
		return 2
	}
	if *healthInterval < 0 || *probeTimeout <= 0 || *retryBackoff <= 0 || *requestTimeout <= 0 {
		fmt.Fprintln(stderr, "calibgate: -health-interval must be >= 0; -probe-timeout, -retry-backoff, and -request-timeout must be > 0")
		return 2
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(stderr, "calibgate: bad -log-level %q (want debug, info, warn, or error)\n", *logLevel)
		return 2
	}
	logger := slog.New(slog.NewJSONHandler(stderr, &slog.HandlerOptions{Level: level}))
	opts := cluster.Options{
		Backends:       nodes,
		VNodes:         *vnodes,
		Client:         &http.Client{Timeout: *requestTimeout},
		HealthInterval: *healthInterval,
		ProbeTimeout:   *probeTimeout,
		Retries:        *retries,
		RetryBackoff:   *retryBackoff,
		Logger:         logger,

		SpanStoreSize:      *spanStore,
		SlowTraceThreshold: *slowThreshold,
		Version:            version,
	}
	if err := serve(ctx, *addr, opts, *shutdownTimeout, logger, nil); err != nil {
		fmt.Fprintln(stderr, "calibgate:", err)
		return 1
	}
	return 0
}

// serve listens on addr and proxies until ctx is cancelled, then drains
// within the grace period. When ready is non-nil it receives the bound
// address once listening (tests use it to learn the :0 port).
func serve(ctx context.Context, addr string, opts cluster.Options, grace time.Duration, logger *slog.Logger, ready chan<- string) error {
	g, err := cluster.NewGateway(opts)
	if err != nil {
		return fmt.Errorf("boot: %w", err)
	}
	defer g.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	logger.Info("listening", "addr", ln.Addr().String(), "backends", len(opts.Backends))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	httpSrv := &http.Server{
		Handler:           g,
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	logger.Info("shutting down", "grace", grace.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Warn("http drain incomplete", "err", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("drained cleanly")
	return nil
}
