package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"calibsched/internal/cluster"
	"calibsched/internal/server"
)

// logBuffer is a goroutine-safe sink for the gateway's JSON log stream.
type logBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *logBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *logBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// backend boots one in-process calibserved.
func backend(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := server.New(server.Config{})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ts
}

// TestServeLifecycle boots the gateway daemon over two live backends,
// creates a session through it, migrates the session, checks the
// aggregated metrics plane, cancels, and drains.
func TestServeLifecycle(t *testing.T) {
	b1, b2 := backend(t), backend(t)
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	logBuf := &logBuffer{}
	logger := slog.New(slog.NewJSONHandler(logBuf, nil))
	go func() {
		done <- serve(ctx, "127.0.0.1:0", cluster.Options{
			Backends: []string{b1.URL, b2.URL},
			Logger:   logger,
		}, 5*time.Second, logger, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("serve exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("gateway never became ready")
	}
	base := "http://" + addr

	post := func(path, body string, want int) []byte {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			t.Fatalf("POST %s: %d, want %d\n%s", path, resp.StatusCode, want, raw)
		}
		return raw
	}

	raw := post("/v1/sessions", `{"t":8,"g":16,"alg":"alg2"}`, 201)
	var info server.SessionInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(info.ID, "g-") {
		t.Fatalf("gateway-minted id: %q", info.ID)
	}
	post("/v1/sessions/"+info.ID+"/arrivals", `{"jobs":[{"release":1,"weight":2},{"release":4,"weight":1}]}`, 200)
	post("/v1/sessions/"+info.ID+"/step", `{"steps":5}`, 200)

	raw = post("/v1/cluster/migrate", `{"session":"`+info.ID+`"}`, 200)
	var mig cluster.MigrateResponse
	if err := json.Unmarshal(raw, &mig); err != nil {
		t.Fatal(err)
	}
	if mig.From == mig.To || mig.Session != info.ID {
		t.Fatalf("migrate response %+v", mig)
	}
	post("/v1/sessions/"+info.ID+"/step", `{"steps":40}`, 200)

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics Content-Type %q is not Prometheus 0.0.4", ct)
	}
	for _, want := range []string{
		"calibgate_sessions_migrated 1",
		"calibgate_ring_nodes 2",
		"calibserved_sessions_created",
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("aggregated metrics missing %q:\n%s", want, metricsBody)
		}
	}

	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Nodes  int    `json:"nodes"`
		Ready  int    `json:"ready"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Nodes != 2 {
		t.Fatalf("healthz: %+v", health)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("gateway never drained")
	}
	logs := logBuf.String()
	for _, want := range []string{"listening", "session migrated", "drained cleanly"} {
		if !strings.Contains(logs, want) {
			t.Errorf("no %q log record:\n%s", want, logs)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(logs), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Errorf("non-JSON log line %q: %v", line, err)
		}
	}
}

func TestCLIFlagErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, tc := range []struct {
		name string
		args []string
		msg  string
	}{
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"positional arg", []string{"extra"}, "unexpected argument"},
		{"no backends", nil, "-backends is required"},
		{"empty backends", []string{"-backends", " , "}, "-backends is required"},
		{"bad vnodes", []string{"-backends", "http://x", "-vnodes", "0"}, "-vnodes must be >= 1"},
		{"negative retries", []string{"-backends", "http://x", "-retries", "-1"}, "-retries >= 0"},
		{"bad probe timeout", []string{"-backends", "http://x", "-probe-timeout", "0s"}, "must be > 0"},
		{"bad log level", []string{"-backends", "http://x", "-log-level", "loud"}, "bad -log-level"},
	} {
		var stderr bytes.Buffer
		if code := cliMain(tc.args, &stderr, ctx); code != 2 {
			t.Errorf("%s: exit %d, want 2", tc.name, code)
		}
		if !strings.Contains(stderr.String(), tc.msg) {
			t.Errorf("%s: stderr %q does not mention %q", tc.name, stderr.String(), tc.msg)
		}
	}
}

// TestCLIBootErrors: a malformed backend URL fails the boot with exit 1.
func TestCLIBootErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stderr bytes.Buffer
	if code := cliMain([]string{"-addr", "127.0.0.1:0", "-backends", "not-a-url"}, &stderr, ctx); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "http(s) base URL") {
		t.Errorf("stderr %q does not carry the backend URL error", stderr.String())
	}
}

// TestCLIListenError: an unusable -addr is exit 1, after gateway boot.
func TestCLIListenError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stderr bytes.Buffer
	if code := cliMain([]string{"-addr", "256.256.256.256:1", "-backends", "http://127.0.0.1:1"}, &stderr, ctx); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "listen") {
		t.Errorf("stderr %q does not mention listen", stderr.String())
	}
}
