package main

// Perf-report verification (-perf-verify): machine-independent smoke
// assertions over a BENCH_<date>.json report, used by CI to catch
// regressions in the durability tiers without pinning absolute
// nanoseconds (which vary across runners). All gates are ratios within
// one report, plus one cross-report ratio against a committed baseline.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Gate thresholds. The group-commit target is "multi-session wal-always
// within ~3x of wal-batch"; the enforced bound leaves headroom for
// runner noise while still failing loudly if group commit stops
// amortizing (the no-group behavior sits near 10x).
const (
	// maxMultiAlwaysOverBatch bounds serve/step/wal-always/multi
	// against serve/step/wal-batch/multi in the same report.
	maxMultiAlwaysOverBatch = 3.5
	// maxNilSinkOverBase bounds alg2/stepper/nil-sink against
	// alg2/stepper: a nil sink must price like no sink at all.
	maxNilSinkOverBase = 1.25
)

// readPerfReport loads and schema-checks one report. allowLegacy admits
// reports with no schema stamp at all: committed baselines predate the
// calibbench/v2 stamp, and the cross-report gate must keep comparing
// against them. A present-but-different schema is always rejected.
func readPerfReport(path string, allowLegacy bool) (*perfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep perfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != perfSchema && !(allowLegacy && rep.Schema == "") {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, perfSchema)
	}
	return &rep, nil
}

// nsPerOp finds a case by exact name; ok is false when the report does
// not carry it (e.g. a filtered run).
func (r *perfReport) nsPerOp(name string) (float64, bool) {
	for _, res := range r.Results {
		if res.Name == name {
			return res.NsPerOp, true
		}
	}
	return 0, false
}

// ratioGate checks num/den <= max when both cases are present; a report
// missing either case skips the gate (reported, not failed) so filtered
// reports can still be verified for what they contain.
func ratioGate(w io.Writer, rep *perfReport, label, num, den string, max float64) (failed bool) {
	nv, nok := rep.nsPerOp(num)
	dv, dok := rep.nsPerOp(den)
	if !nok || !dok {
		fmt.Fprintf(w, "SKIP %s: report lacks %s or %s\n", label, num, den)
		return false
	}
	ratio := nv / dv
	verdict := "PASS"
	if ratio > max {
		verdict = "FAIL"
		failed = true
	}
	fmt.Fprintf(w, "%s %s: %s / %s = %.2fx (max %.2fx)\n", verdict, label, num, den, ratio, max)
	return failed
}

// runVerifyCmd checks the report at newPath. With basePath set, it also
// requires the multi-session durability-tax ratio (wal-always over
// wal-batch) to beat the baseline's single-session ratio — the
// cross-report form of "group commit improved wal-always", stable
// across machines because both sides are ratios.
func runVerifyCmd(w io.Writer, newPath, basePath string) error {
	rep, err := readPerfReport(newPath, false)
	if err != nil {
		return err
	}
	failed := ratioGate(w, rep, "group-commit amortization",
		"serve/step/wal-always/multi", "serve/step/wal-batch/multi", maxMultiAlwaysOverBatch)
	failed = ratioGate(w, rep, "nil-sink overhead",
		"alg2/stepper/nil-sink", "alg2/stepper", maxNilSinkOverBase) || failed

	if basePath != "" {
		base, err := readPerfReport(basePath, true)
		if err != nil {
			return err
		}
		na, naok := rep.nsPerOp("serve/step/wal-always/multi")
		nb, nbok := rep.nsPerOp("serve/step/wal-batch/multi")
		ba, baok := base.nsPerOp("serve/step/wal-always")
		bb, bbok := base.nsPerOp("serve/step/wal-batch")
		switch {
		case !naok || !nbok:
			fmt.Fprintln(w, "SKIP durability-tax vs baseline: new report lacks the multi tiers")
		case !baok || !bbok:
			fmt.Fprintln(w, "SKIP durability-tax vs baseline: baseline lacks the wal tiers")
		default:
			newRatio, baseRatio := na/nb, ba/bb
			verdict := "PASS"
			if newRatio >= baseRatio {
				verdict = "FAIL"
				failed = true
			}
			fmt.Fprintf(w, "%s durability-tax vs baseline: %.2fx (multi, grouped) vs %.2fx (baseline per-record)\n",
				verdict, newRatio, baseRatio)
		}
	}
	if failed {
		return fmt.Errorf("perf verification failed for %s", newPath)
	}
	fmt.Fprintf(w, "calibbench: %s verified\n", newPath)
	return nil
}
