package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeReport marshals a report with the given case timings to a temp
// file and returns its path.
func writeReport(t *testing.T, name string, cases map[string]float64) string {
	t.Helper()
	rep := perfReport{Schema: perfSchema, Commit: "test", Date: "2026-08-08T00:00:00Z"}
	for n, ns := range cases {
		rep.Results = append(rep.Results, perfResult{Name: n, Iters: 100, NsPerOp: ns})
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestVerifyPasses(t *testing.T) {
	newPath := writeReport(t, "new.json", map[string]float64{
		"serve/step/wal-always/multi": 65_000,
		"serve/step/wal-batch/multi":  25_000, // 2.6x, under the 3.5x gate
		"alg2/stepper":                600_000,
		"alg2/stepper/nil-sink":       620_000, // 1.03x, under 1.25x
	})
	basePath := writeReport(t, "base.json", map[string]float64{
		"serve/step/wal-always": 399_000,
		"serve/step/wal-batch":  80_000, // 5.0x baseline tax to beat
	})
	var out bytes.Buffer
	if err := runVerifyCmd(&out, newPath, basePath); err != nil {
		t.Fatalf("verify failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"PASS group-commit amortization",
		"PASS nil-sink overhead",
		"PASS durability-tax vs baseline",
		"verified",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestVerifyFailsOnRegression(t *testing.T) {
	for name, cases := range map[string]map[string]float64{
		// Group commit stopped amortizing: multi wal-always near the
		// per-record cost again.
		"group-commit": {
			"serve/step/wal-always/multi": 250_000,
			"serve/step/wal-batch/multi":  25_000,
		},
		// A nil sink that costs like a live one.
		"nil-sink": {
			"alg2/stepper":          600_000,
			"alg2/stepper/nil-sink": 900_000,
		},
	} {
		t.Run(name, func(t *testing.T) {
			path := writeReport(t, "new.json", cases)
			var out bytes.Buffer
			if err := runVerifyCmd(&out, path, ""); err == nil {
				t.Fatalf("verification passed a regression:\n%s", out.String())
			}
			if !strings.Contains(out.String(), "FAIL") {
				t.Errorf("output has no FAIL line:\n%s", out.String())
			}
		})
	}
}

func TestVerifyBaselineRatioGate(t *testing.T) {
	// New multi ratio 2.6x must FAIL against a baseline whose tax was
	// already lower (hypothetical 2.0x) — the gate is an improvement
	// gate, not an absolute one.
	newPath := writeReport(t, "new.json", map[string]float64{
		"serve/step/wal-always/multi": 65_000,
		"serve/step/wal-batch/multi":  25_000,
	})
	basePath := writeReport(t, "base.json", map[string]float64{
		"serve/step/wal-always": 50_000,
		"serve/step/wal-batch":  25_000,
	})
	var out bytes.Buffer
	if err := runVerifyCmd(&out, newPath, basePath); err == nil {
		t.Fatalf("verification passed without improving on the baseline:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL durability-tax vs baseline") {
		t.Errorf("output missing baseline FAIL:\n%s", out.String())
	}
}

func TestVerifySkipsMissingCases(t *testing.T) {
	// A filtered report without the gated tiers verifies trivially —
	// gates are reported as SKIP, never silently dropped.
	path := writeReport(t, "new.json", map[string]float64{"offline/dp": 1})
	var out bytes.Buffer
	if err := runVerifyCmd(&out, path, ""); err != nil {
		t.Fatalf("verify of filtered report failed: %v", err)
	}
	if got := strings.Count(out.String(), "SKIP"); got != 2 {
		t.Errorf("want 2 SKIP lines, got %d:\n%s", got, out.String())
	}
}

func TestVerifyAcceptsLegacyBaseline(t *testing.T) {
	// Committed baselines predate the calibbench/v2 stamp; they must
	// still serve as the cross-report denominator — but a stampless NEW
	// report is rejected.
	legacy := filepath.Join(t.TempDir(), "legacy.json")
	data, err := json.Marshal(perfReport{Results: []perfResult{
		{Name: "serve/step/wal-always", NsPerOp: 399_000, Iters: 100},
		{Name: "serve/step/wal-batch", NsPerOp: 80_000, Iters: 100},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(legacy, data, 0o644); err != nil {
		t.Fatal(err)
	}
	newPath := writeReport(t, "new.json", map[string]float64{
		"serve/step/wal-always/multi": 65_000,
		"serve/step/wal-batch/multi":  25_000,
	})
	var out bytes.Buffer
	if err := runVerifyCmd(&out, newPath, legacy); err != nil {
		t.Fatalf("legacy baseline rejected: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "PASS durability-tax vs baseline") {
		t.Errorf("baseline gate not exercised:\n%s", out.String())
	}
	if err := runVerifyCmd(&out, legacy, ""); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("stampless new report accepted: %v", err)
	}
}

func TestVerifyRejectsBadReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"calibbench/v1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runVerifyCmd(&out, path, ""); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("bad schema accepted: %v", err)
	}
	if err := runVerifyCmd(&out, filepath.Join(t.TempDir(), "absent.json"), ""); err == nil {
		t.Fatal("missing report accepted")
	}
}
