package main

import (
	"bytes"
	"strings"
	"testing"

	"calibsched/internal/experiments"
)

func TestListExperiments(t *testing.T) {
	var buf bytes.Buffer
	listExperiments(&buf)
	out := buf.String()
	for _, id := range []string{"e1", "e5", "e15"} {
		if !strings.Contains(out, id+" ") && !strings.Contains(out, id+"  ") {
			t.Errorf("listing missing %s:\n%s", id, out)
		}
	}
}

func TestRunSelectedSingle(t *testing.T) {
	var buf bytes.Buffer
	failed, err := runSelected(&buf, "e6", experiments.Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Fatalf("e6 failed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "verdict: PASS") {
		t.Errorf("no verdict in output:\n%s", buf.String())
	}
}

func TestRunSelectedUnknown(t *testing.T) {
	var buf bytes.Buffer
	if _, err := runSelected(&buf, "e99", experiments.Config{Quick: true}); err == nil {
		t.Error("unknown experiment accepted")
	}
}
