package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"calibsched/internal/experiments"
)

func TestListExperiments(t *testing.T) {
	var buf bytes.Buffer
	listExperiments(&buf)
	out := buf.String()
	for _, id := range []string{"e1", "e5", "e15"} {
		if !strings.Contains(out, id+" ") && !strings.Contains(out, id+"  ") {
			t.Errorf("listing missing %s:\n%s", id, out)
		}
	}
}

func TestRunSelectedSingle(t *testing.T) {
	var buf bytes.Buffer
	failed, err := runSelected(&buf, "e6", experiments.Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Fatalf("e6 failed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "verdict: PASS") {
		t.Errorf("no verdict in output:\n%s", buf.String())
	}
}

func TestRunSelectedUnknown(t *testing.T) {
	var buf bytes.Buffer
	if _, err := runSelected(&buf, "e99", experiments.Config{Quick: true}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunPerfReportShape runs the perf harness at a tiny duration and
// checks the JSON report: every case present, with positive ns/op and
// steps/sec on the stepper cases.
func TestRunPerfReportShape(t *testing.T) {
	var buf bytes.Buffer
	if err := runPerf(&buf, time.Millisecond, 200, ""); err != nil {
		t.Fatal(err)
	}
	var report struct {
		Schema    string `json:"schema"`
		Commit    string `json:"commit"`
		Date      string `json:"date"`
		GoVersion string `json:"go_version"`
		Results   []struct {
			Name        string  `json:"name"`
			Iters       int64   `json:"iters"`
			NsPerOp     float64 `json:"ns_per_op"`
			StepsPerSec float64 `json:"steps_per_sec"`
		} `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, buf.String())
	}
	if report.Date == "" || report.GoVersion == "" {
		t.Errorf("report missing provenance: %+v", report)
	}
	if report.Schema != perfSchema {
		t.Errorf("report schema %q, want %q", report.Schema, perfSchema)
	}
	if report.Commit == "" {
		t.Error("report missing the commit stamp (ldflags default is \"unknown\", never empty)")
	}
	byName := map[string]bool{}
	for _, r := range report.Results {
		byName[r.Name] = true
		if r.Iters < 1 || r.NsPerOp <= 0 {
			t.Errorf("%s: iters %d, ns/op %v", r.Name, r.Iters, r.NsPerOp)
		}
		if strings.Contains(r.Name, "stepper") && r.StepsPerSec <= 0 {
			t.Errorf("%s: steps/sec %v, want > 0", r.Name, r.StepsPerSec)
		}
	}
	for _, want := range []string{
		"alg1/stepper", "alg2/stepper", "alg2/stepper/nil-sink",
		"alg2/stepper/ring-sink", "offline/dp", "offline/dp/parallel",
		"offline/sweep", "offline/sweep/parallel", "solve/cache-hit",
	} {
		if !byName[want] {
			t.Errorf("report missing case %q; have %v", want, byName)
		}
	}
}

// TestRunPerfFilter checks that -perf-filter selects by substring.
func TestRunPerfFilter(t *testing.T) {
	var buf bytes.Buffer
	if err := runPerf(&buf, time.Millisecond, 200, "solve,offline/sweep"); err != nil {
		t.Fatal(err)
	}
	var report struct {
		Results []struct {
			Name string `json:"name"`
		} `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, buf.String())
	}
	byName := map[string]bool{}
	for _, r := range report.Results {
		byName[r.Name] = true
	}
	for _, want := range []string{"solve/cache-hit", "offline/sweep", "offline/sweep/parallel"} {
		if !byName[want] {
			t.Errorf("filtered report missing %q; have %v", want, byName)
		}
	}
	for _, reject := range []string{"alg1/stepper", "offline/dp", "serve/step/in-memory"} {
		if byName[reject] {
			t.Errorf("filtered report should not include %q", reject)
		}
	}
}
