package main

// Performance mode (-perf): a small hand-rolled measurement harness that
// times the hot paths of the reproduction — the Alg1/Alg2 steppers, the
// offline DP, and the decision-tracing overhead contract (untraced vs
// nil-sink vs live ring) — and writes a machine-readable JSON report for
// `make bench`. A hand-rolled loop rather than testing.Benchmark keeps
// `go test ./...` fast and lets the report carry steps/sec alongside
// ns/op and allocs/op.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"calibsched/internal/core"
	"calibsched/internal/offline"
	"calibsched/internal/online"
	"calibsched/internal/server"
	"calibsched/internal/solve"
	"calibsched/internal/store"
	"calibsched/internal/trace"
	"calibsched/internal/workload"
)

// perfResult is one benchmark case in the report.
type perfResult struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// StepsPerSec is the simulated-step throughput (stepper cases only).
	StepsPerSec float64 `json:"steps_per_sec,omitempty"`
}

// perfSchema versions the BENCH_<date>.json format. v2 added the
// schema and commit fields.
const perfSchema = "calibbench/v2"

// perfReport is the BENCH_<date>.json schema.
type perfReport struct {
	Schema    string       `json:"schema"`
	Commit    string       `json:"commit"`
	Date      string       `json:"date"`
	GoVersion string       `json:"go_version"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	Results   []perfResult `json:"results"`
}

// measure runs fn in a timed loop for roughly d (after one warm-up call)
// and reports iterations, ns/op, and allocs/op. stepsPerOp, when nonzero,
// scales into steps/sec.
func measure(name string, d time.Duration, stepsPerOp int64, fn func()) perfResult {
	fn() // warm-up: first call pays one-time allocations
	var msBefore, msAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	var iters int64
	for time.Since(start) < d || iters == 0 {
		fn()
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&msAfter)

	res := perfResult{
		Name:        name,
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: float64(msAfter.Mallocs-msBefore.Mallocs) / float64(iters),
	}
	if stepsPerOp > 0 {
		res.StepsPerSec = float64(stepsPerOp*iters) / elapsed.Seconds()
	}
	return res
}

// perfInstance is the shared stepper workload: Poisson arrivals with
// uniform weights, the same shape as the internal/online benchmarks.
func perfInstance(n int) (*core.Instance, error) {
	return (workload.Spec{
		N: n, P: 1, T: 16, Seed: 42,
		Arrival: workload.ArrivalPoisson, Lambda: 0.4,
		Weights: workload.WeightUniform, WMax: 10,
	}).Build()
}

// unitPerfInstance is the unit-weight variant for Algorithm 1.
func unitPerfInstance(n int) (*core.Instance, error) {
	return (workload.Spec{
		N: n, P: 1, T: 16, Seed: 42,
		Arrival: workload.ArrivalPoisson, Lambda: 0.4,
		Weights: workload.WeightUnit,
	}).Build()
}

// arrivalPlan is an instance's arrivals pre-bucketed by release time, so
// driving a stepper does not rebuild the map every op. The per-op map
// construction used to dominate the harness (thousands of allocations
// per drive), burying the code under test in noise — it is what made the
// nil-sink tier read slower than the untraced baseline in the 2026-08-08
// report even though the two run identical stepper code.
type arrivalPlan struct {
	byTime map[int64][]core.Job
	last   int64
}

// planArrivals buckets the instance's jobs by release time, once.
func planArrivals(in *core.Instance) *arrivalPlan {
	p := &arrivalPlan{byTime: make(map[int64][]core.Job, len(in.Jobs))}
	for _, j := range in.Jobs {
		p.byTime[j.Release] = append(p.byTime[j.Release], j)
		if j.Release > p.last {
			p.last = j.Release
		}
	}
	return p
}

// driveStepper runs a fresh stepper across the plan's full horizon and
// returns the number of simulated steps.
func driveStepper(st *online.Stepper, plan *arrivalPlan) int64 {
	var steps int64
	for st.Pending() > 0 || st.Now() <= plan.last {
		st.Step(plan.byTime[st.Now()])
		steps++
	}
	return steps
}

// perfCase is one filterable entry in the -perf suite.
type perfCase struct {
	name  string
	steps int64
	fn    func()
}

// matchCase reports whether name is selected by the -perf-filter value: a
// comma-separated list of substrings, empty selecting everything.
func matchCase(filter, name string) bool {
	if filter == "" {
		return true
	}
	for _, part := range strings.Split(filter, ",") {
		if part = strings.TrimSpace(part); part != "" && strings.Contains(name, part) {
			return true
		}
	}
	return false
}

// runPerf measures every case selected by filter for duration d each and
// writes the JSON report to out.
func runPerf(out io.Writer, d time.Duration, n int, filter string) error {
	const g = 64
	weighted, err := perfInstance(n)
	if err != nil {
		return err
	}
	unit, err := unitPerfInstance(n)
	if err != nil {
		return err
	}
	// The DP is cubic in the job count with a heavy constant; a small
	// instance keeps one op in the milliseconds.
	dpIn, err := perfInstance(12)
	if err != nil {
		return err
	}
	sweepK := dpIn.N()

	unitPlan, weightedPlan := planArrivals(unit), planArrivals(weighted)
	steps1 := driveStepper(online.NewAlg1Stepper(unit.T, g), unitPlan)
	steps2 := driveStepper(online.NewAlg2Stepper(weighted.T, g), weightedPlan)

	// The solve-pool tier: one Submit+Wait per op against a warm result
	// cache, priced against the offline/dp tier (the same instance and G
	// solved cold) to show what the cache saves on repeat solves.
	pool := solve.New(solve.Options{CacheSize: 8})
	defer pool.Close()
	solveReq := solve.Request{Instance: dpIn, Kind: solve.KindTotalCost, G: g}

	cases := []perfCase{
		{"alg1/stepper", steps1, func() {
			driveStepper(online.NewAlg1Stepper(unit.T, g), unitPlan)
		}},
		{"alg2/stepper", steps2, func() {
			driveStepper(online.NewAlg2Stepper(weighted.T, g), weightedPlan)
		}},
		{"alg2/stepper/nil-sink", steps2, func() {
			driveStepper(online.NewAlg2Stepper(weighted.T, g, online.WithSink(nil)), weightedPlan)
		}},
		{"alg2/stepper/ring-sink", steps2, func() {
			driveStepper(online.NewAlg2Stepper(weighted.T, g, online.WithSink(trace.NewRing(1024))), weightedPlan)
		}},
		{"offline/dp", 0, func() {
			if _, _, _, err := offline.OptimalTotalCost(dpIn, g); err != nil {
				panic("calibbench: offline DP failed on the perf instance: " + err.Error())
			}
		}},
		{"offline/dp/parallel", 0, func() {
			if _, _, _, err := offline.OptimalTotalCostParallel(dpIn, g, 0); err != nil {
				panic("calibbench: parallel DP failed on the perf instance: " + err.Error())
			}
		}},
		{"offline/sweep", 0, func() {
			if _, err := offline.BudgetSweep(dpIn, sweepK); err != nil {
				panic("calibbench: budget sweep failed on the perf instance: " + err.Error())
			}
		}},
		{"offline/sweep/parallel", 0, func() {
			if _, err := offline.BudgetSweepParallel(dpIn, sweepK, 0); err != nil {
				panic("calibbench: parallel sweep failed on the perf instance: " + err.Error())
			}
		}},
		{"solve/cache-hit", 0, func() {
			// The warm-up call inside measure pays the one cold solve;
			// every timed iteration is a cache hit.
			id, err := pool.Submit(solveReq)
			if err != nil {
				panic("calibbench: solve submit failed: " + err.Error())
			}
			st, err := pool.Wait(context.Background(), id)
			if err != nil || st.Err != "" {
				panic(fmt.Sprintf("calibbench: solve failed: %v %s", err, st.Err))
			}
		}},
	}

	report := perfReport{
		Schema:    perfSchema,
		Commit:    commit,
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, c := range cases {
		if matchCase(filter, c.name) {
			report.Results = append(report.Results, measure(c.name, d, c.steps, c.fn))
		}
	}

	// The serving-layer persistence tiers: one arrival + one step per op
	// through a session worker, in-memory (the nil-persister fast path)
	// against each WAL fsync policy. The in-memory case is the zero-
	// overhead baseline; the tiers price durability.
	for _, sc := range []struct {
		name   string
		policy store.FsyncPolicy
		wal    bool
		spans  bool
	}{
		{name: "serve/step/in-memory"},
		{name: "serve/step/wal-none", policy: store.FsyncNone, wal: true},
		{name: "serve/step/wal-batch", policy: store.FsyncBatch, wal: true},
		{name: "serve/step/wal-always", policy: store.FsyncAlways, wal: true},
		// Span-recording overhead tiers: span-nil is the untraced request
		// path (nil *trace.Active through the worker — must sit within
		// noise of serve/step/in-memory), span-ring opens, stamps, and
		// lands a full span tree per op against a live SpanStore.
		{name: "serve/step/span-nil"},
		{name: "serve/step/span-ring", spans: true},
	} {
		if !matchCase(filter, sc.name) {
			continue
		}
		res, err := measureServe(sc.name, d, sc.wal, sc.policy, sc.spans)
		if err != nil {
			return err
		}
		report.Results = append(report.Results, res)
	}

	// Multi-session tiers: the group-commit acceptance surface. N session
	// workers drive arrivals+steps concurrently; ns/op is aggregate wall
	// time per op across the fleet, so shared fsyncs show up directly.
	// wal-always/multi runs with group commit, multi-nogroup is the same
	// load on per-record fsyncs (the pre-group-commit behavior), and
	// wal-batch/multi is the comparison floor the ~3x target is against.
	for _, sc := range []struct {
		name   string
		policy store.FsyncPolicy
		group  bool
	}{
		{name: "serve/step/wal-batch/multi", policy: store.FsyncBatch},
		{name: "serve/step/wal-always/multi", policy: store.FsyncAlways, group: true},
		{name: "serve/step/wal-always/multi-nogroup", policy: store.FsyncAlways},
	} {
		if !matchCase(filter, sc.name) {
			continue
		}
		res, err := measureServeMulti(sc.name, d, 8, sc.policy, sc.group)
		if err != nil {
			return err
		}
		report.Results = append(report.Results, res)
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// measureServe times the calibserved hot path — one accepted arrival and
// one simulated step per op against a live session worker — with the
// given persistence configuration. With spans set, each op additionally
// opens an http root span, threads it through the worker (queue-wait and
// engine-step phases), and lands the finished tree in a live SpanStore.
func measureServe(name string, d time.Duration, wal bool, policy store.FsyncPolicy, spans bool) (perfResult, error) {
	var st *store.Store
	if wal {
		dir, err := os.MkdirTemp("", "calibbench-wal-*")
		if err != nil {
			return perfResult{}, err
		}
		defer os.RemoveAll(dir)
		if st, err = store.Open(dir, store.Options{Fsync: policy}); err != nil {
			return perfResult{}, err
		}
	}
	mgr, err := server.NewManager(server.Config{Store: st, SnapshotEvery: 256})
	if err != nil {
		return perfResult{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr.Shutdown(ctx)
	}()
	info, err := mgr.Create(server.CreateSessionRequest{Alg: "alg2", T: 8, G: 24})
	if err != nil {
		return perfResult{}, err
	}
	sess, err := mgr.Get(info.ID)
	if err != nil {
		return perfResult{}, err
	}
	var spanStore *trace.SpanStore
	if spans {
		spanStore = trace.NewSpanStore(512, 0, "bench")
	}
	var clock int64
	job := []server.JobSpec{{Weight: 3}}
	return measure(name, d, 1, func() {
		var act *trace.Active
		if spanStore != nil {
			act = spanStore.StartSpan(trace.PhaseHTTP, trace.SpanContext{}, nil)
		}
		job[0].Release = clock
		if _, err := sess.Arrivals(job, act); err != nil {
			panic("calibbench: serve arrivals failed: " + err.Error())
		}
		if _, err := sess.Step(1, 1, act); err != nil {
			panic("calibbench: serve step failed: " + err.Error())
		}
		act.Finish()
		clock++
	}), nil
}

// measureServeMulti times the serving hot path under concurrent
// sessions: `sessions` workers each own one session and loop one
// arrival + one step per op until the clock runs out. NsPerOp is wall
// time divided by total ops across the fleet — the amortized cost a
// client sees when the daemon is busy, which is where group commit's
// shared fsync pays off.
func measureServeMulti(name string, d time.Duration, sessions int, policy store.FsyncPolicy, group bool) (perfResult, error) {
	dir, err := os.MkdirTemp("", "calibbench-wal-*")
	if err != nil {
		return perfResult{}, err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, store.Options{Fsync: policy, GroupCommit: group})
	if err != nil {
		return perfResult{}, err
	}
	defer st.Close()
	mgr, err := server.NewManager(server.Config{Store: st, SnapshotEvery: 256})
	if err != nil {
		return perfResult{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr.Shutdown(ctx)
	}()

	// Manager.Get returns the unexported session worker type; this
	// interface captures the two calls the harness drives.
	type serveSession interface {
		Arrivals([]server.JobSpec, *trace.Active) (server.ArrivalsResponse, error)
		Step(int64, int64, *trace.Active) (server.StepResponse, error)
	}
	workers := make([]serveSession, sessions)
	for i := range workers {
		info, err := mgr.Create(server.CreateSessionRequest{Alg: "alg2", T: 8, G: 24})
		if err != nil {
			return perfResult{}, err
		}
		if workers[i], err = mgr.Get(info.ID); err != nil {
			return perfResult{}, err
		}
	}

	oneOp := func(sess serveSession, clock int64) {
		if _, err := sess.Arrivals([]server.JobSpec{{Release: clock, Weight: 3}}, nil); err != nil {
			panic("calibbench: serve arrivals failed: " + err.Error())
		}
		if _, err := sess.Step(1, 1, nil); err != nil {
			panic("calibbench: serve step failed: " + err.Error())
		}
	}
	clocks := make([]int64, sessions)
	for i, sess := range workers { // warm-up, one op per session
		oneOp(sess, clocks[i])
		clocks[i]++
	}

	var msBefore, msAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)
	var stop atomic.Bool
	counts := make([]int64, sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for i, sess := range workers {
		wg.Add(1)
		go func(i int, sess serveSession, clock int64) {
			defer wg.Done()
			for !stop.Load() {
				oneOp(sess, clock)
				clock++
				counts[i]++
			}
		}(i, sess, clocks[i])
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&msAfter)

	var total int64
	for _, c := range counts {
		total += c
	}
	return perfResult{
		Name:        name,
		Iters:       total,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(total),
		AllocsPerOp: float64(msAfter.Mallocs-msBefore.Mallocs) / float64(total),
	}, nil
}

// runPerfCmd is the -perf entry point: it writes the report to path (or
// stdout when path is empty) and a one-line summary per case to stderr.
func runPerfCmd(path string, d time.Duration, n int, filter string) error {
	var out io.Writer = os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := runPerf(out, d, n, filter); err != nil {
		return err
	}
	if path != "" {
		fmt.Fprintf(os.Stderr, "calibbench: wrote %s\n", path)
	}
	return nil
}
