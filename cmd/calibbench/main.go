// Command calibbench regenerates the full experiment suite of this
// reproduction: one experiment per claim of the paper (see DESIGN.md
// section 4 for the index and EXPERIMENTS.md for recorded outcomes).
//
// Examples:
//
//	calibbench                # every experiment, full grids
//	calibbench -e e2,e5       # selected experiments
//	calibbench -quick         # reduced grids (CI-sized)
//	calibbench -perf -out BENCH_2026-08-05.json   # perf report (make bench)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"calibsched/internal/experiments"
)

// commit identifies the build in the perf report's provenance stamp;
// release tooling overrides it with -ldflags "-X main.commit=..." (the
// same mechanism as calibserved's build_info version). "unknown" marks
// ad-hoc `go run` invocations.
var commit = "unknown"

func main() {
	var (
		which    = flag.String("e", "all", "comma-separated experiment IDs (e1..e17) or 'all'")
		quick    = flag.Bool("quick", false, "reduced parameter grids")
		workers  = flag.Int("workers", 0, "grid parallelism (0 = GOMAXPROCS)")
		seed     = flag.Uint64("seed", 0, "seed offset for all workloads")
		list     = flag.Bool("list", false, "list experiments and exit")
		perf     = flag.Bool("perf", false, "run the performance harness instead of the experiments")
		perfOut  = flag.String("out", "", "perf report path (default stdout; see make bench)")
		perfTime = flag.Duration("perf-duration", time.Second, "target wall time per perf case")
		perfN    = flag.Int("perf-n", 2000, "jobs per stepper workload in perf mode")
		perfSel  = flag.String("perf-filter", "", "comma-separated substrings selecting perf cases (empty = all; see make solvebench)")
		perfVer  = flag.String("perf-verify", "", "verify a BENCH_<date>.json report's ratio gates instead of running anything (see make benchcheck)")
		perfBase = flag.String("perf-baseline", "", "with -perf-verify, a committed baseline report the durability-tax ratio must beat")
	)
	flag.Parse()

	if *list {
		listExperiments(os.Stdout)
		return
	}
	if *perfVer != "" {
		if err := runVerifyCmd(os.Stdout, *perfVer, *perfBase); err != nil {
			fmt.Fprintln(os.Stderr, "calibbench:", err)
			os.Exit(1)
		}
		return
	}
	if *perf {
		if err := runPerfCmd(*perfOut, *perfTime, *perfN, *perfSel); err != nil {
			fmt.Fprintln(os.Stderr, "calibbench:", err)
			os.Exit(1)
		}
		return
	}
	cfg := experiments.Config{Quick: *quick, Workers: *workers, Seed: *seed}
	failed, err := runSelected(os.Stdout, *which, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibbench:", err)
		os.Exit(1)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "calibbench: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}

func listExperiments(w io.Writer) {
	for _, e := range experiments.All() {
		fmt.Fprintf(w, "%-4s %s\n     %s\n", e.ID, e.Title, e.Claim)
	}
}

// runSelected runs the named experiments ("all" or comma-separated IDs)
// and returns how many failed their claims.
func runSelected(w io.Writer, which string, cfg experiments.Config) (failed int, err error) {
	var selected []experiments.Experiment
	if which == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(which, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				return 0, fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}
	for _, e := range selected {
		fmt.Fprintf(w, "=== %s: %s ===\n", e.ID, e.Title)
		fmt.Fprintf(w, "claim: %s\n\n", e.Claim)
		start := time.Now()
		rep, err := e.Run(w, cfg)
		if err != nil {
			fmt.Fprintf(w, "ERROR: %v\n\n", err)
			failed++
			continue
		}
		fmt.Fprintf(w, "elapsed: %.2fs\n\n", time.Since(start).Seconds())
		if !rep.Pass {
			failed++
		}
	}
	return failed, nil
}
