// Command calibload is a concurrent load generator for calibserved: it
// drives N parallel scheduling sessions end to end (create, feed
// arrivals, step to completion, snapshot, delete) and prints throughput
// and latency percentiles, giving the repo its first end-to-end serving
// benchmark.
//
// Each session replays a deterministic seeded workload, so by default
// every session's served schedule cost is also verified against the
// batch form of the same algorithm run locally (-verify=false skips it).
// Backpressure (429 + Retry-After) is honored with bounded retries and
// reported separately from hard errors.
//
// Example, against a local daemon:
//
//	calibserved -addr :8373 &
//	calibload -addr http://127.0.0.1:8373 -sessions 64 -steps 200
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"calibsched/internal/core"
	"calibsched/internal/online"
	"calibsched/internal/server"
	"calibsched/internal/stats"
	"calibsched/internal/workload"
)

func main() {
	os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr))
}

// config is the parsed flag set of one calibload run.
type config struct {
	addr         string
	sessions     int
	steps        int64
	stepBatch    int64
	jobs         int
	alg          string
	t, g         int64
	seed         uint64
	verify       bool
	timeout      time.Duration
	migrateEvery int
	slo          bool
	sloP99       time.Duration
}

func cliMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("calibload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", "http://127.0.0.1:8373", "base URL of the calibserved daemon")
	fs.IntVar(&cfg.sessions, "sessions", 64, "parallel sessions to drive")
	fs.Int64Var(&cfg.steps, "steps", 200, "release horizon per session (sessions then run to completion)")
	fs.Int64Var(&cfg.stepBatch, "step-batch", 16, "time steps per step request")
	fs.IntVar(&cfg.jobs, "jobs", 64, "jobs generated per session (those released past the horizon are dropped)")
	fs.StringVar(&cfg.alg, "alg", "alg2", "engine per session: "+strings.Join(online.EngineNames(), "|"))
	fs.Int64Var(&cfg.t, "T", 16, "calibration length T")
	fs.Int64Var(&cfg.g, "G", 64, "calibration cost G")
	fs.Uint64Var(&cfg.seed, "seed", 1, "base workload seed (session i uses seed+i)")
	fs.BoolVar(&cfg.verify, "verify", true, "verify each served cost against the local batch algorithm")
	fs.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-request timeout")
	fs.IntVar(&cfg.migrateEvery, "migrate-every", 0, "cluster mode: live-migrate every Nth session mid-stream via the gateway's POST /v1/cluster/migrate (0 disables; requires -addr to point at calibgate)")
	fs.BoolVar(&cfg.slo, "slo", false, "after the run, read GET /v1/traces back from the target and report per-phase p50/p95/p99 with a pass/fail verdict")
	fs.DurationVar(&cfg.sloP99, "slo-p99", 500*time.Millisecond, "with -slo: the p99 budget for the root phase (proxy at a gateway, http at a node)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "calibload: unexpected argument %q (flags only)\n", fs.Arg(0))
		return 2
	}
	if cfg.sessions < 1 || cfg.steps < 1 || cfg.stepBatch < 1 || cfg.jobs < 0 {
		fmt.Fprintln(stderr, "calibload: -sessions, -steps, and -step-batch must be >= 1 and -jobs >= 0")
		return 2
	}
	if cfg.migrateEvery < 0 {
		fmt.Fprintln(stderr, "calibload: -migrate-every must be >= 0")
		return 2
	}
	if _, ok := online.LookupEngine(cfg.alg); !ok {
		fmt.Fprintf(stderr, "calibload: unknown -alg %q (have %s)\n", cfg.alg, strings.Join(online.EngineNames(), ", "))
		return 2
	}
	if cfg.sloP99 <= 0 {
		fmt.Fprintln(stderr, "calibload: -slo-p99 must be > 0")
		return 2
	}
	rep, err := runLoad(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "calibload:", err)
		return 1
	}
	rep.write(stdout, cfg)
	code := 0
	if len(rep.errs) > 0 || rep.mismatches > 0 {
		code = 1
	}
	if cfg.slo {
		pass, err := runSLO(cfg, stdout)
		if err != nil {
			fmt.Fprintln(stderr, "calibload:", err)
			return 1
		}
		if !pass {
			code = 1
		}
	}
	return code
}

// report aggregates the run's outcome across all session workers.
type report struct {
	mu         sync.Mutex
	requests   int64
	backoffs   int64         // 429 retries (arrival-buffer / session backpressure)
	unavail    int64         // 503/409 retries (gateway fail-open, busy admin plane)
	retrySlept time.Duration // total time spent waiting between retries
	migrations int64         // cluster mode: live migrations triggered
	jobsFed    int64
	stepsFed   int64
	latencies  []float64 // milliseconds, one per request
	elapsedSec float64
	verified   int
	mismatches int
	errs       []string
}

func (r *report) addErr(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.errs) < 10 { // keep the report readable under total failure
		r.errs = append(r.errs, err.Error())
	} else {
		r.errs[9] = "... and more"
	}
}

func (r *report) write(w io.Writer, cfg config) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sort.Float64s(r.latencies)
	fmt.Fprintf(w, "calibload: %d sessions × %d-step horizon, %s T=%d G=%d\n",
		cfg.sessions, cfg.steps, cfg.alg, cfg.t, cfg.g)
	fmt.Fprintf(w, "fed           %d jobs, %d steps\n", r.jobsFed, r.stepsFed)
	fmt.Fprintf(w, "requests      %d   errors %d   backpressure retries %d   unavailable retries %d   retry wait %.2fs\n",
		r.requests, len(r.errs), r.backoffs, r.unavail, r.retrySlept.Seconds())
	if r.migrations > 0 {
		fmt.Fprintf(w, "migrations    %d sessions live-migrated mid-stream\n", r.migrations)
	}
	if r.elapsedSec > 0 {
		fmt.Fprintf(w, "elapsed       %.2fs   throughput %.0f req/s   %.0f steps/s\n",
			r.elapsedSec, float64(r.requests)/r.elapsedSec, float64(r.stepsFed)/r.elapsedSec)
	}
	if len(r.latencies) > 0 {
		fmt.Fprintf(w, "latency (ms)  p50 %s   p90 %s   p99 %s   max %s\n",
			stats.FormatFloat(stats.Quantile(r.latencies, 0.50)),
			stats.FormatFloat(stats.Quantile(r.latencies, 0.90)),
			stats.FormatFloat(stats.Quantile(r.latencies, 0.99)),
			stats.FormatFloat(r.latencies[len(r.latencies)-1]))
	}
	if cfg.verify {
		fmt.Fprintf(w, "verified      %d/%d sessions match the batch engine (%d mismatches)\n",
			r.verified, cfg.sessions, r.mismatches)
	}
	for _, e := range r.errs {
		fmt.Fprintf(w, "error         %s\n", e)
	}
}

// runLoad drives cfg.sessions parallel sessions and aggregates a report.
// The returned error covers only harness-level failures; per-request
// failures land in the report.
func runLoad(cfg config) (*report, error) {
	rep := &report{}
	hc := &http.Client{Timeout: cfg.timeout}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := driveSession(cfg, i, hc, rep); err != nil {
				rep.addErr(fmt.Errorf("session %d: %w", i, err))
			}
		}(i)
	}
	wg.Wait()
	rep.elapsedSec = time.Since(start).Seconds()
	return rep, nil
}

// driveSession runs one full session lifecycle against the daemon.
func driveSession(cfg config, i int, hc *http.Client, rep *report) error {
	jobs, err := sessionJobs(cfg, i)
	if err != nil {
		return err
	}
	c := &client{base: strings.TrimRight(cfg.addr, "/"), hc: hc, rep: rep}

	var info server.SessionInfo
	if err := c.do("POST", "/v1/sessions",
		server.CreateSessionRequest{T: cfg.t, G: cfg.g, Alg: cfg.alg}, &info); err != nil {
		return fmt.Errorf("create: %w", err)
	}
	sessURL := "/v1/sessions/" + info.ID

	// Cluster mode: session i migrates once, mid-stream, after its first
	// step batch — exercising drain → ship → replay → resume under load.
	migrate := cfg.migrateEvery > 0 && i%cfg.migrateEvery == 0

	next := 0
	now := int64(0)
	done := len(jobs) == 0
	for !done || next < len(jobs) {
		if batch := arrivalsThrough(jobs, &next, now+cfg.stepBatch); len(batch) > 0 {
			var ar server.ArrivalsResponse
			if err := c.do("POST", sessURL+"/arrivals", server.ArrivalsRequest{Jobs: batch}, &ar); err != nil {
				return fmt.Errorf("arrivals at step %d: %w", now, err)
			}
			rep.mu.Lock()
			rep.jobsFed += int64(len(batch))
			rep.mu.Unlock()
		}
		var sr server.StepResponse
		if err := c.do("POST", sessURL+"/step", server.StepRequest{Steps: cfg.stepBatch}, &sr); err != nil {
			return fmt.Errorf("step at %d: %w", now, err)
		}
		now = sr.Now
		done = sr.Done
		rep.mu.Lock()
		rep.stepsFed += cfg.stepBatch
		rep.mu.Unlock()
		if migrate && !done {
			migrate = false
			if err := c.do("POST", "/v1/cluster/migrate",
				map[string]string{"session": info.ID}, nil); err != nil {
				return fmt.Errorf("migrate at step %d: %w", now, err)
			}
			rep.mu.Lock()
			rep.migrations++
			rep.mu.Unlock()
		}
		if now > cfg.steps+10_000_000 {
			return fmt.Errorf("session never completed (clock at %d)", now)
		}
	}

	var sched server.ScheduleResponse
	if err := c.do("GET", sessURL+"/schedule", nil, &sched); err != nil {
		return fmt.Errorf("schedule: %w", err)
	}
	if !sched.Done {
		return fmt.Errorf("final snapshot not done: %d/%d assigned", sched.Assigned, len(jobs))
	}
	if cfg.verify {
		if err := verifySession(cfg, jobs, &sched); err != nil {
			rep.mu.Lock()
			rep.mismatches++
			rep.mu.Unlock()
			return err
		}
		rep.mu.Lock()
		rep.verified++
		rep.mu.Unlock()
	}
	if err := c.do("DELETE", sessURL, nil, nil); err != nil {
		return fmt.Errorf("delete: %w", err)
	}
	return nil
}

// sessionJobs generates session i's deterministic workload, truncated to
// the release horizon and presented in instance order (so server job IDs
// coincide with the local instance's).
func sessionJobs(cfg config, i int) ([]server.JobSpec, error) {
	weights := workload.WeightZipf
	if spec, _ := online.LookupEngine(cfg.alg); spec.UnitWeightsOnly {
		weights = workload.WeightUnit
	}
	lambda := float64(cfg.jobs) / float64(cfg.steps)
	if lambda <= 0 {
		lambda = 0.1
	}
	in, err := workload.Spec{
		N: cfg.jobs, P: 1, T: cfg.t, Seed: cfg.seed + uint64(i),
		Arrival: workload.ArrivalPoisson, Lambda: lambda,
		Weights: weights, WMax: 9, ZipfS: 1.4,
	}.Build()
	if err != nil {
		return nil, fmt.Errorf("building workload: %w", err)
	}
	var jobs []server.JobSpec
	for _, j := range in.Jobs {
		if j.Release < cfg.steps {
			jobs = append(jobs, server.JobSpec{Release: j.Release, Weight: j.Weight})
		}
	}
	return jobs, nil
}

// arrivalsThrough pops jobs released before end from the cursor.
func arrivalsThrough(jobs []server.JobSpec, next *int, end int64) []server.JobSpec {
	start := *next
	for *next < len(jobs) && jobs[*next].Release < end {
		*next++
	}
	return jobs[start:*next]
}

// verifySession reruns the session's jobs through the batch algorithm
// and compares the exact total cost and calibration count.
func verifySession(cfg config, jobs []server.JobSpec, sched *server.ScheduleResponse) error {
	releases := make([]int64, len(jobs))
	weights := make([]int64, len(jobs))
	for i, j := range jobs {
		releases[i] = j.Release
		weights[i] = j.Weight
	}
	in, err := core.NewInstance(1, cfg.t, releases, weights)
	if err != nil {
		return fmt.Errorf("rebuilding instance: %w", err)
	}
	var res *online.Result
	if cfg.alg == "alg1" {
		res, err = online.Alg1(in, cfg.g)
	} else {
		res, err = online.Alg2(in, cfg.g)
	}
	if err != nil {
		return fmt.Errorf("batch rerun: %w", err)
	}
	wantCost := core.TotalCost(in, res.Schedule, cfg.g)
	if sched.TotalCost != wantCost || len(sched.Calibrations) != res.Schedule.NumCalibrations() {
		return fmt.Errorf("served cost %d with %d calibrations, batch cost %d with %d",
			sched.TotalCost, len(sched.Calibrations), wantCost, res.Schedule.NumCalibrations())
	}
	return nil
}

// Retry pacing: capped exponential starting at retryBase, raised to the
// server's Retry-After when it asks for a longer wait. The cap keeps a
// misbehaving Retry-After (or deep backpressure) from stalling a worker
// for the whole run.
const (
	retryBase = 50 * time.Millisecond
	retryCap  = 2 * time.Second
)

// retryable reports whether a response is worth re-issuing: 429 is the
// documented backpressure contract, and a 503 or 409 carrying
// Retry-After is the cluster gateway's fail-open answer (node not
// ready, admin operation in flight) — transient by definition.
func retryable(resp *http.Response) bool {
	if resp.StatusCode == http.StatusTooManyRequests {
		return true
	}
	if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusConflict {
		return resp.Header.Get("Retry-After") != ""
	}
	return false
}

// retryDelay computes the wait before attempt+1: exponential in the
// attempt number, never below what Retry-After requests, never above
// retryCap. now anchors the HTTP-date form of Retry-After; callers pass
// time.Now().
func retryDelay(attempt int, retryAfter string, now time.Time) time.Duration {
	d := retryBase << (attempt - 1)
	if ra, ok := parseRetryAfter(retryAfter, now); ok && ra > d {
		d = ra
	}
	if d > retryCap {
		d = retryCap
	}
	return d
}

// parseRetryAfter decodes both RFC 9110 §10.2.3 forms of Retry-After:
// delta-seconds and HTTP-date (the latter via http.ParseTime, which
// accepts all three permitted date formats). A date in the past or a
// negative delta clamps to zero — the server asked for no extra wait —
// and garbage reports !ok so the caller keeps its exponential schedule.
func parseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			secs = 0
		}
		return time.Duration(secs) * time.Second, true
	}
	if when, err := http.ParseTime(v); err == nil {
		d := when.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// client is a minimal JSON client that records latency per request and
// backs off on 429/503/409 responses per their Retry-After contract.
type client struct {
	base string
	hc   *http.Client
	rep  *report
}

func (c *client) do(method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	const maxAttempts = 5
	for attempt := 1; ; attempt++ {
		req, err := http.NewRequest(method, c.base+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		start := time.Now()
		resp, err := c.hc.Do(req)
		elapsed := time.Since(start)
		if err != nil {
			return err
		}
		c.rep.mu.Lock()
		c.rep.requests++
		c.rep.latencies = append(c.rep.latencies, float64(elapsed)/float64(time.Millisecond))
		c.rep.mu.Unlock()

		if attempt < maxAttempts && retryable(resp) {
			delay := retryDelay(attempt, resp.Header.Get("Retry-After"), time.Now())
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			c.rep.mu.Lock()
			if resp.StatusCode == http.StatusTooManyRequests {
				c.rep.backoffs++
			} else {
				c.rep.unavail++
			}
			c.rep.retrySlept += delay
			c.rep.mu.Unlock()
			time.Sleep(delay)
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			var er server.ErrorResponse
			msg := ""
			if json.NewDecoder(resp.Body).Decode(&er) == nil {
				msg = ": " + er.Error
			}
			return fmt.Errorf("%s %s: status %d%s", method, path, resp.StatusCode, msg)
		}
		if out != nil && resp.StatusCode != http.StatusNoContent {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return fmt.Errorf("%s %s: decoding response: %w", method, path, err)
			}
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		return nil
	}
}
