package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"calibsched/internal/cluster"
	"calibsched/internal/server"
)

// loadServer boots an in-process calibserved for the generator to hit.
func loadServer(t *testing.T, cfg server.Config) *httptest.Server {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func TestRunLoadEndToEnd(t *testing.T) {
	ts := loadServer(t, server.Config{})
	for _, alg := range []string{"alg1", "alg2"} {
		cfg := config{
			addr: ts.URL, sessions: 4, steps: 60, stepBatch: 8, jobs: 12,
			alg: alg, t: 8, g: 24, seed: 7, verify: true, timeout: 0,
		}
		rep, err := runLoad(cfg)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(rep.errs) > 0 {
			t.Fatalf("%s: request errors: %v", alg, rep.errs)
		}
		if rep.verified != cfg.sessions || rep.mismatches != 0 {
			t.Fatalf("%s: verified %d/%d, %d mismatches", alg, rep.verified, cfg.sessions, rep.mismatches)
		}
		if rep.requests == 0 || len(rep.latencies) == 0 {
			t.Fatalf("%s: no traffic recorded: %+v", alg, rep)
		}
	}
}

// TestRunLoadHonorsBackpressure drives a tiny arrival buffer: the
// generator must retry on 429 and still finish with zero errors.
func TestRunLoadHonorsBackpressure(t *testing.T) {
	ts := loadServer(t, server.Config{MaxBuffer: 2})
	cfg := config{
		addr: ts.URL, sessions: 2, steps: 40, stepBatch: 2, jobs: 30,
		alg: "alg2", t: 4, g: 8, seed: 3, verify: true,
	}
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With 30 jobs squeezed over 40 steps into a 2-slot buffer some
	// batches must have been refused at least once.
	if len(rep.errs) > 0 {
		t.Fatalf("request errors despite retries: %v", rep.errs)
	}
	if rep.verified != cfg.sessions {
		t.Fatalf("verified %d/%d", rep.verified, cfg.sessions)
	}
}

// TestRunLoadClusterMode drives sessions through a real two-node
// gateway with mid-stream live migration, and still verifies every
// served schedule against the batch engine — the migration must be
// invisible in the output.
func TestRunLoadClusterMode(t *testing.T) {
	b1, b2 := loadServer(t, server.Config{}), loadServer(t, server.Config{})
	g, err := cluster.NewGateway(cluster.Options{Backends: []string{b1.URL, b2.URL}})
	if err != nil {
		t.Fatal(err)
	}
	gw := httptest.NewServer(g)
	t.Cleanup(func() {
		gw.Close()
		g.Close()
	})
	cfg := config{
		addr: gw.URL, sessions: 3, steps: 60, stepBatch: 8, jobs: 10,
		alg: "alg2", t: 8, g: 24, seed: 5, verify: true, migrateEvery: 2,
	}
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.errs) > 0 {
		t.Fatalf("request errors: %v", rep.errs)
	}
	if rep.verified != cfg.sessions || rep.mismatches != 0 {
		t.Fatalf("verified %d/%d, %d mismatches", rep.verified, cfg.sessions, rep.mismatches)
	}
	if rep.migrations != 2 { // sessions 0 and 2
		t.Fatalf("migrations = %d, want 2", rep.migrations)
	}
	var out bytes.Buffer
	rep.write(&out, cfg)
	if !strings.Contains(out.String(), "migrations    2 sessions live-migrated") {
		t.Errorf("report does not surface migrations:\n%s", out.String())
	}
}

func TestRetryDelay(t *testing.T) {
	// Fixed anchor so the HTTP-date cases are deterministic.
	now := time.Date(2026, time.August, 8, 12, 0, 0, 0, time.UTC)
	httpDate := func(d time.Duration) string { return now.Add(d).UTC().Format(http.TimeFormat) }
	for _, tc := range []struct {
		attempt    int
		retryAfter string
		want       time.Duration
	}{
		{1, "", 50 * time.Millisecond},
		{2, "", 100 * time.Millisecond},
		{3, "", 200 * time.Millisecond},
		{10, "", retryCap},                // exponent capped
		{1, "1", time.Second},             // delta-seconds: server asked for more
		{1, "600", retryCap},              // hostile Retry-After capped
		{4, "0", 400 * time.Millisecond},  // zero delta: exponential wins
		{4, "-3", 400 * time.Millisecond}, // negative delta clamps to zero
		{2, "junk", 100 * time.Millisecond},
		{2, "Mon, 32 Jan 2026 25:61:00 GMT", 100 * time.Millisecond}, // malformed date
		{1, httpDate(time.Second), time.Second},                      // HTTP-date: server asked for more
		{1, httpDate(10 * time.Minute), retryCap},                    // far-future date capped
		{4, httpDate(-time.Minute), 400 * time.Millisecond},          // past date clamps to zero
		{4, httpDate(0), 400 * time.Millisecond},                     // "now" date: exponential wins
	} {
		if got := retryDelay(tc.attempt, tc.retryAfter, now); got != tc.want {
			t.Errorf("retryDelay(%d, %q) = %v, want %v", tc.attempt, tc.retryAfter, got, tc.want)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, time.August, 8, 12, 0, 0, 0, time.UTC)
	for _, tc := range []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"", 0, false},
		{"junk", 0, false},
		{"2.5", 0, false}, // RFC 9110 delta-seconds are integral
		{"7", 7 * time.Second, true},
		{" 7 ", 7 * time.Second, true},
		{"-2", 0, true},
		{"Sat, 08 Aug 2026 12:00:30 GMT", 30 * time.Second, true},
		{"Sat, 08 Aug 2026 11:59:00 GMT", 0, true}, // past date clamps
		// The two legacy HTTP-date formats http.ParseTime also accepts.
		{"Saturday, 08-Aug-26 12:00:30 GMT", 30 * time.Second, true},
		{"Sat Aug  8 12:00:30 2026", 30 * time.Second, true},
	} {
		got, ok := parseRetryAfter(tc.in, now)
		if got != tc.want || ok != tc.ok {
			t.Errorf("parseRetryAfter(%q) = (%v, %v), want (%v, %v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestRetryable(t *testing.T) {
	mk := func(status int, retryAfter string) *http.Response {
		h := http.Header{}
		if retryAfter != "" {
			h.Set("Retry-After", retryAfter)
		}
		return &http.Response{StatusCode: status, Header: h}
	}
	for _, tc := range []struct {
		resp *http.Response
		want bool
	}{
		{mk(429, ""), true},
		{mk(429, "1"), true},
		{mk(503, "1"), true},
		{mk(409, "1"), true},
		{mk(503, ""), false}, // 503 without Retry-After is not the fail-open contract
		{mk(409, ""), false}, // plain conflict (duplicate id) must not retry
		{mk(500, "1"), false},
		{mk(200, ""), false},
	} {
		if got := retryable(tc.resp); got != tc.want {
			t.Errorf("retryable(%d, Retry-After %q) = %v, want %v",
				tc.resp.StatusCode, tc.resp.Header.Get("Retry-After"), got, tc.want)
		}
	}
}

func TestCLIOutputAndExit(t *testing.T) {
	ts := loadServer(t, server.Config{})
	var stdout, stderr bytes.Buffer
	code := cliMain([]string{
		"-addr", ts.URL, "-sessions", "3", "-steps", "50", "-jobs", "8",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q stdout %q", code, stderr.String(), stdout.String())
	}
	out := stdout.String()
	for _, want := range []string{"sessions", "requests", "latency (ms)", "verified      3/3"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestCLISLOMode drives a run with -slo: after the load, the generator
// must read back GET /v1/traces, print per-phase percentiles (untraced
// requests still mint server-side http root spans, so queue-wait and
// engine-step show up without client traceparent headers), and pass
// against a generous p99 budget.
func TestCLISLOMode(t *testing.T) {
	ts := loadServer(t, server.Config{})
	var stdout, stderr bytes.Buffer
	code := cliMain([]string{
		"-addr", ts.URL, "-sessions", "2", "-steps", "40", "-jobs", "6",
		"-slo", "-slo-p99", "30s",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q stdout %q", code, stderr.String(), stdout.String())
	}
	out := stdout.String()
	for _, want := range []string{"phase", "http", "queue-wait", "engine-step", "slo: PASS"} {
		if !strings.Contains(out, want) {
			t.Errorf("slo report missing %q:\n%s", want, out)
		}
	}

	// An impossible budget must flip the verdict and the exit code.
	stdout.Reset()
	stderr.Reset()
	code = cliMain([]string{
		"-addr", ts.URL, "-sessions", "1", "-steps", "20", "-jobs", "3",
		"-slo", "-slo-p99", "1ns",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("impossible budget: exit %d, want 1 (stdout %q)", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "slo: FAIL") {
		t.Errorf("slo report missing FAIL verdict:\n%s", stdout.String())
	}
}

func TestCLIFlagErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		msg  string
	}{
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"positional arg", []string{"x"}, "unexpected argument"},
		{"bad sessions", []string{"-sessions", "0"}, ">= 1"},
		{"unknown alg", []string{"-alg", "alg7"}, "unknown -alg"},
	} {
		var stdout, stderr bytes.Buffer
		if code := cliMain(tc.args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit %d, want 2", tc.name, code)
		}
		if !strings.Contains(stderr.String(), tc.msg) {
			t.Errorf("%s: stderr %q does not mention %q", tc.name, stderr.String(), tc.msg)
		}
	}
}

// TestCLIConnectionError: an unreachable daemon must be a non-zero exit
// with the failure in the report, not a hang or panic.
func TestCLIConnectionError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := cliMain([]string{
		"-addr", "http://127.0.0.1:1", "-sessions", "1", "-steps", "10", "-jobs", "2",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout %s\nstderr %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "errors 1") {
		t.Errorf("report does not count the failure:\n%s", stdout.String())
	}
}
