package main

// SLO mode (-slo): after the load run, read back the per-phase latency
// attribution the serving side recorded (GET /v1/traces on calibserved
// or the stitched calibgate view) and report p50/p95/p99 per phase plus
// a pass/fail verdict on the root phase's p99. The phases come from the
// server's span stores, not from client-side timing, so the breakdown
// shows where the latency went — queue wait vs engine vs WAL vs fsync —
// rather than one opaque end-to-end number.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"calibsched/internal/server"
	"calibsched/internal/stats"
	"calibsched/internal/trace"
)

// phaseOrder is the catalog order phases are reported in; phases outside
// the catalog sort after it, alphabetically.
var phaseOrder = []string{
	trace.PhaseProxy, trace.PhaseHTTP, trace.PhaseQueueWait,
	trace.PhaseEngineStep, trace.PhaseWALAppend, trace.PhaseFsyncWait,
	trace.PhaseSolveQueue, trace.PhaseSolveDP, trace.PhaseCacheHit,
}

func phaseRank(p string) int {
	for i, q := range phaseOrder {
		if p == q {
			return i
		}
	}
	return len(phaseOrder)
}

// getJSON fetches one JSON document.
func getJSON(hc *http.Client, url string, out any) error {
	resp, err := hc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// runSLO pulls every retained trace from the target, aggregates span
// durations per phase, prints the percentile table, and returns whether
// the root phase's p99 met the -slo-p99 budget.
func runSLO(cfg config, w io.Writer) (bool, error) {
	hc := &http.Client{Timeout: cfg.timeout}
	base := strings.TrimRight(cfg.addr, "/")
	var list server.TraceListResponse
	if err := getJSON(hc, base+"/v1/traces", &list); err != nil {
		return false, fmt.Errorf("slo: listing traces (is span recording enabled?): %w", err)
	}
	byPhase := map[string][]float64{} // milliseconds
	traces, spans := 0, 0
	for _, sum := range list.Traces {
		var tr server.TraceGetResponse
		if err := getJSON(hc, base+"/v1/traces/"+sum.TraceID, &tr); err != nil {
			continue // the store may evict between list and fetch; sample what remains
		}
		traces++
		for _, sp := range tr.Spans {
			byPhase[sp.Phase] = append(byPhase[sp.Phase], float64(sp.Duration)/float64(time.Millisecond))
			spans++
		}
	}
	if spans == 0 {
		return false, fmt.Errorf("slo: the trace store at %s holds no spans", base)
	}

	// The root phase is the outermost recorder this target saw: proxy
	// when the target is a gateway, http against a bare node.
	rootPhase := trace.PhaseHTTP
	if len(byPhase[trace.PhaseProxy]) > 0 {
		rootPhase = trace.PhaseProxy
	}

	phases := make([]string, 0, len(byPhase))
	for p := range byPhase {
		phases = append(phases, p)
	}
	sort.Slice(phases, func(i, j int) bool {
		ri, rj := phaseRank(phases[i]), phaseRank(phases[j])
		if ri != rj {
			return ri < rj
		}
		return phases[i] < phases[j]
	})

	fmt.Fprintf(w, "slo: %d traces, %d spans from %s/v1/traces\n", traces, spans, base)
	fmt.Fprintf(w, "%-12s %8s %10s %10s %10s %10s\n", "phase", "spans", "p50(ms)", "p95(ms)", "p99(ms)", "max(ms)")
	for _, p := range phases {
		ds := byPhase[p]
		sort.Float64s(ds)
		fmt.Fprintf(w, "%-12s %8d %10s %10s %10s %10s\n", p, len(ds),
			stats.FormatFloat(stats.Quantile(ds, 0.50)),
			stats.FormatFloat(stats.Quantile(ds, 0.95)),
			stats.FormatFloat(stats.Quantile(ds, 0.99)),
			stats.FormatFloat(ds[len(ds)-1]))
	}

	rootDs := byPhase[rootPhase]
	sort.Float64s(rootDs)
	p99 := stats.Quantile(rootDs, 0.99)
	budget := float64(cfg.sloP99) / float64(time.Millisecond)
	pass := p99 <= budget
	verdict := "PASS"
	if !pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "slo: %s — %s p99 %sms against a %sms budget\n",
		verdict, rootPhase, stats.FormatFloat(p99), stats.FormatFloat(budget))
	return pass, nil
}
