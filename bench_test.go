// Benchmarks, one per experiment in the reproduction index (DESIGN.md
// section 4) plus micro-benchmarks for the algorithmic kernels. The
// experiment benchmarks run the reduced (Quick) grids so `go test
// -bench=.` regenerates every table in minutes; `cmd/calibbench` runs the
// full grids recorded in EXPERIMENTS.md.
package calibsched_test

import (
	"io"
	"testing"

	"calibsched"
	"calibsched/internal/experiments"
	"calibsched/internal/online"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := experiments.Config{Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(io.Discard, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Pass {
			b.Fatalf("%s verdict FAIL: %v", id, rep.Violations)
		}
	}
}

func BenchmarkE01LowerBound(b *testing.B)         { benchExperiment(b, "e1") }
func BenchmarkE02Alg1Ratio(b *testing.B)          { benchExperiment(b, "e2") }
func BenchmarkE03Alg2Ratio(b *testing.B)          { benchExperiment(b, "e3") }
func BenchmarkE04Alg3Ratio(b *testing.B)          { benchExperiment(b, "e4") }
func BenchmarkE05DPScaling(b *testing.B)          { benchExperiment(b, "e5") }
func BenchmarkE06Tradeoff(b *testing.B)           { benchExperiment(b, "e6") }
func BenchmarkE07ImmediateAblation(b *testing.B)  { benchExperiment(b, "e7") }
func BenchmarkE08ExtractionAblation(b *testing.B) { benchExperiment(b, "e8") }
func BenchmarkE09Baselines(b *testing.B)          { benchExperiment(b, "e9") }
func BenchmarkE10LP(b *testing.B)                 { benchExperiment(b, "e10") }
func BenchmarkE11Obs21Ablation(b *testing.B)      { benchExperiment(b, "e11") }
func BenchmarkE12Invariants(b *testing.B)         { benchExperiment(b, "e12") }
func BenchmarkE13SpecialCases(b *testing.B)       { benchExperiment(b, "e13") }
func BenchmarkE14StructuralLemmas(b *testing.B)   { benchExperiment(b, "e14") }
func BenchmarkE15WeightedMulti(b *testing.B)      { benchExperiment(b, "e15") }
func BenchmarkE16ChargingLedger(b *testing.B)     { benchExperiment(b, "e16") }
func BenchmarkE17Lemma37(b *testing.B)            { benchExperiment(b, "e17") }

// --- micro-benchmarks for the kernels ---

func benchInstance(n int, p int, lambda float64, weighted bool) *calibsched.Instance {
	spec := calibsched.WorkloadSpec{
		N: n, P: p, T: 16, Seed: 99,
		Arrival: calibsched.ArrivalPoisson, Lambda: lambda,
		Weights: calibsched.WeightUnit,
	}
	if weighted {
		spec.Weights = calibsched.WeightUniform
		spec.WMax = 10
	}
	return spec.MustBuild()
}

func BenchmarkAlg1Online(b *testing.B) {
	in := benchInstance(2000, 1, 0.4, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := calibsched.Alg1(in, 128); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlg2Online(b *testing.B) {
	in := benchInstance(2000, 1, 0.4, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := calibsched.Alg2(in, 128); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlg3Online(b *testing.B) {
	in := benchInstance(2000, 4, 1.5, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := calibsched.Alg3(in, 128); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimFastForward vs BenchmarkSimNaive quantify the event-skipping
// ablation: identical schedules, very different step counts (a lone job
// waits Theta(G) steps under the naive clock).
func BenchmarkSimFastForward(b *testing.B) {
	in := benchInstance(300, 1, 0.01, false) // sparse: long idle gaps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := calibsched.Alg1(in, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimNaive(b *testing.B) {
	in := benchInstance(300, 1, 0.01, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := calibsched.Alg1(in, 4096, online.WithNaiveStepping()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOfflineDP(b *testing.B) {
	in := benchInstance(64, 1, 0.4, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := calibsched.OptimalFlow(in, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOfflineBudgetSweep(b *testing.B) {
	in := benchInstance(48, 1, 0.4, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := calibsched.BudgetSweep(in, in.N()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObservation21Assign(b *testing.B) {
	in := benchInstance(1000, 2, 0.8, false)
	times := make([]int64, 0, 128)
	for t := int64(0); len(times) < 128; t += 20 {
		times = append(times, t)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := calibsched.AssignTimes(in, times); err != nil {
			b.Fatal(err)
		}
	}
}
