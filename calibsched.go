// Package calibsched is a complete implementation of the algorithms from
// Chau, McCauley, Li, and Wang, "Minimizing Total Weighted Flow Time with
// Calibrations" (SPAA 2017).
//
// Machines must be calibrated (cost G, instantaneous) before running jobs,
// and a calibration lasts T time steps. Unit-length jobs arrive over time
// with weights; the objective trades the total weighted flow time of the
// jobs against the money spent on calibrations.
//
// The package offers:
//
//   - Online algorithms (Section 3 of the paper): Alg1 (3-competitive,
//     one machine, unweighted), Alg2 (12-competitive, one machine,
//     weighted), and Alg3 (12-competitive, multiple machines, unweighted),
//     plus AssignTimes, the Observation 2.1 optimal list scheduler for a
//     fixed set of calibration times.
//   - Exact offline optimization (Section 4): OptimalFlow solves the
//     budgeted problem with the paper's O(K n^3) dynamic program;
//     BudgetSweep traces the whole flow-versus-budget frontier; and
//     OptimalTotalCost converts to the online objective.
//   - The Lemma 3.4 release-order transformation, the Lemma 3.1 lower
//     bound adversary, naive baselines, workload generators, and schedule
//     rendering/export.
//
// Quick start:
//
//	in := calibsched.MustInstance(1, 10, []int64{0, 3, 25}, []int64{1, 1, 1})
//	res, _ := calibsched.Alg1(in, 20) // calibration cost G = 20
//	fmt.Println(calibsched.TotalCost(in, res.Schedule, 20))
//	opt, _, _, _ := calibsched.OptimalTotalCost(in, 20)
//	fmt.Println(opt)
//
// All quantities are exact int64 arithmetic; all randomness in the
// workload generators is explicitly seeded.
package calibsched

import (
	"calibsched/internal/core"
)

// Core model types; see the respective type documentation in the paper's
// terms: a Job is unit length with a release time and weight, an Instance
// fixes the machine count P and calibration length T, a Schedule pairs a
// calibration Calendar with one Assignment per job.
type (
	// Job is one unit-length job.
	Job = core.Job
	// Instance is a problem instance (jobs, P machines, length-T
	// calibrations).
	Instance = core.Instance
	// Schedule is a calendar plus per-job assignments.
	Schedule = core.Schedule
	// Calendar is a set of calibrations.
	Calendar = core.Calendar
	// Calibration is one calibration event.
	Calibration = core.Calibration
	// Assignment places one job.
	Assignment = core.Assignment
)

// NewInstance builds an instance from (release, weight) pairs; see
// Canonicalize for the paper's distinct-release normal form.
func NewInstance(p int, t int64, releases, weights []int64) (*Instance, error) {
	return core.NewInstance(p, t, releases, weights)
}

// MustInstance is NewInstance that panics on error.
func MustInstance(p int, t int64, releases, weights []int64) *Instance {
	return core.MustInstance(p, t, releases, weights)
}

// Validate checks that s is a correct schedule for in (every job once, at
// or after release, in a calibrated slot, no slot collisions).
func Validate(in *Instance, s *Schedule) error { return core.Validate(in, s) }

// Flow returns the total weighted flow time of the schedule.
func Flow(in *Instance, s *Schedule) int64 { return core.Flow(in, s) }

// TotalCost returns the online objective G*(#calibrations) + Flow.
func TotalCost(in *Instance, s *Schedule, g int64) int64 { return core.TotalCost(in, s, g) }

// CostMode selects the flow-time aggregate of the arena's p-norm cost
// modes ("p1", "p2", "pinf"); see core.CostModes.
type CostMode = core.CostMode

// ModeCost returns G*(#calibrations) plus the mode's flow aggregate.
func ModeCost(in *Instance, s *Schedule, g int64, m CostMode) int64 {
	return core.ModeCost(in, s, g, m)
}

// NewSchedule allocates an empty schedule for n jobs.
func NewSchedule(n int) *Schedule { return core.NewSchedule(n) }
