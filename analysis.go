package calibsched

import (
	"calibsched/internal/analysis"
)

// Structural-analysis toolkit: the objects the paper's proofs reason about,
// exposed so downstream research can measure them on real schedules.
type (
	// IntervalStat describes one calibrated interval (fullness, flow, net
	// flow, whether it follows an uncalibrated gap).
	IntervalStat = analysis.Interval
	// SequenceStat is the paper's Section 3.2 sequence: a maximal run of
	// consecutive intervals in which all but the last is full.
	SequenceStat = analysis.Sequence
)

// Intervals computes per-interval statistics for machine m of a valid
// schedule, in start order.
func Intervals(in *Instance, s *Schedule, m int) []IntervalStat {
	return analysis.Intervals(in, s, m)
}

// Sequences partitions machine m's intervals into Section 3.2 sequences.
func Sequences(in *Instance, s *Schedule, m int) []SequenceStat {
	return analysis.Sequences(in, s, m)
}

// OptR computes the optimal release-ordered single-machine schedule for
// the G-cost objective by exhaustive search (tiny instances only; see
// OptRFast for the polynomial solver).
func OptR(in *Instance, g int64) (*Schedule, error) { return analysis.OptR(in, g) }

// OptRFast computes the optimal release-ordered single-machine schedule
// in polynomial time via a FIFO adaptation of the paper's Section 4
// dynamic program, cross-validated against OptR.
func OptRFast(in *Instance, g int64) (*Schedule, error) { return analysis.OptRFast(in, g) }

// CheckLemma32 verifies the paper's Lemma 3.2 (strict reading) on a pair
// (Algorithm 1 schedule, release-ordered optimal schedule); nil means no
// violation.
func CheckLemma32(in *Instance, alg, opt *Schedule) error {
	return analysis.CheckLemma32(in, alg, opt)
}

// CheckLemma36 verifies the paper's Lemma 3.6 on a pair (Algorithm 2
// schedule, OPT_r schedule); nil means no violation.
func CheckLemma36(in *Instance, alg, optR *Schedule) error {
	return analysis.CheckLemma36(in, alg, optR)
}
