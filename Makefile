# Local mirror of the CI gate (.github/workflows/ci.yml).

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet lint lint-json test race fuzz bench benchcheck solvebench arena serve loadtest crashtest clustersmoke ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the caliblint invariant suite (internal/lint) over the module.
lint:
	$(GO) run ./cmd/caliblint ./...

# lint-json emits the same diagnostics as a machine-readable JSON array
# (always an array, [] when clean) for editor and tooling integration.
lint-json:
	$(GO) run ./cmd/caliblint -json ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fuzz runs each native fuzz target briefly; `go test -fuzz` accepts one
# target per invocation, so the smoke loops over them.
fuzz:
	$(GO) test -fuzz=FuzzValidate -fuzztime=$(FUZZTIME) -run='^$$' ./internal/core
	$(GO) test -fuzz=FuzzAssignTimes -fuzztime=$(FUZZTIME) -run='^$$' ./internal/core
	$(GO) test -fuzz=FuzzDPMatchesBrute -fuzztime=$(FUZZTIME) -run='^$$' ./internal/offline
	$(GO) test -fuzz=FuzzReadInstance -fuzztime=$(FUZZTIME) -run='^$$' ./internal/workload
	$(GO) test -fuzz=FuzzReadRecord -fuzztime=$(FUZZTIME) -run='^$$' ./internal/store
	$(GO) test -fuzz=FuzzRecoverSession -fuzztime=$(FUZZTIME) -run='^$$' ./internal/store
	$(GO) test -fuzz=FuzzInstanceKey -fuzztime=$(FUZZTIME) -run='^$$' ./internal/solve

# bench writes a dated machine-readable performance report (ns/op,
# allocs/op, steps/sec for the steppers, the offline DP, the
# decision-tracing overhead tiers, the serving persistence tiers:
# in-memory vs WAL at each fsync policy, and the request-span recorder
# tiers: nil recorder vs bounded ring).
BENCH_OUT ?= BENCH_$(shell date +%F).json
GIT_COMMIT ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)
bench:
	$(GO) run -ldflags "-X main.commit=$(GIT_COMMIT)" ./cmd/calibbench -perf -out $(BENCH_OUT)

# benchcheck is the perf smoke gate: regenerate a short report and
# verify its ratio invariants — group-commit amortization (multi-session
# wal-always within 3.5x of wal-batch), nil-sink overhead (within 1.25x
# of the live stepper), and the durability tax beating the committed
# baseline's single-session ratio. Machine-independent: every gate is a
# ratio within one run, so it holds on loaded CI runners too.
BENCH_BASELINE ?= BENCH_2026-08-08.json
benchcheck:
	$(GO) run ./cmd/calibbench -perf -perf-duration 500ms -perf-filter serve/step,stepper -out /tmp/calibbench-check.json
	$(GO) run ./cmd/calibbench -perf-verify /tmp/calibbench-check.json -perf-baseline $(BENCH_BASELINE)

# solvebench runs just the batch-solve tiers: sequential vs parallel DP
# and budget sweep, plus the warm-cache repeat-solve path (prints to
# stdout; use BENCH_OUT-style -out to persist).
solvebench:
	$(GO) run ./cmd/calibbench -perf -perf-filter offline,solve

# arena regenerates the competitive-ratio leaderboard from the pinned
# sweep twice, requires both regenerations byte-identical to the
# committed LEADERBOARD.json / LEADERBOARD.md, and fails on any
# invariant violation (ratio < 1, LP > DP, proven bound exceeded) via
# calibarena's -check default.
arena:
	$(GO) run ./cmd/calibarena -json /tmp/calibarena-lb.json -md /tmp/calibarena-lb.md
	cmp LEADERBOARD.json /tmp/calibarena-lb.json
	cmp LEADERBOARD.md /tmp/calibarena-lb.md
	$(GO) run ./cmd/calibarena -json /tmp/calibarena-lb2.json -md /tmp/calibarena-lb2.md
	cmp /tmp/calibarena-lb.json /tmp/calibarena-lb2.json
	cmp /tmp/calibarena-lb.md /tmp/calibarena-lb2.md

# serve boots the streaming scheduling daemon on SERVE_ADDR (see
# DESIGN.md §7 for the API).
SERVE_ADDR ?= :8373
serve:
	$(GO) run ./cmd/calibserved -addr $(SERVE_ADDR)

# loadtest drives a running calibserved with the concurrent load
# generator and verifies every session against the batch engines.
LOAD_ADDR ?= http://127.0.0.1:8373
loadtest:
	$(GO) run ./cmd/calibload -addr $(LOAD_ADDR) -sessions 64 -steps 200 -verify

# crashtest is the kill -9 gate: boot calibserved with a data dir, drive
# traffic, SIGKILL it, restart on the same dir, and diff the schedules.
crashtest:
	./scripts/crashtest.sh

# clustersmoke is the multi-node gate: two calibserved backends behind
# calibgate, live migration, join/leave rebalances, then kill -9 one
# backend and require fail-open 503s for its shard while the survivor
# keeps serving. Writes the aggregated /metrics scrape to METRICS_OUT.
clustersmoke:
	./scripts/clustersmoke.sh

ci: build vet lint test race fuzz arena crashtest clustersmoke
