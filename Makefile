# Local mirror of the CI gate (.github/workflows/ci.yml).

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet lint test race fuzz ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the caliblint invariant suite (internal/lint) over the module.
lint:
	$(GO) run ./cmd/caliblint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fuzz runs each native fuzz target briefly; `go test -fuzz` accepts one
# target per invocation, so the smoke loops over them.
fuzz:
	$(GO) test -fuzz=FuzzValidate -fuzztime=$(FUZZTIME) -run='^$$' ./internal/core
	$(GO) test -fuzz=FuzzAssignTimes -fuzztime=$(FUZZTIME) -run='^$$' ./internal/core
	$(GO) test -fuzz=FuzzDPMatchesBrute -fuzztime=$(FUZZTIME) -run='^$$' ./internal/offline

ci: build vet lint test race fuzz
