// Quickstart: the smallest end-to-end tour of the calibsched API — build
// an instance, run the online algorithm, compare against the exact offline
// optimum, and render the schedules.
package main

import (
	"fmt"
	"log"

	"calibsched"
)

func main() {
	// One machine; calibrations last T = 10 steps and cost G = 20 each.
	// Three unit-weight jobs arrive at times 0, 3, and 25.
	const G = 20
	in := calibsched.MustInstance(1, 10, []int64{0, 3, 25}, []int64{1, 1, 1})

	// Algorithm 1 (online, 3-competitive): it does not know about a job
	// until its release time, and must balance waiting (flow) against
	// spending G on a calibration.
	res, err := calibsched.Alg1(in, G)
	if err != nil {
		log.Fatal(err)
	}
	if err := calibsched.Validate(in, res.Schedule); err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Algorithm 1 (online) ===")
	fmt.Printf("calibrations: %d  flow: %d  total cost: %d\n",
		res.Schedule.NumCalibrations(),
		calibsched.Flow(in, res.Schedule),
		calibsched.TotalCost(in, res.Schedule, G))
	for i, c := range res.Schedule.Calendar {
		fmt.Printf("  calibrate at t=%-3d (trigger: %s)\n", c.Start, res.Triggers[i])
	}
	fmt.Print(calibsched.Timeline(in, res.Schedule))

	// The exact offline optimum (Section 4 dynamic program) for the same
	// objective — the benchmark the competitive ratio is measured against.
	optCost, bestK, optSched, err := calibsched.OptimalTotalCost(in, G)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Offline optimum (DP) ===")
	fmt.Printf("total cost: %d with %d calibration(s)\n", optCost, bestK)
	fmt.Print(calibsched.Timeline(in, optSched))

	fmt.Printf("\ncompetitive ratio on this instance: %.3f (Theorem 3.3 guarantees <= 3)\n",
		float64(calibsched.TotalCost(in, res.Schedule, G))/float64(optCost))

	// The budget view: how much flow does each extra calibration buy?
	flows, err := calibsched.BudgetSweep(in, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Flow vs budget ===")
	for k, f := range flows {
		if f == calibsched.Unschedulable {
			fmt.Printf("K=%d: infeasible\n", k)
			continue
		}
		fmt.Printf("K=%d: optimal flow %d\n", k, f)
	}
}
