// Adversary: watch Lemma 3.1 in action. The adversary releases a job at
// time 0 and punishes whatever the online algorithm does: calibrate eagerly
// and a second job lands just outside the interval; hesitate and a flood of
// jobs makes the early calibration the right call. As G grows the forced
// ratio approaches 2 — no deterministic online algorithm can beat it.
package main

import (
	"fmt"
	"log"

	"calibsched"
)

func main() {
	alg1 := func(in *calibsched.Instance, g int64) (*calibsched.Schedule, error) {
		res, err := calibsched.Alg1(in, g)
		if err != nil {
			return nil, err
		}
		return res.Schedule, nil
	}
	skiRental := func(in *calibsched.Instance, g int64) (*calibsched.Schedule, error) {
		return calibsched.FlowThreshold(in, g)
	}

	fmt.Println("Lemma 3.1 adversary vs Algorithm 1 (T = G: the count trigger makes it eager)")
	fmt.Printf("%8s %8s %10s %10s %8s\n", "G", "case", "alg cost", "OPT", "ratio")
	for _, g := range []int64{4, 16, 64, 256, 1024, 4096} {
		out, err := calibsched.PlayAdversary(alg1, g, g)
		if err != nil {
			log.Fatal(err)
		}
		c := "waits"
		if out.CaseOne {
			c = "eager"
		}
		fmt.Printf("%8d %8s %10d %10d %8.4f\n", g, c, out.AlgCost, out.OptCost, out.Ratio())
	}

	fmt.Println("\nsame adversary vs the pure ski-rental rule (large G: it waits)")
	fmt.Printf("%8s %8s %8s %10s %10s %8s\n", "T", "G", "case", "alg cost", "OPT", "ratio")
	for _, t := range []int64{16, 64, 256, 1024} {
		g := int64(16)
		out, err := calibsched.PlayAdversary(skiRental, t, g)
		if err != nil {
			log.Fatal(err)
		}
		c := "waits"
		if out.CaseOne {
			c = "eager"
		}
		fmt.Printf("%8d %8d %8s %10d %10d %8.4f\n", t, g, c, out.AlgCost, out.OptCost, out.Ratio())
	}

	fmt.Println("\nthe ratio approaches 2 from below; Theorem 3.3 caps Algorithm 1 at 3.")
}
