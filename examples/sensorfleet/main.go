// Sensorfleet: a multi-machine scenario — an array of P identical sensor
// rigs must each be calibrated before taking measurements (unit jobs), and
// measurement requests arrive in bursts. Algorithm 3 decides online when
// to calibrate which rig.
//
// The example contrasts the explicit interval packing that the paper
// analyzes with the Observation 2.1 replay it recommends for practice, and
// certifies the result against an LP lower bound on a trimmed prefix of
// the workload.
package main

import (
	"fmt"
	"log"

	"calibsched"
)

func main() {
	const (
		P = 3
		T = 8
		G = 24
	)
	spec := calibsched.WorkloadSpec{
		N: 90, P: P, T: T, Seed: 7,
		Arrival: calibsched.ArrivalBursty, Burst: 6, Gap: 30, Jitter: 4,
		Weights: calibsched.WeightUnit,
	}
	in, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor fleet: %d measurement requests, %d rigs, T=%d, G=%d\n\n", in.N(), P, T, G)

	explicit, err := calibsched.Alg3(in, G, calibsched.WithoutObservationReplay())
	if err != nil {
		log.Fatal(err)
	}
	replayed, err := calibsched.Alg3(in, G)
	if err != nil {
		log.Fatal(err)
	}
	for name, s := range map[string]*calibsched.Schedule{
		"explicit packing (as analyzed)": explicit.Schedule,
		"Observation 2.1 replay":         replayed.Schedule,
	} {
		if err := calibsched.Validate(in, s); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	fmt.Printf("%-32s flow %-6d total %d\n", "explicit packing (as analyzed)",
		calibsched.Flow(in, explicit.Schedule), calibsched.TotalCost(in, explicit.Schedule, G))
	fmt.Printf("%-32s flow %-6d total %d\n\n", "Observation 2.1 replay",
		calibsched.Flow(in, replayed.Schedule), calibsched.TotalCost(in, replayed.Schedule, G))

	fmt.Println("first 60 time steps per rig ('#' busy, '-' calibrated idle, '.' off):")
	tl := calibsched.Timeline(in, replayed.Schedule)
	for i, line := range splitLines(tl) {
		if len(line) > 66 {
			line = line[:66]
		}
		fmt.Println(line)
		if i > P {
			break
		}
	}

	// Trigger census: why did the fleet calibrate?
	counts := map[string]int{}
	for _, tr := range replayed.Triggers {
		counts[tr.String()]++
	}
	fmt.Printf("\ncalibration triggers: %v\n", counts)
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
