// Fabrication: a weighted single-machine scenario modeled on the paper's
// motivation — a high-precision metrology tool in a wafer fab must be
// recalibrated (expensively) before measuring lots, and lots carry
// different priorities: a few hot lots (weight 100) among routine wafers
// (weight 1-5).
//
// The example runs Algorithm 2 online against the exact offline optimum,
// shows why the weight trigger matters (a hot lot forces an immediate
// calibration while routine lots pool), and compares with the naive
// calibrate-immediately policy.
package main

import (
	"fmt"
	"log"

	"calibsched"
)

func main() {
	const (
		T = 12  // a calibration certifies the tool for 12 slots
		G = 120 // recalibration cost in flow units
	)

	// A shift of lots: routine arrivals plus two hot lots at t=40 and 95.
	spec := calibsched.WorkloadSpec{
		N: 30, P: 1, T: T, Seed: 2026,
		Arrival: calibsched.ArrivalPoisson, Lambda: 0.25,
		Weights: calibsched.WeightUniform, WMax: 5,
	}
	in, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	// Inject the hot lots (weight 100) and renormalize.
	releases := []int64{40, 95}
	weights := []int64{100, 100}
	for _, j := range in.Jobs {
		releases = append(releases, j.Release)
		weights = append(weights, j.Weight)
	}
	in = calibsched.MustInstance(1, T, releases, weights).Canonicalize()

	run := func(name string, sched *calibsched.Schedule) int64 {
		if err := calibsched.Validate(in, sched); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		cost := calibsched.TotalCost(in, sched, G)
		fmt.Printf("%-22s calibrations %-3d flow %-6d total %d\n",
			name, sched.NumCalibrations(), calibsched.Flow(in, sched), cost)
		return cost
	}

	fmt.Printf("wafer-fab shift: %d lots, T=%d, G=%d\n\n", in.N(), T, G)

	res, err := calibsched.Alg2(in, G)
	if err != nil {
		log.Fatal(err)
	}
	algCost := run("Algorithm 2 (online)", res.Schedule)

	// How did the hot lots fare? Find them by weight.
	for _, j := range in.Jobs {
		if j.Weight == 100 {
			start := res.Schedule.Start(j.ID)
			fmt.Printf("  hot lot released t=%-4d started t=%-4d (waited %d)\n",
				j.Release, start, start-j.Release)
		}
	}
	fmt.Println()

	imm, err := calibsched.Immediate(in, G)
	if err != nil {
		log.Fatal(err)
	}
	immCost := run("calibrate-immediately", imm)

	lightest, err := calibsched.Alg2(in, G, calibsched.WithLightestFirst())
	if err != nil {
		log.Fatal(err)
	}
	run("Alg2, lightest-first", lightest.Schedule)

	optCost, bestK, _, err := calibsched.OptimalTotalCost(in, G)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s calibrations %-3d %-12s total %d\n\n", "offline optimum (DP)", bestK, "", optCost)

	fmt.Printf("Algorithm 2 ratio vs OPT:        %.3f (Theorem 3.8 guarantees <= 12)\n",
		float64(algCost)/float64(optCost))
	fmt.Printf("calibrate-immediately ratio:     %.3f\n", float64(immCost)/float64(optCost))
}
