// Budget: the offline planning view. Given next shift's expected workload,
// sweep the calibration budget K to trace the flow-versus-calibrations
// Pareto frontier (Section 4's dynamic program), locate the knee for a
// given calibration price G — by full sweep and by the paper's
// binary-search remark (exact ternary search over the convex frontier) —
// and export the frontier as CSV for plotting.
package main

import (
	"encoding/csv"
	"fmt"
	"log"
	"os"
	"strconv"

	"calibsched"
)

func main() {
	const (
		T = 12
		G = 90
	)
	spec := calibsched.WorkloadSpec{
		N: 45, P: 1, T: T, Seed: 404,
		Arrival: calibsched.ArrivalPoisson, Lambda: 0.22,
		Weights: calibsched.WeightUniform, WMax: 6,
	}
	in, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}

	flows, err := calibsched.BudgetSweep(in, in.N())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("shift plan: %d weighted jobs, T=%d, calibration price G=%d\n\n", in.N(), T, G)
	fmt.Printf("%4s  %12s  %12s\n", "K", "optimal flow", "total cost")
	bestK, bestTotal := -1, int64(0)
	for k, f := range flows {
		if f == calibsched.Unschedulable {
			continue
		}
		total := int64(k)*G + f
		if bestK < 0 || total < bestTotal {
			bestK, bestTotal = k, total
		}
		if k <= 14 || k == in.N() {
			fmt.Printf("%4d  %12d  %12d\n", k, f, total)
		}
	}
	fmt.Printf("\nsweep optimum: spend %d calibrations, total cost %d\n", bestK, bestTotal)

	total, k, probes, sched, err := calibsched.TotalCostSearch(in, G)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ternary search: same optimum %d at K=%d, probing only %d budgets\n", total, k, probes)
	if err := calibsched.Validate(in, sched); err != nil {
		log.Fatal(err)
	}

	// Export the frontier for plotting.
	path := "frontier.csv"
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	_ = w.Write([]string{"k", "optimal_flow", "total_cost"})
	for k, fl := range flows {
		if fl == calibsched.Unschedulable {
			continue
		}
		_ = w.Write([]string{
			strconv.Itoa(k),
			strconv.FormatInt(fl, 10),
			strconv.FormatInt(int64(k)*G+fl, 10),
		})
	}
	w.Flush()
	if err := w.Error(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfrontier written to %s\n", path)
}
