package calibsched

import (
	"calibsched/internal/baseline"
	"calibsched/internal/lowerbound"
	"calibsched/internal/online"
	"calibsched/internal/transform"
)

// Online algorithm plumbing re-exported from the implementation package.
type (
	// Result is an online algorithm run: the schedule plus one Trigger
	// per calibration explaining why it happened.
	Result = online.Result
	// Trigger labels a calibration's cause (flow, count, weight,
	// queue-full, immediate).
	Trigger = online.Trigger
	// Option tunes algorithm variants (ablation switches, naive
	// stepping).
	Option = online.Option
)

// Trigger values.
const (
	TriggerNone      = online.TriggerNone
	TriggerFlow      = online.TriggerFlow
	TriggerCount     = online.TriggerCount
	TriggerWeight    = online.TriggerWeight
	TriggerQueueFull = online.TriggerQueueFull
	TriggerImmediate = online.TriggerImmediate
)

// Alg1 runs the paper's Algorithm 1: online scheduling of unweighted jobs
// on one machine with calibration cost g; 3-competitive (Theorem 3.3).
func Alg1(in *Instance, g int64, opts ...Option) (*Result, error) {
	return online.Alg1(in, g, opts...)
}

// Alg2 runs the paper's Algorithm 2: online scheduling of weighted jobs on
// one machine; 12-competitive (Theorem 3.8).
func Alg2(in *Instance, g int64, opts ...Option) (*Result, error) {
	return online.Alg2(in, g, opts...)
}

// Alg3 runs the paper's Algorithm 3: online scheduling of unweighted jobs
// on multiple machines; 12-competitive (Theorem 3.10). By default the
// final assignment replays the calendar through Observation 2.1, as the
// paper recommends for practice.
func Alg3(in *Instance, g int64, opts ...Option) (*Result, error) {
	return online.Alg3(in, g, opts...)
}

// Alg2Multi schedules weighted jobs on multiple machines — the setting the
// paper leaves open. EXTENSION, not from the paper: Algorithm 2's triggers
// drive Algorithm 3's round-robin calendar; no ratio is proved, and
// experiment E15 measures it against the weighted Figure 1 LP bound.
func Alg2Multi(in *Instance, g int64, opts ...Option) (*Result, error) {
	return online.Alg2Multi(in, g, opts...)
}

// AssignTimes optimally assigns jobs given fixed calibration times
// (Observation 2.1): machines round-robin, heaviest waiting job first.
func AssignTimes(in *Instance, times []int64) (*Schedule, error) {
	return online.AssignTimes(in, times)
}

// Stepper drives Algorithm 1 or 2 one time step at a time — the literal
// online interaction model (see NewAlg1Stepper / NewAlg2Stepper).
type Stepper = online.Stepper

// StepEvent reports what a Stepper did during one step.
type StepEvent = online.StepEvent

// NewAlg1Stepper returns an incremental Algorithm 1.
func NewAlg1Stepper(t, g int64, opts ...Option) *Stepper { return online.NewAlg1Stepper(t, g, opts...) }

// NewAlg2Stepper returns an incremental Algorithm 2.
func NewAlg2Stepper(t, g int64, opts ...Option) *Stepper { return online.NewAlg2Stepper(t, g, opts...) }

// Algorithm-variant options (see DESIGN.md ablation index).
var (
	// WithNaiveStepping forces per-time-step simulation instead of the
	// event-skipping loop (they are equivalent; useful for tracing).
	WithNaiveStepping = online.WithNaiveStepping
	// WithoutImmediateCalibrations disables Algorithm 1's immediate rule.
	WithoutImmediateCalibrations = online.WithoutImmediateCalibrations
	// WithLightestFirst makes Algorithm 2 extract the lightest job, the
	// paper's literal line 13.
	WithLightestFirst = online.WithLightestFirst
	// WithFlowTriggerOnly reduces Algorithm 1/2 to pure ski-rental.
	WithFlowTriggerOnly = online.WithFlowTriggerOnly
	// WithoutObservationReplay keeps Algorithm 3's explicit packing.
	WithoutObservationReplay = online.WithoutObservationReplay
)

// ReleaseOrder applies the Lemma 3.4 transformation: rewrite a
// single-machine schedule into release-time order without delaying any job
// and at most doubling the calibrations.
func ReleaseOrder(in *Instance, s *Schedule) (*Schedule, error) {
	return transform.ReleaseOrder(in, s)
}

// Baselines for comparison (experiment E9); none is constant-competitive.
var (
	// Immediate calibrates on demand so every job runs as early as
	// possible.
	Immediate = baseline.Immediate
	// AlwaysCalibrated keeps the machine calibrated back-to-back.
	AlwaysCalibrated = baseline.AlwaysCalibrated
	// Periodic calibrates on a fixed stride.
	Periodic = baseline.Periodic
	// FlowThreshold is the pure ski-rental rule.
	FlowThreshold = baseline.FlowThreshold
)

// AdversaryOutcome reports one game of the Lemma 3.1 adversary.
type AdversaryOutcome = lowerbound.Outcome

// PlayAdversary runs the Lemma 3.1 lower-bound adversary against any
// deterministic single-machine online algorithm.
func PlayAdversary(alg func(in *Instance, g int64) (*Schedule, error), t, g int64) (*AdversaryOutcome, error) {
	return lowerbound.Play(lowerbound.Algorithm(alg), t, g)
}
