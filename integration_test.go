package calibsched_test

import (
	"math/rand/v2"
	"testing"

	"calibsched"
)

// TestIntegrationInvariantLattice runs every solver on a shared grid of
// instances and asserts the ordering relations that must hold between
// them:
//
//	LP bound <= OPT <= OPT_search == OPT_sweep <= every online algorithm
//	         <= its proven factor * OPT
//	replayed Alg3 flow <= explicit Alg3 flow
//	ReleaseOrder(s) flow <= s flow, calibrations <= 2x
//
// This is the whole-system smoke lattice: a regression anywhere in the
// stack (costing, validation, DP, search, any algorithm) breaks an edge.
func TestIntegrationInvariantLattice(t *testing.T) {
	if testing.Short() {
		t.Skip("integration lattice skipped in -short mode")
	}
	rng := rand.New(rand.NewPCG(2026, 7))
	grid := []struct {
		lambda   float64
		g        int64
		t        int64
		weighted bool
	}{
		{0.05, 16, 8, false},
		{0.3, 64, 8, false},
		{1.5, 32, 4, false},
		{0.3, 64, 8, true},
		{1.0, 128, 16, true},
	}
	for gi, cell := range grid {
		for rep := 0; rep < 3; rep++ {
			spec := calibsched.WorkloadSpec{
				N: 40, P: 1, T: cell.t, Seed: uint64(gi*100 + rep),
				Arrival: calibsched.ArrivalPoisson, Lambda: cell.lambda,
				Weights: calibsched.WeightUnit,
			}
			if cell.weighted {
				spec.Weights = calibsched.WeightUniform
				spec.WMax = 8
			}
			in, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			g := cell.g

			opt, _, optSched, err := calibsched.OptimalTotalCost(in, g)
			if err != nil {
				t.Fatal(err)
			}
			if err := calibsched.Validate(in, optSched); err != nil {
				t.Fatalf("grid %d rep %d: OPT invalid: %v", gi, rep, err)
			}
			searchTotal, _, _, _, err := calibsched.TotalCostSearch(in, g)
			if err != nil {
				t.Fatal(err)
			}
			if searchTotal != opt {
				t.Fatalf("grid %d rep %d: search %d != sweep %d", gi, rep, searchTotal, opt)
			}

			check := func(name string, sched *calibsched.Schedule, factor float64) {
				t.Helper()
				if err := calibsched.Validate(in, sched); err != nil {
					t.Fatalf("grid %d rep %d %s: invalid: %v", gi, rep, name, err)
				}
				cost := calibsched.TotalCost(in, sched, g)
				if cost < opt {
					t.Fatalf("grid %d rep %d %s: cost %d below OPT %d", gi, rep, name, cost, opt)
				}
				if factor > 0 && float64(cost) > factor*float64(opt)+1e-9 {
					t.Fatalf("grid %d rep %d %s: cost %d exceeds %.0fx OPT %d",
						gi, rep, name, cost, factor, opt)
				}
			}

			if !cell.weighted {
				res, err := calibsched.Alg1(in, g)
				if err != nil {
					t.Fatal(err)
				}
				check("alg1", res.Schedule, 3)
				a3, err := calibsched.Alg3(in, g)
				if err != nil {
					t.Fatal(err)
				}
				check("alg3", a3.Schedule, 12)
				explicit, err := calibsched.Alg3(in, g, calibsched.WithoutObservationReplay())
				if err != nil {
					t.Fatal(err)
				}
				check("alg3-explicit", explicit.Schedule, 0)
				if calibsched.Flow(in, a3.Schedule) > calibsched.Flow(in, explicit.Schedule) {
					t.Fatalf("grid %d rep %d: replay increased flow", gi, rep)
				}
			}
			res2, err := calibsched.Alg2(in, g)
			if err != nil {
				t.Fatal(err)
			}
			check("alg2", res2.Schedule, 12)
			a2m, err := calibsched.Alg2Multi(in, g)
			if err != nil {
				t.Fatal(err)
			}
			check("alg2multi", a2m.Schedule, 0)

			ordered, err := calibsched.ReleaseOrder(in, res2.Schedule)
			if err != nil {
				t.Fatal(err)
			}
			check("release-order(alg2)", ordered, 0)
			if calibsched.Flow(in, ordered) > calibsched.Flow(in, res2.Schedule) {
				t.Fatalf("grid %d rep %d: ReleaseOrder increased flow", gi, rep)
			}
			if ordered.NumCalibrations() > 2*res2.Schedule.NumCalibrations() {
				t.Fatalf("grid %d rep %d: ReleaseOrder calibrations %d > 2x%d",
					gi, rep, ordered.NumCalibrations(), res2.Schedule.NumCalibrations())
			}

			for _, name := range []string{"immediate", "always", "periodic", "flow-threshold"} {
				var s *calibsched.Schedule
				var err error
				switch name {
				case "immediate":
					s, err = calibsched.Immediate(in, g)
				case "always":
					s, err = calibsched.AlwaysCalibrated(in, g)
				case "periodic":
					s, err = calibsched.Periodic(in, g, cell.t+int64(rng.IntN(4)))
				case "flow-threshold":
					s, err = calibsched.FlowThreshold(in, g)
				}
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				check(name, s, 0)
			}
		}
	}
}

// TestIntegrationMultiMachineLattice repeats the core relations on P > 1
// (no exact OPT there; the combinatorial bound anchors the lattice).
func TestIntegrationMultiMachineLattice(t *testing.T) {
	if testing.Short() {
		t.Skip("integration lattice skipped in -short mode")
	}
	for _, p := range []int{2, 4} {
		for rep := 0; rep < 3; rep++ {
			spec := calibsched.WorkloadSpec{
				N: 60, P: p, T: 8, Seed: uint64(1000*p + rep),
				Arrival: calibsched.ArrivalBursty, Burst: p + 1, Gap: 12, Jitter: 2,
				Weights: calibsched.WeightUnit,
			}
			in, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			const g = 40
			lower := int64(in.N()) + g*((int64(in.N())+in.T-1)/in.T)

			a3, err := calibsched.Alg3(in, g)
			if err != nil {
				t.Fatal(err)
			}
			if err := calibsched.Validate(in, a3.Schedule); err != nil {
				t.Fatal(err)
			}
			cost := calibsched.TotalCost(in, a3.Schedule, g)
			if cost < lower {
				t.Fatalf("P=%d rep %d: alg3 cost %d below combinatorial bound %d", p, rep, cost, lower)
			}
			if float64(cost) > 12*float64(lower) {
				t.Fatalf("P=%d rep %d: alg3 cost %d above 12x bound %d", p, rep, cost, lower)
			}
			a2m, err := calibsched.Alg2Multi(in, g)
			if err != nil {
				t.Fatal(err)
			}
			if err := calibsched.Validate(in, a2m.Schedule); err != nil {
				t.Fatal(err)
			}
		}
	}
}
