package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("registry holds %d experiments, want 17", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17"} {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q missing", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID found a nonexistent experiment")
	}
}

// TestAllExperimentsPassQuick runs the whole harness on the reduced grids;
// every claim of the paper must hold.
func TestAllExperimentsPassQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness skipped in -short mode")
	}
	cfg := Config{Quick: true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			rep, err := e.Run(&buf, cfg)
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", e.ID, err, buf.String())
			}
			if rep == nil {
				t.Fatalf("%s returned no report", e.ID)
			}
			if !rep.Pass {
				t.Fatalf("%s verdict FAIL:\n%s\n%s", e.ID, strings.Join(rep.Violations, "\n"), buf.String())
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no table output", e.ID)
			}
		})
	}
}

func TestParallelMapOrderAndCoverage(t *testing.T) {
	cfg := Config{Workers: 4}
	got := parallelMap(cfg, 100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("index %d = %d", i, v)
		}
	}
	// Single-element and empty cases.
	if got := parallelMap(cfg, 1, func(i int) int { return 7 }); len(got) != 1 || got[0] != 7 {
		t.Fatal("single-element parallelMap wrong")
	}
	if got := parallelMap(cfg, 0, func(i int) int { return 0 }); len(got) != 0 {
		t.Fatal("empty parallelMap wrong")
	}
}

func TestWriteReportRendersVerdict(t *testing.T) {
	rep := newReport("eX", "test")
	rep.set("k", "%d", 42)
	var buf bytes.Buffer
	WriteReport(&buf, rep)
	if !strings.Contains(buf.String(), "PASS") || !strings.Contains(buf.String(), "k=42") {
		t.Errorf("report = %q", buf.String())
	}
	rep.violate("broken %d", 7)
	buf.Reset()
	WriteReport(&buf, rep)
	if !strings.Contains(buf.String(), "FAIL") || !strings.Contains(buf.String(), "broken 7") {
		t.Errorf("report = %q", buf.String())
	}
}
