package experiments

import (
	"fmt"
	"io"

	"calibsched/internal/baseline"
	"calibsched/internal/core"
	"calibsched/internal/lowerbound"
	"calibsched/internal/online"
	"calibsched/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "e1",
		Title: "Lemma 3.1 lower bound adversary",
		Claim: "No deterministic online algorithm beats (2-o(1))-competitive; the adversary's measured ratio climbs toward 2 with G and never exceeds Algorithm 1's bound of 3.",
		Run:   runE1,
	})
}

func runE1(w io.Writer, cfg Config) (*Report, error) {
	rep := newReport("e1", "Lemma 3.1 lower bound adversary")
	gs := []int64{4, 16, 64, 256, 1024, 4096}
	if cfg.Quick {
		gs = []int64{4, 64, 1024}
	}

	alg1 := func(in *core.Instance, g int64) (*core.Schedule, error) {
		res, err := online.Alg1(in, g)
		if err != nil {
			return nil, err
		}
		return res.Schedule, nil
	}
	algs := []struct {
		name string
		fn   lowerbound.Algorithm
	}{
		{"alg1", alg1},
		{"flow-threshold", func(in *core.Instance, g int64) (*core.Schedule, error) {
			return baseline.FlowThreshold(in, g)
		}},
	}

	type row struct {
		alg          string
		t, g         int64
		caseName     string
		algCost, opt int64
		measured     float64
		lemmaBound   float64
	}
	type point struct {
		alg  int
		t, g int64
	}
	var points []point
	for ai := range algs {
		for _, g := range gs {
			// T = G exercises the eager branch of Algorithm 1 (count
			// trigger fires immediately); T = 4 with large G exercises
			// waiting algorithms.
			points = append(points, point{ai, g, g}, point{ai, 4, g})
		}
	}
	rows := parallelMap(cfg, len(points), func(i int) row {
		p := points[i]
		out, err := lowerbound.Play(algs[p.alg].fn, p.t, p.g)
		if err != nil {
			panic(fmt.Sprintf("e1: %v", err))
		}
		r := row{
			alg: algs[p.alg].name, t: p.t, g: p.g,
			algCost: out.AlgCost, opt: out.OptCost, measured: out.Ratio(),
		}
		var num, den int64
		if out.CaseOne {
			r.caseName = "1 (eager)"
			num, den = lowerbound.CaseOneBound(p.g)
		} else {
			r.caseName = "2 (waits)"
			num, den = lowerbound.CaseTwoBound(p.t, p.g)
		}
		r.lemmaBound = float64(num) / float64(den)
		return r
	})

	tbl := stats.NewTable("alg", "T", "G", "case", "alg cost", "OPT", "ratio", "lemma bound")
	maxAlg1 := 0.0
	bestClimb := 0.0
	for _, r := range rows {
		tbl.AddRow(r.alg, r.t, r.g, r.caseName, r.algCost, r.opt, r.measured, r.lemmaBound)
		if r.alg == "alg1" {
			if r.measured > maxAlg1 {
				maxAlg1 = r.measured
			}
			if r.measured > bestClimb {
				bestClimb = r.measured
			}
			if r.measured > 3.0+1e-9 {
				rep.violate("alg1 ratio %.4f exceeds its Theorem 3.3 bound 3 at T=%d G=%d", r.measured, r.t, r.g)
			}
		}
	}
	if err := tbl.Write(w); err != nil {
		return nil, err
	}
	if bestClimb < 1.9 {
		rep.violate("adversary ratio peaked at %.4f; expected to approach 2 at large G", bestClimb)
	}
	rep.set("max_alg1_ratio", "%.4f", maxAlg1)
	rep.set("peak_adversary_ratio", "%.4f", bestClimb)
	WriteReport(w, rep)
	return rep, nil
}
