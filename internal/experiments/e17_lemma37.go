package experiments

import (
	"fmt"
	"io"
	"math/rand/v2"

	"calibsched/internal/analysis"
	"calibsched/internal/core"
	"calibsched/internal/online"
	"calibsched/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "e17",
		Title: "Lemma 3.7 (proof deferred by the paper) against exact OPT_r",
		Claim: "Wherever Lemma 3.7's precondition fires — the |I|-th OPT_r interval holding a sequence's jobs begins only after the sequence ends — OPT_r incurs at least f_l - f_l^q flow on those jobs there or later. The precondition is rare (observation O1 in EXPERIMENTS.md): it needs OPT_r to defer part of a sequence into a later batch more cheaply than a dedicated calibration; multi-wave weighted instances realize it occasionally, and every realized case must satisfy the inequality.",
		Run:   runE17,
	})
}

// e17Broad samples an unconstrained weighted instance (sizes enabled by
// the polynomial OptRFast solver).
func e17Broad(rng *rand.Rand) (*core.Instance, int64) {
	n := 4 + rng.IntN(24)
	releases := make([]int64, n)
	weights := make([]int64, n)
	for j := range releases {
		releases[j] = int64(rng.IntN(8 * n))
		weights[j] = 1 + int64(rng.IntN(8))
	}
	in := core.MustInstance(1, int64(2+rng.IntN(7)), releases, weights).Canonicalize()
	return in, int64(2 + rng.IntN(160))
}

// e17Shaped targets the regime with the best chance of firing the
// precondition: light early jobs whose flow trigger lands before a later
// heavy batch, so OPT_r could in principle defer them into that batch.
func e17Shaped(rng *rand.Rand) (*core.Instance, int64) {
	t := int64(3 + rng.IntN(4))
	g := int64(2 * t * (1 + int64(rng.IntN(4))))
	var releases, weights []int64
	// Several waves: a dense burst (fires Algorithm 2's weight or
	// queue-full trigger), trailing lights, then a later heavy wave.
	waves := 2 + rng.IntN(3)
	base := int64(0)
	for wv := 0; wv < waves; wv++ {
		burst := 1 + rng.IntN(int(t)+2)
		for j := 0; j < burst; j++ {
			releases = append(releases, base+int64(rng.IntN(int(t)+2)))
			if rng.IntN(3) == 0 {
				weights = append(weights, 1)
			} else {
				weights = append(weights, 3+int64(rng.IntN(6)))
			}
		}
		base += t + int64(rng.IntN(int(2*g)))
	}
	return core.MustInstance(1, t, releases, weights).Canonicalize(), g
}

type e17Outcome struct {
	applicable bool
	violated   string
	slackUsed  bool
}

// e17Trial checks Lemma 3.7 on one instance against exhaustive OPT_r.
func e17Trial(in *core.Instance, g int64) e17Outcome {
	res, err := online.Alg2(in, g)
	if err != nil {
		return e17Outcome{violated: err.Error()}
	}
	optR, err := analysis.OptRFast(in, g)
	if err != nil {
		return e17Outcome{violated: err.Error()}
	}
	optIvs := analysis.Intervals(in, optR, 0)
	calIdx := map[int64]int{}
	for k, c := range res.Schedule.Calendar {
		calIdx[c.Start] = k
	}

	var out e17Outcome
	for _, seq := range analysis.Sequences(in, res.Schedule, 0) {
		jobsInSeq := map[int]bool{}
		for _, iv := range seq.Intervals {
			for _, id := range iv.Jobs {
				jobsInSeq[id] = true
			}
		}
		if len(jobsInSeq) == 0 {
			continue
		}
		l := seq.Intervals[len(seq.Intervals)-1]

		// l^OPT: the |I|-th OPT_r interval (in start order) containing a
		// job of J_I.
		var holding []analysis.Interval
		for _, ov := range optIvs {
			for _, id := range ov.Jobs {
				if jobsInSeq[id] {
					holding = append(holding, ov)
					break
				}
			}
		}
		if len(holding) < len(seq.Intervals) {
			continue // precondition unmet
		}
		lOpt := holding[len(seq.Intervals)-1]
		if lOpt.Start <= l.End-1 {
			continue // lemma assumes l^OPT begins after l ends
		}

		fl := l.Flow
		k, ok := calIdx[l.Start]
		if !ok {
			return e17Outcome{violated: "missing calibration record"}
		}
		flq := res.FlowAtCalibration[k]

		var lhs int64
		for id := range jobsInSeq {
			if optR.Start(id) >= lOpt.Start {
				lhs += in.Jobs[id].Flow(optR.Start(id))
			}
		}
		out.applicable = true
		rhs := fl - flq
		if lhs >= rhs {
			continue
		}
		// The recorded f_l^q uses the "at calibration time" convention;
		// the paper's is "one time step before". The gap is at most the
		// queued weight, bounded by the weight of l's jobs.
		var slack int64
		for _, id := range l.Jobs {
			slack += in.Jobs[id].Weight
		}
		if lhs >= rhs-slack {
			out.slackUsed = true
			continue
		}
		out.violated = fmt.Sprintf("T=%d G=%d jobs=%v: lhs %d < f_l - f_l^q = %d - %d (slack %d)",
			in.T, g, in.Jobs, lhs, fl, flq, slack)
		return out
	}
	return out
}

func runE17(w io.Writer, cfg Config) (*Report, error) {
	rep := newReport("e17", "Lemma 3.7 against exact OPT_r")
	trials := 600
	if cfg.Quick {
		trials = 80
	}

	results := parallelMap(cfg, trials, func(i int) e17Outcome {
		rng := rand.New(rand.NewPCG(uint64(i)+cfg.Seed, 3701))
		if i%2 == 0 {
			in, g := e17Broad(rng)
			return e17Trial(in, g)
		}
		in, g := e17Shaped(rng)
		return e17Trial(in, g)
	})

	applicable, slackUsed, violations := 0, 0, 0
	for _, r := range results {
		if r.applicable {
			applicable++
		}
		if r.slackUsed {
			slackUsed++
		}
		if r.violated != "" {
			violations++
			if violations <= 3 {
				rep.violate("Lemma 3.7: %s", r.violated)
			}
		}
	}
	tbl := stats.NewTable("metric", "value")
	tbl.AddRow("instances sampled (broad + shaped families)", trials)
	tbl.AddRow("instances with an applicable sequence", applicable)
	tbl.AddRow("holds outright", applicable-slackUsed-violations)
	tbl.AddRow("holds within the one-step convention slack", slackUsed)
	tbl.AddRow("violations", violations)
	if err := tbl.Write(w); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "\nnote: the precondition is rare by design (observation O1): OPT_r must\n"+
		"defer part of a sequence by more than T past its end, which only pays\n"+
		"when the deferred jobs merge into a later batch more cheaply than the\n"+
		"calibration their own trigger priced in. Multi-wave weighted instances\n"+
		"realize it occasionally; every realized case satisfied the lemma.\n")
	rep.set("applicable", "%d", applicable)
	rep.set("violations", "%d", violations)
	WriteReport(w, rep)
	return rep, nil
}
