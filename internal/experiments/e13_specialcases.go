package experiments

import (
	"fmt"
	"io"

	"calibsched/internal/baseline"
	"calibsched/internal/core"
	"calibsched/internal/online"
	"calibsched/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "e13",
		Title: "Section 3 special cases: G/T < 1 and G > T^2",
		Claim: "For G <= T every algorithm schedules each arriving job immediately (Algorithm 1 coincides with calibrate-on-demand); for G > T^2 the immediate-calibration rule is droppable (the paper's simplification remark) with no measured cost change beyond noise, and both variants stay within the 3x bound.",
		Run:   runE13,
	})
}

func runE13(w io.Writer, cfg Config) (*Report, error) {
	rep := newReport("e13", "Section 3 special cases: G/T < 1 and G > T^2")

	// Part 1: G <= T. The count trigger |Q|*T >= G fires the moment any
	// job waits, so Algorithm 1 must schedule every job at its release and
	// match the Immediate baseline exactly (same calendar, same
	// assignments up to calibration bookkeeping -> same cost).
	type smallPoint struct {
		g, t int64
		seed uint64
	}
	var pts []smallPoint
	seeds := []uint64{1, 2, 3}
	if cfg.Quick {
		seeds = []uint64{1}
	}
	for _, tt := range []int64{4, 16, 64} {
		for _, g := range []int64{0, 1, tt / 2, tt} {
			for _, s := range seeds {
				pts = append(pts, smallPoint{g, tt, s})
			}
		}
	}
	n := 60
	if cfg.Quick {
		n = 30
	}
	type smallRow struct {
		smallPoint
		allAtRelease  bool
		matchesOnCost bool
		alg, imm      int64
	}
	rows := parallelMap(cfg, len(pts), func(i int) smallRow {
		p := pts[i]
		in := poissonSpec(n, 1, p.t, 0.4, p.seed+cfg.Seed).MustBuild()
		res, err := online.Alg1(in, p.g)
		if err != nil {
			panic(fmt.Sprintf("e13: %v", err))
		}
		r := smallRow{smallPoint: p, allAtRelease: true}
		for _, j := range in.Jobs {
			if res.Schedule.Start(j.ID) != j.Release {
				r.allAtRelease = false
			}
		}
		imm, err := baseline.Immediate(in, p.g)
		if err != nil {
			panic(fmt.Sprintf("e13: %v", err))
		}
		r.alg = core.TotalCost(in, res.Schedule, p.g)
		r.imm = core.TotalCost(in, imm, p.g)
		r.matchesOnCost = r.alg == r.imm
		return r
	})
	tbl := stats.NewTable("T", "G", "seed", "all at release", "alg1 cost", "immediate cost")
	for _, r := range rows {
		tbl.AddRow(r.t, r.g, r.seed, r.allAtRelease, r.alg, r.imm)
		if !r.allAtRelease {
			rep.violate("G=%d <= T=%d but a job was delayed", r.g, r.t)
		}
		if !r.matchesOnCost {
			rep.violate("G=%d T=%d seed=%d: alg1 cost %d != immediate %d", r.g, r.t, r.seed, r.alg, r.imm)
		}
	}
	if err := tbl.Write(w); err != nil {
		return nil, err
	}
	fmt.Fprintln(w)

	// Part 2: G > T^2 (T < G/T). The paper notes the immediate
	// calibrations "can be removed entirely" in this regime with equal or
	// better bounds. Measure both variants against OPT.
	type bigPoint struct {
		g, t int64
	}
	var bpts []bigPoint
	for _, tt := range []int64{2, 4, 8} {
		for _, g := range []int64{tt*tt + 1, 4 * tt * tt, 16 * tt * tt} {
			bpts = append(bpts, bigPoint{g, tt})
		}
	}
	if cfg.Quick {
		bpts = bpts[:4]
	}
	type bigRow struct {
		bigPoint
		withRatio, withoutRatio float64
		immediates              int
	}
	brows := parallelMap(cfg, len(bpts), func(i int) bigRow {
		p := bpts[i]
		var sumWith, sumWithout float64
		imms := 0
		for _, seed := range seeds {
			in := poissonSpec(n, 1, p.t, 0.4, seed+cfg.Seed+77).MustBuild()
			opt, err := optTotal(in, p.g)
			if err != nil {
				panic(fmt.Sprintf("e13: %v", err))
			}
			res, err := online.Alg1(in, p.g)
			if err != nil {
				panic(fmt.Sprintf("e13: %v", err))
			}
			for _, tr := range res.Triggers {
				if tr == online.TriggerImmediate {
					imms++
				}
			}
			withoutCost, err := alg1Cost(in, p.g, online.WithoutImmediateCalibrations())
			if err != nil {
				panic(fmt.Sprintf("e13: %v", err))
			}
			sumWith += ratio(core.TotalCost(in, res.Schedule, p.g), opt)
			sumWithout += ratio(withoutCost, opt)
		}
		return bigRow{
			bigPoint:     p,
			withRatio:    sumWith / float64(len(seeds)),
			withoutRatio: sumWithout / float64(len(seeds)),
			immediates:   imms,
		}
	})
	tbl2 := stats.NewTable("T", "G", "immediate fires", "ratio with rule", "ratio without")
	for _, r := range brows {
		tbl2.AddRow(r.t, r.g, r.immediates, r.withRatio, r.withoutRatio)
		if r.withRatio > 3.0+1e-9 || r.withoutRatio > 3.0+1e-9 {
			rep.violate("T=%d G=%d: a variant exceeded the 3x bound (%.3f / %.3f)",
				r.t, r.g, r.withRatio, r.withoutRatio)
		}
	}
	if err := tbl2.Write(w); err != nil {
		return nil, err
	}
	rep.set("grid_points", "%d", len(rows)+len(brows))
	WriteReport(w, rep)
	return rep, nil
}
