package experiments

import (
	"fmt"
	"io"

	"calibsched/internal/stats"
	"calibsched/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "e3",
		Title: "Theorem 3.8: Algorithm 2 competitive ratio (weighted)",
		Claim: "Algorithm 2's cost is at most 12x the exact offline optimum across weight laws; in practice far below.",
		Run:   runE3,
	})
}

func runE3(w io.Writer, cfg Config) (*Report, error) {
	rep := newReport("e3", "Theorem 3.8: Algorithm 2 competitive ratio (weighted)")
	laws := []workload.WeightKind{workload.WeightUniform, workload.WeightZipf, workload.WeightBimodal}
	lambdas := []float64{0.05, 0.3, 1.0}
	gs := []int64{8, 64, 512}
	t := int64(8)
	seeds := []uint64{1, 2, 3}
	n := 50
	if cfg.Quick {
		laws = laws[:2]
		lambdas = []float64{0.3}
		gs = []int64{16, 128}
		seeds = []uint64{1}
		n = 25
	}

	type point struct {
		law    workload.WeightKind
		lambda float64
		g      int64
	}
	var points []point
	for _, law := range laws {
		for _, l := range lambdas {
			for _, g := range gs {
				points = append(points, point{law, l, g})
			}
		}
	}
	type cell struct {
		point
		ratios []float64
	}
	cells := parallelMap(cfg, len(points), func(i int) cell {
		p := points[i]
		c := cell{point: p}
		for _, seed := range seeds {
			in := weightedSpec(n, t, p.lambda, p.law, seed+cfg.Seed).MustBuild()
			algCost, err := alg2Cost(in, p.g)
			if err != nil {
				panic(fmt.Sprintf("e3: %v", err))
			}
			opt, err := optTotal(in, p.g)
			if err != nil {
				panic(fmt.Sprintf("e3 opt: %v", err))
			}
			c.ratios = append(c.ratios, ratio(algCost, opt))
		}
		return c
	})

	tbl := stats.NewTable("weights", "lambda", "G", "mean ratio", "max ratio")
	globalMax := 0.0
	for _, c := range cells {
		s := stats.Summarize(c.ratios)
		tbl.AddRow(string(c.law), c.lambda, c.g, s.Mean, s.Max)
		if s.Max > globalMax {
			globalMax = s.Max
		}
		if s.Max > 12.0+1e-9 {
			rep.violate("ratio %.4f exceeds 12 at weights=%s lambda=%.2f G=%d",
				s.Max, c.law, c.lambda, c.g)
		}
	}
	if err := tbl.Write(w); err != nil {
		return nil, err
	}
	rep.set("max_ratio", "%.4f", globalMax)
	WriteReport(w, rep)
	return rep, nil
}
