package experiments

import (
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"calibsched/internal/core"
	"calibsched/internal/offline"
	"calibsched/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "e5",
		Title: "Theorem 4.7: exact DP, correctness and scaling",
		Claim: "The DP equals the brute-force optimum on every sampled instance, and its runtime grows polynomially (cubic-ish in n at fixed K, near-linear extra cost in K).",
		Run:   runE5,
	})
}

func runE5(w io.Writer, cfg Config) (*Report, error) {
	rep := newReport("e5", "Theorem 4.7: exact DP, correctness and scaling")

	// Part 1: correctness census against brute force.
	trials := 200
	if cfg.Quick {
		trials = 40
	}
	matches := parallelMap(cfg, trials, func(i int) bool {
		rng := rand.New(rand.NewPCG(uint64(i)+cfg.Seed, 77))
		n := 1 + rng.IntN(7)
		releases := make([]int64, n)
		weights := make([]int64, n)
		for j := range releases {
			releases[j] = int64(rng.IntN(16))
			weights[j] = 1 + int64(rng.IntN(5))
		}
		in := core.MustInstance(1, int64(1+rng.IntN(5)), releases, weights).Canonicalize()
		flows, err := offline.BudgetSweep(in, in.N())
		if err != nil {
			panic(fmt.Sprintf("e5: %v", err))
		}
		for k := 0; k <= in.N(); k++ {
			brute, berr := offline.BruteForce(in, k)
			if flows[k] == offline.Unschedulable {
				if berr == nil {
					return false
				}
				continue
			}
			if berr != nil || brute.Flow != flows[k] {
				return false
			}
		}
		return true
	})
	matched := 0
	for _, ok := range matches {
		if ok {
			matched++
		}
	}
	fmt.Fprintf(w, "correctness: DP == brute force on %d/%d random instances (all budgets)\n\n", matched, trials)
	if matched != trials {
		rep.violate("DP mismatched brute force on %d/%d instances", trials-matched, trials)
	}

	// Part 2: runtime scaling in n at fixed K.
	ns := []int{16, 24, 32, 48, 64, 96, 128, 192}
	reps := 3
	if cfg.Quick {
		ns = []int{12, 16, 24, 32}
		reps = 1
	}
	timeDP := func(n, k int, seed uint64) float64 {
		rng := rand.New(rand.NewPCG(seed, 5))
		releases := make([]int64, n)
		for j := range releases {
			releases[j] = int64(rng.IntN(n * 6))
		}
		weights := make([]int64, n)
		for j := range weights {
			weights[j] = 1 + int64(rng.IntN(8))
		}
		in := core.MustInstance(1, 8, releases, weights).Canonicalize()
		best := 0.0
		for r := 0; r < reps; r++ {
			start := time.Now()
			if _, err := offline.OptimalFlow(in, k); err != nil {
				panic(fmt.Sprintf("e5 timing: %v", err))
			}
			el := time.Since(start).Seconds()
			if best == 0 || el < best {
				best = el
			}
		}
		return best
	}
	nTimes := parallelMap(cfg, len(ns), func(i int) float64 {
		return timeDP(ns[i], ns[i]/2, cfg.Seed+9)
	})
	tbl := stats.NewTable("n", "K", "seconds")
	xs := make([]float64, len(ns))
	for i, n := range ns {
		xs[i] = float64(n)
		tbl.AddRow(n, n/2, nTimes[i])
	}
	if err := tbl.Write(w); err != nil {
		return nil, err
	}
	slopeN := stats.LogLogSlope(xs, nTimes)
	fmt.Fprintf(w, "\nlog-log slope vs n (K=n/2): %.2f (paper: O(K n^3))\n\n", slopeN)

	// Part 3: runtime scaling in K at fixed n (budgets satisfy k*T >= n
	// so every point is feasible).
	ks := []int{8, 16, 32, 48}
	nFix := 48
	if cfg.Quick {
		ks = []int{4, 8, 16}
		nFix = 32
	}
	kTimes := parallelMap(cfg, len(ks), func(i int) float64 {
		return timeDP(nFix, ks[i], cfg.Seed+9)
	})
	tbl2 := stats.NewTable("n", "K", "seconds")
	kx := make([]float64, len(ks))
	for i, k := range ks {
		kx[i] = float64(k)
		tbl2.AddRow(nFix, k, kTimes[i])
	}
	if err := tbl2.Write(w); err != nil {
		return nil, err
	}
	slopeK := stats.LogLogSlope(kx, kTimes)
	fmt.Fprintf(w, "\nlog-log slope vs K (n=%d): %.2f (paper: linear in K)\n", nFix, slopeK)

	// Shape judgement: polynomial, not exponential. The measured n
	// exponent should sit near the cubic regime (the memoized
	// implementation does O(n) work per state; see EXPERIMENTS.md). Quick
	// mode's grids are too small for stable slope fits (single reps,
	// sub-millisecond points), so the gates apply to the full grids only.
	if !cfg.Quick {
		if slopeN > 5.0 {
			rep.violate("n-exponent %.2f looks super-polynomial for the claimed O(Kn^3)", slopeN)
		}
		if slopeK > 2.0 {
			rep.violate("K-exponent %.2f far above the claimed linear dependence", slopeK)
		}
	}
	rep.set("n_exponent", "%.2f", slopeN)
	rep.set("k_exponent", "%.2f", slopeK)
	rep.set("correctness", "%d/%d", matched, trials)
	WriteReport(w, rep)
	return rep, nil
}
