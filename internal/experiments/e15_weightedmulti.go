package experiments

import (
	"fmt"
	"io"

	"calibsched/internal/core"
	"calibsched/internal/lp"
	"calibsched/internal/online"
	"calibsched/internal/stats"
	"calibsched/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "e15",
		Title: "Extension: weighted jobs on multiple machines (open problem)",
		Claim: "BEYOND THE PAPER. A natural fusion of Algorithm 2's triggers with Algorithm 3's round-robin calendar stays within small constant factors of the weighted Figure 1 LP bound on every measured cell, suggesting the paper's single-machine weighted guarantee extends.",
		Run:   runE15,
	})
}

func runE15(w io.Writer, cfg Config) (*Report, error) {
	rep := newReport("e15", "Extension: weighted jobs on multiple machines")

	// LP-certified cells: small instances, exact weighted LP bound.
	type point struct {
		p    int
		law  workload.WeightKind
		g    int64
		seed uint64
	}
	var points []point
	ps := []int{2, 3}
	laws := []workload.WeightKind{workload.WeightUniform, workload.WeightBimodal}
	seeds := []uint64{1, 2, 3}
	if cfg.Quick {
		ps = []int{2}
		laws = laws[:1]
		seeds = []uint64{1}
	}
	for _, p := range ps {
		for _, law := range laws {
			for _, g := range []int64{3, 8} {
				for _, s := range seeds {
					points = append(points, point{p, law, g, s})
				}
			}
		}
	}
	type row struct {
		point
		cost  int64
		lb    float64
		ratio float64
		err   string
	}
	rows := parallelMap(cfg, len(points), func(i int) row {
		p := points[i]
		spec := workload.Spec{
			N: 7, P: p.p, T: 3, Seed: p.seed + cfg.Seed,
			Arrival: workload.ArrivalPoisson, Lambda: 0.8,
			Weights: p.law, WMax: 6, Light: 1, Heavy: 9, PHeavy: 0.2,
		}
		in := spec.MustBuild()
		res, err := online.Alg2Multi(in, p.g)
		if err != nil {
			return row{point: p, err: err.Error()}
		}
		cost := core.TotalCost(in, res.Schedule, p.g)
		horizon := res.Schedule.Makespan() + 1
		if dh := lp.DefaultHorizon(in, p.g); dh > horizon {
			horizon = dh
		}
		clp, err := lp.NewCalibrationLP(in, p.g, horizon)
		if err != nil {
			return row{point: p, err: err.Error()}
		}
		lb, err := clp.LowerBound()
		if err != nil {
			return row{point: p, err: err.Error()}
		}
		if lb <= 0 {
			return row{point: p, err: "vacuous LP bound"}
		}
		return row{point: p, cost: cost, lb: lb, ratio: float64(cost) / lb}
	})

	tbl := stats.NewTable("P", "weights", "G", "seed", "alg cost", "LP bound", "ratio <=")
	maxRatio := 0.0
	for _, r := range rows {
		if r.err != "" {
			rep.violate("P=%d %s G=%d seed=%d: %s", r.p, r.law, r.g, r.seed, r.err)
			continue
		}
		tbl.AddRow(r.p, string(r.law), r.g, r.seed, r.cost, r.lb, r.ratio)
		if r.ratio > maxRatio {
			maxRatio = r.ratio
		}
	}
	if err := tbl.Write(w); err != nil {
		return nil, err
	}
	// This is an extension without a proved bound; the experiment's pass
	// criterion is the *shape* claim above — a small constant factor. 12
	// (the paper's weighted single-machine constant) is the natural
	// yardstick.
	if maxRatio > 12 {
		rep.violate("extension exceeded the 12x yardstick: %.3f", maxRatio)
	}

	// Sanity rows on larger weighted multi-machine workloads: validity and
	// comparison against the single-machine Algorithm 2 on a merged
	// timeline is not meaningful, so just report cost and calibrations.
	fmt.Fprintln(w)
	type bigRow struct {
		p      int
		lambda float64
		cost   int64
		cals   int
	}
	var bigs []bigRow
	for _, p := range ps {
		for _, lambda := range []float64{0.5, 2.0} {
			in := weightedSpec(80, 8, lambda, workload.WeightZipf, 5+cfg.Seed).MustBuild()
			in = core.MustInstance(p, 8, releasesOf(in), weightsOf(in)).Canonicalize()
			res, err := online.Alg2Multi(in, 64)
			if err != nil {
				return nil, err
			}
			if err := core.Validate(in, res.Schedule); err != nil {
				rep.violate("P=%d lambda=%.1f: invalid schedule: %v", p, lambda, err)
				continue
			}
			bigs = append(bigs, bigRow{p, lambda, core.TotalCost(in, res.Schedule, 64), res.Schedule.NumCalibrations()})
		}
	}
	tbl2 := stats.NewTable("P", "lambda", "n", "alg cost", "calibrations")
	for _, r := range bigs {
		tbl2.AddRow(r.p, r.lambda, 80, r.cost, r.cals)
	}
	if err := tbl2.Write(w); err != nil {
		return nil, err
	}
	rep.set("max_lp_certified_ratio", "%.4f", maxRatio)
	WriteReport(w, rep)
	return rep, nil
}

func releasesOf(in *core.Instance) []int64 {
	out := make([]int64, in.N())
	for i, j := range in.Jobs {
		out[i] = j.Release
	}
	return out
}

func weightsOf(in *core.Instance) []int64 {
	out := make([]int64, in.N())
	for i, j := range in.Jobs {
		out[i] = j.Weight
	}
	return out
}
