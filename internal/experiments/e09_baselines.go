package experiments

import (
	"fmt"
	"io"

	"calibsched/internal/baseline"
	"calibsched/internal/core"
	"calibsched/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "e9",
		Title: "Algorithm 1 versus naive baselines",
		Claim: "Algorithm 1 stays within its 3x bound everywhere while calibrate-immediately and always-calibrated blow up on sparse traffic (ratio growing with G) and periodic calibration needs per-instance tuning.",
		Run:   runE9,
	})
}

func runE9(w io.Writer, cfg Config) (*Report, error) {
	rep := newReport("e9", "Algorithm 1 versus naive baselines")
	type point struct {
		regime string
		lambda float64
		g      int64
	}
	var points []point
	gs := []int64{16, 128, 1024}
	if cfg.Quick {
		gs = []int64{16, 128}
	}
	for _, g := range gs {
		points = append(points, point{"sparse", 0.02, g}, point{"dense", 1.0, g})
	}
	seeds := []uint64{1, 2}
	n := 60
	t := int64(8)
	if cfg.Quick {
		seeds = []uint64{1}
		n = 30
	}

	type cell struct {
		point
		ratios map[string]float64 // baseline name -> mean ratio vs OPT
	}
	names := []string{"alg1", "immediate", "always-on", "periodic(T)", "periodic(4T)", "flow-threshold"}
	cells := parallelMap(cfg, len(points), func(i int) cell {
		p := points[i]
		sums := map[string]float64{}
		for _, seed := range seeds {
			in := poissonSpec(n, 1, t, p.lambda, seed+cfg.Seed).MustBuild()
			opt, err := optTotal(in, p.g)
			if err != nil {
				panic(fmt.Sprintf("e9: %v", err))
			}
			costs := map[string]int64{}
			if c, err := alg1Cost(in, p.g); err == nil {
				costs["alg1"] = c
			} else {
				panic(fmt.Sprintf("e9 alg1: %v", err))
			}
			if s, err := baseline.Immediate(in, p.g); err == nil {
				costs["immediate"] = core.TotalCost(in, s, p.g)
			} else {
				panic(fmt.Sprintf("e9 immediate: %v", err))
			}
			if s, err := baseline.AlwaysCalibrated(in, p.g); err == nil {
				costs["always-on"] = core.TotalCost(in, s, p.g)
			} else {
				panic(fmt.Sprintf("e9 always: %v", err))
			}
			if s, err := baseline.Periodic(in, p.g, t); err == nil {
				costs["periodic(T)"] = core.TotalCost(in, s, p.g)
			} else {
				panic(fmt.Sprintf("e9 periodic: %v", err))
			}
			if s, err := baseline.Periodic(in, p.g, 4*t); err == nil {
				costs["periodic(4T)"] = core.TotalCost(in, s, p.g)
			} else {
				panic(fmt.Sprintf("e9 periodic4: %v", err))
			}
			if s, err := baseline.FlowThreshold(in, p.g); err == nil {
				costs["flow-threshold"] = core.TotalCost(in, s, p.g)
			} else {
				panic(fmt.Sprintf("e9 flow: %v", err))
			}
			for name, c := range costs {
				sums[name] += ratio(c, opt)
			}
		}
		out := cell{point: p, ratios: map[string]float64{}}
		for name, s := range sums {
			out.ratios[name] = s / float64(len(seeds))
		}
		return out
	})

	header := append([]string{"regime", "lambda", "G"}, names...)
	anyHeader := make([]string, len(header))
	copy(anyHeader, header)
	tbl := stats.NewTable(anyHeader...)
	maxAlg1 := 0.0
	beatenSomewhere := false
	for _, c := range cells {
		row := []any{c.regime, c.lambda, c.g}
		for _, name := range names {
			row = append(row, c.ratios[name])
		}
		tbl.AddRow(row...)
		if c.ratios["alg1"] > maxAlg1 {
			maxAlg1 = c.ratios["alg1"]
		}
		if c.ratios["alg1"] > 3.0+1e-9 {
			rep.violate("alg1 ratio %.3f exceeds 3 at %s G=%d", c.ratios["alg1"], c.regime, c.g)
		}
		// The motivating shape: on sparse traffic with large G, at least
		// one naive baseline must be much worse than Algorithm 1.
		if c.regime == "sparse" && c.g >= 128 {
			for _, name := range []string{"immediate", "always-on"} {
				if c.ratios[name] > 2*c.ratios["alg1"] {
					beatenSomewhere = true
				}
			}
		}
	}
	if err := tbl.Write(w); err != nil {
		return nil, err
	}
	if !beatenSomewhere {
		rep.violate("no naive baseline exceeded 2x Algorithm 1's ratio on sparse traffic with large G")
	}
	rep.set("max_alg1_ratio", "%.4f", maxAlg1)
	WriteReport(w, rep)
	return rep, nil
}
