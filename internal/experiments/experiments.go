// Package experiments defines the reproduction harness: one experiment per
// claim of the paper (see DESIGN.md section 4 for the index). Each
// experiment generates its workloads, runs the algorithms under test
// against exact or certified baselines, renders a table, and judges
// whether the paper's predicted shape holds.
//
// Experiments run their parameter grids on a worker pool sized to the
// machine; all workloads are seeded, so tables are bit-for-bit
// reproducible at a given configuration.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
)

// Config tunes an experiment run.
type Config struct {
	// Quick shrinks parameter grids to keep CI fast; full tables are
	// produced with Quick = false (the calibbench default).
	Quick bool
	// Workers bounds grid parallelism; 0 means GOMAXPROCS.
	Workers int
	// Seed offsets every workload seed, for robustness re-runs.
	Seed uint64
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Report is an experiment outcome: headline values plus a pass/fail
// verdict for the paper's predicted shape.
type Report struct {
	ID    string
	Title string
	// Pass records whether every claimed bound/shape held.
	Pass bool
	// Violations lists each claim violation found (empty when Pass).
	Violations []string
	// Headline holds key measured numbers for EXPERIMENTS.md.
	Headline map[string]string
}

func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Pass: true, Headline: map[string]string{}}
}

func (r *Report) violate(format string, args ...any) {
	r.Pass = false
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

func (r *Report) set(key string, format string, args ...any) {
	r.Headline[key] = fmt.Sprintf(format, args...)
}

// Experiment is one reproduction unit.
type Experiment struct {
	ID    string
	Title string
	Claim string
	Run   func(w io.Writer, cfg Config) (*Report, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every registered experiment in ID order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// ByID finds an experiment by its ID (e.g. "e1").
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// parallelMap runs fn over 0..n-1 on the config's worker pool and returns
// results in index order. fn must be safe for concurrent use.
func parallelMap[T any](cfg Config, n int, fn func(i int) T) []T {
	out := make([]T, n)
	workers := cfg.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// WriteReport renders the standard footer after an experiment table.
func WriteReport(w io.Writer, r *Report) {
	fmt.Fprintf(w, "\nverdict: ")
	if r.Pass {
		fmt.Fprintf(w, "PASS")
	} else {
		fmt.Fprintf(w, "FAIL")
	}
	keys := make([]string, 0, len(r.Headline))
	for k := range r.Headline {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "  %s=%s", k, r.Headline[k])
	}
	fmt.Fprintln(w)
	for _, v := range r.Violations {
		fmt.Fprintf(w, "violation: %s\n", v)
	}
}
