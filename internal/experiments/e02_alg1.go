package experiments

import (
	"fmt"
	"io"

	"calibsched/internal/stats"
	"calibsched/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "e2",
		Title: "Theorem 3.3: Algorithm 1 competitive ratio",
		Claim: "Algorithm 1's cost is at most 3x the exact offline optimum across the arrival sweep.",
		Run:   runE2,
	})
}

func runE2(w io.Writer, cfg Config) (*Report, error) {
	rep := newReport("e2", "Theorem 3.3: Algorithm 1 competitive ratio")
	lambdas := []float64{0.05, 0.2, 0.5, 1.0, 2.0}
	gs := []int64{4, 16, 64, 256}
	ts := []int64{4, 16}
	seeds := []uint64{1, 2, 3}
	n := 60
	if cfg.Quick {
		lambdas = []float64{0.05, 0.5}
		gs = []int64{16, 64}
		ts = []int64{8}
		seeds = []uint64{1}
		n = 30
	}

	type cell struct {
		lambda   float64
		g, t     int64
		ratios   []float64
		arrivals string
	}
	type point struct {
		lambda float64
		g, t   int64
	}
	var points []point
	for _, l := range lambdas {
		for _, g := range gs {
			for _, t := range ts {
				points = append(points, point{l, g, t})
			}
		}
	}
	cells := parallelMap(cfg, len(points), func(i int) cell {
		p := points[i]
		c := cell{lambda: p.lambda, g: p.g, t: p.t, arrivals: "poisson"}
		for _, seed := range seeds {
			in := poissonSpec(n, 1, p.t, p.lambda, seed+cfg.Seed).MustBuild()
			algCost, err := alg1Cost(in, p.g)
			if err != nil {
				panic(fmt.Sprintf("e2: %v", err))
			}
			opt, err := optTotal(in, p.g)
			if err != nil {
				panic(fmt.Sprintf("e2 opt: %v", err))
			}
			c.ratios = append(c.ratios, ratio(algCost, opt))
		}
		return c
	})
	// One bursty family as a second arrival shape.
	bursty := parallelMap(cfg, len(gs), func(i int) cell {
		g := gs[i]
		t := ts[0]
		c := cell{lambda: 0, g: g, t: t, arrivals: "bursty"}
		for _, seed := range seeds {
			spec := workload.Spec{
				N: n, P: 1, T: t, Seed: seed + cfg.Seed,
				Arrival: workload.ArrivalBursty, Burst: 5, Gap: 40, Jitter: 3,
				Weights: workload.WeightUnit,
			}
			in := spec.MustBuild()
			algCost, err := alg1Cost(in, g)
			if err != nil {
				panic(fmt.Sprintf("e2: %v", err))
			}
			opt, err := optTotal(in, g)
			if err != nil {
				panic(fmt.Sprintf("e2 opt: %v", err))
			}
			c.ratios = append(c.ratios, ratio(algCost, opt))
		}
		return c
	})
	cells = append(cells, bursty...)

	tbl := stats.NewTable("arrivals", "lambda", "G", "T", "mean ratio", "max ratio")
	globalMax := 0.0
	for _, c := range cells {
		s := stats.Summarize(c.ratios)
		lambda := "-"
		if c.arrivals == "poisson" {
			lambda = stats.FormatFloat(c.lambda)
		}
		tbl.AddRow(c.arrivals, lambda, c.g, c.t, s.Mean, s.Max)
		if s.Max > globalMax {
			globalMax = s.Max
		}
		if s.Max > 3.0+1e-9 {
			rep.violate("ratio %.4f exceeds 3 at arrivals=%s lambda=%.2f G=%d T=%d",
				s.Max, c.arrivals, c.lambda, c.g, c.t)
		}
	}
	if err := tbl.Write(w); err != nil {
		return nil, err
	}
	rep.set("max_ratio", "%.4f", globalMax)
	WriteReport(w, rep)
	return rep, nil
}
