package experiments

import (
	"calibsched/internal/core"
	"calibsched/internal/offline"
	"calibsched/internal/online"
	"calibsched/internal/workload"
)

// ratio returns a/b as float, treating b == 0 as ratio 1 when a == 0.
func ratio(a, b int64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return float64(a) // degenerate; callers avoid zero OPT
	}
	return float64(a) / float64(b)
}

// optTotal is the exact offline optimum of the online objective.
func optTotal(in *core.Instance, g int64) (int64, error) {
	total, _, _, err := offline.OptimalTotalCost(in, g)
	return total, err
}

// alg1Cost runs Algorithm 1 and returns its total cost.
func alg1Cost(in *core.Instance, g int64, opts ...online.Option) (int64, error) {
	res, err := online.Alg1(in, g, opts...)
	if err != nil {
		return 0, err
	}
	return core.TotalCost(in, res.Schedule, g), nil
}

// alg2Cost runs Algorithm 2 and returns its total cost.
func alg2Cost(in *core.Instance, g int64, opts ...online.Option) (int64, error) {
	res, err := online.Alg2(in, g, opts...)
	if err != nil {
		return 0, err
	}
	return core.TotalCost(in, res.Schedule, g), nil
}

// poissonSpec is the standard arrival sweep instance.
func poissonSpec(n int, p int, t int64, lambda float64, seed uint64) workload.Spec {
	return workload.Spec{
		N: n, P: p, T: t, Seed: seed,
		Arrival: workload.ArrivalPoisson, Lambda: lambda,
		Weights: workload.WeightUnit,
	}
}

// weightedSpec crosses Poisson arrivals with a weight law.
func weightedSpec(n int, t int64, lambda float64, law workload.WeightKind, seed uint64) workload.Spec {
	s := poissonSpec(n, 1, t, lambda, seed)
	s.Weights = law
	switch law {
	case workload.WeightUniform:
		s.WMax = 10
	case workload.WeightZipf:
		s.WMax = 50
		s.ZipfS = 1.5
	case workload.WeightBimodal:
		s.Light, s.Heavy, s.PHeavy = 1, 100, 0.05
	}
	return s
}
