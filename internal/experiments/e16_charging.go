package experiments

import (
	"fmt"
	"io"

	"calibsched/internal/analysis"
	"calibsched/internal/online"
	"calibsched/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "e16",
		Title: "Theorem 3.3's ledger: per-interval quantities of Algorithm 1",
		Claim: "The quantities the Theorem 3.3 charging argument budgets — f_i (flow of jobs queued before the interval), e_i (flow of jobs arriving during it), and the interval's total cost — stay within the proof's per-interval envelopes (f_i <= G, e_i <= G, cost <= 3G, up to ceil(G/T) rounding) on gap-preceded intervals, for every trigger class.",
		Run:   runE16,
	})
}

func runE16(w io.Writer, cfg Config) (*Report, error) {
	rep := newReport("e16", "Theorem 3.3's ledger: per-interval quantities of Algorithm 1")
	lambdas := []float64{0.05, 0.2, 1.0, 3.0}
	gs := []int64{16, 64, 256}
	ts := []int64{4, 8, 16}
	seeds := []uint64{1, 2, 3, 4}
	n := 120
	if cfg.Quick {
		lambdas = []float64{0.2, 1.0}
		gs = []int64{64}
		ts = []int64{8}
		seeds = []uint64{1}
		n = 50
	}

	type point struct {
		lambda float64
		g, t   int64
		seed   uint64
	}
	var points []point
	for _, l := range lambdas {
		for _, g := range gs {
			for _, tt := range ts {
				for _, s := range seeds {
					points = append(points, point{l, g, tt, s})
				}
			}
		}
	}

	// ledger accumulates per (trigger, gap-preceded) class.
	type classKey struct {
		trigger online.Trigger
		gap     bool
	}
	type classStat struct {
		count               int
		maxF, maxE, maxCost float64 // in units of G
		slackiestT          int64   // T at the worst cost point (for the rounding term)
	}
	merge := func(dst map[classKey]*classStat, src map[classKey]*classStat) {
		for k, v := range src {
			d := dst[k]
			if d == nil {
				d = &classStat{}
				dst[k] = d
			}
			d.count += v.count
			if v.maxF > d.maxF {
				d.maxF = v.maxF
			}
			if v.maxE > d.maxE {
				d.maxE = v.maxE
			}
			if v.maxCost > d.maxCost {
				d.maxCost = v.maxCost
				d.slackiestT = v.slackiestT
			}
		}
	}

	cells := parallelMap(cfg, len(points), func(i int) map[classKey]*classStat {
		p := points[i]
		in := poissonSpec(n, 1, p.t, p.lambda, p.seed+cfg.Seed).MustBuild()
		res, err := online.Alg1(in, p.g)
		if err != nil {
			panic(fmt.Sprintf("e16: %v", err))
		}
		trigOf := map[int64]online.Trigger{}
		for k, c := range res.Schedule.Calendar {
			trigOf[c.Start] = res.Triggers[k]
		}
		out := map[classKey]*classStat{}
		for _, iv := range analysis.Intervals(in, res.Schedule, 0) {
			// f_i: flow of jobs released before b_i; e_i: flow of jobs
			// released at or after b_i (the proof's split).
			var fi, ei int64
			for _, id := range iv.Jobs {
				j := in.Jobs[id]
				fl := j.Flow(res.Schedule.Start(id))
				if j.Release < iv.Start {
					fi += fl
				} else {
					ei += fl
				}
			}
			key := classKey{trigger: trigOf[iv.Start], gap: iv.GapPreceded}
			st := out[key]
			if st == nil {
				st = &classStat{}
				out[key] = st
			}
			st.count++
			if p.g > 0 {
				g := float64(p.g)
				if v := float64(fi) / g; v > st.maxF {
					st.maxF = v
				}
				if v := float64(ei) / g; v > st.maxE {
					st.maxE = v
				}
				if v := (float64(p.g) + float64(fi) + float64(ei)) / g; v > st.maxCost {
					st.maxCost = v
					st.slackiestT = p.t
				}
			}
		}
		return out
	})
	ledger := map[classKey]*classStat{}
	for _, c := range cells {
		merge(ledger, c)
	}

	tbl := stats.NewTable("trigger", "gap-preceded", "intervals", "max f_i/G", "max e_i/G", "max cost/G")
	order := []online.Trigger{online.TriggerCount, online.TriggerFlow, online.TriggerImmediate}
	for _, tr := range order {
		for _, gap := range []bool{true, false} {
			st := ledger[classKey{tr, gap}]
			if st == nil {
				continue
			}
			tbl.AddRow(tr.String(), gap, st.count, st.maxF, st.maxE, st.maxCost)
			// The proof's envelopes apply to gap-preceded intervals (the
			// trigger was evaluated false one step earlier); rounding
			// slack covers ceil(G/T) vs G/T (at most T+1 extra flow per
			// queued job... bounded by (2T+2)/G in G-units for the grid
			// minimum).
			if gap {
				slack := float64(2*st.slackiestT+2) / float64(gs[0])
				if st.maxF > 1.0+slack {
					rep.violate("%s gap-preceded: f_i reached %.3fG > G (+slack)", tr, st.maxF)
				}
				if st.maxE > 1.0+slack {
					rep.violate("%s gap-preceded: e_i reached %.3fG > G (+slack)", tr, st.maxE)
				}
				if st.maxCost > 3.0+slack {
					rep.violate("%s gap-preceded: interval cost reached %.3fG > 3G (+slack)", tr, st.maxCost)
				}
			}
		}
	}
	if err := tbl.Write(w); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "\nnote: mid-sequence rows (gap-preceded = false) are outside the proof's\n"+
		"premise (see finding F2); they are reported for completeness.\n")

	// Sanity totals.
	var totalIv int
	for _, st := range ledger {
		totalIv += st.count
	}
	rep.set("intervals", "%d", totalIv)
	WriteReport(w, rep)
	return rep, nil
}
