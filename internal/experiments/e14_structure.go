package experiments

import (
	"fmt"
	"io"
	"math/rand/v2"

	"calibsched/internal/analysis"
	"calibsched/internal/core"
	"calibsched/internal/offline"
	"calibsched/internal/online"
	"calibsched/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "e14",
		Title: "Structural lemmas 3.2 and 3.6 against exact optima",
		Claim: "On randomized small instances, Algorithm 1 never lets an OPT interval be charged by two of its intervals (Lemma 3.2, strict reading), and OPT_r calibrates at least k intervals against every k-prefix of full intervals in each Algorithm 2 sequence (Lemma 3.6).",
		Run:   runE14,
	})
}

func runE14(w io.Writer, cfg Config) (*Report, error) {
	rep := newReport("e14", "Structural lemmas 3.2 and 3.6 against exact optima")
	trials32 := 400
	trials36 := 150
	if cfg.Quick {
		trials32 = 80
		trials36 = 30
	}

	// Lemma 3.2: Algorithm 1 vs release-ordered exact optimum.
	results32 := parallelMap(cfg, trials32, func(i int) string {
		rng := rand.New(rand.NewPCG(uint64(i)+cfg.Seed, 271))
		n := 1 + rng.IntN(9)
		releases := make([]int64, n)
		weights := make([]int64, n)
		for j := range releases {
			releases[j] = int64(rng.IntN(20))
			weights[j] = 1
		}
		in := core.MustInstance(1, int64(1+rng.IntN(6)), releases, weights).Canonicalize()
		g := int64(rng.IntN(28))
		res, err := online.Alg1(in, g)
		if err != nil {
			return err.Error()
		}
		_, _, opt, err := offline.OptimalTotalCost(in, g)
		if err != nil {
			return err.Error()
		}
		ordered, err := analysis.ReassignInReleaseOrder(in, opt)
		if err != nil {
			return err.Error()
		}
		if err := analysis.CheckLemma32(in, res.Schedule, ordered); err != nil {
			return fmt.Sprintf("T=%d G=%d jobs=%v: %v", in.T, g, in.Jobs, err)
		}
		return ""
	})
	fails32 := 0
	for _, msg := range results32 {
		if msg != "" {
			fails32++
			if fails32 <= 3 {
				rep.violate("Lemma 3.2: %s", msg)
			}
		}
	}

	// Lemma 3.6: Algorithm 2 sequences vs exhaustively computed OPT_r.
	type r36 struct {
		msg       string
		sequences int
		checked   int
	}
	results36 := parallelMap(cfg, trials36, func(i int) r36 {
		rng := rand.New(rand.NewPCG(uint64(i)+cfg.Seed, 997))
		n := 2 + rng.IntN(14)
		releases := make([]int64, n)
		weights := make([]int64, n)
		for j := range releases {
			releases[j] = int64(rng.IntN(4 * n))
			weights[j] = 1 + int64(rng.IntN(6))
		}
		in := core.MustInstance(1, int64(1+rng.IntN(5)), releases, weights).Canonicalize()
		g := int64(rng.IntN(48))
		res, err := online.Alg2(in, g)
		if err != nil {
			return r36{msg: err.Error()}
		}
		optR, err := analysis.OptRFast(in, g)
		if err != nil {
			return r36{msg: err.Error()}
		}
		seqs := analysis.Sequences(in, res.Schedule, 0)
		checked := 0
		for _, s := range seqs {
			if len(s.Intervals) > 1 {
				checked += len(s.Intervals) - 1
			}
		}
		if err := analysis.CheckLemma36(in, res.Schedule, optR); err != nil {
			return r36{msg: fmt.Sprintf("T=%d G=%d jobs=%v: %v", in.T, g, in.Jobs, err), sequences: len(seqs), checked: checked}
		}
		return r36{sequences: len(seqs), checked: checked}
	})
	fails36, seqTotal, checkTotal := 0, 0, 0
	for _, r := range results36 {
		if r.msg != "" {
			fails36++
			if fails36 <= 3 {
				rep.violate("Lemma 3.6: %s", r.msg)
			}
		}
		seqTotal += r.sequences
		checkTotal += r.checked
	}

	tbl := stats.NewTable("lemma", "instances", "violations", "notes")
	tbl.AddRow("3.2 (strict J_i^E)", trials32, fails32, "vs release-ordered DP optimum")
	tbl.AddRow("3.6", trials36, fails36,
		fmt.Sprintf("%d sequences, %d (k,I) pairs checked, exact OPT_r", seqTotal, checkTotal))
	if err := tbl.Write(w); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "\nnote: under the paper's literal tie-inclusive J_i^E, Lemma 3.2 admits a\n"+
		"counterexample (finding F4; pinned as TestLemma32LiteralTieReadingFails).\n")
	rep.set("lemma32", "%d/%d", trials32-fails32, trials32)
	rep.set("lemma36", "%d/%d", trials36-fails36, trials36)
	WriteReport(w, rep)
	return rep, nil
}
