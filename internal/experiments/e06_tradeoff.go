package experiments

import (
	"fmt"
	"io"

	"calibsched/internal/offline"
	"calibsched/internal/simul"
	"calibsched/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "e6",
		Title: "Flow versus calibration budget tradeoff",
		Claim: "Optimal flow(K) is non-increasing in the budget; the G-cost optimum sits at the K minimizing G*K + flow(K) — the throughput/calibration tradeoff motivating the paper.",
		Run:   runE6,
	})
}

func runE6(w io.Writer, cfg Config) (*Report, error) {
	rep := newReport("e6", "Flow versus calibration budget tradeoff")
	n := 40
	if cfg.Quick {
		n = 24
	}
	t := int64(8)
	g := int64(32)
	in := poissonSpec(n, 1, t, 0.3, 11+cfg.Seed).MustBuild()

	flows, err := offline.BudgetSweep(in, in.N())
	if err != nil {
		return nil, err
	}
	minK := int(simul.CeilDiv(int64(in.N()), t))
	tbl := stats.NewTable("K", "optimal flow", fmt.Sprintf("total cost (G=%d)", g))
	bestK, bestCost := -1, int64(0)
	prev := int64(-1)
	for k, f := range flows {
		if f == offline.Unschedulable {
			if k >= minK {
				rep.violate("budget %d >= ceil(n/T) reported unschedulable", k)
			}
			continue
		}
		total := g*int64(k) + f
		tbl.AddRow(k, f, total)
		if bestK < 0 || total < bestCost {
			bestK, bestCost = k, total
		}
		if prev >= 0 && f > prev {
			rep.violate("flow increased from %d to %d between budgets %d and %d", prev, f, k-1, k)
		}
		prev = f
	}
	if err := tbl.Write(w); err != nil {
		return nil, err
	}

	optTotalCost, optK, _, err := offline.OptimalTotalCost(in, g)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "\nG-cost optimum: total %d at K=%d (sweep found %d at K=%d)\n",
		optTotalCost, optK, bestCost, bestK)
	if optTotalCost != bestCost {
		rep.violate("OptimalTotalCost %d disagrees with sweep minimum %d", optTotalCost, bestCost)
	}
	// The interesting shape: the chosen K is interior — more than the
	// feasibility minimum (so flow matters) and fewer than one per job (so
	// calibrations matter).
	if bestK <= minK || bestK >= in.N() {
		rep.set("note", "optimum at boundary K=%d", bestK)
	}
	rep.set("best_k", "%d", bestK)
	rep.set("min_feasible_k", "%d", minK)
	rep.set("best_total", "%d", bestCost)
	WriteReport(w, rep)
	return rep, nil
}
