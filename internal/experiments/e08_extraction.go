package experiments

import (
	"fmt"
	"io"

	"calibsched/internal/online"
	"calibsched/internal/stats"
	"calibsched/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "e8",
		Title: "Ablation: Algorithm 2 extraction order (paper line-13 typo)",
		Claim: "Scheduling the heaviest waiting job first (per Observation 2.1 and Lemma 3.5) dominates the paper's literal 'smallest weight' line 13 on weighted workloads.",
		Run:   runE8,
	})
}

func runE8(w io.Writer, cfg Config) (*Report, error) {
	rep := newReport("e8", "Ablation: Algorithm 2 extraction order")
	laws := []workload.WeightKind{workload.WeightUniform, workload.WeightZipf, workload.WeightBimodal}
	lambdas := []float64{0.3, 1.0}
	gs := []int64{16, 128}
	seeds := []uint64{1, 2, 3, 4}
	n := 50
	t := int64(8)
	if cfg.Quick {
		laws = []workload.WeightKind{workload.WeightBimodal}
		lambdas = []float64{1.0}
		gs = []int64{64}
		seeds = []uint64{1, 2}
		n = 30
	}

	type point struct {
		law    workload.WeightKind
		lambda float64
		g      int64
	}
	var points []point
	for _, law := range laws {
		for _, l := range lambdas {
			for _, g := range gs {
				points = append(points, point{law, l, g})
			}
		}
	}
	type cell struct {
		point
		heavy, light []float64
	}
	cells := parallelMap(cfg, len(points), func(i int) cell {
		p := points[i]
		c := cell{point: p}
		for _, seed := range seeds {
			in := weightedSpec(n, t, p.lambda, p.law, seed+cfg.Seed).MustBuild()
			opt, err := optTotal(in, p.g)
			if err != nil {
				panic(fmt.Sprintf("e8: %v", err))
			}
			heavyCost, err := alg2Cost(in, p.g)
			if err != nil {
				panic(fmt.Sprintf("e8: %v", err))
			}
			lightCost, err := alg2Cost(in, p.g, online.WithLightestFirst())
			if err != nil {
				panic(fmt.Sprintf("e8: %v", err))
			}
			c.heavy = append(c.heavy, ratio(heavyCost, opt))
			c.light = append(c.light, ratio(lightCost, opt))
		}
		return c
	})

	tbl := stats.NewTable("weights", "lambda", "G", "heaviest-first", "lightest-first", "light/heavy")
	var heavyMeans, lightMeans []float64
	for _, c := range cells {
		sh := stats.Summarize(c.heavy)
		sl := stats.Summarize(c.light)
		tbl.AddRow(string(c.law), c.lambda, c.g, sh.Mean, sl.Mean, sl.Mean/sh.Mean)
		heavyMeans = append(heavyMeans, sh.Mean)
		lightMeans = append(lightMeans, sl.Mean)
	}
	if err := tbl.Write(w); err != nil {
		return nil, err
	}
	hm := stats.Summarize(heavyMeans).Mean
	lm := stats.Summarize(lightMeans).Mean
	fmt.Fprintf(w, "\noverall mean ratio: heaviest-first %.4f, lightest-first %.4f\n", hm, lm)
	if hm > lm+1e-9 {
		rep.violate("heaviest-first (%.4f) did not dominate lightest-first (%.4f) overall", hm, lm)
	}
	rep.set("heaviest_mean", "%.4f", hm)
	rep.set("lightest_mean", "%.4f", lm)
	WriteReport(w, rep)
	return rep, nil
}
