package experiments

import (
	"fmt"
	"io"

	"calibsched/internal/online"
	"calibsched/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "e7",
		Title: "Ablation: Algorithm 1 immediate-calibration rule",
		Claim: "Disabling the 'previous interval had flow < G/2' rule keeps schedules valid but changes the cost profile; both variants stay within the 3x bound on the sweep.",
		Run:   runE7,
	})
}

func runE7(w io.Writer, cfg Config) (*Report, error) {
	rep := newReport("e7", "Ablation: Algorithm 1 immediate-calibration rule")
	lambdas := []float64{0.05, 0.2, 0.5, 1.0}
	gs := []int64{16, 64, 256}
	seeds := []uint64{1, 2, 3}
	n := 60
	t := int64(8)
	if cfg.Quick {
		lambdas = []float64{0.2, 1.0}
		gs = []int64{64}
		seeds = []uint64{1}
		n = 30
	}

	type point struct {
		lambda float64
		g      int64
	}
	var points []point
	for _, l := range lambdas {
		for _, g := range gs {
			points = append(points, point{l, g})
		}
	}
	type cell struct {
		point
		withRatios, withoutRatios []float64
	}
	cells := parallelMap(cfg, len(points), func(i int) cell {
		p := points[i]
		c := cell{point: p}
		for _, seed := range seeds {
			in := poissonSpec(n, 1, t, p.lambda, seed+cfg.Seed).MustBuild()
			opt, err := optTotal(in, p.g)
			if err != nil {
				panic(fmt.Sprintf("e7: %v", err))
			}
			withCost, err := alg1Cost(in, p.g)
			if err != nil {
				panic(fmt.Sprintf("e7: %v", err))
			}
			withoutCost, err := alg1Cost(in, p.g, online.WithoutImmediateCalibrations())
			if err != nil {
				panic(fmt.Sprintf("e7: %v", err))
			}
			c.withRatios = append(c.withRatios, ratio(withCost, opt))
			c.withoutRatios = append(c.withoutRatios, ratio(withoutCost, opt))
		}
		return c
	})

	tbl := stats.NewTable("lambda", "G", "ratio with rule", "ratio without", "delta")
	maxWith, maxWithout := 0.0, 0.0
	for _, c := range cells {
		sw := stats.Summarize(c.withRatios)
		so := stats.Summarize(c.withoutRatios)
		tbl.AddRow(c.lambda, c.g, sw.Mean, so.Mean, so.Mean-sw.Mean)
		if sw.Max > maxWith {
			maxWith = sw.Max
		}
		if so.Max > maxWithout {
			maxWithout = so.Max
		}
		if sw.Max > 3.0+1e-9 {
			rep.violate("with-rule ratio %.4f exceeds 3 at lambda=%.2f G=%d", sw.Max, c.lambda, c.g)
		}
	}
	if err := tbl.Write(w); err != nil {
		return nil, err
	}
	rep.set("max_with", "%.4f", maxWith)
	rep.set("max_without", "%.4f", maxWithout)
	WriteReport(w, rep)
	return rep, nil
}
