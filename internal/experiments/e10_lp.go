package experiments

import (
	"fmt"
	"io"
	"math"

	"calibsched/internal/baseline"
	"calibsched/internal/core"
	"calibsched/internal/lp"
	"calibsched/internal/offline"
	"calibsched/internal/online"
	"calibsched/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "e10",
		Title: "Figures 1 and 2: primal-dual machinery",
		Claim: "Every schedule embeds feasibly into the Fig. 1 primal with objective equal to its cost; the mechanical dual satisfies strong duality; the LP optimum lower-bounds the exact OPT.",
		Run:   runE10,
	})
}

func runE10(w io.Writer, cfg Config) (*Report, error) {
	rep := newReport("e10", "Figures 1 and 2: primal-dual machinery")
	type point struct {
		p    int
		n    int
		g, t int64
		seed uint64
	}
	var points []point
	seeds := []uint64{1, 2, 3, 4}
	if cfg.Quick {
		seeds = []uint64{1, 2}
	}
	for _, p := range []int{1, 2} {
		for _, seed := range seeds {
			points = append(points, point{p: p, n: 5, g: 4, t: 3, seed: seed})
		}
	}

	type result struct {
		point
		embeds   int
		lpOpt    float64
		dualOpt  float64
		bruteOpt int64
		err      string
	}
	results := parallelMap(cfg, len(points), func(i int) result {
		p := points[i]
		r := result{point: p}
		in := poissonSpec(p.n, p.p, p.t, 0.8, p.seed+cfg.Seed).MustBuild()

		// Candidate schedules from several algorithms.
		var scheds []*core.Schedule
		if res, err := online.Alg3(in, p.g); err == nil {
			scheds = append(scheds, res.Schedule)
		}
		if s, err := baseline.Immediate(in, p.g); err == nil {
			scheds = append(scheds, s)
		}
		if s, err := baseline.AlwaysCalibrated(in, p.g); err == nil {
			scheds = append(scheds, s)
		}

		horizon := lp.DefaultHorizon(in, p.g)
		for _, s := range scheds {
			if m := s.Makespan() + 1; m > horizon {
				horizon = m
			}
		}
		clp, err := lp.NewCalibrationLP(in, p.g, horizon)
		if err != nil {
			r.err = err.Error()
			return r
		}
		for _, s := range scheds {
			x, err := clp.Embed(s)
			if err != nil {
				r.err = err.Error()
				return r
			}
			if err := clp.Problem.FeasibleAt(x, 1e-6); err != nil {
				r.err = fmt.Sprintf("embedding infeasible: %v", err)
				return r
			}
			if got, want := clp.Problem.Objective(x), float64(core.TotalCost(in, s, p.g)); math.Abs(got-want) > 1e-6 {
				r.err = fmt.Sprintf("embedded objective %f != cost %f", got, want)
				return r
			}
			r.embeds++
		}
		r.lpOpt, err = clp.LowerBound()
		if err != nil {
			r.err = err.Error()
			return r
		}
		dual := lp.Dual(clp.Problem)
		dsol, err := dual.Solve()
		if err != nil || dsol.Status != lp.Optimal {
			r.err = fmt.Sprintf("dual solve: %v %v", err, dsol)
			return r
		}
		r.dualOpt = lp.DualObjective(dsol)
		total, _, err := offline.BruteForceTotalCost(in, p.g)
		if err != nil {
			r.err = err.Error()
			return r
		}
		r.bruteOpt = total
		return r
	})

	tbl := stats.NewTable("P", "n", "G", "seed", "embeds ok", "LP opt", "dual opt", "exact OPT")
	for _, r := range results {
		if r.err != "" {
			rep.violate("P=%d seed=%d: %s", r.p, r.seed, r.err)
			continue
		}
		tbl.AddRow(r.p, r.n, r.g, r.seed, r.embeds, r.lpOpt, r.dualOpt, r.bruteOpt)
		if math.Abs(r.lpOpt-r.dualOpt) > 1e-4*(1+math.Abs(r.lpOpt)) {
			rep.violate("strong duality gap at P=%d seed=%d: primal %f dual %f", r.p, r.seed, r.lpOpt, r.dualOpt)
		}
		if r.lpOpt > float64(r.bruteOpt)+1e-4 {
			rep.violate("LP optimum %f exceeds exact OPT %d at P=%d seed=%d", r.lpOpt, r.bruteOpt, r.p, r.seed)
		}
	}
	if err := tbl.Write(w); err != nil {
		return nil, err
	}
	rep.set("pairs", "%d", len(results))
	WriteReport(w, rep)
	return rep, nil
}
