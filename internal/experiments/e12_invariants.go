package experiments

import (
	"fmt"
	"io"

	"calibsched/internal/analysis"
	"calibsched/internal/online"
	"calibsched/internal/stats"
	"calibsched/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "e12",
		Title: "Structural invariants: Lemma 3.5 and Observation 3.9",
		Claim: "Algorithm 2's gap-preceded intervals carry < 2G flow net of each job's unavoidable w_j (Lemma 3.5's premise holds exactly there; mid-sequence intervals can exceed it via starvation — a documented finding). Algorithm 3's per-calibration job sets respect Observation 3.9: <= 3G total flow (+O(T) rounding), per-job start within 2*ceil(G/T) of the calibration, and >= G - G/T flow when flow-triggered.",
		Run:   runE12,
	})
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func runE12(w io.Writer, cfg Config) (*Report, error) {
	rep := newReport("e12", "Structural invariants: Lemma 3.5 and Observation 3.9")
	seeds := []uint64{1, 2, 3, 4, 5}
	lambdas := []float64{0.2, 1.0, 3.0}
	gs := []int64{16, 64, 256}
	t := int64(8)
	n := 80
	if cfg.Quick {
		seeds = []uint64{1, 2}
		lambdas = []float64{1.0}
		gs = []int64{64}
		n = 40
	}

	// Part 1: Lemma 3.5 on Algorithm 2, split by whether the interval
	// follows an uncalibrated gap (the proof's "no trigger held one step
	// earlier" premise) or starts back-to-back inside a sequence.
	type lemmaPoint struct {
		lambda float64
		g      int64
		seed   uint64
	}
	var lpts []lemmaPoint
	for _, l := range lambdas {
		for _, g := range gs {
			for _, s := range seeds {
				lpts = append(lpts, lemmaPoint{l, g, s})
			}
		}
	}
	type lemmaCell struct {
		maxGap, maxCont float64
		gapN, contN     int
	}
	lemmaCells := parallelMap(cfg, len(lpts), func(i int) lemmaCell {
		p := lpts[i]
		in := weightedSpec(n, t, p.lambda, workload.WeightUniform, p.seed+cfg.Seed).MustBuild()
		res, err := online.Alg2(in, p.g)
		if err != nil {
			panic(fmt.Sprintf("e12: %v", err))
		}
		var c lemmaCell
		for _, iv := range analysis.Intervals(in, res.Schedule, 0) {
			if p.g == 0 {
				continue
			}
			v := float64(iv.NetFlow) / float64(p.g)
			if iv.GapPreceded {
				c.gapN++
				if v > c.maxGap {
					c.maxGap = v
				}
			} else {
				c.contN++
				if v > c.maxCont {
					c.maxCont = v
				}
			}
		}
		return c
	})
	maxGap, maxCont := 0.0, 0.0
	gapN, contN := 0, 0
	for _, c := range lemmaCells {
		if c.maxGap > maxGap {
			maxGap = c.maxGap
		}
		if c.maxCont > maxCont {
			maxCont = c.maxCont
		}
		gapN += c.gapN
		contN += c.contN
	}
	fmt.Fprintf(w, "Lemma 3.5 (Algorithm 2), quantity sum w_j(t_j-r_j) per interval, in units of G:\n")
	fmt.Fprintf(w, "  gap-preceded intervals   (%5d): max %.4f   [claim: < 2]\n", gapN, maxGap)
	fmt.Fprintf(w, "  mid-sequence intervals   (%5d): max %.4f   [paper claims < 2 for all intervals;\n", contN, maxCont)
	fmt.Fprintf(w, "                                    starvation across back-to-back intervals exceeds it — see EXPERIMENTS.md finding F2]\n\n")
	if maxGap >= 2.0 {
		rep.violate("Lemma 3.5 quantity reached %.4f*G on a gap-preceded interval, claim is < 2G", maxGap)
	}

	// Part 2: Observation 3.9 on Algorithm 3's explicit packing, using the
	// algorithm's own job-to-calibration attribution.
	type obsPoint struct {
		p      int
		lambda float64
		g      int64
		seed   uint64
	}
	var opts []obsPoint
	obsPs := []int{2, 3}
	if cfg.Quick {
		obsPs = []int{2}
	}
	for _, p := range obsPs {
		for _, l := range lambdas {
			for _, g := range gs {
				for _, s := range seeds {
					opts = append(opts, obsPoint{p, l, g, s})
				}
			}
		}
	}
	type obsCell struct {
		maxFlowOverG float64
		maxAfterFlow int64 // max flow incurred after b_i: t_j + 1 - max(r_j, b_i)
		// minFlowTrigOver tracks flow-triggered calibrations in the
		// G <= T^2 regime, where Observation 3.9's proof applies (beyond
		// it the triggering queue exceeds one interval's T slots and its
		// flow spills into later calibrations).
		minFlowTrigOver  float64
		flowTrig         int
		flowTrigSpill    int // flow-triggered calibrations with G > T^2
		minSpillFlowOver float64
		calibrations     int
	}
	obsCells := parallelMap(cfg, len(opts), func(i int) obsCell {
		p := opts[i]
		in := poissonSpec(n, p.p, t, p.lambda, p.seed+cfg.Seed).MustBuild()
		res, err := online.Alg3(in, p.g, online.WithoutObservationReplay())
		if err != nil {
			panic(fmt.Sprintf("e12: %v", err))
		}
		c := obsCell{minFlowTrigOver: -1, minSpillFlowOver: -1}
		for k, calJobs := range res.JobsByCalibration {
			cal := res.Schedule.Calendar[k]
			var flow int64
			for _, id := range calJobs {
				start := res.Schedule.Start(id)
				flow += in.Jobs[id].Flow(start)
				after := start + 1 - max64(in.Jobs[id].Release, cal.Start)
				if after > c.maxAfterFlow {
					c.maxAfterFlow = after
				}
			}
			c.calibrations++
			if p.g > 0 {
				v := float64(flow) / float64(p.g)
				if v > c.maxFlowOverG {
					c.maxFlowOverG = v
				}
				if res.Triggers[k] == online.TriggerFlow {
					if p.g <= t*t {
						c.flowTrig++
						if c.minFlowTrigOver < 0 || v < c.minFlowTrigOver {
							c.minFlowTrigOver = v
						}
					} else {
						c.flowTrigSpill++
						if c.minSpillFlowOver < 0 || v < c.minSpillFlowOver {
							c.minSpillFlowOver = v
						}
					}
				}
			}
		}
		return c
	})

	tbl := stats.NewTable("metric", "value", "claim")
	maxFlow := 0.0
	minTrig, minSpill := -1.0, -1.0
	var maxAfter int64
	flowTrigCount, spillCount, calibrations := 0, 0, 0
	for _, c := range obsCells {
		if c.maxFlowOverG > maxFlow {
			maxFlow = c.maxFlowOverG
		}
		if c.minFlowTrigOver >= 0 && (minTrig < 0 || c.minFlowTrigOver < minTrig) {
			minTrig = c.minFlowTrigOver
		}
		if c.minSpillFlowOver >= 0 && (minSpill < 0 || c.minSpillFlowOver < minSpill) {
			minSpill = c.minSpillFlowOver
		}
		if c.maxAfterFlow > maxAfter {
			maxAfter = c.maxAfterFlow
		}
		flowTrigCount += c.flowTrig
		spillCount += c.flowTrigSpill
		calibrations += c.calibrations
	}
	tbl.AddRow("calibrations measured", calibrations, "-")
	tbl.AddRow("max interval flow / G", maxFlow, "<= 3 (+O(T/G) rounding)")
	tbl.AddRow("max per-job flow after b_i", maxAfter, "<= max(2*ceil(G/T), T)+1")
	tbl.AddRow("flow-triggered cals, G<=T^2", flowTrigCount, "-")
	if minTrig >= 0 {
		tbl.AddRow("  their min flow / G", minTrig, ">= 1 - 1/T (-O(T/G))")
	}
	tbl.AddRow("flow-triggered cals, G>T^2", spillCount, "-")
	if minSpill >= 0 {
		tbl.AddRow("  their min flow / G", minSpill, "no bound: queue spills past T slots (finding F3)")
	}
	if err := tbl.Write(w); err != nil {
		return nil, err
	}
	// Slack terms account for the ceil(G/T) packing cap (see DESIGN.md
	// note 2) — the analysis works with the real number G/T.
	gMin := gs[0]
	slack := float64(2*t+2) / float64(gMin)
	if maxFlow > 3.0+slack {
		rep.violate("interval flow reached %.3f*G, above 3G plus rounding slack", maxFlow)
	}
	if minTrig >= 0 {
		floor := 1.0 - 1.0/float64(t) - slack
		if minTrig < floor {
			rep.violate("flow-triggered interval carried only %.3f*G, below G - G/T minus slack", minTrig)
		}
	}
	afterCap := int64(t) + 1
	if b := 2*((gs[len(gs)-1]+t-1)/t) + 1; b > afterCap {
		afterCap = b
	}
	if maxAfter > afterCap {
		rep.violate("per-job flow after b_i reached %d, above max(2*ceil(G/T), T)+1 = %d", maxAfter, afterCap)
	}
	rep.set("lemma35_max_gap", "%.4f", maxGap)
	rep.set("lemma35_max_mid", "%.4f", maxCont)
	rep.set("obs39_max", "%.4f", maxFlow)
	if minTrig >= 0 {
		rep.set("obs39_min_trig", "%.4f", minTrig)
	}
	WriteReport(w, rep)
	return rep, nil
}
