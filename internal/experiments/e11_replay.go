package experiments

import (
	"fmt"
	"io"

	"calibsched/internal/core"
	"calibsched/internal/online"
	"calibsched/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "e11",
		Title: "Ablation: Algorithm 3 explicit packing vs Observation 2.1 replay",
		Claim: "Replaying Algorithm 3's calendar through the Observation 2.1 assigner (the paper's practical recommendation) never increases flow and typically reduces it.",
		Run:   runE11,
	})
}

func runE11(w io.Writer, cfg Config) (*Report, error) {
	rep := newReport("e11", "Ablation: Algorithm 3 explicit packing vs Observation 2.1 replay")
	type point struct {
		p      int
		lambda float64
		g      int64
	}
	var points []point
	ps := []int{2, 3}
	lambdas := []float64{0.5, 1.5, 3.0}
	gs := []int64{16, 64}
	seeds := []uint64{1, 2, 3}
	n := 80
	if cfg.Quick {
		ps = []int{2}
		lambdas = []float64{1.5}
		seeds = []uint64{1}
		n = 40
	}
	for _, p := range ps {
		for _, l := range lambdas {
			for _, g := range gs {
				points = append(points, point{p, l, g})
			}
		}
	}

	type cell struct {
		point
		explicitFlow, replayFlow float64
		improvedPct              float64
	}
	cells := parallelMap(cfg, len(points), func(i int) cell {
		p := points[i]
		var sumE, sumR float64
		for _, seed := range seeds {
			in := poissonSpec(n, p.p, 8, p.lambda, seed+cfg.Seed).MustBuild()
			explicit, err := online.Alg3(in, p.g, online.WithoutObservationReplay())
			if err != nil {
				panic(fmt.Sprintf("e11: %v", err))
			}
			replay, err := online.Alg3(in, p.g)
			if err != nil {
				panic(fmt.Sprintf("e11: %v", err))
			}
			ef := float64(core.Flow(in, explicit.Schedule))
			rf := float64(core.Flow(in, replay.Schedule))
			if rf > ef {
				panic(fmt.Sprintf("e11: replay flow %f exceeds explicit %f", rf, ef))
			}
			sumE += ef
			sumR += rf
		}
		c := cell{point: p, explicitFlow: sumE / float64(len(seeds)), replayFlow: sumR / float64(len(seeds))}
		if c.explicitFlow > 0 {
			c.improvedPct = 100 * (c.explicitFlow - c.replayFlow) / c.explicitFlow
		}
		return c
	})

	tbl := stats.NewTable("P", "lambda", "G", "explicit flow", "replayed flow", "improvement %")
	var improvements []float64
	for _, c := range cells {
		tbl.AddRow(c.p, c.lambda, c.g, c.explicitFlow, c.replayFlow, c.improvedPct)
		improvements = append(improvements, c.improvedPct)
		if c.replayFlow > c.explicitFlow {
			rep.violate("replay increased flow at P=%d lambda=%.1f G=%d", c.p, c.lambda, c.g)
		}
	}
	if err := tbl.Write(w); err != nil {
		return nil, err
	}
	rep.set("mean_improvement_pct", "%.2f", stats.Summarize(improvements).Mean)
	WriteReport(w, rep)
	return rep, nil
}
