package experiments

import (
	"fmt"
	"io"

	"calibsched/internal/core"
	"calibsched/internal/lp"
	"calibsched/internal/offline"
	"calibsched/internal/online"
	"calibsched/internal/simul"
	"calibsched/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "e4",
		Title: "Theorem 3.10: Algorithm 3 on multiple machines",
		Claim: "Algorithm 3's cost is at most 12x the optimum: measured against the exact (brute-force) multi-machine OPT on small instances — with the Fig. 1 LP bound certified below OPT — and against a combinatorial lower bound on larger ones.",
		Run:   runE4,
	})
}

// combinatorialLB is a cheap certified lower bound on the total cost of
// any schedule: every job incurs at least its own weight of flow (here
// weight 1), and any schedule needs at least ceil(n/T) calibrations to
// expose n slots.
func combinatorialLB(in *core.Instance, g int64) int64 {
	return int64(in.N()) + g*simul.CeilDiv(int64(in.N()), in.T)
}

func runE4(w io.Writer, cfg Config) (*Report, error) {
	rep := newReport("e4", "Theorem 3.10: Algorithm 3 on multiple machines")

	// Small grid with exact LP lower bounds.
	type lpPoint struct {
		p    int
		n    int
		g, t int64
		seed uint64
	}
	var lpPoints []lpPoint
	ps := []int{2, 3}
	seeds := []uint64{1, 2, 3}
	if cfg.Quick {
		ps = []int{2}
		seeds = []uint64{1}
	}
	for _, p := range ps {
		for _, g := range []int64{2, 6} {
			for _, seed := range seeds {
				lpPoints = append(lpPoints, lpPoint{p: p, n: 7, g: g, t: 3, seed: seed})
			}
		}
	}
	type lpRow struct {
		lpPoint
		algCost int64
		opt     int64
		lb      float64
		ratio   float64 // vs exact OPT
	}
	lpRows := parallelMap(cfg, len(lpPoints), func(i int) lpRow {
		p := lpPoints[i]
		spec := poissonSpec(p.n, p.p, p.t, 0.7, p.seed+cfg.Seed)
		in := spec.MustBuild()
		res, err := online.Alg3(in, p.g)
		if err != nil {
			panic(fmt.Sprintf("e4: %v", err))
		}
		cost := core.TotalCost(in, res.Schedule, p.g)
		horizon := res.Schedule.Makespan() + 1
		if dh := lp.DefaultHorizon(in, p.g); dh > horizon {
			horizon = dh
		}
		clp, err := lp.NewCalibrationLP(in, p.g, horizon)
		if err != nil {
			panic(fmt.Sprintf("e4 lp: %v", err))
		}
		lb, err := clp.LowerBound()
		if err != nil {
			panic(fmt.Sprintf("e4 lp solve: %v", err))
		}
		if c := float64(combinatorialLB(in, p.g)); c > lb {
			lb = c
		}
		// Exact multi-machine optimum via candidate-set brute force (the
		// instances are small enough); also certifies the LP bound.
		opt, _, err := offline.BruteForceTotalCost(in, p.g)
		if err != nil {
			panic(fmt.Sprintf("e4 brute: %v", err))
		}
		if lb > float64(opt)+1e-4 {
			panic(fmt.Sprintf("e4: LP bound %f above exact OPT %d", lb, opt))
		}
		return lpRow{lpPoint: p, algCost: cost, opt: opt, lb: lb, ratio: float64(cost) / float64(opt)}
	})

	// Larger grid with the combinatorial lower bound only (upper estimate
	// of the true ratio is not available there, so these rows are
	// informational unless they breach 12, which would disprove the bound
	// outright since combinatorialLB <= OPT).
	type bigPoint struct {
		p      int
		lambda float64
		g      int64
		seed   uint64
	}
	var bigPoints []bigPoint
	bigPs := []int{2, 4}
	lambdas := []float64{0.5, 2.0}
	if cfg.Quick {
		bigPs = []int{2}
		lambdas = []float64{2.0}
	}
	for _, p := range bigPs {
		for _, l := range lambdas {
			for _, g := range []int64{16, 64} {
				bigPoints = append(bigPoints, bigPoint{p, l, g, 1 + cfg.Seed})
			}
		}
	}
	type bigRow struct {
		bigPoint
		algCost, lb int64
		ratio       float64
	}
	bigRows := parallelMap(cfg, len(bigPoints), func(i int) bigRow {
		p := bigPoints[i]
		in := poissonSpec(80, p.p, 8, p.lambda, p.seed).MustBuild()
		res, err := online.Alg3(in, p.g)
		if err != nil {
			panic(fmt.Sprintf("e4: %v", err))
		}
		cost := core.TotalCost(in, res.Schedule, p.g)
		lb := combinatorialLB(in, p.g)
		return bigRow{bigPoint: p, algCost: cost, lb: lb, ratio: float64(cost) / float64(lb)}
	})

	tbl := stats.NewTable("bound", "P", "n", "lambda", "G", "T", "alg3 cost", "exact OPT", "LP bound", "ratio")
	maxExact := 0.0
	for _, r := range lpRows {
		tbl.AddRow("exact", r.p, r.n, 0.7, r.g, r.t, r.algCost, r.opt, r.lb, r.ratio)
		if r.ratio > maxExact {
			maxExact = r.ratio
		}
		if r.ratio > 12.0+1e-9 {
			rep.violate("exact ratio %.3f exceeds 12 at P=%d G=%d", r.ratio, r.p, r.g)
		}
	}
	for _, r := range bigRows {
		tbl.AddRow("comb", r.p, 80, r.lambda, r.g, 8, r.algCost, "-", r.lb, r.ratio)
		if r.ratio > 12.0+1e-9 {
			rep.violate("combinatorial-LB ratio %.3f exceeds 12 at P=%d G=%d lambda=%.1f",
				r.ratio, r.p, r.g, r.lambda)
		}
	}
	if err := tbl.Write(w); err != nil {
		return nil, err
	}
	rep.set("max_exact_ratio", "%.4f", maxExact)
	WriteReport(w, rep)
	return rep, nil
}
