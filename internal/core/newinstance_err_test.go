package core

import "testing"

// TestNewInstanceErrorMessages pins the exact error each invalid input
// produces, so callers (and the noignoredvalidate contract that nobody
// drops these errors) can rely on the messages staying descriptive.
func TestNewInstanceErrorMessages(t *testing.T) {
	cases := []struct {
		name     string
		p        int
		t        int64
		releases []int64
		weights  []int64
		want     string
	}{
		{"zero machines", 0, 5, nil, nil, "core: machine count P = 0, want >= 1"},
		{"negative machines", -3, 5, nil, nil, "core: machine count P = -3, want >= 1"},
		{"zero T", 1, 0, nil, nil, "core: calibration length T = 0, want >= 1"},
		{"negative T", 1, -7, nil, nil, "core: calibration length T = -7, want >= 1"},
		{"length mismatch", 1, 5, []int64{1, 2}, []int64{1}, "core: 2 releases but 1 weights"},
		{"negative release", 1, 5, []int64{0, -4}, []int64{1, 1}, "core: job 1 has negative release time -4"},
		{"zero weight", 1, 5, []int64{0}, []int64{0}, "core: job 0 has weight 0, want >= 1"},
		{"negative weight", 1, 5, []int64{0, 1}, []int64{1, -2}, "core: job 1 has weight -2, want >= 1"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in, err := NewInstance(c.p, c.t, c.releases, c.weights)
			if err == nil {
				t.Fatalf("NewInstance(%d, %d, %v, %v) succeeded, want error", c.p, c.t, c.releases, c.weights)
			}
			if in != nil {
				t.Errorf("NewInstance returned non-nil instance alongside error %q", err)
			}
			if err.Error() != c.want {
				t.Errorf("error = %q, want %q", err, c.want)
			}
		})
	}
}

// TestNewInstanceFirstViolationWins documents that validation reports the
// earliest invalid field: machine count before calibration length before
// per-job checks.
func TestNewInstanceFirstViolationWins(t *testing.T) {
	_, err := NewInstance(0, 0, []int64{-1}, []int64{0, 0})
	if err == nil || err.Error() != "core: machine count P = 0, want >= 1" {
		t.Fatalf("error = %v, want machine-count violation first", err)
	}
}
