package core

import "testing"

// costModeSchedule builds a tiny fixed instance/schedule pair: two jobs
// released at 0 and 3, started at 1 and 5, one calibration.
func costModeSchedule(t *testing.T) (*Instance, *Schedule) {
	t.Helper()
	in := MustInstance(1, 10, []int64{0, 3}, []int64{2, 5})
	s := NewSchedule(2)
	s.Calibrate(0, 1)
	s.Assign(0, 0, 1) // flow 2
	s.Assign(1, 0, 5) // flow 3
	if err := Validate(in, s); err != nil {
		t.Fatal(err)
	}
	return in, s
}

func TestModeCostValues(t *testing.T) {
	in, s := costModeSchedule(t)
	const g = 7
	// Job 0: w=2, F=2. Job 1: w=5, F=3.
	cases := []struct {
		mode CostMode
		flow int64
	}{
		{ModeP1, 2*2 + 5*3},     // 19
		{ModeP2, 2*4 + 5*9},     // 53
		{ModePInf, 15},          // max(4, 15)
	}
	for _, tc := range cases {
		if got := FlowAggregate(in, s, tc.mode); got != tc.flow {
			t.Errorf("FlowAggregate(%s) = %d, want %d", tc.mode, got, tc.flow)
		}
		if got, want := ModeCost(in, s, g, tc.mode), g+tc.flow; got != want {
			t.Errorf("ModeCost(%s) = %d, want %d", tc.mode, got, want)
		}
	}
}

func TestModeCostP1MatchesTotalCost(t *testing.T) {
	in, s := costModeSchedule(t)
	for _, g := range []int64{0, 1, 12, 1 << 30} {
		if got, want := ModeCost(in, s, g, ModeP1), TotalCost(in, s, g); got != want {
			t.Errorf("g=%d: ModeCost(p1) = %d, TotalCost = %d", g, got, want)
		}
	}
}

func TestCostModeValidity(t *testing.T) {
	for _, m := range CostModes() {
		if !m.Valid() {
			t.Errorf("canonical mode %q reports invalid", m)
		}
	}
	for _, bad := range []CostMode{"", "p3", "P1", "inf"} {
		if bad.Valid() {
			t.Errorf("mode %q should be invalid", bad)
		}
	}
}

func TestFlowAggregatePanics(t *testing.T) {
	in, s := costModeSchedule(t)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("unknown mode", func() { FlowAggregate(in, s, "p9") })
	unassigned := NewSchedule(in.N())
	mustPanic("unassigned job", func() { FlowAggregate(in, unassigned, ModeP1) })
}
