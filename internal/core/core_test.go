package core

import (
	"math/rand/v2"
	"testing"
)

func TestNewInstanceSortsAndIDs(t *testing.T) {
	in, err := NewInstance(1, 5, []int64{7, 2, 2, 0}, []int64{1, 9, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	wantRel := []int64{0, 2, 2, 7}
	wantW := []int64{4, 3, 9, 1}
	for i, j := range in.Jobs {
		if j.ID != i {
			t.Errorf("job %d has ID %d", i, j.ID)
		}
		if j.Release != wantRel[i] || j.Weight != wantW[i] {
			t.Errorf("job %d = (r=%d,w=%d), want (r=%d,w=%d)", i, j.Release, j.Weight, wantRel[i], wantW[i])
		}
	}
}

func TestNewInstanceErrors(t *testing.T) {
	cases := []struct {
		name     string
		p        int
		t        int64
		releases []int64
		weights  []int64
	}{
		{"zero machines", 0, 5, nil, nil},
		{"zero T", 1, 0, nil, nil},
		{"length mismatch", 1, 5, []int64{1}, []int64{}},
		{"negative release", 1, 5, []int64{-1}, []int64{1}},
		{"zero weight", 1, 5, []int64{0}, []int64{0}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewInstance(c.p, c.t, c.releases, c.weights); err == nil {
				t.Fatalf("NewInstance(%d, %d, %v, %v) succeeded, want error", c.p, c.t, c.releases, c.weights)
			}
		})
	}
}

func TestMustInstancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustInstance with bad input did not panic")
		}
	}()
	MustInstance(0, 1, nil, nil)
}

func TestJobFlow(t *testing.T) {
	j := Job{Release: 3, Weight: 5}
	if got := j.Flow(3); got != 5 {
		t.Errorf("Flow at release = %d, want 5", got)
	}
	if got := j.Flow(10); got != 5*8 {
		t.Errorf("Flow delayed = %d, want 40", got)
	}
}

func TestCanonicalizeDistinctReleases(t *testing.T) {
	// Five jobs at time 0 on one machine: four must be bumped, lightest
	// first, yielding releases 0..4 assigned heaviest-stays-earliest.
	in := MustInstance(1, 4, []int64{0, 0, 0, 0, 0}, []int64{5, 4, 3, 2, 1})
	got := in.Canonicalize()
	seen := map[int64]int64{}
	for _, j := range got.Jobs {
		if w, dup := seen[j.Release]; dup {
			t.Fatalf("release %d held by weights %d and %d", j.Release, w, j.Weight)
		}
		seen[j.Release] = j.Weight
	}
	// The heaviest job should keep release 0, the lightest end up latest.
	if seen[0] != 5 {
		t.Errorf("release 0 has weight %d, want 5 (heaviest stays)", seen[0])
	}
	if seen[4] != 1 {
		t.Errorf("release 4 has weight %d, want 1 (lightest bumped furthest)", seen[4])
	}
	// Original untouched.
	for _, j := range in.Jobs {
		if j.Release != 0 {
			t.Errorf("Canonicalize mutated the receiver: job %v", j)
		}
	}
}

func TestCanonicalizeRespectsP(t *testing.T) {
	in := MustInstance(2, 4, []int64{0, 0, 0, 3, 3}, []int64{1, 2, 3, 1, 1})
	got := in.Canonicalize()
	count := map[int64]int{}
	for _, j := range got.Jobs {
		count[j.Release]++
	}
	for r, c := range count {
		if c > 2 {
			t.Errorf("release %d has %d jobs, want <= P=2", r, c)
		}
	}
	if got.N() != 5 {
		t.Errorf("job count changed: %d", got.N())
	}
}

func TestCanonicalizeNoopWhenAlreadyDistinct(t *testing.T) {
	in := MustInstance(1, 3, []int64{0, 2, 5}, []int64{1, 2, 3})
	got := in.Canonicalize()
	for i := range in.Jobs {
		if got.Jobs[i] != in.Jobs[i] {
			t.Errorf("job %d changed: %v -> %v", i, in.Jobs[i], got.Jobs[i])
		}
	}
}

func TestRanksAscendingWeightLatestReleaseFirst(t *testing.T) {
	// Jobs: (r=0,w=2) (r=1,w=1) (r=2,w=1) (r=3,w=5).
	// Weight-1 jobs tie; latest release (r=2) ranks first (rank 1).
	in := MustInstance(1, 3, []int64{0, 1, 2, 3}, []int64{2, 1, 1, 5})
	ranks := in.Ranks()
	want := []int{3, 2, 1, 4} // by job ID in release order
	for id, r := range ranks {
		if r != want[id] {
			t.Errorf("rank[%d] = %d, want %d", id, r, want[id])
		}
	}
}

func TestRanksArePermutation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(30)
		rel := make([]int64, n)
		w := make([]int64, n)
		for i := range rel {
			rel[i] = int64(rng.IntN(20))
			w[i] = 1 + int64(rng.IntN(4))
		}
		in := MustInstance(1, 3, rel, w)
		ranks := in.Ranks()
		seen := make([]bool, n+1)
		for _, r := range ranks {
			if r < 1 || r > n || seen[r] {
				t.Fatalf("ranks %v not a permutation of 1..%d", ranks, n)
			}
			seen[r] = true
		}
		// Ranks must be monotone in weight.
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if in.Jobs[a].Weight < in.Jobs[b].Weight && ranks[a] > ranks[b] {
					t.Fatalf("lighter job %d ranked above heavier %d", a, b)
				}
			}
		}
	}
}

func TestCalendarCovers(t *testing.T) {
	c := Calendar{{Machine: 0, Start: 5}, {Machine: 1, Start: 0}}
	const T = 3
	cases := []struct {
		m    int
		t    int64
		want bool
	}{
		{0, 4, false}, {0, 5, true}, {0, 7, true}, {0, 8, false},
		{1, 0, true}, {1, 2, true}, {1, 3, false}, {2, 5, false},
	}
	for _, tc := range cases {
		if got := c.Covers(tc.m, tc.t, T); got != tc.want {
			t.Errorf("Covers(%d,%d) = %v, want %v", tc.m, tc.t, got, tc.want)
		}
	}
}

func TestScheduleBasicsAndCosts(t *testing.T) {
	in := MustInstance(1, 4, []int64{0, 1, 9}, []int64{2, 1, 3})
	s := NewSchedule(in.N())
	s.Calibrate(0, 0)
	s.Calibrate(0, 9)
	s.Assign(0, 0, 0)  // flow 2*1
	s.Assign(1, 0, 1)  // flow 1*1
	s.Assign(2, 0, 10) // flow 3*2
	if err := Validate(in, s); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	if got := Flow(in, s); got != 2+1+6 {
		t.Errorf("Flow = %d, want 9", got)
	}
	if got := WeightedCompletion(in, s); got != 2*1+1*2+3*11 {
		t.Errorf("WeightedCompletion = %d, want 37", got)
	}
	if got := ReleaseWeightConstant(in); got != 0+1+27 {
		t.Errorf("ReleaseWeightConstant = %d, want 28", got)
	}
	if Flow(in, s) != WeightedCompletion(in, s)-ReleaseWeightConstant(in) {
		t.Error("flow/completion identity violated")
	}
	if got := TotalCost(in, s, 10); got != 20+9 {
		t.Errorf("TotalCost = %d, want 29", got)
	}
	if got := s.Makespan(); got != 11 {
		t.Errorf("Makespan = %d, want 11", got)
	}
}

func TestValidateRejections(t *testing.T) {
	in := MustInstance(2, 3, []int64{0, 2}, []int64{1, 1})
	valid := func() *Schedule {
		s := NewSchedule(2)
		s.Calibrate(0, 0)
		s.Calibrate(1, 2)
		s.Assign(0, 0, 0)
		s.Assign(1, 1, 2)
		return s
	}
	if err := Validate(in, valid()); err != nil {
		t.Fatalf("baseline schedule invalid: %v", err)
	}

	t.Run("unassigned job", func(t *testing.T) {
		s := valid()
		s.Assignments[1].Start = -1
		if Validate(in, s) == nil {
			t.Error("accepted unassigned job")
		}
	})
	t.Run("before release", func(t *testing.T) {
		s := valid()
		s.Assign(1, 0, 1)
		if Validate(in, s) == nil {
			t.Error("accepted start before release")
		}
	})
	t.Run("bad machine", func(t *testing.T) {
		s := valid()
		s.Assign(1, 2, 2)
		if Validate(in, s) == nil {
			t.Error("accepted machine out of range")
		}
	})
	t.Run("uncalibrated slot", func(t *testing.T) {
		s := valid()
		s.Assign(1, 0, 5)
		if Validate(in, s) == nil {
			t.Error("accepted uncalibrated slot")
		}
	})
	t.Run("slot collision", func(t *testing.T) {
		s := valid()
		s.Calendar = append(s.Calendar, Calibration{Machine: 0, Start: 2})
		s.Assign(1, 0, 0)
		if Validate(in, s) == nil {
			t.Error("accepted two jobs in one slot")
		}
	})
	t.Run("calibration bad machine", func(t *testing.T) {
		s := valid()
		s.Calibrate(7, 0)
		if Validate(in, s) == nil {
			t.Error("accepted calibration on machine 7")
		}
	})
	t.Run("calibration negative time", func(t *testing.T) {
		s := valid()
		s.Calibrate(0, -3)
		if Validate(in, s) == nil {
			t.Error("accepted calibration at negative time")
		}
	})
	t.Run("assignment count mismatch", func(t *testing.T) {
		s := valid()
		s.Assignments = s.Assignments[:1]
		if Validate(in, s) == nil {
			t.Error("accepted truncated assignments")
		}
	})
}

func TestIntervalJobs(t *testing.T) {
	in := MustInstance(1, 3, []int64{0, 1, 6, 7}, []int64{1, 1, 1, 1})
	s := NewSchedule(4)
	s.Calibrate(0, 0)
	s.Calibrate(0, 6)
	s.Assign(0, 0, 0)
	s.Assign(1, 0, 1)
	s.Assign(2, 0, 6)
	s.Assign(3, 0, 7)
	if err := Validate(in, s); err != nil {
		t.Fatal(err)
	}
	starts, jobs := IntervalJobs(in, s, 0)
	if len(starts) != 2 || starts[0] != 0 || starts[1] != 6 {
		t.Fatalf("starts = %v, want [0 6]", starts)
	}
	if len(jobs[0]) != 2 || jobs[0][0] != 0 || jobs[0][1] != 1 {
		t.Errorf("interval 0 jobs = %v", jobs[0])
	}
	if len(jobs[1]) != 2 || jobs[1][0] != 2 || jobs[1][1] != 3 {
		t.Errorf("interval 1 jobs = %v", jobs[1])
	}
}

func TestIntervalJobsOverlapAttributesLatest(t *testing.T) {
	in := MustInstance(1, 5, []int64{0, 3}, []int64{1, 1})
	s := NewSchedule(2)
	s.Calibrate(0, 0)
	s.Calibrate(0, 3)
	s.Assign(0, 0, 0)
	s.Assign(1, 0, 4) // covered by both [0,5) and [3,8); attribute to 3.
	if err := Validate(in, s); err != nil {
		t.Fatal(err)
	}
	starts, jobs := IntervalJobs(in, s, 0)
	if len(starts) != 2 {
		t.Fatalf("starts = %v", starts)
	}
	if starts[1] != 3 || len(jobs[1]) != 1 || jobs[1][0] != 1 {
		t.Errorf("job 1 not attributed to interval 3: starts=%v jobs=%v", starts, jobs)
	}
}

func TestCloneIndependence(t *testing.T) {
	in := MustInstance(1, 3, []int64{0, 1}, []int64{1, 2})
	in2 := in.Clone()
	in2.Jobs[0].Weight = 99
	if in.Jobs[0].Weight == 99 {
		t.Error("Instance.Clone shares job storage")
	}
	s := NewSchedule(2)
	s.Calibrate(0, 0)
	s2 := s.Clone()
	s2.Assign(0, 0, 0)
	s2.Calendar[0].Start = 5
	if s.Assignments[0].Start == 0 || s.Calendar[0].Start == 5 {
		t.Error("Schedule.Clone shares storage")
	}
}

func TestUnweightedAndTotals(t *testing.T) {
	in := MustInstance(1, 3, []int64{0, 4, 2}, []int64{1, 1, 1})
	if !in.Unweighted() {
		t.Error("unit-weight instance reported weighted")
	}
	if in.TotalWeight() != 3 {
		t.Errorf("TotalWeight = %d", in.TotalWeight())
	}
	if in.MaxRelease() != 4 {
		t.Errorf("MaxRelease = %d", in.MaxRelease())
	}
	w := MustInstance(1, 3, []int64{0}, []int64{7})
	if w.Unweighted() {
		t.Error("weighted instance reported unweighted")
	}
}
