package core

import (
	"math"
	"strings"
	"testing"
)

func TestMulCheck(t *testing.T) {
	cases := []struct {
		a, b, want int64
		ok         bool
	}{
		{0, math.MaxInt64, 0, true},
		{math.MaxInt64, 0, 0, true},
		{3, 7, 21, true},
		{-3, 7, -21, true},
		{math.MaxInt64, 1, math.MaxInt64, true},
		{math.MinInt64, 1, math.MinInt64, true},
		{math.MaxInt64, 2, 0, false},
		{math.MinInt64, -1, 0, false},
		{-1, math.MinInt64, 0, false},
		{math.MaxInt64/2 + 1, 2, 0, false},
		{1 << 32, 1 << 32, 0, false},
	}
	for _, c := range cases {
		got, ok := MulCheck(c.a, c.b)
		if ok != c.ok {
			t.Errorf("MulCheck(%d, %d) ok = %v, want %v", c.a, c.b, ok, c.ok)
			continue
		}
		if ok && got != c.want {
			t.Errorf("MulCheck(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAddCheck(t *testing.T) {
	cases := []struct {
		a, b, want int64
		ok         bool
	}{
		{1, 2, 3, true},
		{-5, 3, -2, true},
		{math.MaxInt64, 0, math.MaxInt64, true},
		{math.MaxInt64 - 1, 1, math.MaxInt64, true},
		{math.MaxInt64, 1, 0, false},
		{math.MinInt64, -1, 0, false},
		{math.MinInt64, math.MinInt64, 0, false},
	}
	for _, c := range cases {
		got, ok := AddCheck(c.a, c.b)
		if ok != c.ok {
			t.Errorf("AddCheck(%d, %d) ok = %v, want %v", c.a, c.b, ok, c.ok)
			continue
		}
		if ok && got != c.want {
			t.Errorf("AddCheck(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMustMulPanicsOnOverflow(t *testing.T) {
	if got := MustMul(6, 7); got != 42 {
		t.Fatalf("MustMul(6, 7) = %d", got)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustMul(MaxInt64, 2) did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "overflow") {
			t.Fatalf("panic value %v, want overflow message", r)
		}
	}()
	MustMul(math.MaxInt64, 2)
}

func TestMustAddPanicsOnOverflow(t *testing.T) {
	if got := MustAdd(40, 2); got != 42 {
		t.Fatalf("MustAdd(40, 2) = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustAdd(MaxInt64, 1) did not panic")
		}
	}()
	MustAdd(math.MaxInt64, 1)
}

// TestFlowOverflowPanicsInsteadOfWrapping is the invariant the checkedmul
// analyzer exists to protect: a weight*flow product that exceeds int64
// must fail loudly, never wrap into a plausible-looking cost.
func TestFlowOverflowPanicsInsteadOfWrapping(t *testing.T) {
	j := Job{ID: 0, Release: 0, Weight: math.MaxInt64 / 2}
	defer func() {
		if recover() == nil {
			t.Fatal("Job.Flow with overflowing product did not panic")
		}
	}()
	j.Flow(5)
}
