package core_test

import (
	"testing"

	"calibsched/internal/core"
	"calibsched/internal/online"
)

// fuzzInstance decodes an instance from fuzz bytes, keeping releases,
// weights, T, and P small enough that costs stay far from int64 range.
// It returns nil when the bytes don't describe a buildable instance.
func fuzzInstance(relSeeds, wSeeds []byte, p, tt uint8) *core.Instance {
	n := min(len(relSeeds), len(wSeeds))
	if n == 0 || n > 10 {
		return nil
	}
	releases := make([]int64, n)
	weights := make([]int64, n)
	for i := 0; i < n; i++ {
		releases[i] = int64(relSeeds[i] % 32)
		weights[i] = 1 + int64(wSeeds[i]%9)
	}
	in, err := core.NewInstance(1+int(p%3), 1+int64(tt%6), releases, weights)
	if err != nil {
		return nil
	}
	return in
}

// FuzzValidate feeds arbitrary schedules — including garbage machines,
// negative starts, short assignment slices, and stray calendars — to
// core.Validate, which must classify them with an error or nil but never
// panic. Run continuously with
// `go test -fuzz FuzzValidate ./internal/core`.
func FuzzValidate(f *testing.F) {
	f.Add([]byte{0, 1, 2}, []byte{1, 2, 3}, uint8(1), uint8(3), []byte{0, 0, 0, 1, 1, 2}, []byte{0, 4})
	f.Add([]byte{5}, []byte{9}, uint8(2), uint8(4), []byte{1, 7}, []byte{7})
	f.Add([]byte{0, 0}, []byte{1, 1}, uint8(1), uint8(2), []byte{}, []byte{})
	f.Add([]byte{3, 1, 4, 1, 5}, []byte{9, 2, 6, 5, 3}, uint8(3), uint8(5), []byte{0, 250, 1, 3, 2, 2, 9, 9, 4, 0}, []byte{0, 2, 130})
	f.Fuzz(func(t *testing.T, relSeeds, wSeeds []byte, p, tt uint8, assignSeeds, calSeeds []byte) {
		in := fuzzInstance(relSeeds, wSeeds, p, tt)
		if in == nil {
			return
		}
		s := core.NewSchedule(in.N())
		for i := 0; i+1 < len(assignSeeds) && i/2 < in.N(); i += 2 {
			id := i / 2
			// Machines and starts deliberately range outside the valid
			// domain (including -1 and machine >= P).
			s.Assignments[id] = core.Assignment{
				Job:     id,
				Machine: int(assignSeeds[i]%5) - 1,
				Start:   int64(assignSeeds[i+1]%40) - 2,
			}
		}
		for _, c := range calSeeds {
			s.Calibrate(int(c%5)-1, int64(c%37)-2)
		}
		// Validate must never panic, whatever it decides.
		err := core.Validate(in, s)
		if err == nil {
			// A schedule Validate accepts must have finite, exact costs.
			if flow := core.Flow(in, s); flow < 0 {
				t.Fatalf("valid schedule has negative flow %d", flow)
			}
		}
		// Truncated assignment slices must be rejected, not walked past.
		short := &core.Schedule{Calendar: s.Calendar, Assignments: s.Assignments[:in.N()-1]}
		if err := core.Validate(in, short); err == nil && in.N() > 0 {
			t.Fatal("Validate accepted schedule with missing assignment slot")
		}
	})
}

// FuzzAssignTimes checks the Observation 2.1 contract end to end: for any
// instance and any calibration-time multiset, AssignTimes either returns
// an insufficient-capacity error or a schedule that core.Validate accepts
// and whose flow is at least the trivial lower bound (every job waits at
// least one step). Run continuously with
// `go test -fuzz FuzzAssignTimes ./internal/core`.
func FuzzAssignTimes(f *testing.F) {
	f.Add([]byte{0, 1, 2}, []byte{1, 2, 3}, uint8(1), uint8(3), []byte{0, 3, 6})
	f.Add([]byte{0, 0, 7}, []byte{2, 2, 2}, uint8(2), uint8(2), []byte{0})
	f.Add([]byte{4}, []byte{1}, uint8(1), uint8(1), []byte{})
	f.Add([]byte{0, 5, 5, 9}, []byte{1, 9, 1, 4}, uint8(3), uint8(4), []byte{2, 2, 11, 30})
	f.Fuzz(func(t *testing.T, relSeeds, wSeeds []byte, p, tt uint8, timeSeeds []byte) {
		in := fuzzInstance(relSeeds, wSeeds, p, tt)
		if in == nil {
			return
		}
		times := make([]int64, len(timeSeeds))
		for i, b := range timeSeeds {
			times[i] = int64(b % 64)
		}
		s, err := online.AssignTimes(in, times)
		if err != nil {
			return // insufficient calibrated capacity is a legal outcome
		}
		if verr := core.Validate(in, s); verr != nil {
			t.Fatalf("AssignTimes produced invalid schedule: %v\njobs %v times %v", verr, in.Jobs, times)
		}
		if flow := core.Flow(in, s); flow < in.TotalWeight() {
			t.Fatalf("flow %d below trivial bound %d (every job incurs >= its weight)", flow, in.TotalWeight())
		}
	})
}
