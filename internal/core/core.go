// Package core defines the shared vocabulary of the calibration-scheduling
// problem from Chau, McCauley, Li, and Wang, "Minimizing Total Weighted Flow
// Time with Calibrations" (SPAA 2017): jobs, instances, calibration
// calendars, schedules, and exact integer cost accounting.
//
// The model, briefly: n unit-length jobs with integer release times r_j and
// positive integer weights w_j must run on P identical machines. A machine
// can only run a job during a time step covered by a calibration: calibrating
// at time t is instantaneous and makes the T time steps [t, t+T) usable on
// that machine. A job started at t_j completes at t_j+1 and incurs weighted
// flow w_j*(t_j+1-r_j). In the online setting each calibration costs G and
// the objective is G*(#calibrations) + total weighted flow; in the offline
// setting at most K calibrations may be used and only the flow is minimized.
//
// All quantities are int64; cost arithmetic is exact.
package core

import (
	"fmt"
	"sort"
)

// Job is a unit-length job. ID is the job's index within its Instance and is
// assigned by NewInstance; Release and Weight are the paper's r_j and w_j.
type Job struct {
	ID      int
	Release int64
	Weight  int64
}

// Flow returns the weighted flow incurred by the job when started at time
// start: Weight * (start + 1 - Release). The product is overflow-checked;
// see MustMul.
func (j Job) Flow(start int64) int64 {
	return MustMul(j.Weight, start+1-j.Release)
}

// Instance is a calibration-scheduling instance: a job set together with the
// machine count P and the calibration length T (the paper requires T >= 2,
// but every algorithm here also accepts T = 1). Jobs are kept sorted by
// (Release, ID); IDs are dense 0..n-1 in that order.
//
// An Instance carries neither G nor K: the online calibration cost and the
// offline calibration budget are parameters of the respective solvers, so a
// single Instance can be evaluated under many cost regimes.
type Instance struct {
	Jobs []Job
	P    int
	T    int64
}

// NewInstance builds an Instance from raw (release, weight) pairs, sorting
// jobs by release time (ties broken by ascending weight, then input order)
// and assigning dense IDs. It does not enforce the paper's distinct-release
// normalization; call Canonicalize for that.
func NewInstance(p int, t int64, releases []int64, weights []int64) (*Instance, error) {
	if p < 1 {
		return nil, fmt.Errorf("core: machine count P = %d, want >= 1", p)
	}
	if t < 1 {
		return nil, fmt.Errorf("core: calibration length T = %d, want >= 1", t)
	}
	if len(releases) != len(weights) {
		return nil, fmt.Errorf("core: %d releases but %d weights", len(releases), len(weights))
	}
	jobs := make([]Job, len(releases))
	for i := range releases {
		if releases[i] < 0 {
			return nil, fmt.Errorf("core: job %d has negative release time %d", i, releases[i])
		}
		if weights[i] < 1 {
			return nil, fmt.Errorf("core: job %d has weight %d, want >= 1", i, weights[i])
		}
		jobs[i] = Job{ID: i, Release: releases[i], Weight: weights[i]}
	}
	sortJobs(jobs)
	for i := range jobs {
		jobs[i].ID = i
	}
	return &Instance{Jobs: jobs, P: p, T: t}, nil
}

// MustInstance is NewInstance that panics on error; intended for tests and
// examples with literal inputs.
func MustInstance(p int, t int64, releases []int64, weights []int64) *Instance {
	inst, err := NewInstance(p, t, releases, weights)
	if err != nil {
		panic(err)
	}
	return inst
}

// Unweighted reports whether every job has weight 1.
func (in *Instance) Unweighted() bool {
	for _, j := range in.Jobs {
		if j.Weight != 1 {
			return false
		}
	}
	return true
}

// N returns the number of jobs.
func (in *Instance) N() int { return len(in.Jobs) }

// TotalWeight returns the sum of all job weights.
func (in *Instance) TotalWeight() int64 {
	var s int64
	for _, j := range in.Jobs {
		s += j.Weight
	}
	return s
}

// MaxRelease returns the latest release time, or 0 for an empty instance.
func (in *Instance) MaxRelease() int64 {
	var m int64
	for _, j := range in.Jobs {
		if j.Release > m {
			m = j.Release
		}
	}
	return m
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	jobs := make([]Job, len(in.Jobs))
	copy(jobs, in.Jobs)
	return &Instance{Jobs: jobs, P: in.P, T: in.T}
}

// Canonicalize returns an equivalent instance in the paper's normal form: at
// most P jobs share any release time. Following footnote 1 of the paper,
// while some release time holds more than P jobs, the lightest of them has
// its release time increased by 1; this does not change the optimal
// schedule — the optimal G*cals + weighted completion time is invariant,
// and the flow reading shifts by exactly the constant sum of w_j per bump
// (tested as TestCanonicalizationPreservesOptimum). For P = 1 the result
// has all release times distinct.
//
// The returned instance is freshly allocated; the receiver is not modified.
// Job IDs are reassigned in the new (Release, Weight) order.
func (in *Instance) Canonicalize() *Instance {
	jobs := make([]Job, len(in.Jobs))
	copy(jobs, in.Jobs)
	// Repeatedly bump the lightest job of any over-full release time. A
	// single left-to-right pass over a sorted slice suffices if we re-sort
	// the tail after each bump; instead we use a counting loop that is
	// simple and clearly terminates (each bump strictly increases the sum
	// of release times, bounded by n*(maxRelease+n)).
	for {
		sortJobs(jobs)
		bumped := false
		for i := 0; i < len(jobs); {
			k := i
			for k < len(jobs) && jobs[k].Release == jobs[i].Release {
				k++
			}
			if k-i > in.P {
				// jobs[i:k] share a release time and are sorted by weight:
				// jobs[i] is (one of) the lightest. Bump it.
				jobs[i].Release++
				bumped = true
				break
			}
			i = k
		}
		if !bumped {
			break
		}
	}
	for i := range jobs {
		jobs[i].ID = i
	}
	return &Instance{Jobs: jobs, P: in.P, T: in.T}
}

// sortJobs orders by (Release, Weight, ID) so the lightest job of a release
// group comes first.
func sortJobs(jobs []Job) {
	sort.SliceStable(jobs, func(a, b int) bool {
		if jobs[a].Release != jobs[b].Release {
			return jobs[a].Release < jobs[b].Release
		}
		if jobs[a].Weight != jobs[b].Weight {
			return jobs[a].Weight < jobs[b].Weight
		}
		return jobs[a].ID < jobs[b].ID
	})
}

// Ranks returns the paper's rank function mu: ranks[j.ID] is in 1..n,
// ascending in weight, with ties broken by ranking the job with the latest
// release time first (Definition preceding Proposition 1 in Section 4.1).
// "First" means the smaller rank: among equal weights the latest-released
// job receives the smallest rank.
func (in *Instance) Ranks() []int {
	idx := make([]int, len(in.Jobs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ja, jb := in.Jobs[idx[a]], in.Jobs[idx[b]]
		if ja.Weight != jb.Weight {
			return ja.Weight < jb.Weight
		}
		return ja.Release > jb.Release
	})
	ranks := make([]int, len(in.Jobs))
	for pos, id := range idx {
		ranks[id] = pos + 1
	}
	return ranks
}

// Calibration is one calibration event: machine Machine is calibrated at
// time Start, opening the interval [Start, Start+T).
type Calibration struct {
	Machine int
	Start   int64
}

// Calendar is a set of calibrations, the "set of calibration times for each
// machine" half of a schedule (Section 2).
type Calendar []Calibration

// Sorted returns a copy ordered by (Start, Machine).
func (c Calendar) Sorted() Calendar {
	out := make(Calendar, len(c))
	copy(out, c)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Start != out[b].Start {
			return out[a].Start < out[b].Start
		}
		return out[a].Machine < out[b].Machine
	})
	return out
}

// Covers reports whether time step t on machine m lies inside at least one
// calibrated interval of the calendar, given calibration length T.
func (c Calendar) Covers(m int, t, T int64) bool {
	for _, cal := range c {
		if cal.Machine == m && cal.Start <= t && t < cal.Start+T {
			return true
		}
	}
	return false
}

// Assignment places job Job (by ID) on machine Machine at time step Start.
type Assignment struct {
	Job     int
	Machine int
	Start   int64
}

// Schedule is a complete solution: a calibration calendar plus one
// assignment per job. Assignments are indexed by job ID (Assignments[id]
// describes job id); a schedule for an n-job instance has len(Assignments)
// == n.
type Schedule struct {
	Calendar    Calendar
	Assignments []Assignment
}

// NewSchedule allocates a schedule for n jobs with every assignment marked
// unset (Start = -1).
func NewSchedule(n int) *Schedule {
	s := &Schedule{Assignments: make([]Assignment, n)}
	for i := range s.Assignments {
		s.Assignments[i] = Assignment{Job: i, Machine: -1, Start: -1}
	}
	return s
}

// Assign records that job id runs on machine m at time t.
func (s *Schedule) Assign(id, m int, t int64) {
	s.Assignments[id] = Assignment{Job: id, Machine: m, Start: t}
}

// Calibrate appends a calibration of machine m at time t.
func (s *Schedule) Calibrate(m int, t int64) {
	s.Calendar = append(s.Calendar, Calibration{Machine: m, Start: t})
}

// NumCalibrations returns the number of calibration events.
func (s *Schedule) NumCalibrations() int { return len(s.Calendar) }

// Start returns the start time of job id, or -1 if unassigned.
func (s *Schedule) Start(id int) int64 { return s.Assignments[id].Start }

// Makespan returns one past the last busy time step, or 0 for an empty
// schedule.
func (s *Schedule) Makespan() int64 {
	var m int64
	for _, a := range s.Assignments {
		if a.Start+1 > m {
			m = a.Start + 1
		}
	}
	return m
}

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	out := &Schedule{
		Calendar:    make(Calendar, len(s.Calendar)),
		Assignments: make([]Assignment, len(s.Assignments)),
	}
	copy(out.Calendar, s.Calendar)
	copy(out.Assignments, s.Assignments)
	return out
}
