package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// quickInstance derives a small instance from fuzz inputs.
func quickInstance(relSeeds []uint8, wSeeds []uint8, p uint8, t uint8) *Instance {
	n := len(relSeeds)
	if len(wSeeds) < n {
		n = len(wSeeds)
	}
	if n > 24 {
		n = 24
	}
	releases := make([]int64, n)
	weights := make([]int64, n)
	for i := 0; i < n; i++ {
		releases[i] = int64(relSeeds[i] % 40)
		weights[i] = 1 + int64(wSeeds[i]%9)
	}
	return MustInstance(1+int(p%3), 1+int64(t%8), releases, weights)
}

func TestQuickCanonicalizePreservesJobs(t *testing.T) {
	f := func(relSeeds, wSeeds []uint8, p, tt uint8) bool {
		in := quickInstance(relSeeds, wSeeds, p, tt)
		got := in.Canonicalize()
		if got.N() != in.N() {
			return false
		}
		// Weight multiset preserved.
		count := map[int64]int{}
		for _, j := range in.Jobs {
			count[j.Weight]++
		}
		for _, j := range got.Jobs {
			count[j.Weight]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		// At most P jobs per release; releases never decreased in total.
		perRelease := map[int64]int{}
		var sumBefore, sumAfter int64
		for _, j := range in.Jobs {
			sumBefore += j.Release
		}
		for _, j := range got.Jobs {
			perRelease[j.Release]++
			sumAfter += j.Release
		}
		for _, c := range perRelease {
			if c > in.P {
				return false
			}
		}
		return sumAfter >= sumBefore
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRanksPermutationAndMonotone(t *testing.T) {
	f := func(relSeeds, wSeeds []uint8, p, tt uint8) bool {
		in := quickInstance(relSeeds, wSeeds, p, tt)
		ranks := in.Ranks()
		seen := make([]bool, in.N()+1)
		for _, r := range ranks {
			if r < 1 || r > in.N() || seen[r] {
				return false
			}
			seen[r] = true
		}
		for a := range in.Jobs {
			for b := range in.Jobs {
				if in.Jobs[a].Weight < in.Jobs[b].Weight && ranks[a] > ranks[b] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFlowCompletionIdentity(t *testing.T) {
	// For any valid schedule, Flow == WeightedCompletion - sum w_j r_j.
	f := func(relSeeds, wSeeds []uint8, seed uint16) bool {
		in := quickInstance(relSeeds, wSeeds, 0, 5).Canonicalize() // P=1
		if in.N() == 0 {
			return true
		}
		// Build an arbitrary valid schedule: one calibration covering each
		// job at a pseudo-random offset.
		rng := rand.New(rand.NewPCG(uint64(seed), 3))
		s := NewSchedule(in.N())
		used := map[int64]bool{}
		for _, j := range in.Jobs {
			t := j.Release + int64(rng.IntN(5))
			for used[t] {
				t++
			}
			used[t] = true
			s.Calibrate(0, t)
			s.Assign(j.ID, 0, t)
		}
		if err := Validate(in, s); err != nil {
			return false
		}
		return Flow(in, s) == WeightedCompletion(in, s)-ReleaseWeightConstant(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCalendarCoversDefinition(t *testing.T) {
	// Covers(m, t) must agree with the direct interval-membership check.
	f := func(starts []uint8, machines []uint8, m uint8, t uint8, tt uint8) bool {
		T := 1 + int64(tt%9)
		var cal Calendar
		for i := range starts {
			mi := 0
			if i < len(machines) {
				mi = int(machines[i] % 3)
			}
			cal = append(cal, Calibration{Machine: mi, Start: int64(starts[i] % 50)})
		}
		qm, qt := int(m%3), int64(t%60)
		want := false
		for _, c := range cal {
			if c.Machine == qm && c.Start <= qt && qt < c.Start+T {
				want = true
			}
		}
		return cal.Covers(qm, qt, T) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
