package core

import (
	"fmt"
	"sort"
)

// Validate checks that s is a correct schedule for in per Section 2 of the
// paper:
//
//   - every job is assigned exactly once, to a machine in [0, P), at a time
//     step no earlier than its release time;
//   - no two jobs share a (machine, time step) slot;
//   - every job runs in a calibrated time step of its machine, i.e. within
//     [c.Start, c.Start+T) for some calibration c of that machine.
//
// Overlapping calibrations on one machine are permitted (they are merely
// wasteful), as are calibrations that cover no job. The first violation
// found is returned as a descriptive error; nil means the schedule is valid.
func Validate(in *Instance, s *Schedule) error {
	if len(s.Assignments) != len(in.Jobs) {
		return fmt.Errorf("core: schedule has %d assignments for %d jobs", len(s.Assignments), len(in.Jobs))
	}
	for _, c := range s.Calendar {
		if c.Machine < 0 || c.Machine >= in.P {
			return fmt.Errorf("core: calibration on machine %d, want [0,%d)", c.Machine, in.P)
		}
		if c.Start < 0 {
			return fmt.Errorf("core: calibration at negative time %d", c.Start)
		}
	}

	type slot struct {
		m int
		t int64
	}
	seen := make(map[slot]int, len(in.Jobs))
	for _, j := range in.Jobs {
		a := s.Assignments[j.ID]
		if a.Job != j.ID {
			return fmt.Errorf("core: assignment slot %d holds job %d", j.ID, a.Job)
		}
		if a.Start < 0 {
			return fmt.Errorf("core: job %d unassigned", j.ID)
		}
		if a.Machine < 0 || a.Machine >= in.P {
			return fmt.Errorf("core: job %d on machine %d, want [0,%d)", j.ID, a.Machine, in.P)
		}
		if a.Start < j.Release {
			return fmt.Errorf("core: job %d starts at %d before its release %d", j.ID, a.Start, j.Release)
		}
		k := slot{a.Machine, a.Start}
		if prev, dup := seen[k]; dup {
			return fmt.Errorf("core: jobs %d and %d share machine %d time %d", prev, j.ID, a.Machine, a.Start)
		}
		seen[k] = j.ID
		if !s.Calendar.Covers(a.Machine, a.Start, in.T) {
			return fmt.Errorf("core: job %d at time %d on machine %d is outside every calibrated interval", j.ID, a.Start, a.Machine)
		}
	}
	return nil
}

// IntervalJobs groups the assigned jobs of machine m by the calibrated
// interval that contains them, attributing each job to the latest interval
// start covering it (so back-to-back or overlapping calibrations attribute
// deterministically). It returns interval start times in increasing order
// and, parallel to them, the job IDs in each interval sorted by start time.
// Jobs on other machines are ignored. The schedule must be valid.
func IntervalJobs(in *Instance, s *Schedule, m int) (starts []int64, jobs [][]int) {
	var cals []int64
	for _, c := range s.Calendar {
		if c.Machine == m {
			cals = append(cals, c.Start)
		}
	}
	sort.Slice(cals, func(a, b int) bool { return cals[a] < cals[b] })
	byStart := make(map[int64][]int)
	for _, j := range in.Jobs {
		a := s.Assignments[j.ID]
		if a.Machine != m {
			continue
		}
		// Latest calibration start <= a.Start whose interval covers it.
		lo, hi := 0, len(cals)
		for lo < hi {
			mid := (lo + hi) / 2
			if cals[mid] <= a.Start {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		// All intervals share length T, so if the latest start <= a.Start
		// does not cover the slot, no earlier one can.
		if lo == 0 || cals[lo-1]+in.T <= a.Start {
			panic("core: IntervalJobs on invalid schedule")
		}
		owner := cals[lo-1]
		byStart[owner] = append(byStart[owner], j.ID)
	}
	for _, c := range cals {
		if js, ok := byStart[c]; ok {
			sort.Slice(js, func(a, b int) bool {
				return s.Assignments[js[a]].Start < s.Assignments[js[b]].Start
			})
			starts = append(starts, c)
			jobs = append(jobs, js)
			delete(byStart, c)
		}
	}
	return starts, jobs
}
