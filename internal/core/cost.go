package core

// Flow returns the total weighted flow time of the schedule on the instance:
// sum over jobs j of w_j * (t_j + 1 - r_j). It panics if any job is
// unassigned; use Validate first for untrusted schedules.
func Flow(in *Instance, s *Schedule) int64 {
	var total int64
	for _, j := range in.Jobs {
		a := s.Assignments[j.ID]
		if a.Start < 0 {
			panic("core: Flow on schedule with unassigned job")
		}
		total += j.Flow(a.Start)
	}
	return total
}

// WeightedCompletion returns sum over jobs of w_j * (t_j + 1). It differs
// from Flow by the instance constant sum_j w_j * r_j; the Section 4 dynamic
// program works in completion-time space.
func WeightedCompletion(in *Instance, s *Schedule) int64 {
	var total int64
	for _, j := range in.Jobs {
		a := s.Assignments[j.ID]
		if a.Start < 0 {
			panic("core: WeightedCompletion on schedule with unassigned job")
		}
		total += j.Weight * (a.Start + 1)
	}
	return total
}

// ReleaseWeightConstant returns sum_j w_j * r_j, the constant relating flow
// to weighted completion time: Flow = WeightedCompletion - this.
func ReleaseWeightConstant(in *Instance) int64 {
	var total int64
	for _, j := range in.Jobs {
		total += j.Weight * j.Release
	}
	return total
}

// TotalCost returns the online objective G*(#calibrations) + Flow.
func TotalCost(in *Instance, s *Schedule, g int64) int64 {
	return g*int64(s.NumCalibrations()) + Flow(in, s)
}
