package core

import (
	"fmt"
	"math"
)

// Checked int64 arithmetic. The package doc promises exact cost
// accounting, and silent wraparound in a weight*flow product would
// invalidate every competitive-ratio measurement downstream, so the cost
// paths route their products through these helpers; the caliblint
// checkedmul analyzer enforces that mechanically.

// MulCheck returns a*b and reports whether the product fit in int64
// without overflow.
func MulCheck(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) {
		return 0, false
	}
	c := a * b
	if c/b != a {
		return c, false
	}
	return c, true
}

// AddCheck returns a+b and reports whether the sum fit in int64 without
// overflow.
func AddCheck(a, b int64) (int64, bool) {
	c := a + b
	if (b > 0 && c < a) || (b < 0 && c > a) {
		return c, false
	}
	return c, true
}

// MustMul is MulCheck that panics on overflow: in the cost paths an
// overflowing product is a contract violation (the instance is outside
// the representable range), not a recoverable condition.
func MustMul(a, b int64) int64 {
	c, ok := MulCheck(a, b)
	if !ok {
		panic(fmt.Sprintf("core: int64 overflow in %d * %d", a, b))
	}
	return c
}

// MustAdd is AddCheck that panics on overflow.
func MustAdd(a, b int64) int64 {
	c, ok := AddCheck(a, b)
	if !ok {
		panic(fmt.Sprintf("core: int64 overflow in %d + %d", a, b))
	}
	return c
}

// Flow returns the total weighted flow time of the schedule on the instance:
// sum over jobs j of w_j * (t_j + 1 - r_j). It panics if any job is
// unassigned; use Validate first for untrusted schedules.
func Flow(in *Instance, s *Schedule) int64 {
	var total int64
	for _, j := range in.Jobs {
		a := s.Assignments[j.ID]
		if a.Start < 0 {
			panic("core: Flow on schedule with unassigned job")
		}
		total = MustAdd(total, j.Flow(a.Start))
	}
	return total
}

// WeightedCompletion returns sum over jobs of w_j * (t_j + 1). It differs
// from Flow by the instance constant sum_j w_j * r_j; the Section 4 dynamic
// program works in completion-time space.
func WeightedCompletion(in *Instance, s *Schedule) int64 {
	var total int64
	for _, j := range in.Jobs {
		a := s.Assignments[j.ID]
		if a.Start < 0 {
			panic("core: WeightedCompletion on schedule with unassigned job")
		}
		total = MustAdd(total, MustMul(j.Weight, a.Start+1))
	}
	return total
}

// ReleaseWeightConstant returns sum_j w_j * r_j, the constant relating flow
// to weighted completion time: Flow = WeightedCompletion - this.
func ReleaseWeightConstant(in *Instance) int64 {
	var total int64
	for _, j := range in.Jobs {
		total = MustAdd(total, MustMul(j.Weight, j.Release))
	}
	return total
}

// TotalCost returns the online objective G*(#calibrations) + Flow.
func TotalCost(in *Instance, s *Schedule, g int64) int64 {
	return MustAdd(MustMul(g, int64(s.NumCalibrations())), Flow(in, s))
}

// CostMode selects the flow aggregate of the arena's total-cost objective
// G*(#calibrations) + flow-aggregate. ModeP1 is the paper's objective;
// ModeP2 and ModePInf are the p-norm flow-time generalizations studied by
// Armbruster, Rohwedder, and Wiese (arXiv 2308.06209), kept in p-th-power
// form so every cost stays an exact int64 (taking the p-th root would
// leave the integers; ratios of p-th powers order engines identically).
type CostMode string

// Cost modes.
const (
	// ModeP1 sums w_j * F_j (the paper's total weighted flow).
	ModeP1 CostMode = "p1"
	// ModeP2 sums w_j * F_j^2 (the squared-flow p=2 norm, unrooted).
	ModeP2 CostMode = "p2"
	// ModePInf takes max_j w_j * F_j (the p=infinity norm: the worst
	// weighted wait any single job suffers).
	ModePInf CostMode = "pinf"
)

// CostModes returns every mode in canonical order.
func CostModes() []CostMode { return []CostMode{ModeP1, ModeP2, ModePInf} }

// Valid reports whether m names a known cost mode.
func (m CostMode) Valid() bool {
	switch m {
	case ModeP1, ModeP2, ModePInf:
		return true
	}
	return false
}

// FlowAggregate returns the schedule's flow aggregate under mode m: the
// weighted flow sum (p1), the weighted squared-flow sum (p2), or the
// maximum weighted per-job flow (pinf). It panics on an unknown mode or
// an unassigned job, like Flow.
func FlowAggregate(in *Instance, s *Schedule, m CostMode) int64 {
	var total int64
	for _, j := range in.Jobs {
		a := s.Assignments[j.ID]
		if a.Start < 0 {
			panic("core: FlowAggregate on schedule with unassigned job")
		}
		f := a.Start + 1 - j.Release
		switch m {
		case ModeP1:
			total = MustAdd(total, MustMul(j.Weight, f))
		case ModeP2:
			total = MustAdd(total, MustMul(j.Weight, MustMul(f, f)))
		case ModePInf:
			if wf := MustMul(j.Weight, f); wf > total {
				total = wf
			}
		default:
			panic("core: unknown cost mode " + string(m))
		}
	}
	return total
}

// ModeCost returns the mode-m total cost G*(#calibrations) + the mode's
// flow aggregate. ModeCost(in, s, g, ModeP1) == TotalCost(in, s, g).
func ModeCost(in *Instance, s *Schedule, g int64, m CostMode) int64 {
	return MustAdd(MustMul(g, int64(s.NumCalibrations())), FlowAggregate(in, s, m))
}
