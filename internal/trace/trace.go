// Package trace renders and exports schedules: ASCII timelines for quick
// inspection in examples and the calibsim CLI, and CSV/JSON exports for
// downstream analysis.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"calibsched/internal/core"
)

// Timeline renders an ASCII Gantt view of the schedule, one row per
// machine. Legend: '#' busy calibrated step, '-' idle calibrated step,
// '.' uncalibrated step. A header row marks every tenth time step.
func Timeline(in *core.Instance, s *core.Schedule) string {
	horizon := s.Makespan()
	for _, c := range s.Calendar {
		if c.Start+in.T > horizon {
			horizon = c.Start + in.T
		}
	}
	if horizon == 0 {
		return "(empty schedule)\n"
	}
	busy := make(map[[2]int64]int, len(s.Assignments))
	for _, a := range s.Assignments {
		if a.Start >= 0 {
			busy[[2]int64{int64(a.Machine), a.Start}] = a.Job
		}
	}
	var b strings.Builder
	// Ruler (no trailing whitespace).
	var ruler strings.Builder
	ruler.WriteString("      ")
	for t := int64(0); t < horizon; t++ {
		if t%10 == 0 {
			mark := strconv.FormatInt(t, 10)
			ruler.WriteString(mark)
			t += int64(len(mark)) - 1
		} else {
			ruler.WriteByte(' ')
		}
	}
	b.WriteString(strings.TrimRight(ruler.String(), " "))
	b.WriteByte('\n')
	for m := 0; m < in.P; m++ {
		fmt.Fprintf(&b, "m%-4d ", m)
		for t := int64(0); t < horizon; t++ {
			switch {
			case func() bool { _, ok := busy[[2]int64{int64(m), t}]; return ok }():
				b.WriteByte('#')
			case s.Calendar.Covers(m, t, in.T):
				b.WriteByte('-')
			default:
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteCSV emits one row per job: job,release,weight,machine,start,flow,
// followed by one row per calibration: calibration,machine,start.
func WriteCSV(w io.Writer, in *core.Instance, s *core.Schedule) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "id", "release", "weight", "machine", "start", "flow"}); err != nil {
		return err
	}
	for _, j := range in.Jobs {
		a := s.Assignments[j.ID]
		rec := []string{
			"job",
			strconv.Itoa(j.ID),
			strconv.FormatInt(j.Release, 10),
			strconv.FormatInt(j.Weight, 10),
			strconv.Itoa(a.Machine),
			strconv.FormatInt(a.Start, 10),
			strconv.FormatInt(j.Flow(a.Start), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	for i, c := range s.Calendar {
		rec := []string{
			"calibration",
			strconv.Itoa(i),
			"", "",
			strconv.Itoa(c.Machine),
			strconv.FormatInt(c.Start, 10),
			"",
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Export is the JSON shape produced by WriteJSON.
type Export struct {
	P            int                `json:"machines"`
	T            int64              `json:"calibration_length"`
	Jobs         []ExportJob        `json:"jobs"`
	Calibrations []core.Calibration `json:"calibrations"`
	Flow         int64              `json:"total_weighted_flow"`
}

// ExportJob is one job row in Export.
type ExportJob struct {
	ID      int   `json:"id"`
	Release int64 `json:"release"`
	Weight  int64 `json:"weight"`
	Machine int   `json:"machine"`
	Start   int64 `json:"start"`
	Flow    int64 `json:"flow"`
}

// WriteJSON emits the schedule as indented JSON.
func WriteJSON(w io.Writer, in *core.Instance, s *core.Schedule) error {
	e := Export{
		P:            in.P,
		T:            in.T,
		Calibrations: append([]core.Calibration(nil), s.Calendar.Sorted()...),
		Flow:         core.Flow(in, s),
	}
	for _, j := range in.Jobs {
		a := s.Assignments[j.ID]
		e.Jobs = append(e.Jobs, ExportJob{
			ID: j.ID, Release: j.Release, Weight: j.Weight,
			Machine: a.Machine, Start: a.Start, Flow: j.Flow(a.Start),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}
