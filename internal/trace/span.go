package trace

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"strings"
	"sync/atomic"
	"time"
)

// Request-scoped latency spans: where DecisionEvent explains what the
// algorithm decided, a Span explains where a request's wall-clock went.
// Every hop of a proxied request — calibgate's proxy relay, calibserved's
// HTTP handler, the session worker's queue wait, the engine step, the WAL
// append, and the fsync — records one span under a shared trace ID that
// propagates between processes as a W3C `traceparent` header. Spans land
// in a bounded per-node SpanStore served at GET /v1/traces; the gateway
// stitches the per-node fragments back into one tree.
//
// Like the DecisionEvent Sink, recording is designed around a nil fast
// path: a nil *SpanStore yields a nil *Active, every *Active method is a
// no-op on nil, and emitters guard span construction behind that one nil
// check — the untraced hot path pays nothing (benchmarked in
// cmd/calibbench's serve/step/span-* tiers).
//
// DESIGN.md §14 documents the span model, the phase catalog, and the
// tail-based retention contract.

// Phase names stamped by the serving planes. The set is part of the API:
// calibload's -slo mode and the cluster smoke test key on them.
const (
	// PhaseProxy covers calibgate's relay of one /v1 request.
	PhaseProxy = "proxy"
	// PhaseHTTP covers one calibserved handler, entry to response.
	PhaseHTTP = "http"
	// PhaseQueueWait is the time a command waited for the session worker.
	PhaseQueueWait = "queue-wait"
	// PhaseEngineStep is the time inside the online engine's step loop.
	PhaseEngineStep = "engine-step"
	// PhaseWALAppend is the write-ahead append, excluding the fsync.
	PhaseWALAppend = "wal-append"
	// PhaseFsyncWait is the fsync portion of a durable append.
	PhaseFsyncWait = "fsync-wait"
	// PhaseSolveQueue is a solve flight's wait in the pool queue.
	PhaseSolveQueue = "solve-queue"
	// PhaseSolveDP is the DP execution of a solve flight.
	PhaseSolveDP = "solve-dp"
	// PhaseCacheHit marks a solve answered from the result cache.
	PhaseCacheHit = "cache-hit"
)

// Span is one timed phase of one request. The JSON shape is the wire
// format of GET /v1/traces/{id} on both calibserved and calibgate, so
// field tags are part of the API.
type Span struct {
	// TraceID groups every span of one request tree (32 hex chars).
	TraceID string `json:"trace_id"`
	// SpanID identifies this span (16 hex chars).
	SpanID string `json:"span_id"`
	// Parent is the SpanID this span nests under; empty for a root. A
	// parent recorded on another node is legal — stitching re-joins them.
	Parent string `json:"parent,omitempty"`
	// Phase names what the span timed; see the Phase* constants.
	Phase string `json:"phase"`
	// Node names the process that recorded the span. Nodes may leave it
	// empty; the gateway fills it in while stitching.
	Node string `json:"node,omitempty"`
	// Start is the span's wall-clock start, unix nanoseconds.
	Start int64 `json:"start_unix_ns"`
	// Duration is the span's length in nanoseconds.
	Duration int64 `json:"duration_ns"`
	// Attrs carries free-form context (method, path, session, status).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// SpanContext is a position in a trace: the trace ID plus the span new
// children should parent under. The zero value means "no trace".
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether the context names a well-formed W3C position.
func (c SpanContext) Valid() bool {
	return len(c.TraceID) == 32 && len(c.SpanID) == 16
}

// ID generation: a crypto-seeded process prefix plus an atomic counter
// pushed through a splitmix64 finalizer. No syscall per ID, unique within
// (and overwhelmingly likely across) processes, and never all-zero —
// which the W3C header format forbids.
var (
	idSeed  uint64
	idTrace uint64
	idCtr   atomic.Uint64
)

func init() {
	var b [16]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Entropy failure: fall back to a fixed seed; IDs stay unique
		// per process via the counter.
		b[0] = 1
	}
	idSeed = binary.BigEndian.Uint64(b[:8]) | 1
	idTrace = binary.BigEndian.Uint64(b[8:]) | 1
}

// splitmix64 is the standard 64-bit finalizer: a bijection, so distinct
// inputs always yield distinct outputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewTraceID mints a 32-hex-char trace ID.
func NewTraceID() string {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], idTrace)
	binary.BigEndian.PutUint64(b[8:], splitmix64(idSeed+idCtr.Add(1)))
	return hex.EncodeToString(b[:])
}

// NewSpanID mints a 16-hex-char span ID.
func NewSpanID() string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], splitmix64(idSeed^idCtr.Add(1)))
	return hex.EncodeToString(b[:])
}

// ParseTraceparent parses a W3C traceparent header
// ("00-<trace-id>-<parent-id>-<flags>"). It accepts only version 00 and
// rejects the all-zero IDs the spec forbids.
func ParseTraceparent(h string) (SpanContext, bool) {
	h = strings.ToLower(strings.TrimSpace(h))
	parts := strings.Split(h, "-")
	if len(parts) != 4 || parts[0] != "00" ||
		len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return SpanContext{}, false
	}
	if !isHex(parts[1]) || !isHex(parts[2]) || !isHex(parts[3]) {
		return SpanContext{}, false
	}
	if allZero(parts[1]) || allZero(parts[2]) {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: parts[1], SpanID: parts[2]}, true
}

// FormatTraceparent renders a context as a version-00 traceparent header
// with the sampled flag set.
func FormatTraceparent(c SpanContext) string {
	return "00-" + c.TraceID + "-" + c.SpanID + "-01"
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// Active is one in-flight request's recording state: a root span opened
// at the server edge plus the child phases stamped along the way. It is
// single-owner at any moment — the HTTP handler hands it to the session
// worker and blocks until the worker replies, so the two never touch it
// concurrently (the reply channel provides the happens-before edge).
//
// Every method is a no-op on a nil receiver; a nil *SpanStore starts nil
// Actives, so the tracing-off path is one pointer check at each call
// site, mirroring the DecisionEvent nil-Sink contract.
type Active struct {
	store    *SpanStore
	began    time.Time
	root     Span
	children []Span
}

// StartSpan opens a root span for one request. A zero parent mints a
// fresh trace ID; a parsed traceparent continues the remote trace with
// this span as the remote span's child. Returns nil (recording off) when
// the store is nil.
func (s *SpanStore) StartSpan(phase string, parent SpanContext, attrs map[string]string) *Active {
	if s == nil {
		return nil
	}
	tid := parent.TraceID
	if tid == "" {
		tid = NewTraceID()
	}
	now := time.Now()
	return &Active{
		store: s,
		began: now,
		root: Span{
			TraceID: tid,
			SpanID:  NewSpanID(),
			Parent:  parent.SpanID,
			Phase:   phase,
			Start:   now.UnixNano(),
			Attrs:   attrs,
		},
	}
}

// Context returns the position children of the root span parent under;
// zero when recording is off.
func (a *Active) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: a.root.TraceID, SpanID: a.root.SpanID}
}

// TraceID returns the trace ID, or "" when recording is off.
func (a *Active) TraceID() string {
	if a == nil {
		return ""
	}
	return a.root.TraceID
}

// SetAttr attaches one attribute to the root span.
func (a *Active) SetAttr(k, v string) {
	if a == nil {
		return
	}
	if a.root.Attrs == nil {
		a.root.Attrs = make(map[string]string, 4)
	}
	a.root.Attrs[k] = v
}

// Phase records one finished child phase under the root span.
func (a *Active) Phase(phase string, start time.Time, d time.Duration) {
	if a == nil {
		return
	}
	a.children = append(a.children, Span{
		TraceID:  a.root.TraceID,
		SpanID:   NewSpanID(),
		Parent:   a.root.SpanID,
		Phase:    phase,
		Start:    start.UnixNano(),
		Duration: d.Nanoseconds(),
	})
}

// Finish closes the root span and lands the whole request — root first,
// phases in recording order — in the store.
func (a *Active) Finish() {
	if a == nil {
		return
	}
	a.root.Duration = time.Since(a.began).Nanoseconds()
	spans := make([]Span, 0, 1+len(a.children))
	spans = append(spans, a.root)
	spans = append(spans, a.children...)
	a.store.Add(spans...)
}

// activeKey carries an *Active through a request context.
type activeKey struct{}

// WithActive attaches a request's recording state to its context.
func WithActive(ctx context.Context, a *Active) context.Context {
	return context.WithValue(ctx, activeKey{}, a)
}

// ActiveFrom extracts the request's recording state; nil when the
// request is untraced (every *Active method tolerates that).
func ActiveFrom(ctx context.Context) *Active {
	a, _ := ctx.Value(activeKey{}).(*Active)
	return a
}
