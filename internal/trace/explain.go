package trace

import (
	"fmt"
	"io"
)

// ruleDocs maps each decision-rule identifier to the paper statement that
// justifies it. This is the single human-readable taxonomy; DESIGN.md §8
// carries the same table in prose and the tests pin the two against the
// emitters' rule names.
var ruleDocs = map[string]string{
	"alg1.flow-open":            "ski-rental flow trigger (Sec. 3.1, Lemma 3.2): the waiting jobs' prospective flow reached G, so calibrating now costs no more than letting flow accrue",
	"alg1.count-open":           "queue-size trigger (Algorithm 1 line 6, Lemma 3.2): at least G/T jobs wait, so one T-step interval amortizes its cost G across them",
	"alg1.immediate-open":       "immediate recalibration (Algorithm 1 line 10, Thm 3.3 charging): the previous interval accrued flow below G/2, so a fresh arrival calibrates immediately",
	"alg2.flow-open":            "ski-rental flow trigger (Sec. 3.2, Lemma 3.7): prospective weighted flow reached G",
	"alg2.weight-open":          "queued-weight trigger (Algorithm 2 line 6, Thm 3.8): waiting weight reached G/T, the weighted analogue of Algorithm 1's count rule",
	"alg2.queue-full-open":      "full-queue trigger (Algorithm 2's |Q| = T rule): T jobs wait, enough to fill an entire interval",
	"alg3.flow-open":            "ski-rental flow trigger on the shared queue (Algorithm 3, Thm 3.10)",
	"alg3.count-open":           "queue-size trigger, round-robin machine (Algorithm 3 line 10, Thm 3.10): at least G/T jobs wait",
	"alg2multi.flow-open":       "ski-rental flow trigger on the shared weighted queue (extension; fuses Algorithm 2's rule with Algorithm 3's calendar)",
	"alg2multi.weight-open":     "queued-weight trigger, round-robin machine (extension of Algorithm 2 line 6 to P machines)",
	"alg2multi.queue-full-open": "full-queue trigger, round-robin machine (extension of Algorithm 2's |Q| = T rule)",
	"offline.dp.cover-open":     "greedy cover of the DP slots (Thm 4.7): the Proposition 1/2 optimum fixed this job's start outside every open interval, so a new interval opens here",
}

// RuleDoc returns the paper-aligned justification for a decision-rule
// identifier, or "" if the rule is unknown.
func RuleDoc(rule string) string { return ruleDocs[rule] }

// Rules lists every documented decision-rule identifier (unordered).
func Rules() []string {
	out := make([]string, 0, len(ruleDocs))
	for r := range ruleDocs {
		out = append(out, r)
	}
	return out
}

// WriteExplanation replays a decision trace as a human-readable
// per-calibration justification: one block per event giving the rule that
// fired, the queue evidence behind it, and the paper statement it
// instantiates. t and g are the instance's calibration length and cost,
// used to restate the trigger inequality with concrete numbers.
func WriteExplanation(w io.Writer, t, g int64, events []DecisionEvent) error {
	if len(events) == 0 {
		_, err := fmt.Fprintln(w, "no calibrations: no trigger ever fired")
		return err
	}
	for _, ev := range events {
		if _, err := fmt.Fprintf(w, "calibration #%d  t=%d  machine=%d  rule=%s\n",
			ev.Calibrations, ev.Time, ev.Machine, ev.Rule); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  queue: %d job(s), weight %d, prospective flow %d; spent so far: %d calibration(s) costing %d\n",
			ev.QueueLen, ev.QueueWeight, ev.ProspectiveFlow, ev.Calibrations, ev.AccruedCost); err != nil {
			return err
		}
		if ineq := triggerInequality(ev, t, g); ineq != "" {
			if _, err := fmt.Fprintf(w, "  fired because %s\n", ineq); err != nil {
				return err
			}
		}
		doc := RuleDoc(ev.Rule)
		if doc == "" {
			doc = "undocumented rule (update internal/trace ruleDocs and DESIGN.md §8)"
		}
		if _, err := fmt.Fprintf(w, "  why: %s\n\n", doc); err != nil {
			return err
		}
	}
	return nil
}

// triggerInequality restates the fired trigger's condition with the
// event's numbers, or "" when the rule has no single inequality (the
// immediate rule and the offline cover).
func triggerInequality(ev DecisionEvent, t, g int64) string {
	switch ev.Rule {
	case "alg1.flow-open", "alg2.flow-open", "alg3.flow-open", "alg2multi.flow-open":
		return fmt.Sprintf("prospective flow %d >= G = %d", ev.ProspectiveFlow, g)
	case "alg1.count-open", "alg3.count-open":
		return fmt.Sprintf("T*|Q| = %d*%d = %d >= G = %d", t, ev.QueueLen, t*int64(ev.QueueLen), g)
	case "alg2.weight-open", "alg2multi.weight-open":
		return fmt.Sprintf("T*w(Q) = %d*%d = %d >= G = %d", t, ev.QueueWeight, t*ev.QueueWeight, g)
	case "alg2.queue-full-open", "alg2multi.queue-full-open":
		return fmt.Sprintf("|Q| = %d >= T = %d", ev.QueueLen, t)
	}
	return ""
}
