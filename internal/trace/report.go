package trace

import (
	"fmt"
	"io"
	"sort"

	"calibsched/internal/core"
)

// Utilization describes how a schedule spends its calibrated capacity.
type Utilization struct {
	// Calibrations is the number of calibration events.
	Calibrations int
	// CoveredSlots counts distinct calibrated (machine, step) slots —
	// overlapping calibrations do not double count.
	CoveredSlots int64
	// BusySlots counts slots running a job; IdleSlots = Covered - Busy.
	BusySlots int64
	// Busy is BusySlots / CoveredSlots in [0,1] (0 when nothing covered).
	Busy float64
	// Flow aggregates per-job weighted flow.
	Flow, MaxJobFlow int64
	MeanJobFlow      float64
}

// Utilize computes capacity usage for a valid schedule.
func Utilize(in *core.Instance, s *core.Schedule) Utilization {
	var u Utilization
	u.Calibrations = s.NumCalibrations()

	// Distinct covered slots per machine via interval merging.
	perMachine := make(map[int][]int64)
	for _, c := range s.Calendar {
		perMachine[c.Machine] = append(perMachine[c.Machine], c.Start)
	}
	for _, starts := range perMachine {
		sort.Slice(starts, func(a, b int) bool { return starts[a] < starts[b] })
		var coveredTo int64 = -1
		for _, st := range starts {
			end := st + in.T
			from := st
			if from < coveredTo {
				from = coveredTo
			}
			if end > from {
				u.CoveredSlots += end - from
			}
			if end > coveredTo {
				coveredTo = end
			}
		}
	}
	for _, j := range in.Jobs {
		a := s.Assignments[j.ID]
		if a.Start < 0 {
			continue
		}
		u.BusySlots++
		fl := j.Flow(a.Start)
		u.Flow += fl
		if fl > u.MaxJobFlow {
			u.MaxJobFlow = fl
		}
	}
	if u.CoveredSlots > 0 {
		u.Busy = float64(u.BusySlots) / float64(u.CoveredSlots)
	}
	if in.N() > 0 {
		u.MeanJobFlow = float64(u.Flow) / float64(in.N())
	}
	return u
}

// Comparison is one labelled schedule in a comparison table.
type Comparison struct {
	Name     string
	Schedule *core.Schedule
}

// WriteComparison prints a side-by-side cost/utilization table for several
// schedules of the same instance under calibration cost g, ordered as
// given.
func WriteComparison(w io.Writer, in *core.Instance, g int64, rows []Comparison) error {
	header := fmt.Sprintf("%-24s %6s %10s %10s %8s %9s",
		"schedule", "cals", "flow", "total", "busy%", "max flow")
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, r := range rows {
		u := Utilize(in, r.Schedule)
		line := fmt.Sprintf("%-24s %6d %10d %10d %7.1f%% %9d",
			r.Name, u.Calibrations, u.Flow, core.TotalCost(in, r.Schedule, g), 100*u.Busy, u.MaxJobFlow)
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
