package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"calibsched/internal/core"
)

func sample() (*core.Instance, *core.Schedule) {
	in := core.MustInstance(2, 3, []int64{0, 1}, []int64{1, 2})
	s := core.NewSchedule(2)
	s.Calibrate(0, 0)
	s.Calibrate(1, 1)
	s.Assign(0, 0, 0)
	s.Assign(1, 1, 2)
	return in, s
}

func TestTimeline(t *testing.T) {
	in, s := sample()
	got := Timeline(in, s)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline = %q", got)
	}
	// Machine 0: busy at 0, calibrated-idle at 1,2, uncovered at 3.
	if !strings.Contains(lines[1], "#--.") {
		t.Errorf("machine 0 row = %q", lines[1])
	}
	// Machine 1: uncovered 0, calibrated 1, busy 2, calibrated 3.
	if !strings.Contains(lines[2], ".-#-") {
		t.Errorf("machine 1 row = %q", lines[2])
	}
}

func TestTimelineEmpty(t *testing.T) {
	in := core.MustInstance(1, 3, nil, nil)
	if got := Timeline(in, core.NewSchedule(0)); !strings.Contains(got, "empty") {
		t.Errorf("empty timeline = %q", got)
	}
}

func TestWriteCSV(t *testing.T) {
	in, s := sample()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in, s); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 2 jobs + 2 calibrations.
	if len(records) != 5 {
		t.Fatalf("records = %v", records)
	}
	if records[1][0] != "job" || records[1][6] != "1" {
		t.Errorf("job row = %v", records[1])
	}
	if records[3][0] != "calibration" {
		t.Errorf("calibration row = %v", records[3])
	}
}

func TestWriteJSON(t *testing.T) {
	in, s := sample()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in, s); err != nil {
		t.Fatal(err)
	}
	var e Export
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.P != 2 || e.T != 3 || len(e.Jobs) != 2 || len(e.Calibrations) != 2 {
		t.Fatalf("export = %+v", e)
	}
	if e.Flow != 1+2*2 {
		t.Errorf("flow = %d, want 5", e.Flow)
	}
}

func TestUtilize(t *testing.T) {
	in := core.MustInstance(1, 4, []int64{0, 1}, []int64{1, 3})
	s := core.NewSchedule(2)
	s.Calibrate(0, 0)
	s.Assign(0, 0, 0)
	s.Assign(1, 0, 1)
	u := Utilize(in, s)
	if u.Calibrations != 1 || u.CoveredSlots != 4 || u.BusySlots != 2 {
		t.Fatalf("utilization = %+v", u)
	}
	if u.Busy != 0.5 {
		t.Errorf("busy = %f", u.Busy)
	}
	if u.Flow != 1+3 || u.MaxJobFlow != 3 || u.MeanJobFlow != 2 {
		t.Errorf("flow stats = %+v", u)
	}
}

func TestUtilizeOverlappingCalibrations(t *testing.T) {
	// Overlapping intervals [0,4) and [2,6) cover 6 distinct slots.
	in := core.MustInstance(1, 4, []int64{0}, []int64{1})
	s := core.NewSchedule(1)
	s.Calibrate(0, 0)
	s.Calibrate(0, 2)
	s.Assign(0, 0, 0)
	u := Utilize(in, s)
	if u.CoveredSlots != 6 {
		t.Fatalf("covered = %d, want 6", u.CoveredSlots)
	}
	if u.Calibrations != 2 {
		t.Fatalf("calibrations = %d", u.Calibrations)
	}
}

func TestWriteComparison(t *testing.T) {
	in, s := sample()
	var buf bytes.Buffer
	err := WriteComparison(&buf, in, 7, []Comparison{
		{Name: "a", Schedule: s},
		{Name: "b", Schedule: s},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("comparison = %q", out)
	}
	if !strings.Contains(lines[0], "total") || !strings.Contains(lines[1], "a") {
		t.Errorf("comparison = %q", out)
	}
}
