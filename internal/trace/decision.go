package trace

import "sync"

// DecisionEvent is one machine-readable calibration decision: which paper
// rule fired, where and when, and what the algorithm could see at that
// moment. Emitters (the online steppers, the batch algorithms, the offline
// DP reconstruction) fill every field; the JSON shape is the wire format of
// calibserved's GET /v1/sessions/{id}/trace endpoint and of calibsim's
// trace replay, so field tags are part of the API.
//
// DESIGN.md §8 maps each Rule identifier to the lemma of the paper that
// justifies it; RuleDoc returns the same mapping programmatically.
type DecisionEvent struct {
	// Seq is a per-emitter sequence number starting at 1.
	Seq int64 `json:"seq"`
	// Time is the scheduling step at which the calibration was opened.
	Time int64 `json:"time"`
	// Machine is the calibrated machine (always 0 on single-machine runs).
	Machine int `json:"machine"`
	// Alg names the emitting algorithm ("alg1", "alg2", "alg3",
	// "alg2multi", "offline.dp").
	Alg string `json:"alg"`
	// Rule identifies the decision rule that fired, e.g. "alg1.count-open"
	// or "alg2.flow-open"; see RuleDoc for the paper mapping.
	Rule string `json:"rule"`
	// QueueLen and QueueWeight snapshot the waiting queue at the decision:
	// number of released-but-unscheduled jobs and their total weight.
	QueueLen    int   `json:"queue_len"`
	QueueWeight int64 `json:"queue_weight"`
	// ProspectiveFlow is the queue's total weighted flow if its jobs were
	// scheduled consecutively from Time with no further arrivals — the
	// paper's f_l^q, the quantity every flow trigger compares against G.
	ProspectiveFlow int64 `json:"prospective_flow"`
	// Calibrations counts calendar entries including this one.
	Calibrations int `json:"calibrations"`
	// AccruedCost is G * Calibrations: the calibration cost spent so far.
	AccruedCost int64 `json:"accrued_cost"`
}

// Sink receives decision events. Emitters treat a nil Sink as "tracing
// off" and skip all event construction, so the untraced hot path pays only
// a nil check (benchmarked in internal/online).
//
// Emit must be safe for the emitter's goroutine; Sink implementations that
// are read concurrently (Ring) synchronize internally.
type Sink interface {
	Emit(DecisionEvent)
}

// Recorder is the simplest Sink: it appends every event to a slice. Not
// safe for concurrent use; meant for batch runs (calibsim -explain, tests).
type Recorder struct {
	events []DecisionEvent
}

// Emit implements Sink.
func (r *Recorder) Emit(ev DecisionEvent) { r.events = append(r.events, ev) }

// Events returns the recorded events in emission order.
func (r *Recorder) Events() []DecisionEvent { return r.events }

// Ring is a bounded, concurrency-safe Sink holding the most recent events.
// A full ring drops the oldest event per Emit and counts the drop, so a
// long-lived session exposes its recent decision history at O(capacity)
// memory. Writers (a session worker) and readers (the HTTP trace handler)
// may race freely; a mutex serializes them.
type Ring struct {
	mu      sync.Mutex
	buf     []DecisionEvent
	start   int // index of the oldest event
	n       int // events currently held
	emitted int64
	dropped int64
}

// NewRing returns a ring holding at most capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]DecisionEvent, capacity)}
}

// Emit implements Sink.
func (r *Ring) Emit(ev DecisionEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.emitted++
	if r.n == len(r.buf) {
		r.buf[r.start] = ev
		r.start = (r.start + 1) % len(r.buf)
		r.dropped++
		return
	}
	r.buf[(r.start+r.n)%len(r.buf)] = ev
	r.n++
}

// Snapshot copies the buffered events oldest-first and reports how many
// events were ever emitted and how many fell off the ring.
func (r *Ring) Snapshot() (events []DecisionEvent, emitted, dropped int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	events = make([]DecisionEvent, 0, r.n)
	for i := 0; i < r.n; i++ {
		events = append(events, r.buf[(r.start+i)%len(r.buf)])
	}
	return events, r.emitted, r.dropped
}

// Capacity returns the maximum number of buffered events.
func (r *Ring) Capacity() int { return len(r.buf) }
