package trace

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	if !sc.Valid() {
		t.Fatalf("minted context invalid: %+v", sc)
	}
	h := FormatTraceparent(sc)
	got, ok := ParseTraceparent(h)
	if !ok || got != sc {
		t.Fatalf("round trip: %q -> %+v ok=%v, want %+v", h, got, ok, sc)
	}
	// Case-insensitive and whitespace-tolerant on parse.
	up, ok := ParseTraceparent("  " + strings.ToUpper(h) + " ")
	if !ok || up != sc {
		t.Fatalf("uppercase parse: got %+v ok=%v", up, ok)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // version != 00
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",    // missing flags
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span id
		"00-0af7651916cd43dd8448eb211c80319g-b7ad6b7169203331-01", // non-hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333-011", // wrong widths
	}
	for _, h := range bad {
		if sc, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted: %+v", h, sc)
		}
	}
}

func TestIDUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		tid, sid := NewTraceID(), NewSpanID()
		if len(tid) != 32 || len(sid) != 16 {
			t.Fatalf("bad widths: %q %q", tid, sid)
		}
		if allZero(tid) || allZero(sid) {
			t.Fatalf("all-zero id minted: %q %q", tid, sid)
		}
		if seen[tid] || seen[sid] {
			t.Fatalf("duplicate id at iteration %d", i)
		}
		seen[tid], seen[sid] = true, true
	}
}

func TestNilActiveAndNilStore(t *testing.T) {
	var s *SpanStore
	act := s.StartSpan(PhaseHTTP, SpanContext{}, nil)
	if act != nil {
		t.Fatalf("nil store minted an Active")
	}
	// Every method must tolerate nil.
	act.SetAttr("k", "v")
	act.Phase(PhaseQueueWait, time.Now(), time.Millisecond)
	act.Finish()
	if got := act.TraceID(); got != "" {
		t.Fatalf("nil Active TraceID = %q", got)
	}
	if got := act.Context(); got != (SpanContext{}) {
		t.Fatalf("nil Active Context = %+v", got)
	}
	s.Add(Span{TraceID: "x", SpanID: "y"})
	s.RecordPhase(SpanContext{TraceID: strings.Repeat("a", 32), SpanID: strings.Repeat("b", 16)}, PhaseSolveDP, time.Now(), 0, nil)
	if s.Trace("x") != nil || s.Summaries() != nil {
		t.Fatalf("nil store returned data")
	}
	if st := s.Stats(); st != (StoreStats{}) {
		t.Fatalf("nil store stats = %+v", st)
	}
}

func TestActiveRecordsTree(t *testing.T) {
	store := NewSpanStore(8, 0, "node-a")
	act := store.StartSpan(PhaseHTTP, SpanContext{}, map[string]string{"path": "/v1/x"})
	if act == nil {
		t.Fatal("StartSpan returned nil with live store")
	}
	start := time.Now()
	act.Phase(PhaseQueueWait, start, 5*time.Millisecond)
	act.Phase(PhaseEngineStep, start, 7*time.Millisecond)
	act.SetAttr("status", "200")
	act.Finish()

	spans := store.Trace(act.TraceID())
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(spans), spans)
	}
	root := spans[0]
	if root.Phase != PhaseHTTP || root.Parent != "" || root.SpanID != act.Context().SpanID {
		t.Fatalf("bad root span: %+v", root)
	}
	if root.Attrs["path"] != "/v1/x" || root.Attrs["status"] != "200" {
		t.Fatalf("root attrs: %+v", root.Attrs)
	}
	if root.Node != "node-a" {
		t.Fatalf("node not stamped: %+v", root)
	}
	for _, sp := range spans[1:] {
		if sp.Parent != root.SpanID || sp.TraceID != root.TraceID {
			t.Fatalf("child not parented to root: %+v", sp)
		}
	}
	if spans[1].Duration != (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("child duration: %+v", spans[1])
	}
}

func TestStartSpanContinuesRemoteTrace(t *testing.T) {
	store := NewSpanStore(8, 0, "")
	parent := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	act := store.StartSpan(PhaseHTTP, parent, nil)
	if act.TraceID() != parent.TraceID {
		t.Fatalf("trace id not continued: %q vs %q", act.TraceID(), parent.TraceID)
	}
	act.Finish()
	spans := store.Trace(parent.TraceID)
	if len(spans) != 1 || spans[0].Parent != parent.SpanID {
		t.Fatalf("root not parented to remote span: %+v", spans)
	}
}

func TestTailRetention(t *testing.T) {
	store := NewSpanStore(2, 100*time.Millisecond, "")
	slowID := NewTraceID()
	store.Add(Span{TraceID: slowID, SpanID: NewSpanID(), Phase: PhaseHTTP, Duration: (150 * time.Millisecond).Nanoseconds()})
	var fastIDs []string
	for i := 0; i < 4; i++ {
		id := NewTraceID()
		fastIDs = append(fastIDs, id)
		store.Add(Span{TraceID: id, SpanID: NewSpanID(), Phase: PhaseHTTP, Duration: 1000})
	}
	// The slow trace must have survived FIFO pressure.
	if store.Trace(slowID) == nil {
		t.Fatal("slow trace evicted despite retention")
	}
	// Only the newest fast trace fits alongside it.
	if store.Trace(fastIDs[3]) == nil {
		t.Fatal("newest fast trace missing")
	}
	for _, id := range fastIDs[:3] {
		if store.Trace(id) != nil {
			t.Fatalf("old fast trace %s not evicted", id)
		}
	}
	st := store.Stats()
	if st.Traces != 2 || st.TracesEvicted != 3 {
		t.Fatalf("stats: %+v", st)
	}
	// All-retained overflow falls back to FIFO.
	store2 := NewSpanStore(1, time.Nanosecond, "")
	a, b := NewTraceID(), NewTraceID()
	store2.Add(Span{TraceID: a, SpanID: NewSpanID(), Duration: 10})
	store2.Add(Span{TraceID: b, SpanID: NewSpanID(), Duration: 10})
	if store2.Trace(a) != nil || store2.Trace(b) == nil {
		t.Fatal("all-retained eviction should drop the oldest")
	}
}

func TestMaxSpansPerTrace(t *testing.T) {
	store := NewSpanStore(4, 0, "")
	id := NewTraceID()
	for i := 0; i < MaxSpansPerTrace+10; i++ {
		store.Add(Span{TraceID: id, SpanID: NewSpanID()})
	}
	if n := len(store.Trace(id)); n != MaxSpansPerTrace {
		t.Fatalf("stored %d spans, want %d", n, MaxSpansPerTrace)
	}
	if st := store.Stats(); st.SpansTruncated != 10 {
		t.Fatalf("truncated = %d, want 10", st.SpansTruncated)
	}
}

func TestSummariesPickLocalRoot(t *testing.T) {
	store := NewSpanStore(4, 0, "")
	id := NewTraceID()
	// The "http" span's parent is remote (not stored here): it is the
	// local root even though it has a Parent set.
	httpID := NewSpanID()
	store.Add(
		Span{TraceID: id, SpanID: httpID, Parent: NewSpanID(), Phase: PhaseHTTP, Start: 100, Duration: 5000},
		Span{TraceID: id, SpanID: NewSpanID(), Parent: httpID, Phase: PhaseQueueWait, Start: 150, Duration: 800},
	)
	sums := store.Summaries()
	if len(sums) != 1 {
		t.Fatalf("got %d summaries", len(sums))
	}
	got := sums[0]
	if got.RootPhase != PhaseHTTP || got.RootDurationNS != 5000 || got.Spans != 2 || got.StartUnixNS != 100 {
		t.Fatalf("summary: %+v", got)
	}
}

func TestObserverSeesAcceptedSpans(t *testing.T) {
	store := NewSpanStore(4, 0, "n")
	var seen []Span
	store.Observer = func(sp Span) { seen = append(seen, sp) }
	act := store.StartSpan(PhaseHTTP, SpanContext{}, nil)
	act.Phase(PhaseQueueWait, time.Now(), time.Millisecond)
	act.Finish()
	if len(seen) != 2 {
		t.Fatalf("observer saw %d spans, want 2", len(seen))
	}
	if seen[0].Phase != PhaseHTTP || seen[1].Phase != PhaseQueueWait {
		t.Fatalf("observer order: %+v", seen)
	}
	if seen[0].Node != "n" {
		t.Fatalf("observer span missing node stamp: %+v", seen[0])
	}
}

func TestContextCarriage(t *testing.T) {
	ctx := context.Background()
	if ActiveFrom(ctx) != nil {
		t.Fatal("empty context yielded an Active")
	}
	store := NewSpanStore(1, 0, "")
	act := store.StartSpan(PhaseHTTP, SpanContext{}, nil)
	if got := ActiveFrom(WithActive(ctx, act)); got != act {
		t.Fatalf("context round trip: %p vs %p", got, act)
	}
	// Carrying a nil Active is legal and reads back as nil.
	if got := ActiveFrom(WithActive(ctx, nil)); got != nil {
		t.Fatal("nil Active round trip")
	}
}
