package trace

import (
	"sync"
	"time"
)

// MaxSpansPerTrace bounds one trace's span count so a single chatty
// trace (a session driven for thousands of steps under one traceparent)
// cannot monopolize the store. Later spans of an over-full trace are
// counted in Stats().SpansTruncated and dropped.
const MaxSpansPerTrace = 256

// SpanStore is the bounded per-node home of recent traces, with
// tail-based retention: eviction is FIFO over whole traces, but a trace
// containing a span at or above the slow threshold is marked retained
// and survives ordinary eviction — the slow tail is exactly what an
// operator comes looking for after the fact. Retained traces are only
// evicted when every stored trace is retained and the store is still
// over capacity (then plain FIFO applies, oldest retained first).
//
// A nil *SpanStore is "tracing off": StartSpan returns nil and Add and
// RecordPhase are no-ops.
type SpanStore struct {
	// Observer, when set before serving begins, sees every span accepted
	// by Add. The server hooks phase-latency histograms (with exemplar
	// trace IDs) here. Called outside the store lock.
	Observer func(Span)

	mu       sync.Mutex
	capacity int
	slow     time.Duration
	node     string
	traces   map[string]*storedTrace
	order    []string // trace IDs, insertion order (eviction scans front)

	added     int64 // spans accepted
	truncated int64 // spans dropped by MaxSpansPerTrace
	evicted   int64 // traces evicted
}

type storedTrace struct {
	spans    []Span
	retained bool
}

// NewSpanStore builds a store holding at most capacity traces. Traces
// containing a span whose duration reaches slow are tail-retained;
// slow <= 0 disables retention (pure FIFO). node, when non-empty, is
// stamped into every accepted span that has no Node of its own.
func NewSpanStore(capacity int, slow time.Duration, node string) *SpanStore {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanStore{
		capacity: capacity,
		slow:     slow,
		node:     node,
		traces:   make(map[string]*storedTrace),
	}
}

// Add lands finished spans in the store. Spans missing a trace or span
// ID are dropped. Safe for concurrent use.
func (s *SpanStore) Add(spans ...Span) {
	if s == nil || len(spans) == 0 {
		return
	}
	var accepted []Span
	s.mu.Lock()
	for _, sp := range spans {
		if sp.TraceID == "" || sp.SpanID == "" {
			continue
		}
		if sp.Node == "" {
			sp.Node = s.node
		}
		tr := s.traces[sp.TraceID]
		if tr == nil {
			tr = &storedTrace{}
			s.traces[sp.TraceID] = tr
			s.order = append(s.order, sp.TraceID)
		}
		if len(tr.spans) >= MaxSpansPerTrace {
			s.truncated++
			continue
		}
		tr.spans = append(tr.spans, sp)
		s.added++
		if s.slow > 0 && time.Duration(sp.Duration) >= s.slow {
			tr.retained = true
		}
		if s.Observer != nil {
			accepted = append(accepted, sp)
		}
	}
	s.evictLocked()
	obs := s.Observer
	s.mu.Unlock()
	if obs != nil {
		for _, sp := range accepted {
			obs(sp)
		}
	}
}

// RecordPhase lands one finished phase span directly, for emitters that
// outlive the request's Active (the solve pool finishes flights after
// the submitting request returned its handle).
func (s *SpanStore) RecordPhase(sc SpanContext, phase string, start time.Time, d time.Duration, attrs map[string]string) {
	if s == nil || !sc.Valid() {
		return
	}
	s.Add(Span{
		TraceID:  sc.TraceID,
		SpanID:   NewSpanID(),
		Parent:   sc.SpanID,
		Phase:    phase,
		Start:    start.UnixNano(),
		Duration: d.Nanoseconds(),
		Attrs:    attrs,
	})
}

// evictLocked enforces the capacity bound: evict the oldest
// non-retained trace first; when all are retained, the oldest outright.
func (s *SpanStore) evictLocked() {
	for len(s.order) > s.capacity {
		victim := -1
		for i, id := range s.order {
			if !s.traces[id].retained {
				victim = i
				break
			}
		}
		if victim < 0 {
			victim = 0
		}
		delete(s.traces, s.order[victim])
		s.order = append(s.order[:victim], s.order[victim+1:]...)
		s.evicted++
	}
}

// Trace returns a copy of one trace's spans in recording order, or nil
// when the trace is unknown (or the store is nil).
func (s *SpanStore) Trace(id string) []Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tr := s.traces[id]
	if tr == nil {
		return nil
	}
	return append([]Span(nil), tr.spans...)
}

// TraceSummary is one stored trace's index entry, the element of
// GET /v1/traces.
type TraceSummary struct {
	TraceID string `json:"trace_id"`
	// Spans is the stored span count.
	Spans int `json:"spans"`
	// RootPhase and RootDurationNS describe the trace's slowest local
	// root — a span whose parent is absent from this store's fragment
	// (the true root here, or the continuation of a remote parent).
	RootPhase      string `json:"root_phase"`
	RootDurationNS int64  `json:"root_duration_ns"`
	// StartUnixNS is the earliest span start.
	StartUnixNS int64 `json:"start_unix_ns"`
	// Retained marks traces pinned by the slow-trace threshold.
	Retained bool `json:"retained"`
}

// Summaries lists stored traces in insertion order (oldest first).
func (s *SpanStore) Summaries() []TraceSummary {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TraceSummary, 0, len(s.order))
	for _, id := range s.order {
		tr := s.traces[id]
		sum := TraceSummary{TraceID: id, Spans: len(tr.spans), Retained: tr.retained}
		local := make(map[string]bool, len(tr.spans))
		for _, sp := range tr.spans {
			local[sp.SpanID] = true
		}
		for i, sp := range tr.spans {
			if i == 0 || sp.Start < sum.StartUnixNS {
				sum.StartUnixNS = sp.Start
			}
			if (sp.Parent == "" || !local[sp.Parent]) && sp.Duration >= sum.RootDurationNS {
				sum.RootPhase = sp.Phase
				sum.RootDurationNS = sp.Duration
			}
		}
		out = append(out, sum)
	}
	return out
}

// StoreStats reports the store's counters for /v1/traces.
type StoreStats struct {
	Traces          int   `json:"traces"`
	Capacity        int   `json:"capacity"`
	SlowThresholdNS int64 `json:"slow_threshold_ns"`
	SpansAdded      int64 `json:"spans_added"`
	SpansTruncated  int64 `json:"spans_truncated,omitempty"`
	TracesEvicted   int64 `json:"traces_evicted,omitempty"`
}

// Stats returns the store's counters; zero value when the store is nil.
func (s *SpanStore) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Traces:          len(s.order),
		Capacity:        s.capacity,
		SlowThresholdNS: s.slow.Nanoseconds(),
		SpansAdded:      s.added,
		SpansTruncated:  s.truncated,
		TracesEvicted:   s.evicted,
	}
}
