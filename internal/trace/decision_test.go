package trace

import (
	"strings"
	"sync"
	"testing"
)

func ev(seq int64) DecisionEvent {
	return DecisionEvent{Seq: seq, Time: seq, Rule: "alg1.flow-open", Alg: "alg1", Calibrations: int(seq)}
}

func TestRingBounded(t *testing.T) {
	r := NewRing(3)
	if r.Capacity() != 3 {
		t.Fatalf("capacity %d, want 3", r.Capacity())
	}
	for i := int64(1); i <= 5; i++ {
		r.Emit(ev(i))
	}
	events, emitted, dropped := r.Snapshot()
	if emitted != 5 || dropped != 2 {
		t.Fatalf("emitted %d dropped %d, want 5/2", emitted, dropped)
	}
	if len(events) != 3 {
		t.Fatalf("snapshot holds %d events, want 3", len(events))
	}
	for i, want := range []int64{3, 4, 5} {
		if events[i].Seq != want {
			t.Fatalf("event %d has seq %d, want %d (oldest-first order)", i, events[i].Seq, want)
		}
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	if r.Capacity() != 1 {
		t.Fatalf("capacity %d, want clamp to 1", r.Capacity())
	}
	r.Emit(ev(1))
	r.Emit(ev(2))
	events, _, dropped := r.Snapshot()
	if len(events) != 1 || events[0].Seq != 2 || dropped != 1 {
		t.Fatalf("got %d events (seq %d), dropped %d", len(events), events[0].Seq, dropped)
	}
}

// TestRingConcurrentAccess races a writer against snapshot readers; run
// under -race (the Makefile race target and CI do) this is the
// concurrency gate for the session-worker/HTTP-handler sharing pattern.
func TestRingConcurrentAccess(t *testing.T) {
	r := NewRing(64)
	const writes = 2000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := int64(1); i <= writes; i++ {
			r.Emit(ev(i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			events, emitted, dropped := r.Snapshot()
			if int64(len(events)) > emitted {
				t.Errorf("snapshot has %d events but only %d emitted", len(events), emitted)
				return
			}
			if dropped > emitted {
				t.Errorf("dropped %d > emitted %d", dropped, emitted)
				return
			}
			for j := 1; j < len(events); j++ {
				if events[j].Seq != events[j-1].Seq+1 {
					t.Errorf("snapshot not contiguous: seq %d after %d", events[j].Seq, events[j-1].Seq)
					return
				}
			}
		}
	}()
	wg.Wait()
	events, emitted, dropped := r.Snapshot()
	if emitted != writes {
		t.Fatalf("emitted %d, want %d", emitted, writes)
	}
	if int64(len(events))+dropped != writes {
		t.Fatalf("%d buffered + %d dropped != %d written", len(events), dropped, writes)
	}
}

func TestRecorderKeepsOrder(t *testing.T) {
	rec := &Recorder{}
	for i := int64(1); i <= 4; i++ {
		rec.Emit(ev(i))
	}
	events := rec.Events()
	if len(events) != 4 || events[0].Seq != 1 || events[3].Seq != 4 {
		t.Fatalf("recorder order broken: %+v", events)
	}
}

func TestRuleDocsCoverKnownRules(t *testing.T) {
	for _, rule := range Rules() {
		if RuleDoc(rule) == "" {
			t.Errorf("rule %s has empty doc", rule)
		}
	}
	if RuleDoc("not.a.rule") != "" {
		t.Error("unknown rule should map to empty doc")
	}
}

func TestWriteExplanation(t *testing.T) {
	var b strings.Builder
	events := []DecisionEvent{
		{Seq: 1, Time: 4, Alg: "alg1", Rule: "alg1.count-open", QueueLen: 3, QueueWeight: 3,
			ProspectiveFlow: 9, Calibrations: 1, AccruedCost: 12},
		{Seq: 2, Time: 20, Alg: "alg1", Rule: "alg1.flow-open", QueueLen: 1, QueueWeight: 1,
			ProspectiveFlow: 12, Calibrations: 2, AccruedCost: 24},
	}
	if err := WriteExplanation(&b, 4, 12, events); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"calibration #1", "rule=alg1.count-open", "T*|Q| = 4*3 = 12 >= G = 12",
		"calibration #2", "prospective flow 12 >= G = 12", "Lemma 3.2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation missing %q:\n%s", want, out)
		}
	}

	b.Reset()
	if err := WriteExplanation(&b, 4, 12, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no calibrations") {
		t.Errorf("empty trace explanation: %q", b.String())
	}
}
