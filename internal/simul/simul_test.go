package simul

import (
	"testing"
	"testing/quick"

	"calibsched/internal/core"
)

func TestArrivalsGroupsByRelease(t *testing.T) {
	in := core.MustInstance(2, 3, []int64{0, 0, 2, 5}, []int64{1, 2, 3, 4})
	a := NewArrivals(in)
	if a.Remaining() != 4 {
		t.Fatalf("Remaining = %d", a.Remaining())
	}
	nt, ok := a.NextTime()
	if !ok || nt != 0 {
		t.Fatalf("NextTime = %d,%v", nt, ok)
	}
	if got := a.PopAt(0); len(got) != 2 {
		t.Fatalf("PopAt(0) returned %d jobs", len(got))
	}
	if got := a.PopAt(1); len(got) != 0 {
		t.Fatalf("PopAt(1) returned %d jobs", len(got))
	}
	nt, _ = a.NextTime()
	if nt != 2 {
		t.Fatalf("NextTime after 0 = %d", nt)
	}
	if got := a.PopAt(2); len(got) != 1 || got[0].Release != 2 {
		t.Fatalf("PopAt(2) = %v", got)
	}
	if got := a.PopAt(5); len(got) != 1 {
		t.Fatalf("PopAt(5) = %v", got)
	}
	if a.Remaining() != 0 {
		t.Fatalf("Remaining = %d after draining", a.Remaining())
	}
	if _, ok := a.NextTime(); ok {
		t.Error("NextTime ok on drained stream")
	}
}

func TestArrivalsPanicsOnRewind(t *testing.T) {
	in := core.MustInstance(1, 3, []int64{1}, []int64{1})
	a := NewArrivals(in)
	defer func() {
		if recover() == nil {
			t.Error("PopAt past unconsumed jobs did not panic")
		}
	}()
	a.PopAt(5)
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{10, 5, 2}, {11, 5, 3}, {0, 5, 0}, {-1, 5, 0}, {-5, 5, -1},
		{-6, 5, -1}, {1, 1, 1}, {7, 3, 3}, {-7, 3, -2},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivPanicsOnBadDivisor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CeilDiv with divisor 0 did not panic")
		}
	}()
	CeilDiv(1, 0)
}

// TestQuickCeilDivDefinition: CeilDiv(a,b) is the unique q with
// (q-1)*b < a <= q*b for positive b.
func TestQuickCeilDivDefinition(t *testing.T) {
	f := func(a int32, b uint8) bool {
		bb := int64(b%50) + 1
		q := CeilDiv(int64(a), bb)
		return (q-1)*bb < int64(a) && int64(a) <= q*bb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
