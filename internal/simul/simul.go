// Package simul provides the discrete-time plumbing shared by the online
// calibration algorithms: an arrival stream grouping jobs by release time,
// and small integer-time utilities (ceiling division on int64).
//
// The online algorithms come in two operationally identical flavors — a
// naive per-time-step simulation and an event-skipping fast-forward loop —
// and both are built on this package. Event skipping matters because the
// calibration cost G sets the natural delay scale: a lone job may wait
// Theta(G) steps before the flow trigger fires, so a naive loop is
// Omega(G) while the event loop is O((n + #calibrations) log n).
package simul

import "calibsched/internal/core"

// Arrivals is a cursor over an instance's jobs grouped by release time in
// increasing order. Jobs of an Instance are already sorted by release, so
// construction is O(1).
type Arrivals struct {
	jobs []core.Job
	i    int
}

// NewArrivals returns an arrival stream over the instance's jobs.
func NewArrivals(in *core.Instance) *Arrivals {
	return &Arrivals{jobs: in.Jobs}
}

// Remaining returns the number of jobs not yet consumed.
func (a *Arrivals) Remaining() int { return len(a.jobs) - a.i }

// NextTime returns the release time of the next unconsumed job, and whether
// one exists.
func (a *Arrivals) NextTime() (int64, bool) {
	if a.i >= len(a.jobs) {
		return 0, false
	}
	return a.jobs[a.i].Release, true
}

// PopAt consumes and returns all jobs released exactly at time t. Jobs with
// release < t must already have been consumed (the stream moves forward
// only); PopAt panics otherwise, as that indicates a simulation bug.
func (a *Arrivals) PopAt(t int64) []core.Job {
	if a.i < len(a.jobs) && a.jobs[a.i].Release < t {
		panic("simul: arrival stream moved past unconsumed jobs")
	}
	start := a.i
	for a.i < len(a.jobs) && a.jobs[a.i].Release == t {
		a.i++
	}
	return a.jobs[start:a.i]
}

// CeilDiv returns ceil(a/b) for b > 0, correct for negative a.
func CeilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("simul: CeilDiv needs positive divisor")
	}
	q := a / b
	if a%b > 0 {
		q++
	}
	return q
}
