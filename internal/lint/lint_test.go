package lint_test

import (
	"path/filepath"
	"testing"

	"calibsched/internal/lint"
)

// TestRepoIsCaliblintClean is the in-tree form of the CI gate: the whole
// module must satisfy every invariant analyzer. Run `go run ./cmd/caliblint
// ./...` for the same check from the command line.
func TestRepoIsCaliblintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) < 10 {
		t.Fatalf("loaded only %d packages; pattern expansion is broken", len(targets))
	}
	// The serving layer must be inside the gate, not silently skipped: a
	// pattern-expansion regression that dropped these packages would let
	// invariant violations land unchecked.
	loaded := make(map[string]bool, len(targets))
	for _, tp := range targets {
		loaded[tp.Path] = true
	}
	for _, want := range []string{
		"calibsched/internal/server",
		"calibsched/internal/server/metrics",
		"calibsched/cmd/calibserved",
		"calibsched/cmd/calibload",
	} {
		if !loaded[want] {
			t.Errorf("caliblint gate did not load %s", want)
		}
	}
	diags, err := lint.Run(loader, targets, lint.Analyzers)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestDirectiveSuppression checks the scoping rules of //caliblint:allow
// against the exactarith fixture: the directive must silence only the
// named analyzer on its own and the following line.
func TestDirectiveSuppression(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "exactarith"))
	if err != nil {
		t.Fatal(err)
	}
	loader := lint.NewLoaderWithModule(root, "fix")
	targets, err := loader.Load("internal/core")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(loader, targets, []*lint.Analyzer{lint.ExactArith})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if filepath.Base(d.Pos.Filename) != "floats.go" {
			t.Errorf("diagnostic outside fixture file: %s", d)
		}
		if d.Pos.Line >= 22 { // ReportingRatio's directive-suppressed lines
			t.Errorf("directive failed to suppress: %s", d)
		}
	}
	if len(diags) != 6 {
		t.Errorf("got %d diagnostics, want 6: %v", len(diags), diags)
	}
}
