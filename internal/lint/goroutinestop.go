package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// spawningPkgSuffixes names the packages whose goroutines outlive a
// request: session workers, the janitor, the solver pool, and any future
// persistence daemons. A goroutine here that loops forever with no stop
// path survives Shutdown, leaks under the race detector, and turns
// graceful drain into a hang.
var spawningPkgSuffixes = []string{
	"internal/cluster",
	"internal/server",
	"internal/solve",
	"internal/store",
}

func isSpawningPkg(path string) bool {
	for _, s := range spawningPkgSuffixes {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// GoroutineStop enforces that every goroutine spawned in the serving
// packages has a visible stop path. The unit of enforcement is the
// unbounded loop: a goroutine whose body (or whose named same-package
// callee's body) contains a `for` with no condition must provide, inside
// that loop, at least one of
//
//   - a select statement (the done-/ctx-channel pattern),
//   - a channel receive or a range over a channel (the loop ends when the
//     channel closes),
//   - a return or break (a bounded exit the reader can point at), or
//   - a call to (*sync.WaitGroup).Done (registration-managed shutdown).
//
// Goroutines with only bounded loops (or none) terminate structurally and
// pass. Goroutines whose body is not visible in the package (a function
// value, a method of another package) are skipped: the analyzer reports
// only what it can prove about code it can see.
var GoroutineStop = &Analyzer{
	Name:      "goroutinestop",
	Doc:       "every goroutine in the serving packages must have a visible stop path (select, channel receive, return/break, or WaitGroup.Done in its loops)",
	Applies:   isSpawningPkg,
	SkipTests: true,
	Run:       runGoroutineStop,
}

func runGoroutineStop(pass *Pass) error {
	// Index the package's function declarations by their object, so
	// `go s.work()` resolves to the body of (*session).work.
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	pass.Inspect(func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		body := goBody(pass, decls, gs.Call)
		if body == nil {
			return true
		}
		for _, loop := range unboundedLoops(body) {
			if !loopHasStopPath(pass, loop) {
				pass.Reportf(gs.Pos(), "goroutine loops forever with no visible stop path (no select, channel receive, return, break, or WaitGroup.Done in the loop at %s)",
					pass.Fset.Position(loop.For))
			}
		}
		return true
	})
	return nil
}

// goBody resolves the function body a go statement runs: a literal's own
// body, or the declaration of a named same-package function or method.
func goBody(pass *Pass, decls map[types.Object]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fd, ok := decls[pass.Info.Uses[fun]]; ok {
			return fd.Body
		}
	case *ast.SelectorExpr:
		if fd, ok := decls[pass.Info.Uses[fun.Sel]]; ok {
			return fd.Body
		}
	}
	return nil
}

// unboundedLoops returns every `for` statement without a condition inside
// body, excluding nested function literals (their goroutine, their rules).
func unboundedLoops(body *ast.BlockStmt) []*ast.ForStmt {
	var loops []*ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond == nil {
				loops = append(loops, n)
			}
		}
		return true
	})
	return loops
}

// loopHasStopPath reports whether the loop body contains a visible exit:
// a select, a channel receive (unary or range), a return or break, or a
// WaitGroup.Done call. Nested function literals do not count — code that
// runs on yet another goroutine cannot stop this one.
func loopHasStopPath(pass *Pass, loop *ast.ForStmt) bool {
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			found = true
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok &&
					fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Done" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
