package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the framework's intra-procedural statement-flow support: a
// lightweight, stdlib-only lock-state walker that visits every statement
// of a function body in control-flow order while tracking which
// sync.Mutex / sync.RWMutex receivers are held at that point.
//
// The flow model is deliberately simple and conservative, matching how
// the repository actually uses locks (short critical sections, optionally
// a deferred unlock):
//
//   - statements in a block are walked in source order;
//   - mu.Lock() / mu.RLock() pushes a held lock, mu.Unlock() / mu.RUnlock()
//     pops the most recent matching one;
//   - defer mu.Unlock() marks the lock deferred: it stays held for the
//     rest of the function (which is exactly what matters for "no blocking
//     operation while holding a lock" analyses);
//   - branch bodies (if/else, for, range, switch, select cases) are walked
//     with a copy of the entry state and their lock mutations are
//     discarded afterwards, so the fall-through path keeps the state it
//     had before the branch. An early `mu.Unlock(); return` inside an if
//     therefore does not leak an "unlocked" state onto the path that
//     continues past the if — which still holds the lock;
//   - go statements and function literals do not inherit the caller's
//     held set (a spawned goroutine does not hold the spawning
//     goroutine's locks), and their bodies are not descended into; an
//     analyzer that cares about closure bodies walks them as separate
//     functions with an empty entry state.
//
// Lock identity is the canonical source text of the receiver expression
// (types.ExprString), so m.mu and p.pool.mu are distinct and two mentions
// of m.mu match. This is an intra-procedural approximation — aliased
// mutexes and helper lock wrappers are out of scope — but it is sound for
// the direct Lock/Unlock discipline the serving planes use, and false
// negatives from aliasing are preferable to unreviewable false positives.

// HeldLock is one mutex held at a program point.
type HeldLock struct {
	// Expr is the canonical receiver expression of the Lock call,
	// e.g. "m.mu" or "p.mu".
	Expr string
	// Pos is the position of the Lock/RLock call that acquired it.
	Pos token.Pos
	// Read marks a read lock (RLock).
	Read bool
	// Deferred marks a lock whose release is a deferred Unlock: it is
	// held until the function returns.
	Deferred bool
}

// lockOp classifies one sync mutex method call.
type lockOp int

const (
	opNone lockOp = iota
	opLock
	opRLock
	opUnlock
	opRUnlock
)

// classifyLockCall reports whether call invokes Lock/RLock/Unlock/RUnlock
// on a sync.Mutex or sync.RWMutex (directly or as a promoted method of an
// embedding struct), and returns the canonical receiver expression.
func classifyLockCall(info *types.Info, call *ast.CallExpr) (lockOp, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return opNone, ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return opNone, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return opNone, ""
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return opNone, ""
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return opNone, ""
	}
	op := opNone
	switch fn.Name() {
	case "Lock":
		op = opLock
	case "RLock":
		op = opRLock
	case "Unlock":
		op = opUnlock
	case "RUnlock":
		op = opRUnlock
	default:
		return opNone, ""
	}
	return op, types.ExprString(sel.X)
}

// lockWalker carries the walk's shared state.
type lockWalker struct {
	info  *types.Info
	visit func(stmt ast.Stmt, held []HeldLock)
}

// WalkLockState visits every statement of body in control-flow order,
// passing the set of locks held when the statement begins executing. The
// held slice is reused between calls; visitors that retain it must copy.
func WalkLockState(info *types.Info, body *ast.BlockStmt, visit func(stmt ast.Stmt, held []HeldLock)) {
	w := &lockWalker{info: info, visit: visit}
	held := []HeldLock{}
	w.walkStmts(body.List, &held)
}

// walkStmts walks one statement list, mutating held in place for
// sequential lock operations and cloning it across branch bodies.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held *[]HeldLock) {
	for _, stmt := range stmts {
		w.walkStmt(stmt, held)
	}
}

func (w *lockWalker) walkStmt(stmt ast.Stmt, held *[]HeldLock) {
	// Labels are transparent to lock state.
	if ls, ok := stmt.(*ast.LabeledStmt); ok {
		w.walkStmt(ls.Stmt, held)
		return
	}
	w.visit(stmt, *held)
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			w.applyLockCall(call, held, false)
		}
	case *ast.DeferStmt:
		w.applyLockCall(s.Call, held, true)
	case *ast.BlockStmt:
		// A bare block is sequential: state flows through it.
		w.walkStmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		branch := clone(*held)
		w.walkStmt(s.Body, &branch)
		if s.Else != nil {
			branch = clone(*held)
			w.walkStmt(s.Else, &branch)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		branch := clone(*held)
		if s.Post != nil {
			w.walkStmt(s.Post, &branch)
		}
		w.walkStmt(s.Body, &branch)
	case *ast.RangeStmt:
		branch := clone(*held)
		w.walkStmt(s.Body, &branch)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.walkCases(s.Body, *held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.walkCases(s.Body, *held)
	case *ast.SelectStmt:
		// Each comm clause body runs after the select fires. The comm
		// statement itself (the send or receive being selected on) is
		// part of the select's blocking semantics, not a standalone
		// statement, so it is not visited separately.
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			branch := clone(*held)
			w.walkStmts(cc.Body, &branch)
		}
	case *ast.GoStmt:
		// The spawned goroutine does not hold the spawner's locks; its
		// body (if a literal) is a separate function.
	}
}

// walkCases walks each case clause of a switch body with a cloned state.
func (w *lockWalker) walkCases(body *ast.BlockStmt, held []HeldLock) {
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		branch := clone(held)
		w.walkStmts(cc.Body, &branch)
	}
}

// applyLockCall updates held for a direct or deferred mutex method call.
func (w *lockWalker) applyLockCall(call *ast.CallExpr, held *[]HeldLock, deferred bool) {
	op, expr := classifyLockCall(w.info, call)
	switch op {
	case opLock, opRLock:
		if deferred {
			return // defer mu.Lock() acquires at return; not a held span
		}
		*held = append(*held, HeldLock{Expr: expr, Pos: call.Pos(), Read: op == opRLock})
	case opUnlock, opRUnlock:
		read := op == opRUnlock
		if deferred {
			// The lock stays held until the function returns.
			for i := len(*held) - 1; i >= 0; i-- {
				if (*held)[i].Expr == expr && (*held)[i].Read == read {
					(*held)[i].Deferred = true
					return
				}
			}
			return
		}
		for i := len(*held) - 1; i >= 0; i-- {
			if (*held)[i].Expr == expr && (*held)[i].Read == read {
				*held = append((*held)[:i], (*held)[i+1:]...)
				return
			}
		}
	}
}

func clone(held []HeldLock) []HeldLock {
	out := make([]HeldLock, len(held))
	copy(out, held)
	return out
}

// FuncBodies returns every function body in the pass's files — named
// declarations and function literals — each paired with a description for
// diagnostics. Literals get their own entry because they do not inherit
// the enclosing function's lock state.
func FuncBodies(files []*ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					bodies = append(bodies, n.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, n.Body)
			}
			return true
		})
	}
	return bodies
}

// shallowInspect applies fn to the expressions owned directly by stmt —
// its conditions, operands, and arguments — without descending into
// nested statements (which the lock walker visits on their own), into
// select comm clauses (whose blocking semantics the select statement
// carries as a whole), or into function literal bodies (which run with
// their own lock state, possibly on another goroutine).
func shallowInspect(stmt ast.Stmt, fn func(ast.Node) bool) {
	root := ast.Node(stmt)
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if n == root {
			return fn(n)
		}
		switch n.(type) {
		case ast.Stmt, *ast.FuncLit:
			return false
		}
		return fn(n)
	})
}
