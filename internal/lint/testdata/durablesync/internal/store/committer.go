package store

// Group-committer half of the durablesync fixture: commit, the journal
// write, and the unexported Log write/sync primitives are all in the
// must-check set — dropping any of them acknowledges a record whose
// durability is unknown.

type Committer struct {
	j *journal
}

type journal struct {
	f *Log
}

func (c *Committer) commit(l *Log, buf []byte) (int, error) {
	if err := l.writeFrame(buf); err != nil {
		return 0, err
	}
	if err := c.j.write(); err != nil {
		return 0, err
	}
	return len(buf), l.fileSync()
}

func (j *journal) write() error { return nil }

func (l *Log) writeFrame(b []byte) error {
	_, err := l.f.Write(b)
	return err
}

func (l *Log) fileSync() error { return l.f.Sync() }

// GoodGroup propagates the commit result to the caller.
func (l *Log) GoodGroup(c *Committer, buf []byte) (int, error) {
	return c.commit(l, buf)
}

func (l *Log) BadGroup(c *Committer, buf []byte) {
	c.commit(l, buf)        // want `result of Committer.commit discarded`
	l.writeFrame(buf)       // want `result of Log.writeFrame discarded`
	l.fileSync()            // want `result of Log.fileSync discarded`
	c.j.write()             // want `result of journal.write discarded`
	_, _ = c.commit(l, buf) // want `trailing result of Committer.commit assigned to the blank identifier`
}
