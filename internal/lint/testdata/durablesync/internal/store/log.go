// Package store is a durablesync fixture: the os.File half of the
// configured must-check set.
package store

import "os"

type Log struct {
	f *os.File
}

// Sync propagates the file sync result: the allowed pattern.
func (l *Log) Sync() error { return l.f.Sync() }

// Close propagates the close result.
func (l *Log) Close() error { return l.f.Close() }

// Append checks every durability-relevant result.
func (l *Log) Append(b []byte) error {
	if _, err := l.f.Write(b); err != nil {
		return err
	}
	return l.f.Sync()
}

func (l *Log) BadAppend(b []byte) {
	l.f.Write(b) // want `result of File.Write discarded`
	l.f.Sync()   // want `result of File.Sync discarded`
}

func (l *Log) BadBlank(b []byte) {
	_, _ = l.f.Write(b) // want `trailing result of File.Write assigned to the blank identifier`
}

func (l *Log) BadDefer() {
	defer l.f.Close() // want `defer discards the result of File.Close`
}

// Abort drops the close deliberately: it simulates a hard kill, and the
// rationale is on record.
func (l *Log) Abort() {
	l.f.Close() //caliblint:allow durablesync -- simulated crash; recovery must cope with whatever the OS kept
}
