// Package server is the durablesync fixture's serving side: the
// configured must-check set generalizes beyond os.File to the fixture
// module's own store.Log API.
package server

import "fix/internal/store"

// Settle checks the Log result: the allowed pattern.
func Settle(l *store.Log) error {
	return l.Close()
}

func BadSettle(l *store.Log) {
	l.Close() // want `result of Log.Close discarded`
}

func BadSyncBlank(l *store.Log) {
	_ = l.Sync() // want `trailing result of Log.Sync assigned to the blank identifier`
}
