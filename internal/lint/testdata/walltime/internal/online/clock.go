// Package online is a walltime fixture: the online engines are inside
// the deterministic set, so clock reads here must be rejected even
// though the sibling internal/trace package allows them.
package online

import "time"

// StepAt is allowed: virtual step arithmetic, no clock.
func StepAt(now, horizon int64) bool {
	return now < horizon
}

func BadDecisionStamp() int64 {
	return time.Now().UnixNano() // want `time.Now reads the wall clock`
}

func BadThrottle() {
	time.Sleep(time.Microsecond) // want `time.Sleep reads the wall clock`
}
