// Package offline is a walltime fixture: the offline DP is inside the
// deterministic set — memoized-vs-parallel equivalence proofs need
// byte-identical reruns, so any clock read must be flagged.
package offline

import "time"

// Horizon is allowed: pure duration arithmetic never observes time.
func Horizon(steps int64, per time.Duration) time.Duration {
	return time.Duration(steps) * per
}

func BadSolveTimer() time.Duration {
	start := time.Now()      // want `time.Now reads the wall clock`
	return time.Since(start) // want `time.Since reads the wall clock`
}

func BadTimeout() <-chan time.Time {
	return time.After(time.Second) // want `time.After reads the wall clock`
}
