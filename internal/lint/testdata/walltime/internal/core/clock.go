// Package core is a walltime fixture: wall-clock reads in a
// deterministic package, plus the allowed duration arithmetic.
package core

import "time"

// Timeout is allowed: duration arithmetic never reads the clock.
func Timeout(d time.Duration) time.Duration {
	return 2 * d
}

// Parse is allowed: methods on time values don't read the clock either.
func Parse(t time.Time) int64 {
	return t.UnixNano()
}

func BadNow() int64 {
	return time.Now().UnixNano() // want `time.Now reads the wall clock`
}

func BadSince(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since reads the wall clock`
}

func BadSleep() {
	time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
}

// Stamp carries the deliberate exception, rationale on record.
func Stamp() int64 {
	return time.Now().Unix() //caliblint:allow walltime -- diagnostics banner only; never feeds a schedule
}
