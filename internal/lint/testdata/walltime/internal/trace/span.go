// Package trace is a walltime fixture for the analyzer's scope
// boundary: internal/trace measures wall-clock latency by design
// (request spans are timings of real I/O), so it sits outside the
// deterministic set and every clock read here must stay diagnostic-free.
package trace

import "time"

// Span mirrors the real package's shape: wall-clock start + duration.
type Span struct {
	Start    int64
	Duration int64
}

// Record reads the clock twice — the analyzer must not fire.
func Record(fn func()) Span {
	start := time.Now()
	fn()
	return Span{Start: start.UnixNano(), Duration: time.Since(start).Nanoseconds()}
}

// Deadline waits on a timer — also allowed here.
func Deadline(d time.Duration) <-chan time.Time {
	return time.After(d)
}
