// Package server is a goroutinestop fixture: goroutines with and without
// visible stop paths.
package server

type Worker struct {
	cmds chan func()
	quit chan struct{}
}

// GoodWorker is the canonical shape: an unbounded loop selecting on a
// quit channel.
func (w *Worker) GoodWorker() {
	go func() {
		for {
			select {
			case fn := <-w.cmds:
				fn()
			case <-w.quit:
				return
			}
		}
	}()
}

// GoodBounded terminates structurally: the loop has a condition.
func GoodBounded(n int) {
	go func() {
		total := 0
		for i := 0; i < n; i++ {
			total += i
		}
		_ = total
	}()
}

// GoodRange ends when the channel closes.
func (w *Worker) GoodRange() {
	go func() {
		for fn := range w.cmds {
			fn()
		}
	}()
}

// GoodNamed spawns a named same-package method whose body is resolved
// and found to select on the quit channel.
func (w *Worker) GoodNamed() {
	go w.loop()
}

func (w *Worker) loop() {
	for {
		select {
		case fn := <-w.cmds:
			fn()
		case <-w.quit:
			return
		}
	}
}

// GoodFlagBreak exits via break: a visible, reviewable stop path.
func (w *Worker) GoodFlagBreak(stop func() bool) {
	go func() {
		for {
			if stop() {
				break
			}
		}
	}()
}

func spin() {}

func (w *Worker) BadSpin() {
	go func() { // want `goroutine loops forever with no visible stop path`
		for {
			spin()
		}
	}()
}

func (w *Worker) BadNamed() {
	go w.spinForever() // want `goroutine loops forever with no visible stop path`
}

func (w *Worker) spinForever() {
	for {
		spin()
	}
}

// AllowedDaemon is the deliberate exception, rationale on record.
func (w *Worker) AllowedDaemon() {
	go func() { //caliblint:allow goroutinestop -- process-lifetime daemon; exits with the process
		for {
			spin()
		}
	}()
}

// Committer mirrors the store's group committer: a long-lived goroutine
// draining a request channel, stopped through a dedicated channel. The
// analyzer must resolve the named method and see the select-on-stop.
type Committer struct {
	reqs chan func()
	stop chan struct{}
}

// GoodCommitter is the store.Open shape: `go c.run()` with run's stop
// path one call away.
func (c *Committer) GoodCommitter() {
	go c.run()
}

func (c *Committer) run() {
	for {
		select {
		case fn := <-c.reqs:
			fn()
		case <-c.stop:
			return
		}
	}
}

// BadCommitter busy-polls forever: without the channel ops there is no
// visible stop path left in the resolved body.
func (c *Committer) BadCommitter() {
	go c.pollForever() // want `goroutine loops forever with no visible stop path`
}

func (c *Committer) pollForever() {
	n := 0
	for {
		n++
	}
}
