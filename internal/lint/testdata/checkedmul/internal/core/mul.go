// Package core is a checkedmul fixture standing in for an
// exact-arithmetic package.
package core

// MulCheck is the checked-overflow helper: the one place a raw int64
// product is allowed, recognized by name.
func MulCheck(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	c := a * b
	if c/b != a {
		return c, false
	}
	return c, true
}

func BadCost(w, f int64) int64 {
	return w * f // want `unchecked int64 multiplication in exact cost path`
}

func BadScale(total, k int64) int64 {
	total *= k // want `unchecked int64 \*= in exact cost path`
	return total
}

// A compile-time-constant factor is allowed: the compiler rejects
// constant overflow and the factor is visible at the call site.
func Doubled(g int64) int64 {
	return 2*g + 2
}

// Non-int64 products (indices, counters) are out of scope.
func Cells(rows, cols int) int {
	return rows * cols
}

// A deliberate exception carries the directive.
func BoundedProduct(a, b int64) int64 {
	return a * b //caliblint:allow checkedmul -- operands bounded by construction
}
