// Package app is the noignoredvalidate fixture exercising caller-side
// violations against the stub core package.
package app

import (
	"fmt"

	"fix/internal/core"
)

func Dropped(in *core.Instance, s *core.Schedule) {
	core.Validate(in, s) // want `result of core.Validate discarded`
}

func Blank(in *core.Instance, s *core.Schedule) *core.Instance {
	_ = core.Validate(in, s)       // want `error from core.Validate assigned to the blank identifier`
	inst, _ := core.NewInstance(3) // want `error from core.NewInstance assigned to the blank identifier`
	return inst
}

// Checked is the allowed pattern: the error is propagated with context.
func Checked(in *core.Instance, s *core.Schedule) error {
	if err := core.Validate(in, s); err != nil {
		return fmt.Errorf("app: %w", err)
	}
	return nil
}

func PanicsRawError(in *core.Instance, s *core.Schedule) {
	if err := core.Validate(in, s); err != nil {
		panic(err) // want `panic with a raw error value outside a Must\* helper`
	}
}

// PanicsWithContext is allowed: an assertion panic with a contextual
// string message, not a raw error value.
func PanicsWithContext(in *core.Instance, s *core.Schedule) {
	if err := core.Validate(in, s); err != nil {
		panic(fmt.Sprintf("app: schedule must validate here: %v", err))
	}
}

// MustValidate is allowed: Must* helpers convert errors to panics by
// design.
func MustValidate(in *core.Instance, s *core.Schedule) {
	if err := core.Validate(in, s); err != nil {
		panic(err)
	}
}
