// Package core is a noignoredvalidate fixture stub mirroring the real
// core package's validation API.
package core

import "fmt"

type Instance struct{ N int }

type Schedule struct{ Slots int }

func Validate(in *Instance, s *Schedule) error {
	if in.N != s.Slots {
		return fmt.Errorf("core: %d jobs but %d slots", in.N, s.Slots)
	}
	return nil
}

func NewInstance(n int) (*Instance, error) {
	if n < 0 {
		return nil, fmt.Errorf("core: negative job count %d", n)
	}
	return &Instance{N: n}, nil
}

// MustInstance may panic with the raw error: Must* helpers are the
// allowed pattern for converting errors to panics.
func MustInstance(n int) *Instance {
	in, err := NewInstance(n)
	if err != nil {
		panic(err)
	}
	return in
}
