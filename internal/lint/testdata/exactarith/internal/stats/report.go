// Package stats is a reporting package: it is outside the
// exact-arithmetic set, so its floating-point summaries are the allowed
// pattern and nothing here is reported.
package stats

func Mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
