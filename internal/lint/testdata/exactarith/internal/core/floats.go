// Package core is an exactarith fixture standing in for an
// exact-arithmetic package.
package core

// Flow-style integer arithmetic is the allowed pattern.
func Flow(w, start, release int64) int64 {
	return w * (start + 1 - release)
}

func BadConvert(x int64) float64 { // want `use of float64 in exact-arithmetic package`
	return float64(x) // want `use of float64 in exact-arithmetic package`
}

func BadInferred(a, b int64) int64 {
	r := 0.5 // want `r has floating-point type float64` `floating-point literal 0.5`
	_ = r
	var f float32 // want `use of float32 in exact-arithmetic package` `f has floating-point type float32`
	_ = f
	return a + b
}

// A deliberate, documented exception uses the directive on the offending
// line (or the line above) and is the allowed suppression pattern.
func ReportingRatio(a, b int64) float64 { //caliblint:allow exactarith -- reporting-only
	return float64(a) / float64(b) //caliblint:allow exactarith -- reporting-only
}
