package core

import "testing"

// Test files are exempt from exactarith: comparing measured ratios
// against float thresholds does not contaminate the exact costs, so
// nothing below is reported.
func TestRatioThreshold(t *testing.T) {
	if got := float64(Flow(2, 3, 0)) / 8.0; got > 3.0 {
		t.Fatalf("ratio %f", got)
	}
}
