// Package gen is a seededrand fixture covering math/rand/v2.
package gen

import (
	"math/rand/v2"
	"time"
)

// Explicitly seeded construction is the allowed pattern.
func Good(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Drawing from an explicit generator is allowed: IntN here is a method
// on *rand.Rand, not the package-level function.
func GoodDraw(rng *rand.Rand) int {
	return rng.IntN(10)
}

func BadGlobal() int {
	return rand.IntN(10) // want `rand.IntN draws from the package-global, implicitly seeded source`
}

func BadShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle draws from the package-global`
}

func BadTimeSeed() *rand.Rand {
	return rand.New(rand.NewPCG(uint64(time.Now().UnixNano()), 1)) // want `seed for rand.NewPCG derived from time.Now`
}
