package gen

import (
	mrand "math/rand"
	"time"
)

// The v1 math/rand package is held to the same contract.
func GoodV1(seed int64) *mrand.Rand {
	return mrand.New(mrand.NewSource(seed))
}

func BadV1Global() int {
	return mrand.Intn(3) // want `rand.Intn draws from the package-global`
}

func BadV1TimeSeed() *mrand.Rand {
	return mrand.New(mrand.NewSource(time.Now().UnixNano())) // want `seed for rand.NewSource derived from time.Now`
}
