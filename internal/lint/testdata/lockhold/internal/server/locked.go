// Package server is a lockhold fixture: blocking operations under held
// mutexes, plus the allowed patterns (unlock-before-block, select with
// default, branch-local early unlocks).
package server

import (
	"os"
	"sync"
)

type Manager struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	ch   chan int
	wg   sync.WaitGroup
	vals map[string]int
}

// GoodSendAfterUnlock releases the lock before the blocking send.
func (m *Manager) GoodSendAfterUnlock(v int) {
	m.mu.Lock()
	m.vals["x"] = v
	m.mu.Unlock()
	m.ch <- v
}

// GoodNonBlockingSend selects with a default case, which cannot block.
func (m *Manager) GoodNonBlockingSend(v int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	select {
	case m.ch <- v:
		return true
	default:
		return false
	}
}

// GoodBranches: the branch-local unlock+return does not end the
// fall-through span, and the send happens after the top-level unlock.
func (m *Manager) GoodBranches(v int) {
	m.mu.Lock()
	if v < 0 {
		m.mu.Unlock()
		return
	}
	m.vals["x"] = v
	m.mu.Unlock()
	m.ch <- v
}

// GoodGoroutine: the spawned goroutine does not hold the spawner's lock.
func (m *Manager) GoodGoroutine(v int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	go func() {
		m.ch <- v
	}()
}

func (m *Manager) BadSend(v int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ch <- v // want `channel send while m.mu is held`
}

func (m *Manager) BadRecv() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return <-m.ch // want `channel receive while m.mu is held`
}

func (m *Manager) BadSelect() {
	m.mu.Lock()
	defer m.mu.Unlock()
	select { // want `select without default while m.mu is held`
	case v := <-m.ch:
		m.vals["x"] = v
	}
}

// BadEarlyReturnKeepsSpan: after the if, the fall-through path still
// holds the lock even though one branch released it.
func (m *Manager) BadEarlyReturnKeepsSpan(v int) {
	m.mu.Lock()
	if v < 0 {
		m.mu.Unlock()
		return
	}
	m.ch <- v // want `channel send while m.mu is held`
	m.mu.Unlock()
}

func (m *Manager) BadRange() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for v := range m.ch { // want `range over a channel while m.mu is held`
		m.vals["x"] = v
	}
}

func (m *Manager) BadWaitUnderRLock() {
	m.rw.RLock()
	defer m.rw.RUnlock()
	m.wg.Wait() // want `sync wait \(m.wg.Wait\) while m.rw is held`
}

func (m *Manager) BadFileIO(f *os.File, b []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, err := f.Write(b) // want `os I/O \(os.Write\) while m.mu is held`
	return err
}

// AllowedSend is the deliberate exception, rationale on record.
func (m *Manager) AllowedSend(v int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ch <- v //caliblint:allow lockhold -- channel buffered to capacity; send cannot block
}
