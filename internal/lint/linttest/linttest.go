// Package linttest runs a lint.Analyzer over a fixture module and checks
// its diagnostics against expectations written in the fixture source, in
// the style of golang.org/x/tools/go/analysis/analysistest:
//
//	x := 0.5 // want `floating-point literal`
//
// Each `// want` comment holds one or more backquoted or double-quoted
// regular expressions that must match, in order, the diagnostics reported
// on that line. Diagnostics with no matching expectation and expectations
// with no matching diagnostic both fail the test.
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"testing"

	"calibsched/internal/lint"
)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile("//\\s*want\\s+((?:(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")\\s*)+)$")
var patRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads the fixture module rooted at root (with the given module
// path), applies the analyzer to the packages selected by patterns, and
// reports mismatches between diagnostics and // want expectations on t.
func Run(t *testing.T, root, modulePath string, a *lint.Analyzer, patterns ...string) {
	t.Helper()
	loader := lint.NewLoaderWithModule(root, modulePath)
	targets, err := loader.Load(patterns...)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", root, err)
	}
	if len(targets) == 0 {
		t.Fatalf("fixture %s matched no packages for %v", root, patterns)
	}
	diags, err := lint.Run(loader, targets, []*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	var wants []*expectation
	for _, tp := range targets {
		for _, check := range tp.Checks {
			for f := range check.Report {
				for _, cg := range f.Comments {
					for _, c := range cg.List {
						m := wantRE.FindStringSubmatch(c.Text)
						if m == nil {
							continue
						}
						pos := loader.Fset.Position(c.Pos())
						for _, raw := range patRE.FindAllString(m[1], -1) {
							pat, err := unquotePattern(raw)
							if err != nil {
								t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, raw, err)
							}
							re, err := regexp.Compile(pat)
							if err != nil {
								t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
							}
							wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
						}
					}
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want %s", w.file, w.line, w.re)
		}
	}
}

func unquotePattern(raw string) (string, error) {
	if raw[0] == '`' {
		return raw[1 : len(raw)-1], nil
	}
	s, err := strconv.Unquote(raw)
	if err != nil {
		return "", fmt.Errorf("unquoting: %w", err)
	}
	return s, nil
}
