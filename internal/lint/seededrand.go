package lint

import (
	"go/ast"
	"go/types"
)

// SeededRand enforces the package doc's determinism contract: every
// random stream must be an explicitly seeded *rand.Rand. It reports
//
//   - calls to the package-level functions of math/rand and math/rand/v2
//     (rand.IntN, rand.Perm, rand.Shuffle, ...), which draw from the
//     global, implicitly seeded source, and
//   - source constructors (rand.NewSource, rand.NewPCG, rand.NewChaCha8)
//     whose seed expression is derived from time.Now, which makes runs
//     unreproducible.
//
// Constructing sources and generators (rand.New, rand.NewPCG, rand.NewZipf)
// from explicit seeds is the allowed pattern; crypto/rand is out of scope.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "forbid the global math/rand source and time-derived seeds; randomness must be explicitly seeded",
	Run:  runSeededRand,
}

// randCtors are the math/rand functions that merely construct sources,
// generators, or distributions and therefore do not touch global state.
var randCtors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

func isMathRand(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2")
}

func runSeededRand(pass *Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			fn, ok := pass.Info.Uses[n.Sel].(*types.Func)
			if !ok || !isMathRand(fn.Pkg()) {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if randCtors[fn.Name()] {
				return true
			}
			pass.Reportf(n.Pos(), "rand.%s draws from the package-global, implicitly seeded source; use rand.New(rand.NewPCG(seed, ...)) with an explicit seed", fn.Name())
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || !isMathRand(fn.Pkg()) {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			switch fn.Name() {
			case "NewSource", "NewPCG", "NewChaCha8":
				for _, arg := range n.Args {
					if tn := findTimeNow(pass, arg); tn != nil {
						pass.Reportf(tn.Pos(), "seed for rand.%s derived from time.Now; pass an explicit seed so runs are reproducible", fn.Name())
					}
				}
			}
		}
		return true
	})
	return nil
}

// findTimeNow returns the first reference to time.Now inside expr, if any.
func findTimeNow(pass *Pass, expr ast.Expr) ast.Node {
	var found ast.Node
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok &&
				fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" {
				found = sel
				return false
			}
		}
		return true
	})
	return found
}
