package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// exactPkgSuffixes names the packages whose doc contract promises exact
// int64 arithmetic.
var exactPkgSuffixes = []string{
	"internal/core",
	"internal/online",
	"internal/offline",
	"internal/transform",
	"internal/lowerbound",
}

// reportingPkgSuffixes is the deliberate exemption list: packages that sit
// downstream of the exact costs and are allowed floating-point arithmetic.
// Ratios, quantiles, regression slopes (internal/stats, internal/trace),
// latency histograms and expvar gauges (internal/server/metrics), the
// load generator's throughput math (cmd/calibload), and the perf
// harness's ns/op and steps/sec reporting (cmd/calibbench) never feed
// back into a cost computation, so exactness is not part of their
// contract. Adding a package here is an explicit design decision — it
// must never also appear in exactPkgSuffixes, which init enforces.
var reportingPkgSuffixes = []string{
	"internal/stats",
	"internal/trace",
	"internal/server/metrics",
	"cmd/calibload",
	"cmd/calibbench",
}

func init() {
	for _, r := range reportingPkgSuffixes {
		for _, e := range exactPkgSuffixes {
			if r == e {
				panic("lint: " + r + " is listed as both exact and reporting")
			}
		}
	}
}

func isExactPkg(path string) bool {
	for _, s := range exactPkgSuffixes {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// isReportingPkg reports whether path is on the floating-point exemption
// list (re-exported to tests via export_test.go so coverage assertions
// can tell "exempt by design" apart from "forgot to classify").
func isReportingPkg(path string) bool {
	for _, s := range reportingPkgSuffixes {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// ExactArith reports any floating-point arithmetic inside the exact
// packages: uses of the float32/float64/complex types, float or imaginary
// literals, and variables whose inferred type is floating-point (which
// catches values laundered through calls like math.Log without a visible
// conversion). Test files are exempt — comparing a measured ratio against
// 3.0 in a test does not contaminate the costs being compared.
var ExactArith = &Analyzer{
	Name:      "exactarith",
	Doc:       "forbid floating-point types, literals, and inferred values in the exact-arithmetic packages",
	Applies:   isExactPkg,
	SkipTests: true,
	Run:       runExactArith,
}

func runExactArith(pass *Pass) error {
	floatType := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if tn, ok := pass.Info.Uses[n].(*types.TypeName); ok && tn.Pkg() == nil {
				switch tn.Name() {
				case "float32", "float64", "complex64", "complex128":
					pass.Reportf(n.Pos(), "use of %s in exact-arithmetic package (doc contract: all cost arithmetic is exact int64)", tn.Name())
				}
			}
			if obj, ok := pass.Info.Defs[n].(*types.Var); ok && obj.Type() != nil && floatType(obj.Type()) {
				pass.Reportf(n.Pos(), "%s has floating-point type %s in exact-arithmetic package", n.Name, obj.Type())
			}
		case *ast.BasicLit:
			if n.Kind == token.FLOAT || n.Kind == token.IMAG {
				pass.Reportf(n.Pos(), "floating-point literal %s in exact-arithmetic package", n.Value)
			}
		}
		return true
	})
	return nil
}
