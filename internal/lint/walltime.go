package lint

import (
	"go/ast"
	"go/types"
)

// deterministicPkgSuffixes names the packages whose outputs must be a
// pure function of their inputs: the core model, the online engines, the
// offline DP, and the simulation loop. Every differential proof in the
// repository — served-vs-batch schedules, crash-recovery replay,
// parallel-vs-memoized DP — relies on reruns being byte-identical, which
// a single wall-clock read silently breaks.
//
// internal/trace is deliberately NOT in this set: request spans exist to
// measure wall-clock latency (time.Now, time.Since are their whole
// point), and nothing deterministic consumes them — spans flow outward
// to /v1/traces and the metrics plane only. The serving layers
// (internal/server, internal/cluster, internal/store) are likewise
// outside the set for the same reason: they time real I/O.
var deterministicPkgSuffixes = []string{
	"internal/core",
	"internal/online",
	"internal/offline",
	"internal/simul",
}

func isDeterministicPkg(path string) bool {
	for _, s := range deterministicPkgSuffixes {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// wallClockFuncs are the package-level time functions that read or wait
// on the wall clock. Pure time.Duration arithmetic and type references
// stay legal — only observing real time is forbidden.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// WallTime forbids reading the wall clock inside the deterministic
// packages. Scheduling time there is the virtual step counter, never
// time.Now; wall-clock reads belong to the serving and benchmarking
// layers, which consume the deterministic results. (Wall-clock-derived
// rand seeds are seededrand's half of the same invariant.)
var WallTime = &Analyzer{
	Name:      "walltime",
	Doc:       "forbid time.Now/Since/Sleep and timer construction in the deterministic packages; scheduling time is the virtual step counter",
	Applies:   isDeterministicPkg,
	SkipTests: true,
	Run:       runWallTime,
}

func runWallTime(pass *Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true
		}
		if wallClockFuncs[fn.Name()] {
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock in a deterministic package; use the virtual step counter (byte-identical replay depends on it)", fn.Name())
		}
		return true
	})
	return nil
}
