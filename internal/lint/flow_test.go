package lint

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadFlowFixture type-checks src as the single file of a throwaway
// module and returns the loaded check, so flow tests run against real
// types.Info (sync method resolution needs it).
func loadFlowFixture(t *testing.T, src string) (*Loader, *Check) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "flow.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := NewLoaderWithModule(dir, "flowfix")
	targets, err := loader.Load(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 1 || len(targets[0].Checks) != 1 {
		t.Fatalf("fixture loaded %d targets", len(targets))
	}
	return loader, targets[0].Checks[0]
}

// heldByLine walks every function body of the check and records, per
// source line, the set of lock expressions held when a statement on that
// line begins. Lines with several statements merge their sets.
func heldByLine(loader *Loader, check *Check) map[int][]string {
	got := make(map[int]map[string]bool)
	for _, body := range FuncBodies(check.Files) {
		WalkLockState(check.Info, body, func(stmt ast.Stmt, held []HeldLock) {
			line := loader.Fset.Position(stmt.Pos()).Line
			if got[line] == nil {
				got[line] = make(map[string]bool)
			}
			for _, h := range held {
				name := h.Expr
				if h.Read {
					name += ":r"
				}
				got[line][name] = true
			}
		})
	}
	out := make(map[int][]string, len(got))
	for line, set := range got {
		var names []string
		for n := range set {
			names = append(names, n)
		}
		sort.Strings(names)
		out[line] = names
	}
	return out
}

// flowCase is one function fixture plus the expected held set per
// marked line. Markers are comments of the form //held: a,b — the
// statement on that line must begin with exactly those locks held
// (empty list via //held: none).
const flowFixture = `package flowfix

import "sync"

type T struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	ch  chan int
	n   int
}

func (t *T) Sequential() {
	t.n = 0      //held: none
	t.mu.Lock()  //held: none
	t.n++        //held: t.mu
	t.mu.Unlock() //held: t.mu
	t.n++        //held: none
}

func (t *T) Deferred() {
	t.mu.Lock()          //held: none
	defer t.mu.Unlock()  //held: t.mu
	t.n++                //held: t.mu
	if t.n > 0 {         //held: t.mu
		t.n = 2 //held: t.mu
	}
	t.n = 3 //held: t.mu
}

func (t *T) EarlyReturn() {
	t.mu.Lock() //held: none
	if t.n < 0 {
		t.mu.Unlock() //held: t.mu
		return        //held: none
	}
	t.n++         //held: t.mu
	t.mu.Unlock() //held: t.mu
	t.n--         //held: none
}

func (t *T) NestedBlocks() {
	t.mu.Lock() //held: none
	{
		t.n++ //held: t.mu
		{
			t.mu.Unlock() //held: t.mu
		}
		t.n-- //held: none
	}
	t.n = 0 //held: none
}

func (t *T) BranchLocalLock(b bool) {
	if b {
		t.mu.Lock()   //held: none
		t.n++         //held: t.mu
		t.mu.Unlock() //held: t.mu
	}
	t.n-- //held: none
}

func (t *T) ReadLock() {
	t.rw.RLock() //held: none
	t.n++        //held: t.rw:r
	t.rw.RUnlock() //held: t.rw:r
	t.n--        //held: none
}

func (t *T) TwoLocks() {
	t.mu.Lock() //held: none
	t.rw.Lock() //held: t.mu
	t.n++       //held: t.mu,t.rw
	t.rw.Unlock() //held: t.mu,t.rw
	t.n--       //held: t.mu
	t.mu.Unlock() //held: t.mu
}

func (t *T) LoopBody() {
	t.mu.Lock() //held: none
	for i := 0; i < 3; i++ {
		t.n += i //held: t.mu
	}
	t.mu.Unlock() //held: t.mu
	for {
		t.n++ //held: none
		break //held: none
	}
}

func (t *T) SelectCases(done chan struct{}) {
	t.mu.Lock()   //held: none
	t.mu.Unlock() //held: t.mu
	select {      //held: none
	case <-done:
		t.n++ //held: none
	case v := <-t.ch:
		t.n = v //held: none
	}
}

func (t *T) GoroutineOwnState() {
	t.mu.Lock() //held: none
	go func() {
		t.n++ //held: none
	}()
	t.mu.Unlock() //held: t.mu
}
`

// TestWalkLockStateSpans drives the statement-flow walker over lock and
// unlock spans with defers, early returns, nested blocks, branch-local
// locks, read locks, and multiple held mutexes, checking the held set at
// every marked line.
func TestWalkLockStateSpans(t *testing.T) {
	loader, check := loadFlowFixture(t, flowFixture)
	got := heldByLine(loader, check)

	want := make(map[int][]string)
	for i, line := range strings.Split(flowFixture, "\n") {
		_, marker, ok := strings.Cut(line, "//held: ")
		if !ok {
			continue
		}
		marker = strings.TrimSpace(marker)
		if marker == "none" {
			want[i+1] = nil
			continue
		}
		names := strings.Split(marker, ",")
		sort.Strings(names)
		want[i+1] = names
	}
	if len(want) == 0 {
		t.Fatal("fixture has no //held: markers")
	}
	for line, names := range want {
		g := got[line]
		if fmt.Sprint(g) != fmt.Sprint([]string(names)) {
			t.Errorf("line %d: held = %v, want %v", line, g, names)
		}
	}
}

// TestWalkLockStateDeferredFlag checks that a deferred unlock marks the
// held lock Deferred for the statements that follow it.
func TestWalkLockStateDeferredFlag(t *testing.T) {
	src := `package flowfix

import "sync"

var mu sync.Mutex
var n int

func f() {
	mu.Lock()
	defer mu.Unlock()
	n++
}
`
	loader, check := loadFlowFixture(t, src)
	sawDeferred := false
	for _, body := range FuncBodies(check.Files) {
		WalkLockState(check.Info, body, func(stmt ast.Stmt, held []HeldLock) {
			if loader.Fset.Position(stmt.Pos()).Line == 11 { // n++
				if len(held) != 1 {
					t.Fatalf("n++ holds %d locks, want 1", len(held))
				}
				if !held[0].Deferred {
					t.Error("lock not marked Deferred after defer mu.Unlock()")
				}
				sawDeferred = true
			}
		})
	}
	if !sawDeferred {
		t.Fatal("walker never visited the statement after the deferred unlock")
	}
}
