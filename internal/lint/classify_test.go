package lint

import "testing"

// TestPackageClassification pins the exact/reporting split: the metrics
// and stats packages are exempt from exactarith by design, the cost
// packages never are, and no package is ever both.
func TestPackageClassification(t *testing.T) {
	for _, tc := range []struct {
		path             string
		exact, reporting bool
	}{
		{"calibsched/internal/core", true, false},
		{"calibsched/internal/online", true, false},
		{"calibsched/internal/stats", false, true},
		{"calibsched/internal/trace", false, true},
		{"calibsched/internal/server/metrics", false, true},
		{"calibsched/cmd/calibload", false, true},
		{"calibsched/cmd/calibbench", false, true},
		{"calibsched/internal/server", false, false},
		{"calibsched/cmd/calibserved", false, false},
	} {
		if got := isExactPkg(tc.path); got != tc.exact {
			t.Errorf("isExactPkg(%s) = %v, want %v", tc.path, got, tc.exact)
		}
		if got := isReportingPkg(tc.path); got != tc.reporting {
			t.Errorf("isReportingPkg(%s) = %v, want %v", tc.path, got, tc.reporting)
		}
	}
}
