package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CheckedMul reports bare int64 × int64 multiplications in the exact
// packages — the weight × flow products whose silent wraparound would
// invalidate every competitive-ratio measurement — unless they occur
// inside the checked-overflow helpers themselves (core.MulCheck and
// friends). Multiplications with a compile-time-constant operand are
// allowed: the factor is visible at the call site and the compiler
// rejects constant overflow, so `2*g` stays readable while `w * flow`
// must route through core.MustMul / core.MulCheck.
var CheckedMul = &Analyzer{
	Name:      "checkedmul",
	Doc:       "route int64 cost products through the checked-overflow helpers in internal/core",
	Applies:   isExactPkg,
	SkipTests: true,
	Run:       runCheckedMul,
}

// checkedHelpers are the functions allowed to contain the one raw
// multiplication each: they are the overflow checks.
var checkedHelpers = map[string]bool{
	"MulCheck": true,
	"AddCheck": true,
}

func runCheckedMul(pass *Pass) error {
	isInt64 := func(e ast.Expr) bool {
		tv, ok := pass.Info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		return ok && b.Kind() == types.Int64
	}
	isConst := func(e ast.Expr) bool {
		tv, ok := pass.Info.Types[e]
		return ok && tv.Value != nil
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.MUL {
				return true
			}
			if !isInt64(n.X) || !isInt64(n.Y) {
				return true
			}
			if isConst(n.X) || isConst(n.Y) {
				return true
			}
			if checkedHelpers[pass.EnclosingFuncName(n.Pos())] {
				return true
			}
			pass.Reportf(n.OpPos, "unchecked int64 multiplication in exact cost path; use core.MustMul (or core.MulCheck to handle overflow)")
		case *ast.AssignStmt:
			if n.Tok != token.MUL_ASSIGN || len(n.Lhs) != 1 {
				return true
			}
			if !isInt64(n.Lhs[0]) || isConst(n.Rhs[0]) {
				return true
			}
			if checkedHelpers[pass.EnclosingFuncName(n.Pos())] {
				return true
			}
			pass.Reportf(n.TokPos, "unchecked int64 *= in exact cost path; use core.MustMul (or core.MulCheck to handle overflow)")
		}
		return true
	})
	return nil
}
