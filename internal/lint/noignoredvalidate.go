package lint

import (
	"go/ast"
	"go/types"
)

// NoIgnoredValidate enforces two error-discipline invariants everywhere
// in the module:
//
//   - the error results of core.Validate and core.NewInstance must never
//     be dropped — not as a bare expression statement, not assigned to
//     the blank identifier. A schedule that skipped validation is exactly
//     the kind of silently-wrong artifact the suite exists to prevent.
//   - a raw error value must not be fed to panic outside a Must*-named
//     helper: either return the error or panic with a contextual message.
//     (Assertion panics with string messages remain idiomatic.) This rule
//     is relaxed in _test.go compilations, where Example functions have
//     no *testing.T and panic(err) is the documented idiom.
var NoIgnoredValidate = &Analyzer{
	Name: "noignoredvalidate",
	Doc:  "forbid dropped core.Validate/core.NewInstance errors and panic(err) outside Must* helpers",
	Run:  runNoIgnoredValidate,
}

// coreFunc returns the name of the core validation function a call
// expression invokes ("Validate" or "NewInstance"), or "".
func coreFunc(pass *Pass, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return ""
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || !pathHasSuffix(fn.Pkg().Path(), "internal/core") {
		return ""
	}
	switch fn.Name() {
	case "Validate", "NewInstance":
		return fn.Name()
	}
	return ""
}

func runNoIgnoredValidate(pass *Pass) error {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if name := coreFunc(pass, call); name != "" {
					pass.Reportf(n.Pos(), "result of core.%s discarded; the error must be checked", name)
				}
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			name := coreFunc(pass, call)
			if name == "" {
				return true
			}
			// The error is the last result of both functions.
			errPos := len(n.Lhs) - 1
			if id, ok := n.Lhs[errPos].(*ast.Ident); ok && id.Name == "_" {
				pass.Reportf(id.Pos(), "error from core.%s assigned to the blank identifier; the error must be checked", name)
			}
		case *ast.CallExpr:
			if pass.Test {
				return true
			}
			id, ok := n.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" || len(n.Args) != 1 {
				return true
			}
			if obj := pass.Info.Uses[id]; obj == nil || obj != types.Universe.Lookup("panic") {
				return true
			}
			tv, ok := pass.Info.Types[n.Args[0]]
			if !ok || tv.Type == nil || !types.Implements(tv.Type, errType) {
				return true
			}
			if fn := pass.EnclosingFuncName(n.Pos()); len(fn) >= 4 && fn[:4] == "Must" {
				return true
			}
			pass.Reportf(n.Pos(), "panic with a raw error value outside a Must* helper; return the error or panic with a contextual message")
		}
		return true
	})
	return nil
}
