package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks the packages of a single Go module using
// only the standard library: module-internal imports are resolved
// recursively against the module root, and standard-library imports are
// type-checked from $GOROOT source via go/importer's "source" compiler.
// Third-party imports are unsupported (the repo deliberately has none).
type Loader struct {
	// ModuleRoot is the absolute directory containing the module.
	ModuleRoot string
	// ModulePath is the module's import path prefix (go.mod "module" line).
	ModulePath string
	// Fset is shared by every file the loader touches, so positions from
	// any check are comparable.
	Fset *token.FileSet

	std     types.Importer
	deps    map[string]*depPackage
	loading map[string]bool
}

// depPackage is the library (non-test) compilation of one module package,
// reused both as an import dependency and as the lib check of a target.
type depPackage struct {
	path  string
	dir   string
	files []*ast.File
	tpkg  *types.Package
	info  *types.Info
}

// Check is one type-checked file set of a target package. A target package
// yields up to three checks: the library files, the library files plus
// in-package _test.go files, and the external (package foo_test) files.
// Report holds the subset of Files that diagnostics should be attributed
// to, so a file checked under several compilations is reported once.
type Check struct {
	Pkg    *types.Package
	Info   *types.Info
	Files  []*ast.File
	Report map[*ast.File]bool
	// Test is true for the two test-file checks.
	Test bool
}

// TargetPackage is one package selected by a load pattern, with every
// compilation unit the go tool would build for it.
type TargetPackage struct {
	Path   string
	Dir    string
	Checks []*Check
}

// NewLoader returns a loader for the module rooted at root, reading the
// module path from root/go.mod.
func NewLoader(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return NewLoaderWithModule(root, strings.TrimSpace(rest)), nil
		}
	}
	return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// NewLoaderWithModule returns a loader with an explicit module path, for
// fixture trees that carry no go.mod of their own.
func NewLoaderWithModule(root, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modulePath,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		deps:       make(map[string]*depPackage),
		loading:    make(map[string]bool),
	}
}

// Import implements types.Importer, chaining module-internal paths to the
// loader's own recursive type-checker and everything else to the
// standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		dep, err := l.loadDep(path)
		if err != nil {
			return nil, err
		}
		return dep.tpkg, nil
	}
	return l.std.Import(path)
}

func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
}

// loadDep parses and type-checks the library files of the module package
// with the given import path, memoized per loader.
func (l *Loader) loadDep(path string) (*depPackage, error) {
	if dep, ok := l.deps[path]; ok {
		return dep, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	files, err := l.parseDir(dir, func(name string) bool {
		return !strings.HasSuffix(name, "_test.go")
	})
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go library files in %s", dir)
	}
	tpkg, info, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	dep := &depPackage{path: path, dir: dir, files: files, tpkg: tpkg, info: info}
	l.deps[path] = dep
	return dep, nil
}

// check type-checks files as package path, returning every soft error the
// checker reports joined into one.
func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var errs []string
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			errs = append(errs, err.Error())
		},
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(errs) > 0 {
		return nil, nil, fmt.Errorf("lint: type-checking %s:\n\t%s", path, strings.Join(errs, "\n\t"))
	}
	return tpkg, info, nil
}

func (l *Loader) parseDir(dir string, keep func(name string) bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !keep(name) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// Load resolves patterns into fully type-checked target packages. A
// pattern is a module-root-relative directory ("internal/core", "." for
// the root package) or a recursive form ending in "/..." ("./..." selects
// every package in the module). Directories named testdata and hidden or
// underscore-prefixed directories are never walked.
func (l *Loader) Load(patterns ...string) ([]*TargetPackage, error) {
	dirSet := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !dirSet[dir] {
			dirSet[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			base := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if ok, err := hasGoFiles(p); err != nil {
					return err
				} else if ok {
					add(p)
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
		} else {
			add(filepath.Join(l.ModuleRoot, filepath.FromSlash(pat)))
		}
	}
	sort.Strings(dirs)

	var targets []*TargetPackage
	for _, dir := range dirs {
		tp, err := l.loadTarget(dir)
		if err != nil {
			return nil, err
		}
		if tp != nil {
			targets = append(targets, tp)
		}
	}
	return targets, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true, nil
		}
	}
	return false, nil
}

// loadTarget builds the up-to-three compilation checks of the package in
// dir. It returns nil for a directory with no Go files.
func (l *Loader) loadTarget(dir string) (*TargetPackage, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	path := l.ModulePath
	if rel != "." {
		path += "/" + filepath.ToSlash(rel)
	}

	testFiles, err := l.parseDir(dir, func(name string) bool {
		return strings.HasSuffix(name, "_test.go")
	})
	if err != nil {
		return nil, err
	}
	var inTests, extTests []*ast.File
	for _, f := range testFiles {
		if strings.HasSuffix(f.Name.Name, "_test") {
			extTests = append(extTests, f)
		} else {
			inTests = append(inTests, f)
		}
	}

	tp := &TargetPackage{Path: path, Dir: dir}

	libOK, err := hasLibFiles(dir)
	if err != nil {
		return nil, err
	}
	var dep *depPackage
	if libOK {
		dep, err = l.loadDep(path)
		if err != nil {
			return nil, err
		}
		tp.Checks = append(tp.Checks, &Check{
			Pkg:    dep.tpkg,
			Info:   dep.info,
			Files:  dep.files,
			Report: fileSet(dep.files),
		})
	}
	if len(inTests) > 0 {
		var files []*ast.File
		if dep != nil {
			files = append(files, dep.files...)
		}
		files = append(files, inTests...)
		tpkg, info, err := l.check(path, files)
		if err != nil {
			return nil, err
		}
		tp.Checks = append(tp.Checks, &Check{
			Pkg:    tpkg,
			Info:   info,
			Files:  files,
			Report: fileSet(inTests),
			Test:   true,
		})
	}
	if len(extTests) > 0 {
		tpkg, info, err := l.check(path+"_test", extTests)
		if err != nil {
			return nil, err
		}
		tp.Checks = append(tp.Checks, &Check{
			Pkg:    tpkg,
			Info:   info,
			Files:  extTests,
			Report: fileSet(extTests),
			Test:   true,
		})
	}
	if len(tp.Checks) == 0 {
		return nil, nil
	}
	return tp, nil
}

func hasLibFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true, nil
		}
	}
	return false, nil
}

func fileSet(files []*ast.File) map[*ast.File]bool {
	m := make(map[*ast.File]bool, len(files))
	for _, f := range files {
		m[f] = true
	}
	return m
}
