package lint_test

import (
	"path/filepath"
	"testing"

	"calibsched/internal/lint"
	"calibsched/internal/lint/linttest"
)

// Each fixture module demonstrates at least one caught violation (a
// // want expectation) and at least one allowed pattern (code carrying
// no expectation that must stay diagnostic-free).

func TestExactArithFixture(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "exactarith"), "fix", lint.ExactArith, "./...")
}

func TestSeededRandFixture(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "seededrand"), "fix", lint.SeededRand, "./...")
}

func TestCheckedMulFixture(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "checkedmul"), "fix", lint.CheckedMul, "./...")
}

func TestNoIgnoredValidateFixture(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "noignoredvalidate"), "fix", lint.NoIgnoredValidate, "./...")
}

func TestLockHoldFixture(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "lockhold"), "fix", lint.LockHold, "./...")
}

func TestGoroutineStopFixture(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "goroutinestop"), "fix", lint.GoroutineStop, "./...")
}

func TestDurableSyncFixture(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "durablesync"), "fix", lint.DurableSync, "./...")
}

func TestWallTimeFixture(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "walltime"), "fix", lint.WallTime, "./...")
}

// TestAnalyzerMetadata pins the suite's shape: distinct names (directives
// address analyzers by name) and documented invariants.
func TestAnalyzerMetadata(t *testing.T) {
	if len(lint.Analyzers) != 8 {
		t.Fatalf("suite has %d analyzers, want 8", len(lint.Analyzers))
	}
	seen := make(map[string]bool)
	for _, a := range lint.Analyzers {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
