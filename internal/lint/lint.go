// Package lint is a self-contained static-analysis framework plus the
// analyzer suite that mechanically enforces this repository's correctness
// invariants: exact int64 arithmetic, explicitly seeded randomness,
// overflow-checked cost products, and never-dropped validation errors.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis —
// Analyzer values with a Run function over a type-checked Pass — but is
// built only on the standard library (go/parser, go/types, and the
// "source" go/importer), so the module keeps its zero-dependency policy.
//
// A diagnostic can be suppressed at a specific site with a directive
// comment on the offending line or the line directly above it:
//
//	total := a * b //caliblint:allow checkedmul -- proven in range
//
// The directive names one analyzer, a comma-separated list, or "all".
// Suppressions are deliberate, greppable exceptions; the analyzers' own
// scoping (exact-arithmetic package list, test-file exemptions) should
// cover everything routine.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Applies restricts the analyzer to packages whose import path it
	// accepts; nil means every package.
	Applies func(pkgPath string) bool
	// SkipTests excludes _test.go compilations entirely: invariants about
	// production arithmetic do not bind test assertions.
	SkipTests bool
	// Run inspects one type-checked compilation and reports violations.
	Run func(*Pass) error
}

// Pass is one analyzer run over one type-checked compilation unit.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Test is true when the pass covers a _test.go compilation, letting
	// analyzers relax individual rules for tests without skipping the
	// whole file set the way SkipTests does.
	Test bool

	report func(token.Pos, string)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// Inspect walks every file of the pass in source order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// EnclosingFuncName returns the name of the innermost named function or
// method declaration containing pos, or "" at package scope. Function
// literals are attributed to the named declaration they appear in.
func (p *Pass) EnclosingFuncName(pos token.Pos) string {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
					return fd.Name.Name
				}
			}
		}
	}
	return ""
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

var directiveRE = regexp.MustCompile(`^//caliblint:allow\s+([a-z0-9_,\s]+?)\s*(?:--.*)?$`)

// lineKey identifies a single source line; suppressions must be keyed by
// file AND line, or a waiver in one file would silently blanket the same
// line numbers in every other file of the package.
type lineKey struct {
	file string
	line int
}

// allowedLines maps source lines to the analyzer names a directive
// suppresses on that line. A directive on line L suppresses lines L and
// L+1 of its own file, so it can sit on the offending line or directly
// above it.
func allowedLines(fset *token.FileSet, files []*ast.File) map[lineKey]map[string]bool {
	allowed := make(map[lineKey]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				names := make(map[string]bool)
				for _, n := range strings.Split(m[1], ",") {
					if n = strings.TrimSpace(n); n != "" {
						names[n] = true
					}
				}
				pos := fset.Position(c.Pos())
				for _, l := range []int{pos.Line, pos.Line + 1} {
					k := lineKey{pos.Filename, l}
					if allowed[k] == nil {
						allowed[k] = make(map[string]bool)
					}
					for n := range names {
						allowed[k][n] = true
					}
				}
			}
		}
	}
	return allowed
}

// Run executes the analyzers over the loaded targets and returns every
// unsuppressed diagnostic, sorted by position.
func Run(loader *Loader, targets []*TargetPackage, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	seen := make(map[Diagnostic]bool)
	for _, tp := range targets {
		for _, check := range tp.Checks {
			allowed := allowedLines(loader.Fset, check.Files)
			reportable := make(map[string]bool, len(check.Report))
			for f := range check.Report {
				reportable[loader.Fset.Position(f.Pos()).Filename] = true
			}
			for _, a := range analyzers {
				if a.SkipTests && check.Test {
					continue
				}
				if a.Applies != nil && !a.Applies(tp.Path) {
					continue
				}
				pass := &Pass{
					Analyzer: a,
					Fset:     loader.Fset,
					Files:    check.Files,
					Pkg:      check.Pkg,
					Info:     check.Info,
					Test:     check.Test,
				}
				pass.report = func(pos token.Pos, msg string) {
					p := loader.Fset.Position(pos)
					if !reportable[p.Filename] {
						return
					}
					if names := allowed[lineKey{p.Filename, p.Line}]; names != nil && (names[a.Name] || names["all"]) {
						return
					}
					d := Diagnostic{Pos: p, Analyzer: a.Name, Message: msg}
					if !seen[d] {
						seen[d] = true
						diags = append(diags, d)
					}
				}
				if err := a.Run(pass); err != nil {
					return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, tp.Path, err)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// pathHasSuffix reports whether path ends with the package-path suffix s
// at a component boundary ("x/internal/core" matches "internal/core";
// "x/myinternal/core" does not).
func pathHasSuffix(path, s string) bool {
	return path == s || strings.HasSuffix(path, "/"+s)
}

// Analyzers is the full caliblint suite in reporting order: the arithmetic
// and determinism contracts (PR 1), then the concurrency and durability
// contracts over the serving planes.
var Analyzers = []*Analyzer{
	ExactArith,
	SeededRand,
	CheckedMul,
	NoIgnoredValidate,
	LockHold,
	GoroutineStop,
	DurableSync,
	WallTime,
}
