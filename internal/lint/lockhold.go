package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// concurrentPkgSuffixes names the packages whose locks guard the serving
// hot paths: the session manager, the solver pool, the trace rings, the
// metrics plane, and the persistence layer. Holding one of their mutexes
// across a blocking operation stalls every session or solve sharing the
// lock — the exact failure mode group-commit and multi-node migration
// (ROADMAP items 1–2) will make catastrophic rather than slow.
var concurrentPkgSuffixes = []string{
	"internal/cluster",
	"internal/server",
	"internal/server/metrics",
	"internal/solve",
	"internal/store",
	"internal/trace",
}

func isConcurrentPkg(path string) bool {
	for _, s := range concurrentPkgSuffixes {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// LockHold reports blocking operations performed while a sync.Mutex or
// sync.RWMutex is held: channel sends and receives, range over a channel,
// select statements without a default case, sync waits
// ((*sync.WaitGroup).Wait, (*sync.Cond).Wait), time.Sleep, and file or
// network I/O (calls into os, net, or net/http, minus a short list of
// non-blocking accessors). Lock spans are tracked intra-procedurally by
// the statement-flow walker (see flow.go): an explicit Unlock ends the
// span, a deferred Unlock extends it to the end of the function, and
// branch bodies do not leak state onto the fall-through path. A send or
// receive that is the comm clause of a select with a default case is
// non-blocking and not reported.
var LockHold = &Analyzer{
	Name:      "lockhold",
	Doc:       "forbid blocking operations (channel ops, selects without default, sync waits, file/network I/O) while a mutex is held",
	Applies:   isConcurrentPkg,
	SkipTests: true,
	Run:       runLockHold,
}

// nonBlockingOSFuncs are package-level os functions that read process
// state rather than touching the filesystem.
var nonBlockingOSFuncs = map[string]bool{
	"Getenv":       true,
	"LookupEnv":    true,
	"Environ":      true,
	"Getpid":       true,
	"Getppid":      true,
	"Getuid":       true,
	"Geteuid":      true,
	"Getgid":       true,
	"Getegid":      true,
	"Exit":         true,
	"IsNotExist":   true,
	"IsExist":      true,
	"IsPermission": true,
	"IsTimeout":    true,
	"TempDir":      true,
	"Expand":       true,
	"ExpandEnv":    true,
}

func runLockHold(pass *Pass) error {
	for _, body := range FuncBodies(pass.Files) {
		WalkLockState(pass.Info, body, func(stmt ast.Stmt, held []HeldLock) {
			if len(held) == 0 {
				return
			}
			lock := held[len(held)-1]
			switch s := stmt.(type) {
			case *ast.SendStmt:
				pass.Reportf(s.Arrow, "channel send while %s is held (locked at %s); release the lock before blocking",
					lock.Expr, pass.Fset.Position(lock.Pos))
			case *ast.SelectStmt:
				if !selectHasDefault(s) {
					pass.Reportf(s.Select, "select without default while %s is held (locked at %s); the select can block indefinitely",
						lock.Expr, pass.Fset.Position(lock.Pos))
				}
				return // comm clauses are the select's own semantics
			case *ast.RangeStmt:
				if tv, ok := pass.Info.Types[s.X]; ok && tv.Type != nil {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						pass.Reportf(s.For, "range over a channel while %s is held (locked at %s); each iteration can block",
							lock.Expr, pass.Fset.Position(lock.Pos))
					}
				}
			}
			shallowInspect(stmt, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						pass.Reportf(n.OpPos, "channel receive while %s is held (locked at %s); release the lock before blocking",
							lock.Expr, pass.Fset.Position(lock.Pos))
					}
				case *ast.CallExpr:
					if why := blockingCall(pass.Info, n); why != "" {
						pass.Reportf(n.Pos(), "%s while %s is held (locked at %s); release the lock before blocking",
							why, lock.Expr, pass.Fset.Position(lock.Pos))
					}
				}
				return true
			})
		})
	}
	return nil
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingCall classifies a call as a blocking operation, returning a
// short description or "".
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	switch fn.Pkg().Path() {
	case "sync":
		if fn.Name() == "Wait" {
			return "sync wait (" + types.ExprString(sel.X) + ".Wait)"
		}
	case "time":
		if !isMethod && fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	case "os", "net", "net/http":
		if fn.Pkg().Path() == "os" && !isMethod && nonBlockingOSFuncs[fn.Name()] {
			return ""
		}
		return fn.Pkg().Name() + " I/O (" + fn.Pkg().Name() + "." + fn.Name() + ")"
	}
	return ""
}
