package lint

import (
	"go/ast"
	"go/types"
)

// MustCheckCallee names functions or methods whose return value (which
// includes an error or a byte count) must never be discarded. It is the
// configuration unit of NewMustCheckAnalyzer, the generalization of
// noignoredvalidate's hard-wired core.Validate/core.NewInstance rule to
// arbitrary callee sets.
type MustCheckCallee struct {
	// PkgSuffix matches the callee's package path at a component boundary
	// ("os" matches the standard library's os; "internal/store" matches
	// calibsched/internal/store and a fixture module's fix/internal/store).
	PkgSuffix string
	// Type is the receiver type name for methods; "" matches package-level
	// functions.
	Type string
	// Methods are the function or method names covered.
	Methods []string
}

func (c MustCheckCallee) matches(fn *types.Func) bool {
	if fn.Pkg() == nil || !pathHasSuffix(fn.Pkg().Path(), c.PkgSuffix) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if c.Type == "" {
		if sig.Recv() != nil {
			return false
		}
	} else {
		if sig.Recv() == nil {
			return false
		}
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok || named.Obj().Name() != c.Type {
			return false
		}
	}
	for _, m := range c.Methods {
		if fn.Name() == m {
			return true
		}
	}
	return false
}

// NewMustCheckAnalyzer builds an analyzer that forbids discarding the
// results of the configured callees: as a bare expression statement, via
// assignment of the trailing result to the blank identifier, or through
// defer/go (where Go itself throws the return value away).
func NewMustCheckAnalyzer(name, doc string, applies func(string) bool, callees []MustCheckCallee) *Analyzer {
	return &Analyzer{
		Name:      name,
		Doc:       doc,
		Applies:   applies,
		SkipTests: true,
		Run: func(pass *Pass) error {
			return runMustCheck(pass, callees)
		},
	}
}

// calleeName returns "pkg.Fn" or "Type.Method" for diagnostics.
func calleeName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

func runMustCheck(pass *Pass, callees []MustCheckCallee) error {
	match := func(call *ast.CallExpr) *types.Func {
		var id *ast.Ident
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			id = fun.Sel
		case *ast.Ident:
			id = fun
		default:
			return nil
		}
		fn, ok := pass.Info.Uses[id].(*types.Func)
		if !ok {
			return nil
		}
		for _, c := range callees {
			if c.matches(fn) {
				return fn
			}
		}
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if fn := match(call); fn != nil {
					pass.Reportf(n.Pos(), "result of %s discarded; durability errors must be checked or explicitly waived with a rationale directive", calleeName(fn))
				}
			}
		case *ast.DeferStmt:
			if fn := match(n.Call); fn != nil {
				pass.Reportf(n.Pos(), "defer discards the result of %s; capture it in a deferred closure or waive with a rationale directive", calleeName(fn))
			}
		case *ast.GoStmt:
			if fn := match(n.Call); fn != nil {
				pass.Reportf(n.Pos(), "go discards the result of %s; run it synchronously or capture the error", calleeName(fn))
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := match(call)
			if fn == nil {
				return true
			}
			// The error (or sole result) is the trailing result of every
			// configured callee; dropping it to _ is the violation.
			if id, ok := n.Lhs[len(n.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
				pass.Reportf(id.Pos(), "trailing result of %s assigned to the blank identifier; durability errors must be checked", calleeName(fn))
			}
		}
		return true
	})
	return nil
}

// durablePkgSuffixes scopes DurableSync to the write-ahead-log and
// snapshot paths: the store itself and the serving layer that drives it.
var durablePkgSuffixes = []string{
	"internal/cluster",
	"internal/store",
	"internal/server",
}

func isDurablePkg(path string) bool {
	for _, s := range durablePkgSuffixes {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// durableCallees is the configured must-check set: the os.File operations
// the WAL and snapshot code performs, and the store.Log API the server
// calls. A dropped Sync or Close on these paths silently converts
// "durable" into "probably durable" — the exact bug class ROADMAP's
// group-commit work would amplify.
var durableCallees = []MustCheckCallee{
	{PkgSuffix: "os", Type: "File", Methods: []string{"Write", "WriteString", "Sync", "Close", "Truncate"}},
	{PkgSuffix: "internal/store", Type: "Log", Methods: []string{
		"Sync", "Close", "WriteSnapshot", "AppendCreate", "AppendArrivals", "AppendSteps"}},
	// The group committer: a dropped commit result acknowledges a record
	// the shared journal fsync may have failed, and a dropped journal
	// write/sync result is the same bug one layer down.
	{PkgSuffix: "internal/store", Type: "Committer", Methods: []string{"commit"}},
	{PkgSuffix: "internal/store", Type: "journal", Methods: []string{"write"}},
	{PkgSuffix: "internal/store", Type: "Log", Methods: []string{"writeFrame", "fileSync"}},
}

// DurableSync forbids dropping the return values of file and WAL
// operations on the persistence paths. See NewMustCheckAnalyzer for the
// mechanism and durableCallees for the configured set.
var DurableSync = NewMustCheckAnalyzer(
	"durablesync",
	"never drop File.Write/Sync/Close or store.Log results on WAL and snapshot paths",
	isDurablePkg,
	durableCallees,
)
