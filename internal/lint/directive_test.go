package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"sort"
	"testing"
)

// parseForDirectives parses src and returns the fset and file for
// directive-scope assertions.
func parseForDirectives(t *testing.T, src string) (map[int][]string, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	allowed := allowedLines(fset, []*ast.File{f})
	out := make(map[int][]string, len(allowed))
	for k, names := range allowed {
		var ns []string
		for n := range names {
			ns = append(ns, n)
		}
		sort.Strings(ns)
		out[k.line] = ns
	}
	return out, fset
}

// TestDirectiveParsing covers the //caliblint:allow grammar edge cases:
// a single analyzer, comma-separated lists (with and without spaces),
// "all", a trailing "-- rationale", and malformed directives that must
// be ignored rather than suppress anything. Each case is parsed on its
// own so overlapping L/L+1 spans cannot mask a wrong expectation.
func TestDirectiveParsing(t *testing.T) {
	cases := []struct {
		name    string
		comment string
		want    []string // nil: the directive must be ignored entirely
	}{
		{"single name", "//caliblint:allow exactarith", []string{"exactarith"}},
		{"comma list", "//caliblint:allow exactarith,checkedmul", []string{"checkedmul", "exactarith"}},
		{"comma list with spaces", "//caliblint:allow exactarith, checkedmul , seededrand",
			[]string{"checkedmul", "exactarith", "seededrand"}},
		{"all", "//caliblint:allow all", []string{"all"}},
		{"trailing rationale", "//caliblint:allow lockhold -- held lock is a spinlock; bounded by construction",
			[]string{"lockhold"}},
		{"rationale without spaces", "//caliblint:allow walltime--clock reads are replayed from the trace",
			[]string{"walltime"}},
		{"fused keyword", "//caliblint:allowexactarith", nil},
		{"space after slashes", "// caliblint:allow exactarith", nil},
		{"empty name list", "//caliblint:allow", nil},
		{"rationale only", "//caliblint:allow -- why though", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := "package d\n\nvar x = 1 " + tc.comment + "\n"
			got, _ := parseForDirectives(t, src)
			if tc.want == nil {
				if len(got) != 0 {
					t.Fatalf("malformed directive suppressed %v, want nothing", got)
				}
				return
			}
			if !reflect.DeepEqual(got[3], tc.want) {
				t.Errorf("directive line allowed %v, want %v", got[3], tc.want)
			}
			if !reflect.DeepEqual(got[4], tc.want) {
				t.Errorf("following line allowed %v, want %v", got[4], tc.want)
			}
		})
	}
}

// TestDirectiveLineScope pins the L/L+1 rule: a directive on line L
// suppresses diagnostics on L and L+1 only — not L-1, not L+2.
func TestDirectiveLineScope(t *testing.T) {
	src := `package d

var before = 1
//caliblint:allow checkedmul -- applies to this line and the next
var on = 2
var after = 3
`
	got, _ := parseForDirectives(t, src)
	if _, ok := got[3]; ok {
		t.Error("line above the directive must not be suppressed")
	}
	if !reflect.DeepEqual(got[4], []string{"checkedmul"}) {
		t.Errorf("directive line: allowed %v, want [checkedmul]", got[4])
	}
	if !reflect.DeepEqual(got[5], []string{"checkedmul"}) {
		t.Errorf("line after the directive: allowed %v, want [checkedmul]", got[5])
	}
	if _, ok := got[6]; ok {
		t.Error("two lines below the directive must not be suppressed")
	}
}

// TestDirectiveFileScope pins that suppression is scoped to the
// directive's own file: a waiver on line L of one file must not blanket
// line L (or L+1) of every other file in the package. This regressed
// silently until the durablesync committer fixture happened to place a
// violation on the same line number as a waiver in a sibling file.
func TestDirectiveFileScope(t *testing.T) {
	fset := token.NewFileSet()
	parse := func(name, src string) *ast.File {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	a := parse("a.go", "package d\n\nvar x = 1 //caliblint:allow checkedmul -- fine here\n")
	b := parse("b.go", "package d\n\nvar y = 2\nvar z = 3\n")
	allowed := allowedLines(fset, []*ast.File{a, b})
	if names := allowed[lineKey{"a.go", 3}]; names == nil || !names["checkedmul"] {
		t.Errorf("a.go:3 not suppressed by its own directive: %v", names)
	}
	for _, l := range []int{3, 4} {
		if names, ok := allowed[lineKey{"b.go", l}]; ok {
			t.Errorf("directive in a.go leaked into b.go:%d: %v", l, names)
		}
	}
}

// TestDirectiveRationaleNotParsedAsNames ensures the "-- rationale" tail
// never leaks into the analyzer name list, including rationales that
// themselves contain commas and analyzer-like words.
func TestDirectiveRationaleNotParsedAsNames(t *testing.T) {
	src := `package d

var x = 1 //caliblint:allow durablesync -- close, sync, and walltime are all fine here
`
	got, _ := parseForDirectives(t, src)
	if !reflect.DeepEqual(got[3], []string{"durablesync"}) {
		t.Errorf("allowed %v, want [durablesync] only", got[3])
	}
}

// TestEnclosingFuncNameNestedLiterals pins the attribution rule:
// function literals belong to the named declaration they appear in, at
// any nesting depth, and package-scope positions return "".
func TestEnclosingFuncNameNestedLiterals(t *testing.T) {
	src := `package d

var pkgVar = 1

func Outer() func() {
	inner := func() {
		nested := func() int {
			return pkgVar
		}
		_ = nested()
	}
	return inner
}

func (r recv) Method() {
	f := func() {}
	f()
}

type recv struct{}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{Fset: fset, Files: []*ast.File{f}}

	// Find positions by line: 8 is inside the doubly-nested literal,
	// 3 is package scope, 16 is inside Method's literal.
	posAtLine := func(line int) token.Pos {
		file := fset.File(f.Pos())
		return file.LineStart(line) + 4
	}
	if got := pass.EnclosingFuncName(posAtLine(8)); got != "Outer" {
		t.Errorf("doubly-nested literal attributed to %q, want Outer", got)
	}
	if got := pass.EnclosingFuncName(posAtLine(3)); got != "" {
		t.Errorf("package scope attributed to %q, want \"\"", got)
	}
	if got := pass.EnclosingFuncName(posAtLine(16)); got != "Method" {
		t.Errorf("method literal attributed to %q, want Method", got)
	}
}
