// Package baseline implements the naive comparators the paper's online
// algorithms are measured against in experiment E9: calibrate-on-demand,
// keep-always-calibrated, periodic calibration, and the pure ski-rental
// flow threshold (the latter via online.WithFlowTriggerOnly).
//
// None of these has a constant competitive ratio: Immediate over-pays for
// calibrations on sparse traffic (ratio grows like G), AlwaysCalibrated
// over-pays on any gap, and Periodic needs its period tuned per instance.
// The experiments quantify exactly that.
package baseline

import (
	"fmt"

	"calibsched/internal/core"
	"calibsched/internal/online"
	"calibsched/internal/queue"
	"calibsched/internal/simul"
)

// Immediate schedules every job as early as possible, calibrating machines
// round-robin the moment a waiting job has no calibrated slot. Flow is
// minimal (every job runs at release, up to machine contention) but the
// calibration bill is unbounded relative to OPT on sparse instances.
func Immediate(in *core.Instance, g int64) (*core.Schedule, error) {
	if g < 0 {
		return nil, fmt.Errorf("baseline: negative G %d", g)
	}
	q := queue.NewJobQueue(queue.ByWeightDesc)
	arr := simul.NewArrivals(in)
	sched := core.NewSchedule(in.N())
	ends := make([]int64, in.P) // one past each machine's calibrated horizon
	rr := 0

	t := int64(0)
	for arr.Remaining() > 0 || !q.Empty() {
		if q.Empty() {
			nt, ok := arr.NextTime()
			if !ok {
				break
			}
			if nt > t {
				t = nt
			}
		}
		for _, j := range arr.PopAt(t) {
			q.Push(j)
		}
		// Run on already-calibrated machines first, then calibrate fresh
		// ones on demand.
		for m := 0; m < in.P && !q.Empty(); m++ {
			if t < ends[m] {
				j := q.Pop()
				sched.Assign(j.ID, m, t)
			}
		}
		for !q.Empty() {
			m := rr % in.P
			rr++
			if t < ends[m] {
				// Already calibrated and already used this step; with all
				// machines busy the remaining jobs wait one step.
				break
			}
			sched.Calibrate(m, t)
			ends[m] = t + in.T
			j := q.Pop()
			sched.Assign(j.ID, m, t)
		}
		if q.Empty() {
			continue // jump to next arrival at loop top
		}
		t++
	}
	return sched, nil
}

// AlwaysCalibrated keeps one machine calibrated back-to-back from the first
// release until every job is scheduled, assigning jobs per Observation 2.1.
// For P > 1 the extra machines are calibrated in the same back-to-back
// pattern only as capacity demands (round-robin placement by AssignTimes).
func AlwaysCalibrated(in *core.Instance, g int64) (*core.Schedule, error) {
	if g < 0 {
		return nil, fmt.Errorf("baseline: negative G %d", g)
	}
	if in.N() == 0 {
		return core.NewSchedule(0), nil
	}
	first := in.Jobs[0].Release
	return growCalendar(in, func(k int) []int64 {
		times := make([]int64, k)
		for i := range times {
			times[i] = first + int64(i/in.P)*in.T
		}
		return times
	})
}

// Periodic calibrates with a fixed stride: calibration i starts at
// first-release + i*period (machines round-robin), extending the calendar
// just far enough to fit all jobs. period < T overlaps (wasteful), period >
// T leaves gaps (jobs wait).
func Periodic(in *core.Instance, g, period int64) (*core.Schedule, error) {
	if g < 0 {
		return nil, fmt.Errorf("baseline: negative G %d", g)
	}
	if period < 1 {
		return nil, fmt.Errorf("baseline: period %d, want >= 1", period)
	}
	if in.N() == 0 {
		return core.NewSchedule(0), nil
	}
	first := in.Jobs[0].Release
	return growCalendar(in, func(k int) []int64 {
		times := make([]int64, k)
		for i := range times {
			times[i] = first + int64(i)*period
		}
		return times
	})
}

// FlowThreshold is the pure ski-rental strategy: wait until the queued
// jobs' prospective flow reaches G, then calibrate. It is Algorithm 1/2
// with every other trigger disabled. Weighted instances use Algorithm 2's
// heaviest-first service order.
func FlowThreshold(in *core.Instance, g int64) (*core.Schedule, error) {
	if in.P != 1 {
		return nil, fmt.Errorf("baseline: FlowThreshold is single-machine, got P=%d", in.P)
	}
	var res *online.Result
	var err error
	if in.Unweighted() {
		res, err = online.Alg1(in, g, online.WithFlowTriggerOnly())
	} else {
		res, err = online.Alg2(in, g, online.WithFlowTriggerOnly())
	}
	if err != nil {
		return nil, err
	}
	return res.Schedule, nil
}

// growCalendar finds the smallest k such that the calendar produced by
// mk(k) can schedule every job, and returns the Observation 2.1 assignment
// for it. mk must produce calendars whose capacity is unbounded in k.
func growCalendar(in *core.Instance, mk func(k int) []int64) (*core.Schedule, error) {
	lastRelease := in.MaxRelease()
	for k := 1; ; k++ {
		times := mk(k)
		// Cheap necessary conditions before attempting assignment: enough
		// slots, and coverage reaching the last release.
		if int64(k)*in.T < int64(in.N()) {
			continue
		}
		if times[len(times)-1]+in.T <= lastRelease {
			continue
		}
		s, err := online.AssignTimes(in, times)
		if err == nil {
			return s, nil
		}
		if k > in.P*(4*in.N()+int(lastRelease/in.T)+8) {
			return nil, fmt.Errorf("baseline: calendar did not become feasible (bug in generator): %w", err)
		}
	}
}
