package baseline

import (
	"math/rand/v2"
	"testing"

	"calibsched/internal/core"
	"calibsched/internal/online"
)

func randInstance(rng *rand.Rand, p int, weighted bool) *core.Instance {
	n := 1 + rng.IntN(15)
	releases := make([]int64, n)
	weights := make([]int64, n)
	for i := range releases {
		releases[i] = int64(rng.IntN(40))
		weights[i] = 1
		if weighted {
			weights[i] = 1 + int64(rng.IntN(5))
		}
	}
	return core.MustInstance(p, int64(1+rng.IntN(6)), releases, weights).Canonicalize()
}

func TestImmediateSchedulesAtReleaseSingleMachine(t *testing.T) {
	in := core.MustInstance(1, 4, []int64{0, 7, 20}, []int64{1, 1, 1})
	s, err := Immediate(in, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Validate(in, s); err != nil {
		t.Fatal(err)
	}
	for _, j := range in.Jobs {
		if s.Start(j.ID) != j.Release {
			t.Errorf("job %d starts at %d, want release %d", j.ID, s.Start(j.ID), j.Release)
		}
	}
	// Releases 0, 7, 20 with T=4: no interval covers two releases, so three
	// calibrations.
	if s.NumCalibrations() != 3 {
		t.Errorf("calibrations = %d, want 3", s.NumCalibrations())
	}
}

func TestImmediateReusesCalibration(t *testing.T) {
	in := core.MustInstance(1, 10, []int64{0, 3}, []int64{1, 1})
	s, err := Immediate(in, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumCalibrations() != 1 {
		t.Errorf("calibrations = %d, want 1 (second job inside interval)", s.NumCalibrations())
	}
}

func TestImmediateContention(t *testing.T) {
	// Two machines, three jobs released together: third waits one step.
	in := core.MustInstance(2, 5, []int64{0, 0, 0}, []int64{1, 1, 1})
	s, err := Immediate(in, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Validate(in, s); err != nil {
		t.Fatal(err)
	}
	starts := []int64{s.Start(0), s.Start(1), s.Start(2)}
	var atZero, atOne int
	for _, st := range starts {
		switch st {
		case 0:
			atZero++
		case 1:
			atOne++
		}
	}
	if atZero != 2 || atOne != 1 {
		t.Errorf("starts = %v, want two at 0 and one at 1", starts)
	}
	if s.NumCalibrations() != 2 {
		t.Errorf("calibrations = %d, want 2", s.NumCalibrations())
	}
}

func TestAlwaysCalibratedCoversEverything(t *testing.T) {
	in := core.MustInstance(1, 5, []int64{2, 9, 30}, []int64{1, 1, 1})
	s, err := AlwaysCalibrated(in, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Validate(in, s); err != nil {
		t.Fatal(err)
	}
	// Coverage is back-to-back from the first release, so every job runs
	// at its release time.
	for _, j := range in.Jobs {
		if s.Start(j.ID) != j.Release {
			t.Errorf("job %d starts at %d, want %d", j.ID, s.Start(j.ID), j.Release)
		}
	}
	// Intervals [2,7),[7,12),... up to covering 30: starts 2,7,...,27 -> 6.
	if s.NumCalibrations() != 6 {
		t.Errorf("calibrations = %d, want 6", s.NumCalibrations())
	}
}

func TestPeriodicGapsDelayJobs(t *testing.T) {
	// T=2, period=10: intervals [0,2), [10,12), ... A job released at 5
	// waits for the next interval.
	in := core.MustInstance(1, 2, []int64{0, 5}, []int64{1, 1})
	s, err := Periodic(in, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Validate(in, s); err != nil {
		t.Fatal(err)
	}
	if s.Start(1) != 10 {
		t.Errorf("gap job starts at %d, want 10", s.Start(1))
	}
}

func TestPeriodicRejectsBadPeriod(t *testing.T) {
	in := core.MustInstance(1, 2, []int64{0}, []int64{1})
	if _, err := Periodic(in, 10, 0); err == nil {
		t.Error("accepted period 0")
	}
}

func TestFlowThresholdMatchesSkiRental(t *testing.T) {
	// One job at 0, G=10, T=5: waits until flow would be G.
	in := core.MustInstance(1, 5, []int64{0}, []int64{1})
	s, err := FlowThreshold(in, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Start(0) != 8 {
		t.Errorf("start = %d, want 8 (flow trigger)", s.Start(0))
	}
	// Weighted variant routes through Algorithm 2.
	win := core.MustInstance(1, 5, []int64{0}, []int64{2})
	ws, err := FlowThreshold(win, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Validate(win, ws); err != nil {
		t.Fatal(err)
	}
	if _, err := FlowThreshold(core.MustInstance(2, 5, []int64{0}, []int64{1}), 10); err == nil {
		t.Error("FlowThreshold accepted P=2")
	}
}

func TestBaselinesValidOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewPCG(55, 66))
	for trial := 0; trial < 200; trial++ {
		p := 1 + rng.IntN(3)
		in := randInstance(rng, p, p == 1)
		g := int64(rng.IntN(50))
		runs := map[string]func() (*core.Schedule, error){
			"immediate": func() (*core.Schedule, error) { return Immediate(in, g) },
			"always":    func() (*core.Schedule, error) { return AlwaysCalibrated(in, g) },
			"periodic":  func() (*core.Schedule, error) { return Periodic(in, g, in.T+2) },
		}
		if p == 1 {
			runs["flow-threshold"] = func() (*core.Schedule, error) { return FlowThreshold(in, g) }
		}
		for name, run := range runs {
			s, err := run()
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if err := core.Validate(in, s); err != nil {
				t.Fatalf("trial %d %s: invalid schedule: %v", trial, name, err)
			}
		}
	}
}

func TestImmediateIsFlowOptimalIshVersusAlg1(t *testing.T) {
	// Immediate minimizes flow (every job at release up to contention), so
	// its flow must never exceed Algorithm 1's.
	rng := rand.New(rand.NewPCG(9, 12))
	for trial := 0; trial < 100; trial++ {
		in := randInstance(rng, 1, false)
		g := int64(rng.IntN(50))
		im, err := Immediate(in, g)
		if err != nil {
			t.Fatal(err)
		}
		a1, err := online.Alg1(in, g)
		if err != nil {
			t.Fatal(err)
		}
		if core.Flow(in, im) > core.Flow(in, a1.Schedule) {
			t.Fatalf("trial %d: immediate flow %d > alg1 flow %d",
				trial, core.Flow(in, im), core.Flow(in, a1.Schedule))
		}
	}
}

func TestEmptyInstances(t *testing.T) {
	in := core.MustInstance(1, 3, nil, nil)
	for name, run := range map[string]func() (*core.Schedule, error){
		"immediate": func() (*core.Schedule, error) { return Immediate(in, 5) },
		"always":    func() (*core.Schedule, error) { return AlwaysCalibrated(in, 5) },
		"periodic":  func() (*core.Schedule, error) { return Periodic(in, 5, 3) },
		"flow":      func() (*core.Schedule, error) { return FlowThreshold(in, 5) },
	} {
		s, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.NumCalibrations() != 0 {
			t.Errorf("%s calibrated an empty instance", name)
		}
	}
}
