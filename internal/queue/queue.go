// Package queue provides the priority queues used by the online calibration
// algorithms: a generic binary heap plus job-specific orderings (earliest
// release first for the unweighted algorithms, heaviest weight first with
// earliest-release tie-break for the weighted algorithm, matching
// Observation 2.1 of the paper).
//
// The heap is written from scratch rather than wrapping container/heap so
// the hot paths are monomorphic and allocation-free after warm-up.
package queue

import "calibsched/internal/core"

// Heap is a binary min-heap under the supplied less function. The zero
// value is not usable; construct with New.
type Heap[T any] struct {
	data []T
	less func(a, b T) bool
}

// New returns an empty heap ordered by less (the "smallest" element per
// less is popped first).
func New[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len returns the number of elements.
func (h *Heap[T]) Len() int { return len(h.data) }

// Empty reports whether the heap has no elements.
func (h *Heap[T]) Empty() bool { return len(h.data) == 0 }

// Push inserts v.
func (h *Heap[T]) Push(v T) {
	h.data = append(h.data, v)
	h.up(len(h.data) - 1)
}

// Peek returns the minimum element without removing it. It panics on an
// empty heap.
func (h *Heap[T]) Peek() T {
	if len(h.data) == 0 {
		panic("queue: Peek on empty heap")
	}
	return h.data[0]
}

// Pop removes and returns the minimum element. It panics on an empty heap.
func (h *Heap[T]) Pop() T {
	if len(h.data) == 0 {
		panic("queue: Pop on empty heap")
	}
	top := h.data[0]
	last := len(h.data) - 1
	h.data[0] = h.data[last]
	var zero T
	h.data[last] = zero
	h.data = h.data[:last]
	if len(h.data) > 0 {
		h.down(0)
	}
	return top
}

// Items returns the heap's backing slice in heap order (not sorted). The
// slice must not be modified; it is exposed for iteration over the current
// contents (e.g. summing queued weights).
func (h *Heap[T]) Items() []T { return h.data }

// Clear removes all elements, retaining capacity.
func (h *Heap[T]) Clear() {
	var zero T
	for i := range h.data {
		h.data[i] = zero
	}
	h.data = h.data[:0]
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.data[i], h.data[parent]) {
			return
		}
		h.data[i], h.data[parent] = h.data[parent], h.data[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.data)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(h.data[l], h.data[smallest]) {
			smallest = l
		}
		if r < n && h.less(h.data[r], h.data[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.data[i], h.data[smallest] = h.data[smallest], h.data[i]
		i = smallest
	}
}

// ByRelease orders jobs by earliest release time, breaking ties by ID.
// This is the queue order of Algorithms 1 and 3.
func ByRelease(a, b core.Job) bool {
	if a.Release != b.Release {
		return a.Release < b.Release
	}
	return a.ID < b.ID
}

// ByWeightDesc orders jobs heaviest first, breaking ties by earliest
// release then ID — the extraction order mandated by Observation 2.1 (and
// used by Algorithm 2; see DESIGN.md note 1 on the paper's line-13 typo).
func ByWeightDesc(a, b core.Job) bool {
	if a.Weight != b.Weight {
		return a.Weight > b.Weight
	}
	if a.Release != b.Release {
		return a.Release < b.Release
	}
	return a.ID < b.ID
}

// ByWeightAsc orders jobs lightest first with the same tie-breaks; it
// implements the paper's literal Algorithm 2 line 13 for the E8 ablation.
func ByWeightAsc(a, b core.Job) bool {
	if a.Weight != b.Weight {
		return a.Weight < b.Weight
	}
	if a.Release != b.Release {
		return a.Release < b.Release
	}
	return a.ID < b.ID
}

// JobQueue is a heap of jobs with cached aggregate statistics: the total
// weight of queued jobs and the sum of their release times, which together
// let the online algorithms evaluate their calibration triggers in O(1).
type JobQueue struct {
	heap        *Heap[core.Job]
	totalWeight int64
	// weightedReleaseSum is sum of w_j * r_j over queued jobs; releaseSum
	// is sum of r_j. Both are maintained incrementally.
	weightedReleaseSum int64
	releaseSum         int64
}

// NewJobQueue returns an empty job queue under the given order.
func NewJobQueue(less func(a, b core.Job) bool) *JobQueue {
	return &JobQueue{heap: New(less)}
}

// Len returns the number of queued jobs.
func (q *JobQueue) Len() int { return q.heap.Len() }

// Empty reports whether the queue is empty.
func (q *JobQueue) Empty() bool { return q.heap.Empty() }

// Push enqueues j.
func (q *JobQueue) Push(j core.Job) {
	q.heap.Push(j)
	q.totalWeight += j.Weight
	q.weightedReleaseSum += j.Weight * j.Release
	q.releaseSum += j.Release
}

// Pop dequeues the front job.
func (q *JobQueue) Pop() core.Job {
	j := q.heap.Pop()
	q.totalWeight -= j.Weight
	q.weightedReleaseSum -= j.Weight * j.Release
	q.releaseSum -= j.Release
	return j
}

// Peek returns the front job without dequeueing.
func (q *JobQueue) Peek() core.Job { return q.heap.Peek() }

// TotalWeight returns the sum of queued job weights.
func (q *JobQueue) TotalWeight() int64 { return q.totalWeight }

// Jobs returns the queued jobs in heap order (not sorted); the slice must
// not be modified.
func (q *JobQueue) Jobs() []core.Job { return q.heap.Items() }

// FlowIfScheduledFrom returns the total weighted flow the queued jobs would
// incur if scheduled consecutively starting at time start, in the order the
// queue would pop them. This is the quantity "f <- flow cost of scheduling
// all j in Q starting at t+1" in Algorithms 1–3.
//
// For release-ordered unweighted queues (all weights 1) this is computed in
// O(1) from cached sums: job k of m (k = 0..m-1) completes at start+k+1, so
// f = sum_k (start+k+1 - r_k) = m*start + m(m+1)/2 - releaseSum.
// For weighted queues the pop order matters, so the queue is copied and
// drained (O(m log m)).
func (q *JobQueue) FlowIfScheduledFrom(start int64) int64 {
	w, c := q.FlowCoefficients()
	return w*start + c
}

// FlowCoefficients returns (W, C) such that FlowIfScheduledFrom(start) ==
// W*start + C for every start large enough that no queued job would begin
// before its release (always true in the algorithms, which only evaluate f
// at times >= every queued release). W is the total queued weight.
//
// For unit-weight release-ordered queues the constants come from cached
// sums in O(1); weighted queues drain a copy in pop order, O(m log m).
func (q *JobQueue) FlowCoefficients() (w, c int64) {
	m := int64(q.heap.Len())
	if m == 0 {
		return 0, 0
	}
	if q.totalWeight == m { // all unit weights: order-independent
		return m, m*(m+1)/2 - q.releaseSum
	}
	// Weighted: drain a copy in pop order. Job at position k (0-based)
	// completes at start+k+1, contributing w_k*(start+k+1-r_k).
	tmp := New(q.heap.less)
	tmp.data = append(tmp.data, q.heap.data...)
	var k int64
	for !tmp.Empty() {
		j := tmp.Pop()
		c += j.Weight * (k + 1 - j.Release)
		k++
	}
	return q.totalWeight, c
}
