package queue

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"calibsched/internal/core"
)

func TestHeapSortsInts(t *testing.T) {
	h := New(func(a, b int) bool { return a < b })
	in := []int{5, 3, 8, 1, 9, 2, 7, 2}
	for _, v := range in {
		h.Push(v)
	}
	want := append([]int(nil), in...)
	sort.Ints(want)
	for i, w := range want {
		if h.Peek() != w {
			t.Fatalf("peek %d = %d, want %d", i, h.Peek(), w)
		}
		if got := h.Pop(); got != w {
			t.Fatalf("pop %d = %d, want %d", i, got, w)
		}
	}
	if !h.Empty() {
		t.Error("heap not empty after draining")
	}
}

func TestHeapPropertyMatchesSort(t *testing.T) {
	f := func(vals []int16) bool {
		h := New(func(a, b int16) bool { return a < b })
		for _, v := range vals {
			h.Push(v)
		}
		want := append([]int16(nil), vals...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		for _, w := range want {
			if h.Pop() != w {
				return false
			}
		}
		return h.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	h := New(func(a, b int) bool { return a < b })
	var mirror []int
	for op := 0; op < 2000; op++ {
		if h.Len() == 0 || rng.IntN(3) > 0 {
			v := rng.IntN(1000)
			h.Push(v)
			mirror = append(mirror, v)
		} else {
			got := h.Pop()
			mini := 0
			for i, v := range mirror {
				if v < mirror[mini] {
					mini = i
				}
			}
			if got != mirror[mini] {
				t.Fatalf("op %d: pop %d, want %d", op, got, mirror[mini])
			}
			mirror = append(mirror[:mini], mirror[mini+1:]...)
		}
	}
}

func TestHeapPanicsOnEmpty(t *testing.T) {
	h := New(func(a, b int) bool { return a < b })
	for name, fn := range map[string]func(){
		"Pop":  func() { h.Pop() },
		"Peek": func() { h.Peek() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty heap did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHeapClear(t *testing.T) {
	h := New(func(a, b int) bool { return a < b })
	h.Push(3)
	h.Push(1)
	h.Clear()
	if !h.Empty() || h.Len() != 0 {
		t.Error("Clear left elements")
	}
	h.Push(2)
	if h.Pop() != 2 {
		t.Error("heap unusable after Clear")
	}
}

func job(id int, r, w int64) core.Job { return core.Job{ID: id, Release: r, Weight: w} }

func TestByReleaseOrder(t *testing.T) {
	q := NewJobQueue(ByRelease)
	q.Push(job(2, 5, 1))
	q.Push(job(0, 1, 1))
	q.Push(job(1, 1, 1))
	if got := q.Pop().ID; got != 0 {
		t.Errorf("first pop ID = %d, want 0 (release tie broken by ID)", got)
	}
	if got := q.Pop().ID; got != 1 {
		t.Errorf("second pop ID = %d, want 1", got)
	}
	if got := q.Pop().ID; got != 2 {
		t.Errorf("third pop ID = %d, want 2", got)
	}
}

func TestByWeightDescOrder(t *testing.T) {
	q := NewJobQueue(ByWeightDesc)
	q.Push(job(0, 4, 2))
	q.Push(job(1, 1, 9))
	q.Push(job(2, 0, 2))
	q.Push(job(3, 0, 9))
	// Heaviest first; among weight 9, earliest release (r=0, ID 3) first.
	wantIDs := []int{3, 1, 2, 0}
	for i, want := range wantIDs {
		if got := q.Pop().ID; got != want {
			t.Errorf("pop %d ID = %d, want %d", i, got, want)
		}
	}
}

func TestByWeightAscOrder(t *testing.T) {
	q := NewJobQueue(ByWeightAsc)
	q.Push(job(0, 4, 2))
	q.Push(job(1, 1, 9))
	q.Push(job(2, 0, 2))
	wantIDs := []int{2, 0, 1}
	for i, want := range wantIDs {
		if got := q.Pop().ID; got != want {
			t.Errorf("pop %d ID = %d, want %d", i, got, want)
		}
	}
}

func TestJobQueueAggregates(t *testing.T) {
	q := NewJobQueue(ByRelease)
	q.Push(job(0, 3, 2))
	q.Push(job(1, 5, 4))
	if q.TotalWeight() != 6 {
		t.Errorf("TotalWeight = %d, want 6", q.TotalWeight())
	}
	q.Pop()
	if q.TotalWeight() != 4 {
		t.Errorf("TotalWeight after pop = %d, want 4", q.TotalWeight())
	}
	if q.Len() != 1 || q.Empty() {
		t.Error("length bookkeeping wrong")
	}
	if q.Peek().ID != 1 {
		t.Error("Peek wrong")
	}
}

// flowByDraining recomputes FlowIfScheduledFrom the slow, obviously correct
// way for cross-checking.
func flowByDraining(jobs []core.Job, less func(a, b core.Job) bool, start int64) int64 {
	h := New(less)
	for _, j := range jobs {
		h.Push(j)
	}
	var f int64
	t := start
	for !h.Empty() {
		f += h.Pop().Flow(t)
		t++
	}
	return f
}

func TestFlowIfScheduledFromUnweightedClosedForm(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	for trial := 0; trial < 200; trial++ {
		n := rng.IntN(20)
		var jobs []core.Job
		start := int64(50 + rng.IntN(50))
		for i := 0; i < n; i++ {
			jobs = append(jobs, job(i, int64(rng.IntN(50)), 1))
		}
		q := NewJobQueue(ByRelease)
		for _, j := range jobs {
			q.Push(j)
		}
		got := q.FlowIfScheduledFrom(start)
		want := flowByDraining(jobs, ByRelease, start)
		if got != want {
			t.Fatalf("trial %d: closed form %d, drained %d (jobs %v start %d)", trial, got, want, jobs, start)
		}
	}
}

func TestFlowIfScheduledFromWeighted(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 4))
	for trial := 0; trial < 200; trial++ {
		n := rng.IntN(15)
		var jobs []core.Job
		start := int64(30 + rng.IntN(30))
		for i := 0; i < n; i++ {
			jobs = append(jobs, job(i, int64(rng.IntN(30)), 1+int64(rng.IntN(9))))
		}
		q := NewJobQueue(ByWeightDesc)
		for _, j := range jobs {
			q.Push(j)
		}
		got := q.FlowIfScheduledFrom(start)
		want := flowByDraining(jobs, ByWeightDesc, start)
		if got != want {
			t.Fatalf("trial %d: got %d, want %d", trial, got, want)
		}
		// The queue must be unchanged by the computation.
		if q.Len() != n {
			t.Fatalf("FlowIfScheduledFrom mutated the queue: len %d, want %d", q.Len(), n)
		}
	}
}

func TestFlowIfScheduledFromEmpty(t *testing.T) {
	q := NewJobQueue(ByRelease)
	if got := q.FlowIfScheduledFrom(100); got != 0 {
		t.Errorf("empty queue flow = %d, want 0", got)
	}
}

func BenchmarkHeapPushPop(b *testing.B) {
	h := New(func(a, b int64) bool { return a < b })
	rng := rand.New(rand.NewPCG(1, 1))
	vals := make([]int64, 1024)
	for i := range vals {
		vals[i] = rng.Int64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(vals[i%len(vals)])
		if h.Len() > 512 {
			h.Pop()
		}
	}
}

func BenchmarkJobQueueFlowUnweighted(b *testing.B) {
	q := NewJobQueue(ByRelease)
	for i := 0; i < 256; i++ {
		q.Push(job(i, int64(i), 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = q.FlowIfScheduledFrom(300)
	}
}
