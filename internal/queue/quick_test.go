package queue

import (
	"testing"
	"testing/quick"

	"calibsched/internal/core"
)

// TestQuickFlowLinearity: FlowIfScheduledFrom is linear in the start time
// with slope equal to the total queued weight.
func TestQuickFlowLinearity(t *testing.T) {
	f := func(relSeeds, wSeeds []uint8, delta uint8) bool {
		q := NewJobQueue(ByWeightDesc)
		n := len(relSeeds)
		if len(wSeeds) < n {
			n = len(wSeeds)
		}
		if n > 20 {
			n = 20
		}
		for i := 0; i < n; i++ {
			q.Push(core.Job{ID: i, Release: int64(relSeeds[i] % 30), Weight: 1 + int64(wSeeds[i]%7)})
		}
		base := int64(40)
		d := int64(delta%16) + 1
		f0 := q.FlowIfScheduledFrom(base)
		f1 := q.FlowIfScheduledFrom(base + d)
		return f1-f0 == d*q.TotalWeight()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAggregatesMatchRecount: cached totals equal recomputed totals
// after arbitrary push/pop interleavings.
func TestQuickAggregatesMatchRecount(t *testing.T) {
	f := func(ops []uint8) bool {
		q := NewJobQueue(ByRelease)
		id := 0
		for _, op := range ops {
			if q.Empty() || op%3 > 0 {
				q.Push(core.Job{ID: id, Release: int64(op % 17), Weight: 1 + int64(op%5)})
				id++
			} else {
				q.Pop()
			}
		}
		var w int64
		for _, j := range q.Jobs() {
			w += j.Weight
		}
		return w == q.TotalWeight()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHeapPopMonotone: successive pops never go backward under the
// heap's order.
func TestQuickHeapPopMonotone(t *testing.T) {
	f := func(vals []int32) bool {
		h := New(func(a, b int32) bool { return a < b })
		for _, v := range vals {
			h.Push(v)
		}
		prev, first := int32(0), true
		for !h.Empty() {
			v := h.Pop()
			if !first && v < prev {
				return false
			}
			prev, first = v, false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
