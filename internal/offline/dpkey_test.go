package offline

import (
	"math/rand/v2"
	"strings"
	"testing"

	"calibsched/internal/core"
)

// TestKeyFieldsDoNotOverlap pins the packing layout: the three indices
// occupy disjoint bit fields right up to the documented limit.
func TestKeyFieldsDoNotOverlap(t *testing.T) {
	cases := []struct{ u, v, mu int }{
		{0, 0, 0},
		{1, 2, 3},
		{MaxDPJobs, 0, 0},
		{0, MaxDPJobs, 0},
		{0, 0, MaxDPJobs},
		{MaxDPJobs, MaxDPJobs, MaxDPJobs},
		{MaxDPJobs, 1, MaxDPJobs - 1},
	}
	seen := make(map[uint64]struct{}, len(cases))
	for _, c := range cases {
		k := key(c.u, c.v, c.mu)
		if gu := int(k >> (2 * keyBits)); gu != c.u {
			t.Errorf("key(%d,%d,%d): recovered u = %d", c.u, c.v, c.mu, gu)
		}
		if gv := int(k >> keyBits & MaxDPJobs); gv != c.v {
			t.Errorf("key(%d,%d,%d): recovered v = %d", c.u, c.v, c.mu, gv)
		}
		if gmu := int(k & MaxDPJobs); gmu != c.mu {
			t.Errorf("key(%d,%d,%d): recovered mu = %d", c.u, c.v, c.mu, gmu)
		}
		if _, dup := seen[k]; dup {
			t.Errorf("key(%d,%d,%d) collides with an earlier case", c.u, c.v, c.mu)
		}
		seen[k] = struct{}{}
	}
}

// TestNewSolverRejectsOversizedInstance exercises the fail-fast guard:
// beyond MaxDPJobs the packed memo keys would silently collide, so
// newSolver must refuse the instance before allocating its O(n^2)
// tables. The instance is built as a raw literal — core.NewInstance
// would happily sort 2^21+1 jobs, but there is no need to pay for it.
func TestNewSolverRejectsOversizedInstance(t *testing.T) {
	n := MaxDPJobs + 1
	jobs := make([]core.Job, n)
	for i := range jobs {
		jobs[i] = core.Job{Release: int64(i)}
	}
	in := &core.Instance{Jobs: jobs, P: 1, T: 4}
	if _, err := newSolver(in); err == nil {
		t.Fatalf("newSolver accepted %d jobs; memo keys only hold %d", n, MaxDPJobs)
	} else if !strings.Contains(err.Error(), "exceed the DP limit") {
		t.Fatalf("unexpected error text: %v", err)
	}
	// The guard must surface through every exported entry point.
	if _, err := OptimalFlow(in, 1); err == nil {
		t.Error("OptimalFlow accepted an oversized instance")
	}
	if _, err := BudgetSweep(in, 1); err == nil {
		t.Error("BudgetSweep accepted an oversized instance")
	}
	if _, err := BudgetSweepParallel(in, 1, 2); err == nil {
		t.Error("BudgetSweepParallel accepted an oversized instance")
	}
}

// TestIndexedHelpersMatchScans cross-checks the O(log n) minRankAbove
// and the binary-search prefixS against the original linear scans they
// replaced, over every reachable (u, v, mu) state of random instances.
func TestIndexedHelpersMatchScans(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	for trial := 0; trial < 120; trial++ {
		in := tinyInstance(rng, 10, 40, 6, 6)
		n := in.N()
		if n == 0 {
			continue
		}
		s, err := newSolver(in)
		if err != nil {
			t.Fatal(err)
		}
		for u := 1; u <= n; u++ {
			for v := u; v <= n; v++ {
				for mu := 0; mu <= n; mu++ {
					wantJ := s.minRankAboveScan(u, v, mu)
					if gotJ := s.minRankAbove(u, v, mu); gotJ != wantJ {
						t.Fatalf("minRankAbove(%d,%d,%d) = %d, scan = %d", u, v, mu, gotJ, wantJ)
					}
					// prefixS is only defined on states solveF reaches:
					// nonempty J(u,v,mu) that passes the psi/jLast
					// feasibility guard (otherwise no busy-prefix fixed
					// point need exist). Replicate that guard here.
					if s.cnt(u, v, mu) == 0 {
						continue
					}
					b := s.rel[v] + 1 - s.T
					feasible := true
					for j := u; j <= v-1; j++ {
						if s.rank[j] > mu && s.cnt(u, j, mu)%s.T == 0 && b <= s.rel[j] {
							feasible = false
							break
						}
					}
					if !feasible {
						continue
					}
					want := s.prefixSScan(u, v, mu)
					if got := s.prefixS(u, v, mu); got != want {
						t.Fatalf("prefixS(%d,%d,%d) = %d, scan = %d", u, v, mu, got, want)
					}
				}
			}
		}
	}
}
