package offline

import (
	"math/rand/v2"
	"testing"

	"calibsched/internal/core"
)

// TestFlowConvexity: the Pareto frontier flow(k) must be convex in k —
// the property underlying the paper's binary-search remark.
func TestFlowConvexity(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 13))
	for trial := 0; trial < 500; trial++ {
		in := tinyInstance(rng, 10, 30, 6, 6)
		flows, err := BudgetSweep(in, in.N())
		if err != nil {
			t.Fatal(err)
		}
		// Check second differences over the feasible range.
		var feas []int64
		for _, f := range flows {
			if f != Unschedulable {
				feas = append(feas, f)
			}
		}
		for i := 2; i < len(feas); i++ {
			if feas[i-1]-feas[i] > feas[i-2]-feas[i-1] {
				t.Fatalf("trial %d: flow(k) not convex: %v (T=%d jobs %v)", trial, feas, in.T, in.Jobs)
			}
		}
	}
}

// TestTernaryMatchesSweep: the ternary search must find the exact optimum
// the sweep finds, on every instance, while probing fewer budgets.
func TestTernaryMatchesSweep(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 17))
	for trial := 0; trial < 400; trial++ {
		in := tinyInstance(rng, 12, 40, 6, 6)
		g := int64(rng.IntN(60))
		want, _, _, err := OptimalTotalCost(in, g)
		if err != nil {
			t.Fatal(err)
		}
		got, bestK, probes, sched, err := TotalCostSearch(in, g)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: ternary %d != sweep %d (G=%d T=%d jobs %v)",
				trial, got, want, g, in.T, in.Jobs)
		}
		if err := core.Validate(in, sched); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if c := core.TotalCost(in, sched, g); c != got {
			t.Fatalf("trial %d: schedule cost %d != reported %d", trial, c, got)
		}
		if sched.NumCalibrations() > bestK {
			t.Fatalf("trial %d: %d calibrations > bestK %d", trial, sched.NumCalibrations(), bestK)
		}
		if probes > in.N()+1 {
			t.Fatalf("trial %d: probed %d budgets for n=%d", trial, probes, in.N())
		}
	}
}

func TestTernaryProbesLogarithmically(t *testing.T) {
	rng := rand.New(rand.NewPCG(47, 19))
	n := 120
	releases := make([]int64, n)
	weights := make([]int64, n)
	for i := range releases {
		releases[i] = int64(rng.IntN(1000))
		weights[i] = 1 + int64(rng.IntN(8))
	}
	in := core.MustInstance(1, 8, releases, weights).Canonicalize()
	_, _, probes, _, err := TotalCostSearch(in, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Ternary search on [ceil(n/T), n] probes O(log n) budgets; allow a
	// generous constant.
	if probes > 40 {
		t.Fatalf("probed %d budgets for n=%d; expected O(log n)", probes, n)
	}
}

func TestTernarySearchEdges(t *testing.T) {
	empty := core.MustInstance(1, 4, nil, nil)
	total, _, _, sched, err := TotalCostSearch(empty, 10)
	if err != nil || total != 0 || sched.NumCalibrations() != 0 {
		t.Fatalf("empty instance: %d %v", total, err)
	}
	if _, _, _, _, err := TotalCostSearch(empty, -1); err == nil {
		t.Error("negative G accepted")
	}
	single := core.MustInstance(1, 4, []int64{5}, []int64{3})
	total, bestK, _, _, err := TotalCostSearch(single, 7)
	if err != nil {
		t.Fatal(err)
	}
	if bestK != 1 || total != 7+3 {
		t.Fatalf("single job: total %d bestK %d, want 10/1", total, bestK)
	}
	multi := core.MustInstance(2, 4, []int64{0}, []int64{1})
	if _, _, _, _, err := TotalCostSearch(multi, 5); err == nil {
		t.Error("P=2 accepted")
	}
}
