package offline

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"calibsched/internal/core"
)

// TestParallelSweepMatchesSequential is the central differential for the
// parallel solver: on hundreds of random canonical instances the
// parallel budget sweep must reproduce the sequential sweep entry for
// entry. Run under -race in CI, it also proves the level-synchronous
// fan-out has no data races.
func TestParallelSweepMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(2026, 805))
	for trial := 0; trial < 300; trial++ {
		in := tinyInstance(rng, 10, 30, 6, 6)
		maxK := in.N() + rng.IntN(3)
		want, err := BudgetSweep(in, maxK)
		if err != nil {
			t.Fatalf("trial %d: sequential sweep: %v", trial, err)
		}
		for _, workers := range []int{1, 2, 7} {
			got, err := BudgetSweepParallel(in, maxK, workers)
			if err != nil {
				t.Fatalf("trial %d: parallel sweep (workers=%d): %v", trial, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d (workers=%d): parallel sweep %v != sequential %v", trial, workers, got, want)
			}
		}
	}
}

// TestParallelTotalCostMatchesSequential proves the full result triple —
// total, minimizing budget, and the reconstructed schedule — is
// byte-identical between the solvers, calendar entries and per-job
// assignments included.
func TestParallelTotalCostMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 42))
	for trial := 0; trial < 200; trial++ {
		in := tinyInstance(rng, 9, 25, 5, 5)
		g := int64(rng.IntN(40))
		wantTotal, wantK, wantSched, err := OptimalTotalCost(in, g)
		if err != nil {
			t.Fatalf("trial %d: sequential: %v", trial, err)
		}
		gotTotal, gotK, gotSched, err := OptimalTotalCostParallel(in, g, 4)
		if err != nil {
			t.Fatalf("trial %d: parallel: %v", trial, err)
		}
		if gotTotal != wantTotal || gotK != wantK {
			t.Fatalf("trial %d: parallel (total=%d, k=%d) != sequential (total=%d, k=%d)",
				trial, gotTotal, gotK, wantTotal, wantK)
		}
		if !reflect.DeepEqual(gotSched, wantSched) {
			t.Fatalf("trial %d: schedules differ\nparallel:   %+v\nsequential: %+v", trial, gotSched, wantSched)
		}
		if err := core.Validate(in, gotSched); err != nil {
			t.Fatalf("trial %d: parallel schedule invalid: %v", trial, err)
		}
	}
}

func TestParallelOptimalFlowMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(99, 1))
	for trial := 0; trial < 200; trial++ {
		in := tinyInstance(rng, 8, 20, 4, 5)
		k := in.N() // always feasible
		want, err := OptimalFlow(in, k)
		if err != nil {
			t.Fatalf("trial %d: sequential: %v", trial, err)
		}
		got, err := OptimalFlowParallel(in, k, 3)
		if err != nil {
			t.Fatalf("trial %d: parallel: %v", trial, err)
		}
		if got.Flow != want.Flow {
			t.Fatalf("trial %d: parallel flow %d != sequential %d", trial, got.Flow, want.Flow)
		}
		if !reflect.DeepEqual(got.Schedule, want.Schedule) {
			t.Fatalf("trial %d: schedules differ\nparallel:   %+v\nsequential: %+v", trial, got.Schedule, want.Schedule)
		}
	}
}

func TestParallelValidation(t *testing.T) {
	in := core.MustInstance(1, 3, []int64{0, 5}, []int64{1, 2})
	if _, err := BudgetSweepParallel(in, -1, 2); err == nil {
		t.Error("negative maxK accepted")
	}
	if _, err := OptimalFlowParallel(in, -1, 2); err == nil {
		t.Error("negative budget accepted")
	}
	if _, _, _, err := OptimalTotalCostParallel(in, -1, 2); err == nil {
		t.Error("negative G accepted")
	}
	dup := core.MustInstance(1, 3, []int64{0, 0}, []int64{1, 2})
	if _, err := BudgetSweepParallel(dup, 2, 2); err == nil {
		t.Error("duplicate release times accepted")
	}
	if _, err := OptimalFlowParallel(core.MustInstance(1, 2, []int64{0, 1, 2}, []int64{1, 1, 1}), 1, 2); err == nil {
		t.Error("infeasible budget accepted")
	}
}

func TestParallelEmptyInstance(t *testing.T) {
	in := core.MustInstance(1, 3, nil, nil)
	flows, err := BudgetSweepParallel(in, 2, 4)
	if err != nil || !reflect.DeepEqual(flows, []int64{0, 0, 0}) {
		t.Fatalf("flows = %v, err = %v", flows, err)
	}
	total, bestK, sched, err := OptimalTotalCostParallel(in, 10, 4)
	if err != nil || total != 0 || bestK != 0 || sched == nil {
		t.Fatalf("total = %d, bestK = %d, sched = %v, err = %v", total, bestK, sched, err)
	}
}

// TestParallelWorkerCountsAgree pins that the worker count is a pure
// performance knob: 1, 2, and 16 workers produce identical sweeps.
func TestParallelWorkerCountsAgree(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	in := tinyInstance(rng, 14, 60, 8, 8)
	base, err := BudgetSweepParallel(in, in.N(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 16, 0} { // 0 = GOMAXPROCS
		got, err := BudgetSweepParallel(in, in.N(), w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d sweep %v != workers=1 sweep %v", w, got, base)
		}
	}
}
