package offline

import (
	"math/rand/v2"
	"testing"

	"calibsched/internal/core"
	"calibsched/internal/simul"
)

// tinyInstance builds a random canonical single-machine instance.
func tinyInstance(rng *rand.Rand, maxN, maxRel, maxW int, maxT int64) *core.Instance {
	n := 1 + rng.IntN(maxN)
	releases := make([]int64, n)
	weights := make([]int64, n)
	for i := range releases {
		releases[i] = int64(rng.IntN(maxRel))
		weights[i] = 1 + int64(rng.IntN(maxW))
	}
	t := int64(1 + rng.Int64N(maxT))
	return core.MustInstance(1, t, releases, weights).Canonicalize()
}

func TestOptimalFlowSingleBatchAtReleases(t *testing.T) {
	// Jobs at 0..4, T=8 >= n, K=1: all fit in one interval ending at
	// r_5+1; everyone runs at release, flow = 5.
	in := core.MustInstance(1, 8, []int64{0, 1, 2, 3, 4}, []int64{1, 1, 1, 1, 1})
	res, err := OptimalFlow(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 5 {
		t.Fatalf("flow = %d, want 5", res.Flow)
	}
	if err := core.Validate(in, res.Schedule); err != nil {
		t.Fatal(err)
	}
	if got := core.Flow(in, res.Schedule); got != res.Flow {
		t.Fatalf("schedule flow %d != reported %d", got, res.Flow)
	}
	if res.Schedule.NumCalibrations() > 1 {
		t.Fatalf("used %d calibrations, budget 1", res.Schedule.NumCalibrations())
	}
}

func TestOptimalFlowForcedGrouping(t *testing.T) {
	// Two distant jobs, K=1, T=4: both must share one interval. Releases
	// 0 and 10: the interval must end at 11 (job 1 at its release, Lemma
	// 4.2), so job 0 waits: starts within [7,11) at 7,8,9 or 10... but job
	// 1 occupies 10, so job 0 runs at 7,8, or 9 — the DP should pick the
	// earliest possible, 7: flow (7+1-0) + 1 = 9.
	in := core.MustInstance(1, 4, []int64{0, 10}, []int64{1, 1})
	res, err := OptimalFlow(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 9 {
		t.Fatalf("flow = %d, want 9", res.Flow)
	}
	// With K=2 both run at release: flow 2.
	res2, err := OptimalFlow(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Flow != 2 {
		t.Fatalf("flow = %d, want 2", res2.Flow)
	}
}

func TestOptimalFlowWeightedPriority(t *testing.T) {
	// One interval, K=1, T=3, jobs at 0 (w=1) and 2 (w=9). The interval
	// ends at 3; slots 0,1,2. Heavy job takes its release slot 2; light
	// job can sit at 0 or 1 — but Lemma 4.1 requires no idle gap before a
	// delayed job; scheduling light at 0 gives flow 1*1 + 9*1 = 10.
	in := core.MustInstance(1, 3, []int64{0, 2}, []int64{1, 9})
	res, err := OptimalFlow(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 10 {
		t.Fatalf("flow = %d, want 10", res.Flow)
	}
}

func TestOptimalFlowInfeasibleBudget(t *testing.T) {
	in := core.MustInstance(1, 2, []int64{0, 1, 2}, []int64{1, 1, 1})
	if _, err := OptimalFlow(in, 1); err == nil {
		t.Error("2-slot budget accepted 3 jobs")
	}
	if _, err := OptimalFlow(in, -1); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestOptimalFlowRejectsNonCanonical(t *testing.T) {
	in := core.MustInstance(1, 3, []int64{0, 0}, []int64{1, 2})
	if _, err := OptimalFlow(in, 2); err == nil {
		t.Error("accepted duplicate release times")
	}
	multi := core.MustInstance(2, 3, []int64{0, 1}, []int64{1, 1})
	if _, err := OptimalFlow(multi, 2); err == nil {
		t.Error("accepted P=2")
	}
}

func TestOptimalFlowEmptyInstance(t *testing.T) {
	in := core.MustInstance(1, 3, nil, nil)
	res, err := OptimalFlow(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 0 {
		t.Fatalf("flow = %d", res.Flow)
	}
}

// TestDPMatchesBruteForceUnweighted is the central correctness check for
// the Section 4 DP: on thousands of random unweighted instances the DP
// flow must equal the brute-force optimum for every budget.
func TestDPMatchesBruteForceUnweighted(t *testing.T) {
	rng := rand.New(rand.NewPCG(1001, 7))
	for trial := 0; trial < 400; trial++ {
		in := tinyInstance(rng, 7, 15, 1, 5)
		maxK := in.N()
		flows, err := BudgetSweep(in, maxK)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k <= maxK; k++ {
			brute, berr := BruteForce(in, k)
			if flows[k] == Unschedulable {
				if berr == nil {
					t.Fatalf("trial %d k=%d: DP says unschedulable, brute found flow %d (T=%d jobs %v)",
						trial, k, brute.Flow, in.T, in.Jobs)
				}
				continue
			}
			if berr != nil {
				t.Fatalf("trial %d k=%d: DP flow %d but brute infeasible (T=%d jobs %v)",
					trial, k, flows[k], in.T, in.Jobs)
			}
			if flows[k] != brute.Flow {
				t.Fatalf("trial %d k=%d: DP flow %d != brute %d (T=%d jobs %v)",
					trial, k, flows[k], brute.Flow, in.T, in.Jobs)
			}
		}
	}
}

// TestDPMatchesBruteForceWeighted repeats the check with weights, where the
// rank-peeling recursion actually bites.
func TestDPMatchesBruteForceWeighted(t *testing.T) {
	rng := rand.New(rand.NewPCG(2002, 9))
	for trial := 0; trial < 400; trial++ {
		in := tinyInstance(rng, 7, 14, 5, 5)
		maxK := in.N()
		flows, err := BudgetSweep(in, maxK)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k <= maxK; k++ {
			brute, berr := BruteForce(in, k)
			if flows[k] == Unschedulable {
				if berr == nil {
					t.Fatalf("trial %d k=%d: DP unschedulable, brute %d (T=%d jobs %v)",
						trial, k, brute.Flow, in.T, in.Jobs)
				}
				continue
			}
			if berr != nil || flows[k] != brute.Flow {
				var bf int64 = -2
				if berr == nil {
					bf = brute.Flow
				}
				t.Fatalf("trial %d k=%d: DP flow %d != brute %d (T=%d jobs %v)",
					trial, k, flows[k], bf, in.T, in.Jobs)
			}
		}
	}
}

// TestDPSchedulesAreValid reconstructs schedules and checks they validate,
// achieve the reported flow, and respect the budget.
func TestDPSchedulesAreValid(t *testing.T) {
	rng := rand.New(rand.NewPCG(3003, 11))
	for trial := 0; trial < 300; trial++ {
		in := tinyInstance(rng, 9, 20, 4, 6)
		k := 1 + rng.IntN(in.N())
		res, err := OptimalFlow(in, k)
		if err != nil {
			continue // infeasible budget
		}
		if err := core.Validate(in, res.Schedule); err != nil {
			t.Fatalf("trial %d: invalid schedule: %v (T=%d K=%d jobs %v)", trial, err, in.T, k, in.Jobs)
		}
		if got := core.Flow(in, res.Schedule); got != res.Flow {
			t.Fatalf("trial %d: schedule flow %d != DP %d (T=%d K=%d jobs %v)",
				trial, got, res.Flow, in.T, k, in.Jobs)
		}
		if res.Schedule.NumCalibrations() > k {
			t.Fatalf("trial %d: %d calibrations exceed budget %d", trial, res.Schedule.NumCalibrations(), k)
		}
	}
}

// TestBruteMatchesExhaustiveTiny validates the Lemma 4.2 candidate
// restriction: searching only starts {r_j+1-T} finds the same optimum as
// searching every integer start.
func TestBruteMatchesExhaustiveTiny(t *testing.T) {
	rng := rand.New(rand.NewPCG(4004, 13))
	for trial := 0; trial < 120; trial++ {
		in := tinyInstance(rng, 4, 7, 3, 4)
		for k := 1; k <= min(in.N(), 3); k++ {
			cand, cerr := BruteForce(in, k)
			exh, eerr := ExhaustiveFlow(in, k)
			if (cerr == nil) != (eerr == nil) {
				t.Fatalf("trial %d k=%d: feasibility mismatch (cand %v, exh %v)", trial, k, cerr, eerr)
			}
			if cerr != nil {
				continue
			}
			if cand.Flow != exh.Flow {
				t.Fatalf("trial %d k=%d: candidate-restricted %d != exhaustive %d (T=%d jobs %v)",
					trial, k, cand.Flow, exh.Flow, in.T, in.Jobs)
			}
		}
	}
}

func TestBudgetSweepMonotone(t *testing.T) {
	rng := rand.New(rand.NewPCG(5005, 17))
	for trial := 0; trial < 200; trial++ {
		in := tinyInstance(rng, 10, 25, 4, 6)
		flows, err := BudgetSweep(in, in.N()+2)
		if err != nil {
			t.Fatal(err)
		}
		prev := int64(-1)
		for k, f := range flows {
			if f == Unschedulable {
				if prev != -1 {
					t.Fatalf("trial %d: feasible at %d then unschedulable at %d", trial, k-1, k)
				}
				continue
			}
			if prev != -1 && f > prev {
				t.Fatalf("trial %d: flow increased with budget: flows=%v", trial, flows)
			}
			prev = f
		}
		minK := int(simul.CeilDiv(int64(in.N()), in.T))
		for k := 0; k < minK; k++ {
			if flows[k] != Unschedulable {
				t.Fatalf("trial %d: budget %d < ceil(n/T)=%d reported feasible", trial, k, minK)
			}
		}
		if flows[in.N()] == Unschedulable {
			t.Fatalf("trial %d: budget n unschedulable", trial)
		}
	}
}

func TestOptimalTotalCostMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewPCG(6006, 19))
	for trial := 0; trial < 150; trial++ {
		in := tinyInstance(rng, 6, 12, 3, 4)
		g := int64(rng.IntN(25))
		total, bestK, sched, err := OptimalTotalCost(in, g)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.Validate(in, sched); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := core.TotalCost(in, sched, g); got != total {
			t.Fatalf("trial %d: schedule cost %d != reported %d", trial, got, total)
		}
		if sched.NumCalibrations() > bestK {
			t.Fatalf("trial %d: %d calibrations > bestK %d", trial, sched.NumCalibrations(), bestK)
		}
		bruteTotal, _, err := BruteForceTotalCost(in, g)
		if err != nil {
			t.Fatal(err)
		}
		if total != bruteTotal {
			t.Fatalf("trial %d: DP total %d != brute %d (G=%d T=%d jobs %v)",
				trial, total, bruteTotal, g, in.T, in.Jobs)
		}
	}
}

func TestCandidateStarts(t *testing.T) {
	in := core.MustInstance(1, 5, []int64{0, 3, 20}, []int64{1, 1, 1})
	got := CandidateStarts(in)
	want := []int64{0, 16} // 0+1-5 -> 0, 3+1-5 -> 0 (dup), 20+1-5=16
	if len(got) != len(want) {
		t.Fatalf("candidates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidates = %v, want %v", got, want)
		}
	}
}

func TestT1DegenerateCase(t *testing.T) {
	// T=1: every job needs its own calibration; with K=n each job runs at
	// release (flow = sum of weights); with K<n infeasible.
	in := core.MustInstance(1, 1, []int64{0, 2, 5}, []int64{2, 3, 4})
	res, err := OptimalFlow(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 9 {
		t.Fatalf("flow = %d, want 9", res.Flow)
	}
	if _, err := OptimalFlow(in, 2); err == nil {
		t.Error("T=1 with K=2 accepted 3 jobs")
	}
}

func BenchmarkDPMedium(b *testing.B) {
	rng := rand.New(rand.NewPCG(42, 42))
	releases := make([]int64, 48)
	weights := make([]int64, 48)
	for i := range releases {
		releases[i] = int64(rng.IntN(300))
		weights[i] = 1 + int64(rng.IntN(8))
	}
	in := core.MustInstance(1, 8, releases, weights).Canonicalize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BudgetSweep(in, in.N()); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCanonicalizationPreservesOptimum validates the paper's footnote 1:
// bumping the lightest of >P same-release jobs by one step does not change
// the optimal schedule — the optimal G*cals + weighted COMPLETION time is
// invariant (the flow reading differs by exactly the constant sum of
// w_j * bump, since each bump raises the release the flow is measured
// from). Compared via exhaustive search over every integer
// calibration-time multiset on the original and canonicalized instances.
func TestCanonicalizationPreservesOptimum(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 23))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.IntN(3)
		releases := make([]int64, n)
		weights := make([]int64, n)
		for i := range releases {
			releases[i] = int64(rng.IntN(3)) // force duplicate releases often
			weights[i] = 1 + int64(rng.IntN(4))
		}
		in := core.MustInstance(1, int64(1+rng.IntN(3)), releases, weights)
		canon := in.Canonicalize()
		dup := false
		for i := 1; i < n; i++ {
			if in.Jobs[i].Release == in.Jobs[i-1].Release {
				dup = true
			}
		}
		if !dup {
			continue
		}
		g := int64(rng.IntN(8))
		optOf := func(inst *core.Instance) int64 {
			// Minimize G*cals + weighted completion (the bump-invariant
			// reading); ExhaustiveFlow minimizes flow for a budget, which
			// is the same ordering at fixed instance since they differ by
			// a constant.
			best := int64(1) << 62
			for k := 1; k <= inst.N(); k++ {
				res, err := ExhaustiveFlow(inst, k)
				if err != nil {
					continue
				}
				c := g*int64(res.Schedule.NumCalibrations()) + core.WeightedCompletion(inst, res.Schedule)
				if c < best {
					best = c
				}
			}
			return best
		}
		a, b := optOf(in), optOf(canon)
		if a != b {
			t.Fatalf("trial %d (T=%d G=%d): original OPT %d != canonical OPT %d (jobs %v -> %v)",
				trial, in.T, g, a, b, in.Jobs, canon.Jobs)
		}
	}
}
