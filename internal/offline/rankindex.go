package offline

// rankIndex answers the DP's minRankAbove queries — "which job in the
// index range [u, v] has the smallest rank exceeding mu?" — in O(log^2 n)
// instead of an O(v-u) scan per state. It is a merge-sort tree over the
// rank axis: node k of a complete binary tree covers a contiguous range
// of ranks and stores the sorted job indices (positions) holding those
// ranks, so a query walks toward the smallest qualifying rank, deciding
// "does this subtree hold a position inside [u, v]?" with one binary
// search per node.
type rankIndex struct {
	n    int // number of ranks (== number of jobs)
	size int // leaf count: next power of two >= n
	pos  [][]int32
}

// newRankIndex builds the tree from the rank inverse: pos[r] is the
// 1-based job index holding rank r, for r in 1..len(pos)-1.
func newRankIndex(pos []int) *rankIndex {
	n := len(pos) - 1
	size := 1
	for size < n {
		size <<= 1
	}
	ri := &rankIndex{n: n, size: size, pos: make([][]int32, 2*size)}
	for r := 1; r <= n; r++ {
		ri.pos[size+r-1] = []int32{int32(pos[r])}
	}
	for node := size - 1; node >= 1; node-- {
		ri.pos[node] = mergeSorted(ri.pos[2*node], ri.pos[2*node+1])
	}
	return ri
}

// mergeSorted merges two ascending int32 slices into a fresh one.
func mergeSorted(a, b []int32) []int32 {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// hasInRange reports whether the ascending slice ps holds a value in
// [u, v].
func hasInRange(ps []int32, u, v int) bool {
	lo, hi := 0, len(ps)-1
	first := len(ps)
	for lo <= hi {
		mid := int(uint(lo+hi) >> 1)
		if int(ps[mid]) >= u {
			first = mid
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return first < len(ps) && int(ps[first]) <= v
}

// minAbove returns the job index in [u, v] with the smallest rank
// exceeding mu, or 0 if none.
func (ri *rankIndex) minAbove(u, v, mu int) int {
	if mu >= ri.n {
		return 0
	}
	return ri.query(1, 1, ri.size, mu+1, u, v)
}

// query finds the job with the smallest rank in node's range [lo, hi]
// that is >= minRank and whose position lies in [u, v]; 0 if none.
func (ri *rankIndex) query(node, lo, hi, minRank, u, v int) int {
	if hi < minRank || lo > ri.n {
		return 0
	}
	ps := ri.pos[node]
	if len(ps) == 0 || !hasInRange(ps, u, v) {
		return 0
	}
	if lo == hi {
		return int(ps[0])
	}
	mid := int(uint(lo+hi) >> 1)
	if r := ri.query(2*node, lo, mid, minRank, u, v); r != 0 {
		return r
	}
	return ri.query(2*node+1, mid+1, hi, minRank, u, v)
}
