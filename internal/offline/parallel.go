package offline

// Parallel variant of the Section 4 dynamic program. The memoized
// top-down solver in dp.go is strictly sequential: its recursion shares
// two maps, so a budget sweep runs at single-goroutine speed no matter
// how many cores the box has. This file computes the identical tables
// bottom-up in level-synchronous waves that fan out across workers:
//
//   - Proposition 2 layer: a state (u, v, mu) depends only on states of
//     the same interval with strictly higher mu, and on states of
//     strictly shorter intervals. Processing intervals by increasing
//     length therefore makes every interval of one length independent of
//     the others, and within an interval the mu chain resolves by one
//     descending pass. mu itself is canonicalized to c = |{ranks in
//     [u,v] that are <= mu}| — f(u,v,mu) depends on mu only through the
//     job set J(u,v,mu), so the table needs len+1 entries per interval,
//     not n.
//   - Proposition 1 layer: F(k, v) depends only on rows with smaller k,
//     so the budget levels run in sequence with each level's v states
//     fanned out across workers.
//
// Choice resolution replicates dp.go state for state — same iteration
// order, same strict-< comparisons — so flows, budgets, and
// reconstructed schedules are byte-identical to the sequential solver
// (proven by the differential tests in parallel_test.go and
// internal/solve, under -race).
//
// Beyond MaxParallelJobs the dense tables stop paying for themselves
// (O(n^3/6) entries) and every exported entry point falls back to the
// lazily memoized sequential solver, which touches only reachable
// states.

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"calibsched/internal/core"
	"calibsched/internal/simul"
)

// MaxParallelJobs is the largest instance the table-based parallel
// solver accepts before falling back to the sequential solver: the dense
// Proposition 2 table holds about n^3/6 states, which at n = 256 is
// ~2.9M entries (~70 MB across the value and choice arrays).
const MaxParallelJobs = 256

// parSolver holds the dense DP tables. It embeds the sequential solver
// purely for its read-only precomputation (rel, w, rank, pos, pre, the
// rank index, relWeight); the memo maps are never touched.
type parSolver struct {
	s       *solver
	workers int

	// Proposition 2 layer, flattened: interval (u, v) owns the slots
	// [base[u][v], base[u][v]+len+1], indexed by the canonical state
	// c = |{ranks in [u,v]} <= mu| (c == len is the empty state).
	base    [][]int64
	val     []int64
	chKind  []uint8
	chE     []int32
	chSlot  []int64
	chSplit []int32

	// Proposition 1 layer: row-major (maxK+1) x (n+1).
	maxK int
	fTop []int64
	uTop []int32
}

// parallelWorkers clamps a worker count: <= 0 means GOMAXPROCS.
func parallelWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

func newParSolver(s *solver, workers int) *parSolver {
	n := s.n
	p := &parSolver{s: s, workers: parallelWorkers(workers)}
	p.base = make([][]int64, n+1)
	var total int64
	for u := 1; u <= n; u++ {
		p.base[u] = make([]int64, n+1)
		for v := u; v <= n; v++ {
			p.base[u][v] = total
			total += int64(v-u) + 2 // states c = 0..len
		}
	}
	p.val = make([]int64, total)
	p.chKind = make([]uint8, total)
	p.chE = make([]int32, total)
	p.chSlot = make([]int64, total)
	p.chSplit = make([]int32, total)
	return p
}

// getF reads f(a, b, mu) from the dense table: the canonical index is
// c = len - |J(a,b,mu)|, and the empty state (c == len) holds 0.
func (p *parSolver) getF(a, b, mu int) int64 {
	c := int64(b-a+1) - p.s.cnt(a, b, mu)
	return p.val[p.base[a][b]+c]
}

// parScratch is per-worker reusable state for the bottom-up passes,
// which — unlike the top-down recursion — never re-enter a state, so the
// buffers are safe to reuse across states.
type parScratch struct {
	psi   []int
	ranks []int
}

func newParScratch(n int) *parScratch {
	return &parScratch{psi: make([]int, 0, n), ranks: make([]int, 0, n)}
}

// solveInterval fills every state of interval (u, v), descending c so
// that the same-interval dependencies (strictly higher mu) are ready.
func (p *parSolver) solveInterval(u, v int, sc *parScratch) {
	s := p.s
	length := v - u + 1
	off := p.base[u][v]
	ranks := sc.ranks[:0]
	for i := u; i <= v; i++ {
		ranks = append(ranks, s.rank[i])
	}
	sort.Ints(ranks)
	sc.ranks = ranks
	p.val[off+int64(length)] = 0
	p.chKind[off+int64(length)] = uint8(choiceEmpty)
	for c := length - 1; c >= 0; c-- {
		mu := 0
		if c > 0 {
			mu = ranks[c-1]
		}
		e := s.pos[ranks[c]] // the smallest rank above mu lives at ranks[c]
		best, ch := p.solveState(u, v, mu, e, sc)
		p.val[off+int64(c)] = best
		p.chKind[off+int64(c)] = uint8(ch.kind)
		p.chE[off+int64(c)] = int32(ch.e)
		p.chSlot[off+int64(c)] = ch.slot
		p.chSplit[off+int64(c)] = int32(ch.split)
	}
}

// solveState is solveF against the dense table: identical candidate
// order and identical strict-< comparisons, with the recursive f calls
// replaced by getF lookups.
func (p *parSolver) solveState(u, v, mu, e int, sc *parScratch) (int64, choice) {
	s := p.s
	b := s.rel[v] + 1 - s.T

	psi := sc.psi[:0]
	for j := u; j <= v-1; j++ {
		if s.rank[j] > mu && s.cnt(u, j, mu)%s.T == 0 {
			psi = append(psi, j)
		}
	}
	sc.psi = psi
	if len(psi) > 0 {
		jLast := psi[len(psi)-1]
		if b <= s.rel[jLast] {
			return inf, choice{}
		}
	}

	sPrefix := s.prefixS(u, v, mu)
	best := inf
	var bestCh choice

	if s.rel[e] >= b+sPrefix {
		if rest := p.getF(u, v, s.rank[e]); rest < inf {
			if c := core.MustAdd(rest, core.MustMul(s.w[e], s.rel[e]+1)); c < best {
				best = c
				bestCh = choice{kind: choiceAtRelease, e: e, slot: s.rel[e]}
			}
		}
	} else if sPrefix > 0 {
		if rest := p.getF(u, v, s.rank[e]); rest < inf {
			if c := core.MustAdd(rest, core.MustMul(s.w[e], b+sPrefix)); c < best {
				best = c
				bestCh = choice{kind: choiceBusyPrefix, e: e, slot: b + sPrefix - 1}
			}
		}
	}

	for _, j := range psi {
		if s.rel[j] < s.rel[e] {
			continue
		}
		left := p.getF(u, j, mu)
		if left >= inf {
			continue
		}
		right := p.getF(j+1, v, mu)
		if right >= inf {
			continue
		}
		if c := left + right; c < best {
			best = c
			bestCh = choice{kind: choiceSplit, split: j}
		}
	}
	return best, bestCh
}

// fanOut runs fn(i, scratch) for i = 1..count across the solver's
// workers and waits for the wave to finish.
func (p *parSolver) fanOut(count int, fn func(i int, sc *parScratch)) {
	workers := min(p.workers, count)
	if workers <= 1 {
		sc := newParScratch(p.s.n)
		for i := 1; i <= count; i++ {
			fn(i, sc)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			sc := newParScratch(p.s.n)
			for {
				i := int(next.Add(1))
				if i > count {
					return
				}
				fn(i, sc)
			}
		}()
	}
	wg.Wait()
}

// buildProp2 fills the whole Proposition 2 layer, one interval-length
// level at a time; intervals within a level are independent.
func (p *parSolver) buildProp2() {
	n := p.s.n
	for length := 1; length <= n; length++ {
		p.fanOut(n-length+1, func(u int, sc *parScratch) {
			p.solveInterval(u, u+length-1, sc)
		})
	}
}

// topF reads F(k, v) with the same boundary semantics as fTable.
func (p *parSolver) topF(k, v int) int64 {
	if v == 0 {
		return 0
	}
	if k <= 0 {
		return inf
	}
	return p.fTop[k*(p.s.n+1)+v]
}

// buildTop fills the Proposition 1 layer for budgets 0..maxK; each
// budget level fans its v states out across workers.
func (p *parSolver) buildTop(maxK int) {
	n := p.s.n
	p.maxK = maxK
	p.fTop = make([]int64, (maxK+1)*(n+1))
	p.uTop = make([]int32, (maxK+1)*(n+1))
	for v := 1; v <= n; v++ {
		p.fTop[v] = inf // k == 0 cannot schedule anything
	}
	for k := 1; k <= maxK; k++ {
		row := k * (n + 1)
		p.fanOut(n, func(v int, _ *parScratch) {
			best, bestU := p.topState(k, v)
			p.fTop[row+v] = best
			p.uTop[row+v] = bestU
		})
	}
}

// topState is one fTable state against the dense tables: identical
// candidate order and comparisons.
func (p *parSolver) topState(k, v int) (int64, int32) {
	s := p.s
	if core.MustMul(int64(k), s.T) < int64(v) {
		return inf, 0
	}
	best := inf
	bestU := 0
	for u := 1; u <= v; u++ {
		need := int(simul.CeilDiv(int64(v-u+1), s.T))
		if need > k {
			continue
		}
		prev := p.topF(k-need, u-1)
		if prev >= inf {
			continue
		}
		g := p.getF(u, v, 0)
		if g >= inf {
			continue
		}
		if c := prev + g; c < best {
			best = c
			bestU = u
		}
	}
	return best, int32(bestU)
}

// flowAt mirrors solver.flowAt over the dense tables.
func (p *parSolver) flowAt(k int) int64 {
	if k > p.maxK {
		panic(fmt.Sprintf("offline: parallel flowAt(%d) beyond built budget %d", k, p.maxK))
	}
	val := p.topF(k, p.s.n)
	if val >= inf {
		return Unschedulable
	}
	return val - p.s.relWeight
}

// rebuild mirrors solver.rebuild over the dense choice tables.
func (p *parSolver) rebuild(k int) *core.Schedule {
	if p.flowAt(k) == Unschedulable {
		return nil
	}
	s := p.s
	starts := make([]int64, s.n+1)
	v := s.n
	kk := k
	for v > 0 {
		u := int(p.uTop[kk*(s.n+1)+v])
		if u == 0 {
			panic("offline: broken parallel F reconstruction chain")
		}
		p.emitF(u, v, 0, starts)
		kk -= int(simul.CeilDiv(int64(v-u+1), s.T))
		v = u - 1
	}
	return scheduleFromStarts(s, starts)
}

// emitF mirrors solver.emitF over the dense choice tables.
func (p *parSolver) emitF(u, v, mu int, starts []int64) {
	s := p.s
	for s.cnt(u, v, mu) > 0 {
		idx := p.base[u][v] + int64(v-u+1) - s.cnt(u, v, mu)
		switch choiceKind(p.chKind[idx]) {
		case choiceAtRelease, choiceBusyPrefix:
			e := int(p.chE[idx])
			starts[e] = p.chSlot[idx]
			mu = s.rank[e]
		case choiceSplit:
			j := int(p.chSplit[idx])
			p.emitF(u, j, mu, starts)
			u = j + 1
		default:
			panic("offline: empty parallel choice for nonempty state")
		}
	}
}

// BudgetSweepParallel is BudgetSweep computed by the parallel bottom-up
// solver: flows[k] for k = 0..maxK, byte-identical to the sequential
// sweep. workers <= 0 means GOMAXPROCS; instances beyond MaxParallelJobs
// fall back to the sequential solver.
func BudgetSweepParallel(in *core.Instance, maxK, workers int) ([]int64, error) {
	if maxK < 0 {
		return nil, fmt.Errorf("offline: negative budget %d", maxK)
	}
	if in.N() == 0 {
		return make([]int64, maxK+1), nil
	}
	if in.N() > MaxParallelJobs {
		return BudgetSweep(in, maxK)
	}
	s, err := newSolver(in)
	if err != nil {
		return nil, err
	}
	p := newParSolver(s, workers)
	p.buildProp2()
	p.buildTop(maxK)
	flows := make([]int64, maxK+1)
	for k := 0; k <= maxK; k++ {
		flows[k] = p.flowAt(k)
	}
	return flows, nil
}

// OptimalFlowParallel is OptimalFlow computed by the parallel bottom-up
// solver, byte-identical to the sequential result.
func OptimalFlowParallel(in *core.Instance, k, workers int) (*DPResult, error) {
	if k < 0 {
		return nil, fmt.Errorf("offline: negative budget %d", k)
	}
	if in.N() == 0 {
		return &DPResult{Flow: 0, Schedule: core.NewSchedule(0)}, nil
	}
	if in.N() > MaxParallelJobs {
		return OptimalFlow(in, k)
	}
	s, err := newSolver(in)
	if err != nil {
		return nil, err
	}
	p := newParSolver(s, workers)
	p.buildProp2()
	p.buildTop(k)
	if p.flowAt(k) == Unschedulable {
		return nil, fmt.Errorf("offline: %d calibrations of length %d cannot schedule %d jobs", k, in.T, in.N())
	}
	return &DPResult{Flow: p.flowAt(k), Schedule: p.rebuild(k)}, nil
}

// OptimalTotalCostParallel is OptimalTotalCost computed by the parallel
// bottom-up solver: min over k of G*k + flow(k), with the identical
// minimizing budget and schedule.
func OptimalTotalCostParallel(in *core.Instance, g int64, workers int) (total int64, bestK int, sched *core.Schedule, err error) {
	if g < 0 {
		return 0, 0, nil, fmt.Errorf("offline: negative G %d", g)
	}
	if in.N() == 0 {
		return 0, 0, core.NewSchedule(0), nil
	}
	if in.N() > MaxParallelJobs {
		return OptimalTotalCost(in, g)
	}
	s, err := newSolver(in)
	if err != nil {
		return 0, 0, nil, err
	}
	p := newParSolver(s, workers)
	maxK := in.N() // more calibrations than jobs never help
	p.buildProp2()
	p.buildTop(maxK)
	best := inf
	bestK = -1
	for k := 0; k <= maxK; k++ {
		f := p.flowAt(k)
		if f == Unschedulable {
			continue
		}
		if c := core.MustAdd(core.MustMul(g, int64(k)), f); c < best {
			best = c
			bestK = k
		}
	}
	if bestK < 0 {
		return 0, 0, nil, fmt.Errorf("offline: no feasible schedule (empty budget range)")
	}
	return best, bestK, p.rebuild(bestK), nil
}
