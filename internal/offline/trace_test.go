package offline

import (
	"encoding/json"
	"math/rand/v2"
	"testing"

	"calibsched/internal/core"
	"calibsched/internal/trace"
)

// TestOptimalTotalCostTracedDifferential proves the traced DP returns a
// byte-identical schedule and cost, and that the emitted events cover the
// calendar one-to-one with the greedy-cover rule.
func TestOptimalTotalCostTracedDifferential(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 1))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.IntN(8)
		releases := make([]int64, n)
		weights := make([]int64, n)
		for i := range releases {
			releases[i] = int64(rng.IntN(20))
			weights[i] = 1 + int64(rng.IntN(5))
		}
		in := core.MustInstance(1, int64(1+rng.IntN(5)), releases, weights).Canonicalize()
		g := int64(rng.IntN(30))

		total, bestK, sched, err := OptimalTotalCost(in, g)
		if err != nil {
			t.Fatal(err)
		}
		rec := &trace.Recorder{}
		ttotal, tbestK, tsched, err := OptimalTotalCostTraced(in, g, rec)
		if err != nil {
			t.Fatal(err)
		}
		if total != ttotal || bestK != tbestK {
			t.Fatalf("trial %d: traced optimum (%d, k=%d) != untraced (%d, k=%d)", trial, ttotal, tbestK, total, bestK)
		}
		pb, _ := json.Marshal(sched)
		tb, _ := json.Marshal(tsched)
		if string(pb) != string(tb) {
			t.Fatalf("trial %d: schedule changed under tracing\nuntraced: %s\ntraced:   %s", trial, pb, tb)
		}

		evs := rec.Events()
		if len(evs) != tsched.NumCalibrations() {
			t.Fatalf("trial %d: %d events for %d calibrations", trial, len(evs), tsched.NumCalibrations())
		}
		var totalJobs, totalFlow int64
		for i, ev := range evs {
			c := tsched.Calendar[i]
			if ev.Time != c.Start || ev.Machine != c.Machine {
				t.Fatalf("trial %d event %d: (m%d, t%d) vs calendar (m%d, t%d)", trial, i, ev.Machine, ev.Time, c.Machine, c.Start)
			}
			if ev.Rule != "offline.dp.cover-open" || ev.Alg != "offline.dp" {
				t.Fatalf("trial %d event %d: rule %q alg %q", trial, i, ev.Rule, ev.Alg)
			}
			if ev.Seq != int64(i+1) || ev.Calibrations != i+1 {
				t.Fatalf("trial %d event %d: seq %d calibrations %d", trial, i, ev.Seq, ev.Calibrations)
			}
			if ev.AccruedCost != g*int64(i+1) {
				t.Fatalf("trial %d event %d: accrued %d, want %d", trial, i, ev.AccruedCost, g*int64(i+1))
			}
			totalJobs += int64(ev.QueueLen)
			totalFlow += ev.ProspectiveFlow
		}
		if totalJobs != int64(n) {
			t.Fatalf("trial %d: events attribute %d jobs, instance has %d", trial, totalJobs, n)
		}
		if wantFlow := core.Flow(in, tsched); totalFlow != wantFlow {
			t.Fatalf("trial %d: events attribute flow %d, schedule has %d", trial, totalFlow, wantFlow)
		}
	}
}

// TestOptimalTotalCostTracedNilSink confirms a nil sink degrades to the
// untraced call.
func TestOptimalTotalCostTracedNilSink(t *testing.T) {
	in := core.MustInstance(1, 4, []int64{0, 1, 9}, []int64{2, 1, 3}).Canonicalize()
	total, k, sched, err := OptimalTotalCostTraced(in, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantTotal, wantK, wantSched, err := OptimalTotalCost(in, 10)
	if err != nil {
		t.Fatal(err)
	}
	if total != wantTotal || k != wantK {
		t.Fatalf("nil-sink traced (%d, %d) != untraced (%d, %d)", total, k, wantTotal, wantK)
	}
	pb, _ := json.Marshal(sched)
	tb, _ := json.Marshal(wantSched)
	if string(pb) != string(tb) {
		t.Fatal("nil-sink traced schedule differs")
	}
}
