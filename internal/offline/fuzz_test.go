package offline

import (
	"testing"

	"calibsched/internal/core"
)

// FuzzDPMatchesBrute drives the Section 4 DP against the brute-force
// optimum from fuzzer-chosen instances. Run with `go test -fuzz
// FuzzDPMatchesBrute ./internal/offline` for continuous search; the seed
// corpus runs in normal test mode.
func FuzzDPMatchesBrute(f *testing.F) {
	f.Add([]byte{0, 3, 7}, []byte{1, 2, 3}, uint8(3))
	f.Add([]byte{0, 1, 2, 3, 4}, []byte{5, 4, 3, 2, 1}, uint8(2))
	f.Add([]byte{9}, []byte{9}, uint8(1))
	f.Add([]byte{0, 10, 20, 21}, []byte{1, 1, 9, 1}, uint8(4))
	f.Fuzz(func(t *testing.T, relSeeds, wSeeds []byte, tt uint8) {
		n := len(relSeeds)
		if len(wSeeds) < n {
			n = len(wSeeds)
		}
		if n == 0 || n > 7 {
			return
		}
		releases := make([]int64, n)
		weights := make([]int64, n)
		for i := 0; i < n; i++ {
			releases[i] = int64(relSeeds[i] % 18)
			weights[i] = 1 + int64(wSeeds[i]%6)
		}
		in := core.MustInstance(1, 1+int64(tt%5), releases, weights).Canonicalize()
		flows, err := BudgetSweep(in, in.N())
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k <= in.N(); k++ {
			brute, berr := BruteForce(in, k)
			if flows[k] == Unschedulable {
				if berr == nil {
					t.Fatalf("k=%d: DP unschedulable, brute %d (T=%d jobs %v)", k, brute.Flow, in.T, in.Jobs)
				}
				continue
			}
			if berr != nil || brute.Flow != flows[k] {
				t.Fatalf("k=%d: DP %d != brute (T=%d jobs %v)", k, flows[k], in.T, in.Jobs)
			}
		}
	})
}
