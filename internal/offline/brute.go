package offline

import (
	"fmt"

	"calibsched/internal/core"
	"calibsched/internal/online"
)

// CandidateStarts returns the calibration start times that suffice for an
// optimal single-machine schedule: by Lemma 4.2 some optimal schedule has
// every interval end right after a job scheduled at its release time, so
// starts can be restricted to {max(0, r_j + 1 - T)}. The list is sorted
// and deduplicated.
func CandidateStarts(in *core.Instance) []int64 {
	seen := make(map[int64]bool, in.N())
	var out []int64
	for _, j := range in.Jobs {
		s := j.Release + 1 - in.T
		if s < 0 {
			s = 0
		}
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	// Jobs are sorted by release, so the starts are already nondecreasing;
	// dedup preserved order.
	return out
}

// forEachMultiset enumerates every multiset of cands with at most maxSize
// elements and per-candidate multiplicity at most maxMult, invoking fn with
// a scratch slice (valid only during the call).
func forEachMultiset(cands []int64, maxMult, maxSize int, fn func([]int64)) {
	cur := make([]int64, 0, maxSize)
	var rec func(i int)
	rec = func(i int) {
		fn(cur)
		if len(cur) >= maxSize {
			return
		}
		for j := i; j < len(cands); j++ {
			count := 0
			for _, c := range cur {
				if c == cands[j] {
					count++
				}
			}
			if count >= maxMult {
				continue
			}
			cur = append(cur, cands[j])
			rec(j)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
}

// BruteForce finds the optimal flow with at most k calibrations by
// enumerating calibration-time multisets from CandidateStarts (multiplicity
// up to P for multi-machine instances) and assigning jobs via Observation
// 2.1. Exponential in k; intended for cross-validating the DP on small
// instances. It returns an error when no feasible schedule exists.
func BruteForce(in *core.Instance, k int) (*DPResult, error) {
	if k < 0 {
		return nil, fmt.Errorf("offline: negative budget %d", k)
	}
	if in.N() == 0 {
		return &DPResult{Schedule: core.NewSchedule(0)}, nil
	}
	return bruteOver(in, CandidateStarts(in), k)
}

// ExhaustiveFlow is BruteForce over every integer start in [0, maxRelease
// + n] instead of the Lemma 4.2 candidates; it exists to validate the
// candidate restriction on tiny instances. The horizon extends n past the
// last release so instances with duplicate release times (whose jobs
// necessarily spill past maxRelease) remain coverable.
func ExhaustiveFlow(in *core.Instance, k int) (*DPResult, error) {
	if k < 0 {
		return nil, fmt.Errorf("offline: negative budget %d", k)
	}
	if in.N() == 0 {
		return &DPResult{Schedule: core.NewSchedule(0)}, nil
	}
	var cands []int64
	for t := int64(0); t <= in.MaxRelease()+int64(in.N()); t++ {
		cands = append(cands, t)
	}
	return bruteOver(in, cands, k)
}

func bruteOver(in *core.Instance, cands []int64, k int) (*DPResult, error) {
	maxMult := in.P
	best := inf
	var bestSched *core.Schedule
	forEachMultiset(cands, maxMult, k, func(times []int64) {
		s, err := online.AssignTimes(in, times)
		if err != nil {
			return
		}
		if f := core.Flow(in, s); f < best {
			best = f
			bestSched = s
		}
	})
	if bestSched == nil {
		return nil, fmt.Errorf("offline: no feasible schedule with %d calibrations", k)
	}
	return &DPResult{Flow: best, Schedule: bestSched}, nil
}

// BruteForceTotalCost minimizes the online objective G*#calibrations +
// flow by exhaustive search over candidate multisets of every size up to
// n*P. Exponential; for cross-validation and tiny adversarial instances.
func BruteForceTotalCost(in *core.Instance, g int64) (total int64, sched *core.Schedule, err error) {
	if g < 0 {
		return 0, nil, fmt.Errorf("offline: negative G %d", g)
	}
	if in.N() == 0 {
		return 0, core.NewSchedule(0), nil
	}
	best := inf
	var bestSched *core.Schedule
	forEachMultiset(CandidateStarts(in), in.P, in.N(), func(times []int64) {
		s, aerr := online.AssignTimes(in, times)
		if aerr != nil {
			return
		}
		if c := core.TotalCost(in, s, g); c < best {
			best = c
			bestSched = s
		}
	})
	if bestSched == nil {
		return 0, nil, fmt.Errorf("offline: no feasible schedule found")
	}
	return best, bestSched, nil
}
