package offline

import (
	"fmt"

	"calibsched/internal/core"
	"calibsched/internal/simul"
)

// TotalCostSearch minimizes the online objective G*k + flow(k) over the
// budget k by ternary search instead of a full sweep, implementing the
// paper's Section 4 remark that "we can use a binary search to find the
// optimal calibration budget (between 1 and n calibrations)".
//
// The search is exact because flow(k) is convex in k (adding a calibration
// has diminishing returns) and hence G*k + flow(k) is convex; the
// reproduction does not take this on faith — TestTernaryMatchesSweep and
// TestFlowConvexity cross-check against the exhaustive sweep on thousands
// of randomized instances. Thanks to the lazily memoized Proposition 1
// layer, the search evaluates the DP at O(log n) budgets only, which is
// the point of the remark.
//
// It returns the optimal total cost, the minimizing budget, the number of
// distinct budgets probed, and a schedule achieving the optimum.
func TotalCostSearch(in *core.Instance, g int64) (total int64, bestK, probes int, sched *core.Schedule, err error) {
	if g < 0 {
		return 0, 0, 0, nil, fmt.Errorf("offline: negative G %d", g)
	}
	if in.N() == 0 {
		return 0, 0, 0, core.NewSchedule(0), nil
	}
	s, err := newSolver(in)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	probed := map[int]bool{}
	totalAt := func(k int) int64 {
		probed[k] = true
		f := s.flowAt(k)
		if f == Unschedulable {
			return inf
		}
		return core.MustAdd(core.MustMul(g, int64(k)), f)
	}

	lo := int(simul.CeilDiv(int64(in.N()), in.T)) // below this: infeasible
	hi := in.N()                                  // more calibrations than jobs never help
	for hi-lo >= 3 {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if totalAt(m1) <= totalAt(m2) {
			hi = m2 - 1
		} else {
			lo = m1 + 1
		}
	}
	best := inf
	bestK = -1
	for k := lo; k <= hi; k++ {
		if c := totalAt(k); c < best {
			best = c
			bestK = k
		}
	}
	if bestK < 0 || best >= inf {
		return 0, 0, len(probed), nil, fmt.Errorf("offline: no feasible schedule in budget range [%d,%d]", lo, hi)
	}
	return best, bestK, len(probed), s.rebuild(bestK), nil
}
