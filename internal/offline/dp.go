// Package offline implements Section 4 of the paper: the exact dynamic
// program (Propositions 1 and 2) that minimizes total weighted flow time on
// one machine under a budget of K calibrations, together with brute-force
// optima used to cross-validate it and utilities that convert between the
// budget model and the online cost model (budget sweep, G-cost optimum).
//
// The DP works over jobs sorted by strictly increasing release time (the
// paper's normal form; see Instance.Canonicalize) and in weighted
// completion-time space; flow is recovered by subtracting the instance
// constant sum_j w_j r_j.
//
// Structure recap (Section 4.1): some optimal schedule decomposes into
// groups of consecutive jobs {u..v}, each served by exactly
// ceil((v-u+1)/T) intervals of which all but possibly the last are full,
// the last interval anchored to end right after job v runs at its release
// time (job v is critical, Lemma 4.2 / Definition 4.4). Proposition 1
// searches the group decomposition; Proposition 2 computes the cost of one
// group by repeatedly peeling the lowest-rank (lightest) job e, which is
// always scheduled either at its release time, or as the last job of the
// busy prefix [b, b+s) of the group's final interval, or — if the group
// splits at a multiple-of-T prefix — inside an earlier subgroup.
package offline

import (
	"fmt"
	"math"
	"sort"

	"calibsched/internal/core"
	"calibsched/internal/simul"
	"calibsched/internal/trace"
)

// Unschedulable marks budget entries for which no feasible schedule exists
// (fewer than ceil(n/T) calibrations).
const Unschedulable = int64(-1)

const inf = int64(math.MaxInt64) / 4

// DPResult is the outcome of the exact offline solver.
type DPResult struct {
	// Flow is the minimum total weighted flow with the given budget.
	Flow int64
	// Schedule achieves Flow; its calendar is a minimal greedy cover of
	// the chosen slots and uses at most the budget.
	Schedule *core.Schedule
}

// choiceKind tags how a Proposition 2 state resolved.
type choiceKind uint8

const (
	choiceEmpty choiceKind = iota
	choiceAtRelease
	choiceBusyPrefix
	choiceSplit
)

type choice struct {
	kind  choiceKind
	e     int   // job index (1-based) for AtRelease/BusyPrefix
	slot  int64 // start slot for e
	split int   // split job j for Split
}

type solver struct {
	n    int
	T    int64
	rel  []int64 // 1-based
	w    []int64 // 1-based
	rank []int   // 1-based job index -> rank in 1..n
	pos  []int   // rank -> 1-based job index (inverse of rank)

	// pre[mu][j] = #{i in 1..j : rank_i > mu}; cnt(u,j,mu) is a prefix
	// difference.
	pre [][]int32

	// ri answers minRankAbove queries in O(log^2 n) instead of an O(n)
	// scan per DP state; see rankindex.go.
	ri *rankIndex

	// relScratch is the reusable release buffer of prefixSScan, hoisted
	// so the scan variant does not allocate per call.
	relScratch []int64

	fMemo   map[uint64]int64
	fChoice map[uint64]choice

	// Proposition 1 layer (memoized): key k*(n+1)+v.
	fMemoTop   map[int]int64
	fChoiceTop map[int]int
	relWeight  int64

	// Decision tracing (nil sink = off): schedule reconstruction emits one
	// trace.DecisionEvent per calendar entry of the greedy cover. traceG
	// is the online cost G for accrued-cost accounting (0 when the caller
	// works in the pure budget model).
	sink     trace.Sink
	traceG   int64
	traceSeq int64
}

// keyBits is the field width of key(): u, v, and mu each pack into
// keyBits bits of one uint64 memo key.
const keyBits = 21

// MaxDPJobs is the largest job count the DP accepts: u, v, and mu all
// range over 0..n, so n must fit in a keyBits-bit field. Beyond it the
// packed memo keys of key() would silently alias distinct states and the
// DP would return wrong optima; newSolver fails fast instead.
const MaxDPJobs = 1<<keyBits - 1

func key(u, v, mu int) uint64 {
	return uint64(u)<<(2*keyBits) | uint64(v)<<keyBits | uint64(mu)
}

func newSolver(in *core.Instance) (*solver, error) {
	if in.P != 1 {
		return nil, fmt.Errorf("offline: DP requires P = 1, got %d", in.P)
	}
	n := in.N()
	if n > MaxDPJobs {
		return nil, fmt.Errorf("offline: %d jobs exceed the DP limit %d (memo keys pack three %d-bit indices into a uint64; beyond that they would collide)", n, MaxDPJobs, keyBits)
	}
	for i := 1; i < n; i++ {
		if in.Jobs[i].Release == in.Jobs[i-1].Release {
			return nil, fmt.Errorf("offline: DP requires distinct release times (canonicalize first); jobs %d and %d share release %d", i-1, i, in.Jobs[i].Release)
		}
	}
	s := &solver{
		n:          n,
		T:          in.T,
		rel:        make([]int64, n+1),
		w:          make([]int64, n+1),
		rank:       make([]int, n+1),
		fMemo:      make(map[uint64]int64),
		fChoice:    make(map[uint64]choice),
		fMemoTop:   make(map[int]int64),
		fChoiceTop: make(map[int]int),
	}
	ranks := in.Ranks()
	for i, j := range in.Jobs {
		s.rel[i+1] = j.Release
		s.w[i+1] = j.Weight
		s.rank[i+1] = ranks[j.ID]
		s.relWeight = core.MustAdd(s.relWeight, core.MustMul(j.Weight, j.Release))
	}
	s.pre = make([][]int32, n+1)
	for mu := 0; mu <= n; mu++ {
		row := make([]int32, n+1)
		for j := 1; j <= n; j++ {
			row[j] = row[j-1]
			if s.rank[j] > mu {
				row[j]++
			}
		}
		s.pre[mu] = row
	}
	s.pos = make([]int, n+1)
	for i := 1; i <= n; i++ {
		s.pos[s.rank[i]] = i
	}
	s.ri = newRankIndex(s.pos)
	s.relScratch = make([]int64, 0, n)
	return s, nil
}

// cnt returns |J(u,j,mu)| = #{i in u..j : rank_i > mu}; zero when j < u.
func (s *solver) cnt(u, j, mu int) int64 {
	if j < u {
		return 0
	}
	return int64(s.pre[mu][j] - s.pre[mu][u-1])
}

// minRankAbove returns the index of the job in u..v with the smallest rank
// exceeding mu, or 0 if none. The merge-sort tree answers it in
// O(log^2 n) instead of scanning the whole range.
func (s *solver) minRankAbove(u, v, mu int) int {
	return s.ri.minAbove(u, v, mu)
}

// minRankAboveScan is the original O(v-u) scan, retained to cross-check
// the indexed minRankAbove in tests.
func (s *solver) minRankAboveScan(u, v, mu int) int {
	best := 0
	bestRank := math.MaxInt
	for i := u; i <= v; i++ {
		if r := s.rank[i]; r > mu && r < bestRank {
			bestRank = r
			best = i
		}
	}
	return best
}

// prefixS computes Definition 4.5's s for the state (u,v,mu): the smallest
// h >= 0 with h == |{j in J : r_j < b+h}| (mod T), where b = rel[v]+1-T.
// Lemma 4.6: the machine is busy throughout [b, b+s) and every job is
// scheduled at its release during [b+s, b+T).
//
// Let c(h) = |{j in J(u,v,mu) : r_j < b+h}| and d(h) = h - c(h). Release
// times are distinct, so d is nondecreasing with unit steps, and the
// fixed-point condition is d(h) ≡ 0 (mod T). Starting from d(0) = -c(0),
// d passes through every integer it crosses, so the first fixed point is
// the first h where d reaches the smallest multiple of T that is >= -c(0)
// — found by binary search over h, with each c(h) a binary search over
// the release-sorted index range plus a rank-prefix difference. O(log T
// * log n) per call, allocation-free (the old scan built a fresh release
// slice per call; see prefixSScan).
func (s *solver) prefixS(u, v, mu int) int64 {
	b := s.rel[v] + 1 - s.T
	count := func(h int64) int64 {
		// Largest i in [u, v] with rel[i] < b+h (releases ascend with i).
		lo, hi, idx := u, v, u-1
		for lo <= hi {
			mid := int(uint(lo+hi) >> 1)
			if s.rel[mid] < b+h {
				idx = mid
				lo = mid + 1
			} else {
				hi = mid - 1
			}
		}
		return s.cnt(u, idx, mu)
	}
	c0 := count(0)
	target := -core.MustMul(c0/s.T, s.T) // smallest multiple of T >= -c0
	lo, hi, ans := int64(0), s.T, int64(-1)
	for lo <= hi {
		mid := (lo + hi) / 2
		if mid-count(mid) >= target {
			ans = mid
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if ans < 0 {
		// A fixed point always exists in [0, T]: d(T) >= target because d
		// moves by at most one per step while T covers a full residue class.
		panic("offline: no busy-prefix fixed point; unreachable")
	}
	return ans
}

// prefixSScan is the original O(T + n) scan over the state's releases,
// retained to cross-check prefixS in tests. The release buffer is hoisted
// onto the solver so repeated calls do not allocate.
func (s *solver) prefixSScan(u, v, mu int) int64 {
	b := s.rel[v] + 1 - s.T
	rels := s.relScratch[:0]
	for i := u; i <= v; i++ {
		if s.rank[i] > mu {
			rels = append(rels, s.rel[i])
		}
	}
	s.relScratch = rels
	ptr := 0
	for h := int64(0); h <= s.T; h++ {
		for ptr < len(rels) && rels[ptr] < b+h {
			ptr++
		}
		if h%s.T == int64(ptr)%s.T {
			return h
		}
	}
	panic("offline: no busy-prefix fixed point; unreachable")
}

// f computes Proposition 2: the minimum total weighted completion time of
// J(u,v,mu) scheduled in exactly ceil(|J|/T) intervals, all full except
// possibly the last, which occupies [rel[v]+1-T, rel[v]+1).
func (s *solver) f(u, v, mu int) int64 {
	if s.cnt(u, v, mu) == 0 {
		return 0
	}
	k := key(u, v, mu)
	if val, ok := s.fMemo[k]; ok {
		return val
	}
	// Mark in progress to surface accidental cycles during development.
	s.fMemo[k] = inf
	val, ch := s.solveF(u, v, mu)
	s.fMemo[k] = val
	s.fChoice[k] = ch
	return val
}

func (s *solver) solveF(u, v, mu int) (int64, choice) {
	b := s.rel[v] + 1 - s.T
	e := s.minRankAbove(u, v, mu)

	// Psi: jobs j in J(u, v-1, mu) whose prefix count |J(u,j,mu)| is a
	// positive multiple of T. jLast is the one with the latest release.
	var psi []int
	for j := u; j <= v-1; j++ {
		if s.rank[j] > mu && s.cnt(u, j, mu)%s.T == 0 {
			psi = append(psi, j)
		}
	}
	if len(psi) > 0 {
		jLast := psi[len(psi)-1]
		if b <= s.rel[jLast] {
			// The full prefix intervals cannot fit before the final
			// interval: infeasible as a single group.
			return inf, choice{}
		}
	}

	sPrefix := s.prefixS(u, v, mu)
	best := inf
	var bestCh choice

	if s.rel[e] >= b+sPrefix {
		// Job e is released in the everything-at-release suffix of the
		// final interval: schedule it at its release time.
		if rest := s.f(u, v, s.rank[e]); rest < inf {
			if c := core.MustAdd(rest, core.MustMul(s.w[e], s.rel[e]+1)); c < best {
				best = c
				bestCh = choice{kind: choiceAtRelease, e: e, slot: s.rel[e]}
			}
		}
	} else if sPrefix > 0 {
		// Job e is delayed: as the lightest job it takes the last slot of
		// the busy prefix, completing at b+s.
		if rest := s.f(u, v, s.rank[e]); rest < inf {
			if c := core.MustAdd(rest, core.MustMul(s.w[e], b+sPrefix)); c < best {
				best = c
				bestCh = choice{kind: choiceBusyPrefix, e: e, slot: b + sPrefix - 1}
			}
		}
	}

	for _, j := range psi {
		if s.rel[j] < s.rel[e] {
			continue // e must lie in the left part for a split at j
		}
		left := s.f(u, j, mu)
		if left >= inf {
			continue
		}
		right := s.f(j+1, v, mu)
		if right >= inf {
			continue
		}
		if c := left + right; c < best {
			best = c
			bestCh = choice{kind: choiceSplit, split: j}
		}
	}
	return best, bestCh
}

// emitF writes the slots chosen for state (u,v,mu) into starts[jobIndex].
func (s *solver) emitF(u, v, mu int, starts []int64) {
	for s.cnt(u, v, mu) > 0 {
		ch, ok := s.fChoice[key(u, v, mu)]
		if !ok {
			panic("offline: missing DP choice during reconstruction")
		}
		switch ch.kind {
		case choiceAtRelease, choiceBusyPrefix:
			starts[ch.e] = ch.slot
			mu = s.rank[ch.e]
		case choiceSplit:
			s.emitF(u, ch.split, mu, starts)
			u = ch.split + 1
		default:
			panic("offline: empty choice for nonempty state")
		}
	}
}

// Solve runs Proposition 1 for budgets 0..maxK and returns the F table:
// flows[k] is the optimal total weighted flow with at most k calibrations,
// or Unschedulable. The returned function reconstructs a schedule for a
// feasible budget.
// fTable returns F(k, v): the minimum total weighted completion time of
// jobs 1..v using at most k calibrations (Proposition 1), computed by
// memoized recursion so that callers probing only a few budgets (the
// ternary search) touch only the states they need.
func (s *solver) fTable(k, v int) int64 {
	if v == 0 {
		return 0
	}
	if k <= 0 || core.MustMul(int64(k), s.T) < int64(v) {
		return inf
	}
	key := k*(s.n+1) + v
	if val, ok := s.fMemoTop[key]; ok {
		return val
	}
	best := inf
	bestU := 0
	for u := 1; u <= v; u++ {
		need := int(simul.CeilDiv(int64(v-u+1), s.T))
		if need > k {
			continue
		}
		prev := s.fTable(k-need, u-1)
		if prev >= inf {
			continue
		}
		g := s.f(u, v, 0)
		if g >= inf {
			continue
		}
		if c := prev + g; c < best {
			best = c
			bestU = u
		}
	}
	s.fMemoTop[key] = best
	s.fChoiceTop[key] = bestU
	return best
}

// flowAt returns the optimal total weighted flow with at most k
// calibrations, or Unschedulable.
func (s *solver) flowAt(k int) int64 {
	val := s.fTable(k, s.n)
	if val >= inf {
		return Unschedulable
	}
	return val - s.relWeight
}

// rebuild reconstructs a schedule achieving flowAt(k); nil if infeasible.
func (s *solver) rebuild(k int) *core.Schedule {
	if s.flowAt(k) == Unschedulable {
		return nil
	}
	starts := make([]int64, s.n+1)
	v := s.n
	kk := k
	for v > 0 {
		u, ok := s.fChoiceTop[kk*(s.n+1)+v]
		if !ok || u == 0 {
			panic("offline: broken F reconstruction chain")
		}
		s.emitF(u, v, 0, starts)
		kk -= int(simul.CeilDiv(int64(v-u+1), s.T))
		v = u - 1
	}
	return scheduleFromStarts(s, starts)
}

func (s *solver) solve(maxK int) (flows []int64, rebuild func(k int) *core.Schedule) {
	flows = make([]int64, maxK+1)
	for k := 0; k <= maxK; k++ {
		flows[k] = s.flowAt(k)
	}
	return flows, s.rebuild
}

// scheduleFromStarts builds a schedule from 1-based per-job start slots,
// deriving a minimal calendar by greedy interval covering. With a sink set
// it also emits one decision event per calendar entry: the DP fixed the
// slots, so each interval opens exactly where the Proposition 1/2 optimum
// forces an uncovered slot, and the event snapshots the jobs that interval
// serves (queue fields) and their realized weighted flow (prospective
// flow field).
func scheduleFromStarts(s *solver, starts []int64) *core.Schedule {
	sched := core.NewSchedule(s.n)
	order := make([]int, s.n)
	for i := range order {
		order[i] = i + 1
	}
	sort.Slice(order, func(a, b int) bool { return starts[order[a]] < starts[order[b]] })
	coveredUntil := int64(math.MinInt64)
	var calStart int64
	groupLen := 0
	var groupWeight, groupFlow int64
	flush := func() {
		if s.sink == nil || groupLen == 0 {
			return
		}
		s.traceSeq++
		s.sink.Emit(trace.DecisionEvent{
			Seq:             s.traceSeq,
			Time:            calStart,
			Machine:         0,
			Alg:             "offline.dp",
			Rule:            "offline.dp.cover-open",
			QueueLen:        groupLen,
			QueueWeight:     groupWeight,
			ProspectiveFlow: groupFlow,
			Calibrations:    sched.NumCalibrations(),
			AccruedCost:     core.MustMul(s.traceG, int64(sched.NumCalibrations())),
		})
	}
	for _, j := range order {
		t := starts[j]
		if t >= coveredUntil {
			flush()
			sched.Calibrate(0, t)
			coveredUntil = t + s.T
			calStart = t
			groupLen, groupWeight, groupFlow = 0, 0, 0
		}
		// Job IDs equal index-1: solver indices follow instance order.
		sched.Assign(j-1, 0, t)
		if s.sink != nil {
			groupLen++
			groupWeight = core.MustAdd(groupWeight, s.w[j])
			groupFlow = core.MustAdd(groupFlow, core.MustMul(s.w[j], t+1-s.rel[j]))
		}
	}
	flush()
	return sched
}

// OptimalFlow solves the offline problem exactly: the minimum total
// weighted flow on one machine using at most k calibrations (Theorem 4.7).
// The instance must have distinct release times. It returns an error if k
// calibrations cannot fit all jobs (k*T < n).
func OptimalFlow(in *core.Instance, k int) (*DPResult, error) {
	if k < 0 {
		return nil, fmt.Errorf("offline: negative budget %d", k)
	}
	if in.N() == 0 {
		return &DPResult{Flow: 0, Schedule: core.NewSchedule(0)}, nil
	}
	s, err := newSolver(in)
	if err != nil {
		return nil, err
	}
	flows, rebuild := s.solve(k)
	if flows[k] == Unschedulable {
		return nil, fmt.Errorf("offline: %d calibrations of length %d cannot schedule %d jobs", k, in.T, in.N())
	}
	sched := rebuild(k)
	return &DPResult{Flow: flows[k], Schedule: sched}, nil
}

// BudgetSweep returns flows[k] for k = 0..maxK: the optimal total weighted
// flow using at most k calibrations, with Unschedulable where no feasible
// schedule exists. One DP run serves the whole sweep.
func BudgetSweep(in *core.Instance, maxK int) ([]int64, error) {
	if maxK < 0 {
		return nil, fmt.Errorf("offline: negative budget %d", maxK)
	}
	if in.N() == 0 {
		return make([]int64, maxK+1), nil
	}
	s, err := newSolver(in)
	if err != nil {
		return nil, err
	}
	flows, _ := s.solve(maxK)
	return flows, nil
}

// OptimalTotalCost converts the budget model to the online objective: it
// returns min over k of G*k + OptimalFlow(k), the offline optimum of the
// Section 3 cost, plus the minimizing budget and a schedule achieving it.
// (The paper observes this reduction — "we can use a binary search to find
// the optimal calibration budget"; a full sweep is exact and just as cheap
// here because one DP run yields every budget.)
func OptimalTotalCost(in *core.Instance, g int64) (total int64, bestK int, sched *core.Schedule, err error) {
	return optimalTotalCost(in, g, nil)
}

// OptimalTotalCostTraced is OptimalTotalCost with decision tracing: the
// schedule reconstruction emits one trace.DecisionEvent per calendar entry
// (rule "offline.dp.cover-open"), so the offline optimum explains its
// calibrations the same way the online algorithms do. A nil sink degrades
// to the untraced call.
func OptimalTotalCostTraced(in *core.Instance, g int64, sink trace.Sink) (total int64, bestK int, sched *core.Schedule, err error) {
	return optimalTotalCost(in, g, sink)
}

func optimalTotalCost(in *core.Instance, g int64, sink trace.Sink) (total int64, bestK int, sched *core.Schedule, err error) {
	if g < 0 {
		return 0, 0, nil, fmt.Errorf("offline: negative G %d", g)
	}
	if in.N() == 0 {
		return 0, 0, core.NewSchedule(0), nil
	}
	s, err := newSolver(in)
	if err != nil {
		return 0, 0, nil, err
	}
	s.sink = sink
	s.traceG = g
	maxK := in.N() // more calibrations than jobs never help
	flows, rebuild := s.solve(maxK)
	best := inf
	bestK = -1
	for k := 0; k <= maxK; k++ {
		if flows[k] == Unschedulable {
			continue
		}
		if c := core.MustAdd(core.MustMul(g, int64(k)), flows[k]); c < best {
			best = c
			bestK = k
		}
	}
	if bestK < 0 {
		return 0, 0, nil, fmt.Errorf("offline: no feasible schedule (empty budget range)")
	}
	return best, bestK, rebuild(bestK), nil
}
