package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func toFloats(xs []int16) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(v)
	}
	return out
}

// TestQuickSummaryBounds: mean and quantiles live within [min, max].
func TestQuickSummaryBounds(t *testing.T) {
	f := func(xs []int16) bool {
		if len(xs) == 0 {
			return Summarize(nil).N == 0
		}
		s := Summarize(toFloats(xs))
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		for _, q := range []float64{s.P50, s.P90, s.P99} {
			if q < s.Min-1e-9 || q > s.Max+1e-9 {
				return false
			}
		}
		return s.P50 <= s.P90+1e-9 && s.P90 <= s.P99+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickQuantileMonotoneInQ: Quantile is nondecreasing in q.
func TestQuickQuantileMonotoneInQ(t *testing.T) {
	f := func(xs []int16, a, b uint8) bool {
		if len(xs) == 0 {
			return true
		}
		fs := toFloats(xs)
		sort.Float64s(fs)
		qa := float64(a) / 255
		qb := float64(b) / 255
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(fs, qa) <= Quantile(fs, qb)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLinearFitRecoversExactLines: a noiseless line is recovered
// exactly.
func TestQuickLinearFitRecoversExactLines(t *testing.T) {
	f := func(slope, intercept int8, n uint8) bool {
		m := int(n%16) + 2
		x := make([]float64, m)
		y := make([]float64, m)
		for i := 0; i < m; i++ {
			x[i] = float64(i)
			y[i] = float64(slope)*x[i] + float64(intercept)
		}
		gs, gi := LinearFit(x, y)
		return math.Abs(gs-float64(slope)) < 1e-9 && math.Abs(gi-float64(intercept)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
