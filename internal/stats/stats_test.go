package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("stddev = %f", s.Stddev)
	}
	if math.Abs(s.GeometricMean-math.Pow(24, 0.25)) > 1e-12 {
		t.Errorf("geomean = %f", s.GeometricMean)
	}
	if s.P50 != 2.5 {
		t.Errorf("p50 = %f", s.P50)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Error("empty summary nonzero N")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 50}, {0.5, 30}, {0.25, 20}, {0.9, 46},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%f) = %f, want %f", c.q, got, c.want)
		}
	}
}

func TestQuantilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on empty sample")
		}
	}()
	Quantile(nil, 0.5)
}

func TestLinearFit(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept := LinearFit(x, y)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Fatalf("fit = %f, %f", slope, intercept)
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = x^3 exactly.
	x := []float64{2, 4, 8, 16}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = x[i] * x[i] * x[i]
	}
	if got := LogLogSlope(x, y); math.Abs(got-3) > 1e-9 {
		t.Fatalf("slope = %f, want 3", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 42)
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("output = %q", out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[2], "1.500") {
		t.Errorf("row = %q", lines[2])
	}
	if !strings.Contains(lines[3], "42") {
		t.Errorf("row = %q", lines[3])
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestFormatFloat(t *testing.T) {
	if FormatFloat(3) != "3" {
		t.Errorf("FormatFloat(3) = %q", FormatFloat(3))
	}
	if FormatFloat(3.14159) != "3.142" {
		t.Errorf("FormatFloat(pi) = %q", FormatFloat(3.14159))
	}
}
