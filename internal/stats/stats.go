// Package stats provides the small statistical and tabular toolkit used by
// the experiment harness: summaries (mean/min/max/quantiles), least-squares
// fits for scaling experiments, and a fixed-width table renderer so every
// experiment prints consistent, diffable output.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample.
type Summary struct {
	N                  int
	Mean, Min, Max     float64
	Stddev             float64
	P50, P90, P99      float64
	GeometricMean      float64
	geometricMeanValid bool
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	logSum := 0.0
	s.geometricMeanValid = true
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		if x > 0 {
			logSum += math.Log(x)
		} else {
			s.geometricMeanValid = false
		}
	}
	s.Mean = sum / float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	s.Stddev = math.Sqrt(varSum / float64(len(xs)))
	if s.geometricMeanValid {
		s.GeometricMean = math.Exp(logSum / float64(len(xs)))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Quantile(sorted, 0.50)
	s.P90 = Quantile(sorted, 0.90)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// sample using linear interpolation. It panics on an empty sample.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// LinearFit returns the least-squares slope and intercept of y against x.
// It panics unless len(x) == len(y) >= 2.
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) || len(x) < 2 {
		panic("stats: LinearFit needs two equal-length samples of size >= 2")
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		panic("stats: LinearFit with degenerate x")
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// LogLogSlope fits log(y) against log(x) and returns the slope — the
// empirical growth exponent used by the E5 scaling experiment. All inputs
// must be positive.
func LogLogSlope(x, y []float64) float64 {
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			panic("stats: LogLogSlope needs positive samples")
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	slope, _ := LinearFit(lx, ly)
	return slope
}

// Table renders fixed-width aligned text tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// FormatFloat renders a float compactly: integers without decimals,
// otherwise three significant decimals.
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}
