// Package analysis reproduces the structural machinery the paper's proofs
// are built on, so that the charging arguments can be checked empirically:
//
//   - per-interval statistics (fullness, flow, net flow, whether the
//     interval follows an uncalibrated gap),
//   - the Section 3.2 partition of a single-machine schedule into
//     *sequences* (maximal runs of consecutive intervals in which every
//     interval but the last is full),
//   - OPT_r, the optimal schedule restricted to release-time order,
//     computed exhaustively on small instances, and
//   - executable checks for the structural lemmas: Lemma 3.2 (Algorithm 1
//     never double-charges an OPT interval) and Lemma 3.6 (OPT_r must
//     calibrate nearly as early as any sequence of full intervals).
//
// Everything here is single-machine: that is where the paper's charging
// arguments live (Algorithm 3 is analyzed with the LP of package lp).
package analysis

import (
	"fmt"
	"sort"

	"calibsched/internal/core"
	"calibsched/internal/online"
)

// Interval describes one calibrated interval of a single-machine schedule
// with the statistics the proofs use.
type Interval struct {
	// Start and End delimit [Start, End) with End = Start + T.
	Start, End int64
	// Jobs holds the IDs of jobs run in [Start, End), attributed to the
	// latest interval covering their slot, in start order.
	Jobs []int
	// Flow is sum w_j (t_j + 1 - r_j) over Jobs.
	Flow int64
	// NetFlow is sum w_j (t_j - r_j) over Jobs — Lemma 3.5's quantity.
	NetFlow int64
	// Full reports whether every step of [Start, End) runs a job.
	Full bool
	// GapPreceded reports whether the step Start-1 was uncalibrated (or
	// Start == 0 with no earlier interval): exactly the situation in which
	// the algorithms evaluated their triggers on the previous step and
	// found them false.
	GapPreceded bool
}

// Intervals computes interval statistics for machine m of a valid
// schedule, in increasing start order.
func Intervals(in *core.Instance, s *core.Schedule, m int) []Interval {
	starts, jobs := core.IntervalJobs(in, s, m)
	// Collect every calibration (including job-less ones) for coverage
	// queries.
	var all []int64
	for _, c := range s.Calendar {
		if c.Machine == m {
			all = append(all, c.Start)
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	coveredAt := func(t int64) bool {
		i := sort.Search(len(all), func(i int) bool { return all[i] > t })
		return i > 0 && t < all[i-1]+in.T
	}
	busy := make(map[int64]bool, len(in.Jobs))
	for _, a := range s.Assignments {
		if a.Machine == m && a.Start >= 0 {
			busy[a.Start] = true
		}
	}
	out := make([]Interval, len(starts))
	for k, b := range starts {
		iv := Interval{Start: b, End: b + in.T, Jobs: jobs[k], Full: true}
		for t := b; t < b+in.T; t++ {
			if !busy[t] {
				iv.Full = false
				break
			}
		}
		iv.GapPreceded = b == 0 || !coveredAt(b-1)
		for _, id := range iv.Jobs {
			j := in.Jobs[id]
			start := s.Assignments[id].Start
			iv.Flow += j.Flow(start)
			iv.NetFlow += j.Weight * (start - j.Release)
		}
		out[k] = iv
	}
	return out
}

// Sequence is the Section 3.2 object: a maximal group of consecutive
// intervals in which all but the last interval is full. Boundaries fall
// exactly at non-full intervals (the partition is unique); the final
// sequence may end in a full interval if it is the schedule's last.
type Sequence struct {
	Intervals []Interval
	// Begin is b_I: the time step immediately after the previous sequence
	// ends (0 for the first sequence). End is e_I, the final time step of
	// the last interval.
	Begin, End int64
}

// Sequences partitions machine m's intervals into sequences.
func Sequences(in *core.Instance, s *core.Schedule, m int) []Sequence {
	ivs := Intervals(in, s, m)
	var out []Sequence
	prevEnd := int64(0)
	var cur []Interval
	flush := func() {
		if len(cur) == 0 {
			return
		}
		seq := Sequence{Intervals: cur, Begin: prevEnd, End: cur[len(cur)-1].End - 1}
		out = append(out, seq)
		prevEnd = cur[len(cur)-1].End
		cur = nil
	}
	for _, iv := range ivs {
		cur = append(cur, iv)
		if !iv.Full {
			flush()
		}
	}
	flush()
	return out
}

// OptR computes the optimal single-machine schedule among schedules that
// process jobs in release-time order, for the G-cost objective, by
// exhaustive search over every calibration-time subset of [0, maxRelease
// + 1] with the FIFO list assignment (which is optimal for a fixed
// calendar among release-ordered schedules by the Observation 2.1 exchange
// argument). Exponential in the release horizon; small instances only.
func OptR(in *core.Instance, g int64) (*core.Schedule, error) {
	if in.P != 1 {
		return nil, fmt.Errorf("analysis: OptR requires P = 1, got %d", in.P)
	}
	if g < 0 {
		return nil, fmt.Errorf("analysis: negative G %d", g)
	}
	if in.N() == 0 {
		return core.NewSchedule(0), nil
	}
	horizon := in.MaxRelease() + 2
	if horizon > 24 {
		return nil, fmt.Errorf("analysis: OptR horizon %d too large for exhaustive search (max 24)", horizon)
	}
	var best *core.Schedule
	bestCost := int64(1) << 62
	var times []int64
	var rec func(next int64)
	rec = func(next int64) {
		s, err := online.AssignTimesFIFO(in, times)
		if err == nil {
			if c := core.TotalCost(in, s, g); c < bestCost {
				bestCost = c
				best = s
			}
		}
		for t := next; t < horizon; t++ {
			times = append(times, t)
			rec(t + 1)
			times = times[:len(times)-1]
		}
	}
	rec(0)
	if best == nil {
		return nil, fmt.Errorf("analysis: no feasible release-ordered schedule found")
	}
	return best, nil
}

// ReassignInReleaseOrder rewrites an unweighted single-machine schedule so
// jobs occupy the same slot multiset in release order: the i-th earliest
// slot runs the i-th earliest-released job. For unit weights the total
// flow is unchanged (sum of completions minus sum of releases), and
// feasibility is preserved: at most i-1 slots can precede the i-th release
// because the jobs released later must all sit at or after it. Lemma 3.2
// presumes a release-ordered optimum; this supplies one from any optimum.
func ReassignInReleaseOrder(in *core.Instance, s *core.Schedule) (*core.Schedule, error) {
	if in.P != 1 {
		return nil, fmt.Errorf("analysis: ReassignInReleaseOrder requires P = 1")
	}
	if !in.Unweighted() {
		return nil, fmt.Errorf("analysis: ReassignInReleaseOrder requires unit weights")
	}
	slots := make([]int64, 0, in.N())
	for _, a := range s.Assignments {
		slots = append(slots, a.Start)
	}
	sort.Slice(slots, func(a, b int) bool { return slots[a] < slots[b] })
	out := s.Clone()
	for i, j := range in.Jobs { // jobs already sorted by release
		if slots[i] < j.Release {
			return nil, fmt.Errorf("analysis: slot %d precedes release %d of job %d (input schedule invalid?)",
				slots[i], j.Release, j.ID)
		}
		out.Assign(j.ID, 0, slots[i])
	}
	return out, nil
}

// CheckLemma32 verifies Lemma 3.2 on a pair (Algorithm 1 schedule, optimal
// schedule) for an unweighted single-machine instance: for every Algorithm
// 1 interval i whose job set contains a job scheduled strictly earlier in
// OPT (J_i^E nonempty), the earliest OPT interval containing a job of J_i
// must contain no job of any later Algorithm 1 interval. It returns an
// error describing the first violation, or nil.
//
// Reading note: the paper defines J_i^E as jobs scheduled "earlier in OPT
// than in Algorithm 1 or at the same time in both". Under that literal
// tie-inclusive reading the lemma admits counterexamples when an Algorithm
// 1 interval contains idle gaps (see TestLemma32LiteralTieReadingFails for
// a concrete instance found by this reproduction); under the strict
// reading used here it holds on every instance sampled. EXPERIMENTS.md
// records the discrepancy.
func CheckLemma32(in *core.Instance, alg, opt *core.Schedule) error {
	algIvs := Intervals(in, alg, 0)
	optIvs := Intervals(in, opt, 0)
	// optIndex[job] = index of the OPT interval containing the job.
	optIndex := make(map[int]int)
	for k, iv := range optIvs {
		for _, id := range iv.Jobs {
			optIndex[id] = k
		}
	}
	// algIndex[job] = index of the Algorithm 1 interval containing it.
	algIndex := make(map[int]int)
	for k, iv := range algIvs {
		for _, id := range iv.Jobs {
			algIndex[id] = k
		}
	}
	for k, iv := range algIvs {
		// J_i^E under the strict reading: jobs scheduled strictly earlier
		// in OPT (see the function comment).
		hasEarlier := false
		for _, id := range iv.Jobs {
			if opt.Start(id) < alg.Start(id) {
				hasEarlier = true
				break
			}
		}
		if !hasEarlier {
			continue
		}
		// i^OPT: earliest OPT interval containing a job in J_i.
		iOpt := -1
		for _, id := range iv.Jobs {
			if oi := optIndex[id]; iOpt == -1 || oi < iOpt {
				iOpt = oi
			}
		}
		// No job of a later Algorithm 1 interval may sit in i^OPT.
		for _, id := range optIvs[iOpt].Jobs {
			if algIndex[id] > k {
				return fmt.Errorf("analysis: Lemma 3.2 violated: OPT interval %d (start %d) holds job %d of later ALG interval %d (> %d)",
					iOpt, optIvs[iOpt].Start, id, algIndex[id], k)
			}
		}
	}
	return nil
}

// CheckLemma36 verifies Lemma 3.6 on a pair (Algorithm 2 schedule, OPT_r
// schedule): for every sequence I of the algorithm's schedule and every
// k < |I|, OPT_r must have at least k intervals that end after b_I and
// begin no later than the k-th interval of I begins. It returns an error
// describing the first violation, or nil.
func CheckLemma36(in *core.Instance, alg, optR *core.Schedule) error {
	optIvs := Intervals(in, optR, 0)
	for _, seq := range Sequences(in, alg, 0) {
		for k := 1; k < len(seq.Intervals); k++ {
			kth := seq.Intervals[k-1] // k-th interval, 1-indexed
			count := 0
			for _, ov := range optIvs {
				if ov.End > seq.Begin && ov.Start <= kth.Start {
					count++
				}
			}
			if count < k {
				return fmt.Errorf("analysis: Lemma 3.6 violated: sequence beginning at %d, k=%d: only %d OPT_r intervals end after %d and start by %d",
					seq.Begin, k, count, seq.Begin, kth.Start)
			}
		}
	}
	return nil
}
