package analysis

import (
	"fmt"
	"math"
	"sort"

	"calibsched/internal/core"
	"calibsched/internal/simul"
)

const inf = int64(math.MaxInt64) / 4

// OptRFast computes OPT_r — the optimal release-ordered single-machine
// schedule for the G-cost objective — in polynomial time, by adapting the
// paper's Section 4 decomposition to the fixed FIFO order:
//
//   - some optimal release-ordered schedule splits into groups of
//     consecutive jobs [u, v], each served by exactly ceil((v-u+1)/T)
//     intervals, all full but possibly the last, the last anchored at
//     r_v + 1 - T (the Lemma 4.2 argument applies verbatim: jobs keep
//     their relative order under the push-back transformation);
//   - within a group the placement is forced: the last (m mod T, or T)
//     jobs occupy the anchored interval with the Lemma 4.6 busy-prefix /
//     at-release-suffix structure, and each earlier full interval is
//     placed at its earliest feasible start (delaying a full block never
//     reduces flow), infeasible if the blocks cannot all end by the
//     anchor.
//
// Correctness is established empirically: TestOptRFastMatchesExhaustive
// checks it against the exponential OptR on thousands of instances. Use
// OptRFast where OptR's 2^horizon search is too slow.
func OptRFast(in *core.Instance, g int64) (*core.Schedule, error) {
	if in.P != 1 {
		return nil, fmt.Errorf("analysis: OptRFast requires P = 1, got %d", in.P)
	}
	if g < 0 {
		return nil, fmt.Errorf("analysis: negative G %d", g)
	}
	n := in.N()
	if n == 0 {
		return core.NewSchedule(0), nil
	}
	for i := 1; i < n; i++ {
		if in.Jobs[i].Release == in.Jobs[i-1].Release {
			return nil, fmt.Errorf("analysis: OptRFast requires distinct release times (canonicalize first)")
		}
	}
	T := in.T
	rel := make([]int64, n+1)
	w := make([]int64, n+1)
	for i, j := range in.Jobs {
		rel[i+1] = j.Release
		w[i+1] = j.Weight
	}

	// group places jobs u..v (1-based) in the forced FIFO structure and
	// returns (weighted completion, slots) or inf when infeasible.
	group := func(u, v int) (int64, []int64) {
		m := v - u + 1
		b := rel[v] + 1 - T
		// All intervals but the anchored last one are full, so the last
		// holds m mod T jobs (T when m is a positive multiple of T).
		lastCount := m % int(T)
		if lastCount == 0 {
			lastCount = int(T)
		}
		firstLast := v - lastCount + 1 // first job of the anchored interval

		// Lemma 4.6's s for the anchored interval: smallest h with
		// h == #{jobs of the group released < b+h} mod T. Only the last
		// interval's jobs matter for placement, but the count runs over
		// the whole group exactly as in Definition 4.5.
		s := int64(-1)
		ptr := u
		for h := int64(0); h <= T; h++ {
			for ptr <= v && rel[ptr] < b+h {
				ptr++
			}
			cnt := int64(ptr - u)
			if h%T == cnt%T {
				s = h
				break
			}
		}
		if s < 0 {
			return inf, nil
		}

		slots := make([]int64, m) // slots[i] for job u+i
		var completion int64
		// Anchored interval: the first (lastCount - #suffix) jobs form the
		// busy prefix [b, b+s'), the rest run at release in [b+s, b+T).
		// With FIFO the split point is forced: jobs released >= b+s run at
		// release; earlier ones fill consecutive prefix slots ending at
		// b+s.
		prefix := 0
		for i := firstLast; i <= v; i++ {
			if rel[i] < b+s {
				prefix++
			}
		}
		// The Lemma 4.6 fixed point makes the delayed jobs of the last
		// interval fill [b, b+s) exactly; any mismatch means the assumed
		// group structure is infeasible here.
		if int64(prefix) != s {
			return inf, nil
		}
		for k := 0; k < lastCount; k++ {
			i := firstLast + k
			var slot int64
			if k < prefix {
				slot = b + int64(k)
			} else {
				slot = rel[i]
			}
			if slot < rel[i] || slot < b || slot >= b+T {
				return inf, nil
			}
			slots[i-u] = slot
			completion += w[i] * (slot + 1)
		}
		// Ensure the at-release suffix really is strictly increasing and
		// disjoint from the prefix (distinct releases give this, but a job
		// released inside the prefix window would collide).
		for k := prefix; k < lastCount; k++ {
			i := firstLast + k
			if slots[i-u] < b+s {
				return inf, nil
			}
		}

		// Earlier full intervals: blocks of T consecutive jobs placed at
		// their earliest feasible starts, all ending by b.
		numFull := (m - lastCount) / int(T)
		prevEnd := int64(math.MinInt64)
		for blk := 0; blk < numFull; blk++ {
			first := u + blk*int(T)
			beta := prevEnd // earliest start: after the previous block
			for pos := 0; pos < int(T); pos++ {
				if need := rel[first+pos] - int64(pos); need > beta {
					beta = need
				}
			}
			if beta < 0 {
				beta = 0
			}
			if beta+T > b {
				return inf, nil
			}
			for pos := 0; pos < int(T); pos++ {
				i := first + pos
				slot := beta + int64(pos)
				slots[i-u] = slot
				completion += w[i] * (slot + 1)
			}
			prevEnd = beta + T
		}
		// The anchored interval must start after the last full block ends.
		if numFull > 0 && prevEnd > b {
			return inf, nil
		}
		return completion, slots
	}

	// F[v] by budget: F[k][v] = min completion of jobs 1..v with <= k
	// calibrations; reconstruct group boundaries.
	maxK := n
	F := make([][]int64, maxK+1)
	choice := make([][]int, maxK+1)
	for k := range F {
		F[k] = make([]int64, n+1)
		choice[k] = make([]int, n+1)
		for v := 1; v <= n; v++ {
			F[k][v] = inf
		}
	}
	gCost := make([][]int64, n+1) // memoized group completions
	for u := 0; u <= n; u++ {
		gCost[u] = make([]int64, n+1)
		for v := 0; v <= n; v++ {
			gCost[u][v] = -1
		}
	}
	groupCost := func(u, v int) int64 {
		if gCost[u][v] < 0 {
			c, _ := group(u, v)
			gCost[u][v] = c
		}
		return gCost[u][v]
	}
	for k := 1; k <= maxK; k++ {
		for v := 1; v <= n; v++ {
			F[k][v] = F[k-1][v]
			choice[k][v] = -1 // marker: inherited from smaller budget
			for u := 1; u <= v; u++ {
				need := int(simul.CeilDiv(int64(v-u+1), T))
				if need > k {
					continue
				}
				prev := int64(0)
				if u > 1 {
					prev = F[k-need][u-1]
				} else if k-need < 0 {
					continue
				}
				if prev >= inf {
					continue
				}
				gc := groupCost(u, v)
				if gc >= inf {
					continue
				}
				if c := prev + gc; c < F[k][v] {
					F[k][v] = c
					choice[k][v] = u
				}
			}
		}
	}

	var relWeight int64
	for i := 1; i <= n; i++ {
		relWeight += w[i] * rel[i]
	}
	best := inf
	bestK := -1
	for k := 1; k <= maxK; k++ {
		if F[k][n] >= inf {
			continue
		}
		if c := g*int64(k) + F[k][n] - relWeight; c < best {
			best = c
			bestK = k
		}
	}
	if bestK < 0 {
		return nil, fmt.Errorf("analysis: OptRFast found no feasible schedule")
	}

	// Reconstruct.
	starts := make([]int64, n+1)
	v := n
	k := bestK
	for v > 0 {
		u := choice[k][v]
		for u == -1 { // value inherited from a smaller budget
			k--
			u = choice[k][v]
		}
		_, slots := group(u, v)
		if slots == nil {
			return nil, fmt.Errorf("analysis: OptRFast reconstruction hit an infeasible group")
		}
		for i := u; i <= v; i++ {
			starts[i] = slots[i-u]
		}
		k -= int(simul.CeilDiv(int64(v-u+1), T))
		v = u - 1
	}
	sched := core.NewSchedule(n)
	order := make([]int, n)
	for i := range order {
		order[i] = i + 1
	}
	sort.Slice(order, func(a, b int) bool { return starts[order[a]] < starts[order[b]] })
	coveredUntil := int64(math.MinInt64)
	for _, j := range order {
		t := starts[j]
		if t >= coveredUntil {
			sched.Calibrate(0, t)
			coveredUntil = t + T
		}
		sched.Assign(j-1, 0, t)
	}
	return sched, nil
}
