package analysis

import (
	"math/rand/v2"
	"testing"

	"calibsched/internal/core"
	"calibsched/internal/offline"
	"calibsched/internal/online"
)

func TestIntervalsStatistics(t *testing.T) {
	// T=3; interval [0,3) full (jobs at 0,1,2), interval [10,13) non-full
	// (job at 10 only), with a gap before it.
	in := core.MustInstance(1, 3, []int64{0, 1, 2, 10}, []int64{1, 2, 3, 4})
	s := core.NewSchedule(4)
	s.Calibrate(0, 0)
	s.Calibrate(0, 10)
	s.Assign(0, 0, 0)
	s.Assign(1, 0, 1)
	s.Assign(2, 0, 2)
	s.Assign(3, 0, 10)
	if err := core.Validate(in, s); err != nil {
		t.Fatal(err)
	}
	ivs := Intervals(in, s, 0)
	if len(ivs) != 2 {
		t.Fatalf("intervals = %d", len(ivs))
	}
	if !ivs[0].Full || ivs[1].Full {
		t.Errorf("fullness = %v,%v; want true,false", ivs[0].Full, ivs[1].Full)
	}
	if !ivs[0].GapPreceded || !ivs[1].GapPreceded {
		t.Errorf("gap flags = %v,%v; want true,true", ivs[0].GapPreceded, ivs[1].GapPreceded)
	}
	if ivs[0].Flow != 1+2+3 { // all at release: flow = sum of weights
		t.Errorf("interval 0 flow = %d", ivs[0].Flow)
	}
	if ivs[0].NetFlow != 0 || ivs[1].NetFlow != 0 {
		t.Errorf("net flows = %d,%d; want 0,0", ivs[0].NetFlow, ivs[1].NetFlow)
	}
}

func TestIntervalsBackToBackNotGapPreceded(t *testing.T) {
	in := core.MustInstance(1, 2, []int64{0, 1, 2, 3}, []int64{1, 1, 1, 1})
	s := core.NewSchedule(4)
	s.Calibrate(0, 0)
	s.Calibrate(0, 2)
	for i := 0; i < 4; i++ {
		s.Assign(i, 0, int64(i))
	}
	ivs := Intervals(in, s, 0)
	if len(ivs) != 2 {
		t.Fatalf("intervals = %d", len(ivs))
	}
	if !ivs[0].GapPreceded {
		t.Error("first interval should be gap-preceded")
	}
	if ivs[1].GapPreceded {
		t.Error("back-to-back interval reported gap-preceded")
	}
}

func TestSequencesPartition(t *testing.T) {
	// Intervals: full [0,2), full [2,4), non-full [4,6) -> one sequence of
	// three; then non-full [10,12) -> its own sequence.
	in := core.MustInstance(1, 2, []int64{0, 1, 2, 3, 4, 10}, []int64{1, 1, 1, 1, 1, 1})
	s := core.NewSchedule(6)
	for _, st := range []int64{0, 2, 4, 10} {
		s.Calibrate(0, st)
	}
	for i := 0; i < 5; i++ {
		s.Assign(i, 0, int64(i))
	}
	s.Assign(5, 0, 10)
	if err := core.Validate(in, s); err != nil {
		t.Fatal(err)
	}
	seqs := Sequences(in, s, 0)
	if len(seqs) != 2 {
		t.Fatalf("sequences = %d, want 2", len(seqs))
	}
	if len(seqs[0].Intervals) != 3 || len(seqs[1].Intervals) != 1 {
		t.Fatalf("sequence sizes = %d,%d; want 3,1", len(seqs[0].Intervals), len(seqs[1].Intervals))
	}
	if seqs[0].Begin != 0 || seqs[0].End != 5 {
		t.Errorf("sequence 0 span = [%d,%d], want [0,5]", seqs[0].Begin, seqs[0].End)
	}
	if seqs[1].Begin != 6 {
		t.Errorf("sequence 1 begins at %d, want 6", seqs[1].Begin)
	}
	// All but the last interval of each sequence must be full.
	for si, seq := range seqs {
		for k := 0; k < len(seq.Intervals)-1; k++ {
			if !seq.Intervals[k].Full {
				t.Errorf("sequence %d interval %d not full", si, k)
			}
		}
	}
}

func TestReassignInReleaseOrder(t *testing.T) {
	in := core.MustInstance(1, 4, []int64{0, 1}, []int64{1, 1})
	s := core.NewSchedule(2)
	s.Calibrate(0, 1)
	s.Assign(0, 0, 3) // out of order
	s.Assign(1, 0, 1)
	got, err := ReassignInReleaseOrder(in, s)
	if err != nil {
		t.Fatal(err)
	}
	if got.Start(0) != 1 || got.Start(1) != 3 {
		t.Errorf("starts = %d,%d; want 1,3", got.Start(0), got.Start(1))
	}
	if core.Flow(in, got) != core.Flow(in, s) {
		t.Error("unit-weight reassignment changed total flow")
	}
	weighted := core.MustInstance(1, 4, []int64{0}, []int64{2})
	ws := core.NewSchedule(1)
	ws.Calibrate(0, 0)
	ws.Assign(0, 0, 0)
	if _, err := ReassignInReleaseOrder(weighted, ws); err == nil {
		t.Error("accepted weighted instance")
	}
}

func TestOptRSmall(t *testing.T) {
	// Two jobs at 0 and 5, T=3, G=4: OPT_r should match the unrestricted
	// optimum here (unweighted instances always admit a release-ordered
	// optimum).
	in := core.MustInstance(1, 3, []int64{0, 5}, []int64{1, 1})
	s, err := OptR(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Validate(in, s); err != nil {
		t.Fatal(err)
	}
	got := core.TotalCost(in, s, 4)
	want, _, err := offline.BruteForceTotalCost(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("OPT_r cost %d != OPT %d on an unweighted instance", got, want)
	}
}

func TestOptRMatchesOptOnUnweighted(t *testing.T) {
	// For unit weights any optimum can be reordered to release order at
	// equal cost, so OPT_r == OPT.
	rng := rand.New(rand.NewPCG(17, 3))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.IntN(4)
		releases := make([]int64, n)
		weights := make([]int64, n)
		for i := range releases {
			releases[i] = int64(rng.IntN(7))
			weights[i] = 1
		}
		in := core.MustInstance(1, int64(1+rng.IntN(3)), releases, weights).Canonicalize()
		g := int64(rng.IntN(8))
		r, err := OptR(in, g)
		if err != nil {
			t.Fatal(err)
		}
		want, _, _, err := offline.OptimalTotalCost(in, g)
		if err != nil {
			t.Fatal(err)
		}
		if got := core.TotalCost(in, r, g); got != want {
			t.Fatalf("trial %d: OPT_r %d != OPT %d (T=%d G=%d jobs %v)", trial, got, want, in.T, g, in.Jobs)
		}
	}
}

func TestOptRAtMostTwiceOptWeighted(t *testing.T) {
	// Lemma 3.4: restricting to release order costs at most a factor 2.
	rng := rand.New(rand.NewPCG(23, 5))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.IntN(4)
		releases := make([]int64, n)
		weights := make([]int64, n)
		for i := range releases {
			releases[i] = int64(rng.IntN(7))
			weights[i] = 1 + int64(rng.IntN(5))
		}
		in := core.MustInstance(1, int64(1+rng.IntN(3)), releases, weights).Canonicalize()
		g := int64(rng.IntN(8))
		r, err := OptR(in, g)
		if err != nil {
			t.Fatal(err)
		}
		opt, _, _, err := offline.OptimalTotalCost(in, g)
		if err != nil {
			t.Fatal(err)
		}
		if got := core.TotalCost(in, r, g); got > 2*opt {
			t.Fatalf("trial %d: OPT_r %d > 2*OPT %d (T=%d G=%d jobs %v)", trial, got, 2*opt, in.T, g, in.Jobs)
		}
	}
}

func TestOptRRejects(t *testing.T) {
	multi := core.MustInstance(2, 3, []int64{0}, []int64{1})
	if _, err := OptR(multi, 3); err == nil {
		t.Error("accepted P=2")
	}
	big := core.MustInstance(1, 3, []int64{100}, []int64{1})
	if _, err := OptR(big, 3); err == nil {
		t.Error("accepted huge horizon")
	}
}

// TestCheckLemma32OnRandomInstances: Algorithm 1 versus a release-ordered
// optimum must satisfy Lemma 3.2 on every sampled instance.
func TestCheckLemma32OnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewPCG(29, 7))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.IntN(8)
		releases := make([]int64, n)
		weights := make([]int64, n)
		for i := range releases {
			releases[i] = int64(rng.IntN(18))
			weights[i] = 1
		}
		in := core.MustInstance(1, int64(1+rng.IntN(5)), releases, weights).Canonicalize()
		g := int64(rng.IntN(24))
		res, err := online.Alg1(in, g)
		if err != nil {
			t.Fatal(err)
		}
		_, _, opt, err := offline.OptimalTotalCost(in, g)
		if err != nil {
			t.Fatal(err)
		}
		ordered, err := ReassignInReleaseOrder(in, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.Validate(in, ordered); err != nil {
			t.Fatalf("trial %d: reordered OPT invalid: %v", trial, err)
		}
		if err := CheckLemma32(in, res.Schedule, ordered); err != nil {
			t.Fatalf("trial %d (T=%d G=%d jobs %v): %v", trial, in.T, g, in.Jobs, err)
		}
	}
}

// TestLemma32LiteralTieReadingFails pins the counterexample this
// reproduction found to the paper's literal, tie-inclusive definition of
// J_i^E: with T=4, G=2 and releases 3,4,5,9,12,13, Algorithm 1's interval
// [9,13) holds jobs released at 9 and 12; job 12 runs at the same time in
// the (essentially unique) optimum, whose interval [10,14) also holds the
// job released at 13 — which Algorithm 1 schedules in a *later* interval.
// Under the strict reading J_i^E is empty there and the lemma is vacuous.
func TestLemma32LiteralTieReadingFails(t *testing.T) {
	in := core.MustInstance(1, 4, []int64{3, 4, 5, 9, 12, 13}, []int64{1, 1, 1, 1, 1, 1})
	const g = 2
	res, err := online.Alg1(in, g)
	if err != nil {
		t.Fatal(err)
	}
	_, _, opt, err := offline.OptimalTotalCost(in, g)
	if err != nil {
		t.Fatal(err)
	}
	ordered, err := ReassignInReleaseOrder(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Strict reading: holds.
	if err := CheckLemma32(in, res.Schedule, ordered); err != nil {
		t.Fatalf("strict reading violated: %v", err)
	}
	// Literal tie-inclusive reading: reproduce the violation by hand.
	algIvs := Intervals(in, res.Schedule, 0)
	optIvs := Intervals(in, ordered, 0)
	if len(algIvs) < 3 {
		t.Skipf("algorithm produced %d intervals; counterexample shape changed", len(algIvs))
	}
	// Interval 1 of the algorithm ([9,13)) has a tie job (released 12).
	tieFound := false
	for _, id := range algIvs[1].Jobs {
		if ordered.Start(id) == res.Schedule.Start(id) {
			tieFound = true
		}
	}
	if !tieFound {
		t.Skip("no tie in interval 1; counterexample shape changed")
	}
	// The earliest OPT interval holding interval-1 jobs also holds a job
	// of algorithm interval 2.
	iOpt := -1
	optIndex := map[int]int{}
	for k, iv := range optIvs {
		for _, id := range iv.Jobs {
			optIndex[id] = k
		}
	}
	for _, id := range algIvs[1].Jobs {
		if k := optIndex[id]; iOpt == -1 || k < iOpt {
			iOpt = k
		}
	}
	violates := false
	for _, id := range optIvs[iOpt].Jobs {
		for _, later := range algIvs[2].Jobs {
			if id == later {
				violates = true
			}
		}
	}
	if !violates {
		t.Skip("literal-reading violation no longer manifests; counterexample shape changed")
	}
}

// TestCheckLemma36OnRandomInstances: Algorithm 2's sequences versus OPT_r.
func TestCheckLemma36OnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 9))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.IntN(6)
		releases := make([]int64, n)
		weights := make([]int64, n)
		for i := range releases {
			releases[i] = int64(rng.IntN(8))
			weights[i] = 1 + int64(rng.IntN(4))
		}
		in := core.MustInstance(1, int64(1+rng.IntN(3)), releases, weights).Canonicalize()
		g := int64(rng.IntN(10))
		res, err := online.Alg2(in, g)
		if err != nil {
			t.Fatal(err)
		}
		optR, err := OptR(in, g)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckLemma36(in, res.Schedule, optR); err != nil {
			t.Fatalf("trial %d (T=%d G=%d jobs %v): %v", trial, in.T, g, in.Jobs, err)
		}
	}
}

// TestOptRFastMatchesExhaustive is the correctness argument for the
// polynomial OPT_r solver: its cost must equal the exhaustive search's on
// every sampled instance.
func TestOptRFastMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewPCG(37, 11))
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.IntN(6)
		releases := make([]int64, n)
		weights := make([]int64, n)
		for i := range releases {
			releases[i] = int64(rng.IntN(10))
			weights[i] = 1 + int64(rng.IntN(5))
		}
		in := core.MustInstance(1, int64(1+rng.IntN(4)), releases, weights).Canonicalize()
		g := int64(rng.IntN(14))

		slow, err := OptR(in, g)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := OptRFast(in, g)
		if err != nil {
			t.Fatalf("trial %d (T=%d G=%d jobs %v): %v", trial, in.T, g, in.Jobs, err)
		}
		if err := core.Validate(in, fast); err != nil {
			t.Fatalf("trial %d: OptRFast schedule invalid: %v (T=%d G=%d jobs %v)",
				trial, err, in.T, g, in.Jobs)
		}
		// Release order.
		for i := 1; i < n; i++ {
			if fast.Start(i) <= fast.Start(i-1) {
				t.Fatalf("trial %d: OptRFast out of release order", trial)
			}
		}
		slowCost := core.TotalCost(in, slow, g)
		fastCost := core.TotalCost(in, fast, g)
		if fastCost != slowCost {
			t.Fatalf("trial %d (T=%d G=%d jobs %v): OptRFast %d != exhaustive %d",
				trial, in.T, g, in.Jobs, fastCost, slowCost)
		}
	}
}

func TestOptRFastRejects(t *testing.T) {
	multi := core.MustInstance(2, 3, []int64{0}, []int64{1})
	if _, err := OptRFast(multi, 3); err == nil {
		t.Error("accepted P=2")
	}
	dup := core.MustInstance(1, 3, []int64{0, 0}, []int64{1, 2})
	if _, err := OptRFast(dup, 3); err == nil {
		t.Error("accepted duplicate releases")
	}
	if _, err := OptRFast(core.MustInstance(1, 3, []int64{0}, []int64{1}), -1); err == nil {
		t.Error("accepted negative G")
	}
	empty := core.MustInstance(1, 3, nil, nil)
	if s, err := OptRFast(empty, 3); err != nil || s.NumCalibrations() != 0 {
		t.Errorf("empty instance: %v", err)
	}
}
