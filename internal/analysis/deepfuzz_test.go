package analysis

import (
	"math/rand/v2"
	"testing"

	"calibsched/internal/core"
)

func TestDeepFuzzOptRFast(t *testing.T) {
	if testing.Short() {
		t.Skip("deep fuzz skipped in -short mode")
	}
	rng := rand.New(rand.NewPCG(555, 777))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.IntN(7)
		releases := make([]int64, n)
		weights := make([]int64, n)
		for i := range releases {
			releases[i] = int64(rng.IntN(12))
			weights[i] = 1 + int64(rng.IntN(6))
		}
		in := core.MustInstance(1, int64(1+rng.IntN(5)), releases, weights).Canonicalize()
		g := int64(rng.IntN(20))
		slow, err := OptR(in, g)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := OptRFast(in, g)
		if err != nil {
			t.Fatalf("trial %d (T=%d G=%d jobs %v): %v", trial, in.T, g, in.Jobs, err)
		}
		if core.TotalCost(in, fast, g) != core.TotalCost(in, slow, g) {
			t.Fatalf("trial %d (T=%d G=%d jobs %v): fast %d != exhaustive %d",
				trial, in.T, g, in.Jobs, core.TotalCost(in, fast, g), core.TotalCost(in, slow, g))
		}
	}
}
