package lowerbound

import (
	"math"
	"testing"

	"calibsched/internal/baseline"
	"calibsched/internal/core"
	"calibsched/internal/online"
)

func alg1(in *core.Instance, g int64) (*core.Schedule, error) {
	res, err := online.Alg1(in, g)
	if err != nil {
		return nil, err
	}
	return res.Schedule, nil
}

func TestPlayAgainstAlg1EagerBranch(t *testing.T) {
	// T >= G: Algorithm 1's count trigger fires at time 0, so the
	// adversary plays case 1 and the ratio approaches (2G+2)/(G+3).
	out, err := Play(alg1, 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !out.CaseOne {
		t.Fatal("expected case 1 (algorithm calibrates at 0)")
	}
	want := float64(2*32+2) / float64(32+3)
	if math.Abs(out.Ratio-want) > 1e-9 {
		t.Errorf("ratio = %.4f, want %.4f", out.Ratio, want)
	}
	if out.AlgCost != 2*32+2 {
		t.Errorf("alg cost = %d, want %d", out.AlgCost, 2*32+2)
	}
	if out.OptCost != 32+3 {
		t.Errorf("opt cost = %d, want %d", out.OptCost, 32+3)
	}
}

func TestPlayAgainstFlowThresholdWaitBranch(t *testing.T) {
	// The pure ski-rental baseline waits when G is large, so the
	// adversary floods (case 2).
	alg := func(in *core.Instance, g int64) (*core.Schedule, error) {
		return baseline.FlowThreshold(in, g)
	}
	out, err := Play(alg, 16, 100)
	if err != nil {
		t.Fatal(err)
	}
	if out.CaseOne {
		t.Fatal("expected case 2 (algorithm waits at time 0)")
	}
	if out.Instance.N() != 16 {
		t.Errorf("case-2 instance has %d jobs, want T=16", out.Instance.N())
	}
	// Lemma 3.1: the algorithm pays at least 2T + G... but only claims it
	// for algorithms that never calibrate before time 1; our baseline
	// calibrates later, so just check the ratio is at least 1 and OPT
	// matches T + G (calibrate at 0, every job at release).
	if out.OptCost != 16+100 {
		t.Errorf("opt = %d, want %d", out.OptCost, 116)
	}
	if out.Ratio < 1 {
		t.Errorf("ratio = %.3f < 1", out.Ratio)
	}
}

func TestRatioApproachesTwo(t *testing.T) {
	// Against Algorithm 1 with T = G (eager branch), the ratio
	// (2G+2)/(G+3) approaches 2 from below as G grows.
	prev := 0.0
	for _, g := range []int64{4, 16, 64, 256, 1024} {
		out, err := Play(alg1, g, g)
		if err != nil {
			t.Fatal(err)
		}
		if out.Ratio <= prev {
			t.Errorf("G=%d: ratio %.5f did not increase (prev %.5f)", g, out.Ratio, prev)
		}
		if out.Ratio >= 2 {
			t.Errorf("G=%d: ratio %.5f >= 2", g, out.Ratio)
		}
		prev = out.Ratio
	}
	if prev < 1.95 {
		t.Errorf("ratio at G=1024 = %.4f, want > 1.95", prev)
	}
}

func TestBoundFormulas(t *testing.T) {
	if got := CaseOneBound(1); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("CaseOneBound(1) = %f, want 1", got)
	}
	if got := CaseTwoBound(10, 0); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("CaseTwoBound(10,0) = %f, want 2", got)
	}
	// Monotone toward 2.
	if CaseOneBound(100) <= CaseOneBound(10) {
		t.Error("CaseOneBound not increasing in G")
	}
	if CaseTwoBound(1000, 10) <= CaseTwoBound(100, 10) {
		t.Error("CaseTwoBound not increasing in T")
	}
}

func TestPlayRejectsTinyT(t *testing.T) {
	if _, err := Play(alg1, 1, 10); err == nil {
		t.Error("accepted T=1")
	}
}

// TestAlgorithmsNeverBeatTheLowerBoundStory sanity-checks the lemma: the
// measured ratio never exceeds each algorithm's proven upper bound.
func TestAlgorithmsNeverBeatTheLowerBoundStory(t *testing.T) {
	for _, g := range []int64{2, 8, 32, 128} {
		for _, tt := range []int64{2, 4, 16, 64} {
			out, err := Play(alg1, tt, g)
			if err != nil {
				t.Fatal(err)
			}
			if out.Ratio > 3.0+1e-9 {
				t.Errorf("T=%d G=%d: Algorithm 1 ratio %.3f exceeds its bound 3", tt, g, out.Ratio)
			}
		}
	}
}
