package lowerbound

import (
	"testing"

	"calibsched/internal/baseline"
	"calibsched/internal/core"
	"calibsched/internal/online"
)

func alg1(in *core.Instance, g int64) (*core.Schedule, error) {
	res, err := online.Alg1(in, g)
	if err != nil {
		return nil, err
	}
	return res.Schedule, nil
}

func TestPlayAgainstAlg1EagerBranch(t *testing.T) {
	// T >= G: Algorithm 1's count trigger fires at time 0, so the
	// adversary plays case 1 and the ratio approaches (2G+2)/(G+3).
	out, err := Play(alg1, 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !out.CaseOne {
		t.Fatal("expected case 1 (algorithm calibrates at 0)")
	}
	// The measured ratio equals the lemma bound exactly: cross-multiplied,
	// AlgCost/OptCost == (2G+2)/(G+3).
	num, den := CaseOneBound(32)
	if out.AlgCost*den != num*out.OptCost {
		t.Errorf("ratio %d/%d != lemma bound %d/%d", out.AlgCost, out.OptCost, num, den)
	}
	if !out.RatioAtLeast(num, den) {
		t.Errorf("RatioAtLeast(%d, %d) = false at the exact bound", num, den)
	}
	if out.AlgCost != 2*32+2 {
		t.Errorf("alg cost = %d, want %d", out.AlgCost, 2*32+2)
	}
	if out.OptCost != 32+3 {
		t.Errorf("opt cost = %d, want %d", out.OptCost, 32+3)
	}
}

func TestPlayAgainstFlowThresholdWaitBranch(t *testing.T) {
	// The pure ski-rental baseline waits when G is large, so the
	// adversary floods (case 2).
	alg := func(in *core.Instance, g int64) (*core.Schedule, error) {
		return baseline.FlowThreshold(in, g)
	}
	out, err := Play(alg, 16, 100)
	if err != nil {
		t.Fatal(err)
	}
	if out.CaseOne {
		t.Fatal("expected case 2 (algorithm waits at time 0)")
	}
	if out.Instance.N() != 16 {
		t.Errorf("case-2 instance has %d jobs, want T=16", out.Instance.N())
	}
	// Lemma 3.1: the algorithm pays at least 2T + G... but only claims it
	// for algorithms that never calibrate before time 1; our baseline
	// calibrates later, so just check the ratio is at least 1 and OPT
	// matches T + G (calibrate at 0, every job at release).
	if out.OptCost != 16+100 {
		t.Errorf("opt = %d, want %d", out.OptCost, 116)
	}
	if !out.RatioAtLeast(1, 1) {
		t.Errorf("ratio = %.3f < 1", out.Ratio())
	}
}

func TestRatioApproachesTwo(t *testing.T) {
	// Against Algorithm 1 with T = G (eager branch), the ratio
	// (2G+2)/(G+3) approaches 2 from below as G grows.
	// Exact monotonicity: ratios a1/o1 < a2/o2 iff a1*o2 < a2*o1.
	prevAlg, prevOpt := int64(0), int64(1)
	for _, g := range []int64{4, 16, 64, 256, 1024} {
		out, err := Play(alg1, g, g)
		if err != nil {
			t.Fatal(err)
		}
		if out.AlgCost*prevOpt <= prevAlg*out.OptCost {
			t.Errorf("G=%d: ratio %d/%d did not increase (prev %d/%d)", g, out.AlgCost, out.OptCost, prevAlg, prevOpt)
		}
		if out.RatioAtLeast(2, 1) {
			t.Errorf("G=%d: ratio %d/%d >= 2", g, out.AlgCost, out.OptCost)
		}
		prevAlg, prevOpt = out.AlgCost, out.OptCost
	}
	// 1.95 = 39/20 exactly.
	if prevAlg*20 < 39*prevOpt {
		t.Errorf("ratio at G=1024 = %d/%d, want > 39/20", prevAlg, prevOpt)
	}
}

func TestBoundFormulas(t *testing.T) {
	if num, den := CaseOneBound(1); num != den {
		t.Errorf("CaseOneBound(1) = %d/%d, want 1", num, den)
	}
	if num, den := CaseTwoBound(10, 0); num != 2*den {
		t.Errorf("CaseTwoBound(10,0) = %d/%d, want 2", num, den)
	}
	// Monotone toward 2 (exact cross-multiplied comparison).
	n1, d1 := CaseOneBound(10)
	n2, d2 := CaseOneBound(100)
	if n2*d1 <= n1*d2 {
		t.Error("CaseOneBound not increasing in G")
	}
	n1, d1 = CaseTwoBound(100, 10)
	n2, d2 = CaseTwoBound(1000, 10)
	if n2*d1 <= n1*d2 {
		t.Error("CaseTwoBound not increasing in T")
	}
}

func TestPlayRejectsTinyT(t *testing.T) {
	if _, err := Play(alg1, 1, 10); err == nil {
		t.Error("accepted T=1")
	}
}

// TestAlgorithmsNeverBeatTheLowerBoundStory sanity-checks the lemma: the
// measured ratio never exceeds each algorithm's proven upper bound.
func TestAlgorithmsNeverBeatTheLowerBoundStory(t *testing.T) {
	for _, g := range []int64{2, 8, 32, 128} {
		for _, tt := range []int64{2, 4, 16, 64} {
			out, err := Play(alg1, tt, g)
			if err != nil {
				t.Fatal(err)
			}
			if out.AlgCost > 3*out.OptCost {
				t.Errorf("T=%d G=%d: Algorithm 1 ratio %d/%d exceeds its bound 3", tt, g, out.AlgCost, out.OptCost)
			}
		}
	}
}
