// Package lowerbound implements the Lemma 3.1 adversary: no deterministic
// online algorithm for single-machine unweighted calibration scheduling is
// better than (2 - o(1))-competitive.
//
// The adversary releases a job at time 0 and watches the algorithm's first
// decision. If the algorithm calibrates at time 0 (eagerly), the adversary
// releases one more job at time T, forcing a second calibration (case 1:
// cost 2G+2 versus OPT's G+3). If the algorithm waits, the adversary
// floods one job per step through T-1, making the early calibration it
// skipped the right call (case 2: cost at least 2T+G versus OPT's T+G).
//
// Against a *deterministic* online algorithm the adversary can be realized
// offline: the decision at time 0 depends only on the arrivals at time 0,
// so probing the algorithm on the single-job prefix instance reveals which
// branch it takes, and the final instance is then fixed.
package lowerbound

import (
	"fmt"

	"calibsched/internal/core"
	"calibsched/internal/offline"
	"calibsched/internal/online"
	"calibsched/internal/workload"
)

// Algorithm is any deterministic single-machine online algorithm under the
// G-cost objective, returning its full schedule.
type Algorithm func(in *core.Instance, g int64) (*core.Schedule, error)

// Outcome reports one adversary game.
type Outcome struct {
	// CaseOne is true when the algorithm calibrated at time 0 and the
	// adversary answered with a job at time T.
	CaseOne bool
	// Instance is the final adversarial instance.
	Instance *core.Instance
	// AlgCost and OptCost are the algorithm's and the exact offline
	// optimum's total costs (G*calibrations + flow).
	AlgCost, OptCost int64
}

// RatioAtLeast reports AlgCost/OptCost >= num/den exactly, by
// cross-multiplying in checked int64 arithmetic; assertions about the
// competitive ratio should use it instead of the floating-point Ratio.
func (o *Outcome) RatioAtLeast(num, den int64) bool {
	return core.MustMul(o.AlgCost, den) >= core.MustMul(num, o.OptCost)
}

// Ratio returns AlgCost/OptCost for human-readable reporting only; the
// division is the package's sole floating-point operation and is
// directive-exempt from the exactarith analyzer.
func (o *Outcome) Ratio() float64 { //caliblint:allow exactarith -- reporting-only ratio
	if o.OptCost == 0 {
		return 0
	}
	return float64(o.AlgCost) / float64(o.OptCost) //caliblint:allow exactarith -- reporting-only ratio
}

// Play runs the adversary against alg with calibration length T and cost G.
func Play(alg Algorithm, t, g int64) (*Outcome, error) {
	if t < 2 {
		return nil, fmt.Errorf("lowerbound: T = %d, want >= 2", t)
	}
	// Probe: a single job at time 0. Determinism plus the online
	// information model mean the algorithm's time-0 decision here equals
	// its decision on any instance whose time-0 arrivals match.
	probe := core.MustInstance(1, t, []int64{0}, []int64{1})
	ps, err := alg(probe, g)
	if err != nil {
		return nil, fmt.Errorf("lowerbound: probe run: %w", err)
	}
	calibratedAtZero := false
	for _, c := range ps.Calendar {
		if c.Start == 0 {
			calibratedAtZero = true
			break
		}
	}

	var in *core.Instance
	if calibratedAtZero {
		in = workload.AdversaryCalibrateEarly(t)
	} else {
		in = workload.AdversaryWait(t)
	}
	s, err := alg(in, g)
	if err != nil {
		return nil, fmt.Errorf("lowerbound: adversarial run: %w", err)
	}
	if err := core.Validate(in, s); err != nil {
		return nil, fmt.Errorf("lowerbound: algorithm produced invalid schedule: %w", err)
	}
	algCost := core.TotalCost(in, s, g)

	var optCost int64
	if calibratedAtZero {
		// Case 1 has two jobs; the exact DP is instantaneous.
		optCost, _, _, err = offline.OptimalTotalCost(in, g)
		if err != nil {
			return nil, fmt.Errorf("lowerbound: offline optimum: %w", err)
		}
	} else {
		// Case 2 has T consecutive unit jobs, so OPT = T + G exactly: any
		// schedule pays flow >= T (one unit per job) and >= 1 calibration,
		// and calibrating at time 0 runs every job at its release,
		// achieving that bound. Using the closed form keeps the adversary
		// usable at T in the thousands, where the O(Kn^3) DP would not be.
		opt, aerr := online.AssignTimes(in, []int64{0})
		if aerr != nil {
			return nil, fmt.Errorf("lowerbound: certifying case-2 optimum: %w", aerr)
		}
		optCost = core.TotalCost(in, opt, g)
		if want := t + g; optCost != want {
			return nil, fmt.Errorf("lowerbound: case-2 certificate cost %d, want %d", optCost, want)
		}
	}
	return &Outcome{
		CaseOne:  calibratedAtZero,
		Instance: in,
		AlgCost:  algCost,
		OptCost:  optCost,
	}, nil
}

// CaseOneBound returns Lemma 3.1's case-1 ratio (2G+2)/(G+3), as an
// exact rational, that an eagerly calibrating algorithm cannot beat.
func CaseOneBound(g int64) (num, den int64) {
	return 2*g + 2, g + 3
}

// CaseTwoBound returns Lemma 3.1's case-2 ratio (2T+G)/(T+G), as an
// exact rational, that a hesitant algorithm cannot beat.
func CaseTwoBound(t, g int64) (num, den int64) {
	return 2*t + g, t + g
}
