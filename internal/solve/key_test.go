package solve

import (
	"testing"

	"calibsched/internal/core"
)

func TestInstanceKeyDeterministic(t *testing.T) {
	a := core.MustInstance(1, 4, []int64{0, 3, 7}, []int64{2, 1, 5})
	b := core.MustInstance(1, 4, []int64{0, 3, 7}, []int64{2, 1, 5})
	if InstanceKey(a, KindFlow, 2) != InstanceKey(b, KindFlow, 2) {
		t.Error("equal instances hash differently")
	}
	// NewInstance sorts by (Release, ID): submitting the same job set in
	// a different order yields the same canonical instance, same key.
	c := core.MustInstance(1, 4, []int64{7, 0, 3}, []int64{5, 2, 1})
	if InstanceKey(a, KindFlow, 2) != InstanceKey(c, KindFlow, 2) {
		t.Error("permuted job set hashes differently")
	}
}

func TestInstanceKeySensitivity(t *testing.T) {
	base := core.MustInstance(1, 4, []int64{0, 3, 7}, []int64{2, 1, 5})
	ref := InstanceKey(base, KindFlow, 2)
	variants := map[string]string{
		"different T":       InstanceKey(core.MustInstance(1, 5, []int64{0, 3, 7}, []int64{2, 1, 5}), KindFlow, 2),
		"different release": InstanceKey(core.MustInstance(1, 4, []int64{0, 3, 8}, []int64{2, 1, 5}), KindFlow, 2),
		"different weight":  InstanceKey(core.MustInstance(1, 4, []int64{0, 3, 7}, []int64{2, 2, 5}), KindFlow, 2),
		"dropped job":       InstanceKey(core.MustInstance(1, 4, []int64{0, 3}, []int64{2, 1}), KindFlow, 2),
		"different param":   InstanceKey(base, KindFlow, 3),
		"different kind":    InstanceKey(base, KindSweep, 2),
	}
	for name, k := range variants {
		if k == ref {
			t.Errorf("%s: key unchanged", name)
		}
	}
}

// FuzzInstanceKey fuzzes the canonical-hash contract: structurally equal
// instances always share a key, and single-field perturbations change it.
func FuzzInstanceKey(f *testing.F) {
	f.Add(int64(3), int64(0), int64(1), int64(5), int64(2), int64(1))
	f.Add(int64(1), int64(9), int64(9), int64(1), int64(7), int64(40))
	f.Fuzz(func(t *testing.T, tt, r1, r2, w1, w2, param int64) {
		if tt <= 0 || tt > 1<<20 {
			t.Skip()
		}
		clamp := func(v int64) int64 {
			if v < 0 {
				v = -v
			}
			return v % (1 << 20)
		}
		r1, r2, param = clamp(r1), clamp(r2), clamp(param)
		w1, w2 = 1+clamp(w1), 1+clamp(w2)
		build := func() *core.Instance {
			return core.MustInstance(1, tt, []int64{r1, r2}, []int64{w1, w2})
		}
		a, b := build(), build()
		for _, kind := range []Kind{KindFlow, KindSweep, KindTotalCost} {
			ka, kb := InstanceKey(a, kind, param), InstanceKey(b, kind, param)
			if ka != kb {
				t.Fatalf("equal instances, kind %s: %s != %s", kind, ka, kb)
			}
			if kp := InstanceKey(a, kind, param+1); kp == ka {
				t.Fatalf("kind %s: param change left key %s unchanged", kind, ka)
			}
		}
		mut := core.MustInstance(1, tt, []int64{r1, r2}, []int64{w1 + 1, w2})
		if InstanceKey(mut, KindFlow, param) == InstanceKey(a, KindFlow, param) {
			t.Fatal("weight perturbation left key unchanged")
		}
		if InstanceKey(a, KindFlow, param) == InstanceKey(a, KindSweep, param) {
			t.Fatal("kind not part of the key")
		}
	})
}
