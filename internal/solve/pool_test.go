package solve

import (
	"context"
	"errors"
	"math/rand/v2"
	"reflect"
	"sync"
	"testing"
	"time"

	"calibsched/internal/core"
	"calibsched/internal/offline"
	"calibsched/internal/trace"
)

// recorder counts pool events behind its own lock so tests can read
// concurrently with workers.
type recorder struct {
	mu     sync.Mutex
	counts map[Event]int
}

func newRecorder() *recorder { return &recorder{counts: make(map[Event]int)} }

func (r *recorder) on(ev Event) {
	r.mu.Lock()
	r.counts[ev]++
	r.mu.Unlock()
}

func (r *recorder) get(ev Event) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[ev]
}

func testInstance(rng *rand.Rand, maxN, maxRel, maxW int, maxT int64) *core.Instance {
	n := 1 + rng.IntN(maxN)
	releases := make([]int64, n)
	weights := make([]int64, n)
	for i := range releases {
		releases[i] = int64(rng.IntN(maxRel))
		weights[i] = 1 + int64(rng.IntN(maxW))
	}
	t := int64(1 + rng.Int64N(maxT))
	return core.MustInstance(1, t, releases, weights).Canonicalize()
}

func waitDone(t *testing.T, p *Pool, id string) Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := p.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v", id, err)
	}
	return st
}

// TestPoolDifferential is the tentpole correctness gate: every request
// kind, served through the pool (parallel DP + cache + dedup), must be
// byte-identical to the sequential solver — flow values, bestK, and the
// full schedule. Run under -race in CI.
func TestPoolDifferential(t *testing.T) {
	p := New(Options{Workers: 4, SolveWorkers: 2})
	defer p.Close()
	rng := rand.New(rand.NewPCG(20, 26))
	for trial := 0; trial < 60; trial++ {
		in := testInstance(rng, 9, 25, 5, 5)
		k := in.N()
		g := int64(rng.IntN(30))

		wantFlow, err := offline.OptimalFlow(in, k)
		if err != nil {
			t.Fatal(err)
		}
		wantSweep, err := offline.BudgetSweep(in, k)
		if err != nil {
			t.Fatal(err)
		}
		wantTotal, wantK, wantSched, err := offline.OptimalTotalCost(in, g)
		if err != nil {
			t.Fatal(err)
		}

		ids := make([]string, 3)
		for i, req := range []Request{
			{Instance: in, Kind: KindFlow, K: k},
			{Instance: in, Kind: KindSweep, K: k},
			{Instance: in, Kind: KindTotalCost, G: g},
		} {
			id, err := p.Submit(req)
			if err != nil {
				t.Fatalf("trial %d: submit %s: %v", trial, req.Kind, err)
			}
			ids[i] = id
		}

		flow := waitDone(t, p, ids[0])
		if flow.State != StateDone || flow.Result.Flow != wantFlow.Flow ||
			!reflect.DeepEqual(flow.Result.Schedule, wantFlow.Schedule) {
			t.Fatalf("trial %d: pooled flow %+v != sequential %+v", trial, flow, wantFlow)
		}
		sweep := waitDone(t, p, ids[1])
		if sweep.State != StateDone || !reflect.DeepEqual(sweep.Result.Flows, wantSweep) {
			t.Fatalf("trial %d: pooled sweep %+v != sequential %v", trial, sweep, wantSweep)
		}
		total := waitDone(t, p, ids[2])
		if total.State != StateDone || total.Result.Total != wantTotal ||
			total.Result.BestK != wantK || !reflect.DeepEqual(total.Result.Schedule, wantSched) {
			t.Fatalf("trial %d: pooled total %+v != sequential (%d, %d)", trial, total, wantTotal, wantK)
		}
	}
}

func TestCacheHitServesIdenticalResult(t *testing.T) {
	rec := newRecorder()
	p := New(Options{Workers: 1, OnEvent: rec.on})
	defer p.Close()
	in := core.MustInstance(1, 4, []int64{0, 1, 2, 7}, []int64{3, 1, 2, 5})
	req := Request{Instance: in, Kind: KindTotalCost, G: 5}

	id1, err := p.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st1 := waitDone(t, p, id1)
	if st1.State != StateDone || st1.CacheHit {
		t.Fatalf("first solve: %+v", st1)
	}

	id2, err := p.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitDone(t, p, id2)
	if !st2.CacheHit || st2.State != StateDone {
		t.Fatalf("second solve not a cache hit: %+v", st2)
	}
	if st2.Result != st1.Result {
		t.Error("cache hit did not share the stored result")
	}
	if rec.get(EvCacheHit) != 1 || rec.get(EvRun) != 1 {
		t.Errorf("hits = %d (want 1), runs = %d (want 1)", rec.get(EvCacheHit), rec.get(EvRun))
	}
}

// TestCacheEvictionOrder pins LRU semantics: with capacity 2, inserting
// A, B, C evicts A; re-reading B promotes it so a fourth insert evicts C.
func TestCacheEvictionOrder(t *testing.T) {
	rec := newRecorder()
	p := New(Options{Workers: 1, CacheSize: 2, OnEvent: rec.on})
	defer p.Close()
	in := core.MustInstance(1, 3, []int64{0, 2, 5}, []int64{1, 2, 1})
	reqG := func(g int64) Request { return Request{Instance: in, Kind: KindTotalCost, G: g} }

	submit := func(g int64) Status {
		id, err := p.Submit(reqG(g))
		if err != nil {
			t.Fatalf("submit G=%d: %v", g, err)
		}
		return waitDone(t, p, id)
	}

	submit(1) // cache: [A]
	submit(2) // cache: [B A]
	if rec.get(EvCacheEvicted) != 0 {
		t.Fatalf("premature eviction: %d", rec.get(EvCacheEvicted))
	}
	submit(3) // cache: [C B], evicts A
	if rec.get(EvCacheEvicted) != 1 {
		t.Fatalf("evictions after third insert = %d, want 1", rec.get(EvCacheEvicted))
	}
	if st := submit(2); !st.CacheHit { // promotes B: [B C]
		t.Error("B was evicted; expected LRU to keep it")
	}
	// Re-inserting A evicts C, because the hit above promoted B ahead
	// of it: cache goes [B C] -> [A B].
	if st := submit(1); st.CacheHit {
		t.Error("A survived; expected it to be the LRU victim")
	}
	if st := submit(3); st.CacheHit {
		t.Error("C survived; expected promotion of B to make C the victim")
	}
	if rec.get(EvCacheEvicted) != 3 {
		t.Errorf("total evictions = %d, want 3", rec.get(EvCacheEvicted))
	}
}

// TestCacheKeysDistinguishParameters guards against hash collisions
// between near-identical requests: same job set, different G (or K, or
// kind) must occupy distinct cache entries.
func TestCacheKeysDistinguishParameters(t *testing.T) {
	in := core.MustInstance(1, 3, []int64{0, 2, 5}, []int64{1, 2, 1})
	keys := map[string]string{
		"G=3":   requestKey(Request{Instance: in, Kind: KindTotalCost, G: 3}),
		"G=4":   requestKey(Request{Instance: in, Kind: KindTotalCost, G: 4}),
		"K=2":   requestKey(Request{Instance: in, Kind: KindFlow, K: 2}),
		"sweep": requestKey(Request{Instance: in, Kind: KindSweep, K: 2}),
	}
	seen := make(map[string]string)
	for name, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Errorf("requests %s and %s share cache key %s", name, prev, k)
		}
		seen[k] = name
	}

	rec := newRecorder()
	p := New(Options{Workers: 1, OnEvent: rec.on})
	defer p.Close()
	idA, err := p.Submit(Request{Instance: in, Kind: KindTotalCost, G: 3})
	if err != nil {
		t.Fatal(err)
	}
	a := waitDone(t, p, idA)
	idB, err := p.Submit(Request{Instance: in, Kind: KindTotalCost, G: 4})
	if err != nil {
		t.Fatal(err)
	}
	b := waitDone(t, p, idB)
	if b.CacheHit {
		t.Fatal("G=4 answered from the G=3 cache entry")
	}
	if a.Result == b.Result {
		t.Fatal("distinct requests share a result")
	}
	if rec.get(EvCacheHit) != 0 {
		t.Fatalf("cache hits = %d, want 0", rec.get(EvCacheHit))
	}
}

// TestSingleflightDedup holds a solve open and piles identical requests
// on top: all of them must attach to the single in-flight run (one
// EvRun), finish with the same result pointer, and be flagged Shared.
// Run under -race in CI.
func TestSingleflightDedup(t *testing.T) {
	rec := newRecorder()
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	p := New(Options{
		Workers: 2,
		OnEvent: rec.on,
		TestHookBeforeRun: func(string) {
			once.Do(func() { close(started) })
			<-gate
		},
	})
	defer p.Close()
	in := core.MustInstance(1, 4, []int64{0, 1, 2, 6, 9}, []int64{2, 1, 3, 1, 2})
	req := Request{Instance: in, Kind: KindSweep, K: 5}

	first, err := p.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-started // the DP is now running and held open

	const extra = 12
	ids := make([]string, 0, extra)
	var wg sync.WaitGroup
	var idsMu sync.Mutex
	for i := 0; i < extra; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id, err := p.Submit(req)
			if err != nil {
				t.Errorf("dedup submit: %v", err)
				return
			}
			idsMu.Lock()
			ids = append(ids, id)
			idsMu.Unlock()
		}()
	}
	wg.Wait()
	close(gate)

	want := waitDone(t, p, first)
	if want.State != StateDone {
		t.Fatalf("primary solve failed: %+v", want)
	}
	for _, id := range ids {
		st := waitDone(t, p, id)
		if st.State != StateDone || !st.Shared {
			t.Fatalf("attached handle %s: %+v", id, st)
		}
		if st.Result != want.Result {
			t.Fatalf("handle %s got a different result object", id)
		}
	}
	if runs := rec.get(EvRun); runs != 1 {
		t.Errorf("DP ran %d times for one logical request, want 1", runs)
	}
	if shared := rec.get(EvDedupShared); shared != extra {
		t.Errorf("dedup shares = %d, want %d", shared, extra)
	}
}

// TestQueueBackpressure fills the single-worker, depth-1 queue and
// expects the next distinct request to bounce with ErrQueueFull.
func TestQueueBackpressure(t *testing.T) {
	rec := newRecorder()
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	p := New(Options{
		Workers:    1,
		QueueDepth: 1,
		OnEvent:    rec.on,
		TestHookBeforeRun: func(string) {
			once.Do(func() { close(started) })
			<-gate
		},
	})
	defer p.Close()
	in := core.MustInstance(1, 3, []int64{0, 2, 5}, []int64{1, 2, 1})
	reqG := func(g int64) Request { return Request{Instance: in, Kind: KindTotalCost, G: g} }

	busy, err := p.Submit(reqG(1)) // occupies the worker
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := p.Submit(reqG(2)) // fills the queue
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(reqG(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit returned %v, want ErrQueueFull", err)
	}
	if rec.get(EvRejected) != 1 {
		t.Errorf("rejections = %d, want 1", rec.get(EvRejected))
	}
	// Identical requests never consume queue slots: they dedup onto the
	// queued flight even while the queue is full.
	dup, err := p.Submit(reqG(2))
	if err != nil {
		t.Fatalf("dedup submit during backpressure: %v", err)
	}
	close(gate)
	for _, id := range []string{busy, queued, dup} {
		if st := waitDone(t, p, id); st.State != StateDone {
			t.Fatalf("handle %s: %+v", id, st)
		}
	}
}

// TestFailedSolveIsCached verifies that deterministic solver errors
// (infeasible budget) surface as failed handles and are cached like any
// other outcome.
func TestFailedSolveIsCached(t *testing.T) {
	rec := newRecorder()
	p := New(Options{Workers: 1, OnEvent: rec.on})
	defer p.Close()
	// 3 jobs, T=1, budget 1: at most 1 slot, infeasible.
	in := core.MustInstance(1, 1, []int64{0, 1, 2}, []int64{1, 1, 1})
	req := Request{Instance: in, Kind: KindFlow, K: 1}

	id1, err := p.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st1 := waitDone(t, p, id1)
	if st1.State != StateFailed || st1.Err == "" {
		t.Fatalf("infeasible solve: %+v", st1)
	}
	id2, err := p.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitDone(t, p, id2)
	if !st2.CacheHit || st2.State != StateFailed || st2.Err != st1.Err {
		t.Fatalf("cached failure: %+v", st2)
	}
	if rec.get(EvRun) != 1 {
		t.Errorf("runs = %d, want 1", rec.get(EvRun))
	}
}

func TestSubmitValidation(t *testing.T) {
	p := New(Options{Workers: 1})
	defer p.Close()
	in := core.MustInstance(1, 3, []int64{0, 2}, []int64{1, 1})
	cases := []Request{
		{Instance: nil, Kind: KindFlow, K: 1},
		{Instance: in, Kind: "nope", K: 1},
		{Instance: in, Kind: KindFlow, K: -1},
		{Instance: in, Kind: KindSweep, K: -2},
		{Instance: in, Kind: KindTotalCost, G: -1},
	}
	for i, req := range cases {
		if _, err := p.Submit(req); !errors.Is(err, ErrInvalid) {
			t.Errorf("case %d: err = %v, want ErrInvalid", i, err)
		}
	}
	big := make([]int64, 20)
	for i := range big {
		big[i] = int64(i)
	}
	weights := make([]int64, 20)
	for i := range weights {
		weights[i] = 1
	}
	small := New(Options{Workers: 1, MaxJobs: 10})
	defer small.Close()
	if _, err := small.Submit(Request{
		Instance: core.MustInstance(1, 3, big, weights), Kind: KindFlow, K: 2,
	}); !errors.Is(err, ErrInvalid) {
		t.Errorf("oversized instance: err = %v, want ErrInvalid", err)
	}
}

func TestCloseFailsPendingAndRejectsNew(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	p := New(Options{
		Workers:    1,
		QueueDepth: 4,
		TestHookBeforeRun: func(string) {
			once.Do(func() { close(started) })
			<-gate
		},
	})
	in := core.MustInstance(1, 3, []int64{0, 2, 5}, []int64{1, 2, 1})
	running, err := p.Submit(Request{Instance: in, Kind: KindTotalCost, G: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	pending, err := p.Submit(Request{Instance: in, Kind: KindTotalCost, G: 2})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		// Close blocks on the held-open worker; release it shortly after.
		time.Sleep(50 * time.Millisecond)
		close(gate)
	}()
	p.Close()
	if _, err := p.Submit(Request{Instance: in, Kind: KindTotalCost, G: 3}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	st, err := p.Get(pending)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed {
		t.Fatalf("pending handle after close: %+v", st)
	}
	// The running flight finished (gate released before workers drained),
	// so its handle must carry a real outcome, not ErrClosed.
	if st, err := p.Get(running); err != nil || st.State != StateDone {
		t.Fatalf("running handle after close: %+v, %v", st, err)
	}
	p.Close() // idempotent
}

func TestHandleRetentionBound(t *testing.T) {
	p := New(Options{Workers: 1, MaxHandles: 2, CacheSize: -1})
	defer p.Close()
	in := core.MustInstance(1, 3, []int64{0, 2, 5}, []int64{1, 2, 1})
	var ids []string
	for g := int64(1); g <= 3; g++ {
		id, err := p.Submit(Request{Instance: in, Kind: KindTotalCost, G: g})
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, p, id)
		ids = append(ids, id)
	}
	if _, err := p.Get(ids[0]); !errors.Is(err, ErrUnknownHandle) {
		t.Errorf("oldest finished handle still known: %v", err)
	}
	for _, id := range ids[1:] {
		if _, err := p.Get(id); err != nil {
			t.Errorf("recent handle %s forgotten: %v", id, err)
		}
	}
	if _, err := p.Get("solve-999"); !errors.Is(err, ErrUnknownHandle) {
		t.Error("bogus handle id resolved")
	}
}

// TestPoolSpans verifies the solve plane's phase attribution: a traced
// submit lands solve-queue and solve-dp spans under the submitting
// request's trace, and a repeat submit lands a cache-hit span instead.
func TestPoolSpans(t *testing.T) {
	spans := trace.NewSpanStore(16, 0, "")
	p := New(Options{Workers: 1, SolveWorkers: 1, Spans: spans})
	defer p.Close()
	rng := rand.New(rand.NewPCG(7, 7))
	in := testInstance(rng, 6, 10, 3, 4)

	sc := trace.SpanContext{TraceID: trace.NewTraceID(), SpanID: trace.NewSpanID()}
	id, err := p.Submit(Request{Instance: in, Kind: KindFlow, K: in.N(), Span: sc})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, p, id)

	phases := func() map[string]int {
		got := make(map[string]int)
		for _, sp := range spans.Trace(sc.TraceID) {
			got[sp.Phase]++
			if sp.Parent != sc.SpanID {
				t.Errorf("span %s not parented to submitter: %+v", sp.Phase, sp)
			}
		}
		return got
	}
	got := phases()
	if got["solve-queue"] != 1 || got["solve-dp"] != 1 {
		t.Fatalf("phases after miss: %v", got)
	}

	// Identical request: cache hit, no new pool phases.
	id2, err := p.Submit(Request{Instance: in, Kind: KindFlow, K: in.N(), Span: sc})
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, p, id2)
	if !st.CacheHit {
		t.Fatalf("second submit not a cache hit: %+v", st)
	}
	got = phases()
	if got["cache-hit"] != 1 || got["solve-dp"] != 1 {
		t.Fatalf("phases after hit: %v", got)
	}

	// Untraced submits must not reach the store.
	before := spans.Stats().SpansAdded
	id3, err := p.Submit(Request{Instance: in, Kind: KindFlow, K: in.N()})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, p, id3)
	if after := spans.Stats().SpansAdded; after != before {
		t.Fatalf("untraced submit added spans: %d -> %d", before, after)
	}
}
