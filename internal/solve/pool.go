package solve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"calibsched/internal/core"
	"calibsched/internal/offline"
	"calibsched/internal/trace"
)

// Event identifies a pool occurrence reported through Options.OnEvent.
// The callback runs with the pool lock held and must not call back into
// the pool; incrementing an expvar counter is the intended use.
type Event int

const (
	// EvSubmitted counts every accepted Submit call.
	EvSubmitted Event = iota
	// EvRejected counts Submit calls refused with ErrQueueFull.
	EvRejected
	// EvCacheHit counts submits answered from the result cache.
	EvCacheHit
	// EvCacheMiss counts submits that had to consult the queue.
	EvCacheMiss
	// EvCacheEvicted counts LRU evictions from the result cache.
	EvCacheEvicted
	// EvDedupShared counts submits that attached to an identical solve
	// already queued or running instead of starting their own.
	EvDedupShared
	// EvRun counts DP executions actually performed by workers.
	EvRun
	// EvCompleted counts handles finished with a result.
	EvCompleted
	// EvFailed counts handles finished with an error.
	EvFailed
)

// State is a handle's lifecycle phase.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Request describes one exact solve.
type Request struct {
	Instance *core.Instance
	Kind     Kind
	// K is the calibration budget (KindFlow) or the largest budget of
	// the sweep (KindSweep). Ignored by KindTotalCost.
	K int
	// G is the per-calibration cost for KindTotalCost.
	G int64
	// Span, when valid, attributes the solve's pool phases
	// (solve-queue/solve-dp/cache-hit) to the submitting request's
	// trace. It is deliberately excluded from the request cache key:
	// identical solves from different traces share one result. When
	// deduplicated submits attach to an in-flight run, only the first
	// submitter's span context is attributed.
	Span trace.SpanContext
}

// Result is the outcome of a successful solve. Which fields are set
// depends on the request kind. Results may be shared between handles
// (cache hits and deduplicated solves return the same pointers), so
// callers must treat the schedule as read-only.
type Result struct {
	Kind Kind
	// Flow is the optimum for KindFlow.
	Flow int64
	// Flows[k] is the optimum under budget k, for KindSweep
	// (offline.Unschedulable where the budget is infeasible).
	Flows []int64
	// Total and BestK are the KindTotalCost optimum and its budget.
	Total int64
	BestK int
	// Schedule realizes the optimum (KindFlow and KindTotalCost).
	Schedule *core.Schedule
	// Instance is the solved instance, for rendering the schedule
	// against job releases and weights. Read-only, like Schedule.
	Instance *core.Instance
}

// Status is a point-in-time snapshot of a handle.
type Status struct {
	ID       string
	State    State
	Result   *Result
	Err      string
	CacheHit bool
	// Shared marks handles that attached to another request's DP run.
	Shared   bool
	Created  time.Time
	Finished time.Time
}

// Snapshot reports pool gauges for the metrics plane.
type Snapshot struct {
	QueueDepth int
	Running    int
	CacheLen   int
	Handles    int
}

// Options configures a Pool; zero values take the documented defaults.
type Options struct {
	// Workers is the number of concurrent DP runs (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds queued (not yet running) solves; a full queue
	// rejects with ErrQueueFull (default 64).
	QueueDepth int
	// CacheSize is the LRU result-cache capacity in entries
	// (default 128; negative disables caching).
	CacheSize int
	// SolveWorkers is the intra-solve parallelism handed to the
	// offline.*Parallel solvers (default GOMAXPROCS).
	SolveWorkers int
	// MaxJobs rejects instances larger than this at Submit
	// (default offline.MaxParallelJobs).
	MaxJobs int
	// MaxHandles bounds retained finished handles; the oldest finished
	// handle is forgotten first (default 1024).
	MaxHandles int
	// OnEvent, when non-nil, observes pool events (see Event).
	OnEvent func(Event)
	// Spans, when non-nil, receives solve-queue/solve-dp/cache-hit
	// phase spans for submits that carry a valid Request.Span.
	Spans *trace.SpanStore

	// TestHookBeforeRun, when non-nil, runs in the worker goroutine right
	// before a DP executes. Tests use it to hold solves open.
	TestHookBeforeRun func(key string)
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheSize == 0 {
		o.CacheSize = 128
	}
	if o.SolveWorkers <= 0 {
		o.SolveWorkers = runtime.GOMAXPROCS(0)
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = offline.MaxParallelJobs
	}
	if o.MaxHandles <= 0 {
		o.MaxHandles = 1024
	}
	return o
}

var (
	// ErrQueueFull is returned by Submit when the pool queue is at
	// capacity; callers should retry later (HTTP maps it to 429).
	ErrQueueFull = errors.New("solve: queue full")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("solve: pool closed")
	// ErrUnknownHandle is returned by Get/Wait for unknown or already
	// forgotten handle IDs.
	ErrUnknownHandle = errors.New("solve: unknown handle")
	// ErrInvalid wraps request validation failures.
	ErrInvalid = errors.New("solve: invalid request")
)

// outcome is what a finished solve leaves behind (and what the cache
// stores): a result or an error, never both.
type outcome struct {
	res *Result
	err error
}

// flight is one pending or running DP execution plus every handle
// attached to it.
type flight struct {
	key      string
	req      Request
	ids      []string
	running  bool
	enqueued time.Time
}

type handle struct {
	id       string
	state    State
	res      *Result
	err      error
	cacheHit bool
	shared   bool
	created  time.Time
	finished time.Time
	done     chan struct{}
}

// Pool is a bounded offline-solve service. Create with New, stop with
// Close. All methods are safe for concurrent use.
type Pool struct {
	opts  Options
	clock func() time.Time

	mu       sync.Mutex
	queue    chan *flight
	stop     chan struct{}
	wg       sync.WaitGroup
	cache    *lruCache
	flights  map[string]*flight
	handles  map[string]*handle
	finished []string // finished handle ids, oldest first
	running  int
	seq      int64
	closed   bool
}

// New starts a pool with opts defaults applied.
func New(opts Options) *Pool {
	opts = opts.withDefaults()
	p := &Pool{
		opts:    opts,
		clock:   time.Now,
		queue:   make(chan *flight, opts.QueueDepth),
		stop:    make(chan struct{}),
		cache:   newLRU(opts.CacheSize),
		flights: make(map[string]*flight),
		handles: make(map[string]*handle),
	}
	p.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) event(ev Event) {
	if p.opts.OnEvent != nil {
		p.opts.OnEvent(ev)
	}
}

func validate(req Request, maxJobs int) error {
	if req.Instance == nil {
		return fmt.Errorf("%w: nil instance", ErrInvalid)
	}
	if !req.Kind.valid() {
		return fmt.Errorf("%w: unknown kind %q", ErrInvalid, req.Kind)
	}
	if n := req.Instance.N(); n > maxJobs {
		return fmt.Errorf("%w: %d jobs exceed the pool limit %d", ErrInvalid, n, maxJobs)
	}
	switch req.Kind {
	case KindFlow, KindSweep:
		if req.K < 0 {
			return fmt.Errorf("%w: negative budget %d", ErrInvalid, req.K)
		}
	case KindTotalCost:
		if req.G < 0 {
			return fmt.Errorf("%w: negative calibration cost %d", ErrInvalid, req.G)
		}
	}
	return nil
}

// Submit enqueues a solve and returns its handle ID. Identical requests
// are answered from the cache or attached to an in-flight run; a full
// queue returns ErrQueueFull.
func (p *Pool) Submit(req Request) (string, error) {
	if err := validate(req, p.opts.MaxJobs); err != nil {
		return "", err
	}
	key := requestKey(req)

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return "", ErrClosed
	}
	p.event(EvSubmitted)

	if out, ok := p.cache.get(key); ok {
		p.event(EvCacheHit)
		h := p.newHandleLocked()
		h.cacheHit = true
		p.finishHandleLocked(h, out)
		// A cache hit answered synchronously: a zero-length phase marks
		// the moment (SpanStore.Add is pure memory, safe under p.mu).
		p.opts.Spans.RecordPhase(req.Span, trace.PhaseCacheHit, p.clock(), 0, nil)
		return h.id, nil
	}
	p.event(EvCacheMiss)

	if fl, ok := p.flights[key]; ok {
		p.event(EvDedupShared)
		h := p.newHandleLocked()
		h.shared = true
		if fl.running {
			h.state = StateRunning
		}
		fl.ids = append(fl.ids, h.id)
		return h.id, nil
	}

	fl := &flight{key: key, req: req, enqueued: p.clock()}
	select {
	case p.queue <- fl:
	default:
		p.event(EvRejected)
		return "", ErrQueueFull
	}
	h := p.newHandleLocked()
	fl.ids = append(fl.ids, h.id)
	p.flights[key] = fl
	return h.id, nil
}

// newHandleLocked allocates a queued handle. Caller holds p.mu.
func (p *Pool) newHandleLocked() *handle {
	p.seq++
	h := &handle{
		id:      fmt.Sprintf("solve-%d", p.seq),
		state:   StateQueued,
		created: p.clock(),
		done:    make(chan struct{}),
	}
	p.handles[h.id] = h
	return h
}

// finishHandleLocked moves a handle to its terminal state and enforces
// the finished-handle retention bound. Caller holds p.mu.
func (p *Pool) finishHandleLocked(h *handle, out outcome) {
	if out.err != nil {
		h.state = StateFailed
		h.err = out.err
		p.event(EvFailed)
	} else {
		h.state = StateDone
		h.res = out.res
		p.event(EvCompleted)
	}
	h.finished = p.clock()
	close(h.done)
	p.finished = append(p.finished, h.id)
	for len(p.finished) > p.opts.MaxHandles {
		oldest := p.finished[0]
		p.finished = p.finished[1:]
		delete(p.handles, oldest)
	}
}

// Get returns the handle's current status.
func (p *Pool) Get(id string) (Status, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	h, ok := p.handles[id]
	if !ok {
		return Status{}, ErrUnknownHandle
	}
	return h.statusLocked(), nil
}

func (h *handle) statusLocked() Status {
	st := Status{
		ID:       h.id,
		State:    h.state,
		Result:   h.res,
		CacheHit: h.cacheHit,
		Shared:   h.shared,
		Created:  h.created,
		Finished: h.finished,
	}
	if h.err != nil {
		st.Err = h.err.Error()
	}
	return st
}

// Wait blocks until the handle reaches a terminal state or the context
// is done, then returns its status.
func (p *Pool) Wait(ctx context.Context, id string) (Status, error) {
	p.mu.Lock()
	h, ok := p.handles[id]
	p.mu.Unlock()
	if !ok {
		return Status{}, ErrUnknownHandle
	}
	select {
	case <-h.done:
	case <-ctx.Done():
		return Status{}, ctx.Err()
	}
	return p.Get(id)
}

// Stats reports current pool gauges.
func (p *Pool) Stats() Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Snapshot{
		QueueDepth: len(p.queue),
		Running:    p.running,
		CacheLen:   p.cache.len(),
		Handles:    len(p.handles),
	}
}

// Close stops the workers and fails every handle that has not finished.
// Safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.stop)
	p.mu.Unlock()
	p.wg.Wait()

	p.mu.Lock()
	defer p.mu.Unlock()
	for _, h := range p.handles {
		if h.state == StateQueued || h.state == StateRunning {
			p.finishHandleLocked(h, outcome{err: ErrClosed})
		}
	}
	p.flights = make(map[string]*flight)
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		// Check stop first so a closed pool never starts new flights —
		// a bare two-case select picks randomly when both are ready,
		// which would make shutdown behavior nondeterministic.
		select {
		case <-p.stop:
			return
		default:
		}
		select {
		case <-p.stop:
			return
		case fl := <-p.queue:
			p.run(fl)
		}
	}
}

func (p *Pool) run(fl *flight) {
	p.mu.Lock()
	fl.running = true
	p.running++
	for _, id := range fl.ids {
		if h := p.handles[id]; h != nil {
			h.state = StateRunning
		}
	}
	p.event(EvRun)
	p.mu.Unlock()

	if p.opts.TestHookBeforeRun != nil {
		p.opts.TestHookBeforeRun(fl.key)
	}
	start := p.clock()
	p.opts.Spans.RecordPhase(fl.req.Span, trace.PhaseSolveQueue, fl.enqueued, start.Sub(fl.enqueued), nil)
	out := execute(fl.req, p.opts.SolveWorkers)
	p.opts.Spans.RecordPhase(fl.req.Span, trace.PhaseSolveDP, start, p.clock().Sub(start), nil)

	p.mu.Lock()
	defer p.mu.Unlock()
	p.running--
	if evicted, ok := p.cache.add(fl.key, out); ok {
		p.event(EvCacheEvicted)
		_ = evicted
	}
	delete(p.flights, fl.key)
	for _, id := range fl.ids {
		if h := p.handles[id]; h != nil {
			p.finishHandleLocked(h, out)
		}
	}
}

// execute runs the DP for one request using the parallel solvers.
func execute(req Request, workers int) outcome {
	switch req.Kind {
	case KindFlow:
		res, err := offline.OptimalFlowParallel(req.Instance, req.K, workers)
		if err != nil {
			return outcome{err: err}
		}
		return outcome{res: &Result{Kind: req.Kind, Flow: res.Flow, Schedule: res.Schedule, Instance: req.Instance}}
	case KindSweep:
		flows, err := offline.BudgetSweepParallel(req.Instance, req.K, workers)
		if err != nil {
			return outcome{err: err}
		}
		return outcome{res: &Result{Kind: req.Kind, Flows: flows, Instance: req.Instance}}
	case KindTotalCost:
		total, bestK, sched, err := offline.OptimalTotalCostParallel(req.Instance, req.G, workers)
		if err != nil {
			return outcome{err: err}
		}
		return outcome{res: &Result{Kind: req.Kind, Total: total, BestK: bestK, Schedule: sched, Instance: req.Instance}}
	default:
		return outcome{err: fmt.Errorf("%w: unknown kind %q", ErrInvalid, req.Kind)}
	}
}
