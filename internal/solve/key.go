// Package solve runs exact offline solves as a bounded concurrent
// service: a worker pool executes DP requests (OptimalFlow, BudgetSweep,
// OptimalTotalCost), an LRU cache keyed by a canonical instance hash
// makes repeat solves free, and in-flight deduplication lets concurrent
// identical requests share a single DP run. The pool is the engine
// behind calibserved's POST /v1/solve endpoint but has no HTTP or
// metrics dependencies of its own — observers hook in via Options.
package solve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"calibsched/internal/core"
)

// Kind selects which exact solver a request runs.
type Kind string

const (
	// KindFlow runs OptimalFlow: minimum total weighted flow under a
	// budget of exactly Request.K calibrations.
	KindFlow Kind = "flow"
	// KindSweep runs BudgetSweep: optimal flow for every budget
	// 0..Request.K.
	KindSweep Kind = "sweep"
	// KindTotalCost runs OptimalTotalCost: minimum flow + G·(#calibrations)
	// with G = Request.G.
	KindTotalCost Kind = "total"
)

func (k Kind) valid() bool {
	switch k {
	case KindFlow, KindSweep, KindTotalCost:
		return true
	}
	return false
}

// keyVersion is folded into every hash so a change to the serialization
// can never alias entries written by an older layout.
const keyVersion = "calibsolve/v1"

// InstanceKey returns the canonical cache key for a solve request: a
// hex-encoded SHA-256 over a versioned, length-prefixed serialization of
// the instance (P, T, and every job's release and weight in the
// instance's canonical (Release, ID) order) plus the request kind and
// its parameter (K or G). Two requests get equal keys iff they describe
// the same solve; in particular the kind and parameter are part of the
// key, so the same job set under a different G can never collide.
func InstanceKey(in *core.Instance, kind Kind, param int64) string {
	buf := make([]byte, 0, 64+16*len(in.Jobs))
	buf = append(buf, keyVersion...)
	buf = append(buf, 0)
	buf = append(buf, kind...)
	buf = append(buf, 0)
	buf = binary.AppendVarint(buf, param)
	buf = binary.AppendVarint(buf, int64(in.P))
	buf = binary.AppendVarint(buf, in.T)
	buf = binary.AppendVarint(buf, int64(len(in.Jobs)))
	for _, j := range in.Jobs {
		buf = binary.AppendVarint(buf, j.Release)
		buf = binary.AppendVarint(buf, j.Weight)
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}

// requestKey derives the cache key for a validated request.
func requestKey(req Request) string {
	switch req.Kind {
	case KindTotalCost:
		return InstanceKey(req.Instance, req.Kind, req.G)
	default:
		return InstanceKey(req.Instance, req.Kind, int64(req.K))
	}
}
