package solve

import "container/list"

// lruCache is a plain least-recently-used map: get promotes, add evicts
// the coldest entry once the capacity is exceeded. Not goroutine-safe —
// the pool serializes access under its own mutex. A capacity <= 0
// disables caching entirely (every get misses, every add is dropped).
type lruCache struct {
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
}

type lruEntry struct {
	key string
	val outcome
}

func newLRU(capacity int) *lruCache {
	return &lruCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

func (c *lruCache) get(key string) (outcome, bool) {
	el, ok := c.items[key]
	if !ok {
		return outcome{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// add inserts (or refreshes) key and reports the evicted key, if the
// insert pushed the cache over capacity.
func (c *lruCache) add(key string, val outcome) (evicted string, didEvict bool) {
	if c.capacity <= 0 {
		return "", false
	}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return "", false
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() <= c.capacity {
		return "", false
	}
	oldest := c.ll.Back()
	c.ll.Remove(oldest)
	k := oldest.Value.(*lruEntry).key
	delete(c.items, k)
	return k, true
}

func (c *lruCache) len() int { return c.ll.Len() }
