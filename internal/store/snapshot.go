package store

import (
	"errors"
	"fmt"
	"os"
)

// Command payload schemas. These are the persistence wire format; the
// serving layer converts to and from its own request types. All fields
// are exact int64 quantities, matching internal/core's integer model.

// CreateCommand is the payload of a session's first record: everything
// needed to reconstruct a fresh engine.
type CreateCommand struct {
	// Alg names the engine backend (online.EngineNames).
	Alg string `json:"alg"`
	T   int64  `json:"t"`
	G   int64  `json:"g"`
}

// JobRec is one job in an arrivals batch or a snapshot's job table. ID
// is the server-assigned dense job ID; recovery asserts that replay
// reassigns the same IDs (engines break ties on ID, so IDs are part of
// the deterministic state).
type JobRec struct {
	ID      int   `json:"id"`
	Release int64 `json:"release"`
	Weight  int64 `json:"weight"`
}

// ArrivalsCommand is one accepted arrivals batch, in acceptance order.
type ArrivalsCommand struct {
	Jobs []JobRec `json:"jobs"`
}

// StepsCommand advances the session clock K steps.
type StepsCommand struct {
	K int64 `json:"k"`
}

// Command is one decoded WAL entry during recovery: exactly one of the
// pointers is set, per Type.
type Command struct {
	Seq      uint64
	Type     RecordType
	Create   *CreateCommand
	Arrivals *ArrivalsCommand
	Steps    *StepsCommand
}

// snapshotVersion versions the snapshot payload schema.
const snapshotVersion = 1

// Snapshot captures a session's complete durable state at a log
// position: WAL records with Seq <= Snapshot.Seq are reflected in it
// and skipped on replay.
type Snapshot struct {
	Version int    `json:"v"`
	Seq     uint64 `json:"seq"`
	// Create repeats the session's construction parameters so a
	// truncated log needs no create record.
	Create CreateCommand `json:"create"`
	// Engine is the engine's own state encoding (online.Snapshotter),
	// opaque to the store. Empty means the engine does not support
	// snapshots; such sessions never truncate their log and this file
	// is never written.
	Engine []byte `json:"engine"`
	// Jobs is the full accepted-job table, indexed by ID.
	Jobs []JobRec `json:"jobs"`
	// Buffered lists the IDs of jobs sitting in the arrival buffer
	// (accepted, not yet released to the engine), ascending.
	Buffered []int `json:"buffered"`
}

// readSnapshot loads and validates a session's snapshot file. A missing
// file returns (nil, nil): the session recovers from the full log.
func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: reading snapshot: %w", err)
	}
	rec, n, err := readRecord(data)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot frame: %w", err)
	}
	if rec.Type != RecordSnapshot {
		return nil, fmt.Errorf("%w: snapshot file holds record type %d", ErrCorrupt, rec.Type)
	}
	if n != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes after snapshot", ErrCorrupt, len(data)-n)
	}
	var snap Snapshot
	if err := unmarshalStrict(rec.Payload, &snap); err != nil {
		return nil, fmt.Errorf("store: snapshot payload: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("%w: snapshot version %d", ErrCorrupt, snap.Version)
	}
	if snap.Seq != rec.Seq {
		return nil, fmt.Errorf("%w: snapshot seq %d != frame seq %d", ErrCorrupt, snap.Seq, rec.Seq)
	}
	for i, j := range snap.Jobs {
		if j.ID != i {
			return nil, fmt.Errorf("%w: snapshot job table: entry %d has ID %d", ErrCorrupt, i, j.ID)
		}
	}
	for i, id := range snap.Buffered {
		if id < 0 || id >= len(snap.Jobs) {
			return nil, fmt.Errorf("%w: buffered job %d out of table range", ErrCorrupt, id)
		}
		if i > 0 && snap.Buffered[i-1] >= id {
			return nil, fmt.Errorf("%w: buffered IDs not ascending", ErrCorrupt)
		}
	}
	return &snap, nil
}
