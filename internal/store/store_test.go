package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func openTestStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// writeSession logs a canonical little history: create, one arrivals
// batch, one step command.
func writeSession(t *testing.T, s *Store, id string) *Log {
	t.Helper()
	l, err := s.Create(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendCreate(CreateCommand{Alg: "alg2", T: 5, G: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendArrivals(ArrivalsCommand{Jobs: []JobRec{{ID: 0, Release: 0, Weight: 3}, {ID: 1, Release: 2, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendSteps(StepsCommand{K: 4}); err != nil {
		t.Fatal(err)
	}
	return l
}

func recoverOne(t *testing.T, s *Store) *Recovery {
	t.Helper()
	rec, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestLogRoundTrip(t *testing.T) {
	s := openTestStore(t, Options{Fsync: FsyncAlways})
	l := writeSession(t, s, "s-000001")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rec := recoverOne(t, s)
	if len(rec.Failed) != 0 || len(rec.Sessions) != 1 {
		t.Fatalf("recovered %d sessions, %d failed: %+v", len(rec.Sessions), len(rec.Failed), rec.Failed)
	}
	rs := rec.Sessions[0]
	defer rs.Log.Close()
	if rs.ID != "s-000001" || rs.Truncated || rs.Snap != nil {
		t.Fatalf("unexpected recovery shape: %+v", rs)
	}
	if rs.Create != (CreateCommand{Alg: "alg2", T: 5, G: 10}) {
		t.Fatalf("create = %+v", rs.Create)
	}
	if len(rs.Commands) != 2 {
		t.Fatalf("%d commands, want 2", len(rs.Commands))
	}
	if a := rs.Commands[0].Arrivals; a == nil || len(a.Jobs) != 2 || a.Jobs[1] != (JobRec{ID: 1, Release: 2, Weight: 1}) {
		t.Fatalf("arrivals command = %+v", rs.Commands[0])
	}
	if st := rs.Commands[1].Steps; st == nil || st.K != 4 {
		t.Fatalf("steps command = %+v", rs.Commands[1])
	}
	// The recovered log continues the sequence.
	if rs.Log.Seq() != 3 {
		t.Fatalf("recovered seq %d, want 3", rs.Log.Seq())
	}
	if _, err := rs.Log.AppendSteps(StepsCommand{K: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotTruncatesLog(t *testing.T) {
	s := openTestStore(t, Options{})
	l := writeSession(t, s, "s-000001")
	snap := &Snapshot{
		Version: snapshotVersion,
		Create:  CreateCommand{Alg: "alg2", T: 5, G: 10},
		Engine:  []byte(`{"fake":"state"}`),
		Jobs:    []JobRec{{ID: 0, Release: 0, Weight: 3}, {ID: 1, Release: 2, Weight: 1}},
	}
	if err := l.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 3 {
		t.Fatalf("snapshot seq %d, want 3", snap.Seq)
	}
	walPath := filepath.Join(l.Dir(), walName)
	if fi, err := os.Stat(walPath); err != nil || fi.Size() != 0 {
		t.Fatalf("wal not truncated after snapshot: %v size=%d", err, fi.Size())
	}
	if _, err := l.AppendSteps(StepsCommand{K: 7}); err != nil {
		t.Fatal(err)
	}
	l.Abort() // crash: post-snapshot record must still be recoverable

	rs := recoverOne(t, s).Sessions[0]
	defer rs.Log.Close()
	if rs.Snap == nil || rs.Snap.Seq != 3 || string(rs.Snap.Engine) != `{"fake":"state"}` {
		t.Fatalf("snapshot not recovered: %+v", rs.Snap)
	}
	if rs.Create != snap.Create {
		t.Fatalf("create from snapshot = %+v", rs.Create)
	}
	if len(rs.Commands) != 1 || rs.Commands[0].Steps == nil || rs.Commands[0].Steps.K != 7 {
		t.Fatalf("post-snapshot commands = %+v", rs.Commands)
	}
	if rs.Log.Seq() != 4 {
		t.Fatalf("recovered seq %d, want 4", rs.Log.Seq())
	}
}

// TestSnapshotThenStaleWal covers the crash window between snapshot
// publish and log truncation: the log still holds pre-snapshot records,
// which recovery must skip without replaying or truncating.
func TestSnapshotThenStaleWal(t *testing.T) {
	s := openTestStore(t, Options{})
	l := writeSession(t, s, "s-000001")
	walPath := filepath.Join(l.Dir(), walName)
	stale, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(&Snapshot{
		Version: snapshotVersion,
		Create:  CreateCommand{Alg: "alg2", T: 5, G: 10},
		Engine:  []byte("x"),
		Jobs:    []JobRec{{ID: 0, Release: 0, Weight: 3}, {ID: 1, Release: 2, Weight: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	l.Abort()
	// Undo the truncation, as if the crash hit between rename and
	// truncate.
	if err := os.WriteFile(walPath, stale, 0o644); err != nil {
		t.Fatal(err)
	}

	rs := recoverOne(t, s).Sessions[0]
	defer rs.Log.Close()
	if len(rs.Commands) != 0 {
		t.Fatalf("pre-snapshot records replayed: %+v", rs.Commands)
	}
	if rs.Truncated {
		t.Fatal("stale-but-valid records reported as truncation")
	}
	if rs.Log.Seq() != 3 {
		t.Fatalf("seq %d, want 3", rs.Log.Seq())
	}
}

func TestTornTailTruncation(t *testing.T) {
	for name, garbage := range map[string][]byte{
		"partial header": {0x05, 0x00},
		"partial body":   append([]byte{0xff, 0x00, 0x00, 0x00, 0x99, 0x99, 0x99, 0x99}, []byte("short")...),
	} {
		t.Run(name, func(t *testing.T) {
			s := openTestStore(t, Options{})
			l := writeSession(t, s, "s-000001")
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			walPath := filepath.Join(s.Root(), "s-000001", walName)
			goodLen := fileSize(t, walPath)
			f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(garbage); err != nil {
				t.Fatal(err)
			}
			f.Close()

			rec := recoverOne(t, s)
			if len(rec.Sessions) != 1 {
				t.Fatalf("session lost to a torn tail: %+v", rec.Failed)
			}
			rs := rec.Sessions[0]
			defer rs.Log.Close()
			if !rs.Truncated {
				t.Error("truncation not reported")
			}
			if len(rs.Commands) != 2 {
				t.Errorf("%d commands survive, want 2", len(rs.Commands))
			}
			if got := fileSize(t, walPath); got != goodLen {
				t.Errorf("wal size %d after recovery, want %d (bad tail cut off)", got, goodLen)
			}
		})
	}
}

func TestCorruptRecordMidFile(t *testing.T) {
	s := openTestStore(t, Options{})
	l, err := s.Create("s-000001")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendCreate(CreateCommand{Alg: "alg1", T: 3, G: 6}); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(l.Dir(), walName)
	cut := fileSize(t, walPath) // end of record 1
	if _, err := l.AppendArrivals(ArrivalsCommand{Jobs: []JobRec{{ID: 0, Release: 0, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendSteps(StepsCommand{K: 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte inside record 2: its checksum must fail and
	// recovery must keep only record 1, discarding record 3 behind the
	// corruption.
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[cut+recordHeaderLen+bodyPrefixLen] ^= 0xff
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rs := recoverOne(t, s).Sessions[0]
	defer rs.Log.Close()
	if !rs.Truncated {
		t.Error("corruption not reported as truncation")
	}
	if len(rs.Commands) != 0 {
		t.Errorf("commands past a corrupt record replayed: %+v", rs.Commands)
	}
	if got := fileSize(t, walPath); got != cut {
		t.Errorf("wal size %d, want %d", got, cut)
	}
	if rs.Log.Seq() != 1 {
		t.Errorf("seq %d, want 1", rs.Log.Seq())
	}
}

func TestEmptyLogDegradesToAbsent(t *testing.T) {
	s := openTestStore(t, Options{})
	l, err := s.Create("s-000001")
	if err != nil {
		t.Fatal(err)
	}
	l.Abort() // crash before the create record

	rec := recoverOne(t, s)
	if len(rec.Sessions) != 0 {
		t.Fatalf("empty log produced a session: %+v", rec.Sessions)
	}
	if len(rec.Failed) != 1 || !strings.Contains(rec.Failed[0].Err.Error(), "empty log") {
		t.Fatalf("failed = %+v", rec.Failed)
	}
}

func TestCorruptSnapshotDegradesToAbsent(t *testing.T) {
	s := openTestStore(t, Options{})
	l := writeSession(t, s, "s-000001")
	if err := l.WriteSnapshot(&Snapshot{
		Version: snapshotVersion,
		Create:  CreateCommand{Alg: "alg2", T: 5, G: 10},
		Engine:  []byte("x"),
		Jobs:    []JobRec{{ID: 0, Release: 0, Weight: 3}, {ID: 1, Release: 2, Weight: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	l.Abort()
	snapPath := filepath.Join(s.Root(), "s-000001", snapName)
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rec := recoverOne(t, s)
	if len(rec.Sessions) != 0 || len(rec.Failed) != 1 {
		t.Fatalf("corrupt snapshot: sessions=%d failed=%+v", len(rec.Sessions), rec.Failed)
	}
	if !errors.Is(rec.Failed[0].Err, ErrCorrupt) {
		t.Fatalf("failure is not ErrCorrupt: %v", rec.Failed[0].Err)
	}
}

func TestRemoveDeletesDirectory(t *testing.T) {
	s := openTestStore(t, Options{})
	l := writeSession(t, s, "s-000001")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("s-000001"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(s.Root(), "s-000001")); !os.IsNotExist(err) {
		t.Fatalf("session dir survives Remove: %v", err)
	}
	if ids, err := s.SessionIDs(); err != nil || len(ids) != 0 {
		t.Fatalf("SessionIDs after Remove: %v %v", ids, err)
	}
	// Removing an absent session is not an error (idempotent delete).
	if err := s.Remove("s-000001"); err != nil {
		t.Fatal(err)
	}
}

func TestOpenFailsFast(t *testing.T) {
	if _, err := Open("", Options{}); err == nil {
		t.Error("Open(\"\") succeeded")
	}
	// A root path that collides with an existing file cannot be a
	// directory: MkdirAll must fail at Open time, not on first append.
	dir := t.TempDir()
	file := filepath.Join(dir, "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(file, Options{}); err == nil {
		t.Error("Open over a plain file succeeded")
	}
	if _, err := Open(filepath.Join(file, "sub"), Options{}); err == nil {
		t.Error("Open under a plain file succeeded")
	}
}

func TestInvalidSessionIDs(t *testing.T) {
	s := openTestStore(t, Options{})
	for _, id := range []string{"", ".", "..", "a/b", `a\b`, "../escape"} {
		if _, err := s.Create(id); err == nil {
			t.Errorf("Create(%q) succeeded", id)
		}
		if err := s.Remove(id); err == nil {
			t.Errorf("Remove(%q) succeeded", id)
		}
	}
	// IDs are never reused: re-creating an existing directory fails.
	if _, err := s.Create("s-000001"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("s-000001"); err == nil {
		t.Error("duplicate Create succeeded")
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{"always": FsyncAlways, "batch": FsyncBatch, "none": FsyncNone} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", in, got, err)
		}
		if got.String() != in {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), in)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}

// TestBatchPolicySyncCadence just exercises the batch path end to end;
// sync effects are not observable in-process, but the counter reset and
// append flow must not error.
func TestBatchPolicySyncCadence(t *testing.T) {
	s := openTestStore(t, Options{Fsync: FsyncBatch, BatchEvery: 2})
	l, err := s.Create("s-000001")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendCreate(CreateCommand{Alg: "alg1", T: 2, G: 1}); err != nil {
		t.Fatal(err)
	}
	for k := int64(1); k <= 5; k++ {
		if _, err := l.AppendSteps(StepsCommand{K: k}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rs := recoverOne(t, s).Sessions[0]
	rs.Log.Close()
	if len(rs.Commands) != 5 {
		t.Fatalf("%d commands, want 5", len(rs.Commands))
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	s := openTestStore(t, Options{})
	l := writeSession(t, s, "s-000001")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendSteps(StepsCommand{K: 1}); err == nil {
		t.Error("append after Close succeeded")
	}
	if err := l.WriteSnapshot(&Snapshot{Version: snapshotVersion}); err == nil {
		t.Error("snapshot after Close succeeded")
	}
	if err := l.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

func TestSyncObserverTimesAppendFsyncs(t *testing.T) {
	s := openTestStore(t, Options{Fsync: FsyncAlways})
	l, err := s.Create("s-000001")
	if err != nil {
		t.Fatal(err)
	}
	var calls int
	l.SetSyncObserver(func(d time.Duration) {
		calls++
		if d < 0 {
			t.Errorf("negative fsync duration %v", d)
		}
	})
	if _, err := l.AppendCreate(CreateCommand{Alg: "alg2", T: 5, G: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendSteps(StepsCommand{K: 1}); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("observer saw %d fsyncs, want 2 (one per FsyncAlways append)", calls)
	}
	// Explicit Sync is observed too.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("observer saw %d fsyncs after Sync, want 3", calls)
	}
	// Uninstalling the observer restores the untimed path.
	l.SetSyncObserver(nil)
	if _, err := l.AppendSteps(StepsCommand{K: 1}); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("observer called after uninstall: %d", calls)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
