package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadRecord throws arbitrary bytes at the record scanner. The
// properties pinned here are recovery's safety contract: scanning never
// panics, never returns a record whose checksum did not verify (the
// valid prefix re-scans cleanly and identically), and always stops with
// a typed reason — nil at a clean end, ErrTornTail or ErrCorrupt
// otherwise — with the valid length never past the first bad byte.
func FuzzReadRecord(f *testing.F) {
	// Seed with well-formed streams so the fuzzer starts from the
	// interesting part of the space, plus canonical corruptions.
	var good []byte
	good = appendRecord(good, RecordCreate, 1, []byte(`{"alg":"alg2","t":5,"g":10}`))
	good = appendRecord(good, RecordArrivals, 2, []byte(`{"jobs":[{"id":0,"release":0,"weight":3}]}`))
	good = appendRecord(good, RecordSteps, 3, []byte(`{"k":4}`))
	f.Add(good)
	f.Add(good[:len(good)-3])          // torn tail
	f.Add(append(good, 0x01, 0x02))    // trailing garbage
	f.Add([]byte{})                    // empty log
	f.Add([]byte{0xff, 0xff, 0xff})    // short header
	f.Add(bytes.Repeat([]byte{0}, 64)) // zero-length body claims
	flipped := append([]byte(nil), good...)
	flipped[recordHeaderLen+bodyPrefixLen] ^= 0xff
	f.Add(flipped) // checksum mismatch in record 1

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validLen, stop := ScanRecords(data)
		if validLen < 0 || validLen > len(data) {
			t.Fatalf("validLen %d outside [0,%d]", validLen, len(data))
		}
		if stop == nil && validLen != len(data) {
			t.Fatalf("clean stop but %d bytes unconsumed", len(data)-validLen)
		}
		if stop != nil && !errors.Is(stop, ErrTornTail) && !errors.Is(stop, ErrCorrupt) {
			t.Fatalf("untyped stop reason: %v", stop)
		}
		// The valid prefix must be self-consistent: re-scanning yields
		// the same records and a clean stop.
		again, againLen, stop2 := ScanRecords(data[:validLen])
		if stop2 != nil || againLen != validLen || len(again) != len(recs) {
			t.Fatalf("valid prefix does not re-scan cleanly: %v len %d vs %d, %d recs vs %d",
				stop2, againLen, validLen, len(again), len(recs))
		}
		for i := range recs {
			if recs[i].Type < RecordCreate || recs[i].Type > RecordSnapshot {
				t.Fatalf("record %d has invalid type %d", i, recs[i].Type)
			}
			if !bytes.Equal(recs[i].Payload, again[i].Payload) || recs[i].Seq != again[i].Seq {
				t.Fatalf("record %d differs across scans", i)
			}
		}
	})
}

// FuzzRecoverSession feeds arbitrary bytes as a session's wal and snap
// files: recovery must never panic and must either produce a session or
// a typed failure, and a second recovery over the (possibly truncated)
// files must succeed without further truncation — truncation converges
// in one pass.
func FuzzRecoverSession(f *testing.F) {
	var good []byte
	good = appendRecord(good, RecordCreate, 1, []byte(`{"alg":"alg2","t":5,"g":10}`))
	good = appendRecord(good, RecordSteps, 2, []byte(`{"k":4}`))
	f.Add(good, []byte{})
	f.Add(good[:len(good)-1], []byte{})
	f.Add([]byte{}, []byte{})
	f.Add([]byte("garbage"), []byte("garbage"))

	f.Fuzz(func(t *testing.T, wal, snap []byte) {
		s := openTestStore(t, Options{})
		l, err := s.Create("s-000001")
		if err != nil {
			t.Fatal(err)
		}
		l.Abort()
		if err := writeFile(s, walName, wal); err != nil {
			t.Fatal(err)
		}
		if len(snap) > 0 {
			if err := writeFile(s, snapName, snap); err != nil {
				t.Fatal(err)
			}
		}
		rec, err := s.Recover()
		if err != nil {
			t.Fatalf("Recover errored on fuzz input: %v", err)
		}
		if len(rec.Sessions)+len(rec.Failed) != 1 {
			t.Fatalf("sessions=%d failed=%d, want exactly one outcome", len(rec.Sessions), len(rec.Failed))
		}
		if len(rec.Sessions) == 1 {
			first := rec.Sessions[0]
			first.Log.Close()
			rec2, err := s.Recover()
			if err != nil || len(rec2.Sessions) != 1 {
				t.Fatalf("second recovery failed: %v %+v", err, rec2)
			}
			second := rec2.Sessions[0]
			second.Log.Close()
			if second.Truncated {
				t.Fatal("second recovery truncated again; truncation must converge")
			}
			if len(second.Commands) != len(first.Commands) || second.Log.Seq() != first.Log.Seq() {
				t.Fatalf("recovery not idempotent: %d/%d commands, seq %d/%d",
					len(first.Commands), len(second.Commands), first.Log.Seq(), second.Log.Seq())
			}
		}
	})
}

func writeFile(s *Store, name string, data []byte) error {
	return os.WriteFile(filepath.Join(s.Root(), "s-000001", name), data, 0o644)
}
