package store

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
)

// Cross-session group commit (DESIGN.md §9): a single committer
// goroutine collects pending appends from every session worker, writes
// each record to its session WAL unsynced, appends a copy of every
// record in the group to one store-wide journal file, and issues a
// single fsync — on the journal — for the whole group. `-fsync always`
// keeps its guarantee (an acknowledged command survives kill -9 and
// machine crash: it is durable in the journal even when the session
// WAL's tail is still in the page cache) while the fsync cost is shared
// across however many commands were in flight.
//
// Why a shared journal rather than one fsync pass over the dirty
// session WALs: fsyncs of distinct files do not amortize. Measured on
// this class of filesystem, eight concurrent fsyncs of eight files cost
// ~7x one fsync, while one fsync covering eight writes to a single file
// costs ~1.6x — the journal turns N fsyncs into one, a per-file pass
// only overlaps them. Recovery folds the journal's tail back into the
// session WALs (see mergeJournal in recover.go), so the journal is an
// amortization detail, never the source of truth past boot.
//
// The batching window is opportunistic, not timed: the committer starts
// a group the moment one request is available and folds in everything
// that queued while the previous group was being written and synced.
// Under a single in-flight command this degrades to per-record fsync
// cost (plus one channel round trip); under N concurrent sessions each
// group carries ~N records and the per-command wait amortizes toward
// fsync/N.
//
// The journal is bounded: once it crosses rotateJournalBytes, the
// committer fsyncs every session WAL with journal-covered records and
// truncates the journal — an fsync-per-file pass whose cost is
// amortized over the thousands of records a rotation window holds.

// maxGroup bounds the records folded into one group so a flood of
// waiters cannot defer the group's fsync indefinitely.
const maxGroup = 512

// rotateJournalBytes triggers journal rotation: session WALs are
// fsynced and the journal truncated once it grows past this.
const rotateJournalBytes = 1 << 20

// journalName is the group-commit journal file, directly under the
// store root (session state lives in subdirectories; SessionIDs lists
// only directories, so the journal never masquerades as a session).
const journalName = "commit.log"

// ErrCommitterStopped rejects appends submitted after Store.Close has
// stopped the committer; sessions must settle before the store closes.
var ErrCommitterStopped = errors.New("store: group committer stopped")

// commitReq is one record waiting to become durable: the framed bytes,
// the log they extend, and the channel its owner blocks on. The buffer
// is owned by the submitting worker, which is blocked until done is
// signalled, so the committer may read it without copying but must not
// retain it past the release.
type commitReq struct {
	log  *Log
	buf  []byte
	n    int
	err  error
	done chan struct{}
}

// groupObserver receives one callback per committed group (record count
// and distinct session logs), on the committer goroutine. The server
// wires it to expvar counters.
type groupObserver func(records, logs int)

// journal is the committer-owned group journal state. Confined to the
// committer goroutine after construction.
type journal struct {
	f      *os.File
	path   string
	seq    uint64
	size   int64
	broken error
	buf    []byte
	// dirty holds session logs with journal-covered records that have
	// not been fsynced through their own file yet; rotation drains it.
	dirty map[*Log]struct{}
}

// Committer is the cross-session group-commit engine. One per Store
// (FsyncAlways with group commit enabled); every Log the store opens
// routes its appends through it.
type Committer struct {
	j    *journal
	reqs chan *commitReq
	stop chan struct{}
	done chan struct{}
	once sync.Once

	groups  atomic.Uint64
	records atomic.Uint64
	obs     atomic.Pointer[groupObserver]
}

// newCommitter opens the store's group journal and starts the committer
// goroutine. Its loop selects on stop, so Store.Close can always
// terminate it.
func newCommitter(root string) (*Committer, error) {
	path := root + string(os.PathSeparator) + journalName
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening group journal: %w", err)
	}
	size := int64(0)
	if fi, err := f.Stat(); err == nil {
		size = fi.Size()
	}
	c := &Committer{
		j:    &journal{f: f, path: path, size: size, dirty: make(map[*Log]struct{})},
		reqs: make(chan *commitReq, maxGroup),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go c.run()
	return c, nil
}

// Stop terminates the committer, waits for its goroutine to exit, and
// closes the journal. Requests still queued are failed with
// ErrCommitterStopped, never left hanging. Idempotent.
func (c *Committer) Stop() {
	c.once.Do(func() { close(c.stop) })
	<-c.done
}

// SetObserver installs fn, invoked once per committed group on the
// committer goroutine. Install before traffic; nil clears.
func (c *Committer) SetObserver(fn func(records, logs int)) {
	if fn == nil {
		c.obs.Store(nil)
		return
	}
	obs := groupObserver(fn)
	c.obs.Store(&obs)
}

// Groups returns the number of groups committed so far.
func (c *Committer) Groups() uint64 { return c.groups.Load() }

// Records returns the number of records committed through those groups.
func (c *Committer) Records() uint64 { return c.records.Load() }

// commit submits one framed record and blocks until its group is
// durable (or failed). Called by Log.append on the owning session
// worker; at most one request per log is ever in flight, because that
// worker is blocked right here until release.
func (c *Committer) commit(l *Log, buf []byte) (int, error) {
	req := &commitReq{log: l, buf: buf, done: make(chan struct{})}
	select {
	case c.reqs <- req:
	case <-c.done:
		return 0, ErrCommitterStopped
	}
	select {
	case <-req.done:
		return req.n, req.err
	case <-c.done:
		// The committer exited while we waited; it either completed the
		// request or failed it during its drain — never silently drops it.
		select {
		case <-req.done:
			return req.n, req.err
		default:
			return 0, ErrCommitterStopped
		}
	}
}

// run is the committer loop: one group per iteration, stop always
// selectable. On exit the journal file is closed; its contents stay on
// disk for the next boot's merge.
func (c *Committer) run() {
	defer close(c.done)
	defer c.j.f.Close() //caliblint:allow durablesync -- the journal is append-and-fsync per group; at stop there is nothing unsynced for close to lose
	for {
		select {
		case req := <-c.reqs:
			c.commitGroup(c.collect(req))
		case <-c.stop:
			c.failPending()
			return
		}
	}
}

// collectYields bounds how many scheduler yields collect spends waiting
// for stragglers. Each yield is ~a microsecond against a multi-hundred
// microsecond fsync, so a fruitless window costs well under 1% latency.
const collectYields = 4

// collect folds every request already queued (up to maxGroup) into the
// group that first opened. No timer — but the workers released by the
// previous group need a few microseconds to process their responses and
// resubmit, so a purely non-blocking drain would commit a near-empty
// group and burn a full fsync on it. collect instead yields the
// processor a bounded number of times, re-draining after each yield and
// resetting the allowance whenever a request arrives, which lets a
// cohort of concurrent sessions re-form into one group without ever
// parking on a clock.
func (c *Committer) collect(first *commitReq) []*commitReq {
	batch := []*commitReq{first}
	idle := 0
	for len(batch) < maxGroup && idle < collectYields {
		select {
		case r := <-c.reqs:
			batch = append(batch, r)
			idle = 0
		default:
			runtime.Gosched()
			idle++
		}
	}
	return batch
}

// failPending rejects everything still queued at stop time so no worker
// is left blocked on a group that will never run.
func (c *Committer) failPending() {
	for {
		select {
		case req := <-c.reqs:
			req.err = ErrCommitterStopped
			close(req.done)
		default:
			return
		}
	}
}

// commitGroup makes one group durable: every record is written to its
// session WAL (unsynced) and to the journal, then one journal fsync
// covers the whole group, then every waiter is released. A failed or
// short session-WAL write poisons that log (see Log.poison) and fails
// its request without touching the others; a failed journal write or
// fsync fails — and is observed by — every waiter whose record rode the
// group, poisons their logs (the records' durability is unknown), and
// breaks the journal so later groups fail fast.
func (c *Committer) commitGroup(batch []*commitReq) {
	j := c.j
	j.buf = j.buf[:0]
	var good []*commitReq
	logs := make(map[*Log]struct{}, len(batch))
	for _, r := range batch {
		if j.broken != nil {
			r.err = j.broken
			continue
		}
		if err := r.log.writeFrame(r.buf); err != nil {
			r.err = err
			continue
		}
		j.seq++
		j.buf = appendGroupEntry(j.buf, j.seq, r.log.sid, r.buf)
		good = append(good, r)
		logs[r.log] = struct{}{}
		r.n = len(r.buf)
	}

	if len(good) > 0 {
		err := j.write()
		if err == nil {
			err = j.f.Sync()
		}
		if err != nil {
			j.broken = fmt.Errorf("store: group journal failed: %w", err)
			for _, r := range good {
				r.log.poison(j.broken)
				r.err = j.broken
			}
			good = nil
		} else {
			for l := range logs {
				j.dirty[l] = struct{}{}
			}
		}
	}

	if len(good) > 0 {
		c.groups.Add(1)
		c.records.Add(uint64(len(good)))
		if obs := c.obs.Load(); obs != nil {
			(*obs)(len(good), len(logs))
		}
	}
	// Rotate before releasing the waiters: every journal access then
	// happens-before the release, so a released worker (or a test driving
	// commitGroup directly) sees a quiescent journal. The next group
	// could not start during the rotation anyway, so this costs no
	// throughput — only the rare over-threshold group waits out the pass.
	if j.broken == nil && j.size > rotateJournalBytes {
		c.rotate()
	}
	for _, r := range batch {
		close(r.done)
	}
}

// write appends the group's framed entries to the journal file.
func (j *journal) write() error {
	n, err := j.f.Write(j.buf)
	if err == nil && n < len(j.buf) {
		err = fmt.Errorf("store: short journal write (%d of %d bytes)", n, len(j.buf))
	}
	if err != nil {
		return err
	}
	j.size += int64(n)
	return nil
}

// rotate bounds the journal: every session WAL holding journal-covered
// records is fsynced, making the journal's copies redundant, and the
// journal is truncated. Best-effort — on any sync failure the journal
// is kept whole (acknowledged records stay durable in it) and rotation
// retries after the next group. A log closed in the meantime was synced
// by its Close and is simply dropped from the dirty set.
func (c *Committer) rotate() {
	j := c.j
	for l := range j.dirty {
		if err := l.fileSync(); err != nil {
			if errors.Is(err, os.ErrClosed) {
				delete(j.dirty, l)
				continue
			}
			return
		}
		delete(j.dirty, l)
	}
	if err := j.f.Truncate(0); err != nil {
		return
	}
	j.size = 0
}
