package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// RecoveredSession is one session reconstructable from disk: its
// construction parameters, the latest snapshot (nil when the whole
// history lives in the log), the commands to replay on top, and the
// log handle reopened for continued appends.
type RecoveredSession struct {
	ID     string
	Create CreateCommand
	// Snap is the state to start replay from; nil means replay begins
	// with a fresh engine.
	Snap *Snapshot
	// Commands are the logged commands not reflected in Snap, in order.
	// The create command is folded into Create and never appears here.
	Commands []Command
	// Log continues the session's WAL; its sequence numbering resumes
	// after the last valid record.
	Log *Log
	// Truncated reports that a torn or corrupt tail was cut off.
	Truncated bool
}

// FailedSession is a session directory that could not be recovered;
// the session is absent from serving but its directory is left on disk
// for inspection (the manager still skips its ID when numbering new
// sessions).
type FailedSession struct {
	ID  string
	Err error
}

// Recovery is the result of scanning a store root.
type Recovery struct {
	Sessions []RecoveredSession
	Failed   []FailedSession
}

// Recover scans every session directory under the root and
// reconstructs what it can. Recovery is deliberately tolerant: a torn
// or checksum-invalid tail is truncated and the valid prefix served; a
// directory with no usable state at all degrades to "session absent".
// It never panics on any file contents and never surfaces a
// checksum-invalid record.
func (s *Store) Recover() (*Recovery, error) {
	// Fold the group-commit journal's records back into their session
	// WALs first, so the per-session scan below sees every acknowledged
	// command even when a session WAL's own tail never left the page
	// cache. Unconditional: the journal may be left over from a previous
	// run with group commit enabled even if this boot disables it.
	if err := s.mergeJournal(); err != nil {
		return nil, err
	}
	ids, err := s.SessionIDs()
	if err != nil {
		return nil, err
	}
	rec := &Recovery{}
	for _, id := range ids {
		rs, err := s.recoverSession(id)
		if err != nil {
			rec.Failed = append(rec.Failed, FailedSession{ID: id, Err: err})
			continue
		}
		rec.Sessions = append(rec.Sessions, *rs)
	}
	return rec, nil
}

// mergeJournal replays the group-commit journal into the session WALs
// it covers, then truncates it. The journal's entries are the durable
// copies of records whose session-WAL writes were acknowledged without
// their own fsync (DESIGN.md §9); after a crash, any acknowledged
// record missing from a session WAL is spliced back in here, and every
// touched WAL is fsynced so the journal's copies become redundant
// before the journal is dropped. A torn journal tail is a crash
// mid-group — none of its records were acknowledged — and is discarded.
// Running the merge twice is idempotent: the second pass finds an empty
// journal, which is why a double kill -9 across reboots converges.
func (s *Store) mergeJournal() error {
	path := filepath.Join(s.root, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: reading group journal: %w", err)
	}
	if len(data) == 0 {
		return nil
	}
	perSid := make(map[string][][]byte)
	var order []string
	off := 0
	for off < len(data) {
		rec, n, err := readRecord(data[off:])
		if err != nil || rec.Type != RecordGroupEntry {
			break
		}
		sid, frame, err := decodeGroupEntry(rec.Payload)
		if err != nil {
			break
		}
		if _, ok := perSid[sid]; !ok {
			order = append(order, sid)
		}
		perSid[sid] = append(perSid[sid], frame)
		off += n
	}
	for _, sid := range order {
		if err := s.mergeSessionTail(sid, perSid[sid]); err != nil {
			return fmt.Errorf("store: merging journal into session %s: %w", sid, err)
		}
	}
	// Every acknowledged record now rests durably in its session WAL;
	// drop the journal so the next recovery (or a live committer sharing
	// this store in tests) starts from an empty one.
	if err := os.Truncate(path, 0); err != nil {
		return fmt.Errorf("store: truncating group journal: %w", err)
	}
	return syncDir(s.root)
}

// mergeSessionTail splices one session's journal frames into its WAL.
// Frames the WAL already holds are skipped by sequence number; a torn
// WAL tail is cut first so the spliced frames extend a valid prefix.
// The WAL is always fsynced when the journal covered it — even with
// nothing to splice — because the journal about to be truncated may
// hold the only durable copy of records sitting in the WAL's page
// cache.
func (s *Store) mergeSessionTail(sid string, frames [][]byte) error {
	dir, err := s.dir(sid)
	if err != nil {
		return nil // unusable sid cannot name a session directory
	}
	if _, err := os.Stat(dir); err != nil {
		if os.IsNotExist(err) {
			return nil // session removed since the journal entry landed
		}
		return err
	}
	// Effective durable horizon: the snapshot's seq plus whatever valid
	// records the WAL already holds. A corrupt snapshot contributes
	// nothing — the session will degrade in recoverSession regardless.
	last := uint64(0)
	if snap, err := readSnapshot(filepath.Join(dir, snapName)); err == nil && snap != nil {
		last = snap.Seq
	}
	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("reading wal: %w", err)
	}
	recs, validLen, _ := ScanRecords(data)
	for _, r := range recs {
		if r.Seq > last {
			last = r.Seq
		}
	}
	var missing [][]byte
	for _, frame := range frames {
		rec, _, err := readRecord(frame)
		if err != nil {
			continue // cannot happen: the journal entry's CRC covered it
		}
		if rec.Seq > last {
			missing = append(missing, frame)
			last = rec.Seq
		}
	}
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("reopening wal: %w", err)
	}
	if len(missing) > 0 && validLen < len(data) {
		// The WAL's own torn tail is superseded by the journal's complete
		// copies; cut it so the splice extends a valid prefix. (With
		// nothing to splice the tail is left for recoverSession's usual
		// truncation.)
		if err := f.Truncate(int64(validLen)); err != nil {
			f.Close() //caliblint:allow durablesync -- the truncate error is surfaced and the journal kept; the next boot retries the merge
			return fmt.Errorf("cutting torn wal tail: %w", err)
		}
	}
	for _, frame := range missing {
		if _, err := f.Write(frame); err != nil {
			f.Close() //caliblint:allow durablesync -- the write error is surfaced and the journal kept; the next boot retries the merge
			return fmt.Errorf("splicing journal frame: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close() //caliblint:allow durablesync -- the sync error is surfaced and the journal kept; the next boot retries the merge
		return fmt.Errorf("syncing merged wal: %w", err)
	}
	return f.Close()
}

// RecoverOne rebuilds a single session directory — Recover scoped to one
// id, for putting back a session that was pulled out of serving (a
// failed migration export) without rescanning, or touching the open
// logs of, every other session under the root.
func (s *Store) RecoverOne(id string) (*RecoveredSession, error) {
	return s.recoverSession(id)
}

// recoverSession rebuilds one session directory.
func (s *Store) recoverSession(id string) (*RecoveredSession, error) {
	rs, lastSeq, validLen, err := s.scanSession(id)
	if err != nil {
		return nil, err
	}
	walPath := filepath.Join(filepath.Join(s.root, id), walName)
	if rs.Truncated {
		if err := os.Truncate(walPath, int64(validLen)); err != nil {
			return nil, fmt.Errorf("store: truncating torn wal: %w", err)
		}
	}

	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: reopening wal: %w", err)
	}
	rs.Log = s.newLog(filepath.Dir(walPath), f, lastSeq)
	return rs, nil
}

// scanSession reads one session directory without modifying anything on
// disk: the snapshot, the decodable command prefix of the WAL, and where
// that prefix ends. It is the shared read path of crash recovery (which
// then truncates and reopens the log for appending) and of migration
// export (which ships the state elsewhere and must leave the directory
// exactly as found). The returned RecoveredSession carries no Log.
func (s *Store) scanSession(id string) (rs *RecoveredSession, lastSeq uint64, validLen int, err error) {
	dir, err := s.dir(id)
	if err != nil {
		return nil, 0, 0, err
	}
	snap, err := readSnapshot(filepath.Join(dir, snapName))
	if err != nil {
		return nil, 0, 0, err
	}

	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, 0, 0, fmt.Errorf("store: reading wal: %w", err)
	}
	if snap == nil && len(data) == 0 {
		// Nothing durable ever existed (crash between directory
		// creation and the create record landing): session absent.
		return nil, 0, 0, fmt.Errorf("store: empty log and no snapshot")
	}

	rs = &RecoveredSession{ID: id, Snap: snap}
	if snap != nil {
		rs.Create = snap.Create
		lastSeq = snap.Seq
	}
	// Decode the command stream, tracking offsets so the file can be
	// truncated at the first bad record — torn tail, checksum
	// mismatch, or a CRC-valid record whose contents violate the
	// stream's invariants (non-monotone seq, undecodable payload).
	sawCreate := false
	for validLen < len(data) {
		frame, n, err := readRecord(data[validLen:])
		if err != nil {
			rs.Truncated = true
			break
		}
		cmd, err := decodeCommand(frame)
		if err != nil {
			rs.Truncated = true
			break
		}
		if frame.Seq <= lastSeq && !(snap != nil && frame.Seq <= snap.Seq) {
			rs.Truncated = true
			break
		}
		if frame.Seq > lastSeq {
			if cmd.Type == RecordCreate {
				if sawCreate || snap != nil {
					// A second create can only be corruption.
					rs.Truncated = true
					break
				}
				rs.Create = *cmd.Create
				sawCreate = true
			} else {
				if snap == nil && !sawCreate {
					// Commands before any create record: the log's
					// head is gone; nothing can be replayed.
					rs.Truncated = true
					break
				}
				rs.Commands = append(rs.Commands, cmd)
			}
			lastSeq = frame.Seq
		}
		// Records with Seq <= snap.Seq are pre-snapshot leftovers from
		// a crash between snapshot publish and log truncation: already
		// reflected in the snapshot, skipped but kept as valid bytes.
		validLen += n
	}
	if snap == nil && !sawCreate {
		return nil, 0, 0, fmt.Errorf("store: no create record survives")
	}
	return rs, lastSeq, validLen, nil
}

// decodeCommand parses a frame's payload per its type.
func decodeCommand(frame Record) (Command, error) {
	cmd := Command{Seq: frame.Seq, Type: frame.Type}
	switch frame.Type {
	case RecordCreate:
		cmd.Create = &CreateCommand{}
		if err := unmarshalStrict(frame.Payload, cmd.Create); err != nil {
			return Command{}, err
		}
		if cmd.Create.Alg == "" || cmd.Create.T < 1 || cmd.Create.G < 0 {
			return Command{}, fmt.Errorf("%w: create record alg=%q t=%d g=%d", ErrCorrupt,
				cmd.Create.Alg, cmd.Create.T, cmd.Create.G)
		}
	case RecordArrivals:
		cmd.Arrivals = &ArrivalsCommand{}
		if err := unmarshalStrict(frame.Payload, cmd.Arrivals); err != nil {
			return Command{}, err
		}
		if len(cmd.Arrivals.Jobs) == 0 {
			return Command{}, fmt.Errorf("%w: empty arrivals record", ErrCorrupt)
		}
	case RecordSteps:
		cmd.Steps = &StepsCommand{}
		if err := unmarshalStrict(frame.Payload, cmd.Steps); err != nil {
			return Command{}, err
		}
		if cmd.Steps.K < 1 {
			return Command{}, fmt.Errorf("%w: steps record k=%d", ErrCorrupt, cmd.Steps.K)
		}
	default:
		return Command{}, fmt.Errorf("%w: record type %d in wal", ErrCorrupt, frame.Type)
	}
	return cmd, nil
}

// unmarshalStrict decodes JSON rejecting unknown fields and trailing
// data, so a payload that passed its checksum but does not match the
// schema (a version skew bug) fails loudly instead of half-applying.
func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: payload: %v", ErrCorrupt, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: trailing payload data", ErrCorrupt)
	}
	return nil
}
