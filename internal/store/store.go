// Package store is calibstore, the durable session persistence layer of
// calibserved: a per-session append-only write-ahead log of the session's
// deterministic command stream (create, accepted arrival batches, step
// commands) plus periodic snapshots that capture engine and
// arrival-buffer state and truncate the log behind them.
//
// Why a command log works here: every serving engine is a deterministic
// state machine — the session's entire state is a pure function of the
// ordered commands it accepted. Logging the commands before applying
// them (classic write-ahead discipline) therefore makes recovery exact:
// replaying the log through a fresh engine reproduces the schedule
// byte for byte, which internal/server's differential crash tests prove
// against an uninterrupted run.
//
// On-disk layout, one directory per session under the store root:
//
//	<root>/<session-id>/wal    append-only record stream
//	<root>/<session-id>/snap   latest snapshot (atomic tmp+rename)
//
// Records are length-prefixed, CRC32C-checksummed, and versioned (see
// record.go). Recovery tolerates a torn tail: the log is truncated at
// the first incomplete or checksum-invalid record and the prefix is
// served; a session that cannot be decoded at all degrades to "session
// absent", never to a panic or a half-restored session.
//
// Durability is tiered by FsyncPolicy: per-record fsync (every
// acknowledged command survives machine crash), batched fsync (bounded
// loss window, much cheaper), or OS-buffered (process-crash safe only).
// DESIGN.md §9 documents the format, the tiers, and the recovery
// invariants.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FsyncPolicy selects when the WAL is flushed to stable storage.
type FsyncPolicy uint8

const (
	// FsyncBatch (the default) syncs every BatchEvery appends and at
	// every snapshot and close: bounded-loss durability at near
	// OS-buffered cost.
	FsyncBatch FsyncPolicy = iota
	// FsyncAlways syncs after every record: an acknowledged command is
	// durable against machine crash before the client sees the reply.
	FsyncAlways
	// FsyncNone never syncs explicitly; the OS flushes at its leisure.
	// Survives process crashes (kill -9) but not machine crashes.
	FsyncNone
)

// ParseFsyncPolicy parses the -fsync flag values "always", "batch", and
// "none".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "batch":
		return FsyncBatch, nil
	case "none":
		return FsyncNone, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always, batch, or none)", s)
}

// String returns the flag spelling of the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNone:
		return "none"
	default:
		return "batch"
	}
}

// defaultBatchEvery is the FsyncBatch sync cadence in records.
const defaultBatchEvery = 64

// Options tune a Store.
type Options struct {
	// Fsync is the WAL flush policy (default FsyncBatch).
	Fsync FsyncPolicy
	// BatchEvery overrides the FsyncBatch cadence in records (default
	// 64); ignored by the other policies.
	BatchEvery int
	// GroupCommit routes FsyncAlways appends through a store-wide
	// committer goroutine that folds every command in flight into one
	// group, journals the group to a single shared file, and issues one
	// fsync — on the journal — for all of them (see committer.go).
	// Per-record durability is unchanged; only the cost is amortized.
	// Ignored by the other policies, which already batch or skip fsyncs.
	GroupCommit bool
}

// Store is the root of the persistence layer: a directory holding one
// subdirectory per session. Store itself is stateless apart from its
// configuration and is safe for concurrent use; each returned Log is
// owned by a single session worker and is not.
type Store struct {
	root       string
	fsync      FsyncPolicy
	batchEvery int
	committer  *Committer
}

// Open validates the root directory and returns a Store. The directory
// is created if missing, and probed for writability so a bad -data-dir
// fails at startup rather than on the first append.
func Open(root string, opts Options) (*Store, error) {
	if root == "" {
		return nil, errors.New("store: empty root directory")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating root: %w", err)
	}
	probe, err := os.CreateTemp(root, ".probe-*")
	if err != nil {
		return nil, fmt.Errorf("store: root %s is not writable: %w", root, err)
	}
	if err := probe.Close(); err != nil {
		return nil, fmt.Errorf("store: closing write probe: %w", err)
	}
	if err := os.Remove(probe.Name()); err != nil {
		return nil, fmt.Errorf("store: cleaning write probe: %w", err)
	}
	be := opts.BatchEvery
	if be <= 0 {
		be = defaultBatchEvery
	}
	st := &Store{root: root, fsync: opts.Fsync, batchEvery: be}
	if opts.GroupCommit && opts.Fsync == FsyncAlways {
		st.committer, err = newCommitter(root)
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

// Close stops the store's group committer, if any, failing whatever was
// still queued. Call after every session has settled and closed its log;
// a Store without group commit needs no Close (it is then a no-op).
func (s *Store) Close() {
	if s.committer != nil {
		s.committer.Stop()
	}
}

// Committer exposes the group committer (nil unless group commit is
// active) so the server can wire metrics to its per-group observer.
func (s *Store) Committer() *Committer { return s.committer }

// newLog attaches the store's configuration — including the shared
// committer — to a freshly opened WAL fd. Every path that constructs a
// Log (create, recovery, import) goes through here so group commit
// cannot be silently bypassed for a subset of sessions.
func (s *Store) newLog(dir string, f *os.File, seq uint64) *Log {
	return &Log{
		dir: dir, sid: filepath.Base(dir), f: f,
		fsync: s.fsync, batchEvery: s.batchEvery, seq: seq, committer: s.committer,
	}
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// Fsync returns the store's flush policy.
func (s *Store) Fsync() FsyncPolicy { return s.fsync }

// dir returns the session's directory path. Session IDs are generated by
// the manager (s-%06d) and never contain separators; reject anything
// else so a hostile ID cannot escape the root.
func (s *Store) dir(id string) (string, error) {
	if id == "" || strings.ContainsAny(id, "/\\") || id == "." || id == ".." {
		return "", fmt.Errorf("store: invalid session id %q", id)
	}
	return filepath.Join(s.root, id), nil
}

// Create makes the session's directory and opens a fresh WAL for it.
// The directory must not already exist: IDs are never reused within a
// store (the manager continues numbering past recovered sessions).
func (s *Store) Create(id string) (*Log, error) {
	dir, err := s.dir(id)
	if err != nil {
		return nil, err
	}
	if err := os.Mkdir(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating session dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating wal: %w", err)
	}
	return s.newLog(dir, f, 0), nil
}

// Remove deletes the session's on-disk state entirely (DELETE and
// idle-TTL eviction). Removing an absent session is not an error.
func (s *Store) Remove(id string) error {
	dir, err := s.dir(id)
	if err != nil {
		return err
	}
	if err := os.RemoveAll(dir); err != nil {
		return fmt.Errorf("store: removing session dir: %w", err)
	}
	return syncDir(s.root)
}

// SessionIDs lists every session directory present under the root,
// sorted, whether or not it is recoverable. The manager uses it to push
// its ID counter past everything on disk.
func (s *Store) SessionIDs() ([]string, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("store: scanning root: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// syncDir fsyncs a directory so a just-created, renamed, or removed
// entry survives a machine crash. Filesystems that cannot sync a
// directory handle are tolerated: the data files themselves are synced
// separately and the entry will reappear or vanish atomically either
// way.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close() //caliblint:allow durablesync -- read-only directory handle; the Sync result below is the durability signal
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return err
	}
	return nil
}
