package store

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
)

// TestGroupCommitConcurrent drives N session workers appending through
// the shared committer at once (the shape the server produces under
// concurrent load) and proves that every acknowledged record is
// recoverable from every log — group batching must never reorder,
// merge, or drop records within a session. Run under -race in CI, this
// also pins the committer's synchronization story.
func TestGroupCommitConcurrent(t *testing.T) {
	const sessions, steps = 8, 40
	s := openTestStore(t, Options{Fsync: FsyncAlways, GroupCommit: true})
	if s.Committer() == nil {
		t.Fatal("group-commit store has no committer")
	}

	logs := make([]*Log, sessions)
	for i := range logs {
		l, err := s.Create(fmt.Sprintf("s-%06d", i+1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.AppendCreate(CreateCommand{Alg: "alg2", T: 5, G: 10}); err != nil {
			t.Fatal(err)
		}
		logs[i] = l
	}

	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i, l := range logs {
		wg.Add(1)
		go func(i int, l *Log) {
			defer wg.Done()
			for k := 1; k <= steps; k++ {
				if _, err := l.AppendSteps(StepsCommand{K: int64(k)}); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, l)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d append: %v", i, err)
		}
	}
	for _, l := range logs {
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}

	if got := s.Committer().Records(); got != sessions*(steps+1) {
		t.Fatalf("committer records = %d, want %d", got, sessions*(steps+1))
	}
	if g := s.Committer().Groups(); g == 0 || g > s.Committer().Records() {
		t.Fatalf("committer groups = %d (records %d)", g, s.Committer().Records())
	}
	s.Close()

	rec := recoverOne(t, s)
	if len(rec.Failed) != 0 || len(rec.Sessions) != sessions {
		t.Fatalf("recovered %d sessions, %d failed: %+v", len(rec.Sessions), len(rec.Failed), rec.Failed)
	}
	for _, rs := range rec.Sessions {
		if rs.Truncated {
			t.Fatalf("session %s truncated after clean close", rs.ID)
		}
		if len(rs.Commands) != steps {
			t.Fatalf("session %s recovered %d commands, want %d", rs.ID, len(rs.Commands), steps)
		}
		// Within a session the committed order is the append order.
		for k, cmd := range rs.Commands {
			if cmd.Steps == nil || cmd.Steps.K != int64(k+1) {
				t.Fatalf("session %s command %d = %+v, want K=%d", rs.ID, k, cmd, k+1)
			}
		}
		rs.Log.Close()
	}
}

// TestGroupCommitSingleWaiter proves the degenerate case: one in-flight
// append forms a group of one and keeps exact per-record durability.
func TestGroupCommitSingleWaiter(t *testing.T) {
	s := openTestStore(t, Options{Fsync: FsyncAlways, GroupCommit: true})
	l := writeSession(t, s, "s-000001")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.Committer().Records(); got != 3 {
		t.Fatalf("committer records = %d, want 3", got)
	}
	s.Close()

	rs := recoverOne(t, s).Sessions[0]
	defer rs.Log.Close()
	if len(rs.Commands) != 2 {
		t.Fatalf("recovered %d commands, want 2", len(rs.Commands))
	}
}

// TestGroupSyncErrorFansOut pins the failure semantics: when the
// journal write or fsync fails, every waiter whose record rode that
// group observes the error — none is told its command is durable — the
// logs involved are poisoned against further appends, and the journal
// is marked broken so later groups fail fast.
func TestGroupSyncErrorFansOut(t *testing.T) {
	s := openTestStore(t, Options{Fsync: FsyncAlways, GroupCommit: true})
	l, err := s.Create("s-000001")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := l.AppendCreate(CreateCommand{Alg: "alg2", T: 5, G: 10}); err != nil {
		t.Fatal(err)
	}

	// Force the journal append to fail: close its fd out from under the
	// committer (the moral equivalent of the device going away). The
	// committer is idle — no requests in flight — so driving commitGroup
	// directly from here is the same single-threaded access its own
	// goroutine would perform.
	s.Committer().j.f.Close()

	// Several waiters deterministically share the one failed group (the
	// channel path can't guarantee co-batching).
	batch := make([]*commitReq, 3)
	for i := range batch {
		l.seq++
		batch[i] = &commitReq{
			log:  l,
			buf:  appendRecord(nil, RecordSteps, l.seq, []byte(`{"k":1}`)),
			done: make(chan struct{}),
		}
	}
	s.Committer().commitGroup(batch)

	for i, req := range batch {
		select {
		case <-req.done:
		default:
			t.Fatalf("waiter %d never released", i)
		}
		if req.err == nil || !strings.Contains(req.err.Error(), "group journal failed") {
			t.Fatalf("waiter %d error = %v, want the journal failure", i, req.err)
		}
	}
	if l.Poisoned() == nil {
		t.Fatal("log not poisoned after failed group")
	}
	if s.Committer().Groups() != 1 { // only the create's group counted
		t.Fatalf("failed group counted: groups = %d", s.Committer().Groups())
	}
	if _, err := l.AppendSteps(StepsCommand{K: 1}); err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("append after failed group = %v, want poisoned error", err)
	}

	// A fresh log hitting the broken journal fails fast without touching
	// the file, and its waiter still observes the breakage.
	l2, err := s.Create("s-000002")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.AppendCreate(CreateCommand{Alg: "alg2", T: 5, G: 10}); err == nil || !strings.Contains(err.Error(), "group journal failed") {
		t.Fatalf("append on broken journal = %v, want the journal failure", err)
	}
}

// TestJournalRestoresLostWalTail is the machine-crash durability test
// for group commit: session WAL writes are acknowledged without their
// own fsync, so after a power loss the WAL file may be missing records
// the client was told are durable. The journal — fsynced per group —
// must restore them. Simulated by truncating the WAL behind the
// store's back and recovering twice (double-crash idempotence).
func TestJournalRestoresLostWalTail(t *testing.T) {
	const steps = 5
	s := openTestStore(t, Options{Fsync: FsyncAlways, GroupCommit: true})
	defer s.Close()
	l, err := s.Create("s-000001")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendCreate(CreateCommand{Alg: "alg2", T: 5, G: 10}); err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= steps; k++ {
		if _, err := l.AppendSteps(StepsCommand{K: int64(k)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Abort()

	// Power loss: the WAL's unsynced pages never reached the platter.
	walPath := l.Dir() + "/" + walName
	if err := os.Truncate(walPath, 0); err != nil {
		t.Fatal(err)
	}

	for pass := 1; pass <= 2; pass++ {
		rec := recoverOne(t, s)
		if len(rec.Failed) != 0 || len(rec.Sessions) != 1 {
			t.Fatalf("pass %d: recovered %d sessions, %d failed: %+v",
				pass, len(rec.Sessions), len(rec.Failed), rec.Failed)
		}
		rs := rec.Sessions[0]
		if len(rs.Commands) != steps {
			t.Fatalf("pass %d: recovered %d commands, want %d", pass, len(rs.Commands), steps)
		}
		for k, cmd := range rs.Commands {
			if cmd.Steps == nil || cmd.Steps.K != int64(k+1) {
				t.Fatalf("pass %d: command %d = %+v, want K=%d", pass, k, cmd, k+1)
			}
		}
		rs.Log.Abort() // keep the on-disk state as the merge left it
	}

	// The merge made the journal's copies redundant and dropped them.
	if fi, err := os.Stat(s.Root() + "/" + journalName); err != nil || fi.Size() != 0 {
		t.Fatalf("journal not truncated after merge: %v, size %d", err, fi.Size())
	}
}

// TestJournalTornTailIgnored: a crash mid-group leaves a torn entry at
// the journal's end; none of that group's records were acknowledged, so
// recovery must serve exactly the acknowledged prefix and discard the
// tail without failing the session.
func TestJournalTornTailIgnored(t *testing.T) {
	s := openTestStore(t, Options{Fsync: FsyncAlways, GroupCommit: true})
	defer s.Close()
	l, err := s.Create("s-000001")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendCreate(CreateCommand{Alg: "alg2", T: 5, G: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendSteps(StepsCommand{K: 7}); err != nil {
		t.Fatal(err)
	}
	l.Abort()

	// Lose the WAL (power loss) and tear the journal's tail (the crash
	// interrupted the next group's write).
	if err := os.Truncate(l.Dir()+"/"+walName, 0); err != nil {
		t.Fatal(err)
	}
	jf, err := os.OpenFile(s.Root()+"/"+journalName, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	entry := appendGroupEntry(nil, 99, "s-000001", appendRecord(nil, RecordSteps, 9, []byte(`{"k":9}`)))
	if _, err := jf.Write(entry[:len(entry)/2]); err != nil {
		t.Fatal(err)
	}
	jf.Close()

	rs := recoverOne(t, s).Sessions[0]
	defer rs.Log.Close()
	if len(rs.Commands) != 1 || rs.Commands[0].Steps == nil || rs.Commands[0].Steps.K != 7 {
		t.Fatalf("recovered commands = %+v, want the single acknowledged step", rs.Commands)
	}
}

// TestCommitterStopFailsWaiters proves Store.Close never strands a
// worker: appends racing the stop either commit or fail cleanly with
// ErrCommitterStopped, and appends after the stop always fail.
func TestCommitterStopFailsWaiters(t *testing.T) {
	s := openTestStore(t, Options{Fsync: FsyncAlways, GroupCommit: true})
	l, err := s.Create("s-000001")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendCreate(CreateCommand{Alg: "alg2", T: 5, G: 10}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := l.AppendSteps(StepsCommand{K: 1}); !errors.Is(err, ErrCommitterStopped) {
		t.Fatalf("append after store close = %v, want ErrCommitterStopped", err)
	}
	// The record the stopped committer rejected must not surface in
	// recovery: nothing was acknowledged, nothing may reappear.
	l.Abort()
	rs := recoverOne(t, s).Sessions[0]
	defer rs.Log.Close()
	if len(rs.Commands) != 0 {
		t.Fatalf("unacknowledged command recovered: %+v", rs.Commands)
	}
}

// TestTornMiddlePoisonsLog is the regression test for the
// acknowledged-then-lost bug: a failed (short) write used to leave the
// log accepting appends behind a corrupt frame, so recovery's
// torn-tail truncation silently discarded every later acknowledged
// record. Now the failure poisons the log: the torn append and every
// subsequent one fail loudly, so nothing acknowledged is ever lost.
func TestTornMiddlePoisonsLog(t *testing.T) {
	for _, opts := range []Options{
		{Fsync: FsyncNone},
		{Fsync: FsyncAlways},
		{Fsync: FsyncAlways, GroupCommit: true},
	} {
		name := opts.Fsync.String()
		if opts.GroupCommit {
			name += "/group"
		}
		t.Run(name, func(t *testing.T) {
			s := openTestStore(t, opts)
			defer s.Close()
			l, err := s.Create("s-000001")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := l.AppendCreate(CreateCommand{Alg: "alg2", T: 5, G: 10}); err != nil {
				t.Fatal(err)
			}
			if _, err := l.AppendSteps(StepsCommand{K: 1}); err != nil {
				t.Fatal(err)
			}

			// One short write: half the frame reaches the file, as when
			// the disk fills or the kernel interrupts the write.
			torn := true
			l.writef = func(buf []byte) (int, error) {
				if torn {
					torn = false
					n, _ := l.f.Write(buf[:len(buf)/2])
					return n, nil
				}
				return l.f.Write(buf)
			}
			if _, err := l.AppendSteps(StepsCommand{K: 2}); err == nil {
				t.Fatal("short write acknowledged")
			}
			// The next append must fail too — were it accepted, recovery
			// would truncate it away behind the torn frame.
			if _, err := l.AppendSteps(StepsCommand{K: 3}); err == nil || !strings.Contains(err.Error(), "poisoned") {
				t.Fatalf("append after torn write = %v, want poisoned error", err)
			}
			if err := l.WriteSnapshot(&Snapshot{Create: CreateCommand{Alg: "alg2", T: 5, G: 10}}); err == nil {
				t.Fatal("snapshot accepted on poisoned log")
			}
			l.Abort()

			// Recovery serves exactly the acknowledged prefix.
			rs := recoverOne(t, s).Sessions[0]
			defer rs.Log.Close()
			if !rs.Truncated {
				t.Fatal("torn middle not reported as truncation")
			}
			if len(rs.Commands) != 1 || rs.Commands[0].Steps == nil || rs.Commands[0].Steps.K != 1 {
				t.Fatalf("recovered commands = %+v, want the single acknowledged step", rs.Commands)
			}
		})
	}
}

// TestAppendRecordReusesScratch pins the zero-alloc framing contract:
// encoding into a warm scratch buffer must not allocate, and the framed
// bytes must be identical to a fresh encode.
func TestAppendRecordReusesScratch(t *testing.T) {
	payload := []byte(`{"k":42}`)
	fresh := appendRecord(nil, RecordSteps, 7, payload)
	scratch := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		scratch = appendRecord(scratch[:0], RecordSteps, 7, payload)
	})
	if allocs != 0 {
		t.Fatalf("appendRecord into warm scratch allocates %.1f/op", allocs)
	}
	if string(scratch) != string(fresh) {
		t.Fatal("scratch encode differs from fresh encode")
	}
	rec, n, err := readRecord(scratch)
	if err != nil || n != len(scratch) || rec.Seq != 7 || string(rec.Payload) != string(payload) {
		t.Fatalf("round trip: rec=%+v n=%d err=%v", rec, n, err)
	}
}
