package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// Migration export/import: the store-level half of live session handoff
// (internal/cluster, DESIGN.md §13). Because sessions are deterministic
// command streams, moving one between nodes is "ship the snapshot plus
// the WAL tail and replay it": ExportSession reads a session's durable
// state without disturbing it, and ImportSession materializes shipped
// state as a fresh session directory on the receiving store.

// ExportSession reads one session's durable state — latest snapshot plus
// the command tail logged after it — without modifying anything on disk.
// The session's Log may still be open elsewhere: WAL appends are plain
// write syscalls, so a read after the owning worker has drained observes
// every accepted record regardless of fsync policy. The returned
// RecoveredSession carries no Log handle. A torn or corrupt tail is an
// error here (unlike recovery): a live, cleanly drained session must
// decode end to end, and shipping a silently shortened history would
// materialize the divergence on another node.
func (s *Store) ExportSession(id string) (*RecoveredSession, error) {
	rs, _, _, err := s.scanSession(id)
	if err != nil {
		return nil, err
	}
	if rs.Truncated {
		return nil, fmt.Errorf("store: session %s has a torn or corrupt wal tail; refusing to export a shortened history", id)
	}
	return rs, nil
}

// Exists reports whether the session has a directory under the root,
// recoverable or not.
func (s *Store) Exists(id string) (bool, error) {
	dir, err := s.dir(id)
	if err != nil {
		return false, err
	}
	if _, err := os.Stat(dir); err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("store: probing session dir: %w", err)
	}
	return true, nil
}

// ImportSession materializes shipped session state as this store's own
// durable copy: a fresh directory holding the snapshot (renumbered to
// sequence 1) and the command tail appended after it (sequence 2
// onward), or — for engines without snapshot support — a create record
// followed by the full command stream. Any existing directory for the
// id is replaced: migration rollback re-imports a session over its own
// settled remains, and the shipped state is by construction at least as
// new. The returned Log is synced (per policy) and ready for the
// session's persister to continue appending.
func (s *Store) ImportSession(id string, create CreateCommand, snap *Snapshot, cmds []Command) (*Log, error) {
	dir, err := s.dir(id)
	if err != nil {
		return nil, err
	}
	if err := os.RemoveAll(dir); err != nil {
		return nil, fmt.Errorf("store: clearing session dir for import: %w", err)
	}
	if err := os.Mkdir(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating session dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating wal: %w", err)
	}
	l := s.newLog(dir, f, 0)
	if err := l.importState(create, snap, cmds); err != nil {
		if cErr := l.Close(); cErr != nil {
			err = fmt.Errorf("%w (and closing the partial wal: %v)", err, cErr)
		}
		if rmErr := os.RemoveAll(dir); rmErr != nil {
			err = fmt.Errorf("%w (and removing the partial dir: %v)", err, rmErr)
		}
		return nil, err
	}
	if s.fsync != FsyncNone {
		if err := syncDir(s.root); err != nil {
			return nil, fmt.Errorf("store: syncing root after import: %w", err)
		}
	}
	return l, nil
}

// importState writes the shipped state into a fresh log. Sequence
// numbers are renumbered from 1: the shipped tail's original numbering
// belongs to the source's log and only relative order matters.
func (l *Log) importState(create CreateCommand, snap *Snapshot, cmds []Command) error {
	if snap != nil {
		snap.Create = create
		// The snapshot claims sequence 1 (a record that never hits the
		// WAL, exactly like a cadence snapshot claims the seq of its
		// last covered record); tail commands land at 2 onward, which
		// recovery replays because their seq exceeds the snapshot's.
		l.seq = 1
		if err := l.WriteSnapshot(snap); err != nil {
			return err
		}
	} else {
		if _, err := l.AppendCreate(create); err != nil {
			return err
		}
	}
	for i, cmd := range cmds {
		var err error
		switch cmd.Type {
		case RecordArrivals:
			_, err = l.AppendArrivals(*cmd.Arrivals)
		case RecordSteps:
			_, err = l.AppendSteps(*cmd.Steps)
		default:
			err = fmt.Errorf("store: command %d of imported tail has type %d; only arrivals and steps belong there", i, cmd.Type)
		}
		if err != nil {
			return err
		}
	}
	if l.fsync != FsyncNone {
		if err := l.Sync(); err != nil {
			return err
		}
	}
	return nil
}
