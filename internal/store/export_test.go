package store

import (
	"os"
	"path/filepath"
	"testing"
)

// exportFixture builds a session with a few logged commands and returns
// the store. With snapshotted true, a snapshot is written mid-stream so
// the export carries snapshot + tail rather than the full log.
func exportFixture(t *testing.T, snapshotted bool) (*Store, *Log) {
	t.Helper()
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	l, err := st.Create("s-000001")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := l.AppendCreate(CreateCommand{Alg: "alg2", T: 5, G: 7}); err != nil {
		t.Fatalf("AppendCreate: %v", err)
	}
	if _, err := l.AppendArrivals(ArrivalsCommand{Jobs: []JobRec{{ID: 0, Release: 0, Weight: 2}, {ID: 1, Release: 3, Weight: 1}}}); err != nil {
		t.Fatalf("AppendArrivals: %v", err)
	}
	if snapshotted {
		snap := &Snapshot{
			Create: CreateCommand{Alg: "alg2", T: 5, G: 7},
			Engine: []byte(`{"fake":"state"}`),
			Jobs:   []JobRec{{ID: 0, Release: 0, Weight: 2}, {ID: 1, Release: 3, Weight: 1}},
		}
		if err := l.WriteSnapshot(snap); err != nil {
			t.Fatalf("WriteSnapshot: %v", err)
		}
	}
	if _, err := l.AppendSteps(StepsCommand{K: 4}); err != nil {
		t.Fatalf("AppendSteps: %v", err)
	}
	return st, l
}

func TestExportSessionFullLog(t *testing.T) {
	st, l := exportFixture(t, false)
	rs, err := st.ExportSession("s-000001")
	if err != nil {
		t.Fatalf("ExportSession: %v", err)
	}
	if rs.Log != nil {
		t.Fatal("export must not hand out a log handle")
	}
	if rs.Snap != nil {
		t.Fatalf("unexpected snapshot: %+v", rs.Snap)
	}
	if rs.Create.Alg != "alg2" || rs.Create.T != 5 || rs.Create.G != 7 {
		t.Fatalf("create = %+v", rs.Create)
	}
	if len(rs.Commands) != 2 || rs.Commands[0].Type != RecordArrivals || rs.Commands[1].Type != RecordSteps {
		t.Fatalf("commands = %+v", rs.Commands)
	}
	// The export is a pure read: the source log keeps appending.
	if _, err := l.AppendSteps(StepsCommand{K: 1}); err != nil {
		t.Fatalf("append after export: %v", err)
	}
}

func TestExportSessionSnapshotAndTail(t *testing.T) {
	st, _ := exportFixture(t, true)
	rs, err := st.ExportSession("s-000001")
	if err != nil {
		t.Fatalf("ExportSession: %v", err)
	}
	if rs.Snap == nil {
		t.Fatal("want snapshot")
	}
	if len(rs.Commands) != 1 || rs.Commands[0].Type != RecordSteps || rs.Commands[0].Steps.K != 4 {
		t.Fatalf("tail = %+v", rs.Commands)
	}
}

func TestExportSessionRefusesTornTail(t *testing.T) {
	st, l := exportFixture(t, false)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	walPath := filepath.Join(st.Root(), "s-000001", "wal")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatalf("reading wal: %v", err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatalf("tearing wal: %v", err)
	}
	if _, err := st.ExportSession("s-000001"); err == nil {
		t.Fatal("export of a torn wal must fail")
	}
}

func TestImportSessionRoundTrip(t *testing.T) {
	for _, snapshotted := range []bool{false, true} {
		src, _ := exportFixture(t, snapshotted)
		rs, err := src.ExportSession("s-000001")
		if err != nil {
			t.Fatalf("ExportSession: %v", err)
		}
		dst, err := Open(t.TempDir(), Options{})
		if err != nil {
			t.Fatalf("Open dst: %v", err)
		}
		l, err := dst.ImportSession("s-000001", rs.Create, rs.Snap, rs.Commands)
		if err != nil {
			t.Fatalf("ImportSession(snapshotted=%v): %v", snapshotted, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		rec, err := dst.Recover()
		if err != nil {
			t.Fatalf("Recover: %v", err)
		}
		if len(rec.Failed) != 0 || len(rec.Sessions) != 1 {
			t.Fatalf("recovery = %d sessions, %d failed", len(rec.Sessions), len(rec.Failed))
		}
		got := rec.Sessions[0]
		if got.Create != rs.Create {
			t.Fatalf("create = %+v, want %+v", got.Create, rs.Create)
		}
		if (got.Snap != nil) != snapshotted {
			t.Fatalf("snapshotted=%v but recovered snap = %+v", snapshotted, got.Snap)
		}
		if len(got.Commands) != len(rs.Commands) {
			t.Fatalf("replay tail has %d commands, want %d", len(got.Commands), len(rs.Commands))
		}
		for i := range got.Commands {
			if got.Commands[i].Type != rs.Commands[i].Type {
				t.Fatalf("command %d type = %d, want %d", i, got.Commands[i].Type, rs.Commands[i].Type)
			}
		}
		if err := got.Log.Close(); err != nil {
			t.Fatalf("closing recovered log: %v", err)
		}
	}
}

func TestImportSessionReplacesExistingDir(t *testing.T) {
	src, _ := exportFixture(t, false)
	rs, err := src.ExportSession("s-000001")
	if err != nil {
		t.Fatalf("ExportSession: %v", err)
	}
	// Rollback re-imports over the settled remains of the same session.
	l, err := src.ImportSession("s-000001", rs.Create, rs.Snap, rs.Commands)
	if err != nil {
		t.Fatalf("ImportSession over existing dir: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rs2, err := src.ExportSession("s-000001")
	if err != nil {
		t.Fatalf("re-export: %v", err)
	}
	if len(rs2.Commands) != len(rs.Commands) {
		t.Fatalf("re-exported %d commands, want %d", len(rs2.Commands), len(rs.Commands))
	}
}

func TestImportSessionRejectsCreateInTail(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	cmds := []Command{{Type: RecordCreate, Create: &CreateCommand{Alg: "alg2", T: 1}}}
	if _, err := st.ImportSession("s-000002", CreateCommand{Alg: "alg2", T: 1}, nil, cmds); err == nil {
		t.Fatal("create record inside the tail must be rejected")
	}
	if ok, err := st.Exists("s-000002"); err != nil || ok {
		t.Fatalf("failed import left a directory behind (ok=%v err=%v)", ok, err)
	}
}

func TestExists(t *testing.T) {
	st, _ := exportFixture(t, false)
	if ok, err := st.Exists("s-000001"); err != nil || !ok {
		t.Fatalf("Exists(s-000001) = %v, %v", ok, err)
	}
	if ok, err := st.Exists("s-999999"); err != nil || ok {
		t.Fatalf("Exists(s-999999) = %v, %v", ok, err)
	}
	if _, err := st.Exists("../escape"); err == nil {
		t.Fatal("hostile id must be rejected")
	}
}
