package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

const (
	walName  = "wal"
	snapName = "snap"
)

// Log is one session's write-ahead log. It is owned by the session's
// worker goroutine (appends) or, after the worker has drained, by the
// manager (settle/close); it is never used concurrently and holds no
// locks, keeping the scheduling hot path lock-free.
type Log struct {
	dir        string
	f          *os.File
	fsync      FsyncPolicy
	batchEvery int
	unsynced   int
	seq        uint64
	closed     bool
	onSync     func(time.Duration)
}

// SetSyncObserver installs a callback timing every fsync the log issues
// on the append path (FsyncAlways per-record syncs and FsyncBatch
// flushes). nil (the default) removes the timing entirely — the
// observer-less path does not read the clock. The server uses this to
// attribute `fsync-wait` spans separately from `wal-append`.
func (l *Log) SetSyncObserver(fn func(time.Duration)) { l.onSync = fn }

// sync runs one fsync, timing it when an observer is installed.
func (l *Log) sync() error {
	if l.onSync == nil {
		return l.f.Sync()
	}
	start := time.Now()
	err := l.f.Sync()
	l.onSync(time.Since(start))
	return err
}

// Seq returns the sequence number of the last record appended (or
// reflected in the snapshot the log was recovered behind); 0 before the
// first append.
func (l *Log) Seq() uint64 { return l.seq }

// Dir returns the session directory the log writes into.
func (l *Log) Dir() string { return l.dir }

// append frames and writes one record, honoring the fsync policy. It
// returns the bytes written for metrics accounting.
func (l *Log) append(typ RecordType, payload []byte) (int, error) {
	if l.closed {
		return 0, fmt.Errorf("store: append to closed log %s", l.dir)
	}
	l.seq++
	buf := appendRecord(nil, typ, l.seq, payload)
	if _, err := l.f.Write(buf); err != nil {
		return 0, fmt.Errorf("store: appending record %d: %w", l.seq, err)
	}
	switch l.fsync {
	case FsyncAlways:
		if err := l.sync(); err != nil {
			return 0, fmt.Errorf("store: syncing record %d: %w", l.seq, err)
		}
	case FsyncBatch:
		if l.unsynced++; l.unsynced >= l.batchEvery {
			if err := l.Sync(); err != nil {
				return 0, err
			}
		}
	}
	return len(buf), nil
}

// appendJSON marshals a command payload and appends it.
func (l *Log) appendJSON(typ RecordType, v any) (int, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return 0, fmt.Errorf("store: encoding record payload: %w", err)
	}
	return l.append(typ, payload)
}

// AppendCreate logs the session-create command; it must be the first
// record of a fresh log.
func (l *Log) AppendCreate(c CreateCommand) (int, error) {
	if l.seq != 0 {
		return 0, fmt.Errorf("store: create record after %d records", l.seq)
	}
	return l.appendJSON(RecordCreate, c)
}

// AppendArrivals logs one accepted arrivals batch.
func (l *Log) AppendArrivals(c ArrivalsCommand) (int, error) {
	return l.appendJSON(RecordArrivals, c)
}

// AppendSteps logs one step command.
func (l *Log) AppendSteps(c StepsCommand) (int, error) {
	return l.appendJSON(RecordSteps, c)
}

// Sync flushes buffered appends to stable storage regardless of policy.
func (l *Log) Sync() error {
	if l.closed {
		return nil
	}
	if err := l.sync(); err != nil {
		return fmt.Errorf("store: syncing wal: %w", err)
	}
	l.unsynced = 0
	return nil
}

// WriteSnapshot atomically persists a snapshot reflecting every record
// appended so far, then truncates the WAL behind it. The snapshot file
// is written to a temp name, synced, and renamed over the previous
// snapshot, so a crash at any point leaves either the old or the new
// snapshot intact — and a crash between the rename and the truncate is
// benign because recovery skips WAL records with Seq <= the snapshot's.
func (l *Log) WriteSnapshot(snap *Snapshot) error {
	if l.closed {
		return fmt.Errorf("store: snapshot on closed log %s", l.dir)
	}
	// The WAL must be durable up to the state the snapshot captures
	// before the old log prefix is dropped.
	if l.fsync != FsyncNone {
		if err := l.Sync(); err != nil {
			return err
		}
	}
	snap.Version = snapshotVersion
	snap.Seq = l.seq
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	buf := appendRecord(nil, RecordSnapshot, l.seq, payload)

	tmp := filepath.Join(l.dir, snapName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating snapshot temp: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close() //caliblint:allow durablesync -- the write error is surfaced and the temp file removed; nothing durable rests on this close
		os.Remove(tmp)
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if l.fsync != FsyncNone {
		if err := f.Sync(); err != nil {
			f.Close() //caliblint:allow durablesync -- the sync error is surfaced and the temp file removed; nothing durable rests on this close
			os.Remove(tmp)
			return fmt.Errorf("store: syncing snapshot: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: closing snapshot temp: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publishing snapshot: %w", err)
	}
	if l.fsync != FsyncNone {
		if err := syncDir(l.dir); err != nil {
			return fmt.Errorf("store: syncing session dir: %w", err)
		}
	}
	// The snapshot now covers every logged record; drop the log prefix.
	// The fd is O_APPEND, so the next append lands at the new (zero)
	// end of file.
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("store: truncating wal behind snapshot: %w", err)
	}
	l.unsynced = 0
	return nil
}

// Close flushes (per policy) and closes the log. Further appends fail.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	var syncErr error
	if l.fsync != FsyncNone {
		syncErr = l.f.Sync()
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("store: closing wal: %w", err)
	}
	if syncErr != nil {
		return fmt.Errorf("store: syncing wal on close: %w", syncErr)
	}
	return nil
}

// Abort closes the log without syncing or snapshotting, simulating a
// hard process kill: whatever the OS has is whatever recovery will see.
// Crash tests use it; production paths use Close or WriteSnapshot.
func (l *Log) Abort() {
	if l.closed {
		return
	}
	l.closed = true
	l.f.Close() //caliblint:allow durablesync -- simulated kill -9: recovery must cope with whatever the OS kept, so the close result is deliberately meaningless
}
