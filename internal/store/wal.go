package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

const (
	walName  = "wal"
	snapName = "snap"
)

// Log is one session's write-ahead log. It is owned by the session's
// worker goroutine (appends) or, after the worker has drained, by the
// manager (settle/close); it is never used concurrently and holds no
// locks, keeping the scheduling hot path lock-free.
type Log struct {
	dir        string
	sid        string
	f          *os.File
	fsync      FsyncPolicy
	batchEvery int
	unsynced   int
	seq        uint64
	closed     bool
	onSync     func(time.Duration)

	// poisoned latches the first write/sync failure. A torn or failed
	// write leaves a corrupt frame mid-log; recovery truncates at the
	// first bad frame, so any record appended *after* the failure would
	// be acknowledged and then silently lost. Once poisoned, every
	// append and snapshot fails until the session is rebuilt.
	poisoned error

	// committer, when set with FsyncAlways, routes appends through the
	// store-wide group commit instead of a per-record fsync.
	committer *Committer

	// frame is the record-framing scratch buffer, reused across appends
	// so the steady-state append path allocates nothing. Safe because
	// appends are serialized by the owning worker, and the committer
	// only reads the frame while that worker is blocked waiting on it.
	frame []byte

	// writef and syncf, when non-nil, replace f.Write / f.Sync — test
	// hooks for injecting short writes and sync failures.
	writef func([]byte) (int, error)
	syncf  func() error
}

// poison latches err as the log's permanent failure state. Called on the
// owning worker (local append path) or on the committer goroutine while
// the worker is blocked in commit, so access is ordered either way.
func (l *Log) poison(err error) {
	if l.poisoned == nil {
		l.poisoned = err
	}
}

// Poisoned reports the latched write failure, if any.
func (l *Log) Poisoned() error { return l.poisoned }

// fileWrite routes through the short-write test hook when installed.
func (l *Log) fileWrite(buf []byte) (int, error) {
	if l.writef != nil {
		return l.writef(buf)
	}
	return l.f.Write(buf)
}

// fileSync routes through the sync-failure test hook when installed.
func (l *Log) fileSync() error {
	if l.syncf != nil {
		return l.syncf()
	}
	return l.f.Sync()
}

// writeFrame writes one framed record, poisoning the log on any failure
// — including a short write, after which the tail of the frame is
// missing and every later append would be truncated away by recovery.
func (l *Log) writeFrame(buf []byte) error {
	if l.poisoned != nil {
		return fmt.Errorf("store: log %s poisoned by earlier write failure: %w", l.dir, l.poisoned)
	}
	n, err := l.fileWrite(buf)
	if err == nil && n < len(buf) {
		err = fmt.Errorf("store: short write (%d of %d bytes)", n, len(buf))
	}
	if err != nil {
		err = fmt.Errorf("store: appending record %d: %w", l.seq, err)
		l.poison(err)
		return err
	}
	return nil
}

// SetSyncObserver installs a callback timing every fsync the log issues
// on the append path (FsyncAlways per-record syncs and FsyncBatch
// flushes). nil (the default) removes the timing entirely — the
// observer-less path does not read the clock. The server uses this to
// attribute `fsync-wait` spans separately from `wal-append`.
func (l *Log) SetSyncObserver(fn func(time.Duration)) { l.onSync = fn }

// sync runs one fsync, timing it when an observer is installed.
func (l *Log) sync() error {
	if l.onSync == nil {
		return l.fileSync()
	}
	start := time.Now()
	err := l.fileSync()
	l.onSync(time.Since(start))
	return err
}

// Seq returns the sequence number of the last record appended (or
// reflected in the snapshot the log was recovered behind); 0 before the
// first append.
func (l *Log) Seq() uint64 { return l.seq }

// Dir returns the session directory the log writes into.
func (l *Log) Dir() string { return l.dir }

// append frames and writes one record, honoring the fsync policy. It
// returns the bytes written for metrics accounting. The frame is built
// in the log's reusable scratch buffer, so a steady-state append
// allocates nothing beyond the caller's payload.
func (l *Log) append(typ RecordType, payload []byte) (int, error) {
	if l.closed {
		return 0, fmt.Errorf("store: append to closed log %s", l.dir)
	}
	if l.poisoned != nil {
		return 0, fmt.Errorf("store: log %s poisoned by earlier write failure: %w", l.dir, l.poisoned)
	}
	l.seq++
	l.frame = appendRecord(l.frame[:0], typ, l.seq, payload)

	if l.committer != nil && l.fsync == FsyncAlways {
		// Group-commit path: the committer performs both the write and
		// the shared fsync; this worker blocks until the group is
		// durable. With an observer installed the whole commit wait is
		// attributed as fsync wait — the write is a few microseconds of
		// it, the shared fsync the rest.
		if l.onSync == nil {
			return l.committer.commit(l, l.frame)
		}
		start := time.Now()
		n, err := l.committer.commit(l, l.frame)
		l.onSync(time.Since(start))
		return n, err
	}

	if err := l.writeFrame(l.frame); err != nil {
		return 0, err
	}
	switch l.fsync {
	case FsyncAlways:
		if err := l.sync(); err != nil {
			err = fmt.Errorf("store: syncing record %d: %w", l.seq, err)
			l.poison(err)
			return 0, err
		}
	case FsyncBatch:
		if l.unsynced++; l.unsynced >= l.batchEvery {
			if err := l.Sync(); err != nil {
				l.poison(err)
				return 0, err
			}
		}
	}
	return len(l.frame), nil
}

// appendJSON marshals a command payload and appends it.
func (l *Log) appendJSON(typ RecordType, v any) (int, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return 0, fmt.Errorf("store: encoding record payload: %w", err)
	}
	return l.append(typ, payload)
}

// AppendCreate logs the session-create command; it must be the first
// record of a fresh log.
func (l *Log) AppendCreate(c CreateCommand) (int, error) {
	if l.seq != 0 {
		return 0, fmt.Errorf("store: create record after %d records", l.seq)
	}
	return l.appendJSON(RecordCreate, c)
}

// AppendArrivals logs one accepted arrivals batch.
func (l *Log) AppendArrivals(c ArrivalsCommand) (int, error) {
	return l.appendJSON(RecordArrivals, c)
}

// AppendSteps logs one step command.
func (l *Log) AppendSteps(c StepsCommand) (int, error) {
	return l.appendJSON(RecordSteps, c)
}

// Sync flushes buffered appends to stable storage regardless of policy.
func (l *Log) Sync() error {
	if l.closed {
		return nil
	}
	if err := l.sync(); err != nil {
		return fmt.Errorf("store: syncing wal: %w", err)
	}
	l.unsynced = 0
	return nil
}

// WriteSnapshot atomically persists a snapshot reflecting every record
// appended so far, then truncates the WAL behind it. The snapshot file
// is written to a temp name, synced, and renamed over the previous
// snapshot, so a crash at any point leaves either the old or the new
// snapshot intact — and a crash between the rename and the truncate is
// benign because recovery skips WAL records with Seq <= the snapshot's.
func (l *Log) WriteSnapshot(snap *Snapshot) error {
	if l.closed {
		return fmt.Errorf("store: snapshot on closed log %s", l.dir)
	}
	// A poisoned log's tail is torn: a snapshot would claim a Seq whose
	// record never became durable, so refuse and let the session degrade.
	if l.poisoned != nil {
		return fmt.Errorf("store: snapshot on poisoned log %s: %w", l.dir, l.poisoned)
	}
	// The WAL must be durable up to the state the snapshot captures
	// before the old log prefix is dropped.
	if l.fsync != FsyncNone {
		if err := l.Sync(); err != nil {
			return err
		}
	}
	snap.Version = snapshotVersion
	snap.Seq = l.seq
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	buf := appendRecord(nil, RecordSnapshot, l.seq, payload)

	tmp := filepath.Join(l.dir, snapName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating snapshot temp: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close() //caliblint:allow durablesync -- the write error is surfaced and the temp file removed; nothing durable rests on this close
		os.Remove(tmp)
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if l.fsync != FsyncNone {
		if err := f.Sync(); err != nil {
			f.Close() //caliblint:allow durablesync -- the sync error is surfaced and the temp file removed; nothing durable rests on this close
			os.Remove(tmp)
			return fmt.Errorf("store: syncing snapshot: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: closing snapshot temp: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publishing snapshot: %w", err)
	}
	if l.fsync != FsyncNone {
		if err := syncDir(l.dir); err != nil {
			return fmt.Errorf("store: syncing session dir: %w", err)
		}
	}
	// The snapshot now covers every logged record; drop the log prefix.
	// The fd is O_APPEND, so the next append lands at the new (zero)
	// end of file.
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("store: truncating wal behind snapshot: %w", err)
	}
	l.unsynced = 0
	return nil
}

// Close flushes (per policy) and closes the log. Further appends fail.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	var syncErr error
	if l.fsync != FsyncNone {
		syncErr = l.f.Sync()
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("store: closing wal: %w", err)
	}
	if syncErr != nil {
		return fmt.Errorf("store: syncing wal on close: %w", syncErr)
	}
	return nil
}

// Abort closes the log without syncing or snapshotting, simulating a
// hard process kill: whatever the OS has is whatever recovery will see.
// Crash tests use it; production paths use Close or WriteSnapshot.
func (l *Log) Abort() {
	if l.closed {
		return
	}
	l.closed = true
	l.f.Close() //caliblint:allow durablesync -- simulated kill -9: recovery must cope with whatever the OS kept, so the close result is deliberately meaningless
}
