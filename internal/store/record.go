package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// WAL record framing. Every record is:
//
//	offset 0  uint32 LE  length of body
//	offset 4  uint32 LE  CRC32C (Castagnoli) of body
//	offset 8  body:
//	          [0]    uint8      format version (recordVersion)
//	          [1]    uint8      record type
//	          [2:10] uint64 LE  sequence number, strictly increasing
//	          [10:]  payload    type-specific JSON
//
// The CRC covers the whole body, so a flipped bit anywhere — version,
// type, seq, or payload — is detected. Scanning stops at the first
// record that is incomplete (torn tail from a crash mid-write) or
// checksum-invalid; the valid prefix is what recovery serves, and the
// file is truncated there so the bad bytes never resurface.

// RecordType tags what command a record carries.
type RecordType uint8

const (
	// RecordCreate is the session's first record: engine spec, T, G.
	RecordCreate RecordType = 1
	// RecordArrivals is one accepted arrivals batch.
	RecordArrivals RecordType = 2
	// RecordSteps is one step command (k steps simulated).
	RecordSteps RecordType = 3
	// RecordSnapshot frames the snapshot file's single record; it never
	// appears in the WAL itself.
	RecordSnapshot RecordType = 4
	// RecordGroupEntry frames one group-commit journal entry. It appears
	// only in the store-level commit.log, never in a session WAL. Its
	// payload is [uint16 LE sid length][sid][complete session record
	// frame] — the inner frame is byte-identical to what the session WAL
	// received, so recovery can splice it straight in.
	RecordGroupEntry RecordType = 5
)

// recordVersion is the current framing version; readers reject anything
// else (a future version would be migrated here).
const recordVersion = 1

const (
	recordHeaderLen = 8  // length + crc
	bodyPrefixLen   = 10 // version + type + seq
	// maxRecordLen bounds a single record so a corrupt length prefix
	// cannot demand an absurd allocation. The largest legitimate record
	// is an arrivals batch bounded by the server's buffer cap, far
	// below this.
	maxRecordLen = 16 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks a structurally present but invalid record: checksum
// mismatch, unknown version or type, or an absurd length.
var ErrCorrupt = errors.New("store: corrupt record")

// ErrTornTail marks an incomplete record at the end of a log — the
// expected shape after a crash mid-append.
var ErrTornTail = errors.New("store: torn record at end of log")

// Record is one decoded WAL frame.
type Record struct {
	Type    RecordType
	Seq     uint64
	Payload []byte
}

// appendRecord encodes one record onto buf and returns the extended
// slice. The body is framed directly into buf with the CRC patched in
// afterward, so encoding into a reused scratch buffer with sufficient
// capacity allocates nothing.
func appendRecord(buf []byte, typ RecordType, seq uint64, payload []byte) []byte {
	base := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(bodyPrefixLen+len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, 0) // CRC placeholder
	buf = append(buf, recordVersion, byte(typ))
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = append(buf, payload...)
	body := buf[base+recordHeaderLen:]
	binary.LittleEndian.PutUint32(buf[base+4:], crc32.Checksum(body, crcTable))
	return buf
}

// appendGroupEntry frames one journal entry (a session id plus that
// session's already-framed record) onto buf. Like appendRecord, it
// encodes in place and patches the CRC afterward, so the committer's
// reused journal buffer allocates nothing in steady state.
func appendGroupEntry(buf []byte, seq uint64, sid string, frame []byte) []byte {
	base := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(bodyPrefixLen+2+len(sid)+len(frame)))
	buf = binary.LittleEndian.AppendUint32(buf, 0) // CRC placeholder
	buf = append(buf, recordVersion, byte(RecordGroupEntry))
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(sid)))
	buf = append(buf, sid...)
	buf = append(buf, frame...)
	body := buf[base+recordHeaderLen:]
	binary.LittleEndian.PutUint32(buf[base+4:], crc32.Checksum(body, crcTable))
	return buf
}

// decodeGroupEntry splits a RecordGroupEntry payload into the session
// id and the inner session record frame.
func decodeGroupEntry(payload []byte) (sid string, frame []byte, err error) {
	if len(payload) < 2 {
		return "", nil, fmt.Errorf("%w: group entry too short", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint16(payload))
	if len(payload) < 2+n {
		return "", nil, fmt.Errorf("%w: group entry sid truncated", ErrCorrupt)
	}
	return string(payload[2 : 2+n]), payload[2+n:], nil
}

// readRecord decodes the record starting at data[0]. It returns the
// record and the number of bytes consumed, or ErrTornTail / ErrCorrupt.
func readRecord(data []byte) (Record, int, error) {
	if len(data) < recordHeaderLen {
		return Record{}, 0, ErrTornTail
	}
	bodyLen := binary.LittleEndian.Uint32(data)
	sum := binary.LittleEndian.Uint32(data[4:])
	if bodyLen < bodyPrefixLen || bodyLen > maxRecordLen {
		return Record{}, 0, fmt.Errorf("%w: body length %d", ErrCorrupt, bodyLen)
	}
	if uint32(len(data)-recordHeaderLen) < bodyLen {
		return Record{}, 0, ErrTornTail
	}
	body := data[recordHeaderLen : recordHeaderLen+int(bodyLen)]
	if crc32.Checksum(body, crcTable) != sum {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if body[0] != recordVersion {
		return Record{}, 0, fmt.Errorf("%w: version %d", ErrCorrupt, body[0])
	}
	typ := RecordType(body[1])
	if typ < RecordCreate || typ > RecordGroupEntry {
		return Record{}, 0, fmt.Errorf("%w: type %d", ErrCorrupt, typ)
	}
	return Record{
		Type:    typ,
		Seq:     binary.LittleEndian.Uint64(body[2:]),
		Payload: body[bodyPrefixLen:],
	}, recordHeaderLen + int(bodyLen), nil
}

// ScanRecords decodes records from the start of data until the first
// bad one. It returns the decoded prefix, the byte length of that valid
// prefix, and the reason scanning stopped: nil for a clean end,
// ErrTornTail or ErrCorrupt (wrapped) otherwise. It never panics on any
// input (FuzzReadRecord pins this), and a checksum-invalid record is
// never returned as valid.
func ScanRecords(data []byte) (recs []Record, validLen int, stop error) {
	off := 0
	for off < len(data) {
		rec, n, err := readRecord(data[off:])
		if err != nil {
			return recs, off, err
		}
		// Payloads alias data; copy so callers outlive the mapped file.
		rec.Payload = append([]byte(nil), rec.Payload...)
		recs = append(recs, rec)
		off += n
	}
	return recs, off, nil
}
