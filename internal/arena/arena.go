// Package arena runs the competitive-ratio bake-off: every registered
// engine against the exact DP optimum over a declarative sweep of
// workload families, sizes, seeds, and calibration costs G.
//
// For each generated instance and each G the arena solves the exact
// offline DP (through an internal/solve pool, so repeated runs share
// the result cache and DP executions run in parallel), runs every
// applicable engine, and — when the instance is small enough — the
// time-indexed LP relaxation as an independent lower-bound cross-check.
// Per-instance ratios are exact rationals (engine cost over the best
// known cost for that instance and cost mode); per-(engine, family,
// mode) aggregates are computed in math/big.Rat so the committed
// leaderboard never depends on float accumulation order.
//
// Invariants checked on every run (violations are collected in the
// report, not silently dropped):
//
//   - LP lower bound <= DP optimum on every cross-checked instance;
//   - the DP's total cost is minimal among all computed schedules under
//     the p1 objective (so every p1 ratio is >= 1 by construction);
//   - engines with a proven competitive ratio stay within it on every
//     instance (p1 only — the paper's proofs are for total weighted
//     flow time).
package arena

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sort"

	"calibsched/internal/core"
	"calibsched/internal/lp"
	"calibsched/internal/solve"
	"calibsched/internal/workload"
)

// SweepSchema versions the sweep-spec JSON format read by ReadSweep.
const SweepSchema = "calibarena/v1"

// LeaderboardSchema versions the leaderboard JSON written by WriteJSON.
const LeaderboardSchema = "calibarena-leaderboard/v1"

// OptEngine is the reserved leaderboard name for the exact DP's own
// schedule. The arena supplies it; entered engines may not use it.
const OptEngine = "opt"

// Engine is one scheduling policy entered in the bake-off. RatioNum and
// RatioDen carry the proven competitive ratio as an exact rational
// (0/0 when none is proved), mirroring calibsched.NamedAlgorithm.
type Engine struct {
	Name               string
	RatioNum, RatioDen int64
	Run                func(in *core.Instance, g int64) (*core.Schedule, error)
	Applicable         func(in *core.Instance) bool
}

func (e Engine) hasProvenRatio() bool { return e.RatioDen != 0 }

// provenRatio renders the proven bound ("3", "12", "num/den", or "").
func (e Engine) provenRatio() string {
	if !e.hasProvenRatio() {
		return ""
	}
	if e.RatioNum%e.RatioDen == 0 {
		return fmt.Sprintf("%d", e.RatioNum/e.RatioDen)
	}
	return fmt.Sprintf("%d/%d", e.RatioNum, e.RatioDen)
}

// Sweep is the declarative bake-off spec: the cross product of
// Families x Sizes x Seeds defines the instances; each is solved and
// raced at every G and scored under every cost mode.
type Sweep struct {
	Schema   string          `json:"schema"`
	Name     string          `json:"name"`
	P        int             `json:"p"`
	T        int64           `json:"T"`
	Families []string        `json:"families"`
	Sizes    []int           `json:"sizes"`
	Seeds    []uint64        `json:"seeds"`
	Gs       []int64         `json:"gs"`
	Modes    []core.CostMode `json:"modes"`
	// LPMaxJobs and LPMaxG bound which (instance, G) pairs get the LP
	// lower-bound cross-check — the simplex is by far the slowest part
	// of a run. LPMaxJobs 0 disables the check entirely.
	LPMaxJobs int   `json:"lp_max_jobs"`
	LPMaxG    int64 `json:"lp_max_g"`
}

// PinnedSweep is the committed sweep behind LEADERBOARD.json: small
// enough that `make arena` regenerates it in seconds, wide enough to
// cover every family and both ends of the calibration-cost range.
func PinnedSweep() *Sweep {
	return &Sweep{
		Schema:    SweepSchema,
		Name:      "pinned-v1",
		P:         1,
		T:         6,
		Families:  workload.FamilyNames(),
		Sizes:     []int{8, 12},
		Seeds:     []uint64{1, 2},
		Gs:        []int64{8, 32},
		Modes:     core.CostModes(),
		LPMaxJobs: 12,
		LPMaxG:    8,
	}
}

// ReadSweep decodes and validates a sweep spec.
func ReadSweep(r io.Reader) (*Sweep, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Sweep
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("arena: decode sweep: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate rejects malformed sweeps with a message naming the field.
func (s *Sweep) Validate() error {
	if s.Schema != SweepSchema {
		return fmt.Errorf("arena: sweep schema %q, want %q", s.Schema, SweepSchema)
	}
	if s.Name == "" {
		return errors.New("arena: sweep needs a name")
	}
	if s.P != 1 {
		// Ratios are measured against the exact DP, which is defined for
		// one machine only.
		return fmt.Errorf("arena: sweep p=%d; ratios need the single-machine DP (p=1)", s.P)
	}
	if s.T < 1 {
		return fmt.Errorf("arena: sweep T=%d, want >= 1", s.T)
	}
	if len(s.Families) == 0 {
		return errors.New("arena: sweep lists no families")
	}
	seen := map[string]bool{}
	for _, f := range s.Families {
		if _, ok := workload.FamilyByName(f); !ok {
			return fmt.Errorf("arena: unknown family %q", f)
		}
		if seen[f] {
			return fmt.Errorf("arena: family %q listed twice", f)
		}
		seen[f] = true
	}
	if len(s.Sizes) == 0 {
		return errors.New("arena: sweep lists no sizes")
	}
	for _, n := range s.Sizes {
		if n < 1 {
			return fmt.Errorf("arena: size %d, want >= 1", n)
		}
	}
	if len(s.Seeds) == 0 {
		return errors.New("arena: sweep lists no seeds")
	}
	if len(s.Gs) == 0 {
		return errors.New("arena: sweep lists no G values")
	}
	for _, g := range s.Gs {
		if g < 1 {
			return fmt.Errorf("arena: G=%d, want >= 1", g)
		}
	}
	if len(s.Modes) == 0 {
		return errors.New("arena: sweep lists no cost modes")
	}
	for _, m := range s.Modes {
		if !m.Valid() {
			return fmt.Errorf("arena: unknown cost mode %q", m)
		}
	}
	if s.LPMaxJobs < 0 || s.LPMaxG < 0 {
		return errors.New("arena: lp_max_jobs and lp_max_g must be >= 0")
	}
	return nil
}

// solveCount is the number of exact DP solves the sweep needs.
func (s *Sweep) solveCount() int {
	return len(s.Families) * len(s.Sizes) * len(s.Seeds) * len(s.Gs)
}

// Row is one leaderboard entry: an engine's ratio aggregates over every
// instance of one family under one cost mode. Ratio fields are decimal
// strings with exactly four fractional digits (big.Rat.FloatString, so
// the committed leaderboard is byte-deterministic); MaxRatioExact keeps
// the worst ratio as an exact reduced rational. ProvenRatio is set only
// on p1 rows of engines with a proved bound, and WithinProven reports
// whether every observed p1 cost stayed within it.
type Row struct {
	Engine        string `json:"engine"`
	Family        string `json:"family"`
	Mode          string `json:"mode"`
	Instances     int    `json:"instances"`
	MaxRatioExact string `json:"max_ratio_exact"`
	MaxRatio      string `json:"max_ratio"`
	MeanRatio     string `json:"mean_ratio"`
	P95Ratio      string `json:"p95_ratio"`
	ProvenRatio   string `json:"proven_ratio,omitempty"`
	WithinProven  bool   `json:"within_proven"`
}

// LPSummary reports the LP cross-check coverage and the largest
// observed DP/LP gap (a measure of the relaxation's tightness).
type LPSummary struct {
	Instances int    `json:"instances"`
	MaxGap    string `json:"max_gap,omitempty"`
}

// Report is a finished bake-off: the sweep it ran, the LP cross-check
// summary, every invariant violation (empty on a healthy run), and the
// leaderboard rows in (family, mode, engine) sweep order.
type Report struct {
	Schema     string    `json:"schema"`
	Sweep      Sweep     `json:"sweep"`
	LP         LPSummary `json:"lp"`
	Violations []string  `json:"violations"`
	Rows       []Row     `json:"rows"`
}

// Options configures Run.
type Options struct {
	// Pool runs the exact DP solves. When nil, Run creates a private
	// pool sized to the sweep and closes it on return. A shared pool
	// lets repeated runs reuse cached DP results; its queue may be
	// smaller than the sweep — Run drains completed solves on
	// ErrQueueFull instead of failing.
	Pool *solve.Pool
}

// oneRun is one (instance, G) cell of the sweep with everything
// computed for it.
type oneRun struct {
	family string
	n      int
	seed   uint64
	g      int64
	in     *core.Instance
	opt    int64          // DP optimum under p1
	dp     *core.Schedule // schedule realizing opt
	// scheds[i] is engines[i]'s schedule, nil when inapplicable.
	scheds []*core.Schedule
	// ref[mode] is the best known cost: min over the DP schedule and
	// every applicable engine schedule.
	ref map[core.CostMode]int64
}

func (r *oneRun) label() string {
	return fmt.Sprintf("%s n=%d seed=%d G=%d", r.family, r.n, r.seed, r.g)
}

// Run executes the sweep: generates every instance, solves the exact DP
// through the pool, races every applicable engine, LP-cross-checks the
// small instances, and aggregates exact ratios into leaderboard rows.
// Engine names must be unique and must not claim the reserved "opt"
// name. Run is deterministic: the same sweep and engines produce an
// identical Report regardless of pool parallelism.
func Run(sweep *Sweep, engines []Engine, opts Options) (*Report, error) {
	if err := sweep.Validate(); err != nil {
		return nil, err
	}
	names := map[string]bool{OptEngine: true}
	for _, e := range engines {
		if e.Name == "" || e.Run == nil || e.Applicable == nil {
			return nil, fmt.Errorf("arena: engine %q incomplete", e.Name)
		}
		if names[e.Name] {
			return nil, fmt.Errorf("arena: engine name %q duplicated or reserved", e.Name)
		}
		names[e.Name] = true
	}
	pool := opts.Pool
	if pool == nil {
		pool = solve.New(solve.Options{QueueDepth: sweep.solveCount() + 1})
		defer pool.Close()
	}

	runs, err := buildRuns(sweep)
	if err != nil {
		return nil, err
	}
	if err := solveAll(pool, runs); err != nil {
		return nil, err
	}

	rep := &Report{
		Schema:     LeaderboardSchema,
		Sweep:      *sweep,
		Violations: []string{},
	}
	for _, r := range runs {
		r.scheds = make([]*core.Schedule, len(engines))
		for i, e := range engines {
			if !e.Applicable(r.in) {
				continue
			}
			s, err := e.Run(r.in, r.g)
			if err != nil {
				return nil, fmt.Errorf("arena: engine %s on %s: %w", e.Name, r.label(), err)
			}
			r.scheds[i] = s
		}
		score(r, sweep.Modes, rep)
	}
	if err := lpCrossCheck(sweep, runs, rep); err != nil {
		return nil, err
	}
	rep.Rows = aggregate(sweep, engines, runs, rep)
	return rep, nil
}

// buildRuns generates every (instance, G) cell in deterministic sweep
// order: family, then size, then seed, then G.
func buildRuns(sweep *Sweep) ([]*oneRun, error) {
	var runs []*oneRun
	for _, famName := range sweep.Families {
		fam, _ := workload.FamilyByName(famName)
		for _, n := range sweep.Sizes {
			for _, seed := range sweep.Seeds {
				in, err := fam.Build(n, sweep.P, sweep.T, seed)
				if err != nil {
					return nil, fmt.Errorf("arena: build %s n=%d seed=%d: %w", famName, n, seed, err)
				}
				for _, g := range sweep.Gs {
					runs = append(runs, &oneRun{family: famName, n: n, seed: seed, g: g, in: in})
				}
			}
		}
	}
	return runs, nil
}

// solveAll submits every run's exact DP to the pool and collects the
// optima. A full queue is drained by waiting on the oldest outstanding
// handle, so any pool size makes progress.
func solveAll(pool *solve.Pool, runs []*oneRun) error {
	ctx := context.Background()
	ids := make([]string, len(runs))
	waited := 0
	for i, r := range runs {
		req := solve.Request{Instance: r.in, Kind: solve.KindTotalCost, G: r.g}
		for {
			id, err := pool.Submit(req)
			if err == nil {
				ids[i] = id
				break
			}
			if errors.Is(err, solve.ErrQueueFull) && waited < i {
				if _, werr := pool.Wait(ctx, ids[waited]); werr != nil {
					return fmt.Errorf("arena: wait %s: %w", runs[waited].label(), werr)
				}
				waited++
				continue
			}
			return fmt.Errorf("arena: submit %s: %w", r.label(), err)
		}
	}
	for i, r := range runs {
		st, err := pool.Wait(ctx, ids[i])
		if err != nil {
			return fmt.Errorf("arena: wait %s: %w", r.label(), err)
		}
		if st.State != solve.StateDone {
			return fmt.Errorf("arena: solve %s failed: %s", r.label(), st.Err)
		}
		r.opt = st.Result.Total
		r.dp = st.Result.Schedule
	}
	return nil
}

// score fills the run's per-mode reference costs (minimum over every
// computed schedule) and records the two per-instance invariants: the
// DP must be minimal under p1, and proven-ratio engines must stay
// within their bound (checked later in aggregate, which knows the
// engine metadata).
func score(r *oneRun, modes []core.CostMode, rep *Report) {
	r.ref = make(map[core.CostMode]int64, len(modes))
	for _, m := range modes {
		best := core.ModeCost(r.in, r.dp, r.g, m)
		for _, s := range r.scheds {
			if s == nil {
				continue
			}
			if c := core.ModeCost(r.in, s, r.g, m); c < best {
				best = c
			}
		}
		r.ref[m] = best
		if m == core.ModeP1 {
			dpCost := core.ModeCost(r.in, r.dp, r.g, m)
			if dpCost != r.opt {
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"%s: DP schedule p1 cost %d != reported optimum %d", r.label(), dpCost, r.opt))
			}
			if best < r.opt {
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"%s: engine p1 cost %d beats DP optimum %d", r.label(), best, r.opt))
			}
		}
	}
}

// lpCrossCheck solves the LP relaxation on the small (instance, G)
// cells and verifies it never exceeds the DP optimum. The float
// tolerance absorbs simplex round-off only — a genuine crossing is a
// violation.
func lpCrossCheck(sweep *Sweep, runs []*oneRun, rep *Report) error {
	if sweep.LPMaxJobs == 0 {
		return nil
	}
	var maxGap float64
	for _, r := range runs {
		if r.in.N() > sweep.LPMaxJobs || r.g > sweep.LPMaxG {
			continue
		}
		rel, err := lp.NewCalibrationLP(r.in, r.g, lp.DefaultHorizon(r.in, r.g))
		if err != nil {
			return fmt.Errorf("arena: lp %s: %w", r.label(), err)
		}
		lb, err := rel.LowerBound()
		if err != nil {
			return fmt.Errorf("arena: lp %s: %w", r.label(), err)
		}
		rep.LP.Instances++
		opt := float64(r.opt)
		if lb > opt*(1+1e-9)+1e-6 {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"%s: LP lower bound %.6f exceeds DP optimum %d", r.label(), lb, r.opt))
			continue
		}
		if lb > 0 {
			if gap := opt / lb; gap > maxGap {
				maxGap = gap
			}
		}
	}
	if rep.LP.Instances > 0 {
		rep.LP.MaxGap = fmt.Sprintf("%.4f", maxGap)
	}
	return nil
}

// aggregate folds per-instance exact ratios into one row per
// (family, mode, engine) in deterministic sweep order, and checks the
// proven-ratio bound on every p1 cost.
func aggregate(sweep *Sweep, engines []Engine, runs []*oneRun, rep *Report) []Row {
	// The DP itself races as the reserved "opt" engine: ratio 1 under
	// p1 by definition, and an interesting >= 1 under p2/pinf (the p1
	// optimum need not minimize the other norms).
	all := append(append([]Engine{}, engines...), Engine{Name: OptEngine, RatioNum: 1, RatioDen: 1})
	var rows []Row
	for _, fam := range sweep.Families {
		for _, m := range sweep.Modes {
			for ei, e := range all {
				var ratios []*big.Rat
				within := true
				for _, r := range runs {
					if r.family != fam {
						continue
					}
					var s *core.Schedule
					if ei == len(engines) {
						s = r.dp
					} else {
						s = r.scheds[ei]
					}
					if s == nil {
						continue
					}
					c := core.ModeCost(r.in, s, r.g, m)
					ratios = append(ratios, big.NewRat(c, r.ref[m]))
					if m == core.ModeP1 && e.hasProvenRatio() {
						if big.NewRat(c, r.opt).Cmp(big.NewRat(e.RatioNum, e.RatioDen)) > 0 {
							within = false
							rep.Violations = append(rep.Violations, fmt.Sprintf(
								"%s: %s p1 cost %d exceeds proven %sx of optimum %d",
								r.label(), e.Name, c, e.provenRatio(), r.opt))
						}
					}
				}
				if len(ratios) == 0 {
					continue
				}
				row := Row{
					Engine:       e.Name,
					Family:       fam,
					Mode:         string(m),
					Instances:    len(ratios),
					WithinProven: within,
				}
				if m == core.ModeP1 {
					row.ProvenRatio = e.provenRatio()
				}
				fillAggregates(&row, ratios)
				rows = append(rows, row)
			}
		}
	}
	return rows
}

// fillAggregates computes max, mean, and p95 of the exact ratios and
// renders them as fixed four-decimal strings (plus the max as an exact
// reduced rational).
func fillAggregates(row *Row, ratios []*big.Rat) {
	sorted := make([]*big.Rat, len(ratios))
	copy(sorted, ratios)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Cmp(sorted[j]) < 0 })
	max := sorted[len(sorted)-1]
	sum := new(big.Rat)
	for _, r := range ratios {
		sum.Add(sum, r)
	}
	mean := new(big.Rat).Quo(sum, big.NewRat(int64(len(ratios)), 1))
	p95 := sorted[(95*len(sorted)+99)/100-1]
	row.MaxRatioExact = max.RatString()
	row.MaxRatio = max.FloatString(4)
	row.MeanRatio = mean.FloatString(4)
	row.P95Ratio = p95.FloatString(4)
}
