package arena_test

import (
	"fmt"
	"testing"

	"calibsched"
	"calibsched/internal/core"
	"calibsched/internal/lp"
	"calibsched/internal/workload"
)

// TestSandwich is the differential property test behind the arena's
// invariants, run directly (no pool, no report): on seeded random
// instances, the LP relaxation's lower bound never exceeds the exact DP
// optimum, and the DP optimum never exceeds any applicable engine's
// cost. Either crossing would mean a solver bug — the LP claiming too
// much, the DP missing a schedule, or an engine returning an invalid
// schedule that Validate missed. Runs under -race in CI (make race).
func TestSandwich(t *testing.T) {
	engines := calibsched.Algorithms()
	for seed := uint64(1); seed <= 5; seed++ {
		for _, weights := range []workload.WeightKind{workload.WeightUnit, workload.WeightZipf} {
			spec := workload.Spec{
				N: 8, P: 1, T: 5, Seed: seed,
				Arrival: workload.ArrivalPoisson, Lambda: 0.4,
				Weights: weights, ZipfS: 1.5, WMax: 6,
			}
			in, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range []int64{4, 16} {
				g := g
				name := fmt.Sprintf("seed=%d/%s/G=%d", seed, weights, g)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					opt, _, sched, err := calibsched.OptimalTotalCost(in, g)
					if err != nil {
						t.Fatal(err)
					}
					if got := core.TotalCost(in, sched, g); got != opt {
						t.Fatalf("DP schedule costs %d, reported optimum %d", got, opt)
					}
					rel, err := lp.NewCalibrationLP(in, g, lp.DefaultHorizon(in, g))
					if err != nil {
						t.Fatal(err)
					}
					lb, err := rel.LowerBound()
					if err != nil {
						t.Fatal(err)
					}
					if lb > float64(opt)*(1+1e-9)+1e-6 {
						t.Errorf("LP lower bound %.6f exceeds DP optimum %d", lb, opt)
					}
					for _, a := range engines {
						if a.Name == "opt" || !a.Applicable(in) {
							continue
						}
						s, err := a.Run(in, g)
						if err != nil {
							t.Fatalf("%s: %v", a.Name, err)
						}
						if err := core.Validate(in, s); err != nil {
							t.Fatalf("%s: invalid schedule: %v", a.Name, err)
						}
						cost := core.TotalCost(in, s, g)
						if cost < opt {
							t.Errorf("%s cost %d beats the exact optimum %d", a.Name, cost, opt)
						}
						if !a.WithinProvenRatio(cost, opt) {
							t.Errorf("%s cost %d exceeds proven %sx of optimum %d", a.Name, cost, a.ProvenRatio(), opt)
						}
					}
				})
			}
		}
	}
}
