package arena_test

import (
	"bytes"
	"math/big"
	"testing"

	"calibsched"
	"calibsched/internal/arena"
)

// smallSweep is a fast sweep exercising every mode, one statistical and
// one adversarial family, and the LP cross-check.
func smallSweep() *arena.Sweep {
	s := arena.PinnedSweep()
	s.Name = "test-small"
	s.Families = []string{"poisson-unit", "weight-spike"}
	s.Sizes = []int{6}
	s.Seeds = []uint64{1}
	s.Gs = []int64{8}
	s.LPMaxJobs = 6
	s.LPMaxG = 8
	return s
}

func TestPinnedSweepValid(t *testing.T) {
	if err := arena.PinnedSweep().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSweepValidateRejects(t *testing.T) {
	mutate := func(f func(*arena.Sweep)) *arena.Sweep {
		s := arena.PinnedSweep()
		f(s)
		return s
	}
	for _, tc := range []struct {
		name  string
		sweep *arena.Sweep
	}{
		{"bad schema", mutate(func(s *arena.Sweep) { s.Schema = "v0" })},
		{"no name", mutate(func(s *arena.Sweep) { s.Name = "" })},
		{"multi machine", mutate(func(s *arena.Sweep) { s.P = 2 })},
		{"unknown family", mutate(func(s *arena.Sweep) { s.Families = []string{"nope"} })},
		{"duplicate family", mutate(func(s *arena.Sweep) { s.Families = []string{"poisson-unit", "poisson-unit"} })},
		{"zero size", mutate(func(s *arena.Sweep) { s.Sizes = []int{0} })},
		{"no seeds", mutate(func(s *arena.Sweep) { s.Seeds = nil })},
		{"zero G", mutate(func(s *arena.Sweep) { s.Gs = []int64{0} })},
		{"bad mode", mutate(func(s *arena.Sweep) { s.Modes = []calibsched.CostMode{"p3"} })},
	} {
		if err := tc.sweep.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestReadSweep(t *testing.T) {
	good := `{
  "schema": "calibarena/v1", "name": "test-small", "p": 1, "T": 6,
  "families": ["poisson-unit", "weight-spike"],
  "sizes": [6], "seeds": [1], "gs": [8],
  "modes": ["p1", "p2", "pinf"], "lp_max_jobs": 6, "lp_max_g": 8
}`
	s, err := arena.ReadSweep(bytes.NewReader([]byte(good)))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "test-small" || len(s.Families) != 2 || s.LPMaxG != 8 {
		t.Errorf("decoded sweep %+v", s)
	}
	if _, err := arena.ReadSweep(bytes.NewReader([]byte(`{"schema":"calibarena/v1","bogus":1}`))); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := arena.ReadSweep(bytes.NewReader([]byte(`{"schema":"calibarena/v1"}`))); err == nil {
		t.Error("empty sweep accepted")
	}
}

func mustRun(t *testing.T, s *arena.Sweep) *arena.Report {
	t.Helper()
	rep, err := arena.Run(s, calibsched.ArenaEngines(), arena.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestRunDeterministic: two independent runs (fresh pools, so parallel
// DP execution order differs) must render byte-identical JSON and
// markdown — the property the committed LEADERBOARD files depend on.
func TestRunDeterministic(t *testing.T) {
	render := func() (string, string) {
		rep := mustRun(t, smallSweep())
		var j, m bytes.Buffer
		if err := rep.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteMarkdown(&m); err != nil {
			t.Fatal(err)
		}
		return j.String(), m.String()
	}
	j1, m1 := render()
	j2, m2 := render()
	if j1 != j2 {
		t.Errorf("JSON differs across runs:\n%s\nvs\n%s", j1, j2)
	}
	if m1 != m2 {
		t.Errorf("markdown differs across runs:\n%s\nvs\n%s", m1, m2)
	}
}

// TestRunInvariants checks the arena's core guarantees on a real run:
// no violations, every ratio >= 1, the DP's own p1 row is exactly 1,
// and the LP cross-check actually covered instances.
func TestRunInvariants(t *testing.T) {
	rep := mustRun(t, smallSweep())
	if len(rep.Violations) != 0 {
		t.Fatalf("violations on a healthy run: %v", rep.Violations)
	}
	if rep.LP.Instances == 0 {
		t.Error("LP cross-check covered no instances despite lp_max_jobs=6")
	}
	one := big.NewRat(1, 1)
	optP1Rows := 0
	for _, row := range rep.Rows {
		r, ok := new(big.Rat).SetString(row.MaxRatioExact)
		if !ok {
			t.Fatalf("row %+v: unparseable exact ratio", row)
		}
		if r.Cmp(one) < 0 {
			t.Errorf("row %s/%s/%s: max ratio %s < 1", row.Engine, row.Family, row.Mode, row.MaxRatioExact)
		}
		if !row.WithinProven {
			t.Errorf("row %s/%s/%s: proven bound violated", row.Engine, row.Family, row.Mode)
		}
		if row.Engine == arena.OptEngine && row.Mode == "p1" {
			optP1Rows++
			if row.MaxRatioExact != "1" || row.MaxRatio != "1.0000" {
				t.Errorf("opt p1 row has ratio %s (%s), want exactly 1", row.MaxRatio, row.MaxRatioExact)
			}
			if row.ProvenRatio != "1" {
				t.Errorf("opt p1 row proven ratio %q, want 1", row.ProvenRatio)
			}
		}
	}
	if optP1Rows != len(rep.Sweep.Families) {
		t.Errorf("%d opt p1 rows, want one per family (%d)", optP1Rows, len(rep.Sweep.Families))
	}
	// alg1/alg3 are unweighted-only: no rows for the weighted family.
	for _, row := range rep.Rows {
		if (row.Engine == "alg1" || row.Engine == "alg3") && row.Family == "weight-spike" {
			t.Errorf("unweighted-only engine %s scored on weighted family", row.Engine)
		}
	}
}

func TestRunRejectsBadEngines(t *testing.T) {
	s := smallSweep()
	eng := calibsched.ArenaEngines()
	dup := append(append([]arena.Engine{}, eng...), eng[0])
	if _, err := arena.Run(s, dup, arena.Options{}); err == nil {
		t.Error("duplicate engine name accepted")
	}
	reserved := append(append([]arena.Engine{}, eng...), arena.Engine{
		Name: arena.OptEngine, Run: eng[0].Run, Applicable: eng[0].Applicable,
	})
	if _, err := arena.Run(s, reserved, arena.Options{}); err == nil {
		t.Error("reserved engine name accepted")
	}
}
