package online

import (
	"calibsched/internal/core"
	"calibsched/internal/queue"
	"calibsched/internal/simul"
)

// singlePolicy captures how Algorithms 1 and 2 differ inside the shared
// single-machine engine.
type singlePolicy struct {
	alg              string // rule-identifier prefix for decision events
	order            func(a, b core.Job) bool
	countTrigger     bool // Alg1: |Q| >= G/T (as T*|Q| >= G)
	weightTrigger    bool // Alg2: sum w >= G/T (as T*sum >= G)
	queueFullTrigger bool // Alg2: |Q| >= T
	immediate        bool // Alg1: calibrate on arrival after a light interval
}

// Alg1 runs Algorithm 1 of the paper (online unweighted calibration on one
// machine, 3-competitive). The instance must have P = 1 and unit weights.
func Alg1(in *core.Instance, g int64, opts ...Option) (*Result, error) {
	o := buildOptions(opts)
	if err := checkInput(in, g, true, true); err != nil {
		return nil, err
	}
	pol := singlePolicy{
		alg:          "alg1",
		order:        queue.ByRelease,
		countTrigger: !o.FlowTriggerOnly,
		immediate:    !o.NoImmediateCalibrations && !o.FlowTriggerOnly,
	}
	return runSingle(in, g, pol, o), nil
}

// Alg2 runs Algorithm 2 of the paper (online weighted calibration on one
// machine, 12-competitive). The instance must have P = 1; weights are
// arbitrary positive integers.
func Alg2(in *core.Instance, g int64, opts ...Option) (*Result, error) {
	o := buildOptions(opts)
	if err := checkInput(in, g, true, false); err != nil {
		return nil, err
	}
	order := queue.ByWeightDesc
	if o.LightestFirst {
		order = queue.ByWeightAsc
	}
	pol := singlePolicy{
		alg:              "alg2",
		order:            order,
		weightTrigger:    !o.FlowTriggerOnly,
		queueFullTrigger: !o.FlowTriggerOnly,
	}
	return runSingle(in, g, pol, o), nil
}

// runSingle is the shared engine for Algorithms 1 and 2. Each iteration of
// the loop either consumes an arrival, calibrates, schedules at least one
// job, or advances the clock to the next event (arrival or analytically
// solved flow-trigger time), so the fast path runs in O((n + calibrations)
// * queue cost) independent of the time horizon; with naive set the clock
// instead advances one step at a time, matching the paper's pseudocode
// line by line.
func runSingle(in *core.Instance, g int64, pol singlePolicy, o Options) *Result {
	naive := o.Naive
	q := queue.NewJobQueue(pol.order)
	arr := simul.NewArrivals(in)
	sched := core.NewSchedule(in.N())
	res := &Result{Schedule: sched}
	T := in.T
	tracer := newDecisionTracer(o.Sink, pol.alg, g)

	var calStart, calEnd int64 = -1, -1
	hadInterval := false
	var intervalFlow int64 // flow of jobs scheduled in the most recent interval

	calibrate := func(t int64, tr Trigger) {
		sched.Calibrate(0, t)
		res.Triggers = append(res.Triggers, tr)
		res.FlowAtCalibration = append(res.FlowAtCalibration, q.FlowIfScheduledFrom(t))
		if tracer != nil {
			tracer.emit(t, 0, tr, q, len(sched.Calendar))
		}
		calStart, calEnd = t, t+T
		hadInterval = true
		intervalFlow = 0
	}

	t := int64(0)
	for arr.Remaining() > 0 || !q.Empty() {
		// With an empty queue nothing can happen before the next arrival.
		if q.Empty() {
			nt, ok := arr.NextTime()
			if !ok {
				break
			}
			if nt > t {
				t = nt
			}
		}
		arrivedNow := false
		for _, j := range arr.PopAt(t) {
			q.Push(j)
			arrivedNow = true
		}

		calibrated := calStart >= 0 && calStart <= t && t < calEnd
		if !calibrated && !q.Empty() {
			tr := TriggerNone
			switch {
			case pol.countTrigger && core.MustMul(int64(q.Len()), T) >= g:
				tr = TriggerCount
			case pol.weightTrigger && core.MustMul(q.TotalWeight(), T) >= g:
				tr = TriggerWeight
			case pol.queueFullTrigger && int64(q.Len()) >= T:
				tr = TriggerQueueFull
			default:
				if q.FlowIfScheduledFrom(t+1) >= g {
					tr = TriggerFlow
				} else if pol.immediate && hadInterval && 2*intervalFlow < g && arrivedNow {
					tr = TriggerImmediate
				}
			}
			if tr != TriggerNone {
				calibrate(t, tr)
				calibrated = true
			}
		}

		if calibrated && !q.Empty() {
			if naive {
				j := q.Pop()
				sched.Assign(j.ID, 0, t)
				intervalFlow += j.Flow(t)
				t++
				continue
			}
			// Batch-schedule until the interval ends, the queue drains, or
			// an arrival could change the pop order.
			end := calEnd
			if na, ok := arr.NextTime(); ok && na < end {
				end = na
			}
			for t < end && !q.Empty() {
				j := q.Pop()
				sched.Assign(j.ID, 0, t)
				intervalFlow += j.Flow(t)
				t++
			}
			continue
		}

		// Nothing happened at t: advance the clock.
		if naive {
			t++
			continue
		}
		next := int64(-1)
		if na, ok := arr.NextTime(); ok {
			next = na
		}
		if !q.Empty() {
			// The only trigger that can newly fire without an arrival is
			// the flow trigger: solve for the smallest tau with
			// f(tau+1) = W*(tau+1) + C >= G.
			w, c := q.FlowCoefficients()
			tau := simul.CeilDiv(g-c, w) - 1
			if tau <= t {
				tau = t + 1 // defensive: the trigger was just evaluated false at t
			}
			if next < 0 || tau < next {
				next = tau
			}
		}
		if next < 0 {
			break
		}
		if next <= t {
			next = t + 1
		}
		t = next
	}
	return res
}
