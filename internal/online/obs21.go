package online

import (
	"fmt"
	"sort"

	"calibsched/internal/core"
	"calibsched/internal/queue"
	"calibsched/internal/simul"
)

// AssignTimes implements Observation 2.1 of the paper: given only the
// calibration times, it calibrates machines in round-robin order (by
// ascending calibration time) and list-schedules jobs, at every time step
// running on each calibrated machine the heaviest waiting job, breaking
// ties by earliest release time. The paper proves the resulting assignment
// minimizes total weighted flow among all schedules using exactly these
// calibration times.
//
// It returns an error if the calendar has insufficient calibrated capacity
// to schedule every job.
func AssignTimes(in *core.Instance, times []int64) (*core.Schedule, error) {
	sorted := make([]int64, len(times))
	copy(sorted, times)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	cal := make(core.Calendar, len(sorted))
	for i, s := range sorted {
		cal[i] = core.Calibration{Machine: i % in.P, Start: s}
	}
	return AssignCalendar(in, cal)
}

// AssignCalendar is AssignTimes for a calendar whose machine placement is
// already fixed: it runs the Observation 2.1 list scheduler (heaviest
// waiting job first, ties by earliest release) against the given
// calibrated intervals. For P = 1 it is exactly AssignTimes; for P > 1 the
// optimality guarantee of Observation 2.1 is proved for round-robin
// placements, which AssignTimes constructs.
func AssignCalendar(in *core.Instance, cal core.Calendar) (*core.Schedule, error) {
	return assignCalendar(in, cal, queue.ByWeightDesc)
}

// AssignTimesFIFO is AssignTimes restricted to release-time order: at every
// step each calibrated machine runs the earliest-released waiting job.
// Among release-ordered schedules this assignment is optimal for the given
// times (the Observation 2.1 exchange argument applies verbatim with the
// FIFO order), which makes it the building block for computing OPT_r, the
// release-order optimum of Section 3.2.
func AssignTimesFIFO(in *core.Instance, times []int64) (*core.Schedule, error) {
	sorted := make([]int64, len(times))
	copy(sorted, times)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	cal := make(core.Calendar, len(sorted))
	for i, s := range sorted {
		cal[i] = core.Calibration{Machine: i % in.P, Start: s}
	}
	return assignCalendar(in, cal, queue.ByRelease)
}

func assignCalendar(in *core.Instance, cal core.Calendar, order func(a, b core.Job) bool) (*core.Schedule, error) {
	// Per-machine sorted interval starts. Intervals all have length in.T,
	// so "covered at t" is decided by the latest start <= t.
	starts := make([][]int64, in.P)
	var all []int64
	for _, c := range cal {
		if c.Machine < 0 || c.Machine >= in.P {
			return nil, fmt.Errorf("online: calendar calibrates machine %d of %d", c.Machine, in.P)
		}
		starts[c.Machine] = append(starts[c.Machine], c.Start)
		all = append(all, c.Start)
	}
	for m := range starts {
		sort.Slice(starts[m], func(a, b int) bool { return starts[m][a] < starts[m][b] })
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })

	covered := func(m int, t int64) bool {
		s := starts[m]
		// Latest start <= t.
		lo, hi := 0, len(s)
		for lo < hi {
			mid := (lo + hi) / 2
			if s[mid] <= t {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo > 0 && t < s[lo-1]+in.T
	}
	// nextStartAfter returns the earliest calibration start > t, or -1.
	nextStartAfter := func(t int64) int64 {
		i := sort.Search(len(all), func(i int) bool { return all[i] > t })
		if i == len(all) {
			return -1
		}
		return all[i]
	}

	q := queue.NewJobQueue(order)
	arr := simul.NewArrivals(in)
	sched := core.NewSchedule(in.N())
	sched.Calendar = append(core.Calendar(nil), cal...)

	t := int64(0)
	for arr.Remaining() > 0 || !q.Empty() {
		if q.Empty() {
			nt, ok := arr.NextTime()
			if !ok {
				break
			}
			if nt > t {
				t = nt
			}
		}
		for _, j := range arr.PopAt(t) {
			q.Push(j)
		}
		scheduled := false
		for m := 0; m < in.P && !q.Empty(); m++ {
			if covered(m, t) {
				j := q.Pop()
				sched.Assign(j.ID, m, t)
				scheduled = true
			}
		}
		if scheduled {
			t++
			continue
		}
		// Queue is waiting with no calibrated machine at t (or empty, in
		// which case the top of the loop jumps): skip to the next moment
		// coverage can begin.
		if q.Empty() {
			continue
		}
		next := nextStartAfter(t)
		if na, ok := arr.NextTime(); ok && (next < 0 || na < next) {
			next = na
		}
		if next <= t {
			return nil, fmt.Errorf("online: calendar has insufficient capacity: %d jobs waiting at time %d with no calibrated slot remaining", q.Len(), t)
		}
		t = next
	}
	return sched, nil
}
