package online

import (
	"math/rand/v2"
	"strings"
	"testing"

	"calibsched/internal/core"
	"calibsched/internal/trace"
)

// TestStepperSnapshotRoundTrip is the recovery-correctness gate at the
// engine level: cutting a run at an arbitrary step, marshaling, restoring
// through the registry, and finishing must produce the schedule and
// triggers of an uninterrupted run — including cuts that land inside a
// calibrated interval.
func TestStepperSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(2026, 805))
	for trial := 0; trial < 200; trial++ {
		weighted := trial%2 == 1
		alg := "alg1"
		if weighted {
			alg = "alg2"
		}
		in := randomInstance(rng, 1, weighted)
		g := int64(rng.IntN(40))

		spec, ok := LookupEngine(alg)
		if !ok {
			t.Fatalf("engine %q not registered", alg)
		}
		byTime := map[int64][]core.Job{}
		for _, j := range in.Jobs {
			byTime[j.Release] = append(byTime[j.Release], j)
		}

		// Reference: uninterrupted run.
		ref := spec.New(in.T, g)
		scheduled := 0
		var horizon int64
		for scheduled < in.N() {
			if ref.Step(byTime[ref.Now()]).Ran >= 0 {
				scheduled++
			}
			if horizon = ref.Now(); horizon > in.MaxRelease()+1_000_000 {
				t.Fatalf("trial %d: reference run did not finish", trial)
			}
		}

		// Cut run: step to a random point, snapshot, restore, finish.
		cut := rng.Int64N(horizon + 1)
		eng := spec.New(in.T, g)
		for eng.Now() < cut {
			eng.Step(byTime[eng.Now()])
		}
		state, err := eng.(Snapshotter).MarshalState()
		if err != nil {
			t.Fatalf("trial %d: marshal at step %d: %v", trial, cut, err)
		}
		restored, err := RestoreEngine(alg, in.T, g, state)
		if err != nil {
			t.Fatalf("trial %d: restore at step %d: %v", trial, cut, err)
		}
		if restored.Now() != eng.Now() || restored.Pending() != eng.Pending() || restored.CalibratedNow() != eng.CalibratedNow() {
			t.Fatalf("trial %d: restored now=%d pending=%d cal=%v, want now=%d pending=%d cal=%v",
				trial, restored.Now(), restored.Pending(), restored.CalibratedNow(),
				eng.Now(), eng.Pending(), eng.CalibratedNow())
		}
		for restored.Now() < horizon {
			restored.Step(byTime[restored.Now()])
		}

		if !sameSchedule(ref.Schedule(in.N()), restored.Schedule(in.N())) {
			t.Fatalf("trial %d (%s G=%d T=%d cut=%d): restored schedule differs", trial, alg, g, in.T, cut)
		}
		want, got := ref.Triggers(), restored.Triggers()
		if len(want) != len(got) {
			t.Fatalf("trial %d: %d triggers, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: trigger %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestStepperSnapshotDeterministic pins that the encoding itself is
// deterministic: two engines fed the same commands marshal to identical
// bytes (recovery diffs rely on it being a pure function of state).
func TestStepperSnapshotDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	in := randomInstance(rng, 1, true)
	byTime := map[int64][]core.Job{}
	for _, j := range in.Jobs {
		byTime[j.Release] = append(byTime[j.Release], j)
	}
	a := NewAlg2Stepper(in.T, 20)
	b := NewAlg2Stepper(in.T, 20)
	for step := 0; step < 50; step++ {
		a.Step(byTime[a.Now()])
		b.Step(byTime[b.Now()])
	}
	sa, err := a.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if string(sa) != string(sb) {
		t.Fatalf("same command stream, different encodings:\n%s\n%s", sa, sb)
	}
}

// TestStepperSnapshotTracerContinuity checks that a restored engine keeps
// the decision-event sequence monotone: the next calibration after
// recovery carries Seq = calibrations-so-far + 1, not 1.
func TestStepperSnapshotTracerContinuity(t *testing.T) {
	g := int64(4)
	st := NewAlg1Stepper(2, g)
	// One lone job: its flow trigger fires after a few idle steps.
	st.Step([]core.Job{{ID: 0, Release: 0, Weight: 1}})
	for st.Pending() > 0 || st.CalibratedNow() {
		st.Step(nil)
	}
	if len(st.Triggers()) == 0 {
		t.Fatal("setup: no calibration happened")
	}
	state, err := st.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	ring := trace.NewRing(16)
	eng, err := RestoreEngine("alg1", 2, g, state, WithSink(ring))
	if err != nil {
		t.Fatal(err)
	}
	now := eng.Now()
	eng.Step([]core.Job{{ID: 1, Release: now, Weight: 1}})
	for eng.Pending() > 0 {
		eng.Step(nil)
	}
	events, _, _ := ring.Snapshot()
	if len(events) == 0 {
		t.Fatal("restored engine emitted no decision events")
	}
	if want := int64(len(st.Triggers()) + 1); events[0].Seq != want {
		t.Errorf("first post-recovery event Seq = %d, want %d", events[0].Seq, want)
	}
}

// TestRestoreEngineRejects covers the decode guards: recovery must turn
// corrupt or mismatched state into an error, never a half-restored
// engine or a panic.
func TestRestoreEngineRejects(t *testing.T) {
	good := func() []byte {
		st := NewAlg2Stepper(5, 10)
		st.Step([]core.Job{{ID: 0, Release: 0, Weight: 3}})
		b, err := st.MarshalState()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}()
	for _, tc := range []struct {
		name  string
		alg   string
		t, g  int64
		state string
		msg   string
	}{
		{"garbage bytes", "alg2", 5, 10, "\x00\xff not json", "decoding"},
		{"empty object", "alg2", 5, 10, "{}", "version"},
		{"future version", "alg2", 5, 10, `{"v":99,"alg":"alg2","t":5,"g":10}`, "version 99"},
		{"wrong engine", "alg1", 5, 10, string(good), `for engine "alg2"`},
		{"wrong params", "alg2", 6, 10, string(good), "T=5 G=10"},
		{"negative clock", "alg2", 5, 10, `{"v":1,"alg":"alg2","t":5,"g":10,"now":-3}`, "clock -3"},
		{"trigger mismatch", "alg2", 5, 10,
			`{"v":1,"alg":"alg2","t":5,"g":10,"calendar":[{"Machine":0,"Start":0}]}`, "triggers"},
		{"bad trigger value", "alg2", 5, 10,
			`{"v":1,"alg":"alg2","t":5,"g":10,"calendar":[{"Machine":0,"Start":0}],"triggers":[77]}`, "invalid trigger"},
		{"interval vs T", "alg2", 5, 10,
			`{"v":1,"alg":"alg2","t":5,"g":10,"cal_start":2,"cal_end":4}`, "inconsistent"},
		{"future queued job", "alg2", 5, 10,
			`{"v":1,"alg":"alg2","t":5,"g":10,"now":3,"cal_start":-1,"cal_end":-1,"queue":[{"ID":0,"Release":9,"Weight":1}]}`, "released at 9"},
		{"weightless queued job", "alg2", 5, 10,
			`{"v":1,"alg":"alg2","t":5,"g":10,"now":3,"cal_start":-1,"cal_end":-1,"queue":[{"ID":0,"Release":1,"Weight":0}]}`, "weight 0"},
		{"start beyond clock", "alg2", 5, 10,
			`{"v":1,"alg":"alg2","t":5,"g":10,"now":3,"cal_start":-1,"cal_end":-1,"starts":[{"job":0,"start":7}]}`, "outside"},
		{"unknown engine", "nope", 5, 10, string(good), "unknown engine"},
		{"bad T", "alg2", 0, 10, string(good), "T = 0"},
		{"bad G", "alg2", 5, -1, string(good), "G = -1"},
	} {
		if _, err := RestoreEngine(tc.alg, tc.t, tc.g, []byte(tc.state)); err == nil {
			t.Errorf("%s: restore succeeded, want error", tc.name)
		} else if !strings.Contains(err.Error(), tc.msg) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.msg)
		}
	}
}
