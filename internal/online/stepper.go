package online

import (
	"fmt"

	"calibsched/internal/core"
	"calibsched/internal/queue"
)

// Stepper exposes Algorithms 1 and 2 as incremental state machines driven
// one time step at a time by the caller, exactly matching the paper's
// online information model: the algorithm learns of a job only when the
// caller feeds it. This is how an adaptive adversary interacts with the
// algorithm without replays (package lowerbound uses the batch form only
// because determinism makes replay equivalent; the stepper makes the
// interaction literal and is differentially tested against the batch
// form).
//
// Usage:
//
//	st := online.NewAlg1Stepper(T, G)
//	for t := int64(0); !done; t++ {
//	    ev := st.Step(arrivalsAt(t))   // jobs released at the current step
//	    // ev reports whether the machine calibrated and/or ran a job.
//	}
//	sched := st.Schedule(n)
//
// Step must be called for consecutive time steps starting at 0.
type Stepper struct {
	t      int64
	g      int64
	T      int64
	pol    singlePolicy
	tracer *decisionTracer // nil when tracing is off

	q            *queue.JobQueue
	calStart     int64
	calEnd       int64
	hadInterval  bool
	intervalFlow int64

	calendar []core.Calibration
	triggers []Trigger
	starts   map[int]int64 // job ID -> start
}

// StepEvent reports what happened during one time step.
type StepEvent struct {
	// Time is the step that was just simulated.
	Time int64
	// Calibrated reports a calibration at this step, with Trigger set.
	Calibrated bool
	Trigger    Trigger
	// Ran is the ID of the job scheduled at this step, or -1.
	Ran int
}

// NewAlg1Stepper returns an incremental Algorithm 1 (unweighted, one
// machine).
func NewAlg1Stepper(t, g int64, opts ...Option) *Stepper {
	o := buildOptions(opts)
	return newStepper(t, g, singlePolicy{
		alg:          "alg1",
		order:        queue.ByRelease,
		countTrigger: !o.FlowTriggerOnly,
		immediate:    !o.NoImmediateCalibrations && !o.FlowTriggerOnly,
	}, o)
}

// NewAlg2Stepper returns an incremental Algorithm 2 (weighted, one
// machine).
func NewAlg2Stepper(t, g int64, opts ...Option) *Stepper {
	o := buildOptions(opts)
	order := queue.ByWeightDesc
	if o.LightestFirst {
		order = queue.ByWeightAsc
	}
	return newStepper(t, g, singlePolicy{
		alg:              "alg2",
		order:            order,
		weightTrigger:    !o.FlowTriggerOnly,
		queueFullTrigger: !o.FlowTriggerOnly,
	}, o)
}

func newStepper(t, g int64, pol singlePolicy, o Options) *Stepper {
	return &Stepper{
		g: g, T: t, pol: pol,
		tracer:   newDecisionTracer(o.Sink, pol.alg, g),
		q:        queue.NewJobQueue(pol.order),
		calStart: -1, calEnd: -1,
		starts: make(map[int]int64),
	}
}

// Now returns the next step Step will simulate.
func (s *Stepper) Now() int64 { return s.t }

// Pending returns the number of jobs waiting in the queue.
func (s *Stepper) Pending() int { return s.q.Len() }

// Step simulates the current time step with the given arrivals (released
// exactly now) and advances the clock. Arrivals with a release time other
// than the current step are rejected with a panic: the caller owns the
// clock and must not time-travel.
func (s *Stepper) Step(arrivals []core.Job) StepEvent {
	ev := StepEvent{Time: s.t, Ran: -1}
	arrived := false
	for _, j := range arrivals {
		if j.Release != s.t {
			panic(fmt.Sprintf("online: stepper fed job released at %d during step %d", j.Release, s.t))
		}
		s.q.Push(j)
		arrived = true
	}
	calibrated := s.calStart >= 0 && s.calStart <= s.t && s.t < s.calEnd
	if !calibrated && !s.q.Empty() {
		tr := TriggerNone
		switch {
		case s.pol.countTrigger && core.MustMul(int64(s.q.Len()), s.T) >= s.g:
			tr = TriggerCount
		case s.pol.weightTrigger && core.MustMul(s.q.TotalWeight(), s.T) >= s.g:
			tr = TriggerWeight
		case s.pol.queueFullTrigger && int64(s.q.Len()) >= s.T:
			tr = TriggerQueueFull
		default:
			if s.q.FlowIfScheduledFrom(s.t+1) >= s.g {
				tr = TriggerFlow
			} else if s.pol.immediate && s.hadInterval && 2*s.intervalFlow < s.g && arrived {
				tr = TriggerImmediate
			}
		}
		if tr != TriggerNone {
			s.calendar = append(s.calendar, core.Calibration{Machine: 0, Start: s.t})
			s.triggers = append(s.triggers, tr)
			if s.tracer != nil {
				s.tracer.emit(s.t, 0, tr, s.q, len(s.calendar))
			}
			s.calStart, s.calEnd = s.t, s.t+s.T
			s.hadInterval = true
			s.intervalFlow = 0
			calibrated = true
			ev.Calibrated = true
			ev.Trigger = tr
		}
	}
	if calibrated && !s.q.Empty() {
		j := s.q.Pop()
		s.starts[j.ID] = s.t
		s.intervalFlow += j.Flow(s.t)
		ev.Ran = j.ID
	}
	s.t++
	return ev
}

// SkipIdle implements IdleSkipper: with the queue empty, every trigger
// in Step is gated on a non-empty queue (TriggerImmediate additionally
// on an arrival this step), and the run block likewise — so Step(nil)
// mutates nothing but the clock, even mid-calibration-interval, and the
// whole idle stretch collapses to one assignment. Differentially pinned
// against literal Step(nil) loops by TestSkipIdleMatchesIdleSteps.
func (s *Stepper) SkipIdle(to int64) {
	if !s.q.Empty() {
		panic(fmt.Sprintf("online: SkipIdle(%d) with %d jobs pending", to, s.q.Len()))
	}
	if to > s.t {
		s.t = to
	}
}

// CalibratedNow reports whether the machine is calibrated for the step
// Step would simulate next.
func (s *Stepper) CalibratedNow() bool {
	return s.calStart >= 0 && s.calStart <= s.t && s.t < s.calEnd
}

// Schedule assembles the schedule built so far for an n-job instance.
// Unscheduled jobs remain unassigned (Start -1); a complete run leaves
// none.
func (s *Stepper) Schedule(n int) *core.Schedule {
	sched := core.NewSchedule(n)
	sched.Calendar = append(core.Calendar(nil), s.calendar...)
	for id, start := range s.starts {
		sched.Assign(id, 0, start)
	}
	return sched
}

// Triggers returns the trigger per calendar entry so far.
func (s *Stepper) Triggers() []Trigger {
	return append([]Trigger(nil), s.triggers...)
}
