package online

import (
	"fmt"

	"calibsched/internal/core"
	"calibsched/internal/queue"
	"calibsched/internal/simul"
)

// Alg3 runs Algorithm 3 of the paper (online unweighted calibration on
// multiple machines, 12-competitive). The instance may have any P >= 1;
// weights must be 1.
//
// The paper's algorithm assigns jobs to intervals explicitly the moment it
// calibrates (so they stop counting as waiting jobs), and notes that in
// practice "one would almost certainly only use Algorithm 3 to determine
// calibration times, and use Observation 2.1 for the actual assignments".
// That replay is the default here; WithoutObservationReplay keeps the
// explicit packing (the variant actually analyzed), and E11 measures the
// gap.
func Alg3(in *core.Instance, g int64, opts ...Option) (*Result, error) {
	o := buildOptions(opts)
	if err := checkInput(in, g, false, true); err != nil {
		return nil, err
	}
	res := runAlg3(in, g, o)
	if o.NoObservationReplay {
		return res, nil
	}
	times := make([]int64, len(res.Schedule.Calendar))
	for i, c := range res.Schedule.Calendar.Sorted() {
		times[i] = c.Start
	}
	replayed, err := AssignTimes(in, times)
	if err != nil {
		// The explicit packing proves the calendar has room for every job,
		// and the Observation 2.1 assignment is optimal for the calendar,
		// so replay cannot fail.
		panic(fmt.Sprintf("online: Observation 2.1 replay of Algorithm 3 calendar failed: %v", err))
	}
	return &Result{Schedule: replayed, Triggers: res.Triggers}, nil
}

// alg3Machine tracks one machine's calibrated horizon and slot occupancy.
type alg3Machine struct {
	end      int64          // one past the last calibrated step; 0 if never calibrated
	occupied map[int64]bool // occupied time steps (within calibrated ranges)
	calIdx   int            // index into the calendar of this machine's latest calibration
}

func (m *alg3Machine) coveredAt(t int64) bool { return t < m.end }

// firstFree returns the earliest step in [t, m.end) that is unoccupied, or
// -1 if none. Calibrated ranges are contiguous up to end because
// calibrations only extend the horizon forward from the current time.
func (m *alg3Machine) firstFree(t int64) int64 {
	for s := t; s < m.end; s++ {
		if !m.occupied[s] {
			return s
		}
	}
	return -1
}

// hasFreeSlot reports whether any step in [from, to) is unoccupied.
func (m *alg3Machine) hasFreeSlot(from, to int64) bool {
	for s := from; s < to; s++ {
		if !m.occupied[s] {
			return true
		}
	}
	return false
}

func runAlg3(in *core.Instance, g int64, o Options) *Result {
	naive := o.Naive
	q := queue.NewJobQueue(queue.ByRelease)
	arr := simul.NewArrivals(in)
	sched := core.NewSchedule(in.N())
	res := &Result{Schedule: sched}
	T := in.T
	tracer := newDecisionTracer(o.Sink, "alg3", g)

	machines := make([]alg3Machine, in.P)
	for i := range machines {
		machines[i].occupied = make(map[int64]bool)
		machines[i].calIdx = -1
	}
	attribute := func(m *alg3Machine, job int) {
		res.JobsByCalibration[m.calIdx] = append(res.JobsByCalibration[m.calIdx], job)
	}
	rr := 0 // round-robin cursor

	// packCap is the paper's "up to G/T jobs" per fresh interval,
	// implemented as ceil(G/T) and at least 1 so each calibration makes
	// progress even when G < T.
	packCap := int64(1)
	if g > 0 {
		packCap = simul.CeilDiv(g, T)
	}

	t := int64(0)
	for arr.Remaining() > 0 || !q.Empty() {
		if q.Empty() {
			nt, ok := arr.NextTime()
			if !ok {
				break
			}
			if nt > t {
				t = nt
			}
		}
		for _, j := range arr.PopAt(t) {
			q.Push(j)
		}

		// Steps 6-9: every calibrated machine idle at t runs the
		// earliest-released waiting job.
		for mi := range machines {
			if q.Empty() {
				break
			}
			m := &machines[mi]
			if m.coveredAt(t) && !m.occupied[t] {
				j := q.Pop()
				sched.Assign(j.ID, mi, t)
				m.occupied[t] = true
				attribute(m, j.ID)
			}
		}

		// Steps 10-14: while the waiting jobs warrant it, calibrate the
		// next machine round-robin and pack up to ceil(G/T) waiting jobs
		// into the fresh interval in release-time order.
		for !q.Empty() {
			tr := TriggerNone
			if core.MustMul(int64(q.Len()), T) >= g {
				tr = TriggerCount
			} else if q.FlowIfScheduledFrom(t+1) >= g {
				tr = TriggerFlow
			} else {
				break
			}
			mi := rr % in.P
			m := &machines[mi]
			// Guard against the degenerate case the paper's pseudocode
			// leaves open: if the round-robin machine's window [t, t+T) is
			// already fully occupied, recalibrating it now adds no
			// capacity (and the literal while-loop would spin forever).
			// Defer until a slot frees up. See DESIGN.md note 7.
			if !m.hasFreeSlot(t, t+T) {
				break
			}
			rr++
			sched.Calibrate(mi, t)
			res.Triggers = append(res.Triggers, tr)
			if tracer != nil {
				tracer.emit(t, mi, tr, q, len(sched.Calendar))
			}
			res.JobsByCalibration = append(res.JobsByCalibration, nil)
			m.calIdx = len(res.JobsByCalibration) - 1
			if t+T > m.end {
				m.end = t + T
			}
			packed := int64(0)
			for slot := t; slot < t+T && packed < packCap && !q.Empty(); slot++ {
				if m.occupied[slot] {
					continue
				}
				j := q.Pop()
				sched.Assign(j.ID, mi, slot)
				m.occupied[slot] = true
				attribute(m, j.ID)
				packed++
			}
			if packed == 0 && !q.Empty() {
				// A fresh interval always exposes at least one free slot
				// (the previous interval on this machine started strictly
				// earlier, so it ends strictly earlier than t+T).
				panic("online: Algorithm 3 packed no job into a fresh interval")
			}
		}

		if naive {
			t++
			continue
		}
		// Advance to the next event: an arrival, the analytic flow-trigger
		// time, or the first moment a calibrated machine has a free slot.
		next := int64(-1)
		consider := func(v int64) {
			if v > t && (next < 0 || v < next) {
				next = v
			}
		}
		if na, ok := arr.NextTime(); ok {
			consider(na)
		}
		if !q.Empty() {
			w, c := q.FlowCoefficients()
			tau := simul.CeilDiv(g-c, w) - 1
			if tau <= t {
				tau = t + 1
			}
			consider(tau)
			for mi := range machines {
				if free := machines[mi].firstFree(t + 1); free >= 0 {
					consider(free)
				}
			}
		}
		if next < 0 {
			break
		}
		t = next
	}
	return res
}
