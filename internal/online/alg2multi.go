package online

import (
	"fmt"

	"calibsched/internal/core"
	"calibsched/internal/queue"
	"calibsched/internal/simul"
)

// Alg2Multi schedules weighted jobs on multiple machines online — the
// setting the paper leaves open ("constant-competitive for weighted jobs
// on a single machine"; no weighted multi-machine algorithm is given).
//
// EXTENSION, NOT FROM THE PAPER. The algorithm fuses Algorithm 2's
// triggers with Algorithm 3's round-robin calendar construction:
//
//   - maintain one queue of waiting jobs ordered heaviest-first;
//   - while the queued weight reaches G/T, or T jobs wait, or the
//     prospective flow reaches G: calibrate the next machine round-robin
//     and reserve up to ceil(G/T) waiting jobs for it (heaviest first),
//     so they stop counting toward further triggers;
//   - the final assignment replays the calendar through the Observation
//     2.1 list scheduler, which is optimal for the calendar.
//
// No competitive ratio is proved here; experiment E15 measures it against
// the weighted Figure 1 LP bound (worst measured cells are small constant
// factors). On P = 1 the calendar decisions coincide with Algorithm 2's
// except that reserved jobs stop feeding triggers one step earlier, so
// costs may differ slightly in either direction on ties.
func Alg2Multi(in *core.Instance, g int64, opts ...Option) (*Result, error) {
	o := buildOptions(opts)
	if err := checkInput(in, g, false, false); err != nil {
		return nil, err
	}
	res := runAlg2Multi(in, g, o)
	if o.NoObservationReplay {
		return res, nil
	}
	times := make([]int64, len(res.Schedule.Calendar))
	for i, c := range res.Schedule.Calendar.Sorted() {
		times[i] = c.Start
	}
	replayed, err := AssignTimes(in, times)
	if err != nil {
		panic(fmt.Sprintf("online: Observation 2.1 replay of Alg2Multi calendar failed: %v", err))
	}
	return &Result{Schedule: replayed, Triggers: res.Triggers}, nil
}

func runAlg2Multi(in *core.Instance, g int64, o Options) *Result {
	naive := o.Naive
	q := queue.NewJobQueue(queue.ByWeightDesc)
	arr := simul.NewArrivals(in)
	sched := core.NewSchedule(in.N())
	res := &Result{Schedule: sched}
	T := in.T
	tracer := newDecisionTracer(o.Sink, "alg2multi", g)

	machines := make([]alg3Machine, in.P)
	for i := range machines {
		machines[i].occupied = make(map[int64]bool)
		machines[i].calIdx = -1
	}
	rr := 0
	packCap := int64(1)
	if g > 0 {
		packCap = simul.CeilDiv(g, T)
	}

	t := int64(0)
	for arr.Remaining() > 0 || !q.Empty() {
		if q.Empty() {
			nt, ok := arr.NextTime()
			if !ok {
				break
			}
			if nt > t {
				t = nt
			}
		}
		for _, j := range arr.PopAt(t) {
			q.Push(j)
		}

		// Serve idle covered machines heaviest-first.
		for mi := range machines {
			if q.Empty() {
				break
			}
			m := &machines[mi]
			if m.coveredAt(t) && !m.occupied[t] {
				j := q.Pop()
				sched.Assign(j.ID, mi, t)
				m.occupied[t] = true
			}
		}

		// Calibrate while a trigger holds, reserving jobs per interval.
		for !q.Empty() {
			tr := TriggerNone
			switch {
			case core.MustMul(q.TotalWeight(), T) >= g:
				tr = TriggerWeight
			case int64(q.Len()) >= T:
				tr = TriggerQueueFull
			case q.FlowIfScheduledFrom(t+1) >= g:
				tr = TriggerFlow
			}
			if tr == TriggerNone {
				break
			}
			mi := rr % in.P
			m := &machines[mi]
			if !m.hasFreeSlot(t, t+T) {
				break // same degenerate-recalibration guard as Algorithm 3
			}
			rr++
			sched.Calibrate(mi, t)
			res.Triggers = append(res.Triggers, tr)
			if tracer != nil {
				tracer.emit(t, mi, tr, q, len(sched.Calendar))
			}
			res.JobsByCalibration = append(res.JobsByCalibration, nil)
			m.calIdx = len(res.JobsByCalibration) - 1
			if t+T > m.end {
				m.end = t + T
			}
			packed := int64(0)
			for slot := t; slot < t+T && packed < packCap && !q.Empty(); slot++ {
				if m.occupied[slot] {
					continue
				}
				j := q.Pop()
				sched.Assign(j.ID, mi, slot)
				m.occupied[slot] = true
				res.JobsByCalibration[m.calIdx] = append(res.JobsByCalibration[m.calIdx], j.ID)
				packed++
			}
			if packed == 0 && !q.Empty() {
				panic("online: Alg2Multi packed no job into a fresh interval")
			}
		}

		if naive {
			t++
			continue
		}
		next := int64(-1)
		consider := func(v int64) {
			if v > t && (next < 0 || v < next) {
				next = v
			}
		}
		if na, ok := arr.NextTime(); ok {
			consider(na)
		}
		if !q.Empty() {
			w, c := q.FlowCoefficients()
			tau := simul.CeilDiv(g-c, w) - 1
			if tau <= t {
				tau = t + 1
			}
			consider(tau)
			for mi := range machines {
				if free := machines[mi].firstFree(t + 1); free >= 0 {
					consider(free)
				}
			}
		}
		if next < 0 {
			break
		}
		t = next
	}
	return res
}
