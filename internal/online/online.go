// Package online implements the three online algorithms of Chau, McCauley,
// Li, and Wang (SPAA 2017) for minimizing calibration cost plus total
// weighted flow time:
//
//   - Alg1: the 3-competitive unweighted single-machine algorithm
//     (Algorithm 1 of the paper),
//   - Alg2: the 12-competitive weighted single-machine algorithm
//     (Algorithm 2),
//   - Alg3: the 12-competitive unweighted multi-machine algorithm
//     (Algorithm 3),
//
// plus AssignTimes, the Observation 2.1 list scheduler that optimally
// assigns jobs once calibration times are fixed.
//
// Each algorithm runs either as a naive per-time-step simulation or (the
// default) as an event-skipping loop that jumps directly between arrivals,
// interval boundaries, and analytically computed trigger times; the two are
// equivalent (differentially tested) and the fast loop runs in time
// polynomial in the number of jobs rather than in the time horizon, which
// matters because a lone job waits Theta(G) steps before its flow trigger
// fires.
package online

import (
	"fmt"

	"calibsched/internal/core"
	"calibsched/internal/queue"
	"calibsched/internal/trace"
)

// Trigger records why an interval was calibrated.
type Trigger uint8

// Trigger reasons, aligned with the calibration conditions of Algorithms
// 1-3.
const (
	// TriggerNone is the zero value and never appears in results.
	TriggerNone Trigger = iota
	// TriggerFlow: the queued jobs' prospective flow reached G.
	TriggerFlow
	// TriggerCount: at least G/T jobs were waiting (Algorithms 1 and 3).
	TriggerCount
	// TriggerWeight: queued weight reached G/T (Algorithm 2).
	TriggerWeight
	// TriggerQueueFull: T jobs were waiting (Algorithm 2's |Q| = T rule).
	TriggerQueueFull
	// TriggerImmediate: Algorithm 1's immediate calibration after an
	// interval with flow below G/2.
	TriggerImmediate
)

// String returns the trigger's name.
func (tr Trigger) String() string {
	switch tr {
	case TriggerFlow:
		return "flow"
	case TriggerCount:
		return "count"
	case TriggerWeight:
		return "weight"
	case TriggerQueueFull:
		return "queue-full"
	case TriggerImmediate:
		return "immediate"
	default:
		return "none"
	}
}

// Result is an algorithm run: the schedule plus one trigger per calendar
// entry (Triggers[i] explains Schedule.Calendar[i]).
type Result struct {
	Schedule *core.Schedule
	Triggers []Trigger
	// FlowAtCalibration, filled by the single-machine algorithms (1 and
	// 2), records for each calendar entry the prospective flow of the
	// waiting queue at the moment of calibration — the jobs' total flow if
	// they were scheduled consecutively from the calibration step with no
	// further arrivals. This is (up to the one-step convention noted in
	// Lemma 3.7's statement) the paper's f_l^q, and experiment E17 uses it
	// to verify Lemma 3.7 against exhaustive OPT_r.
	FlowAtCalibration []int64
	// JobsByCalibration, filled only by Algorithm 3 with
	// WithoutObservationReplay, attributes each scheduled job to the
	// calibration that was most recent on its machine when the algorithm
	// placed it: JobsByCalibration[i] lists the job IDs belonging to
	// Schedule.Calendar[i] in the algorithm's own accounting. This is the
	// J_i of Observation 3.9 — with overlapping intervals on one machine a
	// purely geometric attribution would differ.
	JobsByCalibration [][]int
}

// Options tune algorithm variants; the zero value selects the paper's
// algorithms as analyzed (with the line-13 typo corrected, see DESIGN.md).
type Options struct {
	// Naive forces per-time-step simulation instead of event skipping;
	// used for differential testing.
	Naive bool
	// NoImmediateCalibrations disables Algorithm 1's "previous interval
	// had flow < G/2" rule (ablation E7).
	NoImmediateCalibrations bool
	// LightestFirst makes Algorithm 2 extract the minimum-weight job, as
	// the paper's Algorithm 2 line 13 literally states (ablation E8); the
	// default is heaviest-first per Observation 2.1 and Lemma 3.5.
	LightestFirst bool
	// FlowTriggerOnly disables every calibration rule except "waiting
	// flow reached G", turning Algorithm 1/2 into the plain ski-rental
	// strategy the paper's Section 3.1 discussion starts from (baseline
	// for E9).
	FlowTriggerOnly bool
	// NoObservationReplay keeps Algorithm 3's explicit in-interval packing
	// as final assignments. By default the calendar produced by Algorithm
	// 3 is replayed through the Observation 2.1 assigner, which the paper
	// notes "one would almost certainly" do in practice (ablation E11
	// compares both).
	NoObservationReplay bool
	// Sink receives one trace.DecisionEvent per calibration the algorithm
	// opens, naming the rule that fired. nil (the default) disables
	// tracing entirely: the emitters skip all event construction behind a
	// nil check, and the differential tests prove schedules are identical
	// either way.
	Sink trace.Sink
}

// Option mutates Options.
type Option func(*Options)

// WithNaiveStepping forces per-time-step simulation.
func WithNaiveStepping() Option { return func(o *Options) { o.Naive = true } }

// WithoutImmediateCalibrations disables Algorithm 1's immediate rule.
func WithoutImmediateCalibrations() Option {
	return func(o *Options) { o.NoImmediateCalibrations = true }
}

// WithLightestFirst selects the paper-literal Algorithm 2 extraction order.
func WithLightestFirst() Option { return func(o *Options) { o.LightestFirst = true } }

// WithFlowTriggerOnly reduces the algorithm to the pure ski-rental rule:
// calibrate only once the waiting jobs' prospective flow reaches G.
func WithFlowTriggerOnly() Option { return func(o *Options) { o.FlowTriggerOnly = true } }

// WithoutObservationReplay keeps Algorithm 3's explicit packing.
func WithoutObservationReplay() Option {
	return func(o *Options) { o.NoObservationReplay = true }
}

// WithSink streams every calibration decision to s as it is made; see
// Options.Sink.
func WithSink(s trace.Sink) Option { return func(o *Options) { o.Sink = s } }

func buildOptions(opts []Option) Options {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// ruleName renders the decision-rule identifier for a fired trigger, e.g.
// "alg1.count-open". internal/trace.RuleDoc maps each identifier to the
// paper statement behind it; TestRuleNamesDocumented pins the two.
func ruleName(alg string, tr Trigger) string {
	switch tr {
	case TriggerFlow:
		return alg + ".flow-open"
	case TriggerCount:
		return alg + ".count-open"
	case TriggerWeight:
		return alg + ".weight-open"
	case TriggerQueueFull:
		return alg + ".queue-full-open"
	case TriggerImmediate:
		return alg + ".immediate-open"
	}
	return alg + ".none"
}

// decisionTracer carries the per-run bookkeeping the emitters share: the
// algorithm name for rule identifiers, G for accrued cost, and a sequence
// counter. A nil *decisionTracer means tracing is off; emit call sites are
// guarded so the untraced path pays only that nil check.
type decisionTracer struct {
	sink trace.Sink
	alg  string
	g    int64
	seq  int64
}

// newDecisionTracer returns nil when sink is nil, collapsing the traced
// and untraced paths into one guard at each emission site.
func newDecisionTracer(sink trace.Sink, alg string, g int64) *decisionTracer {
	if sink == nil {
		return nil
	}
	return &decisionTracer{sink: sink, alg: alg, g: g}
}

// emit records one calibration decision with a snapshot of the waiting
// queue. calibrations counts calendar entries including the one being
// opened.
func (d *decisionTracer) emit(t int64, machine int, tr Trigger, q *queue.JobQueue, calibrations int) {
	d.seq++
	d.sink.Emit(trace.DecisionEvent{
		Seq:             d.seq,
		Time:            t,
		Machine:         machine,
		Alg:             d.alg,
		Rule:            ruleName(d.alg, tr),
		QueueLen:        q.Len(),
		QueueWeight:     q.TotalWeight(),
		ProspectiveFlow: q.FlowIfScheduledFrom(t),
		Calibrations:    calibrations,
		AccruedCost:     core.MustMul(d.g, int64(calibrations)),
	})
}

func checkInput(in *core.Instance, g int64, wantP1, wantUnweighted bool) error {
	if g < 0 {
		return fmt.Errorf("online: calibration cost G = %d, want >= 0", g)
	}
	if wantP1 && in.P != 1 {
		return fmt.Errorf("online: single-machine algorithm on P = %d machines", in.P)
	}
	if wantUnweighted && !in.Unweighted() {
		return fmt.Errorf("online: unweighted algorithm on weighted instance")
	}
	return nil
}
