package online

import (
	"math/rand/v2"
	"testing"

	"calibsched/internal/core"
	"calibsched/internal/workload"
)

// randomInstance builds a small random instance for differential tests.
func randomInstance(rng *rand.Rand, p int, weighted bool) *core.Instance {
	n := 1 + rng.IntN(12)
	releases := make([]int64, n)
	weights := make([]int64, n)
	for i := range releases {
		releases[i] = int64(rng.IntN(25))
		if weighted {
			weights[i] = 1 + int64(rng.IntN(6))
		} else {
			weights[i] = 1
		}
	}
	t := int64(1 + rng.IntN(8))
	in := core.MustInstance(p, t, releases, weights)
	return in.Canonicalize()
}

func sameSchedule(a, b *core.Schedule) bool {
	ac, bc := a.Calendar.Sorted(), b.Calendar.Sorted()
	if len(ac) != len(bc) {
		return false
	}
	for i := range ac {
		if ac[i] != bc[i] {
			return false
		}
	}
	if len(a.Assignments) != len(b.Assignments) {
		return false
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			return false
		}
	}
	return true
}

func TestAlg1SingleJobFlowTrigger(t *testing.T) {
	// One job at time 0, G=10, T=5: waiting flow f(t) = t+2 reaches G at
	// t=8, so Algorithm 1 calibrates and schedules at 8.
	in := core.MustInstance(1, 5, []int64{0}, []int64{1})
	res, err := Alg1(in, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Validate(in, res.Schedule); err != nil {
		t.Fatal(err)
	}
	if len(res.Schedule.Calendar) != 1 || res.Schedule.Calendar[0].Start != 8 {
		t.Fatalf("calendar = %v, want one calibration at 8", res.Schedule.Calendar)
	}
	if res.Schedule.Start(0) != 8 {
		t.Errorf("job start = %d, want 8", res.Schedule.Start(0))
	}
	if res.Triggers[0] != TriggerFlow {
		t.Errorf("trigger = %v, want flow", res.Triggers[0])
	}
	if got := core.TotalCost(in, res.Schedule, 10); got != 19 {
		t.Errorf("total cost = %d, want 19", got)
	}
}

func TestAlg1CountTrigger(t *testing.T) {
	// T >= G makes a single waiting job satisfy |Q|*T >= G immediately.
	in := core.MustInstance(1, 20, []int64{0}, []int64{1})
	res, err := Alg1(in, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Calendar[0].Start != 0 || res.Triggers[0] != TriggerCount {
		t.Fatalf("want count-triggered calibration at 0, got start %d trigger %v",
			res.Schedule.Calendar[0].Start, res.Triggers[0])
	}
	if res.Schedule.Start(0) != 0 {
		t.Errorf("job start = %d, want 0", res.Schedule.Start(0))
	}
}

func TestAlg1ImmediateCalibration(t *testing.T) {
	// G=10, T=5. Jobs at 0 and 1 count-trigger at t=1 (2*5 >= 10) and run
	// at 1,2 with flows 2+2 = 4 < G/2 = 5, so the arrival at 6 (right
	// after the interval [1,6) ends) calibrates immediately.
	in := core.MustInstance(1, 5, []int64{0, 1, 6}, []int64{1, 1, 1})
	res, err := Alg1(in, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Validate(in, res.Schedule); err != nil {
		t.Fatal(err)
	}
	cal := res.Schedule.Calendar.Sorted()
	if len(cal) != 2 || cal[0].Start != 1 || cal[1].Start != 6 {
		t.Fatalf("calendar = %v, want calibrations at 1 and 6", cal)
	}
	if res.Triggers[0] != TriggerCount {
		t.Errorf("first trigger = %v, want count", res.Triggers[0])
	}
	if res.Triggers[1] != TriggerImmediate {
		t.Errorf("second trigger = %v, want immediate", res.Triggers[1])
	}
	if res.Schedule.Start(2) != 6 {
		t.Errorf("third job starts at %d, want 6", res.Schedule.Start(2))
	}
	// With the rule disabled the third job must instead wait.
	res2, err := Alg1(in, 10, WithoutImmediateCalibrations())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Triggers[1] == TriggerImmediate {
		t.Error("immediate trigger fired despite WithoutImmediateCalibrations")
	}
	if res2.Schedule.Start(2) <= 6 {
		t.Errorf("without immediate rule job 2 starts at %d, want delayed past 6",
			res2.Schedule.Start(2))
	}
}

func TestAlg1RequiresSingleMachineUnweighted(t *testing.T) {
	multi := core.MustInstance(2, 5, []int64{0}, []int64{1})
	if _, err := Alg1(multi, 10); err == nil {
		t.Error("Alg1 accepted P=2")
	}
	weighted := core.MustInstance(1, 5, []int64{0}, []int64{2})
	if _, err := Alg1(weighted, 10); err == nil {
		t.Error("Alg1 accepted weighted jobs")
	}
	if _, err := Alg1(core.MustInstance(1, 5, []int64{0}, []int64{1}), -1); err == nil {
		t.Error("Alg1 accepted negative G")
	}
}

func TestAlg1ZeroCalibrationCost(t *testing.T) {
	// G=0: every waiting job should be scheduled at its release time.
	in := core.MustInstance(1, 3, []int64{0, 4, 9}, []int64{1, 1, 1})
	res, err := Alg1(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Validate(in, res.Schedule); err != nil {
		t.Fatal(err)
	}
	for _, j := range in.Jobs {
		if res.Schedule.Start(j.ID) != j.Release {
			t.Errorf("job %d starts at %d, want release %d", j.ID, res.Schedule.Start(j.ID), j.Release)
		}
	}
}

func TestAlg1FastMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 1))
	for trial := 0; trial < 500; trial++ {
		in := randomInstance(rng, 1, false)
		g := int64(rng.IntN(40))
		fast, err := Alg1(in, g)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := Alg1(in, g, WithNaiveStepping())
		if err != nil {
			t.Fatal(err)
		}
		if err := core.Validate(in, fast.Schedule); err != nil {
			t.Fatalf("trial %d: fast schedule invalid: %v", trial, err)
		}
		if !sameSchedule(fast.Schedule, naive.Schedule) {
			t.Fatalf("trial %d (G=%d, T=%d): fast %v/%v != naive %v/%v",
				trial, g, in.T,
				fast.Schedule.Calendar, fast.Schedule.Assignments,
				naive.Schedule.Calendar, naive.Schedule.Assignments)
		}
	}
}

func TestAlg1ReleaseOrderPreserved(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	for trial := 0; trial < 100; trial++ {
		in := randomInstance(rng, 1, false)
		res, err := Alg1(in, int64(rng.IntN(30)))
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < in.N(); i++ {
			if res.Schedule.Start(i) <= res.Schedule.Start(i-1) {
				t.Fatalf("trial %d: jobs %d,%d scheduled out of release order", trial, i-1, i)
			}
		}
	}
}

func TestAlg2WeightedExample(t *testing.T) {
	// G=12, T=4. Heavy job (w=5) at 0: weight trigger 5*4 >= 12 fires at
	// t=0, so it is scheduled immediately.
	in := core.MustInstance(1, 4, []int64{0}, []int64{5})
	res, err := Alg2(in, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Start(0) != 0 || res.Triggers[0] != TriggerWeight {
		t.Fatalf("start %d trigger %v, want 0/weight", res.Schedule.Start(0), res.Triggers[0])
	}
}

func TestAlg2QueueFullTrigger(t *testing.T) {
	// T=2, G=100: weight trigger needs queued weight >= 50; flow needs 100.
	// Two light queued jobs hit |Q| = T = 2 first.
	in := core.MustInstance(1, 2, []int64{0, 1}, []int64{1, 1})
	res, err := Alg2(in, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Triggers[0] != TriggerQueueFull {
		t.Fatalf("trigger = %v, want queue-full", res.Triggers[0])
	}
	if res.Schedule.Calendar[0].Start != 1 {
		t.Errorf("calibrated at %d, want 1", res.Schedule.Calendar[0].Start)
	}
}

func TestAlg2SchedulesHeaviestFirst(t *testing.T) {
	// Three jobs queued when the machine calibrates; the heaviest must run
	// first regardless of release order.
	in := core.MustInstance(1, 3, []int64{0, 1, 2}, []int64{1, 2, 4})
	res, err := Alg2(in, 21) // weight trigger: sum*3 >= 21 -> sum >= 7 at t=2
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Validate(in, res.Schedule); err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Calendar[0].Start != 2 {
		t.Fatalf("calibrated at %d, want 2", res.Schedule.Calendar[0].Start)
	}
	// Job 2 (w=4) at t=2, job 1 (w=2) at 3, job 0 (w=1) at 4.
	if res.Schedule.Start(2) != 2 || res.Schedule.Start(1) != 3 || res.Schedule.Start(0) != 4 {
		t.Errorf("starts = %d,%d,%d; want heaviest first 2,3,4",
			res.Schedule.Start(2), res.Schedule.Start(1), res.Schedule.Start(0))
	}
	// Lightest-first ablation reverses the order.
	res2, err := Alg2(in, 21, WithLightestFirst())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Schedule.Start(0) >= res2.Schedule.Start(2) {
		t.Error("lightest-first did not schedule the light job first")
	}
}

func TestAlg2FastMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(202, 2))
	for trial := 0; trial < 500; trial++ {
		in := randomInstance(rng, 1, true)
		g := int64(rng.IntN(60))
		for _, opt := range [][]Option{nil, {WithLightestFirst()}} {
			fast, err := Alg2(in, g, opt...)
			if err != nil {
				t.Fatal(err)
			}
			naive, err := Alg2(in, g, append(opt, WithNaiveStepping())...)
			if err != nil {
				t.Fatal(err)
			}
			if err := core.Validate(in, fast.Schedule); err != nil {
				t.Fatalf("trial %d: invalid: %v", trial, err)
			}
			if !sameSchedule(fast.Schedule, naive.Schedule) {
				t.Fatalf("trial %d (G=%d): fast != naive", trial, g)
			}
		}
	}
}

func TestAlg3SingleMachineAgreesWithSpirit(t *testing.T) {
	// On P=1 Algorithm 3 still must produce a valid schedule with the same
	// job set; sanity-check against Alg1-style costs.
	in := core.MustInstance(1, 5, []int64{0, 1, 2}, []int64{1, 1, 1})
	res, err := Alg3(in, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Validate(in, res.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestAlg3FastMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(303, 3))
	for trial := 0; trial < 500; trial++ {
		p := 1 + rng.IntN(3)
		in := randomInstance(rng, p, false)
		g := int64(rng.IntN(60))
		fast, err := Alg3(in, g, WithoutObservationReplay())
		if err != nil {
			t.Fatal(err)
		}
		naive, err := Alg3(in, g, WithoutObservationReplay(), WithNaiveStepping())
		if err != nil {
			t.Fatal(err)
		}
		if err := core.Validate(in, fast.Schedule); err != nil {
			t.Fatalf("trial %d (P=%d G=%d T=%d): invalid: %v", trial, p, g, in.T, err)
		}
		if !sameSchedule(fast.Schedule, naive.Schedule) {
			t.Fatalf("trial %d (P=%d G=%d T=%d): fast != naive\nfast:  %v\nnaive: %v",
				trial, p, g, in.T, fast.Schedule.Assignments, naive.Schedule.Assignments)
		}
	}
}

func TestAlg3ReplayNeverWorse(t *testing.T) {
	// Observation 2.1 replay is optimal for the calendar, so it can only
	// lower the flow relative to the explicit packing.
	rng := rand.New(rand.NewPCG(404, 4))
	for trial := 0; trial < 300; trial++ {
		p := 1 + rng.IntN(3)
		in := randomInstance(rng, p, false)
		g := int64(rng.IntN(60))
		explicit, err := Alg3(in, g, WithoutObservationReplay())
		if err != nil {
			t.Fatal(err)
		}
		replayed, err := Alg3(in, g)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.Validate(in, replayed.Schedule); err != nil {
			t.Fatalf("trial %d: replay invalid: %v", trial, err)
		}
		if len(replayed.Schedule.Calendar) != len(explicit.Schedule.Calendar) {
			t.Fatalf("trial %d: replay changed the calendar size", trial)
		}
		ef := core.Flow(in, explicit.Schedule)
		rf := core.Flow(in, replayed.Schedule)
		if rf > ef {
			t.Fatalf("trial %d (P=%d G=%d T=%d): replay flow %d > explicit %d",
				trial, p, g, in.T, rf, ef)
		}
	}
}

func TestAlg3RejectsWeighted(t *testing.T) {
	in := core.MustInstance(2, 5, []int64{0}, []int64{3})
	if _, err := Alg3(in, 10); err == nil {
		t.Error("Alg3 accepted weighted jobs")
	}
}

func TestAssignTimesSimple(t *testing.T) {
	// Two jobs, one calibration at time 1 covering [1,4): heaviest first.
	in := core.MustInstance(1, 3, []int64{0, 1}, []int64{1, 5})
	s, err := AssignTimes(in, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Validate(in, s); err != nil {
		t.Fatal(err)
	}
	if s.Start(1) != 1 || s.Start(0) != 2 {
		t.Errorf("starts = %d,%d; want heavy at 1, light at 2", s.Start(1), s.Start(0))
	}
}

func TestAssignTimesRoundRobin(t *testing.T) {
	in := core.MustInstance(2, 3, []int64{0, 0}, []int64{1, 1})
	s, err := AssignTimes(in, []int64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Validate(in, s); err != nil {
		t.Fatal(err)
	}
	// Both jobs run at time 0, one per machine.
	if s.Start(0) != 0 || s.Start(1) != 0 {
		t.Errorf("starts = %d,%d, want both 0", s.Start(0), s.Start(1))
	}
	if s.Assignments[0].Machine == s.Assignments[1].Machine {
		t.Error("both jobs on one machine")
	}
}

func TestAssignTimesInsufficientCapacity(t *testing.T) {
	in := core.MustInstance(1, 2, []int64{0, 1, 2}, []int64{1, 1, 1})
	if _, err := AssignTimes(in, []int64{0}); err == nil {
		t.Error("accepted calendar with 2 slots for 3 jobs")
	}
	if _, err := AssignTimes(in, nil); err == nil {
		t.Error("accepted empty calendar for nonempty instance")
	}
	// Calibration entirely before the last job's release.
	late := core.MustInstance(1, 2, []int64{10}, []int64{1})
	if _, err := AssignTimes(late, []int64{0}); err == nil {
		t.Error("accepted calendar ending before release")
	}
}

func TestAssignCalendarRejectsBadMachine(t *testing.T) {
	in := core.MustInstance(1, 2, []int64{0}, []int64{1})
	_, err := AssignCalendar(in, core.Calendar{{Machine: 3, Start: 0}})
	if err == nil {
		t.Error("accepted calendar with machine out of range")
	}
}

// TestAssignTimesOptimalOnTinyInstances exhaustively checks Observation 2.1:
// among all assignments of jobs to the calendar's calibrated slots, the
// list schedule has minimum total weighted flow.
func TestAssignTimesOptimalOnTinyInstances(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 8))
	for trial := 0; trial < 200; trial++ {
		p := 1 + rng.IntN(2)
		n := 1 + rng.IntN(4)
		releases := make([]int64, n)
		weights := make([]int64, n)
		for i := range releases {
			releases[i] = int64(rng.IntN(6))
			weights[i] = 1 + int64(rng.IntN(4))
		}
		in := core.MustInstance(p, int64(1+rng.IntN(3)), releases, weights)
		// Random calendar of up to 3 calibrations.
		var times []int64
		for k := 0; k <= rng.IntN(3); k++ {
			times = append(times, int64(rng.IntN(8)))
		}
		got, err := AssignTimes(in, times)
		if err != nil {
			continue // infeasible calendar; nothing to compare
		}
		if err := core.Validate(in, got); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bestAssignmentBrute(in, got.Calendar)
		if gotFlow := core.Flow(in, got); gotFlow != want {
			t.Fatalf("trial %d: list schedule flow %d, brute-force best %d (times %v)",
				trial, gotFlow, want, times)
		}
	}
}

// bestAssignmentBrute enumerates all ways to place jobs into the calendar's
// calibrated (machine, time) slots and returns the minimum total flow.
func bestAssignmentBrute(in *core.Instance, cal core.Calendar) int64 {
	type slot struct {
		m int
		t int64
	}
	seen := map[slot]bool{}
	var slots []slot
	for _, c := range cal {
		for dt := int64(0); dt < in.T; dt++ {
			s := slot{c.Machine, c.Start + dt}
			if !seen[s] {
				seen[s] = true
				slots = append(slots, s)
			}
		}
	}
	const inf = int64(1) << 62
	best := inf
	used := make([]bool, len(slots))
	var rec func(j int, acc int64)
	rec = func(j int, acc int64) {
		if acc >= best {
			return
		}
		if j == in.N() {
			best = acc
			return
		}
		job := in.Jobs[j]
		for si, s := range slots {
			if used[si] || s.t < job.Release {
				continue
			}
			used[si] = true
			rec(j+1, acc+job.Flow(s.t))
			used[si] = false
		}
	}
	rec(0, 0)
	return best
}

func TestAlg1OnGeneratedWorkloads(t *testing.T) {
	// Larger smoke test: Poisson workloads at several densities must yield
	// valid schedules with every trigger accounted for.
	for _, lambda := range []float64{0.05, 0.3, 1.0} {
		spec := workload.Spec{
			N: 200, P: 1, T: 16, Seed: 9,
			Arrival: workload.ArrivalPoisson, Lambda: lambda,
		}
		in := spec.MustBuild()
		res, err := Alg1(in, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.Validate(in, res.Schedule); err != nil {
			t.Fatalf("lambda %.2f: %v", lambda, err)
		}
		if len(res.Triggers) != len(res.Schedule.Calendar) {
			t.Fatalf("lambda %.2f: %d triggers for %d calibrations",
				lambda, len(res.Triggers), len(res.Schedule.Calendar))
		}
	}
}

func TestTriggerString(t *testing.T) {
	names := map[Trigger]string{
		TriggerNone: "none", TriggerFlow: "flow", TriggerCount: "count",
		TriggerWeight: "weight", TriggerQueueFull: "queue-full", TriggerImmediate: "immediate",
	}
	for tr, want := range names {
		if tr.String() != want {
			t.Errorf("%d.String() = %q, want %q", tr, tr.String(), want)
		}
	}
}

// TestRoundRobinPlacementOptimal validates the part of Observation 2.1
// citing [8, Lemma 7]: assigning calibration times to machines in
// round-robin order is as good as any other machine placement. For tiny
// multi-machine calendars, compare AssignTimes against the best cost over
// every possible machine placement of the same times (with the exhaustive
// job-to-slot optimum evaluating each placement).
func TestRoundRobinPlacementOptimal(t *testing.T) {
	rng := rand.New(rand.NewPCG(88, 21))
	for trial := 0; trial < 120; trial++ {
		p := 2 + rng.IntN(2)
		n := 1 + rng.IntN(4)
		releases := make([]int64, n)
		weights := make([]int64, n)
		for i := range releases {
			releases[i] = int64(rng.IntN(5))
			weights[i] = 1 + int64(rng.IntN(4))
		}
		in := core.MustInstance(p, int64(1+rng.IntN(3)), releases, weights)
		nTimes := 1 + rng.IntN(3)
		times := make([]int64, nTimes)
		for i := range times {
			times[i] = int64(rng.IntN(6))
		}

		rr, err := AssignTimes(in, times)
		if err != nil {
			continue // infeasible even under round-robin; nothing to compare
		}
		rrCost := core.Flow(in, rr)

		// Best over all machine placements.
		best := int64(1) << 62
		placement := make([]int, nTimes)
		var rec func(i int)
		rec = func(i int) {
			if i == nTimes {
				cal := make(core.Calendar, nTimes)
				for k, tm := range times {
					cal[k] = core.Calibration{Machine: placement[k], Start: tm}
				}
				if f := bestAssignmentBrute(in, cal); f < best {
					best = f
				}
				return
			}
			for m := 0; m < p; m++ {
				placement[i] = m
				rec(i + 1)
			}
		}
		rec(0)
		if rrCost > best {
			t.Fatalf("trial %d (P=%d times %v jobs %v): round-robin flow %d > best placement %d",
				trial, p, times, in.Jobs, rrCost, best)
		}
	}
}
