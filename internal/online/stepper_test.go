package online

import (
	"math/rand/v2"
	"sort"
	"testing"

	"calibsched/internal/core"
)

// driveStepper runs a stepper over the instance's arrivals until all jobs
// are scheduled, returning the assembled schedule and triggers.
func driveStepper(st *Stepper, in *core.Instance) (*core.Schedule, []Trigger) {
	byTime := map[int64][]core.Job{}
	for _, j := range in.Jobs {
		byTime[j.Release] = append(byTime[j.Release], j)
	}
	scheduled := 0
	for scheduled < in.N() {
		ev := st.Step(byTime[st.Now()])
		if ev.Ran >= 0 {
			scheduled++
		}
		if st.Now() > in.MaxRelease()+1_000_000 {
			panic("stepper did not finish")
		}
	}
	return st.Schedule(in.N()), st.Triggers()
}

func TestStepperMatchesBatchAlg1(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 1))
	for trial := 0; trial < 300; trial++ {
		in := randomInstance(rng, 1, false)
		g := int64(rng.IntN(40))
		batch, err := Alg1(in, g)
		if err != nil {
			t.Fatal(err)
		}
		sched, triggers := driveStepper(NewAlg1Stepper(in.T, g), in)
		if err := core.Validate(in, sched); err != nil {
			t.Fatalf("trial %d: stepper schedule invalid: %v", trial, err)
		}
		if !sameSchedule(batch.Schedule, sched) {
			t.Fatalf("trial %d (G=%d T=%d): stepper != batch\nbatch: %v\nstep:  %v",
				trial, g, in.T, batch.Schedule.Assignments, sched.Assignments)
		}
		if len(triggers) != len(batch.Triggers) {
			t.Fatalf("trial %d: %d triggers vs batch %d", trial, len(triggers), len(batch.Triggers))
		}
		for i := range triggers {
			if triggers[i] != batch.Triggers[i] {
				t.Fatalf("trial %d: trigger %d = %v, batch %v", trial, i, triggers[i], batch.Triggers[i])
			}
		}
	}
}

func TestStepperMatchesBatchAlg2(t *testing.T) {
	rng := rand.New(rand.NewPCG(62, 2))
	for trial := 0; trial < 300; trial++ {
		in := randomInstance(rng, 1, true)
		g := int64(rng.IntN(50))
		for _, opt := range [][]Option{nil, {WithLightestFirst()}} {
			batch, err := Alg2(in, g, opt...)
			if err != nil {
				t.Fatal(err)
			}
			var st *Stepper
			if len(opt) == 0 {
				st = NewAlg2Stepper(in.T, g)
			} else {
				st = NewAlg2Stepper(in.T, g, WithLightestFirst())
			}
			sched, _ := driveStepper(st, in)
			if !sameSchedule(batch.Schedule, sched) {
				t.Fatalf("trial %d (G=%d): stepper != batch", trial, g)
			}
		}
	}
}

func TestStepperEvents(t *testing.T) {
	// One job at 0, T=20 >= G=10: count trigger at step 0, job runs at 0.
	st := NewAlg1Stepper(20, 10)
	if st.CalibratedNow() {
		t.Error("calibrated before any step")
	}
	ev := st.Step([]core.Job{{ID: 0, Release: 0, Weight: 1}})
	if !ev.Calibrated || ev.Trigger != TriggerCount || ev.Ran != 0 || ev.Time != 0 {
		t.Fatalf("event = %+v", ev)
	}
	if st.Now() != 1 {
		t.Errorf("Now = %d", st.Now())
	}
	if !st.CalibratedNow() {
		t.Error("interval should cover step 1")
	}
	if st.Pending() != 0 {
		t.Errorf("Pending = %d", st.Pending())
	}
	ev = st.Step(nil)
	if ev.Calibrated || ev.Ran != -1 {
		t.Errorf("idle step event = %+v", ev)
	}
}

func TestStepperRejectsTimeTravel(t *testing.T) {
	st := NewAlg1Stepper(5, 5)
	st.Step(nil) // step 0
	defer func() {
		if recover() == nil {
			t.Error("no panic on job released in the past")
		}
	}()
	st.Step([]core.Job{{ID: 0, Release: 0, Weight: 1}}) // step 1 fed a release-0 job
}

// TestStepperAdaptiveAdversary drives the Lemma 3.1 adversary literally:
// decisions are observed live instead of replayed.
func TestStepperAdaptiveAdversary(t *testing.T) {
	const T, G = 64, 32 // T >= G: Algorithm 1 calibrates at time 0
	st := NewAlg1Stepper(T, G)
	ev := st.Step([]core.Job{{ID: 0, Release: 0, Weight: 1}})
	if !ev.Calibrated {
		t.Fatal("expected eager calibration (T >= G)")
	}
	// Adversary answers with a job at time T.
	for st.Now() < T {
		st.Step(nil)
	}
	ran := -1
	for steps := 0; ran == -1 && steps < 10*int(T+G); steps++ {
		var arr []core.Job
		if st.Now() == T {
			arr = []core.Job{{ID: 1, Release: T, Weight: 1}}
		}
		ev := st.Step(arr)
		if ev.Ran == 1 {
			ran = 1
		}
	}
	if ran != 1 {
		t.Fatal("second job never ran")
	}
	sched := st.Schedule(2)
	in := core.MustInstance(1, T, []int64{0, T}, []int64{1, 1})
	if err := core.Validate(in, sched); err != nil {
		t.Fatal(err)
	}
	if got := core.TotalCost(in, sched, G); got != 2*G+2 {
		t.Errorf("adversary case-1 cost = %d, want %d", got, 2*G+2)
	}
}

// driveStepperSkipping is driveStepper with the IdleSkipper fast path:
// whenever the queue is empty and no job arrives at the current step, it
// jumps straight to the next release time instead of stepping tick by
// tick — the way the serving layer drives engines.
func driveStepperSkipping(st *Stepper, in *core.Instance) (*core.Schedule, []Trigger) {
	byTime := map[int64][]core.Job{}
	var times []int64
	for _, j := range in.Jobs {
		if _, ok := byTime[j.Release]; !ok {
			times = append(times, j.Release)
		}
		byTime[j.Release] = append(byTime[j.Release], j)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	scheduled := 0
	for scheduled < in.N() {
		if st.Pending() == 0 {
			if next, ok := nextReleaseAfter(times, st.Now()); ok && next > st.Now() {
				st.SkipIdle(next)
			}
		}
		ev := st.Step(byTime[st.Now()])
		if ev.Ran >= 0 {
			scheduled++
		}
		if st.Now() > in.MaxRelease()+1_000_000 {
			panic("stepper did not finish")
		}
	}
	return st.Schedule(in.N()), st.Triggers()
}

// nextReleaseAfter returns the first release time >= now.
func nextReleaseAfter(times []int64, now int64) (int64, bool) {
	for _, tm := range times {
		if tm >= now {
			return tm, true
		}
	}
	return 0, false
}

// TestSkipIdleMatchesIdleSteps pins the IdleSkipper contract
// differentially: over random sparse instances (releases stretched so
// long idle gaps occur mid-run), skipping idle stretches must yield a
// schedule, trigger sequence, and clock identical to literally stepping
// every tick.
func TestSkipIdleMatchesIdleSteps(t *testing.T) {
	rng := rand.New(rand.NewPCG(63, 3))
	for trial := 0; trial < 300; trial++ {
		in := randomInstance(rng, 1, trial%2 == 1)
		// Stretch releases to open idle gaps far longer than T.
		stretch := int64(1 + rng.IntN(50))
		releases := make([]int64, in.N())
		weights := make([]int64, in.N())
		for i, j := range in.Jobs {
			releases[i] = j.Release * stretch
			weights[i] = j.Weight
		}
		in = core.MustInstance(1, in.T, releases, weights).Canonicalize()
		g := int64(rng.IntN(40))

		mk := NewAlg2Stepper
		if trial%2 == 0 {
			mk = NewAlg1Stepper
		}
		refSched, refTriggers := driveStepper(mk(in.T, g), in)
		skipSt := mk(in.T, g)
		skipSched, skipTriggers := driveStepperSkipping(skipSt, in)

		if !sameSchedule(refSched, skipSched) {
			t.Fatalf("trial %d (stretch=%d G=%d): skip != literal\nref:  %v\nskip: %v",
				trial, stretch, g, refSched.Assignments, skipSched.Assignments)
		}
		if len(refTriggers) != len(skipTriggers) {
			t.Fatalf("trial %d: %d triggers vs %d", trial, len(skipTriggers), len(refTriggers))
		}
		for i := range refTriggers {
			if refTriggers[i] != skipTriggers[i] {
				t.Fatalf("trial %d: trigger %d = %v, ref %v", trial, i, skipTriggers[i], refTriggers[i])
			}
		}
	}
}

// TestSkipIdleGuards pins the edge contract: no-op when the target is in
// the past, panic when jobs are pending.
func TestSkipIdleGuards(t *testing.T) {
	st := NewAlg2Stepper(4, 8)
	st.SkipIdle(10)
	if st.Now() != 10 {
		t.Fatalf("Now = %d after SkipIdle(10)", st.Now())
	}
	st.SkipIdle(3) // past: no-op
	if st.Now() != 10 {
		t.Fatalf("Now = %d after no-op skip, want 10", st.Now())
	}
	st.Step([]core.Job{{ID: 0, Release: 10, Weight: 1}})
	if st.Pending() == 0 {
		t.Skip("job ran immediately; cannot exercise the pending guard")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SkipIdle with pending jobs did not panic")
		}
	}()
	st.SkipIdle(100)
}
