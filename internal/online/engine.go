package online

import (
	"fmt"
	"strings"

	"calibsched/internal/core"
)

// Engine is the incremental scheduling interface a serving layer drives:
// an online algorithm packaged as a state machine that consumes arrivals
// one time step at a time and can report its schedule so far at any
// moment. *Stepper implements it for Algorithms 1 and 2; future backends
// (Alg2Multi, the baselines) plug in by satisfying the same contract and
// registering an EngineSpec.
//
// The contract matches Stepper exactly: Step must be called for
// consecutive time steps starting at 0, each call fed only the jobs
// released at the current step.
type Engine interface {
	// Step simulates the current time step with the given arrivals and
	// advances the clock.
	Step(arrivals []core.Job) StepEvent
	// Now returns the next step Step will simulate.
	Now() int64
	// Pending returns the number of jobs waiting in the queue.
	Pending() int
	// CalibratedNow reports whether the machine is calibrated for the
	// next step.
	CalibratedNow() bool
	// Schedule assembles the schedule built so far for an n-job
	// instance; unscheduled jobs keep Start -1.
	Schedule(n int) *core.Schedule
	// Triggers returns the trigger behind each calendar entry so far.
	Triggers() []Trigger
}

var _ Engine = (*Stepper)(nil)

// IdleSkipper is the optional fast-forward extension of Engine: with an
// empty queue, no trigger can fire and no job can run, so every step is
// pure clock advancement — SkipIdle jumps the clock in O(1) where
// repeated Step(nil) calls would cost one call per tick. This is
// internal/simul's event-skipping optimization surfaced to serving-layer
// drivers; the contract is that SkipIdle(to) with Pending() == 0 leaves
// the engine in exactly the state that Step(nil) repeated (to - Now())
// times would. Callers must check Pending() first; implementations
// panic otherwise.
type IdleSkipper interface {
	// SkipIdle advances the clock to step `to` without simulating the
	// intervening (eventless) steps. No-op when to <= Now(); panics if
	// jobs are pending.
	SkipIdle(to int64)
}

var _ IdleSkipper = (*Stepper)(nil)

// EngineSpec describes one registered engine backend.
type EngineSpec struct {
	// Name is the identifier used by the serving API ("alg1", "alg2").
	Name string
	// Doc is a one-line description for listings and error messages.
	Doc string
	// UnitWeightsOnly marks engines that accept only weight-1 jobs
	// (Algorithm 1's unweighted analysis); the serving layer enforces
	// this at arrival time since the stepper itself cannot reject a
	// weight retroactively.
	UnitWeightsOnly bool
	// New constructs a fresh engine for calibration length T and cost G.
	New func(t, g int64, opts ...Option) Engine
	// Restore reconstructs an engine from a state snapshot produced by
	// its Snapshotter (crash recovery; see snapshot.go). nil for
	// backends without snapshot support — their sessions recover by
	// replaying the full command log instead.
	Restore func(t, g int64, state []byte, opts ...Option) (Engine, error)
}

// engineSpecs is the backend registry, in listing order.
var engineSpecs = []EngineSpec{
	{
		Name:            "alg1",
		Doc:             "Algorithm 1: unweighted single machine, 3-competitive",
		UnitWeightsOnly: true,
		New: func(t, g int64, opts ...Option) Engine {
			return NewAlg1Stepper(t, g, opts...)
		},
		Restore: restoreStepper("alg1", NewAlg1Stepper),
	},
	{
		Name: "alg2",
		Doc:  "Algorithm 2: weighted single machine, 12-competitive",
		New: func(t, g int64, opts ...Option) Engine {
			return NewAlg2Stepper(t, g, opts...)
		},
		Restore: restoreStepper("alg2", NewAlg2Stepper),
	},
}

// Engines lists the registered engine backends.
func Engines() []EngineSpec {
	return append([]EngineSpec(nil), engineSpecs...)
}

// EngineNames lists the registered backend names, for error messages and
// flag docs.
func EngineNames() []string {
	names := make([]string, len(engineSpecs))
	for i, s := range engineSpecs {
		names[i] = s.Name
	}
	return names
}

// LookupEngine finds a backend by name.
func LookupEngine(name string) (EngineSpec, bool) {
	for _, s := range engineSpecs {
		if s.Name == name {
			return s, true
		}
	}
	return EngineSpec{}, false
}

// NewEngine validates the parameters and constructs the named backend.
func NewEngine(name string, t, g int64, opts ...Option) (Engine, error) {
	spec, ok := LookupEngine(name)
	if !ok {
		return nil, fmt.Errorf("online: unknown engine %q (have %s)", name, strings.Join(EngineNames(), ", "))
	}
	if t < 1 {
		return nil, fmt.Errorf("online: calibration length T = %d, want >= 1", t)
	}
	if g < 0 {
		return nil, fmt.Errorf("online: calibration cost G = %d, want >= 0", g)
	}
	return spec.New(t, g, opts...), nil
}
