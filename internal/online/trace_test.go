package online

import (
	"encoding/json"
	"math/rand/v2"
	"testing"

	"calibsched/internal/core"
	"calibsched/internal/trace"
	"calibsched/internal/workload"
)

// runTraced runs the named algorithm with the given sink attached.
func runTraced(t *testing.T, alg string, in *core.Instance, g int64, sink trace.Sink) *Result {
	t.Helper()
	var opts []Option
	if sink != nil {
		opts = append(opts, WithSink(sink))
	}
	var res *Result
	var err error
	switch alg {
	case "alg1":
		res, err = Alg1(in, g, opts...)
	case "alg2":
		res, err = Alg2(in, g, opts...)
	case "alg3":
		res, err = Alg3(in, g, opts...)
	case "alg2multi":
		res, err = Alg2Multi(in, g, opts...)
	default:
		t.Fatalf("unknown alg %s", alg)
	}
	if err != nil {
		t.Fatalf("%s: %v", alg, err)
	}
	return res
}

// TestTracingDifferential is the acceptance gate of the observability
// layer: attaching a sink must not change the schedule in any way. The
// traced and untraced runs are serialized and compared byte for byte.
func TestTracingDifferential(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for _, tc := range []struct {
		alg      string
		p        int
		weighted bool
	}{
		{"alg1", 1, false},
		{"alg2", 1, true},
		{"alg3", 3, false},
		{"alg2multi", 3, true},
	} {
		for trial := 0; trial < 40; trial++ {
			in := randomInstance(rng, tc.p, tc.weighted)
			g := int64(rng.IntN(40))
			plain := runTraced(t, tc.alg, in, g, nil)
			rec := &trace.Recorder{}
			traced := runTraced(t, tc.alg, in, g, rec)
			pb, err := json.Marshal(plain.Schedule)
			if err != nil {
				t.Fatal(err)
			}
			tb, err := json.Marshal(traced.Schedule)
			if err != nil {
				t.Fatal(err)
			}
			if string(pb) != string(tb) {
				t.Fatalf("%s trial %d: schedule changed under tracing\nuntraced: %s\ntraced:   %s", tc.alg, trial, pb, tb)
			}
			if len(rec.Events()) != plain.Schedule.NumCalibrations() {
				t.Fatalf("%s trial %d: %d events for %d calibrations", tc.alg, trial, len(rec.Events()), plain.Schedule.NumCalibrations())
			}
		}
	}
}

// TestDecisionEventsExplainEveryCalibration checks the per-event contract
// on the single-machine algorithms: event i describes calendar entry i
// (time, rule, sequencing, prospective flow, accrued cost).
func TestDecisionEventsExplainEveryCalibration(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 3))
	for _, alg := range []string{"alg1", "alg2"} {
		for trial := 0; trial < 40; trial++ {
			in := randomInstance(rng, 1, alg == "alg2")
			g := int64(rng.IntN(40))
			rec := &trace.Recorder{}
			res := runTraced(t, alg, in, g, rec)
			evs := rec.Events()
			if len(evs) != len(res.Schedule.Calendar) {
				t.Fatalf("%s: %d events, %d calendar entries", alg, len(evs), len(res.Schedule.Calendar))
			}
			for i, ev := range evs {
				c := res.Schedule.Calendar[i]
				if ev.Time != c.Start || ev.Machine != c.Machine {
					t.Fatalf("%s event %d: at (m%d, t%d), calendar says (m%d, t%d)", alg, i, ev.Machine, ev.Time, c.Machine, c.Start)
				}
				if want := ruleName(alg, res.Triggers[i]); ev.Rule != want {
					t.Fatalf("%s event %d: rule %q, want %q", alg, i, ev.Rule, want)
				}
				if ev.Seq != int64(i+1) || ev.Calibrations != i+1 {
					t.Fatalf("%s event %d: seq %d calibrations %d", alg, i, ev.Seq, ev.Calibrations)
				}
				if ev.AccruedCost != g*int64(i+1) {
					t.Fatalf("%s event %d: accrued cost %d, want %d", alg, i, ev.AccruedCost, g*int64(i+1))
				}
				if ev.ProspectiveFlow != res.FlowAtCalibration[i] {
					t.Fatalf("%s event %d: prospective flow %d, want FlowAtCalibration %d", alg, i, ev.ProspectiveFlow, res.FlowAtCalibration[i])
				}
				if ev.QueueLen < 1 {
					t.Fatalf("%s event %d: calibrated with empty queue snapshot", alg, i)
				}
			}
		}
	}
}

// TestStepperTracingMatchesBatch proves the stepper emits the same
// decision stream as the batch run, and that tracing leaves its schedule
// byte-identical.
func TestStepperTracingMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 9))
	for _, alg := range []string{"alg1", "alg2"} {
		for trial := 0; trial < 40; trial++ {
			in := randomInstance(rng, 1, alg == "alg2")
			g := int64(rng.IntN(40))

			newStepperFor := func(sink trace.Sink) *Stepper {
				var opts []Option
				if sink != nil {
					opts = append(opts, WithSink(sink))
				}
				if alg == "alg1" {
					return NewAlg1Stepper(in.T, g, opts...)
				}
				return NewAlg2Stepper(in.T, g, opts...)
			}

			plainSched, _ := driveStepper(newStepperFor(nil), in)
			rec := &trace.Recorder{}
			tracedSched, _ := driveStepper(newStepperFor(rec), in)
			pb, _ := json.Marshal(plainSched)
			tb, _ := json.Marshal(tracedSched)
			if string(pb) != string(tb) {
				t.Fatalf("%s trial %d: stepper schedule changed under tracing", alg, trial)
			}

			batchRec := &trace.Recorder{}
			runTraced(t, alg, in, g, batchRec)
			sevs, bevs := rec.Events(), batchRec.Events()
			if len(sevs) != len(bevs) {
				t.Fatalf("%s trial %d: stepper emitted %d events, batch %d", alg, trial, len(sevs), len(bevs))
			}
			for i := range sevs {
				if sevs[i] != bevs[i] {
					t.Fatalf("%s trial %d event %d: stepper %+v != batch %+v", alg, trial, i, sevs[i], bevs[i])
				}
			}
		}
	}
}

// TestRuleNamesDocumented pins the emitters' rule identifiers to the
// justification table in internal/trace: every rule an algorithm can fire
// must have a RuleDoc entry, so -explain never prints an undocumented
// rule.
func TestRuleNamesDocumented(t *testing.T) {
	fireable := map[string][]Trigger{
		"alg1":      {TriggerFlow, TriggerCount, TriggerImmediate},
		"alg2":      {TriggerFlow, TriggerWeight, TriggerQueueFull},
		"alg3":      {TriggerFlow, TriggerCount},
		"alg2multi": {TriggerFlow, TriggerWeight, TriggerQueueFull},
	}
	for alg, triggers := range fireable {
		for _, tr := range triggers {
			rule := ruleName(alg, tr)
			if trace.RuleDoc(rule) == "" {
				t.Errorf("rule %s has no RuleDoc entry", rule)
			}
		}
	}
	if trace.RuleDoc("offline.dp.cover-open") == "" {
		t.Error("rule offline.dp.cover-open has no RuleDoc entry")
	}
}

// benchStepperInstance is a dense weighted workload for the tracing
// overhead benchmarks.
func benchStepperInstance(b *testing.B) *core.Instance {
	b.Helper()
	in, err := (workload.Spec{
		N: 2000, P: 1, T: 16, Seed: 42,
		Arrival: workload.ArrivalPoisson, Lambda: 0.4,
		Weights: workload.WeightUniform, WMax: 10,
	}).Build()
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// driveBench steps the engine across the full horizon.
func driveBench(st *Stepper, in *core.Instance) {
	byTime := map[int64][]core.Job{}
	var last int64
	for _, j := range in.Jobs {
		byTime[j.Release] = append(byTime[j.Release], j)
		if j.Release > last {
			last = j.Release
		}
	}
	for st.Pending() > 0 || st.Now() <= last {
		st.Step(byTime[st.Now()])
	}
}

// BenchmarkStepperUntraced is the baseline: no sink configured anywhere.
// BenchmarkStepperNilSink passes an explicitly nil sink through the
// option; the acceptance contract is that it stays within noise of the
// baseline (both reduce to the same nil tracer guard).
// BenchmarkStepperRingSink measures the full cost of live tracing.
func BenchmarkStepperUntraced(b *testing.B) {
	in := benchStepperInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		driveBench(NewAlg2Stepper(in.T, 64), in)
	}
}

func BenchmarkStepperNilSink(b *testing.B) {
	in := benchStepperInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		driveBench(NewAlg2Stepper(in.T, 64, WithSink(nil)), in)
	}
}

func BenchmarkStepperRingSink(b *testing.B) {
	in := benchStepperInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		driveBench(NewAlg2Stepper(in.T, 64, WithSink(trace.NewRing(1024))), in)
	}
}
