package online

import (
	"math/rand/v2"
	"testing"

	"calibsched/internal/core"
)

func TestAlg2MultiValidOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 5))
	for trial := 0; trial < 400; trial++ {
		p := 1 + rng.IntN(3)
		in := randomInstance(rng, p, true)
		g := int64(rng.IntN(60))
		res, err := Alg2Multi(in, g)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.Validate(in, res.Schedule); err != nil {
			t.Fatalf("trial %d (P=%d G=%d T=%d): %v", trial, p, g, in.T, err)
		}
		if len(res.Triggers) != res.Schedule.NumCalibrations() {
			t.Fatalf("trial %d: %d triggers for %d calibrations",
				trial, len(res.Triggers), res.Schedule.NumCalibrations())
		}
	}
}

func TestAlg2MultiFastMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(72, 6))
	for trial := 0; trial < 400; trial++ {
		p := 1 + rng.IntN(3)
		in := randomInstance(rng, p, true)
		g := int64(rng.IntN(60))
		fast, err := Alg2Multi(in, g, WithoutObservationReplay())
		if err != nil {
			t.Fatal(err)
		}
		naive, err := Alg2Multi(in, g, WithoutObservationReplay(), WithNaiveStepping())
		if err != nil {
			t.Fatal(err)
		}
		if !sameSchedule(fast.Schedule, naive.Schedule) {
			t.Fatalf("trial %d (P=%d G=%d T=%d): fast != naive", trial, p, g, in.T)
		}
	}
}

func TestAlg2MultiReplayNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewPCG(73, 7))
	for trial := 0; trial < 200; trial++ {
		p := 1 + rng.IntN(3)
		in := randomInstance(rng, p, true)
		g := int64(rng.IntN(60))
		explicit, err := Alg2Multi(in, g, WithoutObservationReplay())
		if err != nil {
			t.Fatal(err)
		}
		replayed, err := Alg2Multi(in, g)
		if err != nil {
			t.Fatal(err)
		}
		if core.Flow(in, replayed.Schedule) > core.Flow(in, explicit.Schedule) {
			t.Fatalf("trial %d: replay increased flow", trial)
		}
	}
}

func TestAlg2MultiServesHeavyJobsFirst(t *testing.T) {
	// Two machines, one covered interval, heavy job arrives later but must
	// run before lighter queued work.
	in := core.MustInstance(2, 6, []int64{0, 0, 1}, []int64{1, 1, 50})
	res, err := Alg2Multi(in, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Validate(in, res.Schedule); err != nil {
		t.Fatal(err)
	}
	heavy := in.Jobs[2] // weight 50 at release 1
	if heavy.Weight != 50 {
		t.Fatalf("job ordering changed: %+v", in.Jobs)
	}
	if res.Schedule.Start(heavy.ID) != heavy.Release {
		t.Errorf("heavy job starts at %d, want its release %d",
			res.Schedule.Start(heavy.ID), heavy.Release)
	}
}

func TestAlg2MultiUnweightedSanityVsAlg3(t *testing.T) {
	// On unweighted instances Alg2Multi's weight trigger equals Algorithm
	// 3's count trigger, so costs should track closely (not necessarily
	// equal: the queue-full trigger differs).
	rng := rand.New(rand.NewPCG(74, 8))
	for trial := 0; trial < 100; trial++ {
		p := 1 + rng.IntN(3)
		in := randomInstance(rng, p, false)
		g := int64(rng.IntN(40))
		a2m, err := Alg2Multi(in, g)
		if err != nil {
			t.Fatal(err)
		}
		a3, err := Alg3(in, g)
		if err != nil {
			t.Fatal(err)
		}
		c2, c3 := core.TotalCost(in, a2m.Schedule, g), core.TotalCost(in, a3.Schedule, g)
		if c2 > 3*c3+3 || c3 > 3*c2+3 {
			t.Fatalf("trial %d (P=%d G=%d T=%d): costs diverged wildly: %d vs %d",
				trial, p, g, in.T, c2, c3)
		}
	}
}
