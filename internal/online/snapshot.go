package online

import (
	"encoding/json"
	"fmt"
	"sort"

	"calibsched/internal/core"
)

// Engine state snapshots.
//
// calibstore (internal/store) persists each serving session as a
// write-ahead log of its deterministic command stream plus periodic
// snapshots that let recovery skip replaying the whole history. The
// snapshot needs the engine's internal state in a stable, versioned
// encoding; engines opt in by implementing Snapshotter and registering a
// Restore constructor on their EngineSpec. Backends that do not (a future
// Alg2Multi engine, say) still persist correctly — the serving layer then
// never truncates their log and recovery replays it from the first
// record, which is slower but equally exact because engines are
// deterministic functions of their command stream.

// Snapshotter is implemented by engines whose full state can be captured
// for crash recovery. MarshalState must be deterministic given the same
// engine state (recovered and never-killed servers are differentially
// compared) and must round-trip exactly through the spec's Restore.
type Snapshotter interface {
	// MarshalState encodes the engine's complete state. The encoding is
	// owned by the engine; callers treat it as opaque bytes.
	MarshalState() ([]byte, error)
}

var _ Snapshotter = (*Stepper)(nil)

// stepperStateVersion versions the Stepper encoding; decode rejects
// anything newer (older versions would be migrated here if the schema
// ever changes).
const stepperStateVersion = 1

// startEntry is one (job, start) pair of the stepper's assignment map,
// kept sorted by job ID so the encoding is deterministic.
type startEntry struct {
	Job   int   `json:"job"`
	Start int64 `json:"start"`
}

// stepperState is the serialized form of a Stepper. Queue holds the
// waiting jobs sorted by ID: the queue's pop order is a total order
// (ties always break on ID), so rebuilding the heap by pushing in ID
// order reproduces the exact pop sequence regardless of the original
// heap layout.
type stepperState struct {
	Version      int                `json:"v"`
	Alg          string             `json:"alg"`
	T            int64              `json:"t"`
	G            int64              `json:"g"`
	Now          int64              `json:"now"`
	CalStart     int64              `json:"cal_start"`
	CalEnd       int64              `json:"cal_end"`
	HadInterval  bool               `json:"had_interval"`
	IntervalFlow int64              `json:"interval_flow"`
	Queue        []core.Job         `json:"queue"`
	Calendar     []core.Calibration `json:"calendar"`
	Triggers     []Trigger          `json:"triggers"`
	Starts       []startEntry       `json:"starts"`
}

// MarshalState encodes the stepper for crash recovery; see Snapshotter.
func (s *Stepper) MarshalState() ([]byte, error) {
	st := stepperState{
		Version:      stepperStateVersion,
		Alg:          s.pol.alg,
		T:            s.T,
		G:            s.g,
		Now:          s.t,
		CalStart:     s.calStart,
		CalEnd:       s.calEnd,
		HadInterval:  s.hadInterval,
		IntervalFlow: s.intervalFlow,
		Queue:        append([]core.Job(nil), s.q.Jobs()...),
		Calendar:     append([]core.Calibration(nil), s.calendar...),
		Triggers:     append([]Trigger(nil), s.triggers...),
		Starts:       make([]startEntry, 0, len(s.starts)),
	}
	sort.Slice(st.Queue, func(a, b int) bool { return st.Queue[a].ID < st.Queue[b].ID })
	for id, start := range s.starts {
		st.Starts = append(st.Starts, startEntry{Job: id, Start: start})
	}
	sort.Slice(st.Starts, func(a, b int) bool { return st.Starts[a].Job < st.Starts[b].Job })
	return json.Marshal(st)
}

// loadState restores a freshly constructed stepper to the encoded state.
// The stepper must have been built by the same spec (alg, T, G) that
// produced the encoding.
func (s *Stepper) loadState(alg string, data []byte) error {
	var st stepperState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("online: decoding %s state: %w", alg, err)
	}
	if st.Version != stepperStateVersion {
		return fmt.Errorf("online: %s state version %d, want %d", alg, st.Version, stepperStateVersion)
	}
	if st.Alg != alg {
		return fmt.Errorf("online: state is for engine %q, restoring %q", st.Alg, alg)
	}
	if st.T != s.T || st.G != s.g {
		return fmt.Errorf("online: state has T=%d G=%d, engine has T=%d G=%d", st.T, st.G, s.T, s.g)
	}
	if st.Now < 0 {
		return fmt.Errorf("online: state clock %d, want >= 0", st.Now)
	}
	if len(st.Triggers) != len(st.Calendar) {
		return fmt.Errorf("online: state has %d triggers for %d calendar entries", len(st.Triggers), len(st.Calendar))
	}
	for _, tr := range st.Triggers {
		if tr == TriggerNone || tr > TriggerImmediate {
			return fmt.Errorf("online: state has invalid trigger %d", tr)
		}
	}
	if st.CalStart >= 0 && st.CalEnd != st.CalStart+st.T {
		return fmt.Errorf("online: state interval [%d,%d) inconsistent with T=%d", st.CalStart, st.CalEnd, st.T)
	}
	for _, j := range st.Queue {
		if j.Release > st.Now {
			return fmt.Errorf("online: queued job %d released at %d after state clock %d", j.ID, j.Release, st.Now)
		}
		if j.Weight < 1 {
			return fmt.Errorf("online: queued job %d has weight %d, want >= 1", j.ID, j.Weight)
		}
	}
	s.t = st.Now
	s.calStart, s.calEnd = st.CalStart, st.CalEnd
	s.hadInterval = st.HadInterval
	s.intervalFlow = st.IntervalFlow
	for _, j := range st.Queue {
		s.q.Push(j)
	}
	s.calendar = append(s.calendar[:0], st.Calendar...)
	s.triggers = append(s.triggers[:0], st.Triggers...)
	for _, e := range st.Starts {
		if e.Start < 0 || e.Start >= st.Now {
			return fmt.Errorf("online: job %d started at %d outside [0,%d)", e.Job, e.Start, st.Now)
		}
		s.starts[e.Job] = e.Start
	}
	// Keep the decision-event sequence continuous across recovery: the
	// next calibration's trace Seq follows the restored calendar.
	if s.tracer != nil {
		s.tracer.seq = int64(len(s.calendar))
	}
	return nil
}

// restoreStepper adapts a stepper constructor into an EngineSpec.Restore.
func restoreStepper(alg string, build func(t, g int64, opts ...Option) *Stepper) func(t, g int64, state []byte, opts ...Option) (Engine, error) {
	return func(t, g int64, state []byte, opts ...Option) (Engine, error) {
		st := build(t, g, opts...)
		if err := st.loadState(alg, state); err != nil {
			return nil, err
		}
		return st, nil
	}
}

// RestoreEngine validates the parameters and reconstructs the named
// backend from a state snapshot produced by its Snapshotter. Backends
// without snapshot support return an error; their sessions recover by
// full-log replay instead.
func RestoreEngine(name string, t, g int64, state []byte, opts ...Option) (Engine, error) {
	spec, ok := LookupEngine(name)
	if !ok {
		return nil, fmt.Errorf("online: unknown engine %q", name)
	}
	if spec.Restore == nil {
		return nil, fmt.Errorf("online: engine %q has no snapshot support", name)
	}
	if t < 1 {
		return nil, fmt.Errorf("online: calibration length T = %d, want >= 1", t)
	}
	if g < 0 {
		return nil, fmt.Errorf("online: calibration cost G = %d, want >= 0", g)
	}
	return spec.Restore(t, g, state, opts...)
}
