package online

import (
	"strings"
	"testing"

	"calibsched/internal/core"
)

func TestEngineRegistry(t *testing.T) {
	names := EngineNames()
	if len(names) != 2 || names[0] != "alg1" || names[1] != "alg2" {
		t.Fatalf("EngineNames = %v, want [alg1 alg2]", names)
	}
	if len(Engines()) != len(names) {
		t.Fatalf("Engines and EngineNames disagree")
	}
	a1, ok := LookupEngine("alg1")
	if !ok || !a1.UnitWeightsOnly {
		t.Errorf("alg1 spec = %+v ok=%v, want unit-weights-only", a1, ok)
	}
	a2, ok := LookupEngine("alg2")
	if !ok || a2.UnitWeightsOnly {
		t.Errorf("alg2 spec = %+v ok=%v, want weighted", a2, ok)
	}
	if _, ok := LookupEngine("opt"); ok {
		t.Error("LookupEngine accepted an unregistered name")
	}
}

func TestNewEngineValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		alg  string
		t, g int64
		want string // substring of the error, "" = success
	}{
		{"alg1 ok", "alg1", 10, 32, ""},
		{"alg2 ok", "alg2", 10, 0, ""},
		{"unknown", "alg9", 10, 32, "unknown engine"},
		{"bad T", "alg1", 0, 32, "calibration length"},
		{"bad G", "alg2", 10, -1, "calibration cost"},
	} {
		eng, err := NewEngine(tc.alg, tc.t, tc.g)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			} else if eng == nil {
				t.Errorf("%s: nil engine", tc.name)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: no error", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestEngineMatchesStepper pins the interface to the concrete stepper: an
// engine built by the registry behaves exactly like the directly
// constructed stepper on the same instance.
func TestEngineMatchesStepper(t *testing.T) {
	in := core.MustInstance(1, 8, []int64{0, 1, 5, 14}, []int64{3, 1, 2, 5})
	const g = 20
	eng, err := NewEngine("alg2", in.T, g)
	if err != nil {
		t.Fatal(err)
	}
	st := NewAlg2Stepper(in.T, g)
	byTime := map[int64][]core.Job{}
	for _, j := range in.Jobs {
		byTime[j.Release] = append(byTime[j.Release], j)
	}
	for eng.Pending() > 0 || eng.Now() <= in.MaxRelease() || !done(eng, in.N()) {
		if eng.Now() != st.Now() {
			t.Fatalf("clocks diverged: engine %d stepper %d", eng.Now(), st.Now())
		}
		evE := eng.Step(byTime[eng.Now()])
		evS := st.Step(byTime[st.Now()])
		if evE != evS {
			t.Fatalf("events diverged at %d: %+v vs %+v", evE.Time, evE, evS)
		}
		if eng.Now() > 10_000 {
			t.Fatal("engine did not finish")
		}
	}
	if !sameSchedule(eng.Schedule(in.N()), st.Schedule(in.N())) {
		t.Fatal("schedules diverged")
	}
}

// done reports whether every one of the n jobs is assigned.
func done(e Engine, n int) bool {
	s := e.Schedule(n)
	for _, a := range s.Assignments {
		if a.Start < 0 {
			return false
		}
	}
	return true
}
