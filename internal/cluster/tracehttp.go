package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"calibsched/internal/server"
	"calibsched/internal/trace"
)

// Fleet-wide trace stitching: the gateway serves the same two trace
// routes as a single node, but answers with the whole cluster's view —
// its own proxy spans joined with every ready backend's fragment of the
// trace. Unready or unreachable nodes are skipped (their fragments are
// unreachable anyway), so stitching is best-effort by design, like the
// merged session listing.

// handleTraceList merges the gateway's trace index with every ready
// backend's. One trace seen from several places collapses into a single
// summary: the longest root wins (the gateway's proxy span encloses the
// backend's http span, so the outermost observer naturally describes the
// whole request), retention is sticky, and span counts sum.
func (g *Gateway) handleTraceList(w http.ResponseWriter, r *http.Request) {
	byID := make(map[string]*trace.TraceSummary)
	var order []string
	var stats trace.StoreStats
	merge := func(sums []trace.TraceSummary) {
		for _, sum := range sums {
			cur, ok := byID[sum.TraceID]
			if !ok {
				s := sum
				byID[sum.TraceID] = &s
				order = append(order, sum.TraceID)
				continue
			}
			cur.Spans += sum.Spans
			cur.Retained = cur.Retained || sum.Retained
			if sum.RootDurationNS > cur.RootDurationNS {
				cur.RootDurationNS = sum.RootDurationNS
				cur.RootPhase = sum.RootPhase
				cur.StartUnixNS = sum.StartUnixNS
			}
		}
	}
	addStats := func(st trace.StoreStats) {
		stats.Traces += st.Traces
		stats.Capacity += st.Capacity
		stats.SpansAdded += st.SpansAdded
		stats.SpansTruncated += st.SpansTruncated
		stats.TracesEvicted += st.TracesEvicted
	}
	if g.spans != nil {
		merge(g.spans.Summaries())
		addStats(g.spans.Stats())
		stats.SlowThresholdNS = g.spans.Stats().SlowThresholdNS
	}
	for _, node := range g.ring.Nodes() {
		if !g.health.Ready(node) {
			continue
		}
		res, err := g.send(http.MethodGet, node, "/v1/traces", nil)
		if err != nil || res.status != http.StatusOK {
			g.log.Warn("listing node traces", "node", node, "err", err)
			continue
		}
		var list server.TraceListResponse
		if err := json.Unmarshal(res.body, &list); err != nil {
			g.log.Warn("decoding node traces", "node", node, "err", err)
			continue
		}
		merge(list.Traces)
		addStats(list.Stats)
	}
	merged := make([]trace.TraceSummary, 0, len(order))
	for _, id := range order {
		merged = append(merged, *byID[id])
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].StartUnixNS < merged[j].StartUnixNS })
	g.metrics.proxied.Add(1)
	writeGatewayJSON(w, http.StatusOK, server.TraceListResponse{Traces: merged, Stats: stats})
}

// handleTraceGet stitches one trace: the gateway's own spans plus every
// ready backend's fragment, joined on the shared trace ID and sorted by
// start time (the proxy root starts first, so the tree reads outermost
// to innermost). Backend spans that did not name their node get the
// backend's base URL stamped in, which is what tells two fragments of a
// migrated session's trace apart.
func (g *Gateway) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("traceID")
	var spans []trace.Span
	if g.spans != nil {
		spans = append(spans, g.spans.Trace(id)...)
	}
	for _, node := range g.ring.Nodes() {
		if !g.health.Ready(node) {
			continue
		}
		res, err := g.send(http.MethodGet, node, "/v1/traces/"+id, nil)
		if err != nil {
			g.log.Warn("fetching node trace", "node", node, "trace", id, "err", err)
			continue
		}
		if res.status != http.StatusOK {
			continue // 404: this node holds no fragment of the trace
		}
		var frag server.TraceGetResponse
		if err := json.Unmarshal(res.body, &frag); err != nil {
			g.log.Warn("decoding node trace", "node", node, "trace", id, "err", err)
			continue
		}
		for i := range frag.Spans {
			if frag.Spans[i].Node == "" {
				frag.Spans[i].Node = node
			}
		}
		spans = append(spans, frag.Spans...)
	}
	if len(spans) == 0 {
		writeGatewayError(w, http.StatusNotFound, fmt.Sprintf("unknown trace %q", id))
		return
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	g.metrics.proxied.Add(1)
	writeGatewayJSON(w, http.StatusOK, server.TraceGetResponse{TraceID: id, Spans: spans})
}
