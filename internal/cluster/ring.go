// Package cluster is the calibsched cluster plane: a consistent-hash
// ring that maps session IDs onto calibserved backends, a health prober
// over their /readyz endpoints, an HTTP gateway (cmd/calibgate) that
// proxies the full v1 API along the ring, live session migration built
// on the export/import endpoints, and gateway-level aggregation of
// per-node /metrics. DESIGN.md §13 documents the ring, the handoff
// protocol, and its failure matrix.
//
// The gateway holds no session state: routing derives entirely from the
// ring (plus a transient override table while a rebalance is in flight),
// so any gateway with the same backend set routes identically, and the
// session state itself lives in the backends' WALs. Sessions being
// deterministic command streams is what makes migration exact — the
// importing node replays the shipped snapshot + WAL tail through the
// same code path as crash recovery.
package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// Ring is a consistent-hash ring with virtual nodes. Each node is
// expanded into vnodes points on a uint64 circle; a key is owned by the
// node of the first point clockwise from the key's hash. Adding or
// removing a node therefore moves only the keys that fall into the
// arcs its points cover — about 1/N of the keyspace — which is exactly
// the set of sessions a rebalance must migrate.
//
// Reads (Owner, Nodes) take a shared lock and run concurrently with each
// other; Add/Remove take the exclusive lock. Safe for concurrent use.
type Ring struct {
	vnodes int

	mu     sync.RWMutex
	points []point // sorted by hash
	nodes  map[string]struct{}
}

type point struct {
	hash uint64
	node string
}

// DefaultVNodes is the per-node virtual-node count used when NewRing is
// given 0. 128 points per node keeps the expected per-node load within
// ~±9% (1/sqrt(128)) of fair for realistic cluster sizes.
const DefaultVNodes = 128

// NewRing builds an empty ring; vnodes <= 0 selects DefaultVNodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]struct{})}
}

// Add inserts a node's virtual points. Adding a present node is a no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", node, i)), node: node})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Remove deletes a node's virtual points. Removing an absent node is a
// no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Owner returns the node owning key, or "" and false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	h := hash64(key)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	// First point at or clockwise of the key's hash, wrapping past the
	// top of the circle back to the first point.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node, true
}

// Nodes returns the member nodes, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Has reports node membership.
func (r *Ring) Has(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.nodes[node]
	return ok
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// hash64 hashes a string to a point on the ring: FNV-1a 64 for speed
// and zero dependencies, then a splitmix64 finalizer because raw FNV of
// short similar strings ("s-000001", "s-000002") clusters in the low
// bits — the finalizer's avalanche spreads them across the full circle.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
