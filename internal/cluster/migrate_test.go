package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"testing"

	"calibsched/internal/server"
)

// callNoFatal is call for non-test goroutines (no *testing.T methods).
func callNoFatal(method, url string) (int, string) {
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		return 0, err.Error()
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err.Error()
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(raw)
}

// feed applies one deterministic command batch to a session through
// base (a gateway or a backend), so the differential test can drive two
// copies of a session in lockstep.
func feed(t *testing.T, base, id string, phase int) {
	t.Helper()
	// Each phase steps the clock 9 ticks, so releases sit at phase*9+1
	// onward to stay ahead of the session's Now (past releases are 409s).
	rel := int64(phase*9 + 1)
	jobs := []server.JobSpec{
		{Release: rel, Weight: 3},
		{Release: rel + 2, Weight: 1},
		{Release: rel + 3, Weight: 5},
	}
	var ar server.ArrivalsResponse
	if status := call(t, "POST", base+"/v1/sessions/"+id+"/arrivals", server.ArrivalsRequest{Jobs: jobs}, &ar); status != 200 || ar.Accepted != 3 {
		t.Fatalf("arrivals phase %d on %s: status %d resp %+v", phase, base, status, ar)
	}
	if status := call(t, "POST", base+"/v1/sessions/"+id+"/step", server.StepRequest{Steps: 9}, nil); status != 200 {
		t.Fatalf("step phase %d on %s: status %d", phase, base, status)
	}
}

// finish drains a session and returns the raw schedule bytes.
func finish(t *testing.T, base, id string) []byte {
	t.Helper()
	var sr server.StepResponse
	if status := call(t, "POST", base+"/v1/sessions/"+id+"/step", server.StepRequest{Steps: 80}, &sr); status != 200 || !sr.Done {
		t.Fatalf("final step on %s: status %d done=%v", base, status, sr.Done)
	}
	status, raw := callRaw(t, "GET", base+"/v1/sessions/"+id+"/schedule", nil)
	if status != 200 {
		t.Fatalf("schedule on %s: status %d", base, status)
	}
	return raw
}

// TestMigrationDifferential is the subsystem's core correctness claim:
// a session migrated mid-stream (drain → snapshot + WAL tail → replay →
// resume) must produce a schedule byte-identical to the same command
// stream served by one node that never moved. The control session gets
// the same pinned ID on a standalone backend, so the two schedule
// responses must match to the byte.
func TestMigrationDifferential(t *testing.T) {
	b1, b2 := bootBackend(t), bootBackend(t)
	control := bootBackend(t) // never a ring member
	g, gw := bootGateway(t, b1.URL, b2.URL)

	var info server.SessionInfo
	if status := call(t, "POST", gw.URL+"/v1/sessions", server.CreateSessionRequest{T: 10, G: 4, Alg: "alg2"}, &info); status != 201 {
		t.Fatalf("create via gateway: status %d", status)
	}
	id := info.ID
	if status := call(t, "POST", control.URL+"/v1/sessions", server.CreateSessionRequest{T: 10, G: 4, Alg: "alg2", ID: id}, nil); status != 201 {
		t.Fatalf("create control: status %d", status)
	}

	feed(t, gw.URL, id, 0)
	feed(t, control.URL, id, 0)

	from, _ := g.route(id)
	var mig MigrateResponse
	if status := call(t, "POST", gw.URL+"/v1/cluster/migrate", MigrateRequest{Session: id}, &mig); status != 200 {
		t.Fatalf("migrate: status %d", status)
	}
	if mig.From != from || mig.To == from || mig.Session != id {
		t.Fatalf("migrate response %+v, expected move away from %s", mig, from)
	}
	// The source really let go and the target really has it.
	if status := call(t, "GET", mig.From+"/v1/sessions/"+id, nil, nil); status != 404 {
		t.Fatalf("session still on source after migration: status %d", status)
	}
	if status := call(t, "GET", mig.To+"/v1/sessions/"+id, nil, nil); status != 200 {
		t.Fatalf("session missing on target after migration: status %d", status)
	}

	// Keep streaming commands through the gateway post-migration.
	feed(t, gw.URL, id, 1)
	feed(t, control.URL, id, 1)
	feed(t, gw.URL, id, 2)
	feed(t, control.URL, id, 2)

	migrated := finish(t, gw.URL, id)
	unmigrated := finish(t, control.URL, id)
	if !bytes.Equal(migrated, unmigrated) {
		t.Fatalf("migrated schedule diverged from unmigrated control:\nmigrated:   %s\nunmigrated: %s", migrated, unmigrated)
	}
}

// TestMigrationRoundTripBack moves a session away and back; both hops
// must land and the session must stay fully functional.
func TestMigrationRoundTripBack(t *testing.T) {
	b1, b2 := bootBackend(t), bootBackend(t)
	g, gw := bootGateway(t, b1.URL, b2.URL)

	var info server.SessionInfo
	if status := call(t, "POST", gw.URL+"/v1/sessions", server.CreateSessionRequest{T: 8, G: 2, Alg: "alg2"}, &info); status != 201 {
		t.Fatalf("create: status %d", status)
	}
	feed(t, gw.URL, info.ID, 0)
	home, _ := g.route(info.ID)

	var m1 MigrateResponse
	if status := call(t, "POST", gw.URL+"/v1/cluster/migrate", MigrateRequest{Session: info.ID}, &m1); status != 200 {
		t.Fatalf("first migrate: status %d", status)
	}
	// Off its ring owner: an override must be pinning it.
	g.mu.RLock()
	_, pinned := g.overrides[info.ID]
	g.mu.RUnlock()
	if !pinned {
		t.Fatal("no override for a session migrated off its ring owner")
	}
	var m2 MigrateResponse
	if status := call(t, "POST", gw.URL+"/v1/cluster/migrate", MigrateRequest{Session: info.ID, Target: home}, &m2); status != 200 {
		t.Fatalf("migrate back: status %d", status)
	}
	if m2.To != home {
		t.Fatalf("second migration went to %s, want %s", m2.To, home)
	}
	// Back on the ring owner: the override must have lifted.
	g.mu.RLock()
	_, pinned = g.overrides[info.ID]
	g.mu.RUnlock()
	if pinned {
		t.Fatal("override survived migration back to the ring owner")
	}
	feed(t, gw.URL, info.ID, 1)
	if raw := finish(t, gw.URL, info.ID); len(raw) == 0 {
		t.Fatal("empty schedule after double migration")
	}
}

// TestJoinRebalance grows the cluster under load: after a third node
// joins, exactly the ring-moved sessions migrate, every session remains
// reachable through the gateway, and no override is left standing.
func TestJoinRebalance(t *testing.T) {
	b1, b2, b3 := bootBackend(t), bootBackend(t), bootBackend(t)
	g, gw := bootGateway(t, b1.URL, b2.URL)

	const n = 12
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		var info server.SessionInfo
		if status := call(t, "POST", gw.URL+"/v1/sessions", server.CreateSessionRequest{T: 10, G: 3, Alg: "alg2"}, &info); status != 201 {
			t.Fatalf("create %d: status %d", i, status)
		}
		feed(t, gw.URL, info.ID, 0)
		ids = append(ids, info.ID)
	}

	var resp RebalanceResponse
	if status := call(t, "POST", gw.URL+"/v1/cluster/join", JoinRequest{Node: b3.URL}, &resp); status != 200 {
		t.Fatalf("join: status %d", status)
	}
	if len(resp.Failed) != 0 {
		t.Fatalf("join rebalance failures: %v", resp.Failed)
	}
	if len(resp.Members) != 3 {
		t.Fatalf("members after join: %v", resp.Members)
	}
	// Ring-owner placement: every session answers on exactly the node the
	// ring names now, and the gateway routes it there (100% >= the 99%
	// acceptance bar).
	moved := 0
	for _, id := range ids {
		want, _ := g.ring.Owner(id)
		if want == b3.URL {
			moved++
		}
		if got, _ := g.route(id); got != want {
			t.Fatalf("session %s routes to %s, ring says %s", id, got, want)
		}
		if status := call(t, "GET", gw.URL+"/v1/sessions/"+id, nil, nil); status != 200 {
			t.Fatalf("session %s unreachable after join: status %d", id, status)
		}
		if status := call(t, "GET", want+"/v1/sessions/"+id, nil, nil); status != 200 {
			t.Fatalf("session %s not on its ring owner %s: status %d", id, want, status)
		}
	}
	if resp.Moved != moved {
		t.Fatalf("join moved %d sessions, ring ownership changed for %d", resp.Moved, moved)
	}
	g.mu.RLock()
	standing := len(g.overrides)
	g.mu.RUnlock()
	if standing != 0 {
		t.Fatalf("%d overrides left standing after a clean rebalance", standing)
	}
	// The sessions still work where they landed.
	for _, id := range ids {
		feed(t, gw.URL, id, 1)
	}
}

// TestLeaveRebalance drains a node out: its sessions migrate to the
// survivors and remain reachable; the departed node holds nothing.
func TestLeaveRebalance(t *testing.T) {
	b1, b2 := bootBackend(t), bootBackend(t)
	_, gw := bootGateway(t, b1.URL, b2.URL)

	const n = 8
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		var info server.SessionInfo
		if status := call(t, "POST", gw.URL+"/v1/sessions", server.CreateSessionRequest{T: 6, G: 2, Alg: "alg2"}, &info); status != 201 {
			t.Fatalf("create %d: status %d", i, status)
		}
		ids = append(ids, info.ID)
	}
	var resp RebalanceResponse
	if status := call(t, "POST", gw.URL+"/v1/cluster/leave", LeaveRequest{Node: b2.URL}, &resp); status != 200 {
		t.Fatalf("leave: status %d", status)
	}
	if len(resp.Failed) != 0 {
		t.Fatalf("leave rebalance failures: %v", resp.Failed)
	}
	if len(resp.Members) != 1 || resp.Members[0] != b1.URL {
		t.Fatalf("members after leave: %v", resp.Members)
	}
	for _, id := range ids {
		if status := call(t, "GET", gw.URL+"/v1/sessions/"+id, nil, nil); status != 200 {
			t.Fatalf("session %s unreachable after leave: status %d", id, status)
		}
		if status := call(t, "GET", b2.URL+"/v1/sessions/"+id, nil, nil); status != 404 {
			t.Fatalf("session %s still on the departed node: status %d", id, status)
		}
	}
	var list server.SessionListResponse
	if status := call(t, "GET", b2.URL+"/v1/sessions", nil, &list); status != 200 || len(list.Sessions) != 0 {
		t.Fatalf("departed node still holds %d sessions", len(list.Sessions))
	}
}

// TestMigrateValidation covers the admin plane's refusals.
func TestMigrateValidation(t *testing.T) {
	b1, b2 := bootBackend(t), bootBackend(t)
	g, gw := bootGateway(t, b1.URL, b2.URL)

	if status := call(t, "POST", gw.URL+"/v1/cluster/migrate", MigrateRequest{}, nil); status != 400 {
		t.Fatalf("empty session: status %d, want 400", status)
	}
	// Unknown session: the source's export 404 passes through.
	if status := call(t, "POST", gw.URL+"/v1/cluster/migrate", MigrateRequest{Session: "g-nope-000001"}, nil); status != 404 {
		t.Fatalf("unknown session: status %d, want 404", status)
	}
	var info server.SessionInfo
	if status := call(t, "POST", gw.URL+"/v1/sessions", server.CreateSessionRequest{T: 5, G: 1, Alg: "alg2"}, &info); status != 201 {
		t.Fatalf("create: status %d", status)
	}
	if status := call(t, "POST", gw.URL+"/v1/cluster/migrate", MigrateRequest{Session: info.ID, Target: "http://127.0.0.1:1"}, nil); status != 400 {
		t.Fatalf("non-member target: status %d, want 400", status)
	}
	if status := call(t, "POST", gw.URL+"/v1/cluster/join", JoinRequest{Node: b2.URL}, nil); status != 409 {
		t.Fatalf("duplicate join: status %d, want 409", status)
	}
	if status := call(t, "POST", gw.URL+"/v1/cluster/leave", LeaveRequest{Node: "http://127.0.0.1:2"}, nil); status != 404 {
		t.Fatalf("leave non-member: status %d, want 404", status)
	}
	// A held admin semaphore answers 409 instead of queueing.
	g.admin <- struct{}{}
	if status := call(t, "POST", gw.URL+"/v1/cluster/migrate", MigrateRequest{Session: info.ID}, nil); status != 409 {
		t.Fatalf("busy admin: status %d, want 409", status)
	}
	<-g.admin
	// Migrating to the current owner is a no-op success.
	owner, _ := g.route(info.ID)
	var mig MigrateResponse
	if status := call(t, "POST", gw.URL+"/v1/cluster/migrate", MigrateRequest{Session: info.ID, Target: owner}, &mig); status != 200 {
		t.Fatalf("self-migrate: status %d", status)
	}
	if mig.From != owner || mig.To != owner {
		t.Fatalf("self-migrate response %+v", mig)
	}
}

// TestMigrationUnderTraffic migrates one session while another is being
// driven concurrently through the gateway; the bystander must never see
// an error (race coverage for route/override/handoff interleavings).
func TestMigrationUnderTraffic(t *testing.T) {
	b1, b2 := bootBackend(t), bootBackend(t)
	_, gw := bootGateway(t, b1.URL, b2.URL)

	var mover, bystander server.SessionInfo
	if status := call(t, "POST", gw.URL+"/v1/sessions", server.CreateSessionRequest{T: 10, G: 3, Alg: "alg2"}, &mover); status != 201 {
		t.Fatalf("create mover: status %d", status)
	}
	if status := call(t, "POST", gw.URL+"/v1/sessions", server.CreateSessionRequest{T: 10, G: 3, Alg: "alg2"}, &bystander); status != 201 {
		t.Fatalf("create bystander: status %d", status)
	}
	feed(t, gw.URL, mover.ID, 0)

	done := make(chan error, 1)
	go func() {
		for i := 0; i < 40; i++ {
			status, body := callNoFatal("GET", gw.URL+"/v1/sessions/"+bystander.ID)
			if status != 200 {
				done <- fmt.Errorf("bystander read %d: status %d body %s", i, status, body)
				return
			}
		}
		done <- nil
	}()
	if status := call(t, "POST", gw.URL+"/v1/cluster/migrate", MigrateRequest{Session: mover.ID}, nil); status != 200 {
		t.Fatalf("migrate under traffic: status %d", status)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	feed(t, gw.URL, mover.ID, 1)
}
