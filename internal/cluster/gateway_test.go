package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"calibsched/internal/server"
)

// bootBackend starts one in-memory calibserved serving layer.
func bootBackend(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := server.New(server.Config{})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("backend shutdown: %v", err)
		}
	})
	return ts
}

// bootGateway starts a gateway over the given backends with health
// probing disabled (every member ready), the mode unit tests use.
func bootGateway(t *testing.T, backends ...string) (*Gateway, *httptest.Server) {
	t.Helper()
	g, err := NewGateway(Options{Backends: backends, VNodes: 16})
	if err != nil {
		t.Fatalf("NewGateway: %v", err)
	}
	ts := httptest.NewServer(g)
	t.Cleanup(func() {
		ts.Close()
		g.Close()
	})
	return g, ts
}

// call issues a JSON request and decodes the JSON response.
func call(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	status, raw := callRaw(t, method, url, body)
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding response %q: %v", method, url, raw, err)
		}
	}
	return status
}

// callRaw issues a JSON request and returns the raw response bytes.
func callRaw(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func TestGatewayProxiesSessionAPI(t *testing.T) {
	b1, b2 := bootBackend(t), bootBackend(t)
	g, gw := bootGateway(t, b1.URL, b2.URL)

	var info server.SessionInfo
	if status := call(t, "POST", gw.URL+"/v1/sessions", server.CreateSessionRequest{T: 10, G: 20, Alg: "alg2"}, &info); status != 201 {
		t.Fatalf("create: status %d", status)
	}
	if !strings.HasPrefix(info.ID, "g-") {
		t.Fatalf("gateway did not mint the id: %q", info.ID)
	}
	owner, ok := g.route(info.ID)
	if !ok {
		t.Fatal("no route for created session")
	}
	// The session must live exactly where the ring says: present on the
	// owner, absent elsewhere.
	other := b1.URL
	if owner == b1.URL {
		other = b2.URL
	}
	if status := call(t, "GET", owner+"/v1/sessions/"+info.ID, nil, nil); status != 200 {
		t.Fatalf("session missing on ring owner: status %d", status)
	}
	if status := call(t, "GET", other+"/v1/sessions/"+info.ID, nil, nil); status != 404 {
		t.Fatalf("session present off the ring owner: status %d", status)
	}

	var ar server.ArrivalsResponse
	if status := call(t, "POST", gw.URL+"/v1/sessions/"+info.ID+"/arrivals", server.ArrivalsRequest{
		Jobs: []server.JobSpec{{Release: 0, Weight: 2}, {Release: 3, Weight: 1}},
	}, &ar); status != 200 || ar.Accepted != 2 {
		t.Fatalf("arrivals via gateway: status %d resp %+v", status, ar)
	}
	var sr server.StepResponse
	if status := call(t, "POST", gw.URL+"/v1/sessions/"+info.ID+"/step", server.StepRequest{Steps: 60}, &sr); status != 200 || !sr.Done {
		t.Fatalf("step via gateway: status %d resp %+v", status, sr)
	}
	var sched server.ScheduleResponse
	if status := call(t, "GET", gw.URL+"/v1/sessions/"+info.ID+"/schedule", nil, &sched); status != 200 || sched.Assigned != 2 {
		t.Fatalf("schedule via gateway: status %d resp %+v", status, sched)
	}
	var tr server.TraceResponse
	if status := call(t, "GET", gw.URL+"/v1/sessions/"+info.ID+"/trace", nil, &tr); status != 200 || tr.Session != info.ID {
		t.Fatalf("trace via gateway: status %d resp %+v", status, tr)
	}

	var list server.SessionListResponse
	if status := call(t, "GET", gw.URL+"/v1/sessions", nil, &list); status != 200 || len(list.Sessions) != 1 {
		t.Fatalf("list via gateway: status %d, %d sessions", status, len(list.Sessions))
	}
	if status := call(t, "DELETE", gw.URL+"/v1/sessions/"+info.ID, nil, nil); status != 204 {
		t.Fatalf("delete via gateway: status %d", status)
	}
	if status := call(t, "GET", gw.URL+"/v1/sessions/"+info.ID, nil, nil); status != 404 {
		t.Fatalf("session survived delete: status %d", status)
	}
	// Backend errors pass through untouched (404 for a session that
	// never existed, not a gateway 5xx).
	if status := call(t, "GET", gw.URL+"/v1/sessions/g-nope-000001", nil, nil); status != 404 {
		t.Fatalf("unknown session via gateway: status %d", status)
	}
}

func TestGatewayPinsClientSuppliedID(t *testing.T) {
	b1, b2 := bootBackend(t), bootBackend(t)
	g, gw := bootGateway(t, b1.URL, b2.URL)
	var info server.SessionInfo
	if status := call(t, "POST", gw.URL+"/v1/sessions", server.CreateSessionRequest{T: 5, G: 3, Alg: "alg2", ID: "pin-42"}, &info); status != 201 {
		t.Fatalf("create: status %d", status)
	}
	if info.ID != "pin-42" {
		t.Fatalf("id = %q", info.ID)
	}
	owner, _ := g.route("pin-42")
	ringOwner, _ := g.ring.Owner("pin-42")
	if owner != ringOwner {
		t.Fatalf("route %q disagrees with ring %q", owner, ringOwner)
	}
}

func TestGatewayBlocksInternalEndpoints(t *testing.T) {
	b1 := bootBackend(t)
	_, gw := bootGateway(t, b1.URL)
	if status := call(t, "POST", gw.URL+"/v1/sessions/import", map[string]string{"id": "x"}, nil); status != 403 {
		t.Fatalf("import via gateway: status %d, want 403", status)
	}
	if status := call(t, "POST", gw.URL+"/v1/sessions/x/export", nil, nil); status != 403 {
		t.Fatalf("export via gateway: status %d, want 403", status)
	}
}

func TestGatewaySolveRouting(t *testing.T) {
	b1, b2 := bootBackend(t), bootBackend(t)
	_, gw := bootGateway(t, b1.URL, b2.URL)
	req := server.SolveRequest{T: 3, Kind: "flow", K: 2, Jobs: []server.JobSpec{
		{Release: 0, Weight: 1}, {Release: 2, Weight: 1}, {Release: 9, Weight: 1},
	}}
	var sub server.SolveSubmitResponse
	if status := call(t, "POST", gw.URL+"/v1/solve", req, &sub); status != 202 && status != 200 {
		t.Fatalf("solve submit: status %d", status)
	}
	if !strings.Contains(sub.ID, "~") {
		t.Fatalf("solve id %q is not a composite gateway handle", sub.ID)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st server.SolveStatusResponse
		if status := call(t, "GET", gw.URL+"/v1/solve/"+sub.ID, nil, &st); status != 200 {
			t.Fatalf("solve get: status %d", status)
		}
		if st.State == "done" {
			if st.Flow == nil {
				t.Fatalf("done without flow: %+v", st)
			}
			if st.ID != sub.ID {
				t.Fatalf("status id %q, want %q", st.ID, sub.ID)
			}
			break
		}
		if st.State == "failed" {
			t.Fatalf("solve failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("solve did not finish in time")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if status := call(t, "GET", gw.URL+"/v1/solve/not-composite", nil, nil); status != 400 {
		t.Fatalf("bare solve handle: status %d, want 400", status)
	}
	if status := call(t, "GET", gw.URL+"/v1/solve/deadbeef~h-1", nil, nil); status != 404 {
		t.Fatalf("departed-node solve handle: status %d, want 404", status)
	}
}

// TestGatewayDeadBackend covers the fail-open path: a backend that
// stops answering turns into 502s (transport) on first contact, flips
// the health table via the dial-error fast path, and subsequent
// requests answer 503 + Retry-After without waiting on a probe cycle.
func TestGatewayDeadBackend(t *testing.T) {
	b1 := bootBackend(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	g, err := NewGateway(Options{
		Backends:       []string{b1.URL, deadURL},
		VNodes:         16,
		HealthInterval: 50 * time.Millisecond,
		ProbeTimeout:   200 * time.Millisecond,
		Retries:        1,
		RetryBackoff:   5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewGateway: %v", err)
	}
	gw := httptest.NewServer(g)
	defer gw.Close()
	defer g.Close()

	// Find an ID owned by the dead node.
	var deadID string
	for i := 0; ; i++ {
		id := g.newSessionID()
		if owner, _ := g.ring.Owner(id); owner == deadURL {
			deadID = id
			break
		}
		if i > 10_000 {
			t.Fatal("could not find an id hashing to the dead node")
		}
	}

	// First contact: dial failure → 502 (or 503 if a probe already ran).
	status, _ := callRaw(t, "GET", gw.URL+"/v1/sessions/"+deadID, nil)
	if status != 502 && status != 503 {
		t.Fatalf("dead-node request: status %d, want 502 or 503", status)
	}
	// The dial error marked the node unready: now it is a fast 503 with
	// Retry-After, the fail-open contract.
	req, _ := http.NewRequest("GET", gw.URL+"/v1/sessions/"+deadID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("second dead-node request: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	// The surviving shard keeps serving.
	var info server.SessionInfo
	for i := 0; i < 10_000; i++ {
		id := g.newSessionID()
		if owner, _ := g.ring.Owner(id); owner == b1.URL {
			if status := call(t, "POST", gw.URL+"/v1/sessions", server.CreateSessionRequest{T: 5, G: 3, Alg: "alg2", ID: id}, &info); status != 201 {
				t.Fatalf("create on surviving shard: status %d", status)
			}
			break
		}
	}
	if info.ID == "" {
		t.Fatal("could not place a session on the surviving shard")
	}
	if status := call(t, "GET", gw.URL+"/v1/sessions/"+info.ID, nil, nil); status != 200 {
		t.Fatalf("surviving shard unreachable: status %d", status)
	}
}

// TestAggregatedMetrics drives traffic through two backends and checks
// the gateway's merged /metrics: valid 0.0.4 exposition, counters that
// sum across nodes, per-node gauges, merged histograms, and the
// gateway's own families.
func TestAggregatedMetrics(t *testing.T) {
	b1, b2 := bootBackend(t), bootBackend(t)
	_, gw := bootGateway(t, b1.URL, b2.URL)

	// Create enough sessions to touch both backends with high odds.
	for i := 0; i < 8; i++ {
		var info server.SessionInfo
		if status := call(t, "POST", gw.URL+"/v1/sessions", server.CreateSessionRequest{T: 5, G: 3, Alg: "alg2"}, &info); status != 201 {
			t.Fatalf("create %d: status %d", i, status)
		}
		if status := call(t, "POST", gw.URL+"/v1/sessions/"+info.ID+"/step", server.StepRequest{Steps: 3}, nil); status != 200 {
			t.Fatalf("step %d: status %d", i, status)
		}
	}

	status, body := callRaw(t, "GET", gw.URL+"/metrics", nil)
	if status != 200 {
		t.Fatalf("metrics: status %d", status)
	}
	text := string(body)
	validateExposition(t, text)

	// Counters sum across nodes: the aggregated created count must cover
	// at least the 8 sessions this test made (shared expvar registry
	// means both backends report the same process-global totals here, so
	// only a lower bound is assertable in-process; the multi-process
	// smoke test pins exact sums).
	created := sampleValue(t, text, "calibserved_sessions_created")
	if created < 8 {
		t.Fatalf("aggregated sessions_created = %v, want >= 8", created)
	}
	for _, want := range []string{
		"# TYPE calibserved_sessions_created counter",
		"# TYPE calibserved_sessions_active gauge",
		"# TYPE calibserved_step_latency_seconds histogram",
		"calibserved_step_latency_seconds_bucket{le=\"+Inf\"}",
		"# TYPE calibgate_requests_proxied counter",
		"# TYPE calibgate_node_up gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("aggregated metrics missing %q", want)
		}
	}
	// Per-node gauges carry a node label for each backend.
	for _, node := range []string{b1.URL, b2.URL} {
		if !strings.Contains(text, "calibserved_sessions_active{node=\""+node+"\"}") {
			t.Errorf("no per-node gauge sample for %s", node)
		}
	}
	// Histogram merge: the +Inf bucket equals the _count line.
	inf := sampleValue(t, text, `calibserved_step_latency_seconds_bucket{le="+Inf"}`)
	cnt := sampleValue(t, text, "calibserved_step_latency_seconds_count")
	if inf != cnt {
		t.Errorf("+Inf bucket %v != count %v", inf, cnt)
	}
}

// validateExposition is a strict Prometheus 0.0.4 line validator: every
// line is a well-formed comment or a sample whose name was declared by
// a preceding # TYPE, and no family is declared twice.
func validateExposition(t *testing.T, text string) {
	t.Helper()
	declared := map[string]string{}
	var cur string
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line inside exposition", ln+1)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("line %d: malformed TYPE comment %q", ln+1, line)
			}
			name, typ := fields[2], fields[3]
			if typ != "counter" && typ != "gauge" && typ != "histogram" && typ != "summary" && typ != "untyped" {
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			if _, dup := declared[name]; dup {
				t.Fatalf("line %d: family %s declared twice", ln+1, name)
			}
			declared[name] = typ
			cur = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, _, _, ok := parseSample(line)
		if !ok {
			t.Fatalf("line %d: unparseable sample %q", ln+1, line)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if name != cur && base != cur {
			if _, ok := declared[name]; !ok && declared[base] == "" {
				t.Fatalf("line %d: sample %q outside its family block (current %q)", ln+1, name, cur)
			}
		}
	}
}

// sampleValue finds one sample line by its exact name{labels} head.
func sampleValue(t *testing.T, text, head string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		name, labels, v, ok := parseSample(line)
		if !ok {
			continue
		}
		full := name
		if labels != "" {
			full += "{" + labels + "}"
		}
		if full == head {
			return v
		}
	}
	t.Fatalf("no sample %q in exposition", head)
	return 0
}
