package cluster

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Cluster-wide /metrics: the gateway scrapes every ready backend's
// Prometheus 0.0.4 exposition and merges the families — counters
// summed, gauges re-emitted per node under a node label, histograms
// merged bucket-by-bucket — then appends its own calibgate_* counters.
// The output is itself valid 0.0.4 exposition, deterministic in order,
// so one scrape of the gateway observes the whole cluster. Float
// arithmetic here is reporting-only, like internal/server/metrics
// (exactarith exemption).

// promFamily is one merged metric family.
type promFamily struct {
	name string
	typ  string // "counter", "gauge", or "histogram"

	// counter: summed per label-set (calibserved counters are unlabeled,
	// but summing per label-set keeps the merge general).
	counterSums  map[string]float64
	counterOrder []string

	// gauge: one sample per (node, original label-set).
	gauges []gaugeSample

	// histogram: one cumulative bucket curve per node, merged at render
	// time over the union of every node's bounds. Nodes are kept apart
	// until then because bucket sets can differ across versions or
	// configurations — summing per exact `le` string would silently
	// produce a non-monotone (invalid) histogram whenever they do.
	histNodes map[string]*nodeHist
	histOrder []string
	histSum   float64
	histCnt   float64
}

// nodeHist is one node's cumulative histogram curve: counts per bound,
// in exposition order.
type nodeHist struct {
	buckets map[string]float64
	leOrder []string
}

// valueAt evaluates the node's cumulative step function at an arbitrary
// bound: the count at the largest own bound <= le, 0 below the first.
// This is exact at the node's own bounds and a safe (monotone)
// underestimate between them, which is what makes the union-bucket merge
// a valid histogram.
func (nh *nodeHist) valueAt(le string) float64 {
	target, err := strconv.ParseFloat(le, 64)
	if err != nil {
		// A non-numeric bound: only an exact match means anything.
		return nh.buckets[le]
	}
	best := math.Inf(-1)
	var val float64
	for bound, v := range nh.buckets {
		bv, err := strconv.ParseFloat(bound, 64)
		if err != nil {
			continue
		}
		if bv <= target && bv > best {
			best, val = bv, v
		}
	}
	return val
}

type gaugeSample struct {
	node   string
	labels string // original label text, without braces ("" when none)
	value  float64
}

// aggregator merges expositions from many nodes.
type aggregator struct {
	families map[string]*promFamily
	order    []string
}

func newAggregator() *aggregator {
	return &aggregator{families: make(map[string]*promFamily)}
}

func (a *aggregator) family(name, typ string) *promFamily {
	f, ok := a.families[name]
	if !ok {
		f = &promFamily{name: name, typ: typ, counterSums: make(map[string]float64), histNodes: make(map[string]*nodeHist)}
		a.families[name] = f
		a.order = append(a.order, name)
	}
	return f
}

// ingest parses one node's exposition text into the aggregate. Lines it
// cannot attribute (no preceding # TYPE, malformed values) are skipped:
// aggregation is a best-effort read over remote output, not a
// validator.
func (a *aggregator) ingest(node, text string) {
	var cur *promFamily
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) == 4 && fields[1] == "TYPE" {
				cur = a.family(fields[2], fields[3])
			}
			continue
		}
		if cur == nil {
			continue
		}
		name, labels, value, ok := parseSample(line)
		if !ok {
			continue
		}
		switch cur.typ {
		case "counter":
			if name != cur.name {
				continue
			}
			if _, seen := cur.counterSums[labels]; !seen {
				cur.counterOrder = append(cur.counterOrder, labels)
			}
			cur.counterSums[labels] += value
		case "gauge":
			if name != cur.name {
				continue
			}
			cur.gauges = append(cur.gauges, gaugeSample{node: node, labels: labels, value: value})
		case "histogram":
			switch name {
			case cur.name + "_bucket":
				le := labelValue(labels, "le")
				if le == "" {
					continue
				}
				nh, ok := cur.histNodes[node]
				if !ok {
					nh = &nodeHist{buckets: make(map[string]float64)}
					cur.histNodes[node] = nh
					cur.histOrder = append(cur.histOrder, node)
				}
				if _, seen := nh.buckets[le]; !seen {
					nh.leOrder = append(nh.leOrder, le)
				}
				nh.buckets[le] += value
			case cur.name + "_sum":
				cur.histSum += value
			case cur.name + "_count":
				cur.histCnt += value
			}
		}
	}
}

// parseSample splits `name{labels} value` or `name value`. An
// OpenMetrics exemplar suffix (` # {trace_id="..."} 0.0042`) is dropped
// first — the aggregate reports fleet totals; per-node exemplars do not
// survive the merge.
func parseSample(line string) (name, labels string, value float64, ok bool) {
	if i := strings.Index(line, " # "); i >= 0 {
		line = strings.TrimSpace(line[:i])
	}
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", "", 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(line[sp+1:]), 64)
	if err != nil {
		return "", "", 0, false
	}
	head := strings.TrimSpace(line[:sp])
	if i := strings.IndexByte(head, '{'); i >= 0 {
		if !strings.HasSuffix(head, "}") {
			return "", "", 0, false
		}
		return head[:i], head[i+1 : len(head)-1], v, true
	}
	return head, "", v, true
}

// labelValue extracts one label's (quoted) value from a label text.
func labelValue(labels, key string) string {
	for _, part := range splitLabels(labels) {
		k, v, ok := strings.Cut(part, "=")
		if !ok || k != key {
			continue
		}
		if uq, err := strconv.Unquote(v); err == nil {
			return uq
		}
		return v
	}
	return ""
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(labels string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '"':
			if i == 0 || labels[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, strings.TrimSpace(labels[start:i]))
				start = i + 1
			}
		}
	}
	if start < len(labels) {
		out = append(out, strings.TrimSpace(labels[start:]))
	}
	return out
}

// render writes the merged families as 0.0.4 exposition, sorted by
// family name for a deterministic artifact.
func (a *aggregator) render(w io.Writer) {
	names := append([]string(nil), a.order...)
	sort.Strings(names)
	for _, name := range names {
		f := a.families[name]
		switch f.typ {
		case "counter":
			fmt.Fprintf(w, "# TYPE %s counter\n", f.name)
			for _, labels := range f.counterOrder {
				if labels == "" {
					fmt.Fprintf(w, "%s %s\n", f.name, fmtVal(f.counterSums[labels]))
				} else {
					fmt.Fprintf(w, "%s{%s} %s\n", f.name, labels, fmtVal(f.counterSums[labels]))
				}
			}
		case "gauge":
			fmt.Fprintf(w, "# TYPE %s gauge\n", f.name)
			samples := append([]gaugeSample(nil), f.gauges...)
			sort.Slice(samples, func(i, j int) bool {
				if samples[i].labels != samples[j].labels {
					return samples[i].labels < samples[j].labels
				}
				return samples[i].node < samples[j].node
			})
			for _, s := range samples {
				labels := fmt.Sprintf("node=%q", s.node)
				if s.labels != "" {
					labels = s.labels + "," + labels
				}
				fmt.Fprintf(w, "%s{%s} %s\n", f.name, labels, fmtVal(s.value))
			}
		case "histogram":
			fmt.Fprintf(w, "# TYPE %s histogram\n", f.name)
			// Union of every node's bounds, each node's curve evaluated at
			// each bound — exact where bucket sets agree, monotone always.
			seen := make(map[string]bool)
			var les []string
			for _, node := range f.histOrder {
				for _, le := range f.histNodes[node].leOrder {
					if !seen[le] {
						seen[le] = true
						les = append(les, le)
					}
				}
			}
			sort.Slice(les, func(i, j int) bool { return leLess(les[i], les[j]) })
			for _, le := range les {
				var total float64
				for _, node := range f.histOrder {
					total += f.histNodes[node].valueAt(le)
				}
				fmt.Fprintf(w, "%s_bucket{le=%q} %s\n", f.name, le, fmtVal(total))
			}
			fmt.Fprintf(w, "%s_sum %s\n", f.name, fmtVal(f.histSum))
			fmt.Fprintf(w, "%s_count %s\n", f.name, fmtVal(f.histCnt))
		}
	}
}

// leLess orders bucket bounds numerically with +Inf last.
func leLess(a, b string) bool {
	av, aerr := strconv.ParseFloat(a, 64)
	bv, berr := strconv.ParseFloat(b, 64)
	if aerr != nil {
		return false // a is +Inf (or junk): sort last
	}
	if berr != nil {
		return true
	}
	return av < bv
}

func fmtVal(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// handleMetrics scrapes every ready backend and serves the merged
// exposition plus the gateway's own counters. Unready nodes are skipped
// and reported through the calibgate_node_up gauge instead of failing
// the scrape.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	agg := newAggregator()
	nodes := g.ring.Nodes()
	up := make(map[string]bool, len(nodes))
	for _, node := range nodes {
		if !g.health.Ready(node) {
			continue
		}
		res, err := g.send(http.MethodGet, node, "/metrics", nil)
		if err != nil || res.status != http.StatusOK {
			g.log.Warn("scraping node metrics", "node", node, "err", err)
			continue
		}
		up[node] = true
		agg.ingest(node, string(res.body))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	agg.render(w)
	g.writeOwnMetrics(w, nodes, up)
}

// writeOwnMetrics appends the gateway's calibgate_* families.
func (g *Gateway) writeOwnMetrics(w io.Writer, nodes []string, up map[string]bool) {
	version := g.opts.Version
	if version == "" {
		version = "dev"
	}
	fmt.Fprintf(w, "# TYPE calibgate_build_info gauge\ncalibgate_build_info{go_version=%q,version=%q} 1\n",
		runtime.Version(), version)
	counter := func(name string, v int64) {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v)
	}
	counter("calibgate_requests_proxied", g.metrics.proxied.Load())
	counter("calibgate_request_retries", g.metrics.retries.Load())
	counter("calibgate_requests_unroutable", g.metrics.unroutable.Load())
	counter("calibgate_proxy_errors", g.metrics.proxyErrors.Load())
	counter("calibgate_sessions_migrated", g.metrics.migrations.Load())
	counter("calibgate_migration_failures", g.metrics.migrationFailures.Load())
	counter("calibgate_rebalances", g.metrics.rebalances.Load())
	fmt.Fprintf(w, "# TYPE calibgate_ring_nodes gauge\ncalibgate_ring_nodes %d\n", len(nodes))
	fmt.Fprintf(w, "# TYPE calibgate_node_up gauge\n")
	for _, n := range nodes {
		v := 0
		if up[n] {
			v = 1
		}
		fmt.Fprintf(w, "calibgate_node_up{node=%q} %d\n", n, v)
	}
}
