package cluster

import (
	"fmt"
	"sync"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("g-%08x-%06d", i*2654435761, i)
	}
	return keys
}

// TestRingBalance checks distribution quality across 1000 virtual
// points (10 nodes x 100 vnodes) with a chi-squared-style bound. The
// variance of consistent hashing is dominated by arc lengths, not
// multinomial sampling: with V vnodes per node the per-node share has
// relative standard deviation ~1/sqrt(V) = 10%, so the statistic is
// normalized by the arc variance and the per-node shares are also
// bounded directly. The hash is deterministic, so this is a regression
// gate on hash64 + point placement, not a flaky statistical test.
func TestRingBalance(t *testing.T) {
	const (
		nodes   = 10
		vnodes  = 100
		numKeys = 100_000
	)
	r := NewRing(vnodes)
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("http://node-%d:8080", i))
	}
	counts := make(map[string]int)
	for _, k := range ringKeys(numKeys) {
		owner, ok := r.Owner(k)
		if !ok {
			t.Fatal("empty ring")
		}
		counts[owner]++
	}
	if len(counts) != nodes {
		t.Fatalf("only %d of %d nodes own keys", len(counts), nodes)
	}
	exp := float64(numKeys) / nodes
	sigma := exp / 10 // 1/sqrt(vnodes) relative std
	var chi2 float64
	for node, c := range counts {
		dev := float64(c) - exp
		chi2 += (dev / sigma) * (dev / sigma)
		if float64(c) < 0.5*exp || float64(c) > 1.5*exp {
			t.Errorf("node %s owns %d keys, outside [%.0f, %.0f]", node, c, 0.5*exp, 1.5*exp)
		}
	}
	// Sum of 10 squared ~N(0,1) deviations; 30 is far out in the tail of
	// chi-squared with 9 dof, so exceeding it means real clustering.
	if chi2 > 30 {
		t.Errorf("chi-squared statistic %.1f > 30; key distribution is clustered: %v", chi2, counts)
	}
}

// TestRingMinimalMovement checks the consistent-hashing contract: a join
// moves only ~1/N of keys and every moved key lands on the new node; a
// leave moves only the departed node's keys.
func TestRingMinimalMovement(t *testing.T) {
	const (
		nodes   = 10
		numKeys = 20_000
	)
	r := NewRing(100)
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("http://node-%d:8080", i))
	}
	keys := ringKeys(numKeys)
	before := make(map[string]string, numKeys)
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}

	newNode := "http://node-new:8080"
	r.Add(newNode)
	moved := 0
	for _, k := range keys {
		owner, _ := r.Owner(k)
		if owner == before[k] {
			continue
		}
		moved++
		if owner != newNode {
			t.Fatalf("key %s moved to %s, not the joining node", k, owner)
		}
	}
	fair := numKeys / (nodes + 1)
	if moved == 0 {
		t.Fatal("join moved no keys")
	}
	if moved > 2*fair {
		t.Errorf("join moved %d keys, want <= %d (~2x fair share)", moved, 2*fair)
	}

	// Leaving restores exactly the pre-join assignment: the departed
	// node's keys return to their previous owners and nothing else moves.
	r.Remove(newNode)
	for _, k := range keys {
		owner, _ := r.Owner(k)
		if owner != before[k] {
			t.Fatalf("key %s owned by %s after leave, was %s", k, owner, before[k])
		}
	}
}

// TestRingConcurrentReads hammers Owner from readers while a writer
// joins and leaves nodes; run under -race this is the ring's
// concurrency gate (satellite requirement).
func TestRingConcurrentReads(t *testing.T) {
	r := NewRing(32)
	r.Add("http://stable-a:1")
	r.Add("http://stable-b:2")
	keys := ringKeys(256)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, k := range keys {
					if owner, ok := r.Owner(k); !ok || owner == "" {
						t.Error("ring went empty during rebalance")
						return
					}
				}
				r.Nodes()
			}
		}()
	}
	for i := 0; i < 200; i++ {
		n := fmt.Sprintf("http://churn-%d:9", i%8)
		r.Add(n)
		r.Remove(n)
	}
	close(stop)
	wg.Wait()
}

func TestRingEmptyAndMembership(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Owner("x"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	r.Add("a")
	r.Add("a") // duplicate add is a no-op
	if r.Len() != 1 || !r.Has("a") {
		t.Fatalf("len=%d has=%v", r.Len(), r.Has("a"))
	}
	if owner, ok := r.Owner("anything"); !ok || owner != "a" {
		t.Fatalf("single-node ring routed to %q", owner)
	}
	r.Remove("b") // absent remove is a no-op
	r.Remove("a")
	if r.Len() != 0 {
		t.Fatalf("len=%d after removing the only node", r.Len())
	}
	if nodes := r.Nodes(); len(nodes) != 0 {
		t.Fatalf("nodes=%v", nodes)
	}
}
