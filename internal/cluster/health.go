package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// Health tracks backend readiness by probing each watched node's
// GET /readyz on a fixed cadence. A node is ready only when its last
// probe answered 200 — "booting" (WAL replay) and "draining" both
// answer 503, so the gateway stops routing new work there while the
// node is still alive (that distinction is why readiness is a separate
// endpoint from /healthz).
//
// With interval <= 0 no prober goroutine runs and every watched node
// reports ready; tests and single-shot tools use that mode to avoid
// probe timing in their control flow.
type Health struct {
	client   *http.Client
	interval time.Duration
	timeout  time.Duration

	mu    sync.Mutex
	ready map[string]bool // watched node -> last probe verdict

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewHealth builds a prober over client. interval is the probe cadence
// (<= 0 disables probing as described above); timeout bounds each probe.
func NewHealth(client *http.Client, interval, timeout time.Duration) *Health {
	if client == nil {
		client = http.DefaultClient
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	h := &Health{
		client:   client,
		interval: interval,
		timeout:  timeout,
		ready:    make(map[string]bool),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if interval > 0 {
		go h.run()
	} else {
		close(h.done)
	}
	return h
}

// Watch adds a node to the probe set. The node starts ready — it was
// just health-checked or admin-added by the caller — and the next probe
// cycle corrects that if it is not.
func (h *Health) Watch(node string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.ready[node]; !ok {
		h.ready[node] = true
	}
}

// Forget drops a node from the probe set.
func (h *Health) Forget(node string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.ready, node)
}

// Ready reports the node's last probe verdict. Unwatched nodes are not
// ready; with probing disabled every watched node is ready.
func (h *Health) Ready(node string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	ok, watched := h.ready[node]
	if !watched {
		return false
	}
	if h.interval <= 0 {
		return true
	}
	return ok
}

// MarkUnready records an observed failure (a dial error during
// proxying) without waiting for the next probe cycle, so one dead-node
// discovery benefits every subsequent request.
func (h *Health) MarkUnready(node string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, watched := h.ready[node]; watched {
		h.ready[node] = false
	}
}

// Stop terminates the prober goroutine and waits for it to exit. Safe
// to call multiple times and with probing disabled.
func (h *Health) Stop() {
	h.stopOnce.Do(func() {
		close(h.stop)
	})
	<-h.done
}

// run is the prober loop. Probes are issued outside the mutex — the
// lock only guards the map — so a slow backend cannot stall Ready
// lookups on the request path.
func (h *Health) run() {
	defer close(h.done)
	ticker := time.NewTicker(h.interval)
	defer ticker.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-ticker.C:
		}
		h.mu.Lock()
		nodes := make([]string, 0, len(h.ready))
		for n := range h.ready {
			nodes = append(nodes, n)
		}
		h.mu.Unlock()
		for _, n := range nodes {
			verdict := h.probe(n)
			h.mu.Lock()
			// Re-check membership: the node may have been Forgotten while
			// the probe was in flight.
			if _, watched := h.ready[n]; watched {
				h.ready[n] = verdict
			}
			h.mu.Unlock()
		}
	}
}

// probe issues one GET /readyz; only a 200 makes the node ready.
func (h *Health) probe(node string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), h.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
